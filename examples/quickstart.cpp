// Quickstart: parse an XML document, declare its schema and target schema
// segments, load it into XKeyword, and run a keyword proximity query.
//
// This is the paper's running example (Figure 1): "Which results connect
// John with VCR?" — the best answer connects John to the "set of VCR and
// DVD" product through the lineitem he supplied; a looser one goes through
// the TV part whose sub-parts are VCRs.

#include <cstdio>

#include "datagen/tpch_gen.h"
#include "engine/xkeyword.h"
#include "xml/xml_parser.h"

namespace {

constexpr const char* kDocument = R"xml(
<part id="tv" key="1005"><name>TV</name>
  <sub idref="vcr1"/><sub idref="vcr2"/>
</part>
<part id="vcr1" key="1008"><name>VCR</name></part>
<part id="vcr2" key="1009"><name>VCR</name></part>
<product id="vcrdvd"><prodkey>2005</prodkey>
  <descr>set of VCR and DVD</descr>
</product>
<person id="john"><name>John</name><nation>US</nation>
  <service_call><descr>DVD error</descr><date>2002-11-10</date></service_call>
</person>
<person id="mike"><name>Mike</name><nation>US</nation>
  <order><date>2002-11-01</date>
    <lineitem><quantity>10</quantity><shipdate>2002-11-05</shipdate>
      <supplier idref="john"/><line idref="vcrdvd"/>
    </lineitem>
  </order>
  <order><date>2002-10-01</date>
    <lineitem><quantity>6</quantity><shipdate>2002-10-05</shipdate>
      <supplier idref="john"/><line idref="tv"/>
    </lineitem>
    <lineitem><quantity>10</quantity><shipdate>2002-10-06</shipdate>
      <supplier idref="john"/><line idref="tv"/>
    </lineitem>
  </order>
</person>
)xml";

}  // namespace

int main() {
  using namespace xk;

  // 1. Parse the XML into a labeled graph (multi-root, IDREF references).
  auto doc = xml::ParseXml(kDocument);
  if (!doc.ok()) {
    std::fprintf(stderr, "parse error: %s\n", doc.status().ToString().c_str());
    return 1;
  }
  std::printf("parsed %lld nodes, %lld containment + %lld reference edges\n",
              static_cast<long long>(doc->graph.NumNodes()),
              static_cast<long long>(doc->graph.NumContainmentEdges()),
              static_cast<long long>(doc->graph.NumReferenceEdges()));

  // 2. Schema graph (Figure 5) and TSS graph (Figure 6) — prebuilt here;
  //    see datagen/tpch_gen.h for the declaration code.
  schema::SchemaGraph schema;
  auto tss = datagen::BuildTpchSchema(&schema);
  if (!tss.ok()) return 1;

  // 3. Load stage: validation, target decomposition, master index, BLOBs,
  //    and one decomposition's connection relations.
  auto xkeyword = engine::XKeyword::Load(&doc->graph, &schema, tss->get());
  if (!xkeyword.ok()) {
    std::fprintf(stderr, "load error: %s\n", xkeyword.status().ToString().c_str());
    return 1;
  }
  engine::XKeyword& xk = **xkeyword;
  Status st = xk.AddDecomposition(
      decomp::MakeMinimal(**tss, decomp::PhysicalDesign::kClusterPerDirection));
  if (!st.ok()) return 1;

  // 4. The keyword proximity query.
  engine::QueryOptions options;
  options.max_size_z = 8;  // maximum result size Z
  options.per_network_k = 3;
  engine::QueryRequest request;
  request.keywords = {"john", "vcr"};
  request.decomposition = "MinClust";
  request.mode = engine::QueryMode::kTopK;
  request.options = options;
  auto response = xk.Run(request);
  if (!response.ok()) {
    std::fprintf(stderr, "query error: %s\n", response.status().ToString().c_str());
    return 1;
  }
  if (response->completeness != engine::Completeness::kComplete) {
    std::fprintf(stderr, "degraded answer: %s\n",
                 response->status.ToString().c_str());
  }

  std::printf("\nquery: john, vcr  ->  %zu results (top 3 per network)\n\n",
              response->mttons.size());
  auto prepared = xk.Prepare({"john", "vcr"}, "MinClust", options);
  for (const present::Mtton& m : response->mttons) {
    std::printf("%s\n",
                present::RenderMtton(
                    m, prepared->ctssns[static_cast<size_t>(m.ctssn_index)],
                    **tss, xk.catalog().blob_store())
                    .c_str());
  }
  return 0;
}
