// xkeyword_cli — run keyword proximity search over your own XML.
//
//   xkeyword_cli <schema.cfg> <data.xml> [keywords...]
//
// The schema configuration declares the schema graph and target schema
// segments (see src/schema/config_parser.h for the format; a ready-made
// DBLP configuration is printed with --print-dblp-config). With keywords on
// the command line one query is executed; otherwise queries are read from
// stdin, one per line.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/stopwatch.h"
#include "common/strings.h"
#include "datagen/dblp_gen.h"
#include "engine/xkeyword.h"
#include "schema/config_parser.h"
#include "xml/xml_parser.h"

namespace {

xk::Result<std::string> ReadFile(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return xk::Status::NotFound(std::string("cannot open ") + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void RunQuery(xk::engine::XKeyword& xk, const xk::schema::TssGraph& tss,
              const std::vector<std::string>& keywords) {
  xk::engine::QueryRequest request;
  request.keywords = keywords;
  request.decomposition = "XKeyword";
  request.mode = xk::engine::QueryMode::kTopK;
  request.options.max_size_z = 6;
  request.options.per_network_k = 3;
  // Interactive budget: a runaway query returns the guaranteed prefix it
  // could afford (response.status = kDeadlineExceeded, completeness
  // kDegraded, coverage says how far it got) instead of hanging the prompt.
  request.deadline = std::chrono::seconds(10);

  xk::Stopwatch sw;
  auto response = xk.Run(request);
  if (!response.ok()) {
    std::printf("error: %s\n", response.status().ToString().c_str());
    return;
  }
  // CTSSNs for rendering: preparation is deterministic, so ctssn_index in
  // the response refers to exactly this list.
  auto prepared = xk.Prepare(keywords, "XKeyword", request.options);
  if (!prepared.ok()) {
    std::printf("error: %s\n", prepared.status().ToString().c_str());
    return;
  }
  std::printf("%zu results across %zu candidate networks (%.2f ms)%s\n",
              response->mttons.size(), prepared->ctssns.size(),
              sw.ElapsedMillis(),
              response->completeness != xk::engine::Completeness::kComplete
                  ? " [degraded: deadline]"
                  : "");
  int shown = 0;
  for (const xk::present::Mtton& m : response->mttons) {
    if (++shown > 5) {
      std::printf("... (%zu more)\n", response->mttons.size() - 5);
      break;
    }
    std::printf("%s\n",
                xk::present::RenderMtton(
                    m, prepared->ctssns[static_cast<size_t>(m.ctssn_index)], tss,
                    xk.catalog().blob_store())
                    .c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xk;

  if (argc == 2 && std::string(argv[1]) == "--print-dblp-config") {
    schema::SchemaGraph s;
    auto tss = datagen::BuildDblpSchema(&s);
    if (!tss.ok()) return 1;
    std::printf("%s", schema::WriteSchemaConfig(s, **tss).c_str());
    return 0;
  }
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <schema.cfg> <data.xml> [keywords...]\n"
                 "       %s --print-dblp-config\n",
                 argv[0], argv[0]);
    return 2;
  }

  auto config_text = ReadFile(argv[1]);
  if (!config_text.ok()) {
    std::fprintf(stderr, "%s\n", config_text.status().ToString().c_str());
    return 1;
  }
  auto config = schema::ParseSchemaConfig(*config_text);
  if (!config.ok()) {
    std::fprintf(stderr, "schema config: %s\n", config.status().ToString().c_str());
    return 1;
  }

  auto xml_text = ReadFile(argv[2]);
  if (!xml_text.ok()) {
    std::fprintf(stderr, "%s\n", xml_text.status().ToString().c_str());
    return 1;
  }
  auto doc = xml::ParseXml(*xml_text);
  if (!doc.ok()) {
    std::fprintf(stderr, "xml: %s\n", doc.status().ToString().c_str());
    return 1;
  }

  Stopwatch load;
  auto xkeyword =
      engine::XKeyword::Load(&doc->graph, &(*config)->schema, (*config)->tss.get());
  if (!xkeyword.ok()) {
    std::fprintf(stderr, "load: %s\n", xkeyword.status().ToString().c_str());
    return 1;
  }
  auto decomposition = decomp::MakeXKeyword(*(*config)->tss, /*B=*/2, /*M=*/4);
  if (!decomposition.ok() ||
      !(*xkeyword)->AddDecomposition(std::move(*decomposition)).ok()) {
    std::fprintf(stderr, "decomposition failed\n");
    return 1;
  }
  std::printf("loaded %lld nodes, %lld objects, %zu keywords in %.1f ms\n",
              static_cast<long long>(doc->graph.NumNodes()),
              static_cast<long long>((*xkeyword)->objects().NumObjects()),
              (*xkeyword)->master_index().NumKeywords(), load.ElapsedMillis());

  if (argc > 3) {
    std::vector<std::string> keywords;
    for (int i = 3; i < argc; ++i) keywords.emplace_back(argv[i]);
    RunQuery(**xkeyword, *(*config)->tss, keywords);
    return 0;
  }

  std::printf("enter keyword queries (one per line, ctrl-d to exit):\n> ");
  std::string line;
  while (std::getline(std::cin, line)) {
    std::vector<std::string> keywords = xk::Tokenize(line);
    if (!keywords.empty()) RunQuery(**xkeyword, *(*config)->tss, keywords);
    std::printf("> ");
  }
  return 0;
}
