// DBLP scenario — the paper's demo (Figure 4): keyword search over a
// bibliography with citations, list-of-results presentation, and a look at
// the candidate networks behind the answers. The queries go through the
// QueryService serving front-end: all of them are submitted up front, run
// concurrently over the one shared engine, and the service's metrics
// registry reports latency percentiles at the end.

#include <cstdio>

#include "common/stopwatch.h"
#include "datagen/dblp_gen.h"
#include "engine/xkeyword.h"
#include "service/query_service.h"

int main() {
  using namespace xk;

  datagen::DblpConfig config;
  config.num_conferences = 8;
  config.years_per_conference = 5;
  config.avg_papers_per_year = 15;
  config.avg_citations_per_paper = 20.0;  // the paper's citation fanout
  config.seed = 14;
  auto db = datagen::DblpDatabase::Generate(config);
  if (!db.ok()) return 1;

  auto xkeyword =
      engine::XKeyword::Load(&(*db)->graph(), &(*db)->schema(), &(*db)->tss());
  if (!xkeyword.ok()) {
    std::fprintf(stderr, "%s\n", xkeyword.status().ToString().c_str());
    return 1;
  }
  engine::XKeyword& xk = **xkeyword;
  if (!xk.AddDecomposition(decomp::MakeMinimal(
                               (*db)->tss(), decomp::PhysicalDesign::kClusterPerDirection))
           .ok()) {
    return 1;
  }

  std::printf("DBLP-like database: %lld nodes, %lld citations, %lld objects\n\n",
              static_cast<long long>((*db)->graph().NumNodes()),
              static_cast<long long>((*db)->graph().NumReferenceEdges()),
              static_cast<long long>(xk.objects().NumObjects()));

  // Find papers connecting two authors — the paper's own on-demand example
  // uses "queries that involve the names of two authors".
  engine::QueryOptions options;
  options.max_size_z = 4;
  options.per_network_k = 3;

  const std::vector<std::vector<std::string>> queries = {
      {"ullman", "widom"}, {"gray", "codd"}, {"keyword", "search"}};

  auto service = service::QueryService::Create(&xk);
  if (!service.ok()) return 1;

  // Submit everything up front; the worker pool runs the queries
  // concurrently while we block on the handles in submission order.
  Stopwatch sw;
  std::vector<service::QueryHandle> handles;
  for (const auto& q : queries) {
    engine::QueryRequest request;
    request.keywords = q;
    request.decomposition = "MinClust";
    request.options = options;
    auto handle = (*service)->Submit(request);
    if (!handle.ok()) return 1;
    handles.push_back(*handle);
  }

  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const auto& q = queries[qi];
    auto response = handles[qi].Wait();
    if (!response.ok() || !response->status.ok()) return 1;

    // CTSSNs for presentation: preparation is deterministic, so the
    // response's ctssn_index values refer to exactly this list.
    auto prepared = xk.Prepare(q, "MinClust", options);
    if (!prepared.ok()) return 1;

    std::printf("=== %s, %s: %zu candidate networks, %zu results\n",
                q[0].c_str(), q[1].c_str(), prepared->ctssns.size(),
                response->mttons.size());
    // Candidate TSS networks, like "Author^k1 - Paper - Author^k2".
    for (size_t i = 0; i < prepared->ctssns.size() && i < 4; ++i) {
      std::printf("  CTSSN %zu: %s\n", i,
                  prepared->ctssns[i].ToString((*db)->tss()).c_str());
    }
    // List presentation (Figure 4(b)): the first few results.
    int shown = 0;
    for (const present::Mtton& m : response->mttons) {
      if (++shown > 2) break;
      std::printf("%s\n",
                  present::RenderMtton(
                      m, prepared->ctssns[static_cast<size_t>(m.ctssn_index)],
                      (*db)->tss(), xk.catalog().blob_store())
                      .c_str());
    }
    std::printf("\n");
  }

  const service::MetricsSnapshot snap = (*service)->metrics().Snapshot();
  std::printf("served %llu queries in %.2f ms (p50 %.0f us, p99 %.0f us, peak %lld in flight)\n",
              static_cast<unsigned long long>(snap.completed_ok),
              sw.ElapsedMillis(), snap.latency_p50_us, snap.latency_p99_us,
              static_cast<long long>(snap.peak_in_flight));
  return 0;
}
