// DBLP scenario — the paper's demo (Figure 4): keyword search over a
// bibliography with citations, list-of-results presentation, and a look at
// the candidate networks behind the answers.

#include <cstdio>

#include "common/stopwatch.h"
#include "datagen/dblp_gen.h"
#include "engine/xkeyword.h"

int main() {
  using namespace xk;

  datagen::DblpConfig config;
  config.num_conferences = 8;
  config.years_per_conference = 5;
  config.avg_papers_per_year = 15;
  config.avg_citations_per_paper = 20.0;  // the paper's citation fanout
  config.seed = 14;
  auto db = datagen::DblpDatabase::Generate(config);
  if (!db.ok()) return 1;

  auto xkeyword =
      engine::XKeyword::Load(&(*db)->graph(), &(*db)->schema(), &(*db)->tss());
  if (!xkeyword.ok()) {
    std::fprintf(stderr, "%s\n", xkeyword.status().ToString().c_str());
    return 1;
  }
  engine::XKeyword& xk = **xkeyword;
  if (!xk.AddDecomposition(decomp::MakeMinimal(
                               (*db)->tss(), decomp::PhysicalDesign::kClusterPerDirection))
           .ok()) {
    return 1;
  }

  std::printf("DBLP-like database: %lld nodes, %lld citations, %lld objects\n\n",
              static_cast<long long>((*db)->graph().NumNodes()),
              static_cast<long long>((*db)->graph().NumReferenceEdges()),
              static_cast<long long>(xk.objects().NumObjects()));

  // Find papers connecting two authors — the paper's own on-demand example
  // uses "queries that involve the names of two authors".
  engine::QueryOptions options;
  options.max_size_z = 4;
  options.per_network_k = 3;

  const std::vector<std::vector<std::string>> queries = {
      {"ullman", "widom"}, {"gray", "codd"}, {"keyword", "search"}};

  for (const auto& q : queries) {
    auto prepared = xk.Prepare(q, "MinClust", options);
    if (!prepared.ok()) return 1;
    Stopwatch sw;
    engine::TopKExecutor executor;
    auto results = executor.Run(*prepared, options);
    if (!results.ok()) return 1;

    std::printf("=== %s, %s: %zu candidate networks, %zu results (%.2f ms)\n",
                q[0].c_str(), q[1].c_str(), prepared->ctssns.size(),
                results->size(), sw.ElapsedMillis());
    // Candidate TSS networks, like "Author^k1 - Paper - Author^k2".
    for (size_t i = 0; i < prepared->ctssns.size() && i < 4; ++i) {
      std::printf("  CTSSN %zu: %s\n", i,
                  prepared->ctssns[i].ToString((*db)->tss()).c_str());
    }
    // List presentation (Figure 4(b)): the first few results.
    int shown = 0;
    for (const present::Mtton& m : *results) {
      if (++shown > 2) break;
      std::printf("%s\n",
                  present::RenderMtton(
                      m, prepared->ctssns[static_cast<size_t>(m.ctssn_index)],
                      (*db)->tss(), xk.catalog().blob_store())
                      .c_str());
    }
    std::printf("\n");
  }
  return 0;
}
