// TPC-H scenario: keyword proximity search over a generated order-management
// XML database (Figure 5 schema). Compares the optimized (caching, threaded)
// executor against the naive DISCOVER-style baseline and shows how the
// XKeyword decomposition changes the plans.

#include <cstdio>

#include "common/stopwatch.h"
#include "datagen/tpch_gen.h"
#include "engine/xkeyword.h"

int main() {
  using namespace xk;

  datagen::TpchConfig config;
  config.num_persons = 200;
  config.num_parts = 300;
  config.num_products = 150;
  config.avg_orders_per_person = 3.0;
  config.avg_lineitems_per_order = 4.0;
  config.seed = 2003;
  auto db = datagen::TpchDatabase::Generate(config);
  if (!db.ok()) return 1;

  std::printf("generated TPC-H-like database: %lld XML nodes\n",
              static_cast<long long>((*db)->graph().NumNodes()));

  auto xkeyword =
      engine::XKeyword::Load(&(*db)->graph(), &(*db)->schema(), &(*db)->tss());
  if (!xkeyword.ok()) return 1;
  engine::XKeyword& xk = **xkeyword;
  std::printf("target objects: %lld, master index: %zu keywords\n",
              static_cast<long long>(xk.objects().NumObjects()),
              xk.master_index().NumKeywords());

  // Two decompositions: minimal (a relation per TSS edge) and the
  // Figure-12 XKeyword decomposition with join bound B = 2 for networks of
  // size up to M = 6.
  if (!xk.AddDecomposition(decomp::MakeMinimal(
                               (*db)->tss(), decomp::PhysicalDesign::kClusterPerDirection))
           .ok()) {
    return 1;
  }
  auto xkd = decomp::MakeXKeyword((*db)->tss(), /*B=*/2, /*M=*/6);
  if (!xkd.ok() || !xk.AddDecomposition(std::move(*xkd)).ok()) return 1;
  std::printf("decompositions: MinClust (%d fragments), XKeyword (%zu fragments)\n\n",
              (*db)->tss().NumEdges(),
              xk.GetDecomposition("XKeyword").value()->fragments.size());

  engine::QueryOptions options;
  options.max_size_z = 6;
  options.per_network_k = 5;

  const std::vector<std::vector<std::string>> queries = {
      {"john", "vcr"}, {"tv", "dvd"}, {"mike", "radio"}, {"us", "tuner"}};

  for (const auto& q : queries) {
    std::printf("=== query: %s, %s ===\n", q[0].c_str(), q[1].c_str());
    for (const char* decomposition : {"MinClust", "XKeyword"}) {
      engine::QueryRequest request;
      request.keywords = q;
      request.decomposition = decomposition;
      request.mode = engine::QueryMode::kTopK;
      request.options = options;
      Stopwatch sw;
      auto response = xk.Run(request);
      if (!response.ok()) return 1;
      std::printf(
          "  %-9s %5zu results in %7.2f ms   (probes %llu, cache hits %llu)\n",
          decomposition, response->mttons.size(), sw.ElapsedMillis(),
          static_cast<unsigned long long>(response->stats.probes.probes),
          static_cast<unsigned long long>(response->stats.cache_hits));
    }
    // Naive baseline on the minimal decomposition.
    {
      engine::QueryRequest request;
      request.keywords = q;
      request.decomposition = "MinClust";
      request.mode = engine::QueryMode::kNaive;
      request.options = options;
      Stopwatch sw;
      auto response = xk.Run(request);
      if (!response.ok()) return 1;
      std::printf("  %-9s %5zu results in %7.2f ms   (probes %llu, no cache)\n",
                  "naive", response->mttons.size(), sw.ElapsedMillis(),
                  static_cast<unsigned long long>(response->stats.probes.probes));
    }
  }

  // Show the best answers of the signature query.
  engine::QueryOptions verbose = options;
  verbose.per_network_k = 1;
  auto prepared = xk.Prepare({"john", "vcr"}, "XKeyword", verbose);
  if (!prepared.ok()) return 1;
  engine::TopKExecutor executor;
  auto results = executor.Run(*prepared, verbose);
  if (!results.ok()) return 1;
  std::printf("\ntop result per network for 'john, vcr':\n");
  int shown = 0;
  for (const present::Mtton& m : *results) {
    if (++shown > 3) break;
    std::printf("%s\n",
                present::RenderMtton(
                    m, prepared->ctssns[static_cast<size_t>(m.ctssn_index)],
                    (*db)->tss(), xk.catalog().blob_store())
                    .c_str());
  }
  return 0;
}
