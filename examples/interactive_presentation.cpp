// Interactive presentation graphs (Section 3.2, Figure 3), scripted: start
// from the top-1 result of a candidate network, expand a role on demand
// (Figure-13 algorithm against the connection relations), then contract —
// printing the displayed subgraph after every action.

#include <cstdio>

#include "datagen/dblp_gen.h"
#include "engine/xkeyword.h"

namespace {

void Print(const xk::present::PresentationGraph& pg, const xk::cn::Ctssn& c,
           const xk::schema::TssGraph& tss) {
  std::printf("  displayed: ");
  for (const auto& [occ, obj] : pg.Displayed()) {
    std::printf("%s#%lld%s ", tss.name(c.tree.nodes[static_cast<size_t>(occ)]).c_str(),
                static_cast<long long>(obj), pg.IsExpanded(occ) ? "*" : "");
  }
  std::printf("(%zu nodes, %zu edges, invariant %s)\n", pg.Displayed().size(),
              pg.DisplayedEdges().size(), pg.InvariantHolds() ? "ok" : "BROKEN");
}

}  // namespace

int main() {
  using namespace xk;

  datagen::DblpConfig config;
  config.num_conferences = 5;
  config.years_per_conference = 4;
  config.avg_papers_per_year = 10;
  config.avg_citations_per_paper = 8.0;
  config.seed = 21;
  auto db = datagen::DblpDatabase::Generate(config);
  if (!db.ok()) return 1;

  auto xkeyword =
      engine::XKeyword::Load(&(*db)->graph(), &(*db)->schema(), &(*db)->tss());
  if (!xkeyword.ok()) return 1;
  engine::XKeyword& xk = **xkeyword;
  // The paper's recipe for on-demand expansion: minimal + inlined fragments.
  auto inlined = decomp::MakeXKeyword((*db)->tss(), 2, 4);
  if (!inlined.ok()) return 1;
  decomp::Decomposition minimal =
      decomp::MakeMinimal((*db)->tss(), decomp::PhysicalDesign::kClusterPerDirection);
  decomp::Decomposition combination =
      decomp::Combine(minimal, *inlined, (*db)->tss(), "combination");
  if (!xk.AddDecomposition(std::move(minimal)).ok()) return 1;
  if (!xk.AddDecomposition(std::move(combination)).ok()) return 1;

  // Query: two author names (the Fig-16b workload), top-1 per network seeds
  // the presentation graphs.
  engine::QueryOptions options;
  options.max_size_z = 4;
  options.per_network_k = 1;
  auto prepared = xk.Prepare({"ullman", "widom"}, "combination", options);
  if (!prepared.ok()) return 1;
  engine::TopKExecutor executor;
  auto seeds = executor.Run(*prepared, options);
  if (!seeds.ok() || seeds->empty()) {
    std::printf("no results for the seed query\n");
    return 0;
  }

  // Pick the first multi-node network that produced a result.
  int net = -1;
  for (const present::Mtton& m : *seeds) {
    if (prepared->ctssns[static_cast<size_t>(m.ctssn_index)].tree.size() > 0) {
      net = m.ctssn_index;
      break;
    }
  }
  if (net < 0) return 0;
  const cn::Ctssn& c = prepared->ctssns[static_cast<size_t>(net)];
  std::printf("network: %s\n", c.ToString((*db)->tss()).c_str());

  auto pg = xk.MakePresentationGraph(*prepared, net, *seeds);
  if (!pg.ok()) return 1;
  std::printf("initial presentation graph (PG_0 = one result):\n");
  Print(*pg, c, (*db)->tss());

  auto engine = xk.MakeExpansionEngine("combination");
  if (!engine.ok()) return 1;

  // Click every role once (expansion), then contract the first role back.
  for (int occ = 0; occ < c.num_nodes(); ++occ) {
    engine::ExpansionEngine::Stats stats;
    auto expansions = engine->ExpandNode(
        c, prepared->node_filters[static_cast<size_t>(net)], net, occ, *pg, &stats);
    if (!expansions.ok()) return 1;
    for (const present::Mtton& m : *expansions) pg->AddMtton(m);
    if (!pg->Expand(occ, /*max_new_nodes=*/10).ok()) return 1;
    std::printf("expand role %d (%s): %llu candidates, %llu connected, %llu probes\n",
                occ, (*db)->tss().name(c.tree.nodes[static_cast<size_t>(occ)]).c_str(),
                static_cast<unsigned long long>(stats.candidates),
                static_cast<unsigned long long>(stats.expanded),
                static_cast<unsigned long long>(stats.probes.probes));
    Print(*pg, c, (*db)->tss());
  }

  // Contract role 0 onto one of its displayed objects (Figure 3(c)).
  for (const auto& [occ, obj] : pg->Displayed()) {
    if (occ == 0) {
      if (!pg->Contract(0, obj).ok()) return 1;
      std::printf("contract role 0 onto #%lld:\n", static_cast<long long>(obj));
      Print(*pg, c, (*db)->tss());
      break;
    }
  }
  return 0;
}
