#include "net/client.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <iterator>
#include <utility>

#include "common/strings.h"

namespace xk::net {

Result<Client> Client::Connect(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrFormat("socket: %s", strerror(errno)));
  }
  // Streamed batches are small and latency-sensitive; don't let Nagle batch
  // them behind an unacked final frame.
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s =
        Status::Internal(StrFormat("connect: %s", strerror(errno)));
    close(fd);
    return s;
  }
  return Client(fd);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_request_id_(other.next_request_id_) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    next_request_id_ = other.next_request_id_;
  }
  return *this;
}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ < 0) return;
  shutdown(fd_, SHUT_RDWR);
  close(fd_);
  fd_ = -1;
}

Result<uint64_t> Client::SendQuery(const engine::QueryRequest& request) {
  if (fd_ < 0) return Status::Aborted("client is closed");
  const uint64_t request_id = next_request_id_++;
  const std::string frame = EncodeQueryFrame(request_id, request);
  XK_RETURN_NOT_OK(WriteAll(fd_, frame.data(), frame.size()));
  return request_id;
}

Status Client::SendCancel(uint64_t request_id) {
  if (fd_ < 0) return Status::Aborted("client is closed");
  const std::string frame = EncodeCancelFrame(request_id);
  return WriteAll(fd_, frame.data(), frame.size());
}

Result<Client::Event> Client::ReadEvent() {
  if (fd_ < 0) return Status::Aborted("client is closed");
  std::vector<uint8_t> payload;
  XK_RETURN_NOT_OK(ReadFrame(fd_, &payload));
  XK_ASSIGN_OR_RETURN(const FrameHead head, DecodeFrameHead(payload));
  Event event;
  event.request_id = head.request_id;
  switch (head.type) {
    case FrameType::kBatch: {
      event.kind = Event::Kind::kBatch;
      XK_ASSIGN_OR_RETURN(event.batch, DecodeBatchBody(payload));
      return event;
    }
    case FrameType::kFinal: {
      event.kind = Event::Kind::kFinal;
      XK_ASSIGN_OR_RETURN(FinalBody body, DecodeFinalBody(payload));
      event.response = std::move(body.response);
      event.tail_start = body.tail_start;
      return event;
    }
    case FrameType::kError: {
      event.kind = Event::Kind::kError;
      XK_RETURN_NOT_OK(DecodeErrorBody(payload, &event.error));
      return event;
    }
    default:
      return Status::Corruption("unexpected client-bound frame type");
  }
}

Result<engine::QueryResponse> Client::Run(
    const engine::QueryRequest& request,
    std::vector<std::vector<present::Mtton>>* batches) {
  XK_ASSIGN_OR_RETURN(const uint64_t request_id, SendQuery(request));
  std::vector<present::Mtton> streamed;
  while (true) {
    XK_ASSIGN_OR_RETURN(Event event, ReadEvent());
    if (event.request_id != request_id) {
      return Status::Corruption("response for a request this client never sent");
    }
    switch (event.kind) {
      case Event::Kind::kBatch:
        if (batches != nullptr) batches->push_back(event.batch);
        streamed.insert(streamed.end(),
                        std::make_move_iterator(event.batch.begin()),
                        std::make_move_iterator(event.batch.end()));
        break;
      case Event::Kind::kFinal: {
        if (event.tail_start != streamed.size()) {
          return Status::Corruption(StrFormat(
              "final frame expects %llu streamed results, saw %zu",
              static_cast<unsigned long long>(event.tail_start),
              streamed.size()));
        }
        engine::QueryResponse response = std::move(event.response);
        // The batches are a prefix (ResultSink contract); the final frame
        // carries only the tail. Reassemble the full list in place.
        streamed.insert(streamed.end(),
                        std::make_move_iterator(response.mttons.begin()),
                        std::make_move_iterator(response.mttons.end()));
        response.mttons = std::move(streamed);
        return response;
      }
      case Event::Kind::kError:
        return event.error;
    }
  }
}

}  // namespace xk::net
