#include "net/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"

namespace xk::net {

namespace {
/// Poll interval of a backpressure-stalled streaming sink: how quickly a
/// deadline or cancel breaks the stall when the writer frees no room.
constexpr std::chrono::milliseconds kStallPoll{20};
}  // namespace

/// One accepted connection. The reader thread owns recv() and all protocol
/// dispatch; the writer thread owns send(); they meet in `mutex` / `cv` over
/// the bounded outbox and the in-flight-query slot.
struct Server::Connection {
  explicit Connection(int fd_in) : fd(fd_in) {}
  ~Connection() {
    if (fd >= 0) close(fd);
  }

  const int fd;
  std::thread reader;
  std::thread writer;

  /// One encoded frame awaiting send. Batch frames count toward the
  /// streamed-results metric; control frames (kError) do not.
  struct OutFrame {
    std::string bytes;
    uint32_t results = 0;
    bool is_batch = false;
  };

  std::mutex mutex;
  std::condition_variable cv;
  std::deque<OutFrame> outbox;
  size_t outbox_bytes = 0;
  /// Immediate teardown (peer gone / server stop): the writer drops the
  /// outbox and exits; sink pushes fail fast.
  bool closed = false;
  /// Graceful teardown (protocol error answered with kError): the reader is
  /// done but the writer still drains the outbox and any pending final
  /// frame before closing the socket.
  bool draining = false;

  // In-flight query slot (at most one per connection).
  bool query_active = false;
  bool have_handle = false;
  bool query_done = false;       // the service's on_done hook fired
  bool query_cancelled = false;  // breaks a sink stalled on backpressure
  uint64_t request_id = 0;
  size_t streamed_results = 0;  // MTTONs already pushed as kBatch frames
  service::QueryHandle handle;
  std::shared_ptr<engine::ResultSink> sink;  // outlives the query with us
};

namespace {

/// The streaming bridge: engine thread in, connection outbox out. Blocks
/// when the outbox is full (backpressure), polling the query's CancelToken
/// and the connection's teardown flags so the stall always breaks. After the
/// first dropped batch it goes silent for good — the frames already pushed
/// stay a prefix of the answer and the kFinal tail carries the rest.
class NetResultSink final : public engine::ResultSink {
 public:
  // Raw pointer, not shared_ptr: the sink is owned by the connection
  // (Connection::sink), so a strong back-reference would be a cycle that
  // leaks both on abrupt teardown. The query's on_done closure holds the
  // connection alive for the whole window in which the engine may call
  // OnBatch, so the pointer cannot dangle.
  NetResultSink(Server::Connection* conn, uint64_t request_id,
                size_t capacity_bytes)
      : conn_(conn),
        request_id_(request_id),
        capacity_bytes_(capacity_bytes) {}

  void OnBatch(std::span<const present::Mtton> batch) override {
    if (broken_ || batch.empty()) return;
    std::string frame = EncodeBatchFrame(request_id_, batch);
    std::unique_lock<std::mutex> lock(conn_->mutex);
    // Admit an oversized frame into an empty outbox rather than spin forever
    // on a bound it can never meet.
    while (!conn_->closed && !conn_->query_cancelled &&
           !conn_->outbox.empty() &&
           conn_->outbox_bytes + frame.size() > capacity_bytes_) {
      if (cancel_token() != nullptr && cancel_token()->StopRequested()) break;
      conn_->cv.wait_for(lock, kStallPoll);
    }
    if (conn_->closed || conn_->query_cancelled ||
        (cancel_token() != nullptr && cancel_token()->StopRequested())) {
      broken_ = true;
      return;
    }
    conn_->outbox_bytes += frame.size();
    conn_->outbox.push_back(Server::Connection::OutFrame{
        std::move(frame), static_cast<uint32_t>(batch.size()), true});
    conn_->streamed_results += batch.size();
    lock.unlock();
    conn_->cv.notify_all();
  }

 private:
  Server::Connection* const conn_;
  const uint64_t request_id_;
  const size_t capacity_bytes_;
  bool broken_ = false;  // engine-thread-only
};

/// Enqueues a control frame (kError), bypassing the capacity bound — control
/// frames are tiny and must not block the reader.
void PushControlFrame(Server::Connection* conn, std::string frame) {
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (conn->closed) return;
    conn->outbox_bytes += frame.size();
    conn->outbox.push_back(
        Server::Connection::OutFrame{std::move(frame), 0, false});
  }
  conn->cv.notify_all();
}

}  // namespace

// --- Lifecycle -------------------------------------------------------------

Result<std::unique_ptr<Server>> Server::Start(service::QueryService* service,
                                              ServerOptions options) {
  if (service == nullptr) return Status::InvalidArgument("null query service");
  XK_RETURN_NOT_OK(options.Validate());

  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrFormat("socket: %s", strerror(errno)));
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options.port);
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s = Status::Internal(StrFormat("bind: %s", strerror(errno)));
    close(fd);
    return s;
  }
  if (listen(fd, options.backlog) != 0) {
    const Status s = Status::Internal(StrFormat("listen: %s", strerror(errno)));
    close(fd);
    return s;
  }
  socklen_t addr_len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    const Status s =
        Status::Internal(StrFormat("getsockname: %s", strerror(errno)));
    close(fd);
    return s;
  }
  return std::unique_ptr<Server>(
      new Server(service, options, fd, ntohs(addr.sin_port)));
}

Server::Server(service::QueryService* service, ServerOptions options,
               int listen_fd, uint16_t port)
    : service_(service), options_(options), listen_fd_(listen_fd), port_(port) {
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

Server::~Server() { Stop(); }

void Server::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  // Wakes the blocked accept(2); further accepts fail and the loop exits.
  shutdown(listen_fd_, SHUT_RDWR);
  accept_thread_.join();

  std::vector<std::shared_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    connections.swap(connections_);
  }
  for (const std::shared_ptr<Connection>& conn : connections) {
    // Severing the socket wakes the reader (EOF -> client-abort teardown,
    // cancelling any in-flight query) and any blocked send in the writer.
    shutdown(conn->fd, SHUT_RDWR);
    {
      std::lock_guard<std::mutex> lock(conn->mutex);
      conn->closed = true;
      conn->query_cancelled = true;
    }
    conn->cv.notify_all();
  }
  for (const std::shared_ptr<Connection>& conn : connections) {
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->writer.joinable()) conn->writer.join();
  }
  close(listen_fd_);
}

void Server::AcceptLoop() {
  while (true) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (Stop) or fatally broken
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      close(fd);
      return;
    }
    auto conn = std::make_shared<Connection>(fd);
    connections_.push_back(conn);
    service_->metrics().OnConnectionOpened();
    // Thread starts stay under mutex_ so Stop's join snapshot can never see
    // a registered connection whose threads are not yet running.
    conn->reader = std::thread([this, conn] { ReaderLoop(conn); });
    conn->writer = std::thread([this, conn] { WriterLoop(conn); });
  }
}

// --- Reader ----------------------------------------------------------------

void Server::ReaderLoop(const std::shared_ptr<Connection>& conn) {
  bool graceful = false;  // answered with kError; drain before closing
  std::vector<uint8_t> payload;
  while (true) {
    const Status read = ReadFrame(conn->fd, &payload, options_.max_frame_bytes);
    if (!read.ok()) {
      if (read.IsCorruption()) {
        // Malformed framing is unrecoverable (the stream position is lost):
        // answer once at connection level, then close.
        service_->metrics().OnMalformedFrame();
        PushControlFrame(conn.get(), EncodeErrorFrame(0, read));
        graceful = true;
      }
      break;
    }
    Result<FrameHead> head = DecodeFrameHead(payload);
    if (!head.ok()) {
      service_->metrics().OnMalformedFrame();
      PushControlFrame(conn.get(), EncodeErrorFrame(0, head.status()));
      graceful = true;
      break;
    }
    if (head.value().type == FrameType::kQuery) {
      if (!HandleQuery(conn, head.value().request_id, payload)) {
        graceful = true;
        break;
      }
      continue;
    }
    if (head.value().type == FrameType::kCancel) {
      service::QueryHandle handle;
      {
        std::lock_guard<std::mutex> lock(conn->mutex);
        if (!conn->query_active || !conn->have_handle ||
            conn->request_id != head.value().request_id) {
          continue;  // stale cancel (the query already finalized): ignore
        }
        conn->query_cancelled = true;
        handle = conn->handle;
      }
      conn->cv.notify_all();
      handle.Cancel();
      continue;
    }
    // A server->client frame type arriving at the server is a protocol
    // violation.
    service_->metrics().OnMalformedFrame();
    PushControlFrame(
        conn.get(),
        EncodeErrorFrame(head.value().request_id,
                         Status::InvalidArgument("unexpected frame type")));
    graceful = true;
    break;
  }

  // Teardown. A query still in flight means the client walked away from it
  // (or broke protocol): cancel it server-side so it stops burning a worker.
  service::QueryHandle abandoned;
  bool abort = false;
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (conn->query_active && !conn->query_done && conn->have_handle) {
      abort = true;
      abandoned = conn->handle;
    }
    conn->query_cancelled = true;
    if (graceful) {
      conn->draining = true;
    } else {
      conn->closed = true;
    }
  }
  conn->cv.notify_all();
  if (abort) {
    abandoned.Cancel();
    service_->metrics().OnClientAbort();
  }
  service_->metrics().OnConnectionClosed();
}

bool Server::HandleQuery(const std::shared_ptr<Connection>& conn,
                         uint64_t request_id,
                         std::span<const uint8_t> payload) {
  Result<engine::QueryRequest> request = DecodeQueryBody(payload);
  if (!request.ok()) {
    service_->metrics().OnMalformedFrame();
    PushControlFrame(conn.get(), EncodeErrorFrame(request_id, request.status()));
    return false;
  }
  bool busy = false;
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (conn->query_active) {
      // One query at a time per connection; the client must await kFinal.
      // (The frame is pushed after the lock drops: PushControlFrame takes
      // conn->mutex itself.)
      busy = true;
    }
  }
  if (busy) {
    PushControlFrame(
        conn.get(),
        EncodeErrorFrame(request_id, Status::ResourceExhausted(
                                         "a query is already in flight on "
                                         "this connection")));
    return true;
  }
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    conn->query_active = true;
    conn->have_handle = false;
    conn->query_done = false;
    conn->query_cancelled = false;
    conn->request_id = request_id;
    conn->streamed_results = 0;
    conn->sink = std::make_shared<NetResultSink>(
        conn.get(), request_id, options_.outbox_capacity_bytes);
  }

  service::QueryService::StreamHooks hooks;
  hooks.sink = conn->sink.get();
  // Holds the connection alive until the query completes, even if the
  // client disconnects and the server stops first. NetResultSink's raw
  // back-pointer relies on this: the engine only calls the sink before
  // on_done fires, and this capture is released only after it fires.
  hooks.on_done = [conn] {
    {
      std::lock_guard<std::mutex> lock(conn->mutex);
      conn->query_done = true;
    }
    conn->cv.notify_all();
  };
  Result<service::QueryHandle> handle =
      service_->Submit(request.MoveValueUnsafe(), std::move(hooks));
  if (!handle.ok()) {
    {
      std::lock_guard<std::mutex> lock(conn->mutex);
      conn->query_active = false;
      conn->sink.reset();
    }
    PushControlFrame(conn.get(), EncodeErrorFrame(request_id, handle.status()));
    return true;
  }
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    conn->handle = handle.MoveValueUnsafe();
    conn->have_handle = true;
  }
  // on_done may have fired before the handle landed (cache hit completes
  // inside Submit); re-check the writer's wake condition now.
  conn->cv.notify_all();
  return true;
}

// --- Writer ----------------------------------------------------------------

void Server::WriterLoop(const std::shared_ptr<Connection>& conn) {
  std::unique_lock<std::mutex> lock(conn->mutex);
  while (true) {
    conn->cv.wait(lock, [&] {
      return conn->closed || !conn->outbox.empty() ||
             (conn->query_done && conn->have_handle) ||
             (conn->draining && !conn->query_active);
    });
    if (conn->closed) break;

    if (!conn->outbox.empty()) {
      Connection::OutFrame frame = std::move(conn->outbox.front());
      conn->outbox.pop_front();
      conn->outbox_bytes -= frame.bytes.size();
      lock.unlock();
      conn->cv.notify_all();  // freed room: wake a backpressure-stalled sink
      const Status sent = WriteAll(conn->fd, frame.bytes.data(),
                                   frame.bytes.size());
      if (sent.ok() && frame.is_batch) {
        service_->metrics().OnStreamedBatch(frame.results, frame.bytes.size());
      }
      lock.lock();
      if (!sent.ok()) {
        conn->closed = true;  // peer gone: the reader will notice EOF too
        break;
      }
      continue;
    }

    if (conn->query_done && conn->have_handle) {
      // Outbox drained and the query completed: emit the final frame with
      // the MTTON tail the batches did not cover.
      const service::QueryHandle handle = conn->handle;
      const uint64_t request_id = conn->request_id;
      const size_t streamed = conn->streamed_results;
      // Free the slot before the final frame hits the wire: the moment the
      // client sees kFinal it may legally send its next query, and the
      // reader must not find the slot still occupied.
      conn->query_active = false;
      conn->have_handle = false;
      conn->query_done = false;
      conn->handle = service::QueryHandle();
      conn->sink.reset();
      lock.unlock();
      conn->cv.notify_all();
      Result<engine::QueryResponse> result = handle.Wait();  // non-blocking
      const std::string frame =
          result.ok() ? EncodeFinalFrame(request_id, result.value(), streamed)
                      : EncodeErrorFrame(request_id, result.status());
      const Status sent = WriteAll(conn->fd, frame.data(), frame.size());
      lock.lock();
      if (!sent.ok()) {
        conn->closed = true;
        break;
      }
      continue;
    }

    if (conn->draining && !conn->query_active) break;
  }
  lock.unlock();
  conn->cv.notify_all();
  // Sever both directions so the client sees EOF after the drained frames
  // and a reader still blocked in recv() wakes up.
  shutdown(conn->fd, SHUT_RDWR);
}

}  // namespace xk::net
