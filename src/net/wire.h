// Copyright (c) the XKeyword authors.
//
// The socket wire protocol between net::Client and net::Server: a stream of
// length-prefixed binary frames over one TCP (loopback) connection.
//
//   frame    := u32 payload_length (little-endian) | payload
//   payload  := u8 frame_type | u64 request_id | type-specific body
//
// Client -> server:
//   kQuery   — one engine::QueryRequest (keywords, decomposition, mode,
//              deadline, cache mode, every QueryOptions scalar knob). The
//              server rejects a second kQuery while one is in flight on the
//              same connection with a kError frame.
//   kCancel  — cooperative cancel of the in-flight query named by request_id.
//
// Server -> client:
//   kBatch   — a finalized prefix chunk of the in-flight query's MTTON list
//              (engine::ResultSink semantics: concatenating the batches in
//              arrival order yields a prefix of the final sorted answer).
//   kFinal   — the query is done: status, completeness, coverage, execution
//              stats, and the *tail* of the MTTON list (everything not
//              already shipped in kBatch frames). The client reassembles
//              the full response as concat(batches) + tail, byte-identical
//              to QueryService::Submit(...).Wait() in process.
//   kError   — request-level failure with no response (admission rejection,
//              protocol violation). request_id 0 = connection-level fault
//              (e.g. malformed frame); the server closes after sending it.
//
// Integers are little-endian and fixed-width; strings and vectors are
// u32-count-prefixed. Both ends enforce `kMaxFrameBytes` before trusting a
// length prefix, so a corrupt or hostile peer cannot trigger an unbounded
// allocation — an oversized or short frame is a kCorruption decode error,
// which the server answers with kError and a close (counted in
// Metrics::OnMalformedFrame).

#ifndef XK_NET_WIRE_H_
#define XK_NET_WIRE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/query_request.h"
#include "present/mtton.h"

namespace xk::net {

/// Hard ceiling on one frame's payload, checked before allocation on both
/// ends. Generous: a 64 MiB frame holds ~2M MTTON occurrence rows.
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

enum class FrameType : uint8_t {
  kQuery = 1,
  kCancel = 2,
  kBatch = 3,
  kFinal = 4,
  kError = 5,
};

// --- Encoding (returns a complete frame: length prefix + payload) ---------

std::string EncodeQueryFrame(uint64_t request_id,
                             const engine::QueryRequest& request);
std::string EncodeCancelFrame(uint64_t request_id);
std::string EncodeBatchFrame(uint64_t request_id,
                             std::span<const present::Mtton> batch);
/// Final frame for `response`, shipping only mttons[tail_start..] (the part
/// no kBatch frame already delivered).
std::string EncodeFinalFrame(uint64_t request_id,
                             const engine::QueryResponse& response,
                             size_t tail_start);
std::string EncodeErrorFrame(uint64_t request_id, const Status& error);

// --- Decoding (operates on one frame's payload, prefix already stripped) --

/// The type-independent head of a payload. Decode this first, then the body.
struct FrameHead {
  FrameType type = FrameType::kError;
  uint64_t request_id = 0;
};
Result<FrameHead> DecodeFrameHead(std::span<const uint8_t> payload);

Result<engine::QueryRequest> DecodeQueryBody(std::span<const uint8_t> payload);
Result<std::vector<present::Mtton>> DecodeBatchBody(
    std::span<const uint8_t> payload);

/// A decoded kFinal body: the response carries only the MTTON tail; the
/// caller prepends the batches it saw. `tail_start` echoes the encoder's
/// split point so the client can verify it saw exactly that many streamed
/// results before the final frame.
struct FinalBody {
  engine::QueryResponse response;
  uint64_t tail_start = 0;
};
Result<FinalBody> DecodeFinalBody(std::span<const uint8_t> payload);

/// Reconstructs the Status a kError frame carries into `*error`; the return
/// value is the decode outcome (kCorruption on a malformed body).
Status DecodeErrorBody(std::span<const uint8_t> payload, Status* error);

// --- Blocking framed I/O over a connected socket --------------------------

/// Reads exactly one frame payload. kAborted = the peer closed the
/// connection cleanly at a frame boundary; kCorruption = oversized length
/// prefix or mid-frame EOF; kInternal = socket error.
Status ReadFrame(int fd, std::vector<uint8_t>* payload,
                 uint32_t max_frame_bytes = kMaxFrameBytes);

/// Writes the complete buffer (handling short writes; MSG_NOSIGNAL so a dead
/// peer surfaces as a Status, not SIGPIPE). kAborted = peer gone.
Status WriteAll(int fd, const void* data, size_t size);

}  // namespace xk::net

#endif  // XK_NET_WIRE_H_
