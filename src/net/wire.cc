#include "net/wire.h"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>

#include "common/strings.h"

namespace xk::net {

namespace {

// --- Little-endian primitive writers into a growing frame buffer ----------

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutI32(std::string* out, int32_t v) { PutU32(out, static_cast<uint32_t>(v)); }
void PutI64(std::string* out, int64_t v) { PutU64(out, static_cast<uint64_t>(v)); }

void PutF64(std::string* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

void PutMtton(std::string* out, const present::Mtton& m) {
  PutI32(out, m.ctssn_index);
  PutI32(out, m.score);
  PutU32(out, static_cast<uint32_t>(m.objects.size()));
  for (storage::ObjectId id : m.objects) PutI64(out, id);
}

void PutMttons(std::string* out, std::span<const present::Mtton> mttons) {
  PutU32(out, static_cast<uint32_t>(mttons.size()));
  for (const present::Mtton& m : mttons) PutMtton(out, m);
}

void PutOptions(std::string* out, const engine::QueryOptions& o) {
  PutI32(out, o.max_size_z);
  PutI32(out, o.max_network_size);
  PutU64(out, o.per_network_k);
  PutU64(out, o.global_k);
  PutU8(out, o.enable_cache ? 1 : 0);
  PutU64(out, o.cache_capacity);
  PutI32(out, o.num_threads);
  PutI32(out, o.intra_plan_threads);
  PutU64(out, o.morsel_size);
  PutU8(out, o.enable_semijoin_pruning ? 1 : 0);
  PutU8(out, o.enable_subplan_reuse ? 1 : 0);
  PutU64(out, o.subplan_cache_budget_bytes);
  PutU8(out, o.cost_ordered_scheduling ? 1 : 0);
  PutU8(out, o.vectorized ? 1 : 0);
  PutU8(out, static_cast<uint8_t>(o.kernel_dispatch));
  PutI32(out, o.num_shards);
  PutI32(out, o.shard_parallelism);
  PutU8(out, o.shard_bound_pushdown ? 1 : 0);
  PutU8(out, static_cast<uint8_t>(o.full_mode));
  PutU8(out, o.enable_scan_reuse ? 1 : 0);
  PutU8(out, o.enable_anytime ? 1 : 0);
  PutF64(out, o.anytime_cost_budget);
  PutF64(out, o.anytime_headroom);
  PutU64(out, o.anytime_min_plan_rows);
}

void PutStats(std::string* out, const engine::ExecutionStats& s) {
  PutU64(out, s.probes.probes);
  PutU64(out, s.probes.rows_scanned);
  PutU64(out, s.probes.rows_matched);
  PutU64(out, s.probes.bloom_skips);
  PutU64(out, s.cache_hits);
  PutU64(out, s.cache_misses);
  PutU64(out, s.results);
  PutU64(out, s.reuse_hits);
  PutU64(out, s.reuse_misses);
  PutU64(out, s.bloom_build_rows);
  PutU64(out, s.subplan_hits);
  PutU64(out, s.subplan_misses);
  PutU64(out, s.subplan_bytes);
  PutU64(out, s.dedup_saved_rows);
  PutU64(out, s.shard_fanout);
  PutU64(out, s.shard_bound_prunes);
  PutU64(out, s.shard_early_stops);
  PutU32(out, s.simd_isa);
}

/// Starts a frame: 4-byte length placeholder + payload head. SealFrame
/// backfills the length once the payload is complete.
std::string BeginFrame(FrameType type, uint64_t request_id) {
  std::string frame;
  PutU32(&frame, 0);  // placeholder
  PutU8(&frame, static_cast<uint8_t>(type));
  PutU64(&frame, request_id);
  return frame;
}

std::string SealFrame(std::string frame) {
  const uint32_t payload = static_cast<uint32_t>(frame.size() - 4);
  for (int i = 0; i < 4; ++i) {
    frame[static_cast<size_t>(i)] =
        static_cast<char>((payload >> (8 * i)) & 0xff);
  }
  return frame;
}

// --- Cursor-based reader with sticky failure -------------------------------

class Reader {
 public:
  explicit Reader(std::span<const uint8_t> data) : data_(data) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && pos_ == data_.size(); }

  uint8_t GetU8() {
    if (!Need(1)) return 0;
    return data_[pos_++];
  }

  uint32_t GetU32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
    }
    return v;
  }

  uint64_t GetU64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
    }
    return v;
  }

  int32_t GetI32() { return static_cast<int32_t>(GetU32()); }
  int64_t GetI64() { return static_cast<int64_t>(GetU64()); }

  double GetF64() {
    const uint64_t bits = GetU64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string GetString() {
    const uint32_t n = GetU32();
    if (!Need(n)) return {};
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  present::Mtton GetMtton() {
    present::Mtton m;
    m.ctssn_index = GetI32();
    m.score = GetI32();
    const uint32_t n = GetU32();
    // Bound the reserve by what the payload can actually hold (8 bytes per
    // object id) so a corrupt count cannot drive a huge allocation.
    if (!Need(static_cast<size_t>(n) * 8)) return m;
    m.objects.reserve(n);
    for (uint32_t i = 0; i < n; ++i) m.objects.push_back(GetI64());
    return m;
  }

  std::vector<present::Mtton> GetMttons() {
    std::vector<present::Mtton> mttons;
    const uint32_t n = GetU32();
    for (uint32_t i = 0; i < n && ok_; ++i) mttons.push_back(GetMtton());
    return mttons;
  }

 private:
  bool Need(size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

Status MalformedError(const char* what) {
  return Status::Corruption(StrFormat("malformed frame: %s", what));
}

/// Skips the 9-byte head (type + request_id) a body decoder does not
/// re-examine; DecodeFrameHead validated it already.
bool SkipHead(Reader* r) {
  r->GetU8();
  r->GetU64();
  return r->ok();
}

}  // namespace

// --- Encoders --------------------------------------------------------------

std::string EncodeQueryFrame(uint64_t request_id,
                             const engine::QueryRequest& request) {
  std::string frame = BeginFrame(FrameType::kQuery, request_id);
  PutU32(&frame, static_cast<uint32_t>(request.keywords.size()));
  for (const std::string& k : request.keywords) PutString(&frame, k);
  PutString(&frame, request.decomposition);
  PutU8(&frame, static_cast<uint8_t>(request.mode));
  PutI64(&frame, request.deadline.count());
  PutU8(&frame, static_cast<uint8_t>(request.cache_mode));
  PutOptions(&frame, request.options);
  return SealFrame(std::move(frame));
}

std::string EncodeCancelFrame(uint64_t request_id) {
  return SealFrame(BeginFrame(FrameType::kCancel, request_id));
}

std::string EncodeBatchFrame(uint64_t request_id,
                             std::span<const present::Mtton> batch) {
  std::string frame = BeginFrame(FrameType::kBatch, request_id);
  PutMttons(&frame, batch);
  return SealFrame(std::move(frame));
}

std::string EncodeFinalFrame(uint64_t request_id,
                             const engine::QueryResponse& response,
                             size_t tail_start) {
  std::string frame = BeginFrame(FrameType::kFinal, request_id);
  PutU8(&frame, static_cast<uint8_t>(response.status.code()));
  PutString(&frame, response.status.message());
  PutU8(&frame, static_cast<uint8_t>(response.completeness));
  PutU32(&frame, response.coverage.cns_executed);
  PutU32(&frame, response.coverage.cns_skipped);
  PutI32(&frame, response.coverage.exhausted_class);
  PutU8(&frame, response.coverage.interrupted ? 1 : 0);
  PutStats(&frame, response.stats);
  PutU64(&frame, static_cast<uint64_t>(tail_start));
  PutMttons(&frame, std::span<const present::Mtton>(response.mttons)
                        .subspan(std::min(tail_start, response.mttons.size())));
  return SealFrame(std::move(frame));
}

std::string EncodeErrorFrame(uint64_t request_id, const Status& error) {
  std::string frame = BeginFrame(FrameType::kError, request_id);
  PutU8(&frame, static_cast<uint8_t>(error.code()));
  PutString(&frame, error.message());
  return SealFrame(std::move(frame));
}

// --- Decoders --------------------------------------------------------------

Result<FrameHead> DecodeFrameHead(std::span<const uint8_t> payload) {
  Reader r(payload);
  FrameHead head;
  const uint8_t type = r.GetU8();
  head.request_id = r.GetU64();
  if (!r.ok()) return MalformedError("truncated head");
  if (type < static_cast<uint8_t>(FrameType::kQuery) ||
      type > static_cast<uint8_t>(FrameType::kError)) {
    return MalformedError("unknown frame type");
  }
  head.type = static_cast<FrameType>(type);
  return head;
}

Result<engine::QueryRequest> DecodeQueryBody(std::span<const uint8_t> payload) {
  Reader r(payload);
  if (!SkipHead(&r)) return MalformedError("truncated head");
  engine::QueryRequest req;
  const uint32_t num_keywords = r.GetU32();
  for (uint32_t i = 0; i < num_keywords && r.ok(); ++i) {
    req.keywords.push_back(r.GetString());
  }
  req.decomposition = r.GetString();
  const uint8_t mode = r.GetU8();
  if (mode > static_cast<uint8_t>(engine::QueryMode::kAll)) {
    return MalformedError("bad query mode");
  }
  req.mode = static_cast<engine::QueryMode>(mode);
  req.deadline = std::chrono::nanoseconds(r.GetI64());
  const uint8_t cache_mode = r.GetU8();
  if (cache_mode > static_cast<uint8_t>(engine::CacheMode::kRefresh)) {
    return MalformedError("bad cache mode");
  }
  req.cache_mode = static_cast<engine::CacheMode>(cache_mode);

  engine::QueryOptions& o = req.options;
  o.max_size_z = r.GetI32();
  o.max_network_size = r.GetI32();
  o.per_network_k = r.GetU64();
  o.global_k = r.GetU64();
  o.enable_cache = r.GetU8() != 0;
  o.cache_capacity = r.GetU64();
  o.num_threads = r.GetI32();
  o.intra_plan_threads = r.GetI32();
  o.morsel_size = r.GetU64();
  o.enable_semijoin_pruning = r.GetU8() != 0;
  o.enable_subplan_reuse = r.GetU8() != 0;
  o.subplan_cache_budget_bytes = r.GetU64();
  o.cost_ordered_scheduling = r.GetU8() != 0;
  o.vectorized = r.GetU8() != 0;
  const uint8_t kernel_dispatch = r.GetU8();
  if (kernel_dispatch > static_cast<uint8_t>(engine::KernelDispatch::kRequireSimd)) {
    return MalformedError("bad kernel dispatch");
  }
  o.kernel_dispatch = static_cast<engine::KernelDispatch>(kernel_dispatch);
  o.num_shards = r.GetI32();
  o.shard_parallelism = r.GetI32();
  o.shard_bound_pushdown = r.GetU8() != 0;
  const uint8_t full_mode = r.GetU8();
  if (full_mode > static_cast<uint8_t>(engine::FullMode::kHashJoin)) {
    return MalformedError("bad full mode");
  }
  o.full_mode = static_cast<engine::FullMode>(full_mode);
  o.enable_scan_reuse = r.GetU8() != 0;
  o.enable_anytime = r.GetU8() != 0;
  o.anytime_cost_budget = r.GetF64();
  o.anytime_headroom = r.GetF64();
  o.anytime_min_plan_rows = r.GetU64();
  if (!r.AtEnd()) return MalformedError("bad query body");
  return req;
}

Result<std::vector<present::Mtton>> DecodeBatchBody(
    std::span<const uint8_t> payload) {
  Reader r(payload);
  if (!SkipHead(&r)) return MalformedError("truncated head");
  std::vector<present::Mtton> mttons = r.GetMttons();
  if (!r.AtEnd()) return MalformedError("bad batch body");
  return mttons;
}

Result<FinalBody> DecodeFinalBody(std::span<const uint8_t> payload) {
  Reader r(payload);
  if (!SkipHead(&r)) return MalformedError("truncated head");
  FinalBody body;
  const uint8_t code = r.GetU8();
  const std::string msg = r.GetString();
  if (code > static_cast<uint8_t>(StatusCode::kCancelled)) {
    return MalformedError("bad status code");
  }
  body.response.status = code == 0
                             ? Status::OK()
                             : Status(static_cast<StatusCode>(code), msg);
  const uint8_t completeness = r.GetU8();
  if (completeness > static_cast<uint8_t>(engine::Completeness::kFailed)) {
    return MalformedError("bad completeness");
  }
  body.response.completeness = static_cast<engine::Completeness>(completeness);
  body.response.coverage.cns_executed = r.GetU32();
  body.response.coverage.cns_skipped = r.GetU32();
  body.response.coverage.exhausted_class = r.GetI32();
  body.response.coverage.interrupted = r.GetU8() != 0;
  engine::ExecutionStats& s = body.response.stats;
  s.probes.probes = r.GetU64();
  s.probes.rows_scanned = r.GetU64();
  s.probes.rows_matched = r.GetU64();
  s.probes.bloom_skips = r.GetU64();
  s.cache_hits = r.GetU64();
  s.cache_misses = r.GetU64();
  s.results = r.GetU64();
  s.reuse_hits = r.GetU64();
  s.reuse_misses = r.GetU64();
  s.bloom_build_rows = r.GetU64();
  s.subplan_hits = r.GetU64();
  s.subplan_misses = r.GetU64();
  s.subplan_bytes = r.GetU64();
  s.dedup_saved_rows = r.GetU64();
  s.shard_fanout = r.GetU64();
  s.shard_bound_prunes = r.GetU64();
  s.shard_early_stops = r.GetU64();
  s.simd_isa = r.GetU32();
  body.tail_start = r.GetU64();
  body.response.mttons = r.GetMttons();
  if (!r.AtEnd()) return MalformedError("bad final body");
  return body;
}

Status DecodeErrorBody(std::span<const uint8_t> payload, Status* error) {
  Reader r(payload);
  if (!SkipHead(&r)) return MalformedError("truncated head");
  const uint8_t code = r.GetU8();
  const std::string msg = r.GetString();
  if (!r.AtEnd() || code == 0 ||
      code > static_cast<uint8_t>(StatusCode::kCancelled)) {
    return MalformedError("bad error body");
  }
  *error = Status(static_cast<StatusCode>(code), msg);
  return Status::OK();
}

// --- Framed socket I/O -----------------------------------------------------

namespace {

/// Reads exactly `size` bytes. Returns 1 on success, 0 on clean EOF before
/// the first byte, -1 on mid-buffer EOF or socket error.
int ReadExact(int fd, uint8_t* buf, size_t size) {
  size_t got = 0;
  while (got < size) {
    const ssize_t n = recv(fd, buf + got, size - got, 0);
    if (n == 0) return got == 0 ? 0 : -1;
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    got += static_cast<size_t>(n);
  }
  return 1;
}

}  // namespace

Status ReadFrame(int fd, std::vector<uint8_t>* payload,
                 uint32_t max_frame_bytes) {
  uint8_t prefix[4];
  const int head = ReadExact(fd, prefix, sizeof(prefix));
  if (head == 0) return Status::Aborted("connection closed");
  if (head < 0) return Status::Corruption("truncated frame prefix");
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<uint32_t>(prefix[i]) << (8 * i);
  }
  if (length < 9) return Status::Corruption("frame shorter than its head");
  if (length > max_frame_bytes) {
    return Status::Corruption(
        StrFormat("frame of %u bytes exceeds the %u-byte limit", length,
                  max_frame_bytes));
  }
  payload->resize(length);
  if (ReadExact(fd, payload->data(), length) != 1) {
    return Status::Corruption("truncated frame payload");
  }
  return Status::OK();
}

Status WriteAll(int fd, const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = send(fd, p + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::Aborted("peer closed the connection");
      }
      return Status::Internal(StrFormat("send failed: %s", strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace xk::net
