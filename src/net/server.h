// Copyright (c) the XKeyword authors.
//
// net::Server: the socket serving front-end over one service::QueryService.
// Accepts loopback TCP connections speaking the length-prefixed frame
// protocol of net/wire.h and serves one query at a time per connection,
// streaming finalized top-k prefixes to the client while the engine still
// runs (see engine::ResultSink).
//
// Thread model — thread-per-connection, split in two:
//
//   * a reader thread owns recv(): it decodes kQuery / kCancel frames,
//     submits to the QueryService with streaming hooks attached, and is the
//     disconnect detector — EOF or a socket error with a query still in
//     flight turns into a cooperative cancel of exactly that query
//     (Metrics::OnClientAbort) so an abandoned expensive query stops
//     consuming a worker at its next cancellation poll;
//   * a writer thread owns send(): it drains the connection's bounded
//     outbox of kBatch frames and, once the query completes, emits the
//     kFinal frame carrying status/completeness/coverage/stats plus the
//     MTTON tail no batch already shipped.
//
// Backpressure: the outbox is bounded in bytes. A client that stops reading
// eventually fills its socket buffer, then its outbox; the streaming sink
// then blocks the *query's own* engine thread (polling its CancelToken, so
// deadline or cancel still breaks the stall) — other connections and other
// queries are unaffected. When a stall ends in cancellation the sink drops
// the batch and goes silent; the kFinal tail still carries every result the
// response kept, so the client never sees a gap.

#ifndef XK_NET_SERVER_H_
#define XK_NET_SERVER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"
#include "net/wire.h"
#include "service/query_service.h"

namespace xk::net {

struct ServerOptions {
  /// TCP port to bind on 127.0.0.1; 0 = kernel-assigned ephemeral port
  /// (read it back with Server::port()).
  uint16_t port = 0;
  /// listen(2) backlog.
  int backlog = 128;
  /// Byte bound of each connection's outbox of streamed batch frames; a
  /// slow client blocks its own query once the outbox is full.
  size_t outbox_capacity_bytes = 4u << 20;
  /// Per-frame payload ceiling enforced on received frames.
  uint32_t max_frame_bytes = kMaxFrameBytes;

  Status Validate() const {
    if (backlog < 1) return Status::InvalidArgument("backlog must be >= 1");
    if (outbox_capacity_bytes == 0) {
      return Status::InvalidArgument("outbox_capacity_bytes must be >= 1");
    }
    if (max_frame_bytes < 64 || max_frame_bytes > kMaxFrameBytes) {
      return Status::InvalidArgument("max_frame_bytes out of range");
    }
    return Status::OK();
  }
};

class Server {
 public:
  /// Binds and listens on 127.0.0.1:port and starts the accept loop. The
  /// service must outlive the server.
  static Result<std::unique_ptr<Server>> Start(service::QueryService* service,
                                               ServerOptions options = {});

  /// Stops accepting, severs every connection (in-flight queries are
  /// cancelled through the usual client-abort path), and joins all threads.
  /// Idempotent.
  void Stop();

  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (the kernel's pick when options.port was 0).
  uint16_t port() const { return port_; }
  const ServerOptions& options() const { return options_; }

  /// Implementation detail, public only so the .cc's file-local streaming
  /// sink can name it.
  struct Connection;

 private:
  Server(service::QueryService* service, ServerOptions options, int listen_fd,
         uint16_t port);

  void AcceptLoop();
  void ReaderLoop(const std::shared_ptr<Connection>& conn);
  void WriterLoop(const std::shared_ptr<Connection>& conn);
  /// Handles one decoded kQuery frame; returns false when the connection
  /// must close (protocol violation already answered with kError).
  bool HandleQuery(const std::shared_ptr<Connection>& conn,
                   uint64_t request_id, std::span<const uint8_t> payload);

  service::QueryService* const service_;
  const ServerOptions options_;
  const int listen_fd_;
  const uint16_t port_;

  std::thread accept_thread_;
  std::mutex mutex_;  // guards connections_, stopping_
  bool stopping_ = false;
  std::vector<std::shared_ptr<Connection>> connections_;
};

}  // namespace xk::net

#endif  // XK_NET_SERVER_H_
