// Copyright (c) the XKeyword authors.
//
// net::Client: the in-repo counterpart of net::Server for tests, benches and
// tools. One Client owns one blocking loopback connection and is not
// thread-safe; open one per thread.
//
// Two levels of API:
//
//   * Run() — synchronous convenience: send the query, consume kBatch
//     frames until kFinal / kError, and reassemble the exact QueryResponse
//     the in-process QueryService::Submit(...).Wait() would have returned
//     (concat(batches) + final-frame tail; same hits, same order). The
//     optional `batches` out-param exposes the raw streaming boundaries for
//     differential tests.
//   * SendQuery() / ReadEvent() / SendCancel() — frame-level control for
//     tests that need to act mid-stream (cancel after the first batch,
//     disconnect with the query still running, ...).

#ifndef XK_NET_CLIENT_H_
#define XK_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "net/wire.h"

namespace xk::net {

class Client {
 public:
  /// Connects to 127.0.0.1:port.
  static Result<Client> Connect(uint16_t port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Severs the connection immediately (idempotent; the destructor calls
  /// it). With a query in flight this is the client-abort path: the server
  /// cancels the query server-side.
  void Close();

  bool connected() const { return fd_ >= 0; }

  // --- Synchronous convenience --------------------------------------------

  /// Sends `request` and blocks until the response is complete. When
  /// `batches` is non-null every kBatch frame's MTTON list is appended to it
  /// in arrival order (their concatenation is a prefix of the returned
  /// response's mttons).
  Result<engine::QueryResponse> Run(
      const engine::QueryRequest& request,
      std::vector<std::vector<present::Mtton>>* batches = nullptr);

  // --- Frame-level control ------------------------------------------------

  /// One server->client protocol event.
  struct Event {
    enum class Kind { kBatch, kFinal, kError };
    Kind kind = Kind::kError;
    uint64_t request_id = 0;
    /// kBatch only.
    std::vector<present::Mtton> batch;
    /// kFinal only: response carries the tail; tail_start echoes how many
    /// results the server streamed ahead of it.
    engine::QueryResponse response;
    uint64_t tail_start = 0;
    /// kError only.
    Status error;
  };

  /// Sends one kQuery frame and returns its request id without waiting.
  Result<uint64_t> SendQuery(const engine::QueryRequest& request);
  /// Sends a kCancel for an outstanding request.
  Status SendCancel(uint64_t request_id);
  /// Blocks for the next server frame. kAborted = the server closed the
  /// connection; kCorruption = undecodable frame.
  Result<Event> ReadEvent();

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
};

}  // namespace xk::net

#endif  // XK_NET_CLIENT_H_
