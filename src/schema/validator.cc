#include "schema/validator.h"

#include <unordered_map>
#include <unordered_set>

#include "common/strings.h"

namespace xk::schema {

namespace {

/// Finds the schema root with the given label, or an error.
Result<SchemaNodeId> RootByLabel(const SchemaGraph& schema, const std::string& label) {
  for (SchemaNodeId r : schema.Roots()) {
    if (schema.label(r) == label) return r;
  }
  return Status::Corruption(StrFormat("no schema root labeled '%s'", label.c_str()));
}

}  // namespace

Result<ValidationResult> Validate(const xml::XmlGraph& graph,
                                  const SchemaGraph& schema) {
  ValidationResult out;
  out.node_types.assign(static_cast<size_t>(graph.NumNodes()), kNoSchemaNode);
  out.node_counts.assign(static_cast<size_t>(schema.NumNodes()), 0);

  // Type roots, then propagate down containment edges (iterative DFS).
  std::vector<xml::NodeId> stack;
  for (xml::NodeId root : graph.Roots()) {
    XK_ASSIGN_OR_RETURN(SchemaNodeId s, RootByLabel(schema, graph.label(root)));
    out.node_types[static_cast<size_t>(root)] = s;
    stack.push_back(root);
  }

  std::vector<int64_t> edge_counts(static_cast<size_t>(schema.NumEdges()), 0);

  while (!stack.empty()) {
    xml::NodeId n = stack.back();
    stack.pop_back();
    SchemaNodeId sn = out.node_types[static_cast<size_t>(n)];
    ++out.node_counts[static_cast<size_t>(sn)];

    // Type children; count per containment edge for maxOccurs/choice checks.
    std::unordered_map<SchemaEdgeId, int> child_edge_counts;
    for (xml::NodeId c : graph.children(n)) {
      const std::string& label = graph.label(c);
      SchemaNodeId cs = kNoSchemaNode;
      SchemaEdgeId via = -1;
      for (SchemaEdgeId e : schema.out_edges(sn)) {
        const SchemaEdge& edge = schema.edge(e);
        if (edge.kind == EdgeKind::kContainment && schema.label(edge.to) == label) {
          cs = edge.to;
          via = e;
          break;
        }
      }
      if (cs == kNoSchemaNode) {
        return Status::Corruption(
            StrFormat("element '%s' not allowed under '%s'", label.c_str(),
                      schema.label(sn).c_str()));
      }
      out.node_types[static_cast<size_t>(c)] = cs;
      ++child_edge_counts[via];
      ++edge_counts[static_cast<size_t>(via)];
      stack.push_back(c);
    }

    for (const auto& [e, count] : child_edge_counts) {
      if (!schema.edge(e).max_occurs_many && count > 1) {
        return Status::Corruption(StrFormat(
            "edge %s -> %s has maxOccurs 1 but %d children",
            schema.label(schema.edge(e).from).c_str(),
            schema.label(schema.edge(e).to).c_str(), count));
      }
    }
  }

  // Every node must have been reached (graph is a containment forest).
  for (xml::NodeId n = 0; n < graph.NumNodes(); ++n) {
    if (out.node_types[static_cast<size_t>(n)] == kNoSchemaNode) {
      return Status::Corruption(
          StrFormat("node %lld ('%s') unreachable from any root",
                    static_cast<long long>(n), graph.label(n).c_str()));
    }
  }

  // Check reference edges and count them per schema edge; also enforce
  // choice content models (an instance of a choice node picks exactly one
  // alternative, whether the alternatives are children or references).
  for (xml::NodeId n = 0; n < graph.NumNodes(); ++n) {
    SchemaNodeId sn = out.node_types[static_cast<size_t>(n)];
    std::unordered_map<SchemaEdgeId, int> ref_counts;
    for (xml::NodeId t : graph.references_out(n)) {
      SchemaNodeId st = out.node_types[static_cast<size_t>(t)];
      auto e = schema.FindReferenceEdge(sn, st);
      if (!e.ok()) {
        return Status::Corruption(
            StrFormat("reference %s -> %s not in schema",
                      schema.label(sn).c_str(), schema.label(st).c_str()));
      }
      ++ref_counts[*e];
      ++edge_counts[static_cast<size_t>(*e)];
    }
    for (const auto& [e, count] : ref_counts) {
      if (!schema.edge(e).max_occurs_many && count > 1) {
        return Status::Corruption(StrFormat(
            "reference %s -> %s has maxOccurs 1 but %d targets",
            schema.label(schema.edge(e).from).c_str(),
            schema.label(schema.edge(e).to).c_str(), count));
      }
    }
    if (schema.kind(sn) == NodeKind::kChoice) {
      std::unordered_set<SchemaEdgeId> alternatives;
      for (const auto& [e, count] : ref_counts) {
        (void)count;
        alternatives.insert(e);
      }
      for (xml::NodeId c : graph.children(n)) {
        SchemaNodeId cs = out.node_types[static_cast<size_t>(c)];
        for (SchemaEdgeId e : schema.out_edges(sn)) {
          if (schema.edge(e).kind == EdgeKind::kContainment &&
              schema.edge(e).to == cs) {
            alternatives.insert(e);
            break;
          }
        }
      }
      if (alternatives.size() > 1) {
        return Status::Corruption(
            StrFormat("choice node '%s' instantiates %zu alternatives",
                      schema.label(sn).c_str(), alternatives.size()));
      }
    }
  }

  // Fanout statistics.
  out.avg_fanout.assign(static_cast<size_t>(schema.NumEdges()), 0.0);
  out.avg_reverse_fanout.assign(static_cast<size_t>(schema.NumEdges()), 0.0);
  for (SchemaEdgeId e = 0; e < schema.NumEdges(); ++e) {
    const SchemaEdge& edge = schema.edge(e);
    int64_t from_count = out.node_counts[static_cast<size_t>(edge.from)];
    int64_t to_count = out.node_counts[static_cast<size_t>(edge.to)];
    int64_t instances = edge_counts[static_cast<size_t>(e)];
    out.avg_fanout[static_cast<size_t>(e)] =
        from_count == 0 ? 0.0
                        : static_cast<double>(instances) / static_cast<double>(from_count);
    out.avg_reverse_fanout[static_cast<size_t>(e)] =
        to_count == 0 ? 0.0
                      : static_cast<double>(instances) / static_cast<double>(to_count);
  }
  return out;
}

}  // namespace xk::schema
