// Copyright (c) the XKeyword authors.
//
// Validation of an XML graph against a schema graph: assigns every XML node
// its schema type, checks containment/reference conformance, choice-node and
// maxOccurs constraints, and gathers the statistics of Section 4
// (s(S) node counts, c(S -> S') average fanouts).

#ifndef XK_SCHEMA_VALIDATOR_H_
#define XK_SCHEMA_VALIDATOR_H_

#include <vector>

#include "common/result.h"
#include "schema/schema_graph.h"
#include "xml/xml_graph.h"

namespace xk::schema {

/// Outcome of validating an XML graph.
struct ValidationResult {
  /// Schema node of each XML node (indexed by xml::NodeId).
  std::vector<SchemaNodeId> node_types;
  /// s(S): instance count per schema node (indexed by SchemaNodeId).
  std::vector<int64_t> node_counts;
  /// Average forward fanout per schema edge (indexed by SchemaEdgeId):
  /// c(S -> S') = (#instance edges) / s(S).
  std::vector<double> avg_fanout;
  /// Reverse fanout per schema edge: (#instance edges) / s(S').
  std::vector<double> avg_reverse_fanout;
};

/// Validates `graph` against `schema`. Every XML root must match a schema
/// root by label; children are typed by label within their parent's schema
/// node; reference edges must match schema reference edges; choice nodes may
/// have at most one child edge kind instantiated; maxOccurs=1 edges at most
/// one instance child.
Result<ValidationResult> Validate(const xml::XmlGraph& graph,
                                  const SchemaGraph& schema);

}  // namespace xk::schema

#endif  // XK_SCHEMA_VALIDATOR_H_
