#include "schema/tss_tree.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace xk::schema {

std::vector<std::vector<int>> TssTree::Adjacency() const {
  std::vector<std::vector<int>> adj(nodes.size());
  for (size_t e = 0; e < edges.size(); ++e) {
    adj[static_cast<size_t>(edges[e].from)].push_back(static_cast<int>(e));
    adj[static_cast<size_t>(edges[e].to)].push_back(static_cast<int>(e));
  }
  return adj;
}

Status TssTree::Validate(const TssGraph& tss) const {
  if (nodes.empty()) return Status::InvalidArgument("empty tree");
  if (edges.size() != nodes.size() - 1) {
    return Status::InvalidArgument(
        StrFormat("tree shape: %zu nodes, %zu edges", nodes.size(), edges.size()));
  }
  for (TssId t : nodes) {
    if (t < 0 || t >= tss.NumSegments()) return Status::OutOfRange("bad segment id");
  }
  for (const TssTreeEdge& e : edges) {
    if (e.from < 0 || e.from >= num_nodes() || e.to < 0 || e.to >= num_nodes() ||
        e.from == e.to) {
      return Status::OutOfRange("bad edge endpoints");
    }
    if (e.tss_edge < 0 || e.tss_edge >= tss.NumEdges()) {
      return Status::OutOfRange("bad TSS edge id");
    }
    const TssEdge& te = tss.edge(e.tss_edge);
    if (nodes[static_cast<size_t>(e.from)] != te.from ||
        nodes[static_cast<size_t>(e.to)] != te.to) {
      return Status::InvalidArgument(
          StrFormat("edge %d does not instantiate TSS edge %d endpoints", e.from,
                    e.tss_edge));
    }
  }
  // Connectivity.
  std::vector<bool> seen(nodes.size(), false);
  std::vector<int> stack = {0};
  seen[0] = true;
  auto adj = Adjacency();
  size_t count = 1;
  while (!stack.empty()) {
    int v = stack.back();
    stack.pop_back();
    for (int ei : adj[static_cast<size_t>(v)]) {
      int u = edges[static_cast<size_t>(ei)].from == v
                  ? edges[static_cast<size_t>(ei)].to
                  : edges[static_cast<size_t>(ei)].from;
      if (!seen[static_cast<size_t>(u)]) {
        seen[static_cast<size_t>(u)] = true;
        ++count;
        stack.push_back(u);
      }
    }
  }
  if (count != nodes.size()) return Status::InvalidArgument("tree not connected");
  return Status::OK();
}

std::string TssTree::ToString(const TssGraph& tss) const {
  std::string out;
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) out += " ";
    out += StrFormat("%zu:%s", i, tss.name(nodes[i]).c_str());
  }
  for (const TssTreeEdge& e : edges) {
    out += StrFormat(" (%d-[%d]->%d)", e.from, e.tss_edge, e.to);
  }
  return out;
}

Mult OutwardMult(const TssTree& tree, const TssGraph& tss, int node,
                 int edge_index) {
  const TssTreeEdge& e = tree.edges[static_cast<size_t>(edge_index)];
  const TssEdge& te = tss.edge(e.tss_edge);
  XK_CHECK(e.from == node || e.to == node);
  return e.from == node ? te.forward_mult : te.reverse_mult;
}

namespace {

/// AHU encoding of the tree rooted at `root`.
std::string Encode(const TssTree& tree, const std::vector<std::vector<int>>& adj,
                   int root, int via_edge) {
  std::vector<std::string> child_codes;
  for (int ei : adj[static_cast<size_t>(root)]) {
    if (ei == via_edge) continue;
    const TssTreeEdge& e = tree.edges[static_cast<size_t>(ei)];
    int child = e.from == root ? e.to : e.from;
    // Direction marker: does the traversal follow the TSS edge direction?
    char dir = e.from == root ? '>' : '<';
    child_codes.push_back(StrFormat("%c%d", dir, e.tss_edge) +
                          Encode(tree, adj, child, ei));
  }
  std::sort(child_codes.begin(), child_codes.end());
  std::string code = StrFormat("[%d", tree.nodes[static_cast<size_t>(root)]);
  for (const std::string& c : child_codes) code += c;
  code += "]";
  return code;
}

}  // namespace

std::string CanonicalKey(const TssTree& tree, const TssGraph& tss) {
  (void)tss;
  auto adj = tree.Adjacency();
  std::string best;
  for (int r = 0; r < tree.num_nodes(); ++r) {
    std::string code = Encode(tree, adj, r, -1);
    if (best.empty() || code < best) best = std::move(code);
  }
  return best;
}

Impossibility CheckStructurallyPossible(const TssTree& tree, const TssGraph& tss) {
  auto adj = tree.Adjacency();
  for (int v = 0; v < tree.num_nodes(); ++v) {
    const std::vector<int>& inc = adj[static_cast<size_t>(v)];

    int containment_parents = 0;
    for (int ei : inc) {
      const TssTreeEdge& e = tree.edges[static_cast<size_t>(ei)];
      const TssEdge& te = tss.edge(e.tss_edge);
      if (e.to == v && te.kind == EdgeKind::kContainment) ++containment_parents;
    }
    if (containment_parents >= 2) return Impossibility::kTwoContainmentParents;

    for (size_t i = 0; i < inc.size(); ++i) {
      const TssTreeEdge& e1 = tree.edges[static_cast<size_t>(inc[i])];
      const TssEdge& te1 = tss.edge(e1.tss_edge);
      for (size_t j = i + 1; j < inc.size(); ++j) {
        const TssTreeEdge& e2 = tree.edges[static_cast<size_t>(inc[j])];
        const TssEdge& te2 = tss.edge(e2.tss_edge);

        // Choice conflict: two departures through one exclusively-owned
        // choice node.
        if (e1.from == v && e2.from == v &&
            te1.choice_group != kNoSchemaNode &&
            te1.choice_group == te2.choice_group &&
            te1.choice_prefix_mult == Mult::kOne &&
            te2.choice_prefix_mult == Mult::kOne) {
          return Impossibility::kChoiceConflict;
        }

        // To-one duplicates: two same-type, same-orientation neighbors
        // through an edge that admits exactly one neighbor on that side.
        if (e1.tss_edge == e2.tss_edge) {
          bool both_out = e1.from == v && e2.from == v;
          bool both_in = e1.to == v && e2.to == v;
          if (both_out && te1.forward_mult == Mult::kOne) {
            return Impossibility::kToOneDuplicate;
          }
          if (both_in && te1.reverse_mult == Mult::kOne) {
            return Impossibility::kToOneDuplicate;
          }
        }
      }
    }
  }
  return Impossibility::kNone;
}

}  // namespace xk::schema
