// Copyright (c) the XKeyword authors.
//
// Edge multiplicities. Every (composed) edge of the TSS graph carries a
// forward and a reverse multiplicity in {one, many}; Theorem 5.3's MVD test
// and the optimizer's fanout estimates are phrased in terms of these.
//
//   containment parent -> child : forward = many unless maxOccurs = 1,
//                                 reverse = one (a node has one parent)
//   reference src -> dst        : forward = one unless IDREFS,
//                                 reverse = many (many nodes may point here)
//
// Composition along a path of hops: many if any hop is many.

#ifndef XK_SCHEMA_MULTIPLICITY_H_
#define XK_SCHEMA_MULTIPLICITY_H_

namespace xk::schema {

enum class Mult { kOne, kMany };

/// Multiplicity of a path = many iff any hop is many.
inline Mult Compose(Mult a, Mult b) {
  return (a == Mult::kMany || b == Mult::kMany) ? Mult::kMany : Mult::kOne;
}

inline const char* MultToString(Mult m) { return m == Mult::kOne ? "one" : "many"; }

}  // namespace xk::schema

#endif  // XK_SCHEMA_MULTIPLICITY_H_
