// Copyright (c) the XKeyword authors.
//
// Target Schema Segment (TSS) graphs, Section 3.1 / Figure 6. The
// administrator partially maps schema nodes into segments ("minimal
// self-contained information pieces"); unmapped schema nodes are *dummy*
// nodes (supplier, sub, line in the TPC-H schema) that carry no information
// but mediate connections. A TSS edge is a schema edge between mapped nodes,
// or a directed path of schema edges through dummy nodes; it composes the
// multiplicities of its hops and remembers the first choice node on its path
// (edges sharing a choice group are mutually exclusive per instance).
// Each edge carries two semantic explanations ("supplied, supplied by")
// used to annotate presentation graphs.

#ifndef XK_SCHEMA_TSS_GRAPH_H_
#define XK_SCHEMA_TSS_GRAPH_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "schema/schema_graph.h"

namespace xk::schema {

using TssId = int;
using TssEdgeId = int;

inline constexpr TssId kNoTss = -1;

/// One directed traversal of a schema edge inside a TSS-edge path.
struct PathHop {
  SchemaEdgeId edge;
  bool forward;  // true: from -> to of the schema edge

  bool operator==(const PathHop&) const = default;
};

/// An edge of the TSS graph.
struct TssEdge {
  TssEdgeId id;
  TssId from;
  TssId to;
  /// Schema edges traversed from the `from` segment to the `to` segment
  /// (length 1 for direct edges; longer through dummy nodes).
  std::vector<PathHop> path;
  /// Reference iff any hop is a reference schema edge; such edges can share
  /// target instances across sources (Section 6 exploits this for caching).
  EdgeKind kind;
  /// Composed multiplicities: walking from the `from` side / the `to` side.
  Mult forward_mult;
  Mult reverse_mult;
  /// First choice schema node the path departs from (kNoSchemaNode if none).
  /// Two edges leaving one instance through the same choice group cannot
  /// coexist — the useless-fragment rule 1 and CN pruning use this.
  SchemaNodeId choice_group;
  /// Composed forward multiplicity of the hops *before* the choice node.
  /// When kOne, a source instance owns exactly one choice-node instance, so
  /// two departures through the group are mutually exclusive; when kMany the
  /// alternatives can coexist via distinct choice-node instances.
  Mult choice_prefix_mult;
  /// Concrete mapped schema endpoints of the path.
  SchemaNodeId from_schema;
  SchemaNodeId to_schema;
  /// Semantic explanations (Figure 6): in edge direction / reverse.
  std::string forward_desc;
  std::string reverse_desc;
};

/// The TSS graph, built over a schema graph then frozen by Finalize().
class TssGraph {
 public:
  /// `schema` must outlive the TssGraph.
  explicit TssGraph(const SchemaGraph* schema);

  /// Declares a segment: `head` identifies instances (one target object per
  /// head instance); `members` are further schema nodes folded into the
  /// object (they must be containment descendants of the head). A schema
  /// node may belong to at most one segment.
  Result<TssId> AddSegment(std::string name, SchemaNodeId head,
                           std::vector<SchemaNodeId> members = {});

  /// Derives all TSS edges (direct + through dummy chains) and validates the
  /// mapping. Must be called exactly once, after all segments are added.
  Status Finalize();

  bool finalized() const { return finalized_; }

  /// Attaches semantic explanations to an edge.
  Status AnnotateEdge(TssEdgeId e, std::string forward_desc,
                      std::string reverse_desc);

  int NumSegments() const { return static_cast<int>(segments_.size()); }
  int NumEdges() const { return static_cast<int>(edges_.size()); }

  const std::string& name(TssId t) const { return segments_[CheckT(t)].name; }
  SchemaNodeId head(TssId t) const { return segments_[CheckT(t)].head; }
  const std::vector<SchemaNodeId>& members(TssId t) const {
    return segments_[CheckT(t)].members;  // includes the head
  }

  const TssEdge& edge(TssEdgeId e) const;
  /// Edge ids incident to `t` (either endpoint), in id order.
  const std::vector<TssEdgeId>& incident_edges(TssId t) const {
    return segments_[CheckT(t)].incident;
  }

  /// Segment of a schema node, or kNoTss for dummy schema nodes.
  TssId SegmentOfSchemaNode(SchemaNodeId s) const;
  bool IsDummy(SchemaNodeId s) const { return SegmentOfSchemaNode(s) == kNoTss; }

  /// The unique edge between `from` and `to` in that direction; fails if
  /// absent or ambiguous (parallel edges exist, e.g. multiple link types).
  Result<TssEdgeId> FindEdge(TssId from, TssId to) const;

  /// The unique segment named `name`.
  Result<TssId> SegmentByName(const std::string& name) const;

  const SchemaGraph& schema() const { return *schema_; }

 private:
  struct Segment {
    std::string name;
    SchemaNodeId head;
    std::vector<SchemaNodeId> members;  // head first
    std::vector<TssEdgeId> incident;
  };

  size_t CheckT(TssId t) const;

  /// DFS from mapped node `s` through dummy nodes, emitting edges.
  void DeriveEdgesFrom(SchemaNodeId start);
  void WalkForward(SchemaNodeId start, SchemaNodeId current,
                   std::vector<PathHop>* path, std::vector<bool>* on_path);
  void EmitEdge(SchemaNodeId from_schema, SchemaNodeId to_schema,
                const std::vector<PathHop>& path);

  const SchemaGraph* schema_;
  std::vector<Segment> segments_;
  std::vector<TssEdge> edges_;
  std::vector<TssId> schema_to_tss_;  // indexed by SchemaNodeId
  bool finalized_ = false;
};

}  // namespace xk::schema

#endif  // XK_SCHEMA_TSS_GRAPH_H_
