// Copyright (c) the XKeyword authors.
//
// Target decomposition (Section 3.1): instantiates the TSS graph over a
// validated XML graph, producing the *target object graph* — "the
// representation of the XML graph in terms of target objects". Connection
// relations (src/decomp) are materialized from this graph; the on-demand
// expansion algorithm walks its adjacency.

#ifndef XK_SCHEMA_DECOMPOSER_H_
#define XK_SCHEMA_DECOMPOSER_H_

#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "schema/tss_graph.h"
#include "schema/validator.h"
#include "storage/value.h"
#include "xml/xml_graph.h"

namespace xk::schema {

/// One target object: the instance of a TSS, identified by its head element.
struct TargetObject {
  storage::ObjectId id;  // dense, == index in TargetObjectGraph::objects()
  TssId tss;
  xml::NodeId head;
};

/// An instance of a TSS edge between two target objects.
struct TargetObjectEdge {
  storage::ObjectId from;
  storage::ObjectId to;
  TssEdgeId edge;
};

/// Graph of target objects with typed adjacency.
class TargetObjectGraph {
 public:
  int64_t NumObjects() const { return static_cast<int64_t>(objects_.size()); }
  const TargetObject& object(storage::ObjectId o) const {
    return objects_[static_cast<size_t>(o)];
  }

  /// Target object owning XML node `n`; kInvalidId for dummy nodes.
  storage::ObjectId ObjectOfNode(xml::NodeId n) const {
    return node_to_object_[static_cast<size_t>(n)];
  }

  /// XML member nodes of object `o` (head + folded members, document order).
  const std::vector<xml::NodeId>& MemberNodes(storage::ObjectId o) const {
    return member_nodes_[static_cast<size_t>(o)];
  }

  /// Objects reachable from `o` along TSS edge `e` in its direction.
  const std::vector<storage::ObjectId>& Forward(storage::ObjectId o,
                                                TssEdgeId e) const;
  /// Objects from which `o` is reachable along `e`.
  const std::vector<storage::ObjectId>& Reverse(storage::ObjectId o,
                                                TssEdgeId e) const;

  const std::vector<TargetObjectEdge>& edges() const { return edges_; }

  /// Objects of segment `t`, in id order.
  const std::vector<storage::ObjectId>& ObjectsOfSegment(TssId t) const {
    return objects_by_tss_[static_cast<size_t>(t)];
  }

  /// s(T): number of objects of segment `t`.
  int64_t CountOfSegment(TssId t) const {
    return static_cast<int64_t>(objects_by_tss_[static_cast<size_t>(t)].size());
  }

 private:
  friend class Decomposer;

  std::vector<TargetObject> objects_;
  std::vector<std::vector<xml::NodeId>> member_nodes_;
  std::vector<storage::ObjectId> node_to_object_;
  std::vector<TargetObjectEdge> edges_;
  std::vector<std::vector<storage::ObjectId>> objects_by_tss_;
  // adjacency: object -> (tss edge -> neighbors)
  std::vector<std::unordered_map<TssEdgeId, std::vector<storage::ObjectId>>> fwd_;
  std::vector<std::unordered_map<TssEdgeId, std::vector<storage::ObjectId>>> rev_;
  std::vector<storage::ObjectId> empty_;
};

/// Runs the target decomposition.
class Decomposer {
 public:
  Decomposer(const xml::XmlGraph* graph, const ValidationResult* validation,
             const TssGraph* tss);

  Result<TargetObjectGraph> Run();

 private:
  const xml::XmlGraph* graph_;
  const ValidationResult* validation_;
  const TssGraph* tss_;
};

}  // namespace xk::schema

#endif  // XK_SCHEMA_DECOMPOSER_H_
