#include "schema/decomposer.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "common/strings.h"

namespace xk::schema {

const std::vector<storage::ObjectId>& TargetObjectGraph::Forward(
    storage::ObjectId o, TssEdgeId e) const {
  const auto& map = fwd_[static_cast<size_t>(o)];
  auto it = map.find(e);
  return it == map.end() ? empty_ : it->second;
}

const std::vector<storage::ObjectId>& TargetObjectGraph::Reverse(
    storage::ObjectId o, TssEdgeId e) const {
  const auto& map = rev_[static_cast<size_t>(o)];
  auto it = map.find(e);
  return it == map.end() ? empty_ : it->second;
}

Decomposer::Decomposer(const xml::XmlGraph* graph, const ValidationResult* validation,
                       const TssGraph* tss)
    : graph_(graph), validation_(validation), tss_(tss) {
  XK_CHECK(graph != nullptr && validation != nullptr && tss != nullptr);
  XK_CHECK(tss->finalized());
}

Result<TargetObjectGraph> Decomposer::Run() {
  const xml::XmlGraph& g = *graph_;
  const TssGraph& tss = *tss_;
  TargetObjectGraph out;
  out.node_to_object_.assign(static_cast<size_t>(g.NumNodes()), storage::kInvalidId);
  out.objects_by_tss_.resize(static_cast<size_t>(tss.NumSegments()));

  auto type_of = [&](xml::NodeId n) {
    return validation_->node_types[static_cast<size_t>(n)];
  };

  // Pass 1: create objects. Nodes are visited parents-before-children so a
  // member node can inherit the object of its containment parent.
  std::vector<xml::NodeId> order;
  order.reserve(static_cast<size_t>(g.NumNodes()));
  {
    std::vector<xml::NodeId> stack = g.Roots();
    std::reverse(stack.begin(), stack.end());
    while (!stack.empty()) {
      xml::NodeId n = stack.back();
      stack.pop_back();
      order.push_back(n);
      const std::vector<xml::NodeId>& kids = g.children(n);
      for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
    }
  }

  for (xml::NodeId n : order) {
    SchemaNodeId s = type_of(n);
    TssId t = tss.SegmentOfSchemaNode(s);
    if (t == kNoTss) continue;  // dummy
    if (tss.head(t) == s) {
      storage::ObjectId id = static_cast<storage::ObjectId>(out.objects_.size());
      out.objects_.push_back(TargetObject{id, t, n});
      out.member_nodes_.push_back({n});
      out.node_to_object_[static_cast<size_t>(n)] = id;
      out.objects_by_tss_[static_cast<size_t>(t)].push_back(id);
    } else {
      // Non-head member: owned by the parent's object (validated same TSS).
      xml::NodeId p = g.parent(n);
      if (p == xml::kNoNode) {
        return Status::Corruption(
            StrFormat("member node %lld of segment '%s' has no parent",
                      static_cast<long long>(n), tss.name(t).c_str()));
      }
      storage::ObjectId obj = out.node_to_object_[static_cast<size_t>(p)];
      if (obj == storage::kInvalidId || out.objects_[static_cast<size_t>(obj)].tss != t) {
        return Status::Corruption(StrFormat(
            "member node %lld of segment '%s' not nested in a head instance",
            static_cast<long long>(n), tss.name(t).c_str()));
      }
      out.node_to_object_[static_cast<size_t>(n)] = obj;
      out.member_nodes_[static_cast<size_t>(obj)].push_back(n);
    }
  }

  out.fwd_.resize(out.objects_.size());
  out.rev_.resize(out.objects_.size());

  // Pass 2: instantiate TSS edges. For each edge, walk its hop path from
  // every instance of its source schema node.
  for (TssEdgeId e = 0; e < tss.NumEdges(); ++e) {
    const TssEdge& te = tss.edge(e);
    // Collect source instances: all XML nodes typed te.from_schema.
    for (xml::NodeId n : order) {
      if (type_of(n) != te.from_schema) continue;
      storage::ObjectId from_obj = out.node_to_object_[static_cast<size_t>(n)];
      XK_CHECK_NE(from_obj, storage::kInvalidId);
      // Walk the hop path; `frontier` holds current XML endpoints.
      std::vector<xml::NodeId> frontier = {n};
      for (const PathHop& hop : te.path) {
        const SchemaEdge& se = tss.schema().edge(hop.edge);
        std::vector<xml::NodeId> next;
        for (xml::NodeId f : frontier) {
          if (hop.forward) {
            if (se.kind == EdgeKind::kContainment) {
              for (xml::NodeId c : g.children(f)) {
                if (type_of(c) == se.to) next.push_back(c);
              }
            } else {
              for (xml::NodeId c : g.references_out(f)) {
                if (type_of(c) == se.to) next.push_back(c);
              }
            }
          } else {
            if (se.kind == EdgeKind::kContainment) {
              xml::NodeId p = g.parent(f);
              if (p != xml::kNoNode && type_of(p) == se.from) next.push_back(p);
            } else {
              for (xml::NodeId c : g.references_in(f)) {
                if (type_of(c) == se.from) next.push_back(c);
              }
            }
          }
        }
        frontier = std::move(next);
        if (frontier.empty()) break;
      }
      // Emit deduplicated (from_obj -> to_obj) pairs.
      std::unordered_set<storage::ObjectId> seen;
      for (xml::NodeId endpoint : frontier) {
        storage::ObjectId to_obj = out.node_to_object_[static_cast<size_t>(endpoint)];
        XK_CHECK_NE(to_obj, storage::kInvalidId);
        if (!seen.insert(to_obj).second) continue;
        out.edges_.push_back(TargetObjectEdge{from_obj, to_obj, e});
        out.fwd_[static_cast<size_t>(from_obj)][e].push_back(to_obj);
        out.rev_[static_cast<size_t>(to_obj)][e].push_back(from_obj);
      }
    }
  }

  return out;
}

}  // namespace xk::schema
