// Copyright (c) the XKeyword authors.
//
// Trees of TSS occurrences with directed TSS edges — the common shape of
// fragments (Definition 5.2) and candidate TSS networks (Section 4). A tree
// may contain the same segment several times (unfolding, Definition 5.1 /
// Figure 10: "fragments that contain the same TSS more than once").
//
// Shared machinery lives here: adjacency, outward multiplicities (the basis
// of Theorem 5.3), canonical keys for deduplication, and the structural
// impossibility rules (choice groups, unique containment parents, to-one
// duplicate neighbors) used both to prune candidate networks and to reject
// useless fragments.

#ifndef XK_SCHEMA_TSS_TREE_H_
#define XK_SCHEMA_TSS_TREE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "schema/tss_graph.h"

namespace xk::schema {

/// A directed instantiation of a TSS edge between two tree occurrences:
/// occurrence `from` plays the source role of `tss_edge`, `to` the target.
struct TssTreeEdge {
  int from;
  int to;
  TssEdgeId tss_edge;

  bool operator==(const TssTreeEdge&) const = default;
};

/// An uncycled graph (free tree) of TSS occurrences.
struct TssTree {
  /// Occurrence i is an instance of segment nodes[i].
  std::vector<TssId> nodes;
  std::vector<TssTreeEdge> edges;

  int size() const { return static_cast<int>(edges.size()); }
  int num_nodes() const { return static_cast<int>(nodes.size()); }

  /// node -> indexes into `edges` of incident edges.
  std::vector<std::vector<int>> Adjacency() const;

  /// Checks tree shape (connected, |edges| == |nodes|-1) and that every edge
  /// instantiates its TSS edge's endpoints correctly.
  Status Validate(const TssGraph& tss) const;

  /// Human-readable form, e.g. "P<-O->L" style "P{<-placed}O{line->}L".
  std::string ToString(const TssGraph& tss) const;
};

/// Multiplicity leaving occurrence `node` along `edges[edge_index]`:
/// forward_mult when the node is the source role, reverse_mult otherwise.
Mult OutwardMult(const TssTree& tree, const TssGraph& tss, int node,
                 int edge_index);

/// Canonical string key: equal iff the trees are isomorphic respecting
/// segment labels, TSS edge ids and edge directions. AHU encoding minimized
/// over all roots (trees here have <= ~9 nodes).
std::string CanonicalKey(const TssTree& tree, const TssGraph& tss);

/// Why a tree admits no instance (used in diagnostics and tests).
enum class Impossibility {
  kNone = 0,
  kChoiceConflict,        // one occurrence departs twice through a choice group
  kTwoContainmentParents, // an occurrence with two pure-containment incoming edges
  kToOneDuplicate,        // two equal-type neighbors through a to-one edge
};

/// Structural satisfiability: a tree that violates one of the three rules can
/// never be instantiated by any XML graph conforming to the schema. Returns
/// kNone when possible.
Impossibility CheckStructurallyPossible(const TssTree& tree, const TssGraph& tss);

inline bool IsStructurallyPossible(const TssTree& tree, const TssGraph& tss) {
  return CheckStructurallyPossible(tree, tss) == Impossibility::kNone;
}

}  // namespace xk::schema

#endif  // XK_SCHEMA_TSS_TREE_H_
