// Copyright (c) the XKeyword authors.
//
// Text format for schema graphs and TSS graphs, so a deployment can describe
// its database without writing C++ (the paper's administrator "splits the
// schema graph in minimal self-contained information pieces" — this is the
// file they would write). Line-oriented; '#' starts a comment.
//
//   node <id> <label> [choice]          declare a schema node
//   containment <parent> <child> [one|many]      default many
//   reference <src> <dst> [one|many]             default one
//   segment <name> <head-id> [<member-id> ...]   a target schema segment
//   annotate <from-seg> <to-seg> "<forward>" "<reverse>"
//
// Ids are config-local names (labels may repeat across nodes, e.g. two
// `name` nodes under person and part). `annotate` lines refer to segments
// and require a unique TSS edge between them.
//
// Example (a fragment of the Figure 5/6 configuration):
//
//   node person person
//   node pname name
//   node order order
//   containment person pname one
//   containment person order many
//   segment P person pname
//   segment O order
//   annotate P O "placed" "placed by"

#ifndef XK_SCHEMA_CONFIG_PARSER_H_
#define XK_SCHEMA_CONFIG_PARSER_H_

#include <memory>
#include <string_view>

#include "common/result.h"
#include "schema/tss_graph.h"

namespace xk::schema {

/// A parsed configuration: the schema graph plus its finalized TSS graph.
/// Heap-allocated and immovable (the TSS graph points into the schema).
struct SchemaConfig {
  SchemaGraph schema;
  std::unique_ptr<TssGraph> tss;
};

/// Parses a configuration. Errors carry 1-based line numbers.
Result<std::unique_ptr<SchemaConfig>> ParseSchemaConfig(std::string_view text);

/// Renders an existing schema + TSS graph back into the config format
/// (round-trips through ParseSchemaConfig).
std::string WriteSchemaConfig(const SchemaGraph& schema, const TssGraph& tss);

}  // namespace xk::schema

#endif  // XK_SCHEMA_CONFIG_PARSER_H_
