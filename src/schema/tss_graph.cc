#include "schema/tss_graph.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace xk::schema {

TssGraph::TssGraph(const SchemaGraph* schema) : schema_(schema) {
  XK_CHECK(schema != nullptr);
  schema_to_tss_.assign(static_cast<size_t>(schema->NumNodes()), kNoTss);
}

size_t TssGraph::CheckT(TssId t) const {
  XK_CHECK(t >= 0 && t < static_cast<TssId>(segments_.size()));
  return static_cast<size_t>(t);
}

Result<TssId> TssGraph::AddSegment(std::string name, SchemaNodeId head,
                                   std::vector<SchemaNodeId> members) {
  if (finalized_) return Status::Aborted("TSS graph already finalized");
  if (!schema_->ValidNode(head)) return Status::OutOfRange("bad head schema node");
  std::vector<SchemaNodeId> all;
  all.push_back(head);
  for (SchemaNodeId m : members) {
    if (!schema_->ValidNode(m)) return Status::OutOfRange("bad member schema node");
    if (m == head) continue;
    all.push_back(m);
  }
  for (SchemaNodeId m : all) {
    if (schema_to_tss_[static_cast<size_t>(m)] != kNoTss) {
      return Status::AlreadyExists(
          StrFormat("schema node '%s' already mapped to a segment",
                    schema_->label(m).c_str()));
    }
  }
  TssId id = static_cast<TssId>(segments_.size());
  for (SchemaNodeId m : all) schema_to_tss_[static_cast<size_t>(m)] = id;
  segments_.push_back(Segment{std::move(name), head, std::move(all), {}});
  return id;
}

TssId TssGraph::SegmentOfSchemaNode(SchemaNodeId s) const {
  XK_CHECK(schema_->ValidNode(s));
  return schema_to_tss_[static_cast<size_t>(s)];
}

const TssEdge& TssGraph::edge(TssEdgeId e) const {
  XK_CHECK(e >= 0 && e < static_cast<TssEdgeId>(edges_.size()));
  return edges_[static_cast<size_t>(e)];
}

Status TssGraph::Finalize() {
  if (finalized_) return Status::Aborted("TSS graph already finalized");

  // Validate member connectivity: every non-head member must reach the head
  // by walking containment parents through members of the same segment.
  for (TssId t = 0; t < NumSegments(); ++t) {
    const Segment& seg = segments_[static_cast<size_t>(t)];
    for (SchemaNodeId m : seg.members) {
      if (m == seg.head) continue;
      SchemaNodeId cur = m;
      int steps = 0;
      while (cur != seg.head) {
        cur = schema_->ContainmentParent(cur);
        if (cur == kNoSchemaNode ||
            schema_to_tss_[static_cast<size_t>(cur)] != t || ++steps > 64) {
          return Status::InvalidArgument(StrFormat(
              "member '%s' of segment '%s' is not a containment descendant of "
              "head '%s' within the segment",
              schema_->label(m).c_str(), seg.name.c_str(),
              schema_->label(seg.head).c_str()));
        }
      }
    }
  }

  // Derive edges from every mapped schema node.
  for (SchemaNodeId s = 0; s < schema_->NumNodes(); ++s) {
    if (schema_to_tss_[static_cast<size_t>(s)] != kNoTss) DeriveEdgesFrom(s);
  }

  // Deterministic incident lists.
  for (TssEdgeId e = 0; e < NumEdges(); ++e) {
    const TssEdge& edge = edges_[static_cast<size_t>(e)];
    segments_[static_cast<size_t>(edge.from)].incident.push_back(e);
    if (edge.to != edge.from) {
      segments_[static_cast<size_t>(edge.to)].incident.push_back(e);
    }
  }
  finalized_ = true;
  return Status::OK();
}

void TssGraph::DeriveEdgesFrom(SchemaNodeId start) {
  std::vector<PathHop> path;
  std::vector<bool> on_path(static_cast<size_t>(schema_->NumNodes()), false);
  on_path[static_cast<size_t>(start)] = true;
  WalkForward(start, start, &path, &on_path);
}

void TssGraph::WalkForward(SchemaNodeId start, SchemaNodeId current,
                           std::vector<PathHop>* path, std::vector<bool>* on_path) {
  for (SchemaEdgeId e : schema_->out_edges(current)) {
    const SchemaEdge& edge = schema_->edge(e);
    SchemaNodeId next = edge.to;
    if (schema_to_tss_[static_cast<size_t>(next)] != kNoTss) {
      // Reached a mapped node (possibly the start again — recursive edges
      // like part -> sub -> part are legitimate): emit unless the whole path
      // stayed inside one segment (intra-segment structure is not an edge).
      path->push_back(PathHop{e, true});
      if (path->size() > 1 ||
          schema_to_tss_[static_cast<size_t>(start)] !=
              schema_to_tss_[static_cast<size_t>(next)]) {
        EmitEdge(start, next, *path);
      }
      path->pop_back();
    } else {
      // Dummy node: keep walking; dummies may not repeat along one path.
      if ((*on_path)[static_cast<size_t>(next)]) continue;
      path->push_back(PathHop{e, true});
      (*on_path)[static_cast<size_t>(next)] = true;
      WalkForward(start, next, path, on_path);
      (*on_path)[static_cast<size_t>(next)] = false;
      path->pop_back();
    }
  }
}

void TssGraph::EmitEdge(SchemaNodeId from_schema, SchemaNodeId to_schema,
                        const std::vector<PathHop>& path) {
  TssId from = schema_to_tss_[static_cast<size_t>(from_schema)];
  TssId to = schema_to_tss_[static_cast<size_t>(to_schema)];

  EdgeKind kind = EdgeKind::kContainment;
  Mult fwd = Mult::kOne;
  Mult rev = Mult::kOne;
  SchemaNodeId choice_group = kNoSchemaNode;
  Mult choice_prefix_mult = Mult::kOne;
  for (const PathHop& hop : path) {
    const SchemaEdge& se = schema_->edge(hop.edge);
    if (se.kind == EdgeKind::kReference) kind = EdgeKind::kReference;
    Mult hop_fwd = hop.forward ? se.forward_mult() : se.reverse_mult();
    Mult hop_rev = hop.forward ? se.reverse_mult() : se.forward_mult();
    SchemaNodeId departs = hop.forward ? se.from : se.to;
    if (choice_group == kNoSchemaNode &&
        schema_->kind(departs) == NodeKind::kChoice) {
      choice_group = departs;
      choice_prefix_mult = fwd;  // multiplicity accumulated before this hop
    }
    fwd = Compose(fwd, hop_fwd);
    rev = Compose(rev, hop_rev);
  }

  TssEdgeId id = static_cast<TssEdgeId>(edges_.size());
  edges_.push_back(TssEdge{id, from, to, path, kind, fwd, rev, choice_group,
                           choice_prefix_mult, from_schema, to_schema, "", ""});
}

Status TssGraph::AnnotateEdge(TssEdgeId e, std::string forward_desc,
                              std::string reverse_desc) {
  if (e < 0 || e >= NumEdges()) return Status::OutOfRange("bad TSS edge id");
  edges_[static_cast<size_t>(e)].forward_desc = std::move(forward_desc);
  edges_[static_cast<size_t>(e)].reverse_desc = std::move(reverse_desc);
  return Status::OK();
}

Result<TssEdgeId> TssGraph::FindEdge(TssId from, TssId to) const {
  TssEdgeId found = -1;
  for (TssEdgeId e = 0; e < NumEdges(); ++e) {
    const TssEdge& edge = edges_[static_cast<size_t>(e)];
    if (edge.from == from && edge.to == to) {
      if (found != -1) {
        return Status::InvalidArgument(
            StrFormat("multiple TSS edges %s -> %s", name(from).c_str(),
                      name(to).c_str()));
      }
      found = e;
    }
  }
  if (found == -1) {
    return Status::NotFound(StrFormat("no TSS edge %s -> %s", name(from).c_str(),
                                      name(to).c_str()));
  }
  return found;
}

Result<TssId> TssGraph::SegmentByName(const std::string& name) const {
  for (TssId t = 0; t < NumSegments(); ++t) {
    if (segments_[static_cast<size_t>(t)].name == name) return t;
  }
  return Status::NotFound(StrFormat("no segment '%s'", name.c_str()));
}

}  // namespace xk::schema
