#include "schema/config_parser.h"

#include <unordered_map>
#include <vector>

#include "common/strings.h"

namespace xk::schema {

namespace {

/// Splits a config line into tokens; quoted strings ("...") are one token
/// with the quotes stripped.
Result<std::vector<std::string>> TokenizeLine(std::string_view line, size_t lineno) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (c == ' ' || c == '\t') {
      ++i;
      continue;
    }
    if (c == '#') break;
    if (c == '"') {
      size_t end = line.find('"', i + 1);
      if (end == std::string_view::npos) {
        return Status::InvalidArgument(
            StrFormat("line %zu: unterminated quote", lineno));
      }
      tokens.emplace_back(line.substr(i + 1, end - i - 1));
      i = end + 1;
      continue;
    }
    size_t end = i;
    while (end < line.size() && line[end] != ' ' && line[end] != '\t' &&
           line[end] != '#') {
      ++end;
    }
    tokens.emplace_back(line.substr(i, end - i));
    i = end;
  }
  return tokens;
}

Result<bool> ParseMult(const std::string& word, size_t lineno) {
  if (word == "one") return false;
  if (word == "many") return true;
  return Status::InvalidArgument(
      StrFormat("line %zu: expected one|many, got '%s'", lineno, word.c_str()));
}

}  // namespace

Result<std::unique_ptr<SchemaConfig>> ParseSchemaConfig(std::string_view text) {
  auto config = std::make_unique<SchemaConfig>();
  std::unordered_map<std::string, SchemaNodeId> ids;

  struct Annotation {
    std::string from, to, forward, reverse;
    size_t lineno;
  };
  std::vector<Annotation> annotations;
  bool has_segment = false;

  auto lookup = [&](const std::string& id, size_t lineno) -> Result<SchemaNodeId> {
    auto it = ids.find(id);
    if (it == ids.end()) {
      return Status::InvalidArgument(
          StrFormat("line %zu: unknown node id '%s'", lineno, id.c_str()));
    }
    return it->second;
  };

  size_t lineno = 0;
  for (const std::string& raw : Split(std::string(text), '\n')) {
    ++lineno;
    XK_ASSIGN_OR_RETURN(std::vector<std::string> tokens, TokenizeLine(raw, lineno));
    if (tokens.empty()) continue;
    const std::string& verb = tokens[0];

    if (verb == "node") {
      if (tokens.size() < 3 || tokens.size() > 4 ||
          (tokens.size() == 4 && tokens[3] != "choice")) {
        return Status::InvalidArgument(
            StrFormat("line %zu: node <id> <label> [choice]", lineno));
      }
      if (ids.contains(tokens[1])) {
        return Status::InvalidArgument(
            StrFormat("line %zu: duplicate node id '%s'", lineno, tokens[1].c_str()));
      }
      NodeKind kind = tokens.size() == 4 ? NodeKind::kChoice : NodeKind::kAll;
      ids[tokens[1]] = config->schema.AddNode(tokens[2], kind);
    } else if (verb == "containment" || verb == "reference") {
      if (tokens.size() < 3 || tokens.size() > 4) {
        return Status::InvalidArgument(
            StrFormat("line %zu: %s <a> <b> [one|many]", lineno, verb.c_str()));
      }
      XK_ASSIGN_OR_RETURN(SchemaNodeId a, lookup(tokens[1], lineno));
      XK_ASSIGN_OR_RETURN(SchemaNodeId b, lookup(tokens[2], lineno));
      bool many = verb == "containment";  // defaults: containment many, ref one
      if (tokens.size() == 4) {
        XK_ASSIGN_OR_RETURN(many, ParseMult(tokens[3], lineno));
      }
      if (verb == "containment") {
        XK_RETURN_NOT_OK(config->schema.AddContainmentEdge(a, b, many).status());
      } else {
        XK_RETURN_NOT_OK(config->schema.AddReferenceEdge(a, b, many).status());
      }
    } else if (verb == "segment") {
      if (tokens.size() < 3) {
        return Status::InvalidArgument(
            StrFormat("line %zu: segment <name> <head> [members...]", lineno));
      }
      if (config->tss == nullptr) {
        config->tss = std::make_unique<TssGraph>(&config->schema);
      }
      XK_ASSIGN_OR_RETURN(SchemaNodeId head, lookup(tokens[2], lineno));
      std::vector<SchemaNodeId> members;
      for (size_t m = 3; m < tokens.size(); ++m) {
        XK_ASSIGN_OR_RETURN(SchemaNodeId member, lookup(tokens[m], lineno));
        members.push_back(member);
      }
      XK_RETURN_NOT_OK(
          config->tss->AddSegment(tokens[1], head, std::move(members)).status());
      has_segment = true;
    } else if (verb == "annotate") {
      if (tokens.size() != 5) {
        return Status::InvalidArgument(StrFormat(
            "line %zu: annotate <from> <to> \"fwd\" \"rev\"", lineno));
      }
      annotations.push_back(
          Annotation{tokens[1], tokens[2], tokens[3], tokens[4], lineno});
    } else {
      return Status::InvalidArgument(
          StrFormat("line %zu: unknown directive '%s'", lineno, verb.c_str()));
    }
  }

  if (!has_segment || config->tss == nullptr) {
    return Status::InvalidArgument("configuration declares no segment");
  }
  XK_RETURN_NOT_OK(config->tss->Finalize());
  for (const Annotation& a : annotations) {
    XK_ASSIGN_OR_RETURN(TssId from, config->tss->SegmentByName(a.from));
    XK_ASSIGN_OR_RETURN(TssId to, config->tss->SegmentByName(a.to));
    Result<TssEdgeId> edge = config->tss->FindEdge(from, to);
    if (!edge.ok()) {
      return Status::InvalidArgument(
          StrFormat("line %zu: %s", a.lineno, edge.status().message().c_str()));
    }
    XK_RETURN_NOT_OK(config->tss->AnnotateEdge(*edge, a.forward, a.reverse));
  }
  return config;
}

std::string WriteSchemaConfig(const SchemaGraph& schema, const TssGraph& tss) {
  std::string out;
  // Ids: n<index> (stable and collision-free regardless of label duplicates).
  for (SchemaNodeId n = 0; n < schema.NumNodes(); ++n) {
    out += StrFormat("node n%d %s%s\n", n, schema.label(n).c_str(),
                     schema.kind(n) == NodeKind::kChoice ? " choice" : "");
  }
  for (SchemaEdgeId e = 0; e < schema.NumEdges(); ++e) {
    const SchemaEdge& edge = schema.edge(e);
    out += StrFormat("%s n%d n%d %s\n",
                     edge.kind == EdgeKind::kContainment ? "containment"
                                                         : "reference",
                     edge.from, edge.to, edge.max_occurs_many ? "many" : "one");
  }
  for (TssId t = 0; t < tss.NumSegments(); ++t) {
    out += StrFormat("segment %s", tss.name(t).c_str());
    out += StrFormat(" n%d", tss.head(t));
    for (SchemaNodeId m : tss.members(t)) {
      if (m != tss.head(t)) out += StrFormat(" n%d", m);
    }
    out += "\n";
  }
  for (TssEdgeId e = 0; e < tss.NumEdges(); ++e) {
    const TssEdge& edge = tss.edge(e);
    if (edge.forward_desc.empty() && edge.reverse_desc.empty()) continue;
    // Only annotate unique segment pairs (FindEdge requirement).
    bool unique = true;
    for (TssEdgeId other = 0; other < tss.NumEdges(); ++other) {
      if (other != e && tss.edge(other).from == edge.from &&
          tss.edge(other).to == edge.to) {
        unique = false;
      }
    }
    if (!unique) continue;
    out += StrFormat("annotate %s %s \"%s\" \"%s\"\n",
                     tss.name(edge.from).c_str(), tss.name(edge.to).c_str(),
                     edge.forward_desc.c_str(), edge.reverse_desc.c_str());
  }
  return out;
}

}  // namespace xk::schema
