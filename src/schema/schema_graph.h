// Copyright (c) the XKeyword authors.
//
// Schema graphs (Section 3, Figure 5): directed graphs of schema nodes with
// containment and typed reference edges. Nodes are of type `all` or `choice`
// ("we denote choice nodes with an arc over their outgoing edges"); edges
// carry a maxOccurs flag. The CN generator and the decomposition module work
// against this structure.

#ifndef XK_SCHEMA_SCHEMA_GRAPH_H_
#define XK_SCHEMA_SCHEMA_GRAPH_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "schema/multiplicity.h"

namespace xk::schema {

using SchemaNodeId = int;
using SchemaEdgeId = int;

inline constexpr SchemaNodeId kNoSchemaNode = -1;

/// Content model of a schema node.
enum class NodeKind {
  kAll,     // an instance may have children along every outgoing edge
  kChoice,  // an instance has children along exactly one outgoing edge
};

enum class EdgeKind { kContainment, kReference };

/// One schema edge. For containment, from = parent, to = child.
struct SchemaEdge {
  SchemaEdgeId id;
  SchemaNodeId from;
  SchemaNodeId to;
  EdgeKind kind;
  /// Containment: may `from` contain many `to` children? Reference: may one
  /// instance hold several targets (IDREFS)?
  bool max_occurs_many;

  /// Multiplicity seen walking the edge from `from` to `to`.
  Mult forward_mult() const { return max_occurs_many ? Mult::kMany : Mult::kOne; }
  /// Multiplicity seen walking the edge from `to` back to `from`.
  Mult reverse_mult() const {
    // Containment: one parent. Reference: many possible referrers.
    return kind == EdgeKind::kContainment ? Mult::kOne : Mult::kMany;
  }
};

/// The schema graph. Labels need not be globally unique (e.g. `name` appears
/// under several parents in the TPC-H schema); lookups are by parent context
/// or by unique label where applicable.
class SchemaGraph {
 public:
  SchemaGraph() = default;

  SchemaNodeId AddNode(std::string label, NodeKind kind = NodeKind::kAll);

  /// Adds a containment edge parent -> child.
  Result<SchemaEdgeId> AddContainmentEdge(SchemaNodeId parent, SchemaNodeId child,
                                          bool max_occurs_many = true);
  /// Adds a reference edge src -> dst.
  Result<SchemaEdgeId> AddReferenceEdge(SchemaNodeId src, SchemaNodeId dst,
                                        bool max_occurs_many = false);

  int NumNodes() const { return static_cast<int>(nodes_.size()); }
  int NumEdges() const { return static_cast<int>(edges_.size()); }

  const std::string& label(SchemaNodeId n) const { return nodes_[Check(n)].label; }
  NodeKind kind(SchemaNodeId n) const { return nodes_[Check(n)].kind; }
  const SchemaEdge& edge(SchemaEdgeId e) const;

  /// Outgoing (containment + reference) schema edge ids of `n`.
  const std::vector<SchemaEdgeId>& out_edges(SchemaNodeId n) const {
    return nodes_[Check(n)].out;
  }
  /// Incoming schema edge ids of `n`.
  const std::vector<SchemaEdgeId>& in_edges(SchemaNodeId n) const {
    return nodes_[Check(n)].in;
  }

  /// Containment parent schema node, or kNoSchemaNode for schema roots.
  /// (A schema node may have several containment parents in general XML
  /// schemas; this returns the first and NumContainmentParents the count.)
  SchemaNodeId ContainmentParent(SchemaNodeId n) const;
  int NumContainmentParents(SchemaNodeId n) const;

  /// Schema nodes with no containment parent.
  std::vector<SchemaNodeId> Roots() const;

  /// The containment child of `parent` labeled `label`, or NotFound.
  Result<SchemaNodeId> ChildByLabel(SchemaNodeId parent,
                                    const std::string& label) const;

  /// The unique node with `label`; fails if absent or ambiguous.
  Result<SchemaNodeId> NodeByUniqueLabel(const std::string& label) const;

  /// The unique reference edge src -> dst, or NotFound.
  Result<SchemaEdgeId> FindReferenceEdge(SchemaNodeId src, SchemaNodeId dst) const;

  bool ValidNode(SchemaNodeId n) const {
    return n >= 0 && n < static_cast<SchemaNodeId>(nodes_.size());
  }

 private:
  struct Node {
    std::string label;
    NodeKind kind;
    std::vector<SchemaEdgeId> out;
    std::vector<SchemaEdgeId> in;
  };

  size_t Check(SchemaNodeId n) const;

  std::vector<Node> nodes_;
  std::vector<SchemaEdge> edges_;
};

}  // namespace xk::schema

#endif  // XK_SCHEMA_SCHEMA_GRAPH_H_
