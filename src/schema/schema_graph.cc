#include "schema/schema_graph.h"

#include "common/logging.h"
#include "common/strings.h"

namespace xk::schema {

SchemaNodeId SchemaGraph::AddNode(std::string label, NodeKind kind) {
  nodes_.push_back(Node{std::move(label), kind, {}, {}});
  return static_cast<SchemaNodeId>(nodes_.size()) - 1;
}

size_t SchemaGraph::Check(SchemaNodeId n) const {
  XK_CHECK(ValidNode(n));
  return static_cast<size_t>(n);
}

Result<SchemaEdgeId> SchemaGraph::AddContainmentEdge(SchemaNodeId parent,
                                                     SchemaNodeId child,
                                                     bool max_occurs_many) {
  if (!ValidNode(parent) || !ValidNode(child)) {
    return Status::OutOfRange("containment edge endpoint out of range");
  }
  SchemaEdgeId id = static_cast<SchemaEdgeId>(edges_.size());
  edges_.push_back(
      SchemaEdge{id, parent, child, EdgeKind::kContainment, max_occurs_many});
  nodes_[static_cast<size_t>(parent)].out.push_back(id);
  nodes_[static_cast<size_t>(child)].in.push_back(id);
  return id;
}

Result<SchemaEdgeId> SchemaGraph::AddReferenceEdge(SchemaNodeId src, SchemaNodeId dst,
                                                   bool max_occurs_many) {
  if (!ValidNode(src) || !ValidNode(dst)) {
    return Status::OutOfRange("reference edge endpoint out of range");
  }
  SchemaEdgeId id = static_cast<SchemaEdgeId>(edges_.size());
  edges_.push_back(SchemaEdge{id, src, dst, EdgeKind::kReference, max_occurs_many});
  nodes_[static_cast<size_t>(src)].out.push_back(id);
  nodes_[static_cast<size_t>(dst)].in.push_back(id);
  return id;
}

const SchemaEdge& SchemaGraph::edge(SchemaEdgeId e) const {
  XK_CHECK(e >= 0 && e < static_cast<SchemaEdgeId>(edges_.size()));
  return edges_[static_cast<size_t>(e)];
}

SchemaNodeId SchemaGraph::ContainmentParent(SchemaNodeId n) const {
  for (SchemaEdgeId e : nodes_[Check(n)].in) {
    if (edges_[static_cast<size_t>(e)].kind == EdgeKind::kContainment) {
      return edges_[static_cast<size_t>(e)].from;
    }
  }
  return kNoSchemaNode;
}

int SchemaGraph::NumContainmentParents(SchemaNodeId n) const {
  int count = 0;
  for (SchemaEdgeId e : nodes_[Check(n)].in) {
    if (edges_[static_cast<size_t>(e)].kind == EdgeKind::kContainment) ++count;
  }
  return count;
}

std::vector<SchemaNodeId> SchemaGraph::Roots() const {
  std::vector<SchemaNodeId> roots;
  for (SchemaNodeId n = 0; n < NumNodes(); ++n) {
    if (NumContainmentParents(n) == 0) roots.push_back(n);
  }
  return roots;
}

Result<SchemaNodeId> SchemaGraph::ChildByLabel(SchemaNodeId parent,
                                               const std::string& label) const {
  for (SchemaEdgeId e : nodes_[Check(parent)].out) {
    const SchemaEdge& edge = edges_[static_cast<size_t>(e)];
    if (edge.kind == EdgeKind::kContainment &&
        nodes_[static_cast<size_t>(edge.to)].label == label) {
      return edge.to;
    }
  }
  return Status::NotFound(StrFormat("no child '%s' under '%s'", label.c_str(),
                                    nodes_[Check(parent)].label.c_str()));
}

Result<SchemaNodeId> SchemaGraph::NodeByUniqueLabel(const std::string& label) const {
  SchemaNodeId found = kNoSchemaNode;
  for (SchemaNodeId n = 0; n < NumNodes(); ++n) {
    if (nodes_[static_cast<size_t>(n)].label == label) {
      if (found != kNoSchemaNode) {
        return Status::InvalidArgument(StrFormat("label '%s' ambiguous", label.c_str()));
      }
      found = n;
    }
  }
  if (found == kNoSchemaNode) {
    return Status::NotFound(StrFormat("no schema node '%s'", label.c_str()));
  }
  return found;
}

Result<SchemaEdgeId> SchemaGraph::FindReferenceEdge(SchemaNodeId src,
                                                    SchemaNodeId dst) const {
  for (SchemaEdgeId e : nodes_[Check(src)].out) {
    const SchemaEdge& edge = edges_[static_cast<size_t>(e)];
    if (edge.kind == EdgeKind::kReference && edge.to == dst) return e;
  }
  return Status::NotFound(StrFormat("no reference edge %s -> %s",
                                    nodes_[Check(src)].label.c_str(),
                                    nodes_[Check(dst)].label.c_str()));
}

}  // namespace xk::schema
