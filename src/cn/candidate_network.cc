#include "cn/candidate_network.h"

#include <algorithm>

#include "common/strings.h"

namespace xk::cn {

std::vector<std::vector<int>> CandidateNetwork::Adjacency() const {
  std::vector<std::vector<int>> adj(nodes.size());
  for (size_t e = 0; e < edges.size(); ++e) {
    adj[static_cast<size_t>(edges[e].from)].push_back(static_cast<int>(e));
    adj[static_cast<size_t>(edges[e].to)].push_back(static_cast<int>(e));
  }
  return adj;
}

namespace {

std::string NodeLabel(const CnNode& n) {
  std::string out = StrFormat("%d", n.schema_node);
  if (!n.keywords.empty()) {
    out += "^";
    for (int k : n.keywords) out += StrFormat("%d,", k);
  }
  return out;
}

std::string Encode(const CandidateNetwork& cn,
                   const std::vector<std::vector<int>>& adj, int root,
                   int via_edge) {
  std::vector<std::string> child_codes;
  for (int ei : adj[static_cast<size_t>(root)]) {
    if (ei == via_edge) continue;
    const CnEdge& e = cn.edges[static_cast<size_t>(ei)];
    int child = e.from == root ? e.to : e.from;
    char dir = e.from == root ? '>' : '<';
    child_codes.push_back(StrFormat("%c%d", dir, e.edge) +
                          Encode(cn, adj, child, ei));
  }
  std::sort(child_codes.begin(), child_codes.end());
  std::string code = "[" + NodeLabel(cn.nodes[static_cast<size_t>(root)]);
  for (const std::string& c : child_codes) code += c;
  code += "]";
  return code;
}

}  // namespace

std::string CandidateNetwork::CanonicalKey() const {
  auto adj = Adjacency();
  std::string best;
  for (int r = 0; r < num_nodes(); ++r) {
    std::string code = Encode(*this, adj, r, -1);
    if (best.empty() || code < best) best = std::move(code);
  }
  return best;
}

std::string CandidateNetwork::ToString(const schema::SchemaGraph& schema) const {
  std::string out;
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) out += " ";
    out += StrFormat("%zu:%s", i, schema.label(nodes[i].schema_node).c_str());
    if (!nodes[i].keywords.empty()) {
      out += "^{";
      for (size_t j = 0; j < nodes[i].keywords.size(); ++j) {
        if (j > 0) out += ",";
        out += StrFormat("%d", nodes[i].keywords[j]);
      }
      out += "}";
    }
  }
  for (const CnEdge& e : edges) {
    out += StrFormat(" (%d-[%d]->%d)", e.from, e.edge, e.to);
  }
  return out;
}

}  // namespace xk::cn
