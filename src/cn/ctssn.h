// Copyright (c) the XKeyword authors.
//
// Candidate TSS networks (Section 4): "we reduce the candidate networks to
// TSS networks ... The unique TSS network that corresponds to a candidate
// network is called candidate TSS network (CTSSN)." Connection relations
// store target-object ids only, so plans are built against CTSSNs; scores
// stay measured in schema-graph edges (the originating CN's size).

#ifndef XK_CN_CTSSN_H_
#define XK_CN_CTSSN_H_

#include <string>
#include <vector>

#include "cn/candidate_network.h"
#include "schema/tss_tree.h"

namespace xk::cn {

/// A keyword restriction on a CTSSN occurrence: T^{k,S} — the target object
/// must contain query keyword `keyword` inside a member node of type
/// `schema_node` (node ids matter when the same TSS holds several keywords).
struct CtssnKeyword {
  int keyword;
  schema::SchemaNodeId schema_node;

  bool operator==(const CtssnKeyword&) const = default;
};

/// A candidate TSS network.
struct Ctssn {
  schema::TssTree tree;
  /// Per tree occurrence, the keyword restrictions on it.
  std::vector<std::vector<CtssnKeyword>> node_keywords;
  /// Size of the originating candidate network — the score of every MTTON
  /// this network produces.
  int cn_size = 0;

  int num_nodes() const { return tree.num_nodes(); }
  bool IsFree(int node) const {
    return node_keywords[static_cast<size_t>(node)].empty();
  }

  std::string ToString(const schema::TssGraph& tss) const;
};

/// Reduces a candidate network to its (unique) CTSSN. Fails only on CN
/// shapes that cannot arise from the generator (e.g. a dummy schema node
/// acting as a Steiner point of three segments, which no path-shaped TSS
/// edge can express).
Result<Ctssn> ReduceToCtssn(const CandidateNetwork& cn,
                            const schema::SchemaGraph& schema,
                            const schema::TssGraph& tss);

}  // namespace xk::cn

#endif  // XK_CN_CTSSN_H_
