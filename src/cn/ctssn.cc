#include "cn/ctssn.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "common/logging.h"
#include "common/strings.h"

namespace xk::cn {

using schema::PathHop;
using schema::SchemaGraph;
using schema::SchemaNodeId;
using schema::TssGraph;
using schema::TssId;

std::string Ctssn::ToString(const TssGraph& tss) const {
  std::string out = tree.ToString(tss);
  for (int v = 0; v < num_nodes(); ++v) {
    for (const CtssnKeyword& kw : node_keywords[static_cast<size_t>(v)]) {
      out += StrFormat(" %d:k%d@%s", v, kw.keyword,
                       tss.schema().label(kw.schema_node).c_str());
    }
  }
  out += StrFormat(" score=%d", cn_size);
  return out;
}

namespace {

/// Union-find over CN occurrences.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(static_cast<size_t>(n)) {
    for (int i = 0; i < n; ++i) parent_[static_cast<size_t>(i)] = i;
  }
  int Find(int x) {
    while (parent_[static_cast<size_t>(x)] != x) {
      parent_[static_cast<size_t>(x)] =
          parent_[static_cast<size_t>(parent_[static_cast<size_t>(x)])];
      x = parent_[static_cast<size_t>(x)];
    }
    return x;
  }
  void Union(int a, int b) { parent_[static_cast<size_t>(Find(a))] = Find(b); }

 private:
  std::vector<int> parent_;
};

}  // namespace

Result<Ctssn> ReduceToCtssn(const CandidateNetwork& cn, const SchemaGraph& schema,
                            const TssGraph& tss) {
  (void)schema;  // typed interface kept for symmetry with the generator
  const int n = cn.num_nodes();
  auto seg_of = [&](int occ) {
    return tss.SegmentOfSchemaNode(cn.nodes[static_cast<size_t>(occ)].schema_node);
  };

  // 1. Merge occurrences joined by intra-segment edges.
  UnionFind uf(n);
  for (const CnEdge& e : cn.edges) {
    TssId tf = seg_of(e.from);
    TssId tt = seg_of(e.to);
    if (tf != schema::kNoTss && tf == tt) uf.Union(e.from, e.to);
  }

  // 2. Assign CTSSN node indexes to groups of mapped occurrences.
  Ctssn out;
  out.cn_size = cn.size();
  std::unordered_map<int, int> group_to_node;  // uf root -> ctssn node
  std::vector<int> occ_to_node(static_cast<size_t>(n), -1);
  for (int v = 0; v < n; ++v) {
    TssId t = seg_of(v);
    if (t == schema::kNoTss) continue;  // dummy
    int root = uf.Find(v);
    auto it = group_to_node.find(root);
    int node;
    if (it == group_to_node.end()) {
      node = out.tree.num_nodes();
      out.tree.nodes.push_back(t);
      out.node_keywords.emplace_back();
      group_to_node.emplace(root, node);
    } else {
      node = it->second;
    }
    occ_to_node[static_cast<size_t>(v)] = node;
    for (int k : cn.nodes[static_cast<size_t>(v)].keywords) {
      out.node_keywords[static_cast<size_t>(node)].push_back(
          CtssnKeyword{k, cn.nodes[static_cast<size_t>(v)].schema_node});
    }
  }
  if (out.tree.nodes.empty()) {
    return Status::InvalidArgument("network has no mapped occurrence");
  }

  // 3. Walk maximal dummy chains (and direct inter-segment edges) to CTSSN
  // edges. Chains are identified by their CN edge sets to avoid re-emission
  // from the far end.
  auto adj = cn.Adjacency();
  std::set<std::vector<int>> emitted_chains;
  std::vector<bool> dummy_consumed(static_cast<size_t>(n), false);

  Status failure = Status::OK();
  for (int u = 0; u < n && failure.ok(); ++u) {
    if (occ_to_node[static_cast<size_t>(u)] == -1) continue;  // start mapped only
    for (int ei0 : adj[static_cast<size_t>(u)]) {
      // Walk away from u until the next mapped occurrence.
      std::vector<PathHop> hops;
      std::vector<int> chain_edges;
      int prev = u;
      int ei = ei0;
      int cur;
      while (true) {
        const CnEdge& e = cn.edges[static_cast<size_t>(ei)];
        bool forward = e.from == prev;
        cur = forward ? e.to : e.from;
        hops.push_back(PathHop{e.edge, forward});
        chain_edges.push_back(ei);
        if (occ_to_node[static_cast<size_t>(cur)] != -1) break;  // mapped: stop
        // Dummy: must be a pass-through of degree 2.
        const std::vector<int>& inc = adj[static_cast<size_t>(cur)];
        if (inc.size() != 2) {
          failure = Status::NotSupported(StrFormat(
              "dummy occurrence %d has degree %zu (no path-shaped TSS edge "
              "matches)",
              cur, inc.size()));
          break;
        }
        dummy_consumed[static_cast<size_t>(cur)] = true;
        int next_ei = inc[0] == ei ? inc[1] : inc[0];
        prev = cur;
        ei = next_ei;
      }
      if (!failure.ok()) break;

      if (occ_to_node[static_cast<size_t>(cur)] != -1 &&
          uf.Find(cur) == uf.Find(u) && hops.size() == 1) {
        continue;  // intra-segment edge, already merged
      }

      std::vector<int> chain_key = chain_edges;
      std::sort(chain_key.begin(), chain_key.end());
      if (emitted_chains.contains(chain_key)) continue;

      // Match hops against a TSS edge in this walking direction.
      SchemaNodeId from_schema = cn.nodes[static_cast<size_t>(u)].schema_node;
      SchemaNodeId to_schema = cn.nodes[static_cast<size_t>(cur)].schema_node;
      schema::TssEdgeId match = -1;
      for (schema::TssEdgeId te = 0; te < tss.NumEdges(); ++te) {
        const schema::TssEdge& edge = tss.edge(te);
        if (edge.from_schema == from_schema && edge.to_schema == to_schema &&
            edge.path == hops) {
          match = te;
          break;
        }
      }
      if (match == -1) continue;  // the reverse walk from `cur` will match

      emitted_chains.insert(std::move(chain_key));
      out.tree.edges.push_back(schema::TssTreeEdge{
          occ_to_node[static_cast<size_t>(u)], occ_to_node[static_cast<size_t>(cur)],
          match});
    }
  }
  XK_RETURN_NOT_OK(failure);

  // Every dummy must have been consumed by some chain, and every chain must
  // have matched a TSS edge.
  for (int v = 0; v < n; ++v) {
    if (occ_to_node[static_cast<size_t>(v)] == -1 &&
        !dummy_consumed[static_cast<size_t>(v)]) {
      return Status::InvalidArgument(
          StrFormat("dummy occurrence %d not on any segment-to-segment path", v));
    }
  }
  XK_RETURN_NOT_OK(out.tree.Validate(tss));
  for (auto& kws : out.node_keywords) {
    std::sort(kws.begin(), kws.end(), [](const CtssnKeyword& a, const CtssnKeyword& b) {
      return a.keyword < b.keyword;
    });
  }
  return out;
}

}  // namespace xk::cn
