#include "cn/cn_generator.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "common/strings.h"

namespace xk::cn {

using schema::EdgeKind;
using schema::SchemaEdge;
using schema::SchemaGraph;
using schema::SchemaNodeId;

bool CnStructurallyPossible(const CandidateNetwork& cn, const SchemaGraph& schema) {
  auto adj = cn.Adjacency();
  for (int v = 0; v < cn.num_nodes(); ++v) {
    const std::vector<int>& inc = adj[static_cast<size_t>(v)];
    SchemaNodeId sv = cn.nodes[static_cast<size_t>(v)].schema_node;

    int containment_parents = 0;
    std::unordered_set<schema::SchemaEdgeId> alternatives;
    for (int ei : inc) {
      const CnEdge& e = cn.edges[static_cast<size_t>(ei)];
      const SchemaEdge& se = schema.edge(e.edge);
      if (e.to == v && se.kind == EdgeKind::kContainment) ++containment_parents;
      // A choice instance picks one alternative among ALL its outgoing edges
      // (containment children or references, e.g. line -> part | product).
      if (e.from == v) alternatives.insert(e.edge);
    }
    // Rule: one containment parent per instance.
    if (containment_parents >= 2) return false;
    // Rule: a choice occurrence instantiates at most one alternative.
    if (schema.kind(sv) == schema::NodeKind::kChoice && alternatives.size() >= 2) {
      return false;
    }
    // Rule: to-one duplicate neighbors (generalized R^K <- S -> R^K).
    for (size_t i = 0; i < inc.size(); ++i) {
      const CnEdge& e1 = cn.edges[static_cast<size_t>(inc[i])];
      for (size_t j = i + 1; j < inc.size(); ++j) {
        const CnEdge& e2 = cn.edges[static_cast<size_t>(inc[j])];
        if (e1.edge != e2.edge) continue;
        const SchemaEdge& se = schema.edge(e1.edge);
        bool both_out = e1.from == v && e2.from == v;
        bool both_in = e1.to == v && e2.to == v;
        if (both_out && se.forward_mult() == schema::Mult::kOne) return false;
        if (both_in && se.reverse_mult() == schema::Mult::kOne) return false;
      }
    }
  }
  return true;
}

CnGenerator::CnGenerator(const SchemaGraph* schema, CnGeneratorOptions options)
    : schema_(schema), options_(options) {
  XK_CHECK(schema != nullptr);
}

namespace {

/// Non-empty subsets of `available` that avoid `used`, as sorted vectors.
std::vector<std::vector<int>> KeywordSubsets(const std::vector<int>& available,
                                             const std::vector<bool>& used) {
  std::vector<int> candidates;
  for (int k : available) {
    if (!used[static_cast<size_t>(k)]) candidates.push_back(k);
  }
  std::vector<std::vector<int>> out;
  const size_t n = candidates.size();
  for (size_t mask = 1; mask < (1u << n); ++mask) {
    std::vector<int> subset;
    for (size_t b = 0; b < n; ++b) {
      if (mask & (1u << b)) subset.push_back(candidates[b]);
    }
    out.push_back(std::move(subset));
  }
  return out;
}

struct Partial {
  CandidateNetwork cn;
  std::vector<bool> used;  // per query keyword
};

/// Lower-bound feasibility: every free leaf must eventually become internal
/// (>= 1 extra edge each) and every chain it starts must end in a node
/// carrying an unused keyword. Prunes the bulk of the partial-tree frontier.
bool CanStillComplete(const Partial& p, int max_size) {
  std::vector<int> degree(p.cn.nodes.size(), 0);
  for (const CnEdge& e : p.cn.edges) {
    ++degree[static_cast<size_t>(e.from)];
    ++degree[static_cast<size_t>(e.to)];
  }
  int free_leaves = 0;
  for (size_t v = 0; v < p.cn.nodes.size(); ++v) {
    if (degree[v] <= 1 && p.cn.nodes[v].free()) ++free_leaves;
  }
  // Single free node counts as a free leaf too (degree 0).
  int unused = 0;
  for (bool u : p.used) {
    if (!u) ++unused;
  }
  if (free_leaves > unused) return false;
  return p.cn.size() + free_leaves <= max_size;
}

}  // namespace

Result<std::vector<CandidateNetwork>> CnGenerator::Generate(
    const std::vector<std::vector<SchemaNodeId>>& keyword_schema_nodes) const {
  const int m = static_cast<int>(keyword_schema_nodes.size());
  if (m == 0) return Status::InvalidArgument("no keywords");

  // avail[s] = keyword indexes that can live on schema node s.
  std::vector<std::vector<int>> avail(static_cast<size_t>(schema_->NumNodes()));
  for (int k = 0; k < m; ++k) {
    for (SchemaNodeId s : keyword_schema_nodes[static_cast<size_t>(k)]) {
      if (!schema_->ValidNode(s)) return Status::OutOfRange("bad schema node");
      avail[static_cast<size_t>(s)].push_back(k);
    }
    if (keyword_schema_nodes[static_cast<size_t>(k)].empty()) {
      // A keyword contained nowhere: no CN can be total.
      return std::vector<CandidateNetwork>{};
    }
  }

  std::vector<CandidateNetwork> accepted;
  std::unordered_set<std::string> seen;
  std::vector<Partial> frontier;

  auto try_accept = [&](const Partial& p) {
    // Total?
    for (int k = 0; k < m; ++k) {
      if (!p.used[static_cast<size_t>(k)]) return;
    }
    // Minimal: every leaf non-free.
    auto adj = p.cn.Adjacency();
    for (int v = 0; v < p.cn.num_nodes(); ++v) {
      if (adj[static_cast<size_t>(v)].size() <= 1 &&
          p.cn.nodes[static_cast<size_t>(v)].free()) {
        return;
      }
    }
    accepted.push_back(p.cn);
  };

  // Seeds: single occurrences with a non-empty annotation.
  std::vector<bool> no_used(static_cast<size_t>(m), false);
  for (SchemaNodeId s = 0; s < schema_->NumNodes(); ++s) {
    for (std::vector<int>& subset : KeywordSubsets(avail[static_cast<size_t>(s)],
                                                   no_used)) {
      Partial p;
      p.cn.nodes.push_back(CnNode{s, subset});
      p.used.assign(static_cast<size_t>(m), false);
      for (int k : subset) p.used[static_cast<size_t>(k)] = true;
      if (!seen.insert(p.cn.CanonicalKey()).second) continue;
      try_accept(p);
      frontier.push_back(std::move(p));
    }
  }

  for (int size = 1; size <= options_.max_size; ++size) {
    std::vector<Partial> next;
    for (const Partial& p : frontier) {
      // Fully-annotated networks cannot gain further non-free leaves; every
      // extension would leave a free leaf forever, so prune.
      bool all_used = std::all_of(p.used.begin(), p.used.end(),
                                  [](bool b) { return b; });
      if (all_used) continue;

      for (int v = 0; v < p.cn.num_nodes(); ++v) {
        SchemaNodeId sv = p.cn.nodes[static_cast<size_t>(v)].schema_node;
        // Expand along every incident schema edge, in both directions.
        auto expand = [&](schema::SchemaEdgeId e, bool v_is_source) {
          const SchemaEdge& se = schema_->edge(e);
          SchemaNodeId other = v_is_source ? se.to : se.from;
          // The fresh occurrence is free or annotated.
          std::vector<std::vector<int>> annotations = {{}};
          for (std::vector<int>& subset :
               KeywordSubsets(avail[static_cast<size_t>(other)], p.used)) {
            annotations.push_back(std::move(subset));
          }
          for (std::vector<int>& ann : annotations) {
            Partial grown = p;
            int fresh = grown.cn.num_nodes();
            grown.cn.nodes.push_back(CnNode{other, ann});
            grown.cn.edges.push_back(v_is_source ? CnEdge{v, fresh, e}
                                                 : CnEdge{fresh, v, e});
            for (int k : ann) grown.used[static_cast<size_t>(k)] = true;
            if (!CnStructurallyPossible(grown.cn, *schema_)) continue;
            if (!CanStillComplete(grown, options_.max_size)) continue;
            if (!seen.insert(grown.cn.CanonicalKey()).second) continue;
            if (seen.size() > options_.max_networks) continue;
            try_accept(grown);
            next.push_back(std::move(grown));
          }
        };
        for (schema::SchemaEdgeId e : schema_->out_edges(sv)) expand(e, true);
        for (schema::SchemaEdgeId e : schema_->in_edges(sv)) expand(e, false);
      }
    }
    if (seen.size() > options_.max_networks) {
      return Status::ResourceExhausted(
          StrFormat("CN generation exceeded %zu networks", options_.max_networks));
    }
    frontier = std::move(next);
    if (frontier.empty()) break;
  }

  std::stable_sort(accepted.begin(), accepted.end(),
                   [](const CandidateNetwork& a, const CandidateNetwork& b) {
                     return a.size() < b.size();
                   });
  return accepted;
}

}  // namespace xk::cn
