// Copyright (c) the XKeyword authors.
//
// The candidate network generator (Section 4): an extension of DISCOVER's
// generator to XML schema graphs. Partial networks are grown breadth-first by
// attaching schema-edge instantiations; a network is accepted when it is
// total (annotations partition the query keywords), minimal (every leaf
// non-free), within the size bound Z, and structurally possible. The XML
// extensions prune with the schema information DISCOVER lacks:
//
//   * choice nodes       — an occurrence of a choice node may have children
//                          along at most one alternative,
//   * containment        — an occurrence has at most one containment parent,
//   * maxOccurs          — two same-typed neighbors through a to-one edge
//                          would be forced to coincide (the R^K <- S -> R^K
//                          rule of DISCOVER, generalized).
//
// The generator is complete (every MTNN of size <= Z belongs to an output CN)
// and non-redundant (canonical deduplication + the pruning above).

#ifndef XK_CN_CN_GENERATOR_H_
#define XK_CN_CN_GENERATOR_H_

#include <vector>

#include "common/result.h"
#include "cn/candidate_network.h"

namespace xk::cn {

struct CnGeneratorOptions {
  /// Maximum MTNN size Z (network edges).
  int max_size = 6;
  /// Safety valve for pathological schemas.
  size_t max_networks = 200'000;
};

/// Input: for each query keyword, the schema nodes whose extension contains
/// it (from MasterIndex::SchemaNodesContaining).
class CnGenerator {
 public:
  CnGenerator(const schema::SchemaGraph* schema, CnGeneratorOptions options);

  /// Generates all candidate networks for `keyword_schema_nodes.size()`
  /// keywords, in nondecreasing size order.
  Result<std::vector<CandidateNetwork>> Generate(
      const std::vector<std::vector<schema::SchemaNodeId>>& keyword_schema_nodes)
      const;

 private:
  const schema::SchemaGraph* schema_;
  CnGeneratorOptions options_;
};

/// Structural possibility of a (partial) network — the three XML pruning
/// rules above. Exposed for tests.
bool CnStructurallyPossible(const CandidateNetwork& cn,
                            const schema::SchemaGraph& schema);

}  // namespace xk::cn

#endif  // XK_CN_CN_GENERATOR_H_
