// Copyright (c) the XKeyword authors.
//
// Candidate networks (Definition 4.1): schema node networks — uncycled graphs
// of schema-node occurrences joined along schema edges (the same schema node
// may appear in several roles) — that can produce an MTNN of the keyword
// query on some instance of the schema.
//
// Keyword annotations follow DISCOVER's exact-partition tuple-set semantics:
// the occurrence S^K stands for the nodes of type S containing every keyword
// of K and no other query keyword, so annotations across a network are
// disjoint and their union is the whole query.

#ifndef XK_CN_CANDIDATE_NETWORK_H_
#define XK_CN_CANDIDATE_NETWORK_H_

#include <string>
#include <vector>

#include "schema/schema_graph.h"

namespace xk::cn {

/// One occurrence of a schema node in a network.
struct CnNode {
  schema::SchemaNodeId schema_node;
  /// Sorted query-keyword indexes this occurrence must contain (exactly);
  /// empty = free occurrence.
  std::vector<int> keywords;

  bool free() const { return keywords.empty(); }
  bool operator==(const CnNode&) const = default;
};

/// A directed instantiation of a schema edge: occurrence `from` plays the
/// schema edge's source role.
struct CnEdge {
  int from;
  int to;
  schema::SchemaEdgeId edge;

  bool operator==(const CnEdge&) const = default;
};

/// A candidate network (or a partial network during generation).
struct CandidateNetwork {
  std::vector<CnNode> nodes;
  std::vector<CnEdge> edges;

  /// The score of every MTNN this network produces (number of edges).
  int size() const { return static_cast<int>(edges.size()); }
  int num_nodes() const { return static_cast<int>(nodes.size()); }

  std::vector<std::vector<int>> Adjacency() const;

  /// Canonical key up to occurrence isomorphism (labels, annotations, edge
  /// ids, directions) — used to deduplicate generation.
  std::string CanonicalKey() const;

  /// "person{john} <-e3- supplier -e4-> ..." style debug form.
  std::string ToString(const schema::SchemaGraph& schema) const;
};

}  // namespace xk::cn

#endif  // XK_CN_CANDIDATE_NETWORK_H_
