#include "service/query_service.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <utility>
#include <vector>

#include "common/strings.h"

namespace xk::service {

/// One in-flight leader execution plus the followers that coalesced onto
/// it. Membership in `followers` is the single source of truth for who
/// completes a follower: the leader's fan-out and a follower's detach both
/// remove it under `mutex`, so exactly one side wins.
struct CoalesceGroup {
  std::mutex mutex;
  std::vector<std::shared_ptr<QueryState>> followers;
};

/// Shared per-query state: the request, the cancel token both the handle and
/// the executors poll, and the promise-like completion slot.
struct QueryState {
  uint64_t id = 0;
  engine::QueryRequest request;
  CancelToken token;
  std::chrono::steady_clock::time_point submit_time;

  /// Canonical answer-cache key; empty when the request is cache-ineligible
  /// (bypass mode, or cache and coalescing both disabled).
  std::string cache_key;
  /// Data generation the query was admitted under; its answer is cached at
  /// (and only at) this generation.
  uint64_t generation = 0;

  /// Followers only: the in-flight execution this state attached to, plus
  /// the metrics registry for detach-time accounting (shared so a detach
  /// stays safe even if it races the service's destruction).
  std::shared_ptr<CoalesceGroup> attached_group;
  std::shared_ptr<Metrics> metrics;

  /// Leader executions only: streamed through to the engine (see
  /// QueryService::StreamHooks). Null for cache hits and followers.
  engine::ResultSink* sink = nullptr;

  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  Result<engine::QueryResponse> result = Status::Internal("query not finished");
  /// Completion hook, moved out (and thus fired at most once) by
  /// CompleteState. Runs outside the state lock.
  std::function<void()> on_done;
};

namespace {

/// Publishes the outcome and wakes every waiter; first completion wins.
/// Fires the state's on_done hook (if any) after the waiters are woken,
/// outside the lock — so the hook may itself call Wait() without deadlock.
void CompleteState(const std::shared_ptr<QueryState>& state,
                   Result<engine::QueryResponse> result) {
  std::function<void()> on_done;
  {
    std::lock_guard<std::mutex> lock(state->mutex);
    if (state->done) return;
    state->result = std::move(result);
    state->done = true;
    on_done = std::move(state->on_done);
  }
  state->cv.notify_all();
  if (on_done) on_done();
}

std::chrono::nanoseconds LatencySince(
    std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::steady_clock::now() - start);
}

/// Records a follower's outcome. Goes through OnServed, which skips the
/// engine-counter aggregation: the leader's execution already counted it,
/// and a follower ran nothing.
void RecordFollowerFinish(const std::shared_ptr<QueryState>& state,
                          const Status& outcome,
                          const engine::QueryResponse* response) {
  if (state->metrics == nullptr) return;
  state->metrics->OnServed(state->request.decomposition, outcome, response,
                           LatencySince(state->submit_time));
}

/// Detaches a coalesced follower from its leader, completing it with its
/// token's stop status. No-op on leaders and on followers the leader has
/// already fanned out to (membership in the group's list decides).
void DetachFollower(const std::shared_ptr<QueryState>& state) {
  const std::shared_ptr<CoalesceGroup>& group = state->attached_group;
  if (group == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(group->mutex);
    auto it =
        std::find(group->followers.begin(), group->followers.end(), state);
    if (it == group->followers.end()) return;
    group->followers.erase(it);
  }
  Status stop = state->token.ToStatus();
  if (stop.ok()) stop = Status::Cancelled("query cancelled");
  engine::QueryResponse response;
  response.status = stop;
  // A detached follower ran nothing and carries no results: kFailed with an
  // interrupted, zero-coverage bound (it cannot know the leader's coverage).
  response.completeness = engine::Completeness::kFailed;
  response.coverage.interrupted = true;
  RecordFollowerFinish(state, stop, &response);
  CompleteState(state, std::move(response));
}

}  // namespace

// --- QueryHandle ---------------------------------------------------------

QueryHandle::QueryHandle() = default;
QueryHandle::~QueryHandle() = default;
QueryHandle::QueryHandle(const QueryHandle&) = default;
QueryHandle& QueryHandle::operator=(const QueryHandle&) = default;
QueryHandle::QueryHandle(QueryHandle&&) noexcept = default;
QueryHandle& QueryHandle::operator=(QueryHandle&&) noexcept = default;

QueryHandle::QueryHandle(std::shared_ptr<QueryState> state)
    : state_(std::move(state)) {}

uint64_t QueryHandle::id() const { return state_ != nullptr ? state_->id : 0; }

Result<engine::QueryResponse> QueryHandle::Wait() const {
  if (state_ == nullptr) return Status::InvalidArgument("empty query handle");
  std::unique_lock<std::mutex> lock(state_->mutex);
  while (!state_->done) {
    if (state_->attached_group != nullptr && state_->token.has_deadline()) {
      // A follower executes nowhere, so no executor polls its token; the
      // waiter enforces the deadline itself and detaches on expiry.
      state_->cv.wait_until(lock, state_->token.deadline_time());
      if (!state_->done && state_->token.StopRequested()) {
        lock.unlock();
        DetachFollower(state_);
        lock.lock();
      }
    } else {
      state_->cv.wait(lock);
    }
  }
  return state_->result;
}

bool QueryHandle::Done() const {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->done;
}

void QueryHandle::Cancel() const {
  if (state_ == nullptr) return;
  state_->token.RequestCancel();
  // A follower is completed here, not by the (still running) leader: its
  // cancel must detach only itself, never the shared execution.
  DetachFollower(state_);
}

// --- QueryService --------------------------------------------------------

Result<std::unique_ptr<QueryService>> QueryService::Create(
    const engine::QueryEngine* engine, QueryServiceOptions options) {
  if (engine == nullptr) return Status::InvalidArgument("null query engine");
  XK_RETURN_NOT_OK(options.Validate());
  return std::unique_ptr<QueryService>(new QueryService(engine, options));
}

QueryService::QueryService(const engine::QueryEngine* engine,
                           QueryServiceOptions options)
    : engine_(engine),
      options_(options),
      cache_(options.enable_answer_cache
                 ? std::make_unique<AnswerCache>(options.answer_cache)
                 : nullptr),
      pool_(std::make_unique<engine::ThreadPool>(options.num_workers)) {}

QueryService::~QueryService() { Shutdown(); }

Result<QueryHandle> QueryService::Submit(engine::QueryRequest request,
                                         StreamHooks hooks) {
  metrics_->OnSubmitted();
  auto state = std::make_shared<QueryState>();
  state->request = std::move(request);
  state->on_done = std::move(hooks.on_done);
  state->submit_time = std::chrono::steady_clock::now();
  // The wall-clock budget starts at admission: time spent waiting for a
  // worker counts against the deadline, as a saturated service must not
  // grant queued queries more total latency than direct ones.
  if (state->request.deadline.count() > 0) {
    state->token.SetDeadlineAfter(state->request.deadline);
  }
  const engine::QueryRequest& req = state->request;
  const bool bypass = req.cache_mode == engine::CacheMode::kBypass;
  const bool use_cache = cache_ != nullptr && !bypass;
  const bool coalesce = options_.enable_coalescing && !bypass;
  if (use_cache || coalesce) {
    state->cache_key = AnswerCache::CanonicalKey(req);
    state->generation = engine_->data_generation();
  }

  std::shared_ptr<CoalesceGroup> group;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!accepting_) {
      metrics_->OnRejected();
      return Status::Aborted("query service is shut down");
    }
    state->id = next_id_++;

    // 1. Answer cache: a fresh cached answer completes the handle right
    // here, costing no worker and no queue slot. kRefresh skips the read.
    if (use_cache && req.cache_mode == engine::CacheMode::kDefault) {
      AnswerCache::LookupResult found =
          cache_->Get(state->cache_key, state->generation);
      if (found.kind == AnswerCache::Lookup::kHit) {
        metrics_->OnCacheHit();
        engine::QueryResponse response = *found.response;
        metrics_->OnServed(req.decomposition, response.status, &response,
                           LatencySince(state->submit_time));
        CompleteState(state, std::move(response));
        return QueryHandle(state);
      }
      if (found.kind == AnswerCache::Lookup::kStale) metrics_->OnCacheStale();
    }

    // 2. Coalescing: an identical request already executing? Attach as a
    // follower — the leader's completion fans the response out to us.
    if (coalesce) {
      auto it = inflight_.find(state->cache_key);
      if (it != inflight_.end()) {
        std::lock_guard<std::mutex> group_lock(it->second->mutex);
        state->attached_group = it->second;
        state->metrics = metrics_;
        it->second->followers.push_back(state);
        metrics_->OnCoalesced();
        return QueryHandle(state);
      }
    }

    // 3. Admission onto the worker pool as a leader.
    if (queued_ >= options_.queue_capacity) {
      metrics_->OnRejected();
      return Status::ResourceExhausted(
          StrFormat("admission queue full (%zu queued, capacity %zu)", queued_,
                    options_.queue_capacity));
    }
    if (use_cache) metrics_->OnCacheMiss();
    // Only the leader's private execution streams; cache hits and followers
    // (above) deliver everything through the final response instead.
    state->sink = hooks.sink;
    ++queued_;
    live_.emplace(state->id, state);
    if (coalesce) {
      group = std::make_shared<CoalesceGroup>();
      inflight_.emplace(state->cache_key, group);
    }
    metrics_->OnAdmitted();
    // Handing off to the pool under mutex_ closes the Submit/Shutdown race:
    // Shutdown also takes mutex_ before pool_->Wait(), so it can never
    // observe accepting_ flipped while an admitted query is still on its
    // way into the pool (which could otherwise be enqueued after Wait
    // returned — or after the pool was destroyed).
    pool_->Submit([this, state, group] { Execute(state, group); });
  }
  return QueryHandle(state);
}

void QueryService::Execute(const std::shared_ptr<QueryState>& state,
                           const std::shared_ptr<CoalesceGroup>& group) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --queued_;
  }
  metrics_->OnStart();

  Result<engine::QueryResponse> result =
      engine_->Run(state->request, &state->token, state->sink);
  const Status outcome = result.ok() ? result.value().status : result.status();
  metrics_->OnFinish(state->request.decomposition, outcome,
                     result.ok() ? &result.value() : nullptr,
                     LatencySince(state->submit_time));

  // Store complete answers only — never degraded or failed ones (a degraded
  // answer is valid for its deadline but wrong to replay for a caller with a
  // roomier one) — and only if the data generation is still the one the
  // query was admitted under.
  if (cache_ != nullptr && !state->cache_key.empty() && result.ok() &&
      result.value().status.ok() &&
      result.value().completeness == engine::Completeness::kComplete &&
      state->generation == engine_->data_generation()) {
    metrics_->OnCacheEvicted(
        cache_->Put(state->cache_key, state->generation, result.value()));
  }

  // Unpublish the in-flight group before completing anyone so no new
  // submit can attach to a finished execution; attaches hold mutex_, so
  // once this block runs the follower list is final.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    live_.erase(state->id);
    if (group != nullptr) {
      auto it = inflight_.find(state->cache_key);
      if (it != inflight_.end() && it->second == group) inflight_.erase(it);
    }
  }

  // Fan out: every still-attached follower wakes with the leader's response
  // (followers that cancelled or timed out already detached themselves).
  std::vector<std::shared_ptr<QueryState>> followers;
  if (group != nullptr) {
    std::lock_guard<std::mutex> group_lock(group->mutex);
    followers.swap(group->followers);
  }
  for (const std::shared_ptr<QueryState>& follower : followers) {
    RecordFollowerFinish(follower, outcome,
                         result.ok() ? &result.value() : nullptr);
    CompleteState(follower, result);
  }
  CompleteState(state, std::move(result));
}

void QueryService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    accepting_ = false;
    // Queued queries run (the pool offers no way to unqueue them) but their
    // tokens are already tripped, so each finishes immediately as kCancelled
    // — and fans that response out to any coalesced followers.
    for (auto& [id, state] : live_) {
      (void)id;
      state->token.RequestCancel();
    }
  }
  pool_->Wait();
}

}  // namespace xk::service
