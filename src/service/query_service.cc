#include "service/query_service.h"

#include <chrono>
#include <condition_variable>
#include <utility>

#include "common/strings.h"

namespace xk::service {

/// Shared per-query state: the request, the cancel token both the handle and
/// the executors poll, and the promise-like completion slot.
struct QueryState {
  uint64_t id = 0;
  engine::QueryRequest request;
  CancelToken token;
  std::chrono::steady_clock::time_point submit_time;

  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  Result<engine::QueryResponse> result = Status::Internal("query not finished");
};

// --- QueryHandle ---------------------------------------------------------

QueryHandle::QueryHandle() = default;
QueryHandle::~QueryHandle() = default;
QueryHandle::QueryHandle(const QueryHandle&) = default;
QueryHandle& QueryHandle::operator=(const QueryHandle&) = default;
QueryHandle::QueryHandle(QueryHandle&&) noexcept = default;
QueryHandle& QueryHandle::operator=(QueryHandle&&) noexcept = default;

QueryHandle::QueryHandle(std::shared_ptr<QueryState> state)
    : state_(std::move(state)) {}

uint64_t QueryHandle::id() const { return state_ != nullptr ? state_->id : 0; }

Result<engine::QueryResponse> QueryHandle::Wait() const {
  if (state_ == nullptr) return Status::InvalidArgument("empty query handle");
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [this] { return state_->done; });
  return state_->result;
}

bool QueryHandle::Done() const {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->done;
}

void QueryHandle::Cancel() const {
  if (state_ != nullptr) state_->token.RequestCancel();
}

// --- QueryService --------------------------------------------------------

Result<std::unique_ptr<QueryService>> QueryService::Create(
    const engine::XKeyword* xk, QueryServiceOptions options) {
  if (xk == nullptr) return Status::InvalidArgument("null XKeyword instance");
  XK_RETURN_NOT_OK(options.Validate());
  return std::unique_ptr<QueryService>(new QueryService(xk, options));
}

QueryService::QueryService(const engine::XKeyword* xk,
                           QueryServiceOptions options)
    : xk_(xk),
      options_(options),
      pool_(std::make_unique<engine::ThreadPool>(options.num_workers)) {}

QueryService::~QueryService() { Shutdown(); }

Result<QueryHandle> QueryService::Submit(engine::QueryRequest request) {
  metrics_.OnSubmitted();
  auto state = std::make_shared<QueryState>();
  state->request = std::move(request);
  state->submit_time = std::chrono::steady_clock::now();
  // The wall-clock budget starts at admission: time spent waiting for a
  // worker counts against the deadline, as a saturated service must not
  // grant queued queries more total latency than direct ones.
  if (state->request.deadline.count() > 0) {
    state->token.SetDeadlineAfter(state->request.deadline);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!accepting_) {
      metrics_.OnRejected();
      return Status::Aborted("query service is shut down");
    }
    if (queued_ >= options_.queue_capacity) {
      metrics_.OnRejected();
      return Status::ResourceExhausted(
          StrFormat("admission queue full (%zu queued, capacity %zu)", queued_,
                    options_.queue_capacity));
    }
    ++queued_;
    state->id = next_id_++;
    live_.emplace(state->id, state);
  }
  metrics_.OnAdmitted();
  pool_->Submit([this, state] { Execute(state); });
  return QueryHandle(state);
}

void QueryService::Execute(const std::shared_ptr<QueryState>& state) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --queued_;
  }
  metrics_.OnStart();

  Result<engine::QueryResponse> result = xk_->Run(state->request, &state->token);
  const auto latency = std::chrono::steady_clock::now() - state->submit_time;
  const Status outcome = result.ok() ? result.value().status : result.status();
  metrics_.OnFinish(state->request.decomposition, outcome,
                    result.ok() ? &result.value().stats : nullptr,
                    std::chrono::duration_cast<std::chrono::nanoseconds>(latency));

  {
    std::lock_guard<std::mutex> lock(state->mutex);
    state->result = std::move(result);
    state->done = true;
  }
  state->cv.notify_all();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    live_.erase(state->id);
  }
}

void QueryService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    accepting_ = false;
    // Queued queries run (the pool offers no way to unqueue them) but their
    // tokens are already tripped, so each finishes immediately as kCancelled.
    for (auto& [id, state] : live_) {
      (void)id;
      state->token.RequestCancel();
    }
  }
  pool_->Wait();
}

}  // namespace xk::service
