// Copyright (c) the XKeyword authors.
//
// QueryService: the concurrent serving front-end over one shared query
// engine (engine::QueryEngine — the single-instance XKeyword facade or the
// sharded scatter-gather ShardedEngine). Keyword-search traffic is dominated by a few expensive
// join-heavy queries among many cheap ones, so the service is built around
// per-query budgets rather than raw throughput alone:
//
//   * admission control — a bounded queue in front of a fixed worker pool
//     (engine::ThreadPool); Submit past the bound fails fast with
//     kResourceExhausted instead of letting latency collapse;
//   * deadlines — each request's wall-clock budget starts at admission and
//     is enforced cooperatively down to probe granularity in the executors;
//   * cancellation — every Submit returns a joinable QueryHandle whose
//     Cancel() stops the running query at the next poll;
//   * observability — a Metrics registry with per-outcome counters, latency
//     percentiles, gauges, and per-decomposition engine counters;
//   * answer caching — completed responses are kept in an AnswerCache keyed
//     by the canonicalized request, so a repeated query is answered without
//     running the engine (QueryRequest::cache_mode opts out per request);
//   * in-flight coalescing — identical concurrent requests attach to the
//     one execution already running (the leader) and all wake with the same
//     response; a follower's cancel or deadline detaches only that
//     follower. A popular-keyword burst costs one executor run, not N.
//
// The engine is immutable at serving time (Load/AddDecomposition happen
// before the service is built), so workers share it without locks. Cached
// answers are tagged with QueryEngine::data_generation(); a generation
// bump (e.g. a decomposition added between serving sessions) atomically
// invalidates every older answer.
//
//   auto service = service::QueryService::Create(&xk, {.num_workers = 8});
//   engine::QueryRequest req{.keywords = {"john", "vcr"},
//                            .decomposition = "XKeyword",
//                            .deadline = std::chrono::milliseconds(50)};
//   auto handle = (*service)->Submit(req);
//   auto response = handle->Wait();  // Result<QueryResponse>

#ifndef XK_SERVICE_QUERY_SERVICE_H_
#define XK_SERVICE_QUERY_SERVICE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "engine/query_engine.h"
#include "engine/thread_pool.h"
#include "service/answer_cache.h"
#include "service/metrics.h"

namespace xk::service {

struct QueryState;  // shared between a QueryHandle and the executing worker
struct CoalesceGroup;  // one in-flight execution plus its followers

struct QueryServiceOptions {
  /// Workers executing queries concurrently (the in-flight bound).
  int num_workers = 4;
  /// Admitted-but-not-yet-started bound: Submit returns kResourceExhausted
  /// once this many queries are waiting for a worker. Cache hits and
  /// coalesced followers do not occupy queue slots (they cost no worker).
  size_t queue_capacity = 256;

  /// Whole-answer caching of completed responses. Disable for benchmarking
  /// raw engine throughput.
  bool enable_answer_cache = true;
  AnswerCacheOptions answer_cache;

  /// Duplicate-request suppression: attach identical concurrent requests to
  /// one leader execution instead of running each.
  bool enable_coalescing = true;

  Status Validate() const {
    if (num_workers < 1) {
      return Status::InvalidArgument("num_workers must be >= 1");
    }
    if (queue_capacity < 1) {
      return Status::InvalidArgument("queue_capacity must be >= 1");
    }
    if (enable_answer_cache) {
      XK_RETURN_NOT_OK(answer_cache.Validate());
    }
    return Status::OK();
  }
};

/// Joinable handle to one submitted query. Copyable; all copies name the
/// same query.
class QueryHandle {
 public:
  QueryHandle();
  ~QueryHandle();
  QueryHandle(const QueryHandle&);
  QueryHandle& operator=(const QueryHandle&);
  QueryHandle(QueryHandle&&) noexcept;
  QueryHandle& operator=(QueryHandle&&) noexcept;

  bool valid() const { return state_ != nullptr; }
  uint64_t id() const;

  /// Blocks until the query finishes and returns its outcome; repeatable.
  Result<engine::QueryResponse> Wait() const;
  bool Done() const;

  /// Cooperative cancel: the running (or still queued) query observes it at
  /// the next poll and finishes with response status kCancelled, keeping any
  /// partial results and statistics.
  void Cancel() const;

 private:
  friend class QueryService;
  explicit QueryHandle(std::shared_ptr<QueryState> state);

  std::shared_ptr<QueryState> state_;
};

class QueryService {
 public:
  static Result<std::unique_ptr<QueryService>> Create(
      const engine::QueryEngine* engine, QueryServiceOptions options = {});

  /// Cancels every live query, drains the workers, and joins them.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Streaming attachment for one Submit: the serving bridge used by the
  /// socket front-end (net::Server), usable by any caller that wants results
  /// incrementally.
  struct StreamHooks {
    /// Receives finalized result prefixes while the query executes (see
    /// engine::ResultSink). Only a leader execution streams: a cache hit or
    /// a coalesced follower delivers the whole answer at completion (on_done
    /// fires, Wait() returns everything) and never calls the sink — the
    /// final response is byte-identical either way. May be null.
    engine::ResultSink* sink = nullptr;
    /// Fired exactly once when the query completes (from the completing
    /// thread, outside the state lock), including the cache-hit and
    /// follower-detach paths. Wait() is then non-blocking. Keep it cheap
    /// (signal a condition variable); it must not call back into Submit,
    /// which may hold the service lock on the cache-hit path. May be empty.
    std::function<void()> on_done;
  };

  /// Admits one query. Fails fast with kResourceExhausted when the admission
  /// queue is full and kAborted after Shutdown. A fresh cached answer
  /// completes the handle immediately; a request identical to one already
  /// in flight attaches to it as a follower; otherwise the query runs on a
  /// pool worker and the returned handle joins it.
  Result<QueryHandle> Submit(engine::QueryRequest request) {
    return Submit(std::move(request), StreamHooks{});
  }

  /// Submit with streaming hooks attached (see StreamHooks). On a non-OK
  /// return (queue full, shutdown) the hooks are dropped unfired.
  Result<QueryHandle> Submit(engine::QueryRequest request, StreamHooks hooks);

  /// Stops admitting, cancels every queued and running query, and waits for
  /// the workers to drain. Idempotent.
  void Shutdown();

  Metrics& metrics() { return *metrics_; }
  const Metrics& metrics() const { return *metrics_; }
  const QueryServiceOptions& options() const { return options_; }

  /// Null when the answer cache is disabled.
  const AnswerCache* answer_cache() const { return cache_.get(); }

 private:
  QueryService(const engine::QueryEngine* engine, QueryServiceOptions options);

  void Execute(const std::shared_ptr<QueryState>& state,
               const std::shared_ptr<CoalesceGroup>& group);

  const engine::QueryEngine* engine_;
  const QueryServiceOptions options_;
  /// Shared (not owned by value) so a detached coalesced follower can still
  /// record its outcome through its QueryState after the service is gone.
  std::shared_ptr<Metrics> metrics_ = std::make_shared<Metrics>();
  std::unique_ptr<AnswerCache> cache_;

  std::mutex mutex_;  // guards accepting_, queued_, next_id_, live_, inflight_
  bool accepting_ = true;
  size_t queued_ = 0;
  uint64_t next_id_ = 1;
  /// Queries admitted but not yet finished, for Shutdown's cancel broadcast.
  std::unordered_map<uint64_t, std::shared_ptr<QueryState>> live_;
  /// Cache key -> the in-flight execution identical submits coalesce onto.
  std::unordered_map<std::string, std::shared_ptr<CoalesceGroup>> inflight_;

  /// Last member: destroyed (joined) first, while the rest is still alive.
  std::unique_ptr<engine::ThreadPool> pool_;
};

}  // namespace xk::service

#endif  // XK_SERVICE_QUERY_SERVICE_H_
