// Copyright (c) the XKeyword authors.
//
// QueryService: the concurrent serving front-end over one shared XKeyword
// instance. Keyword-search traffic is dominated by a few expensive
// join-heavy queries among many cheap ones, so the service is built around
// per-query budgets rather than raw throughput alone:
//
//   * admission control — a bounded queue in front of a fixed worker pool
//     (engine::ThreadPool); Submit past the bound fails fast with
//     kResourceExhausted instead of letting latency collapse;
//   * deadlines — each request's wall-clock budget starts at admission and
//     is enforced cooperatively down to probe granularity in the executors;
//   * cancellation — every Submit returns a joinable QueryHandle whose
//     Cancel() stops the running query at the next poll;
//   * observability — a Metrics registry with per-outcome counters, latency
//     percentiles, gauges, and per-decomposition engine counters.
//
// The XKeyword instance is immutable at serving time (Load/AddDecomposition
// happen before the service is built), so workers share it without locks.
//
//   auto service = service::QueryService::Create(&xk, {.num_workers = 8});
//   engine::QueryRequest req{.keywords = {"john", "vcr"},
//                            .decomposition = "XKeyword",
//                            .deadline = std::chrono::milliseconds(50)};
//   auto handle = (*service)->Submit(req);
//   auto response = handle->Wait();  // Result<QueryResponse>

#ifndef XK_SERVICE_QUERY_SERVICE_H_
#define XK_SERVICE_QUERY_SERVICE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "engine/thread_pool.h"
#include "engine/xkeyword.h"
#include "service/metrics.h"

namespace xk::service {

struct QueryState;  // shared between a QueryHandle and the executing worker

struct QueryServiceOptions {
  /// Workers executing queries concurrently (the in-flight bound).
  int num_workers = 4;
  /// Admitted-but-not-yet-started bound: Submit returns kResourceExhausted
  /// once this many queries are waiting for a worker.
  size_t queue_capacity = 256;

  Status Validate() const {
    if (num_workers < 1) {
      return Status::InvalidArgument("num_workers must be >= 1");
    }
    if (queue_capacity < 1) {
      return Status::InvalidArgument("queue_capacity must be >= 1");
    }
    return Status::OK();
  }
};

/// Joinable handle to one submitted query. Copyable; all copies name the
/// same query.
class QueryHandle {
 public:
  QueryHandle();
  ~QueryHandle();
  QueryHandle(const QueryHandle&);
  QueryHandle& operator=(const QueryHandle&);
  QueryHandle(QueryHandle&&) noexcept;
  QueryHandle& operator=(QueryHandle&&) noexcept;

  bool valid() const { return state_ != nullptr; }
  uint64_t id() const;

  /// Blocks until the query finishes and returns its outcome; repeatable.
  Result<engine::QueryResponse> Wait() const;
  bool Done() const;

  /// Cooperative cancel: the running (or still queued) query observes it at
  /// the next poll and finishes with response status kCancelled, keeping any
  /// partial results and statistics.
  void Cancel() const;

 private:
  friend class QueryService;
  explicit QueryHandle(std::shared_ptr<QueryState> state);

  std::shared_ptr<QueryState> state_;
};

class QueryService {
 public:
  static Result<std::unique_ptr<QueryService>> Create(
      const engine::XKeyword* xk, QueryServiceOptions options = {});

  /// Cancels every live query, drains the workers, and joins them.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Admits one query. Fails fast with kResourceExhausted when the admission
  /// queue is full and kAborted after Shutdown; otherwise the query runs on
  /// a pool worker and the returned handle joins it.
  Result<QueryHandle> Submit(engine::QueryRequest request);

  /// Stops admitting, cancels every queued and running query, and waits for
  /// the workers to drain. Idempotent.
  void Shutdown();

  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }
  const QueryServiceOptions& options() const { return options_; }

 private:
  QueryService(const engine::XKeyword* xk, QueryServiceOptions options);

  void Execute(const std::shared_ptr<QueryState>& state);

  const engine::XKeyword* xk_;
  const QueryServiceOptions options_;
  Metrics metrics_;

  std::mutex mutex_;  // guards accepting_, queued_, next_id_, live_
  bool accepting_ = true;
  size_t queued_ = 0;
  uint64_t next_id_ = 1;
  /// Queries admitted but not yet finished, for Shutdown's cancel broadcast.
  std::unordered_map<uint64_t, std::shared_ptr<QueryState>> live_;

  /// Last member: destroyed (joined) first, while the rest is still alive.
  std::unique_ptr<engine::ThreadPool> pool_;
};

}  // namespace xk::service

#endif  // XK_SERVICE_QUERY_SERVICE_H_
