#include "service/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/simd.h"

namespace xk::service {

size_t LatencyHistogram::BucketOf(double micros) {
  if (micros < 1.0) return 0;
  // 4 buckets per octave: bucket = floor(4 * log2(us)).
  const double b = 4.0 * std::log2(micros);
  return std::min(static_cast<size_t>(b), kNumBuckets - 1);
}

void LatencyHistogram::Record(std::chrono::nanoseconds latency) {
  const double us = static_cast<double>(latency.count()) / 1000.0;
  ++buckets_[BucketOf(us)];
  if (count_ == 0 || us < min_us_) min_us_ = us;
  if (count_ == 0 || us > max_us_) max_us_ = us;
  ++count_;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  for (size_t b = 0; b < kNumBuckets; ++b) buckets_[b] += other.buckets_[b];
  if (count_ == 0) {
    min_us_ = other.min_us_;
    max_us_ = other.max_us_;
  } else {
    min_us_ = std::min(min_us_, other.min_us_);
    max_us_ = std::max(max_us_, other.max_us_);
  }
  count_ += other.count_;
}

double LatencyHistogram::PercentileMicros(double p) const {
  if (count_ == 0) return 0;
  const double target = p / 100.0 * static_cast<double>(count_);
  uint64_t seen = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    const uint64_t next = seen + buckets_[b];
    if (static_cast<double>(next) >= target) {
      // Interpolate inside bucket b, clamped to the observed extremes so a
      // single-sample histogram answers the exact value. Bucket 0 is special:
      // it absorbs everything below 1 us, so its lower edge is the observed
      // minimum, not exp2(0) = 1 us (which would report percentiles above the
      // maximum of an all-sub-microsecond workload).
      const double edge_lo =
          b == 0 ? min_us_ : std::exp2(static_cast<double>(b) / 4.0);
      const double lo = std::clamp(edge_lo, min_us_, max_us_);
      const double hi = std::clamp(std::exp2(static_cast<double>(b + 1) / 4.0),
                                   lo, max_us_);
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(buckets_[b]);
      return std::clamp(lo + (hi - lo) * std::clamp(frac, 0.0, 1.0), min_us_,
                        max_us_);
    }
    seen = next;
  }
  return max_us_;
}

void Metrics::OnStart() {
  queue_depth_.fetch_sub(1, std::memory_order_relaxed);
  const int64_t now = in_flight_.fetch_add(1, std::memory_order_relaxed) + 1;
  int64_t peak = peak_in_flight_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_in_flight_.compare_exchange_weak(peak, now,
                                                std::memory_order_relaxed)) {
  }
}

void Metrics::OnConnectionOpened() {
  const int64_t now = active_connections_.fetch_add(1, std::memory_order_relaxed) + 1;
  int64_t peak = peak_connections_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_connections_.compare_exchange_weak(peak, now,
                                                  std::memory_order_relaxed)) {
  }
}

void Metrics::CountOutcome(const Status& status) {
  if (status.IsDeadlineExceeded()) {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
  } else if (status.IsCancelled()) {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
  } else if (status.ok()) {
    completed_ok_.fetch_add(1, std::memory_order_relaxed);
  } else {
    failed_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Metrics::CountCompleteness(const engine::QueryResponse* response) {
  if (response == nullptr ||
      response->completeness != engine::Completeness::kDegraded) {
    return;
  }
  degraded_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  ++coverage_class_[response->coverage.exhausted_class];
}

void Metrics::OnFinish(const std::string& decomposition, const Status& status,
                       const engine::QueryResponse* response,
                       std::chrono::nanoseconds latency) {
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
  CountOutcome(status);
  CountCompleteness(response);
  std::lock_guard<std::mutex> lock(mutex_);
  latency_.Record(latency);
  if (response != nullptr) {
    per_decomposition_[decomposition].Add(response->stats);
  }
}

void Metrics::OnServed(const std::string& decomposition, const Status& status,
                       const engine::QueryResponse* response,
                       std::chrono::nanoseconds latency) {
  (void)decomposition;  // kept for a future per-decomposition hit breakdown
  CountOutcome(status);
  // A coalesced follower handed a degraded leader answer is itself a
  // degraded query (per-query counting, like the outcome counters above).
  CountCompleteness(response);
  std::lock_guard<std::mutex> lock(mutex_);
  latency_.Record(latency);
}

MetricsSnapshot Metrics::Snapshot() const {
  MetricsSnapshot snap;
  snap.submitted = submitted_.load(std::memory_order_relaxed);
  snap.rejected = rejected_.load(std::memory_order_relaxed);
  snap.completed_ok = completed_ok_.load(std::memory_order_relaxed);
  snap.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  snap.cancelled = cancelled_.load(std::memory_order_relaxed);
  snap.failed = failed_.load(std::memory_order_relaxed);
  snap.degraded = degraded_.load(std::memory_order_relaxed);
  snap.queue_depth = queue_depth_.load(std::memory_order_relaxed);
  snap.in_flight = in_flight_.load(std::memory_order_relaxed);
  snap.peak_in_flight = peak_in_flight_.load(std::memory_order_relaxed);
  snap.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  snap.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  snap.coalesced = coalesced_.load(std::memory_order_relaxed);
  snap.cache_stale = cache_stale_.load(std::memory_order_relaxed);
  snap.cache_evicted = cache_evicted_.load(std::memory_order_relaxed);
  snap.active_connections = active_connections_.load(std::memory_order_relaxed);
  snap.peak_connections = peak_connections_.load(std::memory_order_relaxed);
  snap.streamed_batches = streamed_batches_.load(std::memory_order_relaxed);
  snap.streamed_results = streamed_results_.load(std::memory_order_relaxed);
  snap.streamed_bytes = streamed_bytes_.load(std::memory_order_relaxed);
  snap.client_aborts = client_aborts_.load(std::memory_order_relaxed);
  snap.malformed_frames = malformed_frames_.load(std::memory_order_relaxed);
  snap.simd_isa = simd::IsaLevelToString(simd::DetectedIsaLevel());
  std::lock_guard<std::mutex> lock(mutex_);
  snap.latency_count = latency_.count();
  snap.latency_p50_us = latency_.PercentileMicros(50);
  snap.latency_p95_us = latency_.PercentileMicros(95);
  snap.latency_p99_us = latency_.PercentileMicros(99);
  snap.per_decomposition = per_decomposition_;
  snap.coverage_exhausted_class = coverage_class_;
  for (const auto& [name, stats] : snap.per_decomposition) {
    (void)name;
    snap.subplan_hits += stats.subplan_hits;
    snap.subplan_misses += stats.subplan_misses;
    snap.subplan_bytes = std::max(snap.subplan_bytes, stats.subplan_bytes);
    snap.dedup_saved_rows += stats.dedup_saved_rows;
    snap.shard_fanout += stats.shard_fanout;
    snap.shard_bound_prunes += stats.shard_bound_prunes;
    snap.shard_early_stops += stats.shard_early_stops;
  }
  return snap;
}

void Metrics::MergeFrom(const Metrics& other) {
  const auto fold = [](std::atomic<uint64_t>& into,
                       const std::atomic<uint64_t>& from) {
    into.fetch_add(from.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  };
  fold(submitted_, other.submitted_);
  fold(rejected_, other.rejected_);
  fold(completed_ok_, other.completed_ok_);
  fold(deadline_exceeded_, other.deadline_exceeded_);
  fold(cancelled_, other.cancelled_);
  fold(failed_, other.failed_);
  fold(degraded_, other.degraded_);
  fold(cache_hits_, other.cache_hits_);
  fold(cache_misses_, other.cache_misses_);
  fold(coalesced_, other.coalesced_);
  fold(cache_stale_, other.cache_stale_);
  fold(cache_evicted_, other.cache_evicted_);
  fold(streamed_batches_, other.streamed_batches_);
  fold(streamed_results_, other.streamed_results_);
  fold(streamed_bytes_, other.streamed_bytes_);
  fold(client_aborts_, other.client_aborts_);
  fold(malformed_frames_, other.malformed_frames_);
  active_connections_.fetch_add(
      other.active_connections_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  const int64_t other_conn_peak =
      other.peak_connections_.load(std::memory_order_relaxed);
  int64_t conn_peak = peak_connections_.load(std::memory_order_relaxed);
  while (other_conn_peak > conn_peak &&
         !peak_connections_.compare_exchange_weak(conn_peak, other_conn_peak,
                                                  std::memory_order_relaxed)) {
  }
  queue_depth_.fetch_add(other.queue_depth_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  in_flight_.fetch_add(other.in_flight_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  const int64_t other_peak =
      other.peak_in_flight_.load(std::memory_order_relaxed);
  int64_t peak = peak_in_flight_.load(std::memory_order_relaxed);
  while (other_peak > peak &&
         !peak_in_flight_.compare_exchange_weak(peak, other_peak,
                                                std::memory_order_relaxed)) {
  }
  // scoped_lock acquires both mutexes deadlock-free regardless of the order
  // two concurrent MergeFrom calls name the registries in.
  std::scoped_lock lock(mutex_, other.mutex_);
  latency_.Merge(other.latency_);
  for (const auto& [name, stats] : other.per_decomposition_) {
    per_decomposition_[name].Add(stats);
  }
  for (const auto& [cls, n] : other.coverage_class_) {
    coverage_class_[cls] += n;
  }
}

}  // namespace xk::service
