// Copyright (c) the XKeyword authors.
//
// AnswerCache: the serving layer's whole-answer cache. Keyword workloads
// are highly repetitive (Zipfian keyword popularity), so QueryService keeps
// every completed QueryResponse keyed by a canonicalized request
// fingerprint; a repeated query is answered from memory without touching
// the engine at all — the serving-side counterpart of the paper's
// materialized connection relations and partial-result cache (Section 6).
//
// Key canonicalization: two requests share an answer iff they ask the same
// logical question. The key is built from the sorted keyword bag (keyword
// order never affects results; duplicate keywords do), the decomposition,
// the execution mode, and every option that shapes the result list (Z,
// network-size bound, per-network and global k).
// Performance knobs (threads, morsel size, partial-result caching, Bloom
// pruning) are excluded: PR 1 made results byte-identical across them.
// Deadlines, cache_mode and the anytime budget knobs are excluded too — a
// budget changes whether an answer completes, not what the complete answer
// is (only Completeness::kComplete answers are cached).
//
// Epoch invalidation: every entry is tagged with the data generation
// (XKeyword::data_generation()) it was computed under. The cache never
// chases pointers into the engine; a reload/decomposition change simply
// bumps the generation and every older answer reports kStale on its next
// lookup (and is erased then). Invalidation is O(1) and atomic.
//
// Storage: a ShardedLruCache with per-shard mutexes and a byte budget, so
// lookups from many serving threads contend only per shard and memory is
// bounded by payload size, not entry count.

#ifndef XK_SERVICE_ANSWER_CACHE_H_
#define XK_SERVICE_ANSWER_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/lru_cache.h"
#include "engine/query_request.h"

namespace xk::service {

struct AnswerCacheOptions {
  /// Independently locked shards (keys hash onto one).
  size_t num_shards = 8;
  /// Byte budget across all shards (split evenly); least-recently-used
  /// answers are evicted when a shard overflows.
  size_t max_bytes = 64 << 20;

  Status Validate() const {
    if (num_shards < 1) {
      return Status::InvalidArgument("num_shards must be >= 1");
    }
    if (max_bytes < 1) {
      return Status::InvalidArgument("max_bytes must be >= 1");
    }
    return Status::OK();
  }
};

class AnswerCache {
 public:
  enum class Lookup {
    kHit,    // fresh answer returned
    kMiss,   // no entry for this key
    kStale,  // entry existed but was computed under an older generation
  };

  struct LookupResult {
    Lookup kind = Lookup::kMiss;
    /// Set iff kind == kHit. Shared so eviction cannot pull the payload out
    /// from under a reader.
    std::shared_ptr<const engine::QueryResponse> response;
  };

  explicit AnswerCache(AnswerCacheOptions options)
      : options_(options),
        cache_(options.num_shards, options.max_bytes) {}

  /// The canonical cache key of `request` (see file comment). Requests with
  /// equal keys are answer-equivalent.
  static std::string CanonicalKey(const engine::QueryRequest& request);

  /// Estimated resident bytes of a cached response (payload + bookkeeping),
  /// the charge Put levies against the byte budget.
  static size_t EstimateBytes(const std::string& key,
                              const engine::QueryResponse& response);

  /// Looks up `key`; an entry computed under a generation other than
  /// `generation` is erased and reported kStale.
  LookupResult Get(const std::string& key, uint64_t generation);

  /// Stores a completed response computed under `generation`. Returns the
  /// number of LRU-evicted entries.
  size_t Put(const std::string& key, uint64_t generation,
             engine::QueryResponse response);

  void Clear() { cache_.Clear(); }

  /// hits/misses here count Get() outcomes (a stale lookup counts as a
  /// miss in the underlying store plus one `stale`).
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t stale = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
    size_t bytes = 0;
  };
  Stats GetStats() const;

  const AnswerCacheOptions& options() const { return options_; }

 private:
  /// What the store holds: the payload plus the generation it answers for.
  struct CachedAnswer {
    uint64_t generation = 0;
    engine::QueryResponse response;
  };

  const AnswerCacheOptions options_;
  ShardedLruCache<std::string, CachedAnswer> cache_;
  std::atomic<uint64_t> stale_{0};
};

}  // namespace xk::service

#endif  // XK_SERVICE_ANSWER_CACHE_H_
