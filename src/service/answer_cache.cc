#include "service/answer_cache.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/strings.h"

namespace xk::service {

std::string AnswerCache::CanonicalKey(const engine::QueryRequest& request) {
  // The keyword *bag*: order never affects the answer, multiplicity can
  // (each keyword contributes its own filter set), so sort but keep
  // duplicates. '\x1f' (unit separator) cannot appear in keywords coming
  // from the master index's tokenizer, keeping the encoding unambiguous.
  std::vector<std::string> keywords = request.keywords;
  std::sort(keywords.begin(), keywords.end());
  std::string key;
  key.reserve(64 + keywords.size() * 12);
  for (const std::string& k : keywords) {
    key += k;
    key += '\x1f';
  }
  key += '\x1e';
  key += request.decomposition;
  key += '\x1e';
  key += engine::QueryModeToString(request.mode);
  // Result-shape options only; performance knobs (threads, morsels, the
  // partial-result cache, Bloom pruning) are byte-identity-preserving and
  // deadlines/cache_mode describe the serving contract, not the answer.
  const engine::QueryOptions& o = request.options;
  // num_shards is fingerprinted defensively: the sharded data plane is
  // byte-identical by design, but an answer computed under a different
  // scatter layout must never mask a regression of that very invariant.
  // The anytime knobs (enable_anytime, anytime_cost_budget, headroom,
  // min_plan_rows) are deliberately absent: only kComplete answers are ever
  // stored, and a complete answer is byte-identical across every anytime
  // setting.
  key += StrFormat("\x1e" "z=%d;n=%d;k=%zu;g=%zu;s=%d", o.max_size_z,
                   o.max_network_size, o.per_network_k, o.global_k,
                   o.num_shards);
  return key;
}

size_t AnswerCache::EstimateBytes(const std::string& key,
                                  const engine::QueryResponse& response) {
  size_t bytes = sizeof(CachedAnswer) + key.size();
  bytes += response.mttons.capacity() * sizeof(present::Mtton);
  for (const present::Mtton& m : response.mttons) {
    bytes += m.objects.capacity() * sizeof(storage::ObjectId);
  }
  bytes += response.status.ToString().size();
  // LRU bookkeeping: list node + hash map slot.
  bytes += 4 * sizeof(void*) + sizeof(size_t);
  return bytes;
}

AnswerCache::LookupResult AnswerCache::Get(const std::string& key,
                                           uint64_t generation) {
  LookupResult result;
  std::shared_ptr<const CachedAnswer> cached = cache_.Get(key);
  if (cached == nullptr) {
    result.kind = Lookup::kMiss;
    return result;
  }
  if (cached->generation != generation) {
    // Computed against older data: drop it so the slot is reusable at the
    // current generation. (A concurrent Put of a fresh answer between our
    // Get and this Erase could be lost; the next miss simply recomputes.)
    cache_.Erase(key);
    stale_.fetch_add(1, std::memory_order_relaxed);
    result.kind = Lookup::kStale;
    return result;
  }
  result.kind = Lookup::kHit;
  // Alias the payload inside the shared cache entry: one refcount keeps the
  // whole CachedAnswer alive for as long as any reader holds the response.
  result.response = std::shared_ptr<const engine::QueryResponse>(
      cached, &cached->response);
  return result;
}

size_t AnswerCache::Put(const std::string& key, uint64_t generation,
                        engine::QueryResponse response) {
  auto cached = std::make_shared<CachedAnswer>();
  cached->generation = generation;
  cached->response = std::move(response);
  const size_t bytes = EstimateBytes(key, cached->response);
  return cache_.Put(key, std::move(cached), bytes);
}

AnswerCache::Stats AnswerCache::GetStats() const {
  const auto store = cache_.GetStats();
  Stats stats;
  const uint64_t stale = stale_.load(std::memory_order_relaxed);
  // A stale lookup registers as a store hit (the entry existed) but is a
  // cache miss to callers.
  stats.hits = store.hits - std::min(store.hits, stale);
  stats.misses = store.misses + stale;
  stats.stale = stale;
  stats.evictions = store.evictions;
  stats.entries = store.entries;
  stats.bytes = store.bytes;
  return stats;
}

}  // namespace xk::service
