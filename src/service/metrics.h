// Copyright (c) the XKeyword authors.
//
// Serving metrics for the QueryService front-end: per-outcome counters
// (completed / deadline-exceeded / cancelled / rejected / failed), latency
// histograms answering p50/p95/p99, in-flight and queue-depth gauges, and
// the engine's probe/cache/bloom counters aggregated per decomposition.
// Everything is cheap enough to update on the query hot path: counters and
// gauges are lock-free atomics; only the histogram and the per-decomposition
// aggregation take a short mutex at query completion.

#ifndef XK_SERVICE_METRICS_H_
#define XK_SERVICE_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "engine/query_context.h"
#include "engine/query_request.h"

namespace xk::service {

/// Log-spaced latency histogram: 4 buckets per octave, 128 buckets covering
/// 1 us .. 2^32 us (~71 minutes). Percentiles are estimated by linear
/// interpolation inside the winning bucket, which keeps the p50/p95/p99
/// error under ~19% — plenty for serving dashboards.
class LatencyHistogram {
 public:
  void Record(std::chrono::nanoseconds latency);

  /// Folds `other` in: bucket-wise count addition plus min/max widening.
  /// Exact — merging per-shard histograms yields the same buckets, count and
  /// extremes (hence the same percentile answers) as one histogram that
  /// recorded every sample, so per-shard stats combine without
  /// double-counting and without extra error.
  void Merge(const LatencyHistogram& other);

  uint64_t count() const { return count_; }
  /// Estimated latency (microseconds) at percentile `p` in (0, 100].
  /// Returns 0 with no samples.
  double PercentileMicros(double p) const;

 private:
  // Bucket b covers [1us * 2^(b/4), 1us * 2^((b+1)/4)); 128 buckets reach
  // 2^32 us ~ 71 minutes, beyond any sane query latency.
  static constexpr size_t kNumBuckets = 128;
  static size_t BucketOf(double micros);

  std::array<uint64_t, kNumBuckets> buckets_{};
  uint64_t count_ = 0;
  double min_us_ = 0;
  double max_us_ = 0;
};

/// Point-in-time copy of every metric, safe to read without locks.
struct MetricsSnapshot {
  uint64_t submitted = 0;
  uint64_t rejected = 0;
  uint64_t completed_ok = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t cancelled = 0;
  uint64_t failed = 0;
  /// Queries whose response carried Completeness::kDegraded — the anytime
  /// engine returned a usable partial answer instead of a bare timeout.
  /// Orthogonal to the status-outcome counters above (a degraded answer
  /// counts once there too, under its status).
  uint64_t degraded = 0;
  /// Of the degraded responses: how many reported each exhausted CN size
  /// class (Coverage::exhausted_class; -1 = no class fully exhausted). Shows
  /// how much provably-correct prefix overloaded queries still deliver.
  std::map<int, uint64_t> coverage_exhausted_class;

  int64_t queue_depth = 0;
  int64_t in_flight = 0;
  int64_t peak_in_flight = 0;

  uint64_t latency_count = 0;
  double latency_p50_us = 0;
  double latency_p95_us = 0;
  double latency_p99_us = 0;

  /// Answer-cache outcomes (see service::AnswerCache). Every cache-eligible
  /// submit counts in exactly one of hit/miss/coalesced (miss = it became a
  /// leader execution). `cache_stale` side-counts lookups whose entry was
  /// from an older data generation; `cache_evicted` counts entries
  /// LRU-evicted by stores.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t coalesced = 0;
  uint64_t cache_stale = 0;
  uint64_t cache_evicted = 0;

  /// Engine counters summed over every finished query, keyed by the
  /// decomposition it ran against.
  std::map<std::string, engine::ExecutionStats> per_decomposition;

  /// Plan-DAG shared-subplan cache totals across all decompositions
  /// (hits/misses/saved rows summed, bytes the per-query high-water maximum) —
  /// the serving-level view of engine::ExecutionStats::subplan_*.
  uint64_t subplan_hits = 0;
  uint64_t subplan_misses = 0;
  uint64_t subplan_bytes = 0;
  uint64_t dedup_saved_rows = 0;

  /// Sharded data-plane totals across all decompositions — the serving-level
  /// view of engine::ExecutionStats::shard_* (scatter tasks fanned out,
  /// driver rows skipped by the gather watermark, shard loops stopped early).
  uint64_t shard_fanout = 0;
  uint64_t shard_bound_prunes = 0;
  uint64_t shard_early_stops = 0;

  /// Socket front-end (net::Server) gauges and counters. Connections
  /// currently open / the high-water mark; result batches, MTTONs and frame
  /// bytes pushed to clients ahead of the final frame; queries cancelled
  /// server-side because the client hung up mid-query; and frames rejected
  /// as malformed (bad type, oversized, short payload).
  int64_t active_connections = 0;
  int64_t peak_connections = 0;
  uint64_t streamed_batches = 0;
  uint64_t streamed_results = 0;
  uint64_t streamed_bytes = 0;
  uint64_t client_aborts = 0;
  uint64_t malformed_frames = 0;

  /// Block-kernel ISA level this process dispatches to under the kAuto
  /// policy ("scalar", "sse2", "neon", "avx2") — what the engine actually
  /// runs, after build gates, CPU detection and XK_FORCE_SCALAR_KERNELS.
  std::string simd_isa;
};

/// The registry one QueryService owns. Thread-safe.
class Metrics {
 public:
  Metrics() = default;
  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  /// Every Submit call, admitted or not.
  void OnSubmitted() { submitted_.fetch_add(1, std::memory_order_relaxed); }
  /// Submit declined (queue full or service shut down).
  void OnRejected() { rejected_.fetch_add(1, std::memory_order_relaxed); }
  /// Admitted into the queue.
  void OnAdmitted() { queue_depth_.fetch_add(1, std::memory_order_relaxed); }
  /// A worker dequeued the query and starts executing it.
  void OnStart();
  /// The query finished with `status` (the response status for soft stops,
  /// the Result status for hard failures). `response` may be null (hard
  /// failure with no response at all); otherwise its engine counters are
  /// aggregated under `decomposition` and its completeness/coverage feed the
  /// degraded counter and the exhausted-class histogram.
  void OnFinish(const std::string& decomposition, const Status& status,
                const engine::QueryResponse* response,
                std::chrono::nanoseconds latency);

  /// A query served without ever occupying a worker — a cache hit completed
  /// at submit, or a coalesced follower woken by its leader. Counts the
  /// outcome, the latency and (for a non-null `response`) completeness, but
  /// no in-flight or engine-counter accounting: the engine work already
  /// counted under the leader's OnFinish.
  void OnServed(const std::string& decomposition, const Status& status,
                const engine::QueryResponse* response,
                std::chrono::nanoseconds latency);

  /// Answer-cache outcomes, recorded by QueryService at submit/store time.
  void OnCacheHit() { cache_hits_.fetch_add(1, std::memory_order_relaxed); }
  void OnCacheMiss() { cache_misses_.fetch_add(1, std::memory_order_relaxed); }
  /// The submit attached to an identical in-flight execution as a follower.
  void OnCoalesced() { coalesced_.fetch_add(1, std::memory_order_relaxed); }
  /// A lookup found an answer from an older data generation; the submit
  /// then proceeds as a miss or coalesces, counted separately.
  void OnCacheStale() {
    cache_stale_.fetch_add(1, std::memory_order_relaxed);
  }
  void OnCacheEvicted(uint64_t n) {
    if (n > 0) cache_evicted_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Socket front-end accounting (net::Server calls these; see the
  /// MetricsSnapshot field docs).
  void OnConnectionOpened();
  void OnConnectionClosed() {
    active_connections_.fetch_sub(1, std::memory_order_relaxed);
  }
  /// One streamed batch of `results` MTTONs shipped as `bytes` on the wire
  /// (frame header included), ahead of the final frame.
  void OnStreamedBatch(uint64_t results, uint64_t bytes) {
    streamed_batches_.fetch_add(1, std::memory_order_relaxed);
    streamed_results_.fetch_add(results, std::memory_order_relaxed);
    streamed_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  /// The client disconnected with a query still running; the server turned
  /// that into a cooperative cancel.
  void OnClientAbort() {
    client_aborts_.fetch_add(1, std::memory_order_relaxed);
  }
  void OnMalformedFrame() {
    malformed_frames_.fetch_add(1, std::memory_order_relaxed);
  }

  int64_t active_connections() const {
    return active_connections_.load(std::memory_order_relaxed);
  }
  uint64_t client_aborts() const {
    return client_aborts_.load(std::memory_order_relaxed);
  }

  uint64_t cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  uint64_t cache_misses() const {
    return cache_misses_.load(std::memory_order_relaxed);
  }
  uint64_t coalesced() const {
    return coalesced_.load(std::memory_order_relaxed);
  }

  int64_t queue_depth() const {
    return queue_depth_.load(std::memory_order_relaxed);
  }
  int64_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }
  int64_t peak_in_flight() const {
    return peak_in_flight_.load(std::memory_order_relaxed);
  }
  uint64_t rejected() const { return rejected_.load(std::memory_order_relaxed); }
  uint64_t finished() const {
    return completed_ok_.load(std::memory_order_relaxed) +
           deadline_exceeded_.load(std::memory_order_relaxed) +
           cancelled_.load(std::memory_order_relaxed) +
           failed_.load(std::memory_order_relaxed);
  }

  MetricsSnapshot Snapshot() const;

  /// Folds another registry's totals into this one: counters and gauges sum
  /// (peak_in_flight takes the maximum — per-shard peaks never overlapped in
  /// time is the conservative reading), latency histograms merge exactly, and
  /// per-decomposition engine counters aggregate via ExecutionStats::Add.
  /// Lets a fleet of per-shard services report one combined registry without
  /// double-counting any sample.
  void MergeFrom(const Metrics& other);

 private:
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> completed_ok_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> failed_{0};

  std::atomic<int64_t> queue_depth_{0};
  std::atomic<int64_t> in_flight_{0};
  std::atomic<int64_t> peak_in_flight_{0};

  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> coalesced_{0};
  std::atomic<uint64_t> cache_stale_{0};
  std::atomic<uint64_t> cache_evicted_{0};

  std::atomic<int64_t> active_connections_{0};
  std::atomic<int64_t> peak_connections_{0};
  std::atomic<uint64_t> streamed_batches_{0};
  std::atomic<uint64_t> streamed_results_{0};
  std::atomic<uint64_t> streamed_bytes_{0};
  std::atomic<uint64_t> client_aborts_{0};
  std::atomic<uint64_t> malformed_frames_{0};

  void CountOutcome(const Status& status);
  /// Degraded counter + exhausted-class histogram for one served response.
  void CountCompleteness(const engine::QueryResponse* response);

  std::atomic<uint64_t> degraded_{0};

  mutable std::mutex mutex_;  // guards latency_, per_decomposition_, coverage_class_
  LatencyHistogram latency_;
  std::map<std::string, engine::ExecutionStats> per_decomposition_;
  std::map<int, uint64_t> coverage_class_;
};

}  // namespace xk::service

#endif  // XK_SERVICE_METRICS_H_
