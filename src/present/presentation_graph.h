// Copyright (c) the XKeyword authors.
//
// Presentation graphs (Section 3.2): per candidate network, an interactive
// summary of all its MTTONs. At any point a subgraph is *displayed*; clicking
// a node expands all same-role objects (plus a minimal completion so every
// displayed node lies on a result contained in the display), clicking an
// expanded node contracts back. This prevents the multivalued-dependency-style
// result flood of list presentations (Figure 2/3).
//
// Contraction is exact per the paper's properties (a)-(d). Expansion
// implements (a)-(c) exactly and (d) greedily (minimum completion is a set
// cover; the paper's own UI also truncates to the first 10 nodes).

#ifndef XK_PRESENT_PRESENTATION_GRAPH_H_
#define XK_PRESENT_PRESENTATION_GRAPH_H_

#include <set>
#include <utility>
#include <vector>

#include "common/status.h"
#include "present/mtton.h"

namespace xk::present {

/// A displayed node: (occurrence index in the CTSSN, target object).
using DisplayNode = std::pair<int, storage::ObjectId>;

class PresentationGraph {
 public:
  /// `ctssn` must outlive the graph.
  explicit PresentationGraph(const cn::Ctssn* ctssn);

  /// Registers a result tree. Duplicates are ignored. The first registered
  /// MTTON becomes the initial display (PG_0).
  void AddMtton(const Mtton& m);

  size_t NumMttons() const { return mttons_.size(); }

  /// Expansion on occurrence `occ` (the user clicked a node of that role):
  /// every registered MTTON's object at `occ` becomes displayed, plus a
  /// greedy-minimal completion. `max_new_nodes` mirrors the UI's
  /// "only the first 10 are displayed" (0 = unlimited).
  Status Expand(int occ, size_t max_new_nodes = 0);

  /// Contraction on occurrence `occ` keeping only `keep` of that role; the
  /// display becomes the union of all displayed MTTONs through `keep`.
  Status Contract(int occ, storage::ObjectId keep);

  bool IsDisplayed(int occ, storage::ObjectId object) const {
    return display_.contains({occ, object});
  }
  const std::set<DisplayNode>& Displayed() const { return display_; }
  bool IsExpanded(int occ) const { return expanded_.contains(occ); }

  /// Edges of the displayed subgraph: every edge of every MTTON fully
  /// contained in the display, with its TSS edge id.
  std::vector<std::pair<DisplayNode, DisplayNode>> DisplayedEdges() const;

  /// Checks invariant (c): every displayed node lies on an MTTON contained
  /// in the display. Exposed for property tests.
  bool InvariantHolds() const;

 private:
  bool Contained(const Mtton& m) const;

  const cn::Ctssn* ctssn_;
  std::vector<Mtton> mttons_;
  std::set<DisplayNode> display_;
  std::set<int> expanded_;
};

}  // namespace xk::present

#endif  // XK_PRESENT_PRESENTATION_GRAPH_H_
