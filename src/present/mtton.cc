#include "present/mtton.h"

#include "common/strings.h"
#include "storage/tuple.h"

namespace xk::present {

size_t MttonHash::operator()(const Mtton& m) const {
  size_t h = storage::HashIds(storage::TupleView(m.objects));
  h ^= static_cast<size_t>(m.ctssn_index) * 0x9E3779B97F4A7C15ULL;
  return h;
}

std::string RenderMtton(const Mtton& m, const cn::Ctssn& ctssn,
                        const schema::TssGraph& tss,
                        const storage::BlobStore& blobs) {
  std::string out = StrFormat("result (score %d):\n", m.score);
  for (int v = 0; v < ctssn.num_nodes(); ++v) {
    storage::ObjectId o = m.objects[static_cast<size_t>(v)];
    out += StrFormat("  [%d] %s #%lld: ", v,
                     tss.name(ctssn.tree.nodes[static_cast<size_t>(v)]).c_str(),
                     static_cast<long long>(o));
    auto blob = blobs.Get(o);
    if (blob.ok()) {
      out += std::string(*blob);
    } else {
      out += "<no blob>";
    }
    out += "\n";
  }
  for (const schema::TssTreeEdge& e : ctssn.tree.edges) {
    const schema::TssEdge& te = tss.edge(e.tss_edge);
    const std::string& desc =
        te.forward_desc.empty() ? std::string("->") : te.forward_desc;
    out += StrFormat("  #%lld --%s--> #%lld\n",
                     static_cast<long long>(m.objects[static_cast<size_t>(e.from)]),
                     desc.c_str(),
                     static_cast<long long>(m.objects[static_cast<size_t>(e.to)]));
  }
  return out;
}

}  // namespace xk::present
