// Copyright (c) the XKeyword authors.
//
// MTTONs — Minimal Total Target Object Networks (Section 3.1), the results
// of a keyword query: trees of target objects containing every query keyword,
// scored by the size of the underlying node network (smaller = better).

#ifndef XK_PRESENT_MTTON_H_
#define XK_PRESENT_MTTON_H_

#include <string>
#include <vector>

#include "cn/ctssn.h"
#include "storage/blob_store.h"
#include "storage/value.h"

namespace xk::present {

/// One result tree. Shape and score come from the owning CTSSN; `objects`
/// binds each occurrence to a target object.
struct Mtton {
  /// Index of the producing CTSSN within the query's network list.
  int ctssn_index = -1;
  /// Object per CTSSN occurrence.
  std::vector<storage::ObjectId> objects;
  /// MTNN size in schema edges (== the CN's size).
  int score = 0;

  bool operator==(const Mtton&) const = default;
};

struct MttonHash {
  size_t operator()(const Mtton& m) const;
};

/// Human-readable rendering: one line per occurrence with the target object's
/// BLOB, edges annotated with the TSS graph's semantic explanations
/// ("paper1 --cites--> paper2").
std::string RenderMtton(const Mtton& m, const cn::Ctssn& ctssn,
                        const schema::TssGraph& tss,
                        const storage::BlobStore& blobs);

}  // namespace xk::present

#endif  // XK_PRESENT_MTTON_H_
