#include "present/presentation_graph.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace xk::present {

PresentationGraph::PresentationGraph(const cn::Ctssn* ctssn) : ctssn_(ctssn) {
  XK_CHECK(ctssn != nullptr);
}

void PresentationGraph::AddMtton(const Mtton& m) {
  XK_CHECK_EQ(m.objects.size(), static_cast<size_t>(ctssn_->num_nodes()));
  if (std::find(mttons_.begin(), mttons_.end(), m) != mttons_.end()) return;
  mttons_.push_back(m);
  if (mttons_.size() == 1) {
    // PG_0: a single, arbitrarily chosen MTTON.
    for (int v = 0; v < ctssn_->num_nodes(); ++v) {
      display_.insert({v, m.objects[static_cast<size_t>(v)]});
    }
  }
}

bool PresentationGraph::Contained(const Mtton& m) const {
  for (int v = 0; v < ctssn_->num_nodes(); ++v) {
    if (!display_.contains({v, m.objects[static_cast<size_t>(v)]})) return false;
  }
  return true;
}

Status PresentationGraph::Expand(int occ, size_t max_new_nodes) {
  if (occ < 0 || occ >= ctssn_->num_nodes()) {
    return Status::OutOfRange("bad occurrence");
  }
  if (mttons_.empty()) return Status::Aborted("no results registered");

  // Property (b): every MTTON's object of this role becomes displayed —
  // realized by displaying, for each new object, the MTTON that adds the
  // fewest nodes (greedy approximation of property (d)).
  size_t added = 0;
  for (bool progress = true; progress;) {
    progress = false;
    const Mtton* best = nullptr;
    size_t best_new = 0;
    for (const Mtton& m : mttons_) {
      if (display_.contains({occ, m.objects[static_cast<size_t>(occ)]})) continue;
      size_t fresh = 0;
      for (int v = 0; v < ctssn_->num_nodes(); ++v) {
        if (!display_.contains({v, m.objects[static_cast<size_t>(v)]})) ++fresh;
      }
      if (best == nullptr || fresh < best_new) {
        best = &m;
        best_new = fresh;
      }
    }
    if (best != nullptr) {
      if (max_new_nodes != 0 && added + best_new > max_new_nodes) break;
      for (int v = 0; v < ctssn_->num_nodes(); ++v) {
        if (display_.insert({v, best->objects[static_cast<size_t>(v)]}).second) {
          ++added;
        }
      }
      progress = true;
    }
  }
  expanded_.insert(occ);
  return Status::OK();
}

Status PresentationGraph::Contract(int occ, storage::ObjectId keep) {
  if (occ < 0 || occ >= ctssn_->num_nodes()) {
    return Status::OutOfRange("bad occurrence");
  }
  if (!display_.contains({occ, keep})) {
    return Status::NotFound(StrFormat("object %lld of role %d not displayed",
                                      static_cast<long long>(keep), occ));
  }
  // Exact per properties (a)-(d): union of displayed MTTONs through `keep`.
  std::set<DisplayNode> next;
  for (const Mtton& m : mttons_) {
    if (m.objects[static_cast<size_t>(occ)] != keep) continue;
    if (!Contained(m)) continue;
    for (int v = 0; v < ctssn_->num_nodes(); ++v) {
      next.insert({v, m.objects[static_cast<size_t>(v)]});
    }
  }
  if (next.empty()) {
    return Status::Internal("contract target not on any displayed result");
  }
  display_ = std::move(next);
  expanded_.erase(occ);
  return Status::OK();
}

std::vector<std::pair<DisplayNode, DisplayNode>>
PresentationGraph::DisplayedEdges() const {
  std::set<std::pair<DisplayNode, DisplayNode>> edges;
  for (const Mtton& m : mttons_) {
    if (!Contained(m)) continue;
    for (const schema::TssTreeEdge& e : ctssn_->tree.edges) {
      edges.insert({{e.from, m.objects[static_cast<size_t>(e.from)]},
                    {e.to, m.objects[static_cast<size_t>(e.to)]}});
    }
  }
  return {edges.begin(), edges.end()};
}

bool PresentationGraph::InvariantHolds() const {
  std::set<DisplayNode> covered;
  for (const Mtton& m : mttons_) {
    if (!Contained(m)) continue;
    for (int v = 0; v < ctssn_->num_nodes(); ++v) {
      covered.insert({v, m.objects[static_cast<size_t>(v)]});
    }
  }
  return covered == display_;
}

}  // namespace xk::present
