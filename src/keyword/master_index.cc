#include "keyword/master_index.h"

#include <algorithm>

#include "common/strings.h"

namespace xk::keyword {

MasterIndex MasterIndex::Build(const xml::XmlGraph& graph,
                               const schema::ValidationResult& validation,
                               const schema::TargetObjectGraph& objects) {
  MasterIndex index;
  for (storage::ObjectId o = 0; o < objects.NumObjects(); ++o) {
    for (xml::NodeId n : objects.MemberNodes(o)) {
      schema::SchemaNodeId sn = validation.node_types[static_cast<size_t>(n)];
      // Tokens of the tag and, if present, the value.
      std::vector<std::string> tokens = Tokenize(graph.label(n));
      if (graph.has_value(n)) {
        std::vector<std::string> value_tokens = Tokenize(graph.value(n));
        tokens.insert(tokens.end(), value_tokens.begin(), value_tokens.end());
      }
      std::sort(tokens.begin(), tokens.end());
      tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
      for (std::string& tok : tokens) {
        index.lists_[std::move(tok)].push_back(Posting{o, n, sn});
        ++index.num_postings_;
      }
    }
  }
  return index;
}

const std::vector<Posting>& MasterIndex::ContainingList(
    const std::string& keyword) const {
  auto it = lists_.find(ToLower(keyword));
  return it == lists_.end() ? empty_ : it->second;
}

bool MasterIndex::Contains(const std::string& keyword) const {
  return lists_.contains(ToLower(keyword));
}

size_t MasterIndex::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& [k, list] : lists_) {
    bytes += k.size() + list.capacity() * sizeof(Posting);
  }
  return bytes;
}

std::vector<schema::SchemaNodeId> MasterIndex::SchemaNodesContaining(
    const std::string& keyword) const {
  std::vector<schema::SchemaNodeId> nodes;
  for (const Posting& p : ContainingList(keyword)) nodes.push_back(p.schema_node);
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

}  // namespace xk::keyword
