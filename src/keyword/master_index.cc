#include "keyword/master_index.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "common/strings.h"

namespace xk::keyword {

MasterIndex MasterIndex::Build(const xml::XmlGraph& graph,
                               const schema::ValidationResult& validation,
                               const schema::TargetObjectGraph& objects) {
  // Stage 1: collect per-keyword lists into an ordered scratch map (ordered so
  // the arena and list layout are deterministic across runs).
  std::map<std::string, std::vector<Posting>> scratch;
  size_t num_postings = 0;
  for (storage::ObjectId o = 0; o < objects.NumObjects(); ++o) {
    for (xml::NodeId n : objects.MemberNodes(o)) {
      schema::SchemaNodeId sn = validation.node_types[static_cast<size_t>(n)];
      // Tokens of the tag and, if present, the value.
      std::vector<std::string> tokens = Tokenize(graph.label(n));
      if (graph.has_value(n)) {
        std::vector<std::string> value_tokens = Tokenize(graph.value(n));
        tokens.insert(tokens.end(), value_tokens.begin(), value_tokens.end());
      }
      std::sort(tokens.begin(), tokens.end());
      tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
      for (std::string& tok : tokens) {
        scratch[std::move(tok)].push_back(Posting{o, n, sn});
        ++num_postings;
      }
    }
  }

  // Stage 2: intern the keywords into one arena and move the lists into the
  // final layout. The arena is sized exactly before any view is taken, so the
  // views in ids_ stay valid; each list is sorted and shrunk to fit.
  MasterIndex index;
  index.num_postings_ = num_postings;
  size_t arena_size = 0;
  for (const auto& [keyword, list] : scratch) {
    (void)list;
    arena_size += keyword.size();
  }
  index.arena_.reserve(arena_size);
  index.ids_.reserve(scratch.size());
  index.lists_.reserve(scratch.size());
  for (auto& [keyword, list] : scratch) {
    const size_t offset = index.arena_.size();
    index.arena_.append(keyword);
    std::string_view view(index.arena_.data() + offset, keyword.size());
    std::sort(list.begin(), list.end(), [](const Posting& a, const Posting& b) {
      return std::tie(a.to_id, a.node_id) < std::tie(b.to_id, b.node_id);
    });
    list.shrink_to_fit();
    index.ids_.emplace(view, static_cast<uint32_t>(index.lists_.size()));
    index.lists_.push_back(std::move(list));
  }
  XK_CHECK_EQ(index.arena_.size(), arena_size);
  return index;
}

const std::vector<Posting>& MasterIndex::ContainingList(
    const std::string& keyword) const {
  const std::string lowered = ToLower(keyword);
  auto it = ids_.find(std::string_view(lowered));
  return it == ids_.end() ? empty_ : lists_[it->second];
}

bool MasterIndex::Contains(const std::string& keyword) const {
  const std::string lowered = ToLower(keyword);
  return ids_.contains(std::string_view(lowered));
}

size_t MasterIndex::MemoryBytes() const {
  size_t bytes = arena_.capacity();
  bytes += lists_.capacity() * sizeof(std::vector<Posting>);
  for (const std::vector<Posting>& list : lists_) {
    bytes += list.capacity() * sizeof(Posting);
  }
  // Hash map: one (view, id) entry plus a chain pointer per keyword, plus the
  // bucket array.
  bytes += ids_.size() *
           (sizeof(std::string_view) + sizeof(uint32_t) + sizeof(void*));
  bytes += ids_.bucket_count() * sizeof(void*);
  return bytes;
}

std::vector<schema::SchemaNodeId> MasterIndex::SchemaNodesContaining(
    const std::string& keyword) const {
  std::vector<schema::SchemaNodeId> nodes;
  for (const Posting& p : ContainingList(keyword)) nodes.push_back(p.schema_node);
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

}  // namespace xk::keyword
