#include "keyword/master_index.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "common/strings.h"

namespace xk::keyword {

MasterIndex MasterIndex::Build(const xml::XmlGraph& graph,
                               const schema::ValidationResult& validation,
                               const schema::TargetObjectGraph& objects) {
  // Stage 1: collect per-keyword lists into an ordered scratch map (ordered so
  // the arena and list layout are deterministic across runs).
  std::map<std::string, std::vector<Posting>> scratch;
  size_t num_postings = 0;
  for (storage::ObjectId o = 0; o < objects.NumObjects(); ++o) {
    for (xml::NodeId n : objects.MemberNodes(o)) {
      schema::SchemaNodeId sn = validation.node_types[static_cast<size_t>(n)];
      // Tokens of the tag and, if present, the value.
      std::vector<std::string> tokens = Tokenize(graph.label(n));
      if (graph.has_value(n)) {
        std::vector<std::string> value_tokens = Tokenize(graph.value(n));
        tokens.insert(tokens.end(), value_tokens.begin(), value_tokens.end());
      }
      std::sort(tokens.begin(), tokens.end());
      tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
      for (std::string& tok : tokens) {
        scratch[std::move(tok)].push_back(Posting{o, n, sn});
        ++num_postings;
      }
    }
  }

  // Stage 2: intern the keywords into one arena and move the lists into the
  // final layout. The arena is sized exactly before any view is taken, so the
  // views in ids_ stay valid; each list is sorted and shrunk to fit.
  MasterIndex index;
  index.num_postings_ = num_postings;
  size_t arena_size = 0;
  for (const auto& [keyword, list] : scratch) {
    (void)list;
    arena_size += keyword.size();
  }
  index.arena_.reserve(arena_size);
  index.ids_.reserve(scratch.size());
  index.lists_.reserve(scratch.size());
  for (auto& [keyword, list] : scratch) {
    const size_t offset = index.arena_.size();
    index.arena_.append(keyword);
    std::string_view view(index.arena_.data() + offset, keyword.size());
    std::sort(list.begin(), list.end(), [](const Posting& a, const Posting& b) {
      return std::tie(a.to_id, a.node_id) < std::tie(b.to_id, b.node_id);
    });
    list.shrink_to_fit();
    index.ids_.emplace(view, static_cast<uint32_t>(index.lists_.size()));
    index.lists_.push_back(std::move(list));
  }
  XK_CHECK_EQ(index.arena_.size(), arena_size);
  return index;
}

const std::vector<Posting>& MasterIndex::ContainingList(
    const std::string& keyword) const {
  const std::string lowered = ToLower(keyword);
  auto it = ids_.find(std::string_view(lowered));
  return it == ids_.end() ? empty_ : lists_[it->second];
}

bool MasterIndex::Contains(const std::string& keyword) const {
  const std::string lowered = ToLower(keyword);
  return ids_.contains(std::string_view(lowered));
}

size_t MasterIndex::MemoryBytes() const {
  size_t bytes = arena_.capacity();
  bytes += lists_.capacity() * sizeof(std::vector<Posting>);
  for (const std::vector<Posting>& list : lists_) {
    bytes += list.capacity() * sizeof(Posting);
  }
  // Hash map: one (view, id) entry plus a chain pointer per keyword, plus the
  // bucket array.
  bytes += ids_.size() *
           (sizeof(std::string_view) + sizeof(uint32_t) + sizeof(void*));
  bytes += ids_.bucket_count() * sizeof(void*);
  return bytes;
}

MasterIndex MasterIndex::Slice(storage::ObjectId begin,
                               storage::ObjectId end) const {
  // Walk keywords in arena order (deterministic) and keep the [begin, end)
  // subrange of each list — lists are sorted by (to_id, node_id), so the
  // range is one contiguous run found by binary search.
  std::vector<std::pair<std::string_view, uint32_t>> by_offset(ids_.begin(),
                                                               ids_.end());
  std::sort(by_offset.begin(), by_offset.end(),
            [](const auto& a, const auto& b) {
              return a.first.data() < b.first.data();
            });

  MasterIndex slice;
  size_t arena_size = 0;
  std::vector<std::pair<std::string_view, std::vector<Posting>>> kept;
  for (const auto& [keyword, id] : by_offset) {
    const std::vector<Posting>& list = lists_[id];
    auto lo = std::lower_bound(list.begin(), list.end(), begin,
                               [](const Posting& p, storage::ObjectId v) {
                                 return p.to_id < v;
                               });
    auto hi = std::lower_bound(lo, list.end(), end,
                               [](const Posting& p, storage::ObjectId v) {
                                 return p.to_id < v;
                               });
    if (lo == hi) continue;
    arena_size += keyword.size();
    kept.emplace_back(keyword, std::vector<Posting>(lo, hi));
  }

  slice.arena_.reserve(arena_size);
  slice.ids_.reserve(kept.size());
  slice.lists_.reserve(kept.size());
  for (auto& [keyword, list] : kept) {
    const size_t offset = slice.arena_.size();
    slice.arena_.append(keyword);
    std::string_view view(slice.arena_.data() + offset, keyword.size());
    slice.num_postings_ += list.size();
    slice.ids_.emplace(view, static_cast<uint32_t>(slice.lists_.size()));
    slice.lists_.push_back(std::move(list));
  }
  XK_CHECK_EQ(slice.arena_.size(), arena_size);
  return slice;
}

std::vector<schema::SchemaNodeId> MasterIndex::SchemaNodesContaining(
    const std::string& keyword) const {
  std::vector<schema::SchemaNodeId> nodes;
  for (const Posting& p : ContainingList(keyword)) nodes.push_back(p.schema_node);
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

}  // namespace xk::keyword
