// Copyright (c) the XKeyword authors.
//
// The master index (Section 4, item 1): "an inverted index that stores for
// each keyword k a list of triplets <TO_id, node_id, schema_node> where TO_id
// is the id of the target object that contains the node of type schema_node
// with id node_id, which contains k." The keyword discoverer of the query
// stage reads containing lists L(k) straight out of this structure.
//
// Keywords are lower-cased alphanumeric tokens of a node's tag and value.
// Only nodes belonging to a target object are indexed (dummy nodes carry no
// presentable information).
//
// Layout: keyword strings are interned into one contiguous arena and the
// lookup map keys are string_views into it, so each distinct keyword is
// stored once with no per-key heap allocation. Containing lists are sorted by
// (to_id, node_id) at build and shrunk to fit — deterministic, cache-friendly
// scans at the exact memory footprint.

#ifndef XK_KEYWORD_MASTER_INDEX_H_
#define XK_KEYWORD_MASTER_INDEX_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "schema/decomposer.h"
#include "schema/validator.h"
#include "storage/value.h"
#include "xml/xml_graph.h"

namespace xk::keyword {

/// One entry of a containing list.
struct Posting {
  storage::ObjectId to_id;
  xml::NodeId node_id;
  schema::SchemaNodeId schema_node;

  bool operator==(const Posting&) const = default;
};

/// Inverted index from keyword to containing list.
class MasterIndex {
 public:
  /// Indexes every member node of every target object.
  static MasterIndex Build(const xml::XmlGraph& graph,
                           const schema::ValidationResult& validation,
                           const schema::TargetObjectGraph& objects);

  /// L(k): postings of `keyword` (case-insensitive), sorted by
  /// (to_id, node_id); empty if absent.
  const std::vector<Posting>& ContainingList(const std::string& keyword) const;

  bool Contains(const std::string& keyword) const;

  size_t NumKeywords() const { return ids_.size(); }
  size_t NumPostings() const { return num_postings_; }
  size_t MemoryBytes() const;

  /// All distinct (schema node, keyword-count) pairs for `keyword` — the CN
  /// generator asks which schema nodes can hold a keyword.
  std::vector<schema::SchemaNodeId> SchemaNodesContaining(
      const std::string& keyword) const;

  /// The shard-local index owning target objects in [begin, end): every
  /// containing list restricted to postings with begin <= to_id < end
  /// ((to_id, node_id) order preserved), keywords whose lists become empty
  /// dropped, and the arena re-interned so the result is self-contained.
  /// Slicing the full id range at the same boundaries partitions NumPostings
  /// exactly.
  MasterIndex Slice(storage::ObjectId begin, storage::ObjectId end) const;

 private:
  /// All distinct keywords end to end; sized exactly once before the views in
  /// ids_ are taken, so data() never moves.
  std::string arena_;
  /// Keyword (view into arena_) -> index into lists_.
  std::unordered_map<std::string_view, uint32_t> ids_;
  std::vector<std::vector<Posting>> lists_;
  std::vector<Posting> empty_;
  size_t num_postings_ = 0;
};

}  // namespace xk::keyword

#endif  // XK_KEYWORD_MASTER_INDEX_H_
