// Copyright (c) the XKeyword authors.
//
// Catalog: the namespace of relations produced by the load stage (Figure 7).
// Owns all connection relations plus the target-object BLOB store.

#ifndef XK_STORAGE_CATALOG_H_
#define XK_STORAGE_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/blob_store.h"
#include "storage/table.h"

namespace xk::storage {

/// Owns tables by name; lookups return stable pointers (tables are never
/// relocated once created).
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty table; fails if the name is taken.
  Result<Table*> CreateTable(const std::string& name,
                             std::vector<std::string> column_names);

  /// The table called `name`, or NotFound.
  Result<Table*> GetTable(const std::string& name);
  Result<const Table*> GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const { return tables_.contains(name); }

  Status DropTable(const std::string& name);

  std::vector<std::string> TableNames() const;
  size_t NumTables() const { return tables_.size(); }

  BlobStore& blob_store() { return blob_store_; }
  const BlobStore& blob_store() const { return blob_store_; }

  /// Total footprint across tables and blobs.
  size_t MemoryBytes() const;

 private:
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  BlobStore blob_store_;
};

}  // namespace xk::storage

#endif  // XK_STORAGE_CATALOG_H_
