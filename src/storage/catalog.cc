#include "storage/catalog.h"

#include <algorithm>

#include "common/strings.h"

namespace xk::storage {

Result<Table*> Catalog::CreateTable(const std::string& name,
                                    std::vector<std::string> column_names) {
  if (tables_.contains(name)) {
    return Status::AlreadyExists(StrFormat("table %s", name.c_str()));
  }
  auto table = std::make_unique<Table>(name, std::move(column_names));
  Table* ptr = table.get();
  tables_.emplace(name, std::move(table));
  return ptr;
}

Result<Table*> Catalog::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound(StrFormat("table %s", name.c_str()));
  }
  return it->second.get();
}

Result<const Table*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound(StrFormat("table %s", name.c_str()));
  }
  return static_cast<const Table*>(it->second.get());
}

Status Catalog::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::NotFound(StrFormat("table %s", name.c_str()));
  }
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) {
    (void)table;
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

size_t Catalog::MemoryBytes() const {
  size_t bytes = blob_store_.MemoryBytes();
  for (const auto& [name, table] : tables_) {
    (void)name;
    bytes += table->MemoryBytes();
  }
  return bytes;
}

}  // namespace xk::storage
