#include "storage/blob_store.h"

#include "common/strings.h"

namespace xk::storage {

Status BlobStore::Put(ObjectId id, std::string blob) {
  auto [it, inserted] = blobs_.emplace(id, std::move(blob));
  if (!inserted) {
    return Status::AlreadyExists(StrFormat("blob %lld exists", static_cast<long long>(id)));
  }
  bytes_ += it->second.size();
  return Status::OK();
}

Result<std::string_view> BlobStore::Get(ObjectId id) const {
  auto it = blobs_.find(id);
  if (it == blobs_.end()) {
    return Status::NotFound(StrFormat("blob %lld", static_cast<long long>(id)));
  }
  return std::string_view(it->second);
}

}  // namespace xk::storage
