// Copyright (c) the XKeyword authors.
//
// In-memory relational tables holding the connection relations of Section 5.
// Rows are fixed-arity ObjectId tuples stored in one flat array (row-major),
// so full scans stream through contiguous memory. A table may be
// index-organized ("clustered") on a column order and may carry any number of
// hash / composite secondary indexes — the decomposition policies of Section 7
// differ exactly in which of these they create.

#ifndef XK_STORAGE_TABLE_H_
#define XK_STORAGE_TABLE_H_

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/index.h"
#include "storage/tuple.h"

namespace xk::storage {

/// A relation with named ObjectId columns.
class Table {
 public:
  Table(std::string name, std::vector<std::string> column_names);

  // Movable despite the distinct-count mutex (the moved-to table gets a fresh
  // one). Moving is only safe before the table is shared across threads or
  // has secondary indexes, same as before the mutex existed.
  Table(Table&& other) noexcept
      : name_(std::move(other.name_)),
        column_names_(std::move(other.column_names_)),
        arity_(other.arity_),
        rows_(std::move(other.rows_)),
        num_rows_(other.num_rows_),
        frozen_(other.frozen_),
        clustering_(std::move(other.clustering_)),
        hash_indexes_(std::move(other.hash_indexes_)),
        composite_indexes_(std::move(other.composite_indexes_)),
        distinct_cache_(std::move(other.distinct_cache_)) {}

  const std::string& name() const { return name_; }
  int arity() const { return static_cast<int>(column_names_.size()); }
  const std::vector<std::string>& column_names() const { return column_names_; }

  /// Index of the column called `name`, or an error.
  Result<int> ColumnIndex(const std::string& name) const;

  /// Appends a row. Fails if the arity does not match or the table is frozen.
  Status Append(TupleView row);
  Status Append(const Tuple& row) { return Append(TupleView(row)); }

  size_t NumRows() const { return num_rows_; }

  /// Read access to row `r` (no bounds check beyond debug builds).
  TupleView Row(RowId r) const {
    return TupleView(&rows_[static_cast<size_t>(r) * arity_], arity_);
  }
  ObjectId At(RowId r, int col) const {
    return rows_[static_cast<size_t>(r) * arity_ + static_cast<size_t>(col)];
  }

  /// Raw row-major storage (`arity()` ids per row). The vectorized kernels
  /// gather through this directly instead of calling At() per lane.
  const ObjectId* RowData() const { return rows_.data(); }

  // --- Physical design -------------------------------------------------

  /// Sorts rows by the given column order (index-organized table). Must be
  /// called before any secondary index is built. Lookups on a prefix of the
  /// clustering key then return contiguous row ranges.
  Status Cluster(std::vector<int> key_columns);

  bool IsClustered() const { return clustering_.has_value(); }
  const std::vector<int>& clustering_key() const { return *clustering_; }

  /// Row-id range [begin, end) whose clustering key starts with `prefix`.
  /// Requires IsClustered() and prefix no longer than the clustering key.
  std::pair<RowId, RowId> ClusteredRange(TupleView prefix) const;

  /// Builds (or returns the existing) single-attribute hash index on `column`.
  Status BuildHashIndex(int column);
  /// Builds a multi-attribute sorted index.
  Status BuildCompositeIndex(std::vector<int> key_columns);

  /// The hash index on `column`, or nullptr.
  const HashIndex* GetHashIndex(int column) const;
  /// A composite index whose key starts with `columns` (exact prefix match of
  /// the requested columns), or nullptr.
  const CompositeIndex* GetCompositeIndex(const std::vector<int>& columns) const;

  /// All composite indexes, in build order (access-path selection scans these
  /// for the longest usable key prefix).
  const std::vector<std::unique_ptr<CompositeIndex>>& composite_indexes() const {
    return composite_indexes_;
  }

  bool HasAnyIndex() const { return !hash_indexes_.empty() || !composite_indexes_.empty(); }

  /// Disallows further appends (indexes stay consistent); idempotent.
  void Freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }

  /// Heap footprint of rows + indexes, for the space ablation bench.
  size_t MemoryBytes() const;

  /// Distinct values in `column` (computed lazily, cached after Freeze()).
  /// Safe to call concurrently from multiple threads.
  size_t DistinctCount(int column) const;

 private:
  friend class HashIndex;
  friend class CompositeIndex;

  std::string name_;
  std::vector<std::string> column_names_;
  int arity_;
  std::vector<ObjectId> rows_;  // row-major, arity_ ids per row
  size_t num_rows_ = 0;
  bool frozen_ = false;
  std::optional<std::vector<int>> clustering_;
  std::vector<std::unique_ptr<HashIndex>> hash_indexes_;
  std::vector<std::unique_ptr<CompositeIndex>> composite_indexes_;
  /// Lazily-filled per-column distinct counts. DistinctCount may be called
  /// from concurrent query threads, so both the has_value check and the fill
  /// must happen under distinct_mu_ (an unguarded optional write raced with
  /// readers before).
  mutable std::mutex distinct_mu_;
  mutable std::vector<std::optional<size_t>> distinct_cache_;
};

}  // namespace xk::storage

#endif  // XK_STORAGE_TABLE_H_
