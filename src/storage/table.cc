#include "storage/table.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "common/strings.h"

namespace xk::storage {

Table::Table(std::string name, std::vector<std::string> column_names)
    : name_(std::move(name)),
      column_names_(std::move(column_names)),
      arity_(static_cast<int>(column_names_.size())) {
  XK_CHECK_GT(arity_, 0);
  distinct_cache_.resize(static_cast<size_t>(arity_));
}

Result<int> Table::ColumnIndex(const std::string& name) const {
  for (int i = 0; i < arity_; ++i) {
    if (column_names_[static_cast<size_t>(i)] == name) return i;
  }
  return Status::NotFound(
      StrFormat("table %s has no column %s", name_.c_str(), name.c_str()));
}

Status Table::Append(TupleView row) {
  if (frozen_) {
    return Status::Aborted(StrFormat("table %s is frozen", name_.c_str()));
  }
  if (static_cast<int>(row.size()) != arity_) {
    return Status::InvalidArgument(
        StrFormat("table %s arity %d, got row of %zu", name_.c_str(), arity_,
                  row.size()));
  }
  rows_.insert(rows_.end(), row.begin(), row.end());
  ++num_rows_;
  return Status::OK();
}

Status Table::Cluster(std::vector<int> key_columns) {
  if (!hash_indexes_.empty() || !composite_indexes_.empty()) {
    return Status::Aborted("cluster before building secondary indexes");
  }
  if (key_columns.empty()) {
    return Status::InvalidArgument("empty clustering key");
  }
  for (int c : key_columns) {
    if (c < 0 || c >= arity_) {
      return Status::OutOfRange(StrFormat("clustering column %d out of range", c));
    }
  }
  // Stable sort of row ids by key, then rewrite the flat storage in order.
  std::vector<RowId> order(num_rows_);
  for (size_t i = 0; i < num_rows_; ++i) order[i] = static_cast<RowId>(i);
  std::stable_sort(order.begin(), order.end(), [&](RowId a, RowId b) {
    for (int c : key_columns) {
      ObjectId va = At(a, c);
      ObjectId vb = At(b, c);
      if (va != vb) return va < vb;
    }
    return false;
  });
  std::vector<ObjectId> sorted;
  sorted.reserve(rows_.size());
  for (RowId r : order) {
    TupleView row = Row(r);
    sorted.insert(sorted.end(), row.begin(), row.end());
  }
  rows_ = std::move(sorted);
  clustering_ = std::move(key_columns);
  return Status::OK();
}

std::pair<RowId, RowId> Table::ClusteredRange(TupleView prefix) const {
  XK_CHECK(clustering_.has_value());
  XK_CHECK_LE(prefix.size(), clustering_->size());
  const std::vector<int>& key = *clustering_;
  // Binary search over row positions (rows are physically sorted).
  auto cmp_lower = [&](RowId r) {  // true if Row(r) < prefix
    for (size_t i = 0; i < prefix.size(); ++i) {
      ObjectId v = At(r, key[i]);
      if (v != prefix[i]) return v < prefix[i];
    }
    return false;
  };
  auto cmp_upper = [&](RowId r) {  // true if Row(r) <= prefix
    for (size_t i = 0; i < prefix.size(); ++i) {
      ObjectId v = At(r, key[i]);
      if (v != prefix[i]) return v < prefix[i];
    }
    return true;
  };
  RowId lo = 0;
  RowId hi = static_cast<RowId>(num_rows_);
  while (lo < hi) {
    RowId mid = lo + (hi - lo) / 2;
    if (cmp_lower(mid)) lo = mid + 1; else hi = mid;
  }
  RowId begin = lo;
  hi = static_cast<RowId>(num_rows_);
  while (lo < hi) {
    RowId mid = lo + (hi - lo) / 2;
    if (cmp_upper(mid)) lo = mid + 1; else hi = mid;
  }
  return {begin, lo};
}

Status Table::BuildHashIndex(int column) {
  if (column < 0 || column >= arity_) {
    return Status::OutOfRange(StrFormat("index column %d out of range", column));
  }
  if (GetHashIndex(column) != nullptr) return Status::OK();
  hash_indexes_.push_back(std::make_unique<HashIndex>(*this, column));
  return Status::OK();
}

Status Table::BuildCompositeIndex(std::vector<int> key_columns) {
  if (key_columns.empty()) return Status::InvalidArgument("empty composite key");
  for (int c : key_columns) {
    if (c < 0 || c >= arity_) {
      return Status::OutOfRange(StrFormat("index column %d out of range", c));
    }
  }
  for (const auto& idx : composite_indexes_) {
    if (idx->key_columns() == key_columns) return Status::OK();
  }
  composite_indexes_.push_back(std::make_unique<CompositeIndex>(*this, key_columns));
  return Status::OK();
}

const HashIndex* Table::GetHashIndex(int column) const {
  for (const auto& idx : hash_indexes_) {
    if (idx->column() == column) return idx.get();
  }
  return nullptr;
}

const CompositeIndex* Table::GetCompositeIndex(const std::vector<int>& columns) const {
  for (const auto& idx : composite_indexes_) {
    if (idx->key_columns().size() >= columns.size() &&
        std::equal(columns.begin(), columns.end(), idx->key_columns().begin())) {
      return idx.get();
    }
  }
  return nullptr;
}

size_t Table::MemoryBytes() const {
  size_t bytes = rows_.capacity() * sizeof(ObjectId);
  for (const auto& idx : hash_indexes_) bytes += idx->MemoryBytes();
  for (const auto& idx : composite_indexes_) bytes += idx->MemoryBytes();
  return bytes;
}

size_t Table::DistinctCount(int column) const {
  XK_CHECK(column >= 0 && column < arity_);
  if (frozen_) {
    std::lock_guard<std::mutex> lock(distinct_mu_);
    const auto& slot = distinct_cache_[static_cast<size_t>(column)];
    if (slot.has_value()) return *slot;
  }
  std::unordered_set<ObjectId> seen;
  for (size_t r = 0; r < num_rows_; ++r) {
    seen.insert(At(static_cast<RowId>(r), column));
  }
  const size_t count = seen.size();
  if (frozen_) {
    std::lock_guard<std::mutex> lock(distinct_mu_);
    distinct_cache_[static_cast<size_t>(column)] = count;
  }
  return count;
}

}  // namespace xk::storage
