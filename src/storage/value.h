// Copyright (c) the XKeyword authors.
//
// Scalar types of the relational substrate. Connection relations store only
// target-object IDs (Section 5: "In RDBMS's we use the integer type to
// represent the ID datatype"), so the substrate is ID(int64)-typed throughout;
// strings live in the BLOB store and the master index.

#ifndef XK_STORAGE_VALUE_H_
#define XK_STORAGE_VALUE_H_

#include <cstdint>
#include <unordered_set>

namespace xk::storage {

/// Identifier of a target object, XML node, or any other catalogued entity.
using ObjectId = int64_t;

/// Sentinel for "no object" (never a valid id; generators allocate from 0).
inline constexpr ObjectId kInvalidId = -1;

/// Unordered set of ids; used for keyword restrictions (containing lists).
using IdSet = std::unordered_set<ObjectId>;

}  // namespace xk::storage

#endif  // XK_STORAGE_VALUE_H_
