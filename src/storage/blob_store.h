// Copyright (c) the XKeyword authors.
//
// BLOB store for target objects (Section 4, item 3): "BLOBs of target objects,
// which given an object id instantly return the whole target object." We store
// the serialized XML fragment of each target object, so the presentation layer
// can render results without touching the XML graph.

#ifndef XK_STORAGE_BLOB_STORE_H_
#define XK_STORAGE_BLOB_STORE_H_

#include <string>
#include <string_view>
#include <unordered_map>

#include "common/result.h"
#include "common/status.h"
#include "storage/value.h"

namespace xk::storage {

/// Maps target-object ids to their serialized content.
class BlobStore {
 public:
  BlobStore() = default;

  /// Stores `blob` under `id`; fails if the id is already present.
  Status Put(ObjectId id, std::string blob);

  /// The blob for `id`, or NotFound.
  Result<std::string_view> Get(ObjectId id) const;

  bool Contains(ObjectId id) const { return blobs_.contains(id); }
  size_t size() const { return blobs_.size(); }

  /// Total payload bytes (for the space ablation bench).
  size_t MemoryBytes() const { return bytes_; }

 private:
  std::unordered_map<ObjectId, std::string> blobs_;
  size_t bytes_ = 0;
};

}  // namespace xk::storage

#endif  // XK_STORAGE_BLOB_STORE_H_
