// Copyright (c) the XKeyword authors.
//
// Secondary indexes over tables. Two physical forms, mirroring what the paper
// tunes on Oracle (Section 5.1):
//  * HashIndex      — single-attribute equality index ("single attribute
//                     indices ... on every attribute").
//  * CompositeIndex — multi-attribute sorted index; with the key being a
//                     prefix of the table's column order this doubles as the
//                     clustering order of an index-organized table
//                     ("clustering is performed using index-organized tables").

#ifndef XK_STORAGE_INDEX_H_
#define XK_STORAGE_INDEX_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/tuple.h"

namespace xk::storage {

class Table;

/// Row positions within a table.
using RowId = uint32_t;

/// Single-column hash index: column value -> row ids.
class HashIndex {
 public:
  HashIndex(const Table& table, int column);

  int column() const { return column_; }

  /// Rows whose indexed column equals `key`, in row order (empty span if
  /// none). Never allocates — a missing key returns a default span, so probe
  /// loops can call this per row without touching the heap.
  std::span<const RowId> Lookup(ObjectId key) const;

  size_t distinct_keys() const { return buckets_.size(); }
  /// Approximate heap footprint, for the space ablation bench.
  size_t MemoryBytes() const;

 private:
  int column_;
  std::unordered_map<ObjectId, std::vector<RowId>> buckets_;
};

/// Split-block-free Bloom filter over ObjectIds. Used by the executor's
/// semi-join pruning: one filter per (join step, probed column) summarizes the
/// column values that survive the step's local keyword/constant filters, so
/// probes carrying a value that cannot match are rejected without touching the
/// table. False positives cost a wasted probe, never a wrong result.
class BloomFilter {
 public:
  /// Sizes the bit array for `expected_keys` at ~`bits_per_key` (rounded up to
  /// a power of two), giving ~1% false positives at the default 10 bits/key.
  explicit BloomFilter(size_t expected_keys, double bits_per_key = 10.0);

  void Add(ObjectId key);
  /// False means "definitely absent"; true means "probably present".
  bool MayContain(ObjectId key) const;

  /// Block probe: compacts `sel` in place (ascending order preserved) to the
  /// entries whose `values[sel[i]]` may be present, returning the survivor
  /// count. The first hash runs as a batched SplitMix kernel over the whole
  /// selection before any bit is tested; equivalent to calling MayContain per
  /// entry. `force_scalar` pins the hash batch to the scalar kernel.
  size_t MayContainBlock(const ObjectId* values, uint32_t* sel, size_t n,
                         bool force_scalar = false) const;

  size_t num_keys_added() const { return num_keys_added_; }
  size_t MemoryBytes() const { return words_.capacity() * sizeof(uint64_t); }

 private:
  std::vector<uint64_t> words_;
  uint64_t bit_mask_;  // total bits - 1 (bit count is a power of two)
  int num_hashes_;
  size_t num_keys_added_ = 0;
};

/// Multi-attribute sorted index: rows ordered by the key columns; supports
/// range lookup by any key prefix. Lookups return a contiguous run of entries,
/// which is what makes clustered access cheaper than hash probing.
class CompositeIndex {
 public:
  CompositeIndex(const Table& table, std::vector<int> key_columns);

  const std::vector<int>& key_columns() const { return key_columns_; }

  /// Row ids whose key columns start with `prefix` (prefix.size() <= arity of
  /// the key). The returned span is a contiguous, key-ordered run.
  std::span<const RowId> LookupPrefix(TupleView prefix) const;

  size_t MemoryBytes() const;

 private:
  const Table& table_;
  std::vector<int> key_columns_;
  std::vector<RowId> order_;  // row ids sorted by key columns

  // Compares row `row` against `prefix` on the first prefix.size() key cols.
  int ComparePrefix(RowId row, TupleView prefix) const;
};

}  // namespace xk::storage

#endif  // XK_STORAGE_INDEX_H_
