// Copyright (c) the XKeyword authors.
//
// Statistics of Section 4, item 2: "(a) the number s(S) of nodes of type S in
// the XML graph and (b) the average number c(S -> S') of children of type S'
// for a random node of type S." The optimizer's cost model (src/opt) reads
// these to order join loops and to price fragment tilings.
//
// Keys are opaque ints (schema node ids / TSS edge ids) so the storage layer
// stays independent of the schema layer above it.

#ifndef XK_STORAGE_STATISTICS_H_
#define XK_STORAGE_STATISTICS_H_

#include <cstddef>
#include <unordered_map>

#include "storage/table.h"

namespace xk::storage {

/// Registry of data-distribution statistics gathered at load time.
class Statistics {
 public:
  Statistics() = default;

  /// Records s(S) for schema node (or TSS) `type_id`.
  void SetNodeCount(int type_id, size_t count) { node_counts_[type_id] = count; }
  /// s(S); 0 when unknown.
  size_t NodeCount(int type_id) const;

  /// Records c(edge) = average fanout along edge `edge_id` in its forward
  /// direction.
  void SetAvgFanout(int edge_id, double fanout) { fanouts_[edge_id] = fanout; }
  /// Average forward fanout; 1.0 when unknown (neutral estimate).
  double AvgFanout(int edge_id) const;

  /// Records the reverse-direction fanout of an edge.
  void SetAvgReverseFanout(int edge_id, double fanout) {
    reverse_fanouts_[edge_id] = fanout;
  }
  double AvgReverseFanout(int edge_id) const;

  /// Estimated rows matching an equality probe on `column` of `table`:
  /// rows / distinct(column). Returns rows when the table is empty-safe.
  static double EstimateProbeRows(const Table& table, int column);

 private:
  std::unordered_map<int, size_t> node_counts_;
  std::unordered_map<int, double> fanouts_;
  std::unordered_map<int, double> reverse_fanouts_;
};

}  // namespace xk::storage

#endif  // XK_STORAGE_STATISTICS_H_
