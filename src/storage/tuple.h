// Copyright (c) the XKeyword authors.
//
// Tuples of the relational substrate: fixed-arity sequences of ObjectIds.

#ifndef XK_STORAGE_TUPLE_H_
#define XK_STORAGE_TUPLE_H_

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "storage/value.h"

namespace xk::storage {

/// A row; arity is fixed by the owning table.
using Tuple = std::vector<ObjectId>;

/// Read-only view of a row stored inside a table's flat row storage.
using TupleView = std::span<const ObjectId>;

/// FNV-1a over a sequence of ids; used for hash indexes and join tables.
inline size_t HashIds(TupleView ids) {
  uint64_t h = 1469598103934665603ULL;
  for (ObjectId v : ids) {
    h ^= static_cast<uint64_t>(v);
    h *= 1099511628211ULL;
  }
  return static_cast<size_t>(h);
}

struct TupleHash {
  size_t operator()(const Tuple& t) const { return HashIds(t); }
};

}  // namespace xk::storage

#endif  // XK_STORAGE_TUPLE_H_
