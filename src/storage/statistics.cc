#include "storage/statistics.h"

namespace xk::storage {

size_t Statistics::NodeCount(int type_id) const {
  auto it = node_counts_.find(type_id);
  return it == node_counts_.end() ? 0 : it->second;
}

double Statistics::AvgFanout(int edge_id) const {
  auto it = fanouts_.find(edge_id);
  return it == fanouts_.end() ? 1.0 : it->second;
}

double Statistics::AvgReverseFanout(int edge_id) const {
  auto it = reverse_fanouts_.find(edge_id);
  return it == reverse_fanouts_.end() ? 1.0 : it->second;
}

double Statistics::EstimateProbeRows(const Table& table, int column) {
  if (table.NumRows() == 0) return 0.0;
  size_t distinct = table.DistinctCount(column);
  if (distinct == 0) return 0.0;
  return static_cast<double>(table.NumRows()) / static_cast<double>(distinct);
}

}  // namespace xk::storage
