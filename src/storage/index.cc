#include "storage/index.h"

#include <algorithm>

#include "common/logging.h"
#include "storage/table.h"

namespace xk::storage {

HashIndex::HashIndex(const Table& table, int column) : column_(column) {
  buckets_.reserve(table.NumRows());
  for (size_t r = 0; r < table.NumRows(); ++r) {
    buckets_[table.At(static_cast<RowId>(r), column)].push_back(static_cast<RowId>(r));
  }
}

const std::vector<RowId>& HashIndex::Lookup(ObjectId key) const {
  auto it = buckets_.find(key);
  return it == buckets_.end() ? empty_ : it->second;
}

size_t HashIndex::MemoryBytes() const {
  size_t bytes = buckets_.size() * (sizeof(ObjectId) + sizeof(std::vector<RowId>));
  for (const auto& [key, rows] : buckets_) {
    (void)key;
    bytes += rows.capacity() * sizeof(RowId);
  }
  return bytes;
}

CompositeIndex::CompositeIndex(const Table& table, std::vector<int> key_columns)
    : table_(table), key_columns_(std::move(key_columns)) {
  XK_CHECK(!key_columns_.empty());
  order_.resize(table.NumRows());
  for (size_t i = 0; i < order_.size(); ++i) order_[i] = static_cast<RowId>(i);
  std::stable_sort(order_.begin(), order_.end(), [&](RowId a, RowId b) {
    for (int c : key_columns_) {
      ObjectId va = table_.At(a, c);
      ObjectId vb = table_.At(b, c);
      if (va != vb) return va < vb;
    }
    return false;
  });
}

int CompositeIndex::ComparePrefix(RowId row, TupleView prefix) const {
  for (size_t i = 0; i < prefix.size(); ++i) {
    ObjectId v = table_.At(row, key_columns_[i]);
    if (v < prefix[i]) return -1;
    if (v > prefix[i]) return 1;
  }
  return 0;
}

std::span<const RowId> CompositeIndex::LookupPrefix(TupleView prefix) const {
  XK_CHECK_LE(prefix.size(), key_columns_.size());
  auto lower = std::partition_point(order_.begin(), order_.end(), [&](RowId r) {
    return ComparePrefix(r, prefix) < 0;
  });
  auto upper = std::partition_point(lower, order_.end(), [&](RowId r) {
    return ComparePrefix(r, prefix) == 0;
  });
  return std::span<const RowId>(order_.data() + (lower - order_.begin()),
                                static_cast<size_t>(upper - lower));
}

size_t CompositeIndex::MemoryBytes() const {
  return order_.capacity() * sizeof(RowId);
}

}  // namespace xk::storage
