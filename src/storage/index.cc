#include "storage/index.h"

#include <algorithm>

#include "common/logging.h"
#include "common/simd.h"
#include "storage/table.h"

namespace xk::storage {

HashIndex::HashIndex(const Table& table, int column) : column_(column) {
  // Two-pass build: count rows per key first, then reserve every bucket
  // vector to its exact final size before filling — no reallocation churn
  // (and no over-allocation) while appending row ids.
  std::unordered_map<ObjectId, RowId> counts;
  counts.reserve(table.NumRows());
  for (size_t r = 0; r < table.NumRows(); ++r) {
    ++counts[table.At(static_cast<RowId>(r), column)];
  }
  buckets_.reserve(counts.size());
  for (const auto& [key, n] : counts) {
    buckets_[key].reserve(n);
  }
  for (size_t r = 0; r < table.NumRows(); ++r) {
    buckets_[table.At(static_cast<RowId>(r), column)].push_back(static_cast<RowId>(r));
  }
}

std::span<const RowId> HashIndex::Lookup(ObjectId key) const {
  auto it = buckets_.find(key);
  if (it == buckets_.end()) return {};
  return std::span<const RowId>(it->second);
}

size_t HashIndex::MemoryBytes() const {
  size_t bytes = buckets_.size() * (sizeof(ObjectId) + sizeof(std::vector<RowId>));
  for (const auto& [key, rows] : buckets_) {
    (void)key;
    bytes += rows.capacity() * sizeof(RowId);
  }
  return bytes;
}

namespace {

/// SplitMix64 finalizer: a cheap, well-distributed 64-bit mix. Delegates to
/// the shared kernel so the batched probe below stays bit-identical.
uint64_t MixId(ObjectId key) { return simd::BloomMix(key); }

}  // namespace

BloomFilter::BloomFilter(size_t expected_keys, double bits_per_key) {
  XK_CHECK_GT(bits_per_key, 0.0);
  size_t want_bits =
      static_cast<size_t>(static_cast<double>(std::max<size_t>(expected_keys, 1)) *
                          bits_per_key);
  size_t bits = 64;
  while (bits < want_bits) bits <<= 1;
  words_.assign(bits / 64, 0);
  bit_mask_ = bits - 1;
  // Optimal k = ln 2 * bits/key; clamp to a practical range.
  num_hashes_ = std::clamp(static_cast<int>(bits_per_key * 0.69), 1, 8);
}

void BloomFilter::Add(ObjectId key) {
  uint64_t h1 = MixId(key);
  uint64_t h2 = (h1 >> 17) | (h1 << 47);  // independent-enough second hash
  for (int i = 0; i < num_hashes_; ++i) {
    uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) & bit_mask_;
    words_[bit >> 6] |= uint64_t{1} << (bit & 63);
  }
  ++num_keys_added_;
}

bool BloomFilter::MayContain(ObjectId key) const {
  uint64_t h1 = MixId(key);
  uint64_t h2 = (h1 >> 17) | (h1 << 47);
  for (int i = 0; i < num_hashes_; ++i) {
    uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) & bit_mask_;
    if ((words_[bit >> 6] & (uint64_t{1} << (bit & 63))) == 0) return false;
  }
  return true;
}

size_t BloomFilter::MayContainBlock(const ObjectId* values, uint32_t* sel,
                                    size_t n, bool force_scalar) const {
  const simd::IsaLevel level = simd::KernelLevel(force_scalar);
  constexpr size_t kChunk = 64;
  ObjectId gathered[kChunk];
  uint64_t hashes[kChunk];
  size_t out = 0;
  for (size_t base = 0; base < n; base += kChunk) {
    const size_t cnt = std::min(kChunk, n - base);
    for (size_t i = 0; i < cnt; ++i) gathered[i] = values[sel[base + i]];
    simd::BloomMixBatch(gathered, cnt, hashes, level);
    if (level != simd::IsaLevel::kScalar) {
      // Overlap the whole chunk's first-probe misses before any bit test;
      // the scalar reference arm stays the plain per-key sequence.
      for (size_t i = 0; i < cnt; ++i) {
        simd::PrefetchRead(words_.data() + ((hashes[i] & bit_mask_) >> 6));
      }
    }
    for (size_t i = 0; i < cnt; ++i) {
      const uint64_t h1 = hashes[i];
      const uint64_t h2 = (h1 >> 17) | (h1 << 47);
      bool may = true;
      for (int k = 0; k < num_hashes_; ++k) {
        const uint64_t bit = (h1 + static_cast<uint64_t>(k) * h2) & bit_mask_;
        if ((words_[bit >> 6] & (uint64_t{1} << (bit & 63))) == 0) {
          may = false;
          break;
        }
      }
      sel[out] = sel[base + i];
      out += may ? 1 : 0;
    }
  }
  return out;
}

CompositeIndex::CompositeIndex(const Table& table, std::vector<int> key_columns)
    : table_(table), key_columns_(std::move(key_columns)) {
  XK_CHECK(!key_columns_.empty());
  order_.resize(table.NumRows());
  for (size_t i = 0; i < order_.size(); ++i) order_[i] = static_cast<RowId>(i);
  std::stable_sort(order_.begin(), order_.end(), [&](RowId a, RowId b) {
    for (int c : key_columns_) {
      ObjectId va = table_.At(a, c);
      ObjectId vb = table_.At(b, c);
      if (va != vb) return va < vb;
    }
    return false;
  });
}

int CompositeIndex::ComparePrefix(RowId row, TupleView prefix) const {
  for (size_t i = 0; i < prefix.size(); ++i) {
    ObjectId v = table_.At(row, key_columns_[i]);
    if (v < prefix[i]) return -1;
    if (v > prefix[i]) return 1;
  }
  return 0;
}

std::span<const RowId> CompositeIndex::LookupPrefix(TupleView prefix) const {
  XK_CHECK_LE(prefix.size(), key_columns_.size());
  auto lower = std::partition_point(order_.begin(), order_.end(), [&](RowId r) {
    return ComparePrefix(r, prefix) < 0;
  });
  auto upper = std::partition_point(lower, order_.end(), [&](RowId r) {
    return ComparePrefix(r, prefix) == 0;
  });
  return std::span<const RowId>(order_.data() + (lower - order_.begin()),
                                static_cast<size_t>(upper - lower));
}

size_t CompositeIndex::MemoryBytes() const {
  return order_.capacity() * sizeof(RowId);
}

}  // namespace xk::storage
