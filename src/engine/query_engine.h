// Copyright (c) the XKeyword authors.
//
// QueryEngine: the abstract data-plane contract the serving layer programs
// against. Both the single-instance XKeyword facade and the sharded
// scatter-gather engine (ShardedEngine) implement it, so QueryService can
// front either without caring how many shards answer a query.

#ifndef XK_ENGINE_QUERY_ENGINE_H_
#define XK_ENGINE_QUERY_ENGINE_H_

#include <cstdint>

#include "common/cancel_token.h"
#include "common/result.h"
#include "engine/query_request.h"
#include "engine/result_sink.h"

namespace xk::engine {

/// A synchronous keyword-query data plane. Implementations must be safe to
/// call from many threads concurrently once loading is done.
class QueryEngine {
 public:
  virtual ~QueryEngine() = default;

  /// Serves one request. Semantics follow XKeyword::Run: a tripped
  /// deadline/cancel yields an OK Result whose response carries
  /// kDeadlineExceeded/kCancelled plus partial results; hard failures yield
  /// an error Result.
  ///
  /// `sink` (borrowed, may be null) receives finalized result prefixes while
  /// the query runs (see engine/result_sink.h). Streaming is best-effort:
  /// engines or modes that cannot prove finalized prefixes never call it and
  /// the whole answer arrives in the returned response either way — the
  /// response is identical with and without a sink.
  virtual Result<QueryResponse> Run(const QueryRequest& request,
                                    CancelToken* token = nullptr,
                                    ResultSink* sink = nullptr) const = 0;

  /// Monotonic generation of the queryable state (see
  /// XKeyword::data_generation); the serving layer uses it to invalidate
  /// cached answers when the data changes.
  virtual uint64_t data_generation() const = 0;
};

}  // namespace xk::engine

#endif  // XK_ENGINE_QUERY_ENGINE_H_
