// Copyright (c) the XKeyword authors.
//
// The naive execution algorithm used by DISCOVER [13] and DBXplorer [3]
// (Section 6/7 baseline): plain nested-loops join per candidate network with
// no caching of partial results — the same inner queries are re-sent for
// every outer binding. Figure 16(a) measures the optimized algorithm's
// speedup over this.

#ifndef XK_ENGINE_NAIVE_EXECUTOR_H_
#define XK_ENGINE_NAIVE_EXECUTOR_H_

#include "engine/query_context.h"
#include "present/mtton.h"

namespace xk::engine {

class NaiveExecutor {
 public:
  NaiveExecutor() = default;

  /// Same contract as TopKExecutor::Run (anytime budgeting and the coverage
  /// report included), single-threaded, cacheless.
  Result<std::vector<present::Mtton>> Run(const PreparedQuery& query,
                                          const QueryOptions& options,
                                          ExecutionStats* stats = nullptr,
                                          Coverage* coverage = nullptr);
};

}  // namespace xk::engine

#endif  // XK_ENGINE_NAIVE_EXECUTOR_H_
