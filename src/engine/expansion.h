// Copyright (c) the XKeyword authors.
//
// On-demand expansion of presentation graphs (Figure 13): when the user
// clicks a node of role N, find the target objects of that role that can be
// connected to all keywords "through PG(C) with l extra edges", preferring
// minimal extensions. Runs against connection relations — the minimal
// decomposition's per-edge relations make the adjacent-first probing cheap,
// which is exactly the effect Figure 16(b) measures across decompositions.

#ifndef XK_ENGINE_EXPANSION_H_
#define XK_ENGINE_EXPANSION_H_

#include <unordered_map>

#include "decomp/decomposition.h"
#include "engine/query_context.h"
#include "present/presentation_graph.h"
#include "storage/catalog.h"

namespace xk::engine {

class ExpansionEngine {
 public:
  /// Probes the relations of `d` inside `catalog`. Every TSS edge must be
  /// covered by some fragment of `d` (Lemma 5.1 guarantees it for real
  /// decompositions).
  ExpansionEngine(const schema::TssGraph* tss, const decomp::Decomposition* d,
                  const storage::Catalog* catalog);

  struct Stats {
    exec::ProbeStats probes;
    uint64_t candidates = 0;
    uint64_t expanded = 0;
  };

  /// Figure-13 expansion: for occurrence `occ` of `ctssn`, returns one
  /// minimal-extension MTTON per connectable candidate object (existing
  /// display nodes are preferred as connection points). The caller registers
  /// the returned MTTONs with the presentation graph.
  Result<std::vector<present::Mtton>> ExpandNode(
      const cn::Ctssn& ctssn, const opt::NodeFilters& filters, int ctssn_index,
      int occ, const present::PresentationGraph& pg, Stats* stats) const;

  /// Objects adjacent to `o` across TSS edge `e` (in the edge direction when
  /// `forward`), probed through the narrowest covering relation. Exposed for
  /// tests.
  std::vector<storage::ObjectId> Neighbors(schema::TssEdgeId e, bool forward,
                                           storage::ObjectId o,
                                           exec::ProbeStats* probes) const;

  /// One anchored relation probe of the completion search: `table`'s column
  /// `i` binds CTSSN occurrence `col_to_occ[i]`.
  struct Piece {
    const storage::Table* table;
    std::vector<int> col_to_occ;
  };

  /// Greedy anchored tiling of the network's edges by the decomposition's
  /// relations, starting from the clicked occurrence; pieces that bind
  /// keyword-filtered occurrences come first (selective pruning). Minimal
  /// decompositions yield per-edge probes; inlined ones bind several
  /// occurrences per probe against wider relations — exactly the trade-off
  /// Figure 16(b) measures.
  std::vector<Piece> PlanPieces(const cn::Ctssn& ctssn, int occ,
                                const opt::NodeFilters& filters) const;

 private:
  struct EdgeAccess {
    const storage::Table* table;
    int from_col;
    int to_col;
  };

  const schema::TssGraph* tss_;
  const decomp::Decomposition* decomposition_;
  exec::ExecOptions exec_options_;
  std::vector<const storage::Table*> fragment_tables_;
  std::unordered_map<schema::TssEdgeId, EdgeAccess> edge_access_;
};

}  // namespace xk::engine

#endif  // XK_ENGINE_EXPANSION_H_
