// Copyright (c) the XKeyword authors.
//
// Shared query-stage types: options, prepared queries, execution statistics.

#ifndef XK_ENGINE_QUERY_CONTEXT_H_
#define XK_ENGINE_QUERY_CONTEXT_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "cn/candidate_network.h"
#include "cn/ctssn.h"
#include "common/cancel_token.h"
#include "common/simd.h"
#include "exec/operators.h"
#include "opt/optimizer.h"

namespace xk::engine {

/// Block-kernel ISA dispatch policy (common/simd.h). The SIMD variants are
/// bit-identical to the scalar references, so this is a debugging and
/// benchmarking knob, never a correctness one.
enum class KernelDispatch : uint8_t {
  /// Best ISA the build and the CPU support (scalar when the environment
  /// forces it via XK_FORCE_SCALAR_KERNELS=1).
  kAuto = 0,
  /// Pin every kernel to the scalar reference.
  kForceScalar = 1,
  /// Like kAuto, but Validate() rejects the query when dispatch would land
  /// on scalar — for benches that must not silently measure the wrong arm.
  kRequireSimd = 2,
};

/// Join strategy for full-result (QueryMode::kAll) runs.
enum class FullMode {
  /// Hash joins on indexed decompositions, INLJ otherwise — mirrors what the
  /// backing DBMS's optimizer would pick.
  kAuto,
  kIndexNestedLoop,
  kHashJoin,
};

/// Knobs of one keyword query.
struct QueryOptions {
  /// Maximum MTNN size Z (Section 3.1: "the user specifies the maximum size
  /// Z of an MTNN that is of interest").
  int max_size_z = 6;

  /// When > 0, executors skip networks whose CTSSN has more than this many
  /// edges — the "maximum CTSSN size" axis of Figures 15(b) and 16(a).
  int max_network_size = 0;

  /// Per-network result bound K for the top-k executor (Section 7 measures
  /// "the top-k results for each candidate network").
  size_t per_network_k = 10;
  /// Global result bound across all networks (0 = unlimited); the
  /// search-engine presentation stops once K results exist in total.
  size_t global_k = 0;

  /// Partial-result caching (the optimized execution algorithm of Section 6).
  bool enable_cache = true;
  /// Entries of the fixed-size cache; on overflow queries are re-sent.
  size_t cache_capacity = 1 << 16;

  /// Threads of the per-CN thread pool.
  int num_threads = 4;

  /// Morsel-driven intra-plan parallelism: when > 1, the top-k executor runs
  /// plans one at a time (smallest network first) and splits each plan's
  /// step-0 driver matches into morsels fanned out over a work-stealing pool
  /// of this many threads. Results are byte-identical to num_threads = 1
  /// (morsels merge in driver order; a completed-prefix watermark implements
  /// the per_network_k / global_k early stop). Use for queries dominated by
  /// one large candidate network.
  int intra_plan_threads = 1;
  /// Step-0 driver rows per morsel.
  size_t morsel_size = 1024;

  /// Semi-join keyword pruning: intersect each step's keyword filter sets and
  /// summarize the join columns later steps probe into Bloom filters, so
  /// probes bound to a value that cannot match skip the table entirely
  /// (counted in ProbeStats::bloom_skips). Never changes results.
  bool enable_semijoin_pruning = true;

  /// Plan-DAG shared-subplan memoization: join prefixes common to several
  /// candidate networks (equal optimizer prefix signatures) execute once per
  /// query; the materialized prefix rows are replayed by every consuming
  /// plan. Thread-safe (leader/follower) under both parallelism axes. Never
  /// changes results: replay order equals the serial nested-loop order.
  bool enable_subplan_reuse = true;
  /// Byte budget of the per-query subplan materialization cache; productions
  /// that would exceed it abort and their consumers fall back to direct
  /// execution. Fully-released entries are evicted first under pressure.
  size_t subplan_cache_budget_bytes = 64ull << 20;

  /// Cost-ordered candidate-network scheduling: inside each network-size
  /// class, run plans cheapest first by the cost model's output-cardinality
  /// estimate (shared-subplan producers are thereby hoisted before their
  /// consumers), so a global_k bound is reached earlier. Off = legacy order
  /// (size class, then plan index).
  bool cost_ordered_scheduling = true;

  /// Vectorized batch execution: probes stream candidates through RowBlocks
  /// and evaluate predicates as selection-vector kernels, with cancellation
  /// polled once per block; hash joins build flat open-addressing tables.
  /// Off = the row-at-a-time legacy path. Results are byte-identical either
  /// way (kept as a knob so benches can A/B the two engines).
  bool vectorized = true;

  /// Block-kernel ISA dispatch: kAuto picks the best supported level,
  /// kForceScalar pins the scalar references (also forced by the
  /// XK_FORCE_SCALAR_KERNELS=1 environment escape hatch), kRequireSimd makes
  /// Validate() reject queries that would dispatch to scalar. The level that
  /// actually served the query is reported in ExecutionStats::simd_isa.
  KernelDispatch kernel_dispatch = KernelDispatch::kAuto;

  /// Sharded data plane (engine::ShardedEngine only; the single-instance
  /// XKeyword facade ignores these). Number of shard groups a query scatters
  /// to: 1 = the degenerate single-shard path (byte-identical to XKeyword by
  /// construction), N > 1 groups the engine's loaded slices into at most N
  /// contiguous target-object ID ranges, each evaluated by its own per-shard
  /// executor. Results are byte-identical to num_shards = 1 for every value.
  int num_shards = 1;
  /// Threads of the scatter pool (0 = one thread per shard group).
  int shard_parallelism = 0;
  /// Push the gather stage's global k-th-position watermark back down to the
  /// shards as a monotonically tightening bound for early termination. Never
  /// changes results; kept as a knob so benches can A/B the savings.
  bool shard_bound_pushdown = true;

  /// Full-result mode (QueryMode::kAll) only: join strategy.
  FullMode full_mode = FullMode::kAuto;
  /// Full-result mode only: reuse keyword-filtered scans across networks
  /// (Section 4's common-subexpression reuse). The kAll prefix-intermediate
  /// memo additionally requires this (it stores indexes into the shared
  /// scans) on top of enable_subplan_reuse. Never changes results.
  bool enable_scan_reuse = true;

  /// Anytime execution: budget whole candidate networks against the
  /// remaining deadline (or against `anytime_cost_budget`) instead of letting
  /// a tripped deadline truncate mid-CN. The executor runs the cost-ordered
  /// schedule, skips CNs the budget cannot afford, and the response reports a
  /// structured quality bound (QueryResponse::coverage). With no deadline and
  /// no cost budget this knob is inert: results are byte-identical to the
  /// pre-anytime engine.
  bool enable_anytime = true;
  /// Deterministic anytime budget in cost-model units (the optimizer's
  /// estimated_cost): every admitted plan charges its estimate; a plan whose
  /// charge would exceed the budget is skipped whole (the first plan is
  /// always admitted). 0 = disabled. Unlike the wall-clock deadline this is
  /// reproducible, which the soundness/monotonicity tests rely on.
  double anytime_cost_budget = 0;
  /// Safety factor on the wall-clock admission estimate: a plan is admitted
  /// only if its predicted time, scaled by this factor, fits the remaining
  /// deadline. Larger = more conservative (more skips, fewer mid-plan
  /// deadline trips).
  double anytime_headroom = 1.25;
  /// Floor of the per-plan scan-row allowance derived from the remaining
  /// deadline in wall-clock anytime mode, so calibration noise can never
  /// starve a plan outright.
  uint64_t anytime_min_plan_rows = 4096;

  /// Cooperative cancellation/deadline token (not owned, may be null). The
  /// executors poll it at plan, morsel, and probe granularity and return
  /// whatever results were complete when it tripped. Installed by
  /// XKeyword::Run / the serving layer; leave null for unbounded queries.
  const CancelToken* cancel = nullptr;

  /// Rejects option combinations that would silently misbehave (zero-size
  /// morsels, negative thread counts, a zero per-network bound). Called by
  /// XKeyword::Prepare before any work happens.
  Status Validate() const {
    if (per_network_k == 0) {
      return Status::InvalidArgument("per_network_k must be >= 1");
    }
    if (morsel_size == 0) {
      return Status::InvalidArgument("morsel_size must be >= 1");
    }
    if (num_threads < 0) {
      return Status::InvalidArgument("num_threads must be >= 0");
    }
    if (intra_plan_threads < 0) {
      return Status::InvalidArgument("intra_plan_threads must be >= 0");
    }
    if (enable_subplan_reuse && subplan_cache_budget_bytes == 0) {
      return Status::InvalidArgument(
          "enable_subplan_reuse requires subplan_cache_budget_bytes > 0");
    }
    if (num_shards < 1) {
      return Status::InvalidArgument("num_shards must be >= 1");
    }
    if (shard_parallelism < 0) {
      return Status::InvalidArgument("shard_parallelism must be >= 0");
    }
    if (anytime_cost_budget < 0) {
      return Status::InvalidArgument("anytime_cost_budget must be >= 0");
    }
    if (anytime_headroom < 1.0) {
      return Status::InvalidArgument("anytime_headroom must be >= 1");
    }
    if (anytime_min_plan_rows == 0) {
      return Status::InvalidArgument("anytime_min_plan_rows must be >= 1");
    }
    if (kernel_dispatch == KernelDispatch::kRequireSimd &&
        simd::DetectedIsaLevel() == simd::IsaLevel::kScalar) {
      return Status::InvalidArgument(
          "kernel_dispatch = kRequireSimd, but dispatch would be scalar "
          "(build without SIMD, unsupported CPU, or XK_FORCE_SCALAR_KERNELS)");
    }
    return Status::OK();
  }
};

/// Structured quality bound of one executed query: how much of the candidate-
/// network space the answer covers. Sound by construction — the executors run
/// the plan-DAG schedule, which is nondecreasing in CN size class, so up to
/// the first deviation (a budget skip or a mid-plan interruption) execution is
/// byte-identical to an unbounded run; every class at or below
/// `exhausted_class` lies entirely inside that identical prefix.
struct Coverage {
  /// Candidate networks the executor ran (a per-network-k or global-k emit
  /// stop counts as complete: the answer needs nothing more from them; a plan
  /// stopped mid-flight also counts here, with `interrupted` set).
  uint32_t cns_executed = 0;
  /// Active candidate networks that never ran: skipped whole by the anytime
  /// budget, or never reached after a deadline/cancel stop.
  uint32_t cns_skipped = 0;
  /// Largest CN size class C such that every active plan of class <= C ran to
  /// completion; the result prefix with score <= C provably matches the
  /// unbounded run. -1 = no class fully exhausted.
  int exhausted_class = -1;
  /// True iff some plan stopped mid-execution (deadline, cancellation, or a
  /// row-budget trip) — its partial results may be present but incomplete.
  bool interrupted = false;

  bool complete() const { return cns_skipped == 0 && !interrupted; }
};

/// Aggregated execution counters, reported by the benches next to wall time.
struct ExecutionStats {
  exec::ProbeStats probes;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t results = 0;
  uint64_t reuse_hits = 0;
  uint64_t reuse_misses = 0;
  /// Rows streamed while building semi-join Bloom filters (one filtered scan
  /// per distinct step signature; kept apart from probe-time rows_scanned).
  uint64_t bloom_build_rows = 0;
  /// Plan-DAG shared-subplan cache (opt::SubplanCache): consumers served from
  /// a materialized prefix / leader productions / high-water cached bytes /
  /// prefix rows consumers replayed instead of recomputing.
  uint64_t subplan_hits = 0;
  uint64_t subplan_misses = 0;
  uint64_t subplan_bytes = 0;
  uint64_t dedup_saved_rows = 0;
  /// Sharded scatter-gather (engine::ShardedEngine): shard tasks fanned out /
  /// step-0 driver rows skipped because the gather watermark proved they
  /// cannot reach the top-k / shard loops that terminated before exhausting
  /// their driver slice (bound reached, local cap, or cancellation).
  uint64_t shard_fanout = 0;
  uint64_t shard_bound_prunes = 0;
  uint64_t shard_early_stops = 0;
  /// ISA level the block kernels dispatched to (simd::IsaLevel as an int;
  /// stringify with simd::IsaLevelToString). Merges take the max so a
  /// scatter-gather response reports the level its shards actually ran.
  uint32_t simd_isa = 0;

  void Add(const ExecutionStats& o) {
    probes.Add(o.probes);
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    results += o.results;
    reuse_hits += o.reuse_hits;
    reuse_misses += o.reuse_misses;
    bloom_build_rows += o.bloom_build_rows;
    subplan_hits += o.subplan_hits;
    subplan_misses += o.subplan_misses;
    subplan_bytes = std::max(subplan_bytes, o.subplan_bytes);
    dedup_saved_rows += o.dedup_saved_rows;
    shard_fanout += o.shard_fanout;
    shard_bound_prunes += o.shard_bound_prunes;
    shard_early_stops += o.shard_early_stops;
    simd_isa = std::max(simd_isa, o.simd_isa);
  }
};

/// Everything derived from a keyword list before execution: candidate
/// networks, their CTSSN reductions, keyword filter sets, and plans.
/// Filter sets live in a std::map so the IdSet pointers inside plans stay
/// valid when the struct moves.
struct PreparedQuery {
  std::vector<std::string> keywords;
  std::vector<cn::CandidateNetwork> networks;
  std::vector<cn::Ctssn> ctssns;              // parallel to networks
  std::map<std::pair<int, schema::SchemaNodeId>, storage::IdSet> filter_sets;
  std::vector<opt::NodeFilters> node_filters;  // parallel to ctssns
  std::vector<opt::CtssnPlan> plans;           // parallel to ctssns
  exec::ExecOptions exec_options;
};

}  // namespace xk::engine

#endif  // XK_ENGINE_QUERY_CONTEXT_H_
