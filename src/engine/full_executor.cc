#include "engine/full_executor.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/logging.h"
#include "engine/progress_budget.h"
#include "engine/topk_executor.h"
#include "exec/join_hash_table.h"
#include "exec/plan.h"
#include "exec/row_block.h"

namespace xk::engine {

namespace {

/// Occurrence groups of one segment with >= 2 members.
std::vector<std::vector<int>> SameSegmentGroups(const cn::Ctssn& ctssn) {
  std::map<schema::TssId, std::vector<int>> by_segment;
  for (int v = 0; v < ctssn.num_nodes(); ++v) {
    by_segment[ctssn.tree.nodes[static_cast<size_t>(v)]].push_back(v);
  }
  std::vector<std::vector<int>> groups;
  for (auto& [seg, occs] : by_segment) {
    (void)seg;
    if (occs.size() >= 2) groups.push_back(std::move(occs));
  }
  return groups;
}

bool DistinctAcross(const std::vector<std::vector<int>>& groups,
                    const std::vector<storage::ObjectId>& objs) {
  for (const std::vector<int>& group : groups) {
    for (size_t a = 0; a < group.size(); ++a) {
      for (size_t b = a + 1; b < group.size(); ++b) {
        if (objs[static_cast<size_t>(group[a])] ==
            objs[static_cast<size_t>(group[b])]) {
          return false;
        }
      }
    }
  }
  return true;
}

/// Filtered scan of one step's relation (local filters only), materialized
/// through the reuse cache.
const std::vector<storage::Tuple>* FilteredScan(
    const exec::JoinStep& step, const std::string& signature,
    opt::MaterializedViewCache* cache, bool enable_reuse, ExecutionStats* stats) {
  if (enable_reuse) {
    const std::vector<storage::Tuple>* hit = cache->Get(signature);
    if (hit != nullptr) return hit;
  }
  std::vector<storage::Tuple> rows;
  exec::ExecOptions no_index{.use_indexes = false};
  exec::ForEachMatch(*step.table, step.const_filters, step.in_filters, no_index,
                     [&](storage::RowId r) {
                       storage::TupleView row = step.table->Row(r);
                       rows.emplace_back(row.begin(), row.end());
                       return true;
                     },
                     stats != nullptr ? &stats->probes : nullptr);
  return cache->Put(signature, std::move(rows));
}

/// Query-scoped memo of hash-join prefix intermediates, keyed by the
/// optimizer's prefix signatures. An entry stores the flat per-step scan
/// indexes after joining the prefix's last step; since the filtered scans
/// themselves are shared by signature (MaterializedViewCache::Put dedups),
/// the indexes are valid for every plan carrying the signature. Only
/// prefixes at least two plans share are stored, up to a byte budget.
struct SubplanMemo {
  struct Entry {
    size_t width;
    std::vector<uint32_t> rows;
  };
  std::unordered_map<std::string, int> shared_count;
  std::unordered_map<std::string, Entry> entries;
  size_t bytes = 0;
  size_t budget = 0;
};

/// Hash-join evaluation of one plan over caller-provided filtered scans.
/// Intermediates are kept as per-step indexes into the filtered scans (one
/// uint32 per step per row), so joins shuffle indexes, not tuples. With
/// `exec_options.vectorized` the build side is a flat open-addressing
/// JoinHashTable probed in key blocks; otherwise the legacy unordered_map.
/// Either way output order is the scan-order nested enumeration.
void HashJoinOnScans(const opt::CtssnPlan& plan,
                     const std::vector<const std::vector<storage::Tuple>*>& scans,
                     SubplanMemo* memo, const exec::ExecOptions& exec_options,
                     ExecutionStats* stats,
                     const std::function<bool(const std::vector<storage::ObjectId>&)>& emit) {
  const std::vector<exec::JoinStep>& steps = plan.query.steps;
  const size_t num_steps = steps.size();
  const CancelToken* cancel = exec_options.cancel;
  auto groups = SameSegmentGroups(*plan.ctssn);

  auto stop_requested = [&] {
    return cancel != nullptr && cancel->StopRequested();
  };

  // Intermediate rows, flat: row r occupies [r*width, r*width + width).
  // Resume from the deepest memoized shared prefix when one exists (the
  // intermediate is deterministic per signature, so output is unchanged).
  size_t width = 1;
  size_t start = 1;
  std::vector<uint32_t> current;
  bool resumed = false;
  if (memo != nullptr) {
    for (size_t i = num_steps; i-- > 1;) {
      auto it = memo->entries.find(plan.prefix_signatures[i]);
      if (it == memo->entries.end()) continue;
      width = it->second.width;
      start = width;
      current = it->second.rows;
      resumed = true;
      if (stats != nullptr) {
        ++stats->subplan_hits;
        stats->dedup_saved_rows += current.size() / width;
      }
      break;
    }
  }
  if (!resumed) {
    current.resize(scans[0]->size());
    for (uint32_t r = 0; r < current.size(); ++r) current[r] = r;
  }

  const size_t block = exec_options.block_size != 0
                           ? exec_options.block_size
                           : exec::RowBlock::kDefaultCapacity;
  std::vector<storage::ObjectId> key_buf;  // block of probe keys, flat
  std::vector<uint32_t> head_buf;          // per probe key: match chain head

  for (size_t i = start; i < num_steps && !current.empty(); ++i) {
    if (stop_requested()) return;
    const exec::JoinStep& s = steps[i];
    const std::vector<storage::Tuple>& build_rows = *scans[i];
    std::vector<uint32_t> next;
    const size_t rows = current.size() / width;

    if (exec_options.vectorized) {
      // Build: flat open-addressing table keyed on the eq columns; duplicate
      // rows chain in scan order, so probe output matches the map path. Keys
      // gather flat per chunk so each chunk hashes in one batched pass.
      exec::JoinHashTable table(static_cast<int>(s.eq.size()),
                                exec_options.force_scalar_kernels);
      table.Reserve(build_rows.size());
      key_buf.resize(block * s.eq.size());
      for (size_t bbase = 0; bbase < build_rows.size(); bbase += block) {
        const size_t bn = std::min(block, build_rows.size() - bbase);
        for (size_t r = 0; r < bn; ++r) {
          for (size_t k = 0; k < s.eq.size(); ++k) {
            key_buf[r * s.eq.size() + k] =
                build_rows[bbase + r][static_cast<size_t>(s.eq[k].first)];
          }
        }
        table.InsertBatch(key_buf.data(), bn, static_cast<uint32_t>(bbase));
      }
      // Probe in blocks: gather keys, batch-lookup, walk match chains.
      head_buf.resize(block);
      for (size_t base = 0; base < rows; base += block) {
        if (stop_requested()) return;
        const size_t n = std::min(block, rows - base);
        for (size_t r = 0; r < n; ++r) {
          const uint32_t* left = &current[(base + r) * width];
          for (size_t k = 0; k < s.eq.size(); ++k) {
            const exec::ColumnRef& ref = s.eq[k].second;
            key_buf[r * s.eq.size() + k] =
                (*scans[static_cast<size_t>(ref.step)])[left[ref.step]]
                    [static_cast<size_t>(ref.column)];
          }
        }
        table.LookupBatch(key_buf.data(), n, head_buf.data());
        for (size_t r = 0; r < n; ++r) {
          const uint32_t* left = &current[(base + r) * width];
          for (uint32_t node = head_buf[r]; node != exec::JoinHashTable::kNil;
               node = table.NextMatch(node)) {
            next.insert(next.end(), left, left + width);
            next.push_back(table.MatchRow(node));
          }
        }
      }
    } else {
      // Legacy: hash build side on its eq columns via unordered_map.
      std::unordered_map<storage::Tuple, std::vector<uint32_t>, storage::TupleHash>
          build;
      build.reserve(build_rows.size());
      storage::Tuple key(s.eq.size());
      for (uint32_t r = 0; r < build_rows.size(); ++r) {
        for (size_t k = 0; k < s.eq.size(); ++k) {
          key[k] = build_rows[r][static_cast<size_t>(s.eq[k].first)];
        }
        build[key].push_back(r);
      }
      for (size_t r = 0; r < rows; ++r) {
        if ((r & 0x3FF) == 0 && stop_requested()) return;
        const uint32_t* left = &current[r * width];
        for (size_t k = 0; k < s.eq.size(); ++k) {
          const exec::ColumnRef& ref = s.eq[k].second;
          key[k] = (*scans[static_cast<size_t>(ref.step)])[left[ref.step]]
                       [static_cast<size_t>(ref.column)];
        }
        auto it = build.find(key);
        if (it == build.end()) continue;
        for (uint32_t right : it->second) {
          next.insert(next.end(), left, left + width);
          next.push_back(right);
        }
      }
    }
    current = std::move(next);
    ++width;
    // Memoize the completed prefix when other plans share it and the budget
    // allows (only complete levels reach this point: cancellation returns
    // above, so the memo never holds truncated intermediates).
    if (memo != nullptr) {
      const std::string& sig = plan.prefix_signatures[i];
      auto shared = memo->shared_count.find(sig);
      if (shared != memo->shared_count.end() && shared->second >= 2 &&
          memo->entries.find(sig) == memo->entries.end()) {
        const size_t add = current.size() * sizeof(uint32_t);
        if (memo->bytes + add <= memo->budget) {
          memo->entries.emplace(sig, SubplanMemo::Entry{width, current});
          memo->bytes += add;
          if (stats != nullptr) {
            ++stats->subplan_misses;
            stats->subplan_bytes =
                std::max(stats->subplan_bytes, static_cast<uint64_t>(memo->bytes));
          }
        }
      }
    }
  }

  std::vector<storage::ObjectId> objs(plan.node_source.size());
  const size_t rows = current.size() / width;
  for (size_t r = 0; r < rows; ++r) {
    if ((r & 0x3FF) == 0 && stop_requested()) return;
    const uint32_t* row = &current[r * width];
    for (size_t node = 0; node < plan.node_source.size(); ++node) {
      const exec::ColumnRef& src = plan.node_source[node];
      objs[node] = (*scans[static_cast<size_t>(src.step)])[row[src.step]]
                       [static_cast<size_t>(src.column)];
    }
    if (!DistinctAcross(groups, objs)) continue;
    if (stats != nullptr) ++stats->results;
    if (!emit(objs)) break;
  }
}

/// Full hash-join evaluation of one plan with reuse of filtered scans.
void RunHashJoin(const opt::CtssnPlan& plan, opt::MaterializedViewCache* cache,
                 bool enable_reuse, SubplanMemo* memo,
                 const exec::ExecOptions& exec_options, ExecutionStats* stats,
                 const std::function<bool(const std::vector<storage::ObjectId>&)>& emit) {
  // Filtered scans stay cancel-free: they are bounded by table size and feed
  // the per-query reuse cache, which must never hold truncated views.
  const size_t num_steps = plan.query.steps.size();
  std::vector<const std::vector<storage::Tuple>*> scans(num_steps);
  for (size_t i = 0; i < num_steps; ++i) {
    scans[i] = FilteredScan(plan.query.steps[i], plan.step_signatures[i], cache,
                            enable_reuse, stats);
  }
  HashJoinOnScans(plan, scans, memo, exec_options, stats, emit);
}

void RunIndexNestedLoop(
    const opt::CtssnPlan& plan, const exec::ExecOptions& exec_options,
    bool enable_semijoin_pruning, BloomCache* bloom_cache, ExecutionStats* stats,
    const std::function<bool(const std::vector<storage::ObjectId>&)>& emit) {
  auto groups = SameSegmentGroups(*plan.ctssn);
  exec::NestedLoopExecutor executor(&plan.query, exec_options);
  PlanLayout layout(&plan, enable_semijoin_pruning, bloom_cache, stats);
  executor.set_step_blooms(&layout.step_blooms());
  std::vector<storage::ObjectId> objs(plan.node_source.size());
  Status st = executor.Run([&](const std::vector<storage::TupleView>& rows) {
    for (size_t node = 0; node < plan.node_source.size(); ++node) {
      const exec::ColumnRef& src = plan.node_source[node];
      objs[node] = rows[static_cast<size_t>(src.step)][static_cast<size_t>(src.column)];
    }
    if (!DistinctAcross(groups, objs)) return true;
    if (stats != nullptr) ++stats->results;
    return emit(objs);
  });
  XK_CHECK(st.ok());
  if (stats != nullptr) stats->probes.Add(executor.stats());
}

}  // namespace

std::vector<storage::Tuple> FilteredScanTuples(const storage::Table& table,
                                               const exec::JoinStep& step,
                                               ExecutionStats* stats) {
  std::vector<storage::Tuple> rows;
  exec::ExecOptions no_index{.use_indexes = false};
  exec::ForEachMatch(table, step.const_filters, step.in_filters, no_index,
                     [&](storage::RowId r) {
                       storage::TupleView row = table.Row(r);
                       rows.emplace_back(row.begin(), row.end());
                       return true;
                     },
                     stats != nullptr ? &stats->probes : nullptr);
  return rows;
}

void RunHashJoinOnScans(
    const opt::CtssnPlan& plan,
    const std::vector<const std::vector<storage::Tuple>*>& scans,
    const exec::ExecOptions& exec_options, ExecutionStats* stats,
    const std::function<bool(const std::vector<storage::ObjectId>&)>& emit) {
  HashJoinOnScans(plan, scans, /*memo=*/nullptr, exec_options, stats, emit);
}

Result<std::vector<present::Mtton>> FullExecutor::Run(const PreparedQuery& query,
                                                      ExecutionStats* stats,
                                                      Coverage* coverage) {
  std::vector<present::Mtton> results;
  opt::MaterializedViewCache cache;
  BloomCache bloom_cache;
  BloomCache* bloom_cache_ptr =
      options_.enable_semijoin_pruning ? &bloom_cache : nullptr;

  exec::ExecOptions exec_options = query.exec_options;
  exec_options.cancel = options_.cancel;

  std::vector<bool> active(query.plans.size(), false);
  for (size_t p = 0; p < query.plans.size(); ++p) {
    active[p] = options_.max_network_size <= 0 ||
                query.ctssns[p].tree.size() <=
                    static_cast<size_t>(options_.max_network_size);
  }
  // Outcome ledger only: kAll is never budgeted (its contract is the complete
  // list), but a deadline/cancel trip still yields an honest coverage report.
  QueryOptions ledger_options = options_;
  ledger_options.enable_anytime = false;
  ProgressBudget ledger(query, active, ledger_options);

  // Prefix-intermediate memo for the hash-join path: count how many runnable
  // plans carry each prefix signature, so only genuinely shared prefixes are
  // stored. Requires scan reuse (the memo indexes the shared scans).
  SubplanMemo memo;
  SubplanMemo* memo_ptr = nullptr;
  if (options_.enable_scan_reuse && options_.enable_subplan_reuse) {
    memo.budget = options_.subplan_cache_budget_bytes;
    for (size_t p = 0; p < query.plans.size(); ++p) {
      if (!active[p]) continue;
      for (const std::string& sig : query.plans[p].prefix_signatures) {
        ++memo.shared_count[sig];
      }
    }
    memo_ptr = &memo;
  }

  auto stop_requested = [&] {
    return options_.cancel != nullptr && options_.cancel->StopRequested();
  };
  for (size_t p = 0; p < query.plans.size(); ++p) {
    if (stop_requested()) break;  // unvisited plans stay "skipped"
    const opt::CtssnPlan& plan = query.plans[p];
    if (!active[p]) continue;
    auto emit = [&](const std::vector<storage::ObjectId>& objs) {
      results.push_back(
          present::Mtton{static_cast<int>(p), objs, query.ctssns[p].cn_size});
      return true;
    };
    if (plan.query.steps.empty()) {
      EvaluateSingleObjectPlan(query, p, emit, stats);
      ledger.OnPlanComplete(p, 0, 0);
      continue;
    }
    FullMode mode = options_.full_mode;
    if (mode == FullMode::kAuto) {
      bool indexed = query.exec_options.use_indexes;
      if (indexed) {
        indexed = false;
        for (const exec::JoinStep& s : plan.query.steps) {
          if (s.table->HasAnyIndex() || s.table->IsClustered()) {
            indexed = true;
            break;
          }
        }
      }
      mode = indexed ? FullMode::kIndexNestedLoop : FullMode::kHashJoin;
    }
    if (mode == FullMode::kIndexNestedLoop) {
      RunIndexNestedLoop(plan, exec_options, options_.enable_semijoin_pruning,
                         bloom_cache_ptr, stats, emit);
    } else {
      RunHashJoin(plan, &cache, options_.enable_scan_reuse, memo_ptr,
                  exec_options, stats, emit);
    }
    // A stop observed right after a plan may have landed mid-plan: report it
    // as interrupted, never as complete.
    if (stop_requested()) {
      ledger.OnPlanInterrupted(p);
    } else {
      ledger.OnPlanComplete(p, 0, 0);
    }
  }
  if (coverage != nullptr) *coverage = ledger.Finish();

  std::stable_sort(results.begin(), results.end(),
                   [](const present::Mtton& a, const present::Mtton& b) {
                     if (a.score != b.score) return a.score < b.score;
                     if (a.ctssn_index != b.ctssn_index) {
                       return a.ctssn_index < b.ctssn_index;
                     }
                     return a.objects < b.objects;
                   });
  if (stats != nullptr) {
    stats->results = results.size();
    stats->reuse_hits += cache.hits();
    stats->reuse_misses += cache.misses();
  }
  return results;
}

}  // namespace xk::engine
