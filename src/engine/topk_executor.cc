#include "engine/topk_executor.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <map>
#include <mutex>
#include <numeric>

#include "common/logging.h"
#include "engine/thread_pool.h"

namespace xk::engine {

PlanEvaluator::PlanEvaluator(const opt::CtssnPlan* plan,
                             exec::ExecOptions exec_options, bool enable_cache,
                             size_t cache_capacity)
    : plan_(plan), exec_options_(exec_options), enable_cache_(enable_cache) {
  XK_CHECK(plan != nullptr);
  const size_t num_steps = plan->query.steps.size();
  const size_t num_nodes = plan->node_source.size();

  deps_.resize(num_steps);
  nodes_at_.resize(num_steps);
  suffix_nodes_.resize(num_steps);

  for (size_t i = 0; i < num_steps; ++i) {
    // Dependencies: earlier-step columns referenced by steps >= i.
    std::vector<exec::ColumnRef> deps;
    for (size_t j = i; j < num_steps; ++j) {
      for (const auto& [col, ref] : plan->query.steps[j].eq) {
        (void)col;
        if (static_cast<size_t>(ref.step) < i) deps.push_back(ref);
      }
    }
    std::sort(deps.begin(), deps.end(), [](const exec::ColumnRef& a,
                                           const exec::ColumnRef& b) {
      return std::tie(a.step, a.column) < std::tie(b.step, b.column);
    });
    deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
    deps_[i] = std::move(deps);

    for (size_t node = 0; node < num_nodes; ++node) {
      const exec::ColumnRef& src = plan->node_source[node];
      if (src.step == static_cast<int>(i)) {
        nodes_at_[i].push_back({static_cast<int>(node), src.column});
      }
      if (src.step >= static_cast<int>(i)) {
        suffix_nodes_[i].push_back(static_cast<int>(node));
      }
    }
  }

  // Occurrences sharing a segment must bind distinct objects.
  if (plan->ctssn != nullptr) {
    std::map<schema::TssId, std::vector<int>> by_segment;
    for (int v = 0; v < plan->ctssn->num_nodes(); ++v) {
      by_segment[plan->ctssn->tree.nodes[static_cast<size_t>(v)]].push_back(v);
    }
    for (auto& [seg, occs] : by_segment) {
      (void)seg;
      if (occs.size() >= 2) same_segment_groups_.push_back(std::move(occs));
    }
  }

  caches_.resize(num_steps);
  if (enable_cache_ && num_steps > 1) {
    size_t per_level = std::max<size_t>(cache_capacity / (num_steps - 1), 16);
    for (size_t i = 1; i < num_steps; ++i) {
      caches_[i] = std::make_unique<
          LruCache<std::string, std::vector<std::vector<storage::ObjectId>>>>(
          per_level);
    }
  }
}

std::string PlanEvaluator::CacheKey(
    size_t i, const std::vector<storage::TupleView>& rows) const {
  std::string key;
  key.resize(deps_[i].size() * sizeof(storage::ObjectId));
  char* out = key.data();
  for (const exec::ColumnRef& ref : deps_[i]) {
    storage::ObjectId v =
        rows[static_cast<size_t>(ref.step)][static_cast<size_t>(ref.column)];
    std::memcpy(out, &v, sizeof(v));
    out += sizeof(v);
  }
  return key;
}

void PlanEvaluator::ProjectToCollectors(const std::vector<storage::ObjectId>& objs) {
  for (Collector* c : active_collectors_) {
    std::vector<storage::ObjectId> projection;
    projection.reserve(suffix_nodes_[c->level].size());
    for (int node : suffix_nodes_[c->level]) {
      projection.push_back(objs[static_cast<size_t>(node)]);
    }
    c->completions.push_back(std::move(projection));
  }
}

bool PlanEvaluator::Eval(
    size_t i, std::vector<storage::TupleView>* rows,
    std::vector<storage::ObjectId>* objs,
    const std::function<bool(const std::vector<storage::ObjectId>&)>& emit) {
  const std::vector<exec::JoinStep>& steps = plan_->query.steps;
  if (i == steps.size()) {
    ProjectToCollectors(*objs);
    if (!DistinctAcrossSegments(*objs)) return true;
    ++stats_.results;
    return emit(*objs);
  }

  auto* cache = caches_[i].get();
  std::string key;
  if (cache != nullptr) {
    key = CacheKey(i, *rows);
    const std::vector<std::vector<storage::ObjectId>>* hit = cache->Get(key);
    if (hit != nullptr) {
      ++stats_.cache_hits;
      // Replay the memoized suffix: each completion is a full assignment of
      // the remaining occurrences.
      for (const std::vector<storage::ObjectId>& completion : *hit) {
        for (size_t x = 0; x < completion.size(); ++x) {
          (*objs)[static_cast<size_t>(suffix_nodes_[i][x])] = completion[x];
        }
        ProjectToCollectors(*objs);
        if (!DistinctAcrossSegments(*objs)) continue;
        ++stats_.results;
        if (!emit(*objs)) return false;
      }
      return true;
    }
    ++stats_.cache_misses;
  }

  Collector collector{i, {}};
  if (cache != nullptr) active_collectors_.push_back(&collector);

  const exec::JoinStep& step = steps[i];
  std::vector<exec::ColumnBinding> bindings = step.const_filters;
  for (const auto& [col, ref] : step.eq) {
    bindings.push_back(exec::ColumnBinding{
        col, (*rows)[static_cast<size_t>(ref.step)][static_cast<size_t>(ref.column)]});
  }

  bool keep_going = true;
  exec::ForEachMatch(*step.table, bindings, step.in_filters, exec_options_,
                     [&](storage::RowId r) {
                       (*rows)[i] = step.table->Row(r);
                       for (const auto& [node, col] : nodes_at_[i]) {
                         (*objs)[static_cast<size_t>(node)] =
                             (*rows)[i][static_cast<size_t>(col)];
                       }
                       keep_going = Eval(i + 1, rows, objs, emit);
                       return keep_going;
                     },
                     &stats_.probes);

  if (cache != nullptr) {
    XK_CHECK(active_collectors_.back() == &collector);
    active_collectors_.pop_back();
    // Only complete enumerations are reusable.
    if (keep_going) cache->Put(key, std::move(collector.completions));
  }
  return keep_going;
}

bool PlanEvaluator::DistinctAcrossSegments(
    const std::vector<storage::ObjectId>& objs) const {
  for (const std::vector<int>& group : same_segment_groups_) {
    for (size_t a = 0; a < group.size(); ++a) {
      for (size_t b = a + 1; b < group.size(); ++b) {
        if (objs[static_cast<size_t>(group[a])] ==
            objs[static_cast<size_t>(group[b])]) {
          return false;
        }
      }
    }
  }
  return true;
}

void PlanEvaluator::Run(
    const std::function<bool(const std::vector<storage::ObjectId>&)>& emit) {
  if (plan_->query.steps.empty()) return;  // single-object plans handled elsewhere
  std::vector<storage::TupleView> rows(plan_->query.steps.size());
  std::vector<storage::ObjectId> objs(plan_->node_source.size(),
                                      storage::kInvalidId);
  Eval(0, &rows, &objs, emit);
  for (size_t i = 0; i < caches_.size(); ++i) {
    if (caches_[i] != nullptr) {
      // Fold LRU-level counters into the stats (hits/misses already counted).
      (void)i;
    }
  }
}

void EvaluateSingleObjectPlan(
    const PreparedQuery& query, size_t plan_index,
    const std::function<bool(const std::vector<storage::ObjectId>&)>& emit) {
  const opt::NodeFilters& filters = query.node_filters[plan_index];
  XK_CHECK_EQ(filters.size(), 1u);
  const std::vector<const storage::IdSet*>& sets = filters[0];
  XK_CHECK(!sets.empty());
  // Intersect: iterate the smallest set, check the others.
  const storage::IdSet* smallest = sets[0];
  for (const storage::IdSet* s : sets) {
    if (s->size() < smallest->size()) smallest = s;
  }
  std::vector<storage::ObjectId> ids(smallest->begin(), smallest->end());
  std::sort(ids.begin(), ids.end());  // deterministic order
  std::vector<storage::ObjectId> objs(1);
  for (storage::ObjectId id : ids) {
    bool ok = true;
    for (const storage::IdSet* s : sets) {
      if (s != smallest && !s->contains(id)) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    objs[0] = id;
    if (!emit(objs)) return;
  }
}

Result<std::vector<present::Mtton>> TopKExecutor::Run(const PreparedQuery& query,
                                                      const QueryOptions& options,
                                                      ExecutionStats* stats) {
  // Plans in nondecreasing network size: smaller networks answer first and
  // rank higher.
  std::vector<size_t> order(query.plans.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return query.ctssns[a].cn_size < query.ctssns[b].cn_size;
  });

  std::mutex mutex;
  std::vector<present::Mtton> results;
  std::atomic<bool> global_stop{false};
  std::vector<ExecutionStats> per_plan_stats(query.plans.size());

  auto run_plan = [&](size_t p) {
    if (global_stop.load(std::memory_order_relaxed)) return;
    if (options.max_network_size > 0 &&
        query.ctssns[p].tree.size() > options.max_network_size) {
      return;
    }
    size_t local_count = 0;
    auto emit = [&](const std::vector<storage::ObjectId>& objs) {
      std::lock_guard<std::mutex> lock(mutex);
      results.push_back(present::Mtton{static_cast<int>(p), objs,
                                       query.ctssns[p].cn_size});
      ++local_count;
      if (options.global_k != 0 && results.size() >= options.global_k) {
        global_stop.store(true, std::memory_order_relaxed);
        return false;
      }
      return local_count < options.per_network_k &&
             !global_stop.load(std::memory_order_relaxed);
    };

    if (query.plans[p].query.steps.empty()) {
      EvaluateSingleObjectPlan(query, p, emit);
      return;
    }
    PlanEvaluator evaluator(&query.plans[p], query.exec_options,
                            options.enable_cache, options.cache_capacity);
    evaluator.Run(emit);
    per_plan_stats[p] = evaluator.stats();
  };

  if (options.num_threads <= 1 || query.plans.size() <= 1) {
    for (size_t p : order) run_plan(p);
  } else {
    ThreadPool pool(options.num_threads);
    for (size_t p : order) {
      pool.Submit([&run_plan, p] { run_plan(p); });
    }
    pool.Wait();
  }

  std::stable_sort(results.begin(), results.end(),
                   [](const present::Mtton& a, const present::Mtton& b) {
                     if (a.score != b.score) return a.score < b.score;
                     if (a.ctssn_index != b.ctssn_index) {
                       return a.ctssn_index < b.ctssn_index;
                     }
                     return a.objects < b.objects;
                   });
  if (options.global_k != 0 && results.size() > options.global_k) {
    results.resize(options.global_k);
  }
  if (stats != nullptr) {
    for (const ExecutionStats& s : per_plan_stats) stats->Add(s);
    stats->results = results.size();
  }
  return results;
}

}  // namespace xk::engine
