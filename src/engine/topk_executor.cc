#include "engine/topk_executor.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <numeric>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "engine/thread_pool.h"

namespace xk::engine {

// --- BloomCache ----------------------------------------------------------

const storage::BloomFilter* BloomCache::GetOrBuild(const exec::JoinStep& step,
                                                   const std::string& signature,
                                                   int column,
                                                   ExecutionStats* build_stats) {
  std::string key = signature;
  key.push_back('#');
  key += std::to_string(column);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = filters_.find(key);
  if (it != filters_.end()) return it->second.get();

  auto filter = std::make_unique<storage::BloomFilter>(step.table->NumRows());
  exec::ProbeStats scan_stats;
  exec::ExecOptions no_index{.use_indexes = false};
  exec::ForEachMatch(*step.table, step.const_filters, step.in_filters, no_index,
                     [&](storage::RowId r) {
                       filter->Add(step.table->At(r, column));
                       return true;
                     },
                     &scan_stats);
  if (build_stats != nullptr) {
    build_stats->bloom_build_rows += scan_stats.rows_scanned;
  }
  return filters_.emplace(std::move(key), std::move(filter)).first->second.get();
}

// --- PlanLayout ----------------------------------------------------------

PlanLayout::PlanLayout(const opt::CtssnPlan* plan, bool enable_semijoin_pruning,
                       BloomCache* bloom_cache, ExecutionStats* build_stats)
    : plan_(plan) {
  XK_CHECK(plan != nullptr);
  const size_t num_steps = plan->query.steps.size();
  const size_t num_nodes = plan->node_source.size();

  deps_.resize(num_steps);
  nodes_at_.resize(num_steps);
  suffix_nodes_.resize(num_steps);
  step_filters_.resize(num_steps);
  step_blooms_.resize(num_steps);

  for (size_t i = 0; i < num_steps; ++i) {
    // Dependencies: earlier-step columns referenced by steps >= i.
    std::vector<exec::ColumnRef> deps;
    for (size_t j = i; j < num_steps; ++j) {
      for (const auto& [col, ref] : plan->query.steps[j].eq) {
        (void)col;
        if (static_cast<size_t>(ref.step) < i) deps.push_back(ref);
      }
    }
    std::sort(deps.begin(), deps.end(), [](const exec::ColumnRef& a,
                                           const exec::ColumnRef& b) {
      return std::tie(a.step, a.column) < std::tie(b.step, b.column);
    });
    deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
    deps_[i] = std::move(deps);

    for (size_t node = 0; node < num_nodes; ++node) {
      const exec::ColumnRef& src = plan->node_source[node];
      if (src.step == static_cast<int>(i)) {
        nodes_at_[i].push_back({static_cast<int>(node), src.column});
      }
      if (src.step >= static_cast<int>(i)) {
        suffix_nodes_[i].push_back(static_cast<int>(node));
      }
    }

    // Keyword filters, same-column sets intersected down to one set each: a
    // row is checked against one compact set instead of k overlapping ones.
    const exec::JoinStep& step = plan->query.steps[i];
    for (size_t a = 0; a < step.in_filters.size(); ++a) {
      const exec::ColumnInSet& f = step.in_filters[a];
      bool first_for_column = true;
      for (size_t b = 0; b < a; ++b) {
        if (step.in_filters[b].column == f.column) {
          first_for_column = false;
          break;
        }
      }
      if (!first_for_column) continue;
      std::vector<const storage::IdSet*> sets;
      for (const exec::ColumnInSet& g : step.in_filters) {
        if (g.column == f.column) sets.push_back(g.set);
      }
      if (sets.size() == 1) {
        step_filters_[i].push_back(f);
        continue;
      }
      // Intersect: iterate the smallest set, require membership in the rest.
      const storage::IdSet* smallest = sets[0];
      for (const storage::IdSet* s : sets) {
        if (s->size() < smallest->size()) smallest = s;
      }
      storage::IdSet merged;
      for (storage::ObjectId id : *smallest) {
        bool ok = true;
        for (const storage::IdSet* s : sets) {
          if (s != smallest && !s->contains(id)) {
            ok = false;
            break;
          }
        }
        if (ok) merged.insert(id);
      }
      owned_sets_.push_back(std::move(merged));
      step_filters_[i].push_back(exec::ColumnInSet{f.column, &owned_sets_.back()});
    }

    // Semi-join prune filters: one Bloom per join column this step is probed
    // on, summarizing values among rows passing the step's local filters.
    if (enable_semijoin_pruning && bloom_cache != nullptr && i > 0) {
      for (const auto& [col, ref] : step.eq) {
        (void)ref;
        bool duplicate = false;
        for (const exec::ColumnBloom& existing : step_blooms_[i]) {
          if (existing.column == col) {
            duplicate = true;
            break;
          }
        }
        if (duplicate) continue;
        step_blooms_[i].push_back(exec::ColumnBloom{
            col, bloom_cache->GetOrBuild(step, plan->step_signatures[i], col,
                                         build_stats)});
      }
    }
  }

  // Occurrences sharing a segment must bind distinct objects.
  if (plan->ctssn != nullptr) {
    std::map<schema::TssId, std::vector<int>> by_segment;
    for (int v = 0; v < plan->ctssn->num_nodes(); ++v) {
      by_segment[plan->ctssn->tree.nodes[static_cast<size_t>(v)]].push_back(v);
    }
    for (auto& [seg, occs] : by_segment) {
      (void)seg;
      if (occs.size() >= 2) same_segment_groups_.push_back(std::move(occs));
    }
  }
}

// --- PlanEvaluator -------------------------------------------------------

PlanEvaluator::PlanEvaluator(const PlanLayout* layout,
                             exec::ExecOptions exec_options, bool enable_cache,
                             size_t cache_capacity)
    : layout_(layout),
      plan_(&layout->plan()),
      exec_options_(exec_options),
      enable_cache_(enable_cache) {
  const size_t num_steps = plan_->query.steps.size();
  caches_.resize(num_steps);
  binding_scratch_.resize(num_steps);
  if (enable_cache_ && num_steps > 1) {
    size_t per_level = std::max<size_t>(cache_capacity / (num_steps - 1), 16);
    for (size_t i = 1; i < num_steps; ++i) {
      caches_[i] = std::make_unique<
          LruCache<std::string, std::vector<std::vector<storage::ObjectId>>>>(
          per_level);
    }
  }
}

std::string PlanEvaluator::CacheKey(
    size_t i, const std::vector<storage::TupleView>& rows) const {
  const std::vector<exec::ColumnRef>& deps = layout_->deps_[i];
  std::string key;
  key.resize(deps.size() * sizeof(storage::ObjectId));
  char* out = key.data();
  for (const exec::ColumnRef& ref : deps) {
    storage::ObjectId v =
        rows[static_cast<size_t>(ref.step)][static_cast<size_t>(ref.column)];
    std::memcpy(out, &v, sizeof(v));
    out += sizeof(v);
  }
  return key;
}

void PlanEvaluator::ProjectToCollectors(const std::vector<storage::ObjectId>& objs) {
  for (Collector* c : active_collectors_) {
    std::vector<storage::ObjectId> projection;
    projection.reserve(layout_->suffix_nodes_[c->level].size());
    for (int node : layout_->suffix_nodes_[c->level]) {
      projection.push_back(objs[static_cast<size_t>(node)]);
    }
    c->completions.push_back(std::move(projection));
  }
}

bool PlanEvaluator::Eval(
    size_t i, std::vector<storage::TupleView>* rows,
    std::vector<storage::ObjectId>* objs,
    const std::function<bool(const std::vector<storage::ObjectId>&)>& emit) {
  // Cooperative stop: unwind as if the sink declined, so no truncated suffix
  // enumeration is ever cached (the keep_going guard below skips the Put).
  if (exec_options_.cancel != nullptr && exec_options_.cancel->StopRequested()) {
    return false;
  }
  // Anytime scan-row allowance, same unwind semantics. Consumption is
  // reported in batches to keep the shared atomic off the hot path.
  if (row_gate_ != nullptr) {
    const uint64_t scanned = stats_.probes.rows_scanned;
    if (scanned - gate_reported_rows_ >= 1024) {
      row_gate_->Consume(scanned - gate_reported_rows_);
      gate_reported_rows_ = scanned;
    }
    if (row_gate_->Exhausted()) return false;
  }
  const std::vector<exec::JoinStep>& steps = plan_->query.steps;
  if (i == steps.size()) {
    ProjectToCollectors(*objs);
    if (!DistinctAcrossSegments(*objs)) return true;
    ++stats_.results;
    return emit(*objs);
  }

  auto* cache = caches_[i].get();
  std::string key;
  if (cache != nullptr) {
    key = CacheKey(i, *rows);
    const std::vector<std::vector<storage::ObjectId>>* hit = cache->Get(key);
    if (hit != nullptr) {
      ++stats_.cache_hits;
      // Replay the memoized suffix: each completion is a full assignment of
      // the remaining occurrences.
      for (const std::vector<storage::ObjectId>& completion : *hit) {
        for (size_t x = 0; x < completion.size(); ++x) {
          (*objs)[static_cast<size_t>(layout_->suffix_nodes_[i][x])] =
              completion[x];
        }
        ProjectToCollectors(*objs);
        if (!DistinctAcrossSegments(*objs)) continue;
        ++stats_.results;
        if (!emit(*objs)) return false;
      }
      return true;
    }
    ++stats_.cache_misses;
  }

  Collector collector{i, {}};
  if (cache != nullptr) active_collectors_.push_back(&collector);

  const exec::JoinStep& step = steps[i];
  std::vector<exec::ColumnBinding>& bindings = binding_scratch_[i];
  bindings.assign(step.const_filters.begin(), step.const_filters.end());
  bindings.reserve(bindings.size() + step.eq.size());
  for (const auto& [col, ref] : step.eq) {
    bindings.push_back(exec::ColumnBinding{
        col, (*rows)[static_cast<size_t>(ref.step)][static_cast<size_t>(ref.column)]});
  }

  bool keep_going = true;
  exec::ForEachMatch(*step.table, bindings, layout_->step_filters_[i],
                     layout_->step_blooms_[i], exec_options_,
                     [&](storage::RowId r) {
                       (*rows)[i] = step.table->Row(r);
                       for (const auto& [node, col] : layout_->nodes_at_[i]) {
                         (*objs)[static_cast<size_t>(node)] =
                             (*rows)[i][static_cast<size_t>(col)];
                       }
                       keep_going = Eval(i + 1, rows, objs, emit);
                       return keep_going;
                     },
                     &stats_.probes);

  if (cache != nullptr) {
    XK_CHECK(active_collectors_.back() == &collector);
    active_collectors_.pop_back();
    // Only complete enumerations are reusable.
    if (keep_going) cache->Put(key, std::move(collector.completions));
  }
  return keep_going;
}

bool PlanEvaluator::DistinctAcrossSegments(
    const std::vector<storage::ObjectId>& objs) const {
  for (const std::vector<int>& group : layout_->same_segment_groups_) {
    for (size_t a = 0; a < group.size(); ++a) {
      for (size_t b = a + 1; b < group.size(); ++b) {
        if (objs[static_cast<size_t>(group[a])] ==
            objs[static_cast<size_t>(group[b])]) {
          return false;
        }
      }
    }
  }
  return true;
}

bool PlanEvaluator::EvalDriverRow(
    storage::RowId r, std::vector<storage::TupleView>* rows,
    std::vector<storage::ObjectId>* objs,
    const std::function<bool(const std::vector<storage::ObjectId>&)>& emit) {
  const exec::JoinStep& step = plan_->query.steps[0];
  (*rows)[0] = step.table->Row(r);
  for (const auto& [node, col] : layout_->nodes_at_[0]) {
    (*objs)[static_cast<size_t>(node)] = (*rows)[0][static_cast<size_t>(col)];
  }
  return Eval(1, rows, objs, emit);
}

void PlanEvaluator::Run(
    const std::function<bool(const std::vector<storage::ObjectId>&)>& emit) {
  if (plan_->query.steps.empty()) return;  // single-object plans handled elsewhere
  std::vector<storage::TupleView> rows(plan_->query.steps.size());
  std::vector<storage::ObjectId> objs(plan_->node_source.size(),
                                      storage::kInvalidId);
  Eval(0, &rows, &objs, emit);
}

void PlanEvaluator::RunMorsel(
    std::span<const storage::RowId> driver_rows,
    const std::function<bool(const std::vector<storage::ObjectId>&)>& emit) {
  if (plan_->query.steps.empty()) return;
  std::vector<storage::TupleView> rows(plan_->query.steps.size());
  std::vector<storage::ObjectId> objs(plan_->node_source.size(),
                                      storage::kInvalidId);
  for (storage::RowId r : driver_rows) {
    if (!EvalDriverRow(r, &rows, &objs, emit)) return;
  }
}

void PlanEvaluator::RunDriverRows(
    std::span<const storage::RowId> driver_rows,
    const std::function<bool(size_t)>& gate,
    const std::function<bool(size_t, const std::vector<storage::ObjectId>&)>& emit) {
  if (plan_->query.steps.empty()) return;
  std::vector<storage::TupleView> rows(plan_->query.steps.size());
  std::vector<storage::ObjectId> objs(plan_->node_source.size(),
                                      storage::kInvalidId);
  for (size_t i = 0; i < driver_rows.size(); ++i) {
    if (gate && !gate(i)) return;
    auto indexed_emit = [&](const std::vector<storage::ObjectId>& o) {
      return emit(i, o);
    };
    if (!EvalDriverRow(driver_rows[i], &rows, &objs, indexed_emit)) return;
  }
}

void PlanEvaluator::RunReplay(
    const exec::MaterializedSubplan& prefix, size_t begin, size_t end,
    const std::function<bool(const std::vector<storage::ObjectId>&)>& emit) {
  if (plan_->query.steps.empty()) return;
  const size_t arity = static_cast<size_t>(prefix.arity());
  XK_CHECK_LE(arity, plan_->query.steps.size());
  std::vector<storage::TupleView> rows(plan_->query.steps.size());
  std::vector<storage::ObjectId> objs(plan_->node_source.size(),
                                      storage::kInvalidId);
  for (size_t r = begin; r < end; ++r) {
    for (size_t c = 0; c < arity; ++c) {
      const exec::JoinStep& step = plan_->query.steps[c];
      rows[c] = step.table->Row(prefix.At(r, static_cast<int>(c)));
      for (const auto& [node, col] : layout_->nodes_at_[c]) {
        objs[static_cast<size_t>(node)] = rows[c][static_cast<size_t>(col)];
      }
    }
    if (!Eval(arity, &rows, &objs, emit)) return;
  }
}

std::vector<storage::RowId> EnumerateDriverMatches(const PlanLayout& layout,
                                                   const exec::ExecOptions& options,
                                                   ExecutionStats* stats) {
  const exec::JoinStep& step = layout.plan().query.steps[0];
  std::vector<storage::RowId> rows;
  exec::ForEachMatch(*step.table, step.const_filters, layout.step_filters(0),
                     layout.step_blooms()[0], options,
                     [&](storage::RowId r) {
                       rows.push_back(r);
                       return true;
                     },
                     stats != nullptr ? &stats->probes : nullptr);
  return rows;
}

bool MaterializePrefixRows(const PlanLayout& layout, int depth,
                           const exec::ExecOptions& options,
                           const exec::MaterializedSubplan* base, size_t max_bytes,
                           ExecutionStats* stats, exec::MaterializedSubplan* out) {
  const std::vector<exec::JoinStep>& steps = layout.plan().query.steps;
  XK_CHECK(depth >= 0 && static_cast<size_t>(depth) < steps.size());
  XK_CHECK(out != nullptr && out->arity() == depth + 1);
  const CancelToken* cancel = options.cancel;
  std::vector<storage::TupleView> rows(static_cast<size_t>(depth) + 1);
  std::vector<storage::RowId> row_ids(static_cast<size_t>(depth) + 1);
  std::vector<std::vector<exec::ColumnBinding>> binding_scratch(
      static_cast<size_t>(depth) + 1);

  bool ok = true;  // false = truncated (cancel / byte budget)
  std::function<bool(size_t)> descend = [&](size_t i) -> bool {
    if (cancel != nullptr && cancel->StopRequested()) {
      ok = false;
      return false;
    }
    if (i > static_cast<size_t>(depth)) {
      out->Append(row_ids.data());
      if (out->bytes() > max_bytes) {
        ok = false;
        return false;
      }
      return true;
    }
    const exec::JoinStep& step = steps[i];
    std::vector<exec::ColumnBinding>& bindings = binding_scratch[i];
    bindings.assign(step.const_filters.begin(), step.const_filters.end());
    for (const auto& [col, ref] : step.eq) {
      bindings.push_back(exec::ColumnBinding{
          col,
          rows[static_cast<size_t>(ref.step)][static_cast<size_t>(ref.column)]});
    }
    bool keep = true;
    exec::ForEachMatch(*step.table, bindings, layout.step_filters(i),
                       layout.step_blooms()[i], options,
                       [&](storage::RowId r) {
                         rows[i] = step.table->Row(r);
                         row_ids[i] = r;
                         keep = descend(i + 1);
                         return keep;
                       },
                       stats != nullptr ? &stats->probes : nullptr);
    return keep;
  };

  if (base == nullptr) {
    descend(0);
    return ok;
  }
  // Stack on the shallower materialization: its rows are exactly the serial
  // enumeration of steps [0, base->arity()), so extending each in order
  // reproduces the full serial enumeration.
  const size_t start = static_cast<size_t>(base->arity());
  XK_CHECK_LE(start, static_cast<size_t>(depth));
  for (size_t r = 0; r < base->num_rows(); ++r) {
    for (size_t c = 0; c < start; ++c) {
      row_ids[c] = base->At(r, static_cast<int>(c));
      rows[c] = steps[c].table->Row(row_ids[c]);
    }
    if (!descend(start)) break;
  }
  return ok;
}

// --- Single-object plans -------------------------------------------------

void EvaluateSingleObjectPlan(
    const PreparedQuery& query, size_t plan_index,
    const std::function<bool(const std::vector<storage::ObjectId>&)>& emit,
    ExecutionStats* stats) {
  const opt::NodeFilters& filters = query.node_filters[plan_index];
  XK_CHECK_EQ(filters.size(), 1u);
  const std::vector<const storage::IdSet*>& sets = filters[0];
  XK_CHECK(!sets.empty());
  // Intersect: iterate the smallest set, check the others.
  const storage::IdSet* smallest = sets[0];
  for (const storage::IdSet* s : sets) {
    if (s->size() < smallest->size()) smallest = s;
  }
  std::vector<storage::ObjectId> ids(smallest->begin(), smallest->end());
  std::sort(ids.begin(), ids.end());  // deterministic order
  if (stats != nullptr) {
    ++stats->probes.probes;
    stats->probes.rows_scanned += ids.size();
  }
  std::vector<storage::ObjectId> objs(1);
  for (storage::ObjectId id : ids) {
    bool ok = true;
    for (const storage::IdSet* s : sets) {
      if (s != smallest && !s->contains(id)) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    objs[0] = id;
    if (stats != nullptr) {
      ++stats->probes.rows_matched;
      ++stats->results;
    }
    if (!emit(objs)) return;
  }
}

// --- TopKExecutor --------------------------------------------------------

/// Serial-order cap on one plan's output: the first `limit` results in
/// driver/nested-loop order, matching the single-threaded emit semantics
/// (per_network_k = 0 behaves like 1: the emit that trips the cap is kept).
size_t PlanResultCap(const QueryOptions& options, size_t results_so_far) {
  size_t cap = std::max<size_t>(options.per_network_k, 1);
  if (options.global_k != 0) {
    cap = std::min(cap, options.global_k - results_so_far);
  }
  return cap;
}

void SortMttons(std::vector<present::Mtton>* results) {
  std::stable_sort(results->begin(), results->end(),
                   [](const present::Mtton& a, const present::Mtton& b) {
                     if (a.score != b.score) return a.score < b.score;
                     if (a.ctssn_index != b.ctssn_index) {
                       return a.ctssn_index < b.ctssn_index;
                     }
                     return a.objects < b.objects;
                   });
}

namespace {

/// Morsel-parallel evaluation of one multi-step plan: partitions the driver
/// matches, fans the continuations out over `pool`, and appends the first
/// `limit` results (in serial order) to `out`. Worker-local evaluator shards
/// carry their own suffix caches and stats; a completed-prefix watermark
/// cancels morsels that can no longer contribute.
void RunPlanMorsels(const PlanLayout& layout, const PreparedQuery& query,
                    const QueryOptions& options,
                    const exec::ExecOptions& exec_options, size_t plan_index,
                    size_t limit, ThreadPool* pool,
                    std::vector<present::Mtton>* out,
                    ExecutionStats* plan_stats,
                    const exec::MaterializedSubplan* prefix, RowGate* gate) {
  const CancelToken* cancel = options.cancel;
  // The morsel-partitioned work items: materialized prefix rows when a shared
  // subplan is available (its step-0.. bindings replay instead of probing),
  // step-0 driver matches otherwise. Both are in serial enumeration order, so
  // morsel merge order — and thus output — is identical either way.
  std::vector<storage::RowId> driver;
  size_t num_items;
  if (prefix != nullptr) {
    num_items = prefix->num_rows();
  } else {
    driver = EnumerateDriverMatches(layout, exec_options, plan_stats);
    num_items = driver.size();
  }
  const int score = query.ctssns[plan_index].cn_size;

  const size_t morsel = std::max<size_t>(options.morsel_size, 1);
  const size_t num_morsels = (num_items + morsel - 1) / morsel;

  auto append = [&](const std::vector<storage::ObjectId>& objs) {
    out->push_back(present::Mtton{static_cast<int>(plan_index), objs, score});
  };

  if (num_morsels <= 1 || pool == nullptr || pool->num_threads() <= 1) {
    PlanEvaluator evaluator(&layout, exec_options, options.enable_cache,
                            options.cache_capacity);
    evaluator.set_row_gate(gate);
    size_t taken = 0;
    auto sink = [&](const std::vector<storage::ObjectId>& objs) {
      append(objs);
      return ++taken < limit;
    };
    if (prefix != nullptr) {
      evaluator.RunReplay(*prefix, 0, num_items, sink);
    } else {
      evaluator.RunMorsel(std::span<const storage::RowId>(driver), sink);
    }
    plan_stats->Add(evaluator.stats());
    return;
  }

  std::vector<std::unique_ptr<PlanEvaluator>> shards(
      static_cast<size_t>(pool->num_threads()));
  for (auto& shard : shards) {
    shard = std::make_unique<PlanEvaluator>(&layout, exec_options,
                                            options.enable_cache,
                                            options.cache_capacity);
    shard->set_row_gate(gate);
  }

  // Per-morsel output slots, merged in morsel order afterwards. `cancelled`
  // trips once the contiguous prefix of completed morsels already holds
  // `limit` results — later morsels can never contribute to the first
  // `limit` results in serial order.
  std::vector<std::vector<std::vector<storage::ObjectId>>> morsel_out(num_morsels);
  std::vector<uint8_t> morsel_done(num_morsels, 0);
  std::atomic<bool> cancelled{false};
  std::mutex watermark_mutex;
  size_t prefix_done = 0;
  size_t prefix_results = 0;

  for (size_t m = 0; m < num_morsels; ++m) {
    pool->Submit([&, m] {
      if (!cancelled.load(std::memory_order_acquire) &&
          !(cancel != nullptr && cancel->StopRequested())) {
        const int worker = ThreadPool::CurrentWorkerIndex();
        XK_CHECK_GE(worker, 0);
        std::vector<std::vector<storage::ObjectId>>& slot = morsel_out[m];
        const size_t begin = m * morsel;
        const size_t count = std::min(morsel, num_items - begin);
        auto sink = [&](const std::vector<storage::ObjectId>& objs) {
          slot.push_back(objs);
          return slot.size() < limit &&
                 !cancelled.load(std::memory_order_relaxed);
        };
        if (prefix != nullptr) {
          shards[static_cast<size_t>(worker)]->RunReplay(*prefix, begin,
                                                         begin + count, sink);
        } else {
          shards[static_cast<size_t>(worker)]->RunMorsel(
              std::span<const storage::RowId>(driver.data() + begin, count),
              sink);
        }
      }
      std::lock_guard<std::mutex> lock(watermark_mutex);
      morsel_done[m] = 1;
      while (prefix_done < num_morsels && morsel_done[prefix_done] != 0) {
        prefix_results += morsel_out[prefix_done].size();
        ++prefix_done;
      }
      if (prefix_results >= limit) {
        cancelled.store(true, std::memory_order_release);
      }
    });
  }
  pool->WaitIdle();

  size_t taken = 0;
  for (size_t m = 0; m < num_morsels && taken < limit; ++m) {
    for (const std::vector<storage::ObjectId>& objs : morsel_out[m]) {
      append(objs);
      if (++taken == limit) break;
    }
  }
  for (const auto& shard : shards) plan_stats->Add(shard->stats());
}

}  // namespace

Result<std::vector<present::Mtton>> TopKExecutor::Run(const PreparedQuery& query,
                                                      const QueryOptions& options,
                                                      ExecutionStats* stats,
                                                      Coverage* coverage,
                                                      ResultSink* sink) {
  std::vector<present::Mtton> results;
  std::vector<ExecutionStats> per_plan_stats(query.plans.size());
  BloomCache bloom_cache;
  BloomCache* bloom_cache_ptr =
      options.enable_semijoin_pruning ? &bloom_cache : nullptr;

  // Deadline/cancel token, threaded into every probe via the exec options.
  const CancelToken* cancel = options.cancel;
  exec::ExecOptions exec_options = query.exec_options;
  exec_options.cancel = cancel;
  // Run-time knob wins over the Prepare-time snapshot, so one prepared query
  // can be executed both row-at-a-time and vectorized (the benches A/B this).
  exec_options.vectorized = options.vectorized;
  exec_options.force_scalar_kernels =
      options.kernel_dispatch == KernelDispatch::kForceScalar;

  auto skip_plan = [&](size_t p) {
    return options.max_network_size > 0 &&
           query.ctssns[p].tree.size() > options.max_network_size;
  };
  auto stop_requested = [&] {
    return cancel != nullptr && cancel->StopRequested();
  };

  // Plan DAG: execution order (nondecreasing network size — smaller networks
  // answer first and rank higher — cost-ordered inside a size class) plus the
  // shared join prefixes among the plans that will actually run.
  std::vector<bool> active(query.plans.size());
  for (size_t p = 0; p < query.plans.size(); ++p) active[p] = !skip_plan(p);
  opt::PlanDagOptions dag_options;
  dag_options.cost_ordered = options.cost_ordered_scheduling;
  dag_options.share_subplans = options.enable_subplan_reuse;
  const opt::PlanDag dag = opt::BuildPlanDag(query.plans, active, dag_options);
  const std::vector<size_t>& order = dag.schedule;

  // Anytime budget + per-plan outcome ledger. With no cost budget and no
  // armed deadline (or enable_anytime off) every plan is admitted and the
  // run is byte-identical to the pre-anytime engine; the ledger then only
  // backs the coverage report.
  ProgressBudget budget(query, active, options);
  budget.PreAdmit(order);

  // Finalized-prefix streaming (engine/result_sink.h): per CN size class, the
  // number of scheduled plans that can still append results. When a plan is
  // done for good — completed, capped, budget-skipped, or interrupted — its
  // class count drops; once every class <= W has drained, all results with
  // score <= W are final and their sorted form is the prefix of the eventual
  // response, so the delta past what was already streamed goes to the sink.
  // Plans left unvisited by a global stop never decrement: the watermark
  // simply stalls and the tail rides the final response. Callers must hold
  // the results lock on the concurrent path.
  std::map<int, size_t> stream_pending;
  size_t streamed = 0;
  if (sink != nullptr) {
    for (size_t p = 0; p < query.plans.size(); ++p) {
      if (active[p]) ++stream_pending[query.ctssns[p].cn_size];
    }
  }
  auto stream_plan_done = [&](size_t p) {
    if (sink == nullptr) return;
    auto it = stream_pending.find(query.ctssns[p].cn_size);
    XK_CHECK(it != stream_pending.end() && it->second > 0);
    if (--it->second == 0) stream_pending.erase(it);
    const int watermark = stream_pending.empty()
                              ? std::numeric_limits<int>::max()
                              : stream_pending.begin()->first - 1;
    std::vector<present::Mtton> finalized;
    for (const present::Mtton& m : results) {
      if (m.score <= watermark) finalized.push_back(m);
    }
    SortMttons(&finalized);
    if (options.global_k != 0 && finalized.size() > options.global_k) {
      finalized.resize(options.global_k);
    }
    if (finalized.size() > streamed) {
      sink->OnBatch(
          std::span<const present::Mtton>(finalized).subspan(streamed));
      streamed = finalized.size();
    }
  };

  std::unique_ptr<opt::SubplanCache> subplan_cache;
  if (options.enable_subplan_reuse && !dag.subplans.empty()) {
    subplan_cache =
        std::make_unique<opt::SubplanCache>(options.subplan_cache_budget_bytes);
  }

  // The materialized prefix assigned to plan `p`, producing it (leader) or
  // waiting on a concurrent producer as needed; nullptr when the plan has no
  // shared prefix or the production failed (fall back to direct execution).
  auto acquire_prefix = [&](size_t p, const PlanLayout& layout)
      -> opt::SubplanCache::SubplanPtr {
    if (subplan_cache == nullptr || dag.shared_subplan[p] < 0) return nullptr;
    const opt::SharedSubplan& node =
        dag.subplans[static_cast<size_t>(dag.shared_subplan[p])];
    return subplan_cache->GetOrCompute(
        node.signature, node.consumers,
        [&]() -> opt::SubplanCache::SubplanPtr {
          auto sub = std::make_shared<exec::MaterializedSubplan>(node.depth + 1);
          // Stack on the deepest already-materialized shallower prefix.
          opt::SubplanCache::SubplanPtr base;
          const std::vector<std::string>& sigs = query.plans[p].prefix_signatures;
          for (int d = node.depth - 1; d >= 0; --d) {
            base = subplan_cache->Peek(sigs[static_cast<size_t>(d)]);
            if (base != nullptr) break;
          }
          if (!MaterializePrefixRows(layout, node.depth, exec_options,
                                     base.get(), subplan_cache->budget_bytes(),
                                     &per_plan_stats[p], sub.get())) {
            return nullptr;
          }
          return sub;
        });
  };
  auto release_prefix = [&](size_t p) {
    if (subplan_cache == nullptr || dag.shared_subplan[p] < 0) return;
    subplan_cache->Release(
        dag.subplans[static_cast<size_t>(dag.shared_subplan[p])].signature);
  };

  if (options.intra_plan_threads > 1) {
    // Morsel-driven: plans run serially smallest-first; each multi-step plan
    // fans its driver morsels out over the pool. Output and early-stop
    // semantics are byte-identical to the single-threaded path.
    std::unique_ptr<ThreadPool> pool;
    for (size_t p : order) {
      if (stop_requested()) break;  // unvisited plans stay "skipped"
      if (skip_plan(p)) continue;
      if (options.global_k != 0 && results.size() >= options.global_k) {
        budget.MarkUnreachedComplete();
        break;
      }
      if (!budget.AdmitPlan(p)) {  // skip whole CN, try the next
        stream_plan_done(p);
        continue;
      }
      Stopwatch plan_timer;
      const uint64_t rows_before = per_plan_stats[p].probes.rows_scanned;
      auto rows_scanned = [&] {
        return per_plan_stats[p].probes.rows_scanned - rows_before;
      };
      auto elapsed_ns = [&] {
        return static_cast<uint64_t>(plan_timer.ElapsedMicros()) * 1000;
      };
      const size_t limit = PlanResultCap(options, results.size());

      if (query.plans[p].query.steps.empty()) {
        size_t taken = 0;
        EvaluateSingleObjectPlan(
            query, p,
            [&](const std::vector<storage::ObjectId>& objs) {
              results.push_back(present::Mtton{static_cast<int>(p), objs,
                                               query.ctssns[p].cn_size});
              return ++taken < limit;
            },
            &per_plan_stats[p]);
        budget.OnPlanComplete(p, rows_scanned(), elapsed_ns());
        stream_plan_done(p);
        continue;
      }

      PlanLayout layout(&query.plans[p], options.enable_semijoin_pruning,
                        bloom_cache_ptr, &per_plan_stats[p]);
      opt::SubplanCache::SubplanPtr prefix = acquire_prefix(p, layout);
      if (pool == nullptr) {
        pool = std::make_unique<ThreadPool>(options.intra_plan_threads);
      }
      std::shared_ptr<RowGate> gate = budget.MakeRowGate();
      RunPlanMorsels(layout, query, options, exec_options, p, limit, pool.get(),
                     &results, &per_plan_stats[p], prefix.get(), gate.get());
      release_prefix(p);
      if (stop_requested() || (gate != nullptr && gate->Exhausted())) {
        budget.OnPlanInterrupted(p);
      } else {
        budget.OnPlanComplete(p, rows_scanned(), elapsed_ns());
      }
      stream_plan_done(p);
    }
  } else {
    std::mutex mutex;
    std::atomic<bool> global_stop{false};

    auto run_plan = [&](size_t p) {
      // Order matters for the coverage ledger: a global-k stop leaves the
      // plan to MarkUnreachedComplete below (the answer needs nothing from
      // it); a deadline/cancel stop leaves it "skipped".
      if (global_stop.load(std::memory_order_relaxed)) return;
      if (stop_requested()) return;
      if (skip_plan(p)) return;
      if (!budget.AdmitPlan(p)) {  // skip whole CN, try the next
        std::lock_guard<std::mutex> lock(mutex);
        stream_plan_done(p);
        return;
      }
      Stopwatch plan_timer;
      const uint64_t rows_before = per_plan_stats[p].probes.rows_scanned;
      auto rows_scanned = [&] {
        return per_plan_stats[p].probes.rows_scanned - rows_before;
      };
      auto elapsed_ns = [&] {
        return static_cast<uint64_t>(plan_timer.ElapsedMicros()) * 1000;
      };
      size_t local_count = 0;
      auto emit = [&](const std::vector<storage::ObjectId>& objs) {
        std::lock_guard<std::mutex> lock(mutex);
        results.push_back(present::Mtton{static_cast<int>(p), objs,
                                         query.ctssns[p].cn_size});
        ++local_count;
        if (options.global_k != 0 && results.size() >= options.global_k) {
          global_stop.store(true, std::memory_order_relaxed);
          return false;
        }
        return local_count < options.per_network_k &&
               !global_stop.load(std::memory_order_relaxed);
      };

      if (query.plans[p].query.steps.empty()) {
        EvaluateSingleObjectPlan(query, p, emit, &per_plan_stats[p]);
        budget.OnPlanComplete(p, rows_scanned(), elapsed_ns());
        std::lock_guard<std::mutex> lock(mutex);
        stream_plan_done(p);
        return;
      }
      PlanLayout layout(&query.plans[p], options.enable_semijoin_pruning,
                        bloom_cache_ptr, &per_plan_stats[p]);
      opt::SubplanCache::SubplanPtr prefix = acquire_prefix(p, layout);
      std::shared_ptr<RowGate> gate = budget.MakeRowGate();
      PlanEvaluator evaluator(&layout, exec_options, options.enable_cache,
                              options.cache_capacity);
      evaluator.set_row_gate(gate.get());
      if (prefix != nullptr) {
        evaluator.RunReplay(*prefix, 0, prefix->num_rows(), emit);
      } else {
        evaluator.Run(emit);
      }
      per_plan_stats[p].Add(evaluator.stats());
      release_prefix(p);
      // A sink decline (per-network-k / global-k) is a complete outcome; only
      // a deadline/cancel trip or a dry row gate marks the plan interrupted.
      if (stop_requested() || (gate != nullptr && gate->Exhausted())) {
        budget.OnPlanInterrupted(p);
      } else {
        budget.OnPlanComplete(p, rows_scanned(), elapsed_ns());
      }
      std::lock_guard<std::mutex> lock(mutex);
      stream_plan_done(p);
    };

    if (options.num_threads <= 1 || query.plans.size() <= 1) {
      for (size_t p : order) run_plan(p);
    } else {
      ThreadPool pool(options.num_threads);
      for (size_t p : order) {
        pool.Submit([&run_plan, p] { run_plan(p); });
      }
      pool.Wait();
    }
    if (global_stop.load(std::memory_order_relaxed) && !stop_requested()) {
      budget.MarkUnreachedComplete();
    }
  }

  SortMttons(&results);
  if (options.global_k != 0 && results.size() > options.global_k) {
    results.resize(options.global_k);
  }
  if (coverage != nullptr) *coverage = budget.Finish();
  if (stats != nullptr) {
    for (const ExecutionStats& s : per_plan_stats) stats->Add(s);
    if (subplan_cache != nullptr) {
      const opt::SubplanCacheStats cs = subplan_cache->stats();
      stats->subplan_hits += cs.hits;
      stats->subplan_misses += cs.misses;
      stats->subplan_bytes =
          std::max(stats->subplan_bytes, static_cast<uint64_t>(cs.bytes_peak));
      stats->dedup_saved_rows += cs.dedup_saved_rows;
    }
    stats->results = results.size();
  }
  return results;
}

}  // namespace xk::engine
