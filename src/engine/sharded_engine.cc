#include "engine/sharded_engine.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <iterator>
#include <limits>
#include <mutex>
#include <string>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "engine/full_executor.h"
#include "engine/progress_budget.h"
#include "engine/thread_pool.h"
#include "engine/topk_executor.h"
#include "opt/plan_dag.h"
#include "opt/reuse.h"

namespace xk::engine {

namespace {

/// Contiguous [begin, end) slice-index groups: `groups` (clamped to
/// num_slices) ranges of nearly equal size, in slice order. Slice ranges are
/// themselves contiguous ascending ID ranges, so each group owns one
/// contiguous ID range too.
std::vector<std::pair<size_t, size_t>> SliceGroups(size_t num_slices,
                                                   int groups) {
  const size_t g =
      std::min<size_t>(std::max(groups, 1), num_slices == 0 ? 1 : num_slices);
  std::vector<std::pair<size_t, size_t>> out;
  out.reserve(g);
  const size_t base = num_slices / g;
  const size_t rem = num_slices % g;
  size_t begin = 0;
  for (size_t i = 0; i < g; ++i) {
    const size_t len = base + (i < rem ? 1 : 0);
    out.emplace_back(begin, begin + len);
    begin += len;
  }
  return out;
}

/// The global k-th-position watermark one plan's scatter tasks share.
/// Positions are step-0 driver row ids of the global relation: globally
/// unique per driver row, owned by exactly one shard task, and evaluated in
/// ascending order within each task — so the serial result order is exactly
/// (position, emission order within the row). Every published result pushes
/// its position (with multiplicity); the bound is the k-th smallest published
/// position once k results exist. Published results are a subset of the
/// plan's full result stream, so the bound only ever overestimates the final
/// k-th position: a row at position >= bound already has `limit` results
/// strictly preceding it in serial order and can never reach the top k.
class ShardBoundWatermark {
 public:
  explicit ShardBoundWatermark(size_t limit) : limit_(limit) {}

  void Publish(uint64_t position) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (heap_.size() < limit_) {
      heap_.push_back(position);
      std::push_heap(heap_.begin(), heap_.end());
      if (heap_.size() == limit_) {
        bound_.store(heap_.front(), std::memory_order_release);
      }
    } else if (position < heap_.front()) {
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.back() = position;
      std::push_heap(heap_.begin(), heap_.end());
      bound_.store(heap_.front(), std::memory_order_release);
    }
  }

  /// Whether a result at `position` can no longer enter the top `limit`.
  bool Prunes(uint64_t position) const {
    return position >= bound_.load(std::memory_order_acquire);
  }

 private:
  const size_t limit_;
  std::mutex mutex_;
  std::vector<uint64_t> heap_;  // max-heap of the `limit_` smallest positions
  std::atomic<uint64_t> bound_{std::numeric_limits<uint64_t>::max()};
};

/// One scatter task's output: position-tagged results plus local counters.
struct ShardTaskOut {
  std::vector<std::pair<storage::RowId, std::vector<storage::ObjectId>>> rows;
  ExecutionStats stats;
  uint64_t prunes = 0;       // driver rows skipped via the watermark
  bool early_stop = false;   // stopped before exhausting the driver slice
  /// Distinguishes a deadline/cancel/row-gate stop (the task's results are
  /// incomplete) from the benign early stops above (local cap or watermark
  /// prune — subsets the serial run discards anyway).
  bool interrupted = false;
};

/// Evaluates one plan's continuations for the driver rows owned by the slice
/// group [group.first, group.second), tagging each result with its global
/// driver-row position. Stops early on the local result cap, on the pushed-
/// down watermark, or on cancellation.
void RunShardTask(const std::vector<std::unique_ptr<ShardLocalEngine>>& shards,
                  std::pair<size_t, size_t> group, const PlanLayout& layout,
                  const QueryOptions& options,
                  const exec::ExecOptions& exec_options, size_t limit,
                  bool pushdown, ShardBoundWatermark* watermark, RowGate* gate,
                  ShardTaskOut* out) {
  // This group's driver rows, ascending in global row coordinates. Each
  // member list is ascending, but members interleave in row order when the
  // table is not clustered on the anchor, so a multi-member union re-sorts
  // (row ids are unique across members — ranges are disjoint).
  std::vector<storage::RowId> driver;
  for (size_t s = group.first; s < group.second; ++s) {
    std::vector<storage::RowId> part =
        shards[s]->DriverMatches(layout, exec_options, &out->stats);
    if (driver.empty()) {
      driver = std::move(part);
    } else {
      driver.insert(driver.end(), part.begin(), part.end());
    }
  }
  if (group.second - group.first > 1) std::sort(driver.begin(), driver.end());

  const CancelToken* cancel = exec_options.cancel;
  PlanEvaluator evaluator(&layout, exec_options, options.enable_cache,
                          options.cache_capacity);
  evaluator.set_row_gate(gate);  // shared across this plan's shard tasks
  size_t taken = 0;
  evaluator.RunDriverRows(
      driver,
      [&](size_t i) {
        if (cancel != nullptr && cancel->StopRequested()) {
          out->early_stop = true;
          out->interrupted = true;
          return false;
        }
        if (taken >= limit) {
          out->early_stop = true;
          return false;
        }
        if (pushdown && watermark->Prunes(driver[i])) {
          out->prunes = driver.size() - i;
          out->early_stop = true;
          return false;
        }
        return true;
      },
      [&](size_t i, const std::vector<storage::ObjectId>& objs) {
        out->rows.emplace_back(driver[i], objs);
        ++taken;
        if (pushdown) watermark->Publish(driver[i]);
        if (taken >= limit || (pushdown && watermark->Prunes(driver[i]))) {
          if (i + 1 < driver.size()) {
            if (taken < limit) out->prunes = driver.size() - i - 1;
            out->early_stop = true;
          }
          return false;
        }
        return true;
      });
  out->stats.Add(evaluator.stats());
  // A cancel or dry row gate can also unwind inside the evaluator, where the
  // gate lambda never sees it.
  if ((cancel != nullptr && cancel->StopRequested()) ||
      (gate != nullptr && gate->Exhausted())) {
    out->interrupted = true;
  }
}

}  // namespace

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::Load(
    const xml::XmlGraph* graph, const schema::SchemaGraph* schema,
    const schema::TssGraph* tss, ShardedEngineOptions options) {
  XK_ASSIGN_OR_RETURN(std::unique_ptr<XKeyword> inner,
                      XKeyword::Load(graph, schema, tss));
  const storage::ObjectId num_objects = inner->data().objects.NumObjects();
  storage::ObjectId slices = std::max(options.num_slices, 1);
  slices = std::max<storage::ObjectId>(
      1, std::min<storage::ObjectId>(slices, num_objects));

  std::vector<std::unique_ptr<ShardLocalEngine>> shards;
  std::vector<SlicedShard*> sliced;
  if (slices == 1) {
    shards.push_back(std::make_unique<WholeInstanceShard>(&inner->data()));
  } else {
    const storage::ObjectId base = num_objects / slices;
    const storage::ObjectId rem = num_objects % slices;
    storage::ObjectId begin = 0;
    for (storage::ObjectId s = 0; s < slices; ++s) {
      const storage::ObjectId len = base + (s < rem ? 1 : 0);
      auto shard = std::make_unique<SlicedShard>(
          &inner->data(), ShardRange{begin, begin + len});
      begin += len;
      sliced.push_back(shard.get());
      shards.push_back(std::move(shard));
    }
    XK_CHECK_EQ(begin, num_objects);
    // Slice any tables that predate the shards (none through the regular load
    // stage today — connection relations only appear with decompositions —
    // but a future bulk-load path must not silently skip them).
    for (const std::string& name : inner->catalog().TableNames()) {
      XK_ASSIGN_OR_RETURN(const storage::Table* table,
                          inner->catalog().GetTable(name));
      for (SlicedShard* shard : sliced) {
        XK_RETURN_NOT_OK(shard->AddTableSlice(table));
      }
    }
  }
  return std::unique_ptr<ShardedEngine>(new ShardedEngine(
      std::move(inner), std::move(shards), std::move(sliced)));
}

Status ShardedEngine::AddDecomposition(decomp::Decomposition d) {
  std::vector<std::string> before = inner_->catalog().TableNames();
  std::unordered_set<std::string> had(before.begin(), before.end());
  XK_RETURN_NOT_OK(inner_->AddDecomposition(std::move(d)));
  for (const std::string& name : inner_->catalog().TableNames()) {
    if (had.contains(name)) continue;
    XK_ASSIGN_OR_RETURN(const storage::Table* table,
                        inner_->catalog().GetTable(name));
    for (SlicedShard* shard : sliced_) {
      XK_RETURN_NOT_OK(shard->AddTableSlice(table));
    }
  }
  return Status::OK();
}

size_t ShardedEngine::ShardMemoryBytes() const {
  size_t bytes = 0;
  for (const auto& shard : shards_) bytes += shard->MemoryBytes();
  return bytes;
}

Result<QueryResponse> ShardedEngine::Run(const QueryRequest& request,
                                         CancelToken* token,
                                         ResultSink* sink) const {
  // Degenerate cases run the inner engine unchanged: a single shard group is
  // by definition the whole instance, and the naive executor exists to model
  // the unoptimized baseline, which sharding would misrepresent.
  if (request.options.num_shards <= 1 || request.mode == QueryMode::kNaive) {
    return inner_->Run(request, token, sink);
  }
  // The scattered paths merge per-shard streams in the gather stage and
  // cannot prove finalized prefixes mid-flight; the sink stays unused and
  // the whole answer rides the response.
  (void)sink;

  CancelToken local_token;
  CancelToken* tok = token != nullptr ? token : &local_token;
  if (request.deadline.count() > 0 && !tok->has_deadline()) {
    tok->SetDeadlineAfter(request.deadline);
  }

  QueryOptions options = request.options;
  options.cancel = tok;
  XK_ASSIGN_OR_RETURN(PreparedQuery q, inner_->Prepare(request.keywords,
                                                       request.decomposition,
                                                       options));

  QueryResponse response;
  if (tok->StopRequested()) {
    // The budget ran out during preparation: nothing was covered at all.
    response.status = tok->ToStatus();
    response.completeness = Completeness::kFailed;
    response.coverage.cns_skipped = static_cast<uint32_t>(q.plans.size());
    response.coverage.interrupted = true;
    return response;
  }

  const int groups =
      std::min<int>(options.num_shards, static_cast<int>(shards_.size()));
  switch (request.mode) {
    case QueryMode::kTopK:
      RunShardedTopK(q, options, groups, &response);
      break;
    case QueryMode::kAll:
      RunShardedAll(q, options, groups, &response);
      break;
    case QueryMode::kNaive:
      XK_CHECK(false);  // delegated above
      break;
  }
  if (tok->StopRequested()) {
    response.status = tok->ToStatus();
    // Conservative: the trip may have landed after the coordinator's last
    // poll — never report kComplete alongside a non-OK status.
    response.coverage.interrupted = true;
  }
  response.completeness =
      DeriveCompleteness(response.coverage, !response.mttons.empty());
  return response;
}

void ShardedEngine::RunShardedTopK(const PreparedQuery& query,
                                   const QueryOptions& options, int groups,
                                   QueryResponse* response) const {
  std::vector<present::Mtton> results;
  std::vector<ExecutionStats> per_plan_stats(query.plans.size());
  BloomCache bloom_cache;
  BloomCache* bloom_cache_ptr =
      options.enable_semijoin_pruning ? &bloom_cache : nullptr;

  const CancelToken* cancel = options.cancel;
  exec::ExecOptions exec_options = query.exec_options;
  exec_options.cancel = cancel;
  exec_options.vectorized = options.vectorized;
  exec_options.force_scalar_kernels =
      options.kernel_dispatch == KernelDispatch::kForceScalar;

  auto skip_plan = [&](size_t p) {
    return options.max_network_size > 0 &&
           query.ctssns[p].tree.size() > options.max_network_size;
  };
  auto stop_requested = [&] {
    return cancel != nullptr && cancel->StopRequested();
  };

  // Same plan-DAG schedule as the single-engine executor — the order plans
  // consume the global_k budget in is part of the output contract. Subplan
  // memoization itself is not used here (it never changes results; the
  // scatter stage replays driver rows instead).
  std::vector<bool> active(query.plans.size());
  for (size_t p = 0; p < query.plans.size(); ++p) active[p] = !skip_plan(p);
  opt::PlanDagOptions dag_options;
  dag_options.cost_ordered = options.cost_ordered_scheduling;
  dag_options.share_subplans = options.enable_subplan_reuse;
  const opt::PlanDag dag = opt::BuildPlanDag(query.plans, active, dag_options);

  // Anytime budget: admission runs on the gather coordinator in schedule
  // order — serially, exactly like the single-engine executor — so the
  // admitted plan set (and thus the coverage bound) matches num_shards = 1.
  // In wall-clock mode the per-plan row allowance is one gate shared by the
  // plan's shard tasks.
  ProgressBudget budget(query, active, options);
  budget.PreAdmit(dag.schedule);

  const std::vector<std::pair<size_t, size_t>> slice_groups =
      SliceGroups(shards_.size(), groups);
  const int pool_threads = options.shard_parallelism > 0
                               ? options.shard_parallelism
                               : static_cast<int>(slice_groups.size());
  std::unique_ptr<ThreadPool> pool;

  for (size_t p : dag.schedule) {
    if (stop_requested()) break;  // unvisited plans stay "skipped"
    if (skip_plan(p)) continue;
    if (options.global_k != 0 && results.size() >= options.global_k) {
      budget.MarkUnreachedComplete();
      break;
    }
    if (!budget.AdmitPlan(p)) continue;  // skip whole CN, try the next
    Stopwatch plan_timer;
    const uint64_t rows_before = per_plan_stats[p].probes.rows_scanned;
    auto rows_scanned = [&] {
      return per_plan_stats[p].probes.rows_scanned - rows_before;
    };
    auto elapsed_ns = [&] {
      return static_cast<uint64_t>(plan_timer.ElapsedMicros()) * 1000;
    };
    const size_t limit = PlanResultCap(options, results.size());
    const int score = query.ctssns[p].cn_size;

    if (query.plans[p].query.steps.empty()) {
      // Single-object networks intersect global posting lists — trivial work
      // with no join fan-out, evaluated on the gather coordinator.
      size_t taken = 0;
      EvaluateSingleObjectPlan(
          query, p,
          [&](const std::vector<storage::ObjectId>& objs) {
            results.push_back(
                present::Mtton{static_cast<int>(p), objs, score});
            return ++taken < limit;
          },
          &per_plan_stats[p]);
      budget.OnPlanComplete(p, rows_scanned(), elapsed_ns());
      continue;
    }

    PlanLayout layout(&query.plans[p], options.enable_semijoin_pruning,
                      bloom_cache_ptr, &per_plan_stats[p]);
    ShardBoundWatermark watermark(limit);
    std::shared_ptr<RowGate> gate = budget.MakeRowGate();
    std::vector<ShardTaskOut> outs(slice_groups.size());
    if (slice_groups.size() == 1) {
      RunShardTask(shards_, slice_groups[0], layout, options, exec_options,
                   limit, options.shard_bound_pushdown, &watermark, gate.get(),
                   &outs[0]);
    } else {
      if (pool == nullptr) pool = std::make_unique<ThreadPool>(pool_threads);
      for (size_t g = 0; g < slice_groups.size(); ++g) {
        pool->Submit([&, g] {
          RunShardTask(shards_, slice_groups[g], layout, options, exec_options,
                       limit, options.shard_bound_pushdown, &watermark,
                       gate.get(), &outs[g]);
        });
      }
      pool->WaitIdle();
    }

    // Gather: ascending global driver position reconstructs the serial
    // enumeration order (stable sort — results of one position live in one
    // task and stay in emission order); the first `limit` results are the
    // serial prefix the single engine would keep.
    per_plan_stats[p].shard_fanout += slice_groups.size();
    bool interrupted = false;
    size_t total = 0;
    for (const ShardTaskOut& o : outs) total += o.rows.size();
    std::vector<std::pair<storage::RowId, std::vector<storage::ObjectId>>>
        collected;
    collected.reserve(total);
    for (ShardTaskOut& o : outs) {
      for (auto& row : o.rows) collected.push_back(std::move(row));
      per_plan_stats[p].Add(o.stats);
      per_plan_stats[p].shard_bound_prunes += o.prunes;
      if (o.early_stop) ++per_plan_stats[p].shard_early_stops;
      if (o.interrupted) interrupted = true;
    }
    std::stable_sort(collected.begin(), collected.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    const size_t take = std::min(limit, collected.size());
    for (size_t i = 0; i < take; ++i) {
      results.push_back(present::Mtton{static_cast<int>(p),
                                       std::move(collected[i].second), score});
    }
    // The plan is only as complete as its weakest shard task.
    if (interrupted || stop_requested()) {
      budget.OnPlanInterrupted(p);
    } else {
      budget.OnPlanComplete(p, rows_scanned(), elapsed_ns());
    }
  }

  SortMttons(&results);
  if (options.global_k != 0 && results.size() > options.global_k) {
    results.resize(options.global_k);
  }
  for (const ExecutionStats& s : per_plan_stats) response->stats.Add(s);
  response->stats.results = results.size();
  response->stats.simd_isa = static_cast<uint32_t>(
      simd::KernelLevel(exec_options.force_scalar_kernels));
  response->mttons = std::move(results);
  response->coverage = budget.Finish();
}

void ShardedEngine::RunShardedAll(const PreparedQuery& query,
                                  const QueryOptions& options, int groups,
                                  QueryResponse* response) const {
  std::vector<present::Mtton> results;
  ExecutionStats* stats = &response->stats;
  const CancelToken* cancel = options.cancel;
  exec::ExecOptions exec_options = query.exec_options;
  exec_options.cancel = cancel;

  auto stop_requested = [&] {
    return cancel != nullptr && cancel->StopRequested();
  };

  // Outcome ledger only, like FullExecutor: kAll is never budgeted, but a
  // deadline/cancel trip still yields an honest coverage report.
  std::vector<bool> active(query.plans.size(), false);
  for (size_t p = 0; p < query.plans.size(); ++p) {
    active[p] = options.max_network_size <= 0 ||
                query.ctssns[p].tree.size() <=
                    static_cast<size_t>(options.max_network_size);
  }
  QueryOptions ledger_options = options;
  ledger_options.enable_anytime = false;
  ProgressBudget ledger(query, active, ledger_options);

  // Keyword-filtered scans of the probe steps (>= 1) are whole-instance state
  // shared by every shard task, computed once per distinct step signature
  // (scan reuse is always on here — the cache also keeps the scans alive for
  // the tasks). Step 0 is shard-private: each task scans the slice rows it
  // owns, so the task outputs partition the full result multiset, and the
  // final total-order sort makes the union byte-identical to the single
  // engine. Always a hash join: the INLJ path enumerates the same multiset
  // in a different order, which the sort erases anyway.
  opt::MaterializedViewCache view_cache;
  const std::vector<std::pair<size_t, size_t>> slice_groups =
      SliceGroups(shards_.size(), groups);
  const int pool_threads = options.shard_parallelism > 0
                               ? options.shard_parallelism
                               : static_cast<int>(slice_groups.size());
  std::unique_ptr<ThreadPool> pool;

  for (size_t p = 0; p < query.plans.size(); ++p) {
    if (stop_requested()) break;  // unvisited plans stay "skipped"
    const opt::CtssnPlan& plan = query.plans[p];
    if (!active[p]) continue;
    const int score = query.ctssns[p].cn_size;

    if (plan.query.steps.empty()) {
      EvaluateSingleObjectPlan(
          query, p,
          [&](const std::vector<storage::ObjectId>& objs) {
            results.push_back(
                present::Mtton{static_cast<int>(p), objs, score});
            return true;
          },
          stats);
      ledger.OnPlanComplete(p, 0, 0);
      continue;
    }

    const size_t num_steps = plan.query.steps.size();
    std::vector<const std::vector<storage::Tuple>*> shared(num_steps, nullptr);
    for (size_t i = 1; i < num_steps; ++i) {
      const std::string& sig = plan.step_signatures[i];
      const std::vector<storage::Tuple>* scan = view_cache.Get(sig);
      if (scan == nullptr) {
        scan = view_cache.Put(
            sig, FilteredScanTuples(*plan.query.steps[i].table,
                                    plan.query.steps[i], stats));
      }
      shared[i] = scan;
    }

    std::vector<std::vector<present::Mtton>> outs(slice_groups.size());
    std::vector<ExecutionStats> task_stats(slice_groups.size());
    auto task = [&, p, score](size_t g) {
      std::vector<storage::Tuple> anchor;
      for (size_t s = slice_groups[g].first; s < slice_groups[g].second; ++s) {
        std::vector<storage::Tuple> part =
            shards_[s]->AnchorScan(plan.query.steps[0], &task_stats[g]);
        if (anchor.empty()) {
          anchor = std::move(part);
        } else {
          anchor.insert(anchor.end(), std::make_move_iterator(part.begin()),
                        std::make_move_iterator(part.end()));
        }
      }
      std::vector<const std::vector<storage::Tuple>*> scans = shared;
      scans[0] = &anchor;
      RunHashJoinOnScans(plan, scans, exec_options, &task_stats[g],
                         [&](const std::vector<storage::ObjectId>& objs) {
                           outs[g].push_back(present::Mtton{
                               static_cast<int>(p), objs, score});
                           return true;
                         });
    };
    if (slice_groups.size() == 1) {
      task(0);
    } else {
      if (pool == nullptr) pool = std::make_unique<ThreadPool>(pool_threads);
      for (size_t g = 0; g < slice_groups.size(); ++g) {
        pool->Submit([&task, g] { task(g); });
      }
      pool->WaitIdle();
    }

    stats->shard_fanout += slice_groups.size();
    for (size_t g = 0; g < slice_groups.size(); ++g) {
      stats->Add(task_stats[g]);
      results.insert(results.end(),
                     std::make_move_iterator(outs[g].begin()),
                     std::make_move_iterator(outs[g].end()));
    }
    // A stop observed right after the scatter may have landed mid-task:
    // report the plan as interrupted, never as complete.
    if (stop_requested()) {
      ledger.OnPlanInterrupted(p);
    } else {
      ledger.OnPlanComplete(p, 0, 0);
    }
  }

  SortMttons(&results);
  stats->results = results.size();
  stats->simd_isa = static_cast<uint32_t>(
      simd::KernelLevel(exec_options.force_scalar_kernels));
  stats->reuse_hits += view_cache.hits();
  stats->reuse_misses += view_cache.misses();
  response->mttons = std::move(results);
  response->coverage = ledger.Finish();
}

}  // namespace xk::engine
