// Copyright (c) the XKeyword authors.
//
// The unified query API: one QueryRequest describes everything about a
// keyword query — keywords, target decomposition, execution mode, per-query
// wall-clock deadline, and knobs — and one QueryResponse carries everything
// back: the MTTON list, execution statistics, and whether the result list
// was truncated by a deadline or cancellation.
//
// XKeyword::Run serves a request synchronously; service::QueryService
// serves them concurrently with admission control (Submit returning a
// joinable QueryHandle). The legacy per-mode entry points
// (TopK/TopKNaive/AllResults) are thin wrappers over this API and are kept
// for source compatibility only.

#ifndef XK_ENGINE_QUERY_REQUEST_H_
#define XK_ENGINE_QUERY_REQUEST_H_

#include <chrono>
#include <string>
#include <vector>

#include "engine/full_executor.h"
#include "engine/query_context.h"
#include "present/mtton.h"

namespace xk::engine {

/// Which executor serves the request (the paper's three execution modes).
enum class QueryMode {
  kTopK = 0,   // optimized caching executor (Section 6)
  kNaive = 1,  // DISCOVER/DBXplorer-style baseline, cacheless + serial
  kAll = 2,    // complete result list (Figure 4(b) presentation)
};

inline const char* QueryModeToString(QueryMode mode) {
  switch (mode) {
    case QueryMode::kTopK: return "topk";
    case QueryMode::kNaive: return "naive";
    case QueryMode::kAll: return "all";
  }
  return "?";
}

/// How a request interacts with the serving layer's whole-answer cache
/// (service::AnswerCache). Ignored by the synchronous XKeyword::Run path,
/// which never caches.
enum class CacheMode {
  /// Serve from the cache when a fresh answer exists; otherwise execute and
  /// cache the result. Identical concurrent requests coalesce onto one
  /// execution.
  kDefault = 0,
  /// Never read or write the cache, and never coalesce: always a private
  /// execution (load tests, debugging).
  kBypass = 1,
  /// Skip the cache read but execute and overwrite the cached answer
  /// (forced recompute). Still coalesces with identical in-flight requests.
  kRefresh = 2,
};

inline const char* CacheModeToString(CacheMode mode) {
  switch (mode) {
    case CacheMode::kDefault: return "default";
    case CacheMode::kBypass: return "bypass";
    case CacheMode::kRefresh: return "refresh";
  }
  return "?";
}

/// One keyword query, self-contained.
struct QueryRequest {
  std::vector<std::string> keywords;
  /// Name of a materialized decomposition (XKeyword::AddDecomposition).
  std::string decomposition;
  QueryMode mode = QueryMode::kTopK;

  /// Wall-clock budget for the whole query (preparation + execution). Zero
  /// or negative = unbounded. When it runs out the query stops cooperatively
  /// and the response carries kDeadlineExceeded plus whatever results and
  /// statistics were complete. Under QueryService the budget starts at
  /// admission, so queue wait counts against it.
  std::chrono::nanoseconds deadline{0};

  QueryOptions options;
  /// Extra knobs of the kAll mode (ignored otherwise).
  FullExecutorOptions full_options;

  /// Answer-cache interaction under service::QueryService (see CacheMode).
  CacheMode cache_mode = CacheMode::kDefault;
};

/// The outcome of a served request.
struct QueryResponse {
  /// OK for a complete answer; kDeadlineExceeded / kCancelled when execution
  /// stopped early (results and stats are then partial). Hard failures —
  /// unknown decomposition, invalid options — surface as the error of the
  /// surrounding Result instead, with no response at all.
  Status status;
  std::vector<present::Mtton> mttons;
  /// Probe/cache/bloom counters of this query; partial counts survive a
  /// deadline or cancellation.
  ExecutionStats stats;
  /// True iff execution stopped before the full answer was enumerated.
  bool truncated = false;
};

}  // namespace xk::engine

#endif  // XK_ENGINE_QUERY_REQUEST_H_
