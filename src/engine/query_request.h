// Copyright (c) the XKeyword authors.
//
// The unified query API: one QueryRequest describes everything about a
// keyword query — keywords, target decomposition, execution mode, per-query
// wall-clock deadline, and one knob struct — and one QueryResponse carries
// everything back: the MTTON list, execution statistics, and a structured
// quality statement (Completeness + Coverage) saying exactly how much of the
// answer space the result covers when a deadline or anytime budget stopped
// execution early.
//
// XKeyword::Run serves a request synchronously; service::QueryService
// serves them concurrently with admission control (Submit returning a
// joinable QueryHandle).

#ifndef XK_ENGINE_QUERY_REQUEST_H_
#define XK_ENGINE_QUERY_REQUEST_H_

#include <chrono>
#include <string>
#include <vector>

#include "engine/query_context.h"
#include "present/mtton.h"

namespace xk::engine {

/// Which executor serves the request (the paper's three execution modes).
enum class QueryMode {
  kTopK = 0,   // optimized caching executor (Section 6)
  kNaive = 1,  // DISCOVER/DBXplorer-style baseline, cacheless + serial
  kAll = 2,    // complete result list (Figure 4(b) presentation)
};

inline const char* QueryModeToString(QueryMode mode) {
  switch (mode) {
    case QueryMode::kTopK: return "topk";
    case QueryMode::kNaive: return "naive";
    case QueryMode::kAll: return "all";
  }
  return "?";
}

/// How a request interacts with the serving layer's whole-answer cache
/// (service::AnswerCache). Ignored by the synchronous XKeyword::Run path,
/// which never caches.
enum class CacheMode {
  /// Serve from the cache when a fresh answer exists; otherwise execute and
  /// cache the result. Identical concurrent requests coalesce onto one
  /// execution.
  kDefault = 0,
  /// Never read or write the cache, and never coalesce: always a private
  /// execution (load tests, debugging).
  kBypass = 1,
  /// Skip the cache read but execute and overwrite the cached answer
  /// (forced recompute). Still coalesces with identical in-flight requests.
  kRefresh = 2,
};

inline const char* CacheModeToString(CacheMode mode) {
  switch (mode) {
    case CacheMode::kDefault: return "default";
    case CacheMode::kBypass: return "bypass";
    case CacheMode::kRefresh: return "refresh";
  }
  return "?";
}

/// One keyword query, self-contained.
struct QueryRequest {
  std::vector<std::string> keywords;
  /// Name of a materialized decomposition (XKeyword::AddDecomposition).
  std::string decomposition;
  QueryMode mode = QueryMode::kTopK;

  /// Wall-clock budget for the whole query (preparation + execution). Zero
  /// or negative = unbounded. When it runs out the query stops cooperatively
  /// and the response carries kDeadlineExceeded plus whatever results and
  /// statistics were complete. Under QueryService the budget starts at
  /// admission, so queue wait counts against it. With
  /// options.enable_anytime the deadline additionally drives whole-CN budget
  /// decisions (see QueryOptions) instead of only truncating.
  std::chrono::nanoseconds deadline{0};

  /// Every knob of the request — execution, sharding, full-result mode, and
  /// the anytime budget — in one struct (QueryOptions::Validate covers it).
  QueryOptions options;

  /// Answer-cache interaction under service::QueryService (see CacheMode).
  CacheMode cache_mode = CacheMode::kDefault;
};

/// How much of the full answer a response represents.
enum class Completeness {
  /// Every active candidate network ran to completion: the answer is exactly
  /// what an unbounded run would return.
  kComplete = 0,
  /// Execution stopped early (deadline, cancel, or anytime budget) but the
  /// response carries usable partial coverage; `coverage` bounds the quality
  /// (the result prefix up to coverage.exhausted_class is provably correct).
  kDegraded = 1,
  /// Nothing usable was produced before the stop (e.g. the budget ran out
  /// during preparation).
  kFailed = 2,
};

inline const char* CompletenessToString(Completeness c) {
  switch (c) {
    case Completeness::kComplete: return "complete";
    case Completeness::kDegraded: return "degraded";
    case Completeness::kFailed: return "failed";
  }
  return "?";
}

/// The completeness a coverage summary implies for a response that carries
/// `has_results` MTTONs. Shared by every engine front-end.
inline Completeness DeriveCompleteness(const Coverage& coverage,
                                       bool has_results) {
  if (coverage.complete()) return Completeness::kComplete;
  if (has_results || coverage.cns_executed > 0) return Completeness::kDegraded;
  return Completeness::kFailed;
}

/// The outcome of a served request.
struct QueryResponse {
  /// OK for a complete answer (and for answers degraded only by the
  /// deterministic anytime cost budget); kDeadlineExceeded / kCancelled when
  /// the wall-clock stop tripped (results and stats are then partial). Hard
  /// failures — unknown decomposition, invalid options — surface as the
  /// error of the surrounding Result instead, with no response at all.
  Status status;
  std::vector<present::Mtton> mttons;
  /// Probe/cache/bloom counters of this query; partial counts survive a
  /// deadline or cancellation.
  ExecutionStats stats;
  /// Quality statement: branch on this, not on status, to decide whether the
  /// answer is the full answer.
  Completeness completeness = Completeness::kComplete;
  /// Structured quality bound backing `completeness` (CNs executed/skipped,
  /// the largest fully exhausted size class).
  Coverage coverage;
};

}  // namespace xk::engine

#endif  // XK_ENGINE_QUERY_REQUEST_H_
