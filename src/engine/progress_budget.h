// Copyright (c) the XKeyword authors.
//
// ProgressBudget: the anytime-execution ledger of one query. The cost-ordered
// plan-DAG schedule (opt::BuildPlanDag) runs candidate networks in
// nondecreasing size class, cheapest first inside a class; this ledger decides
// per plan whether the remaining budget affords running it at all — so a
// deadline skips whole CNs instead of truncating mid-CN — and records every
// plan's outcome so the response can report a sound quality bound
// (engine::Coverage).
//
// Two budget modes, combinable with plain deadline truncation:
//
//  * cost-budget (QueryOptions::anytime_cost_budget > 0) — admission charges
//    the optimizer's estimated_cost against a fixed budget in schedule order.
//    Fully deterministic (the expansion-budget idiom of real-time search:
//    spend a fixed number of "expansions" where they are cheapest), which
//    makes the coverage bound reproducible and provably monotone in the
//    budget. Decisions for the whole schedule are taken up front (PreAdmit),
//    so the multi-threaded plan pool sees the same admitted set as a serial
//    run.
//  * wall-clock (a deadline armed on the cancel token) — admission compares
//    each plan's predicted time (estimated_cost x an EWMA of observed
//    ns-per-cost-unit, scaled by anytime_headroom) against the remaining
//    deadline, re-calibrated as plans complete. Additionally converts the
//    remaining deadline into a per-plan scan-row allowance (RowGate) the
//    evaluators poll, so one mispredicted plan cannot eat the entire budget.
//
// Soundness of the reported bound: the schedule is nondecreasing in size
// class, so all plans of class <= exhausted_class precede the first deviation
// (skip or interruption) and executed byte-identically to an unbounded run.

#ifndef XK_ENGINE_PROGRESS_BUDGET_H_
#define XK_ENGINE_PROGRESS_BUDGET_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "engine/query_context.h"

namespace xk::engine {

/// Shared scan-row allowance of one plan's evaluators (serial, morsel shards,
/// or shard tasks). Thread-safe; consumption is approximate (evaluators batch
/// their reports), which only ever lets a plan slightly overrun.
class RowGate {
 public:
  explicit RowGate(uint64_t cap) : cap_(cap) {}

  bool Exhausted() const {
    return used_.load(std::memory_order_relaxed) >= cap_;
  }
  void Consume(uint64_t rows) {
    used_.fetch_add(rows, std::memory_order_relaxed);
  }
  uint64_t cap() const { return cap_; }
  uint64_t used() const { return used_.load(std::memory_order_relaxed); }

 private:
  const uint64_t cap_;
  std::atomic<uint64_t> used_{0};
};

class ProgressBudget {
 public:
  /// `active[p]` = plan p participates in this query (not size-capped).
  /// Budgeting engages only when `options.enable_anytime` and either a cost
  /// budget is set or a deadline is armed on `options.cancel`; otherwise the
  /// ledger only tracks outcomes (AdmitPlan always true, no row gates), so
  /// coverage is reported even for non-anytime runs.
  ProgressBudget(const PreparedQuery& query, const std::vector<bool>& active,
                 const QueryOptions& options);

  /// Cost-budget mode: takes every admission decision now, charging plans in
  /// `schedule` order, so the decision set is independent of execution
  /// interleaving. No-op in the other modes.
  void PreAdmit(const std::vector<size_t>& schedule);

  /// Whether plan `p` should run. False records the plan as skipped.
  /// Thread-safe; in cost-budget mode returns the PreAdmit decision.
  bool AdmitPlan(size_t p);

  /// Wall-clock mode, once calibrated: the scan-row allowance for a plan
  /// about to run, derived from the remaining deadline. Null = unlimited.
  std::shared_ptr<RowGate> MakeRowGate();

  /// Plan `p` ran to completion (including an emit-cap stop, which is
  /// semantically complete). `rows_scanned`/`elapsed_ns` feed the wall-clock
  /// calibration; pass 0 when unknown.
  void OnPlanComplete(size_t p, uint64_t rows_scanned, uint64_t elapsed_ns);
  /// Plan `p` stopped mid-execution (deadline, cancel, or row-gate trip).
  void OnPlanInterrupted(size_t p);

  /// The global-k bound was satisfied: every still-unvisited plan is
  /// semantically complete (the answer needs nothing from it).
  void MarkUnreachedComplete();

  /// Coverage summary over the active plans. Plans never visited (loop broke
  /// on a stop) count as skipped unless MarkUnreachedComplete ran.
  Coverage Finish() const;

 private:
  enum class Outcome : uint8_t {
    kNotReached = 0,
    kComplete,
    kInterrupted,
    kSkipped,
  };

  double PlanCost(size_t p) const;
  bool DeadlineAdmit(double cost);
  void Record(size_t p, Outcome outcome);

  const PreparedQuery* query_;
  std::vector<bool> active_;

  // Budget configuration (fixed at construction).
  bool cost_mode_ = false;
  bool deadline_mode_ = false;
  double cost_budget_ = 0;
  double headroom_ = 1.0;
  uint64_t min_plan_rows_ = 1;
  const CancelToken* cancel_ = nullptr;

  mutable std::mutex mutex_;
  std::vector<Outcome> outcomes_;
  std::vector<uint8_t> pre_admitted_;  // cost mode only; parallel to plans
  bool pre_admit_done_ = false;
  double spent_ = 0;
  bool any_admitted_ = false;
  // Wall-clock calibration from completed plans.
  bool calibrated_ = false;
  double ewma_ns_per_cost_ = 0;
  double ewma_ns_per_row_ = 0;
};

}  // namespace xk::engine

#endif  // XK_ENGINE_PROGRESS_BUDGET_H_
