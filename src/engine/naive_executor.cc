#include "engine/naive_executor.h"

#include <algorithm>
#include <numeric>

#include "engine/topk_executor.h"

namespace xk::engine {

Result<std::vector<present::Mtton>> NaiveExecutor::Run(const PreparedQuery& query,
                                                       const QueryOptions& options,
                                                       ExecutionStats* stats,
                                                       Coverage* coverage) {
  // The naive algorithm is exactly the optimized one with the partial-result
  // cache disabled and a single thread — every inner loop re-probes the
  // relations ("it may send the same queries multiple times", Section 6).
  QueryOptions naive = options;
  naive.enable_cache = false;
  naive.num_threads = 1;
  TopKExecutor executor;
  return executor.Run(query, naive, stats, coverage);
}

}  // namespace xk::engine
