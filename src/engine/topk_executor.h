// Copyright (c) the XKeyword authors.
//
// The optimized top-k execution algorithm of Section 6: one thread per
// candidate network (smallest first), nested-loops joins whose inner
// subtrees are memoized in a fixed-size cache keyed by their join bindings —
// "when evaluating CTSSN2 for t2, the innermost loop should not be executed
// since it will produce the same results as before". Disabling the cache
// yields the naive algorithm of DISCOVER/DBXplorer (see naive_executor.h).

#ifndef XK_ENGINE_TOPK_EXECUTOR_H_
#define XK_ENGINE_TOPK_EXECUTOR_H_

#include <functional>
#include <memory>

#include "common/lru_cache.h"
#include "engine/query_context.h"
#include "present/mtton.h"

namespace xk::engine {

/// Emit callback: a complete binding (object per CTSSN occurrence) of plan
/// `plan_index`. Return false to stop that plan's execution.
using MttonSink = std::function<bool(int plan_index,
                                     const std::vector<storage::ObjectId>& objects)>;

/// Evaluates one CTSSN plan by depth-first nested loops with optional
/// suffix memoization.
class PlanEvaluator {
 public:
  PlanEvaluator(const opt::CtssnPlan* plan, exec::ExecOptions exec_options,
                bool enable_cache, size_t cache_capacity);

  /// Runs to completion or until `emit` declines.
  /// `emit` receives the objects per CTSSN occurrence.
  void Run(const std::function<bool(const std::vector<storage::ObjectId>&)>& emit);

  const ExecutionStats& stats() const { return stats_; }

 private:
  struct Collector {
    size_t level;
    std::vector<std::vector<storage::ObjectId>> completions;
  };

  bool Eval(size_t i, std::vector<storage::TupleView>* rows,
            std::vector<storage::ObjectId>* objs,
            const std::function<bool(const std::vector<storage::ObjectId>&)>& emit);

  void ProjectToCollectors(const std::vector<storage::ObjectId>& objs);
  std::string CacheKey(size_t i, const std::vector<storage::TupleView>& rows) const;
  /// MTNNs are trees of distinct nodes: occurrences of one segment must bind
  /// distinct objects (checked per full assignment; cached suffixes cannot
  /// pre-check against future prefixes).
  bool DistinctAcrossSegments(const std::vector<storage::ObjectId>& objs) const;

  const opt::CtssnPlan* plan_;
  exec::ExecOptions exec_options_;
  bool enable_cache_;

  // Precomputed per step i: deps (earlier columns read by steps >= i),
  // CTSSN nodes first bound at step i, and nodes bound at steps >= i.
  std::vector<std::vector<exec::ColumnRef>> deps_;
  std::vector<std::vector<std::pair<int, int>>> nodes_at_;   // (ctssn node, col)
  std::vector<std::vector<int>> suffix_nodes_;

  // One cache per step level (level 0 has no dependencies, never cached).
  std::vector<std::unique_ptr<
      LruCache<std::string, std::vector<std::vector<storage::ObjectId>>>>>
      caches_;
  std::vector<Collector*> active_collectors_;
  /// Occurrence groups sharing a segment (only groups of size >= 2).
  std::vector<std::vector<int>> same_segment_groups_;
  ExecutionStats stats_;
};

/// Runs all plans of a prepared query with the thread pool, collecting up to
/// per_network_k results per network (and optionally global_k in total).
class TopKExecutor {
 public:
  TopKExecutor() = default;

  Result<std::vector<present::Mtton>> Run(const PreparedQuery& query,
                                          const QueryOptions& options,
                                          ExecutionStats* stats = nullptr);
};

/// Evaluates a single-object network (no joins): intersects the occurrence's
/// keyword filter sets and emits each object. Shared by all executors.
void EvaluateSingleObjectPlan(
    const PreparedQuery& query, size_t plan_index,
    const std::function<bool(const std::vector<storage::ObjectId>&)>& emit);

}  // namespace xk::engine

#endif  // XK_ENGINE_TOPK_EXECUTOR_H_
