// Copyright (c) the XKeyword authors.
//
// The optimized top-k execution algorithm of Section 6: nested-loops joins
// whose inner subtrees are memoized in a fixed-size cache keyed by their join
// bindings — "when evaluating CTSSN2 for t2, the innermost loop should not be
// executed since it will produce the same results as before". Disabling the
// cache yields the naive algorithm of DISCOVER/DBXplorer (naive_executor.h).
//
// Two parallelism axes:
//  * across plans — one thread per candidate network, smallest first
//    (the paper's thread pool);
//  * within a plan — morsel-driven: the step-0 driver matches are split into
//    fixed-size morsels fanned out over a work-stealing pool; each worker
//    evaluates the Eval(1, ...) continuation with worker-local suffix caches
//    and stats, and morsel outputs merge in driver order so results are
//    byte-identical to the serial path.
//
// Semi-join keyword pruning: per plan step, the keyword filter sets are
// intersected and the join columns later steps probe are summarized into
// Bloom filters, letting ForEachMatch reject dead-end partial assignments
// without touching the table.

#ifndef XK_ENGINE_TOPK_EXECUTOR_H_
#define XK_ENGINE_TOPK_EXECUTOR_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/lru_cache.h"
#include "engine/progress_budget.h"
#include "engine/query_context.h"
#include "engine/result_sink.h"
#include "exec/subplan_source.h"
#include "opt/plan_dag.h"
#include "opt/subplan_cache.h"
#include "present/mtton.h"

namespace xk::engine {

/// Emit callback: a complete binding (object per CTSSN occurrence) of plan
/// `plan_index`. Return false to stop that plan's execution.
using MttonSink = std::function<bool(int plan_index,
                                     const std::vector<storage::ObjectId>& objects)>;

/// Cache of semi-join Bloom filters shared across the plans of one query.
/// Keyed by (step signature, column): plans frequently share steps (same
/// relation + local keyword filters), so each filter is built — one filtered
/// scan — at most once per query. Thread-safe.
class BloomCache {
 public:
  /// The filter over `column` values of rows of `step.table` passing the
  /// step's local filters; built on first use. `build_stats` (nullable)
  /// receives the build scan's row count.
  const storage::BloomFilter* GetOrBuild(const exec::JoinStep& step,
                                         const std::string& signature, int column,
                                         ExecutionStats* build_stats);

 private:
  std::mutex mutex_;
  std::map<std::string, std::unique_ptr<storage::BloomFilter>> filters_;
};

/// Immutable per-plan precomputation shared by every evaluator shard of one
/// plan: step dependencies, occurrence bindings, same-segment groups, plus the
/// semi-join structures — per-step keyword filters intersected down to one set
/// per column, and per-step Bloom filters over the probed join columns.
class PlanLayout {
 public:
  /// `bloom_cache` may be null (disables pruning, as does
  /// `enable_semijoin_pruning = false`).
  PlanLayout(const opt::CtssnPlan* plan, bool enable_semijoin_pruning,
             BloomCache* bloom_cache, ExecutionStats* build_stats);

  const opt::CtssnPlan& plan() const { return *plan_; }
  /// Per-step prune filters, usable with exec::ForEachMatch or
  /// exec::NestedLoopExecutor::set_step_blooms.
  const std::vector<std::vector<exec::ColumnBloom>>& step_blooms() const {
    return step_blooms_;
  }
  /// Per-step keyword filters with same-column sets intersected.
  const std::vector<exec::ColumnInSet>& step_filters(size_t step) const {
    return step_filters_[step];
  }

 private:
  friend class PlanEvaluator;

  const opt::CtssnPlan* plan_;
  // Per step i: deps (earlier columns read by steps >= i), CTSSN nodes first
  // bound at step i, and nodes bound at steps >= i.
  std::vector<std::vector<exec::ColumnRef>> deps_;
  std::vector<std::vector<std::pair<int, int>>> nodes_at_;  // (ctssn node, col)
  std::vector<std::vector<int>> suffix_nodes_;
  /// Occurrence groups sharing a segment (only groups of size >= 2).
  std::vector<std::vector<int>> same_segment_groups_;
  std::vector<std::vector<exec::ColumnInSet>> step_filters_;
  std::deque<storage::IdSet> owned_sets_;  // stable storage for intersections
  std::vector<std::vector<exec::ColumnBloom>> step_blooms_;
};

/// Evaluates one CTSSN plan by depth-first nested loops with optional suffix
/// memoization. Not thread-safe: the morsel-driven path creates one evaluator
/// shard per pool worker (worker-local caches and stats) over a shared
/// PlanLayout.
class PlanEvaluator {
 public:
  PlanEvaluator(const PlanLayout* layout, exec::ExecOptions exec_options,
                bool enable_cache, size_t cache_capacity);

  /// Runs to completion or until `emit` declines.
  /// `emit` receives the objects per CTSSN occurrence.
  void Run(const std::function<bool(const std::vector<storage::ObjectId>&)>& emit);

  /// Evaluates the continuation of a morsel of step-0 driver row ids (as
  /// enumerated by EnumerateDriverMatches): binds each driver row, then runs
  /// the nested loops from step 1. Emission order within the morsel equals
  /// the serial order.
  void RunMorsel(std::span<const storage::RowId> driver_rows,
                 const std::function<bool(const std::vector<storage::ObjectId>&)>& emit);

  /// Like RunMorsel, but with per-driver-row hooks for callers that need to
  /// attribute results to rows or stop between rows: `gate(i)` (may be null)
  /// is consulted before driver_rows[i] is bound — returning false ends the
  /// run — and `emit` receives the span index of the driver row that produced
  /// each result. The sharded scatter stage uses the gate to poll the gather
  /// watermark and the index to tag results with their global position.
  void RunDriverRows(
      std::span<const storage::RowId> driver_rows,
      const std::function<bool(size_t)>& gate,
      const std::function<bool(size_t, const std::vector<storage::ObjectId>&)>& emit);

  /// Replays prefix rows [begin, end) of a materialized shared subplan: binds
  /// the prefix steps from the stored row ids (no probes), then runs the
  /// nested loops from the first unshared step. Replay order equals the
  /// producer's enumeration order, so output is byte-identical to evaluating
  /// the prefix directly. `prefix.arity()` must not exceed the plan's steps.
  void RunReplay(const exec::MaterializedSubplan& prefix, size_t begin, size_t end,
                 const std::function<bool(const std::vector<storage::ObjectId>&)>& emit);

  const ExecutionStats& stats() const { return stats_; }

  /// Installs a shared scan-row allowance (not owned, may be null). When it
  /// runs dry the evaluator unwinds exactly like a cancellation — as if the
  /// sink declined — so no truncated suffix enumeration is ever cached.
  /// Consumption is reported in batches, so the gate may overrun slightly.
  void set_row_gate(RowGate* gate) { row_gate_ = gate; }

 private:
  struct Collector {
    size_t level;
    std::vector<std::vector<storage::ObjectId>> completions;
  };

  bool Eval(size_t i, std::vector<storage::TupleView>* rows,
            std::vector<storage::ObjectId>* objs,
            const std::function<bool(const std::vector<storage::ObjectId>&)>& emit);
  /// Binds step 0 to driver row `r`, then evaluates steps 1..n.
  bool EvalDriverRow(storage::RowId r, std::vector<storage::TupleView>* rows,
                     std::vector<storage::ObjectId>* objs,
                     const std::function<bool(const std::vector<storage::ObjectId>&)>& emit);

  void ProjectToCollectors(const std::vector<storage::ObjectId>& objs);
  std::string CacheKey(size_t i, const std::vector<storage::TupleView>& rows) const;
  /// MTNNs are trees of distinct nodes: occurrences of one segment must bind
  /// distinct objects (checked per full assignment; cached suffixes cannot
  /// pre-check against future prefixes).
  bool DistinctAcrossSegments(const std::vector<storage::ObjectId>& objs) const;

  const PlanLayout* layout_;
  const opt::CtssnPlan* plan_;
  exec::ExecOptions exec_options_;
  bool enable_cache_;

  // One cache per step level (level 0 has no dependencies, never cached).
  std::vector<std::unique_ptr<
      LruCache<std::string, std::vector<std::vector<storage::ObjectId>>>>>
      caches_;
  std::vector<Collector*> active_collectors_;
  /// Anytime scan-row allowance; checked (and consumption reported) at every
  /// Eval entry. Null = unlimited.
  RowGate* row_gate_ = nullptr;
  uint64_t gate_reported_rows_ = 0;
  ExecutionStats stats_;
  /// Per-depth probe bindings, reused across outer rows (Eval runs once per
  /// outer row — rebuilding this vector there was a hot-loop allocation).
  std::vector<std::vector<exec::ColumnBinding>> binding_scratch_;
};

/// Step-0 matches of `plan` in probe order — the driver rows the morsel
/// scheduler partitions. Scan counters go to `stats` (nullable).
std::vector<storage::RowId> EnumerateDriverMatches(const PlanLayout& layout,
                                                   const exec::ExecOptions& options,
                                                   ExecutionStats* stats);

/// Materializes the join prefix steps [0, depth] of `layout`'s plan into
/// `out` (one row of per-step base-table row ids per prefix match, serial
/// nested-loop order). `base` (nullable) is an already-materialized shallower
/// prefix of the same plan to stack on instead of re-enumerating its steps.
/// Returns false — with `out` truncated — when cancellation tripped or the
/// materialization exceeded `max_bytes`; callers must then discard `out` and
/// fall back to direct execution. Probe counters go to `stats` (nullable).
bool MaterializePrefixRows(const PlanLayout& layout, int depth,
                           const exec::ExecOptions& options,
                           const exec::MaterializedSubplan* base, size_t max_bytes,
                           ExecutionStats* stats, exec::MaterializedSubplan* out);

/// Runs all plans of a prepared query with the thread pool, collecting up to
/// per_network_k results per network (and optionally global_k in total).
/// With options.intra_plan_threads > 1, plans run smallest-first one at a
/// time, each parallelized across morsels of its driver matches; the result
/// list is byte-identical to a single-threaded run.
/// With options.enable_anytime and a cost budget or armed deadline, whole
/// plans the budget cannot afford are skipped (cheapest-first schedule order)
/// and `coverage` (nullable) reports the structured quality bound; with no
/// budget the knob is inert and results are byte-identical to the pre-anytime
/// engine.
/// With a non-null `sink`, finalized result prefixes stream out as size
/// classes exhaust (see engine/result_sink.h); the returned list is the same
/// either way.
class TopKExecutor {
 public:
  TopKExecutor() = default;

  Result<std::vector<present::Mtton>> Run(const PreparedQuery& query,
                                          const QueryOptions& options,
                                          ExecutionStats* stats = nullptr,
                                          Coverage* coverage = nullptr,
                                          ResultSink* sink = nullptr);
};

/// Evaluates a single-object network (no joins): intersects the occurrence's
/// keyword filter sets and emits each object. Shared by all executors.
/// `stats` (nullable) counts the intersection scan and emitted results.
void EvaluateSingleObjectPlan(
    const PreparedQuery& query, size_t plan_index,
    const std::function<bool(const std::vector<storage::ObjectId>&)>& emit,
    ExecutionStats* stats = nullptr);

/// Serial-order cap on one plan's output given the results accumulated by the
/// plans scheduled before it: the first `cap` results in driver/nested-loop
/// order. Shared by the top-k executor and the sharded scatter-gather stage.
size_t PlanResultCap(const QueryOptions& options, size_t results_so_far);

/// Final ranking of every executor: stable sort by (score, ctssn_index,
/// objects) — a total order on distinct values, so any execution order that
/// produces the correct result multiset sorts to byte-identical output.
void SortMttons(std::vector<present::Mtton>* results);

}  // namespace xk::engine

#endif  // XK_ENGINE_TOPK_EXECUTOR_H_
