// Copyright (c) the XKeyword authors.
//
// Work-stealing thread pool. Two uses in the engine: "a thread is assigned to
// each CN starting from the smaller ones" (Section 6), and the morsel-driven
// intra-plan parallelism of the top-k executor, where one large CTSSN plan is
// split into driver morsels that idle workers steal. Tasks are submitted
// round-robin to per-worker deques; a worker drains its own deque FIFO and,
// when empty, steals from the back of a sibling's deque.

#ifndef XK_ENGINE_THREAD_POOL_H_
#define XK_ENGINE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace xk::engine {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task onto the next worker's deque (round-robin); idle workers
  /// steal it if its owner is busy.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();
  /// Alias of Wait(), matching the morsel scheduler's phrasing: the pool is
  /// idle once all deques are empty and no task is running.
  void WaitIdle() { Wait(); }

  int num_threads() const { return static_cast<int>(threads_.size()); }

  /// Index of the calling pool worker in [0, num_threads()), or -1 when the
  /// caller is not a pool thread. Lets tasks maintain worker-local state
  /// (e.g. the per-worker suffix caches of the morsel-driven evaluator).
  static int CurrentWorkerIndex();

 private:
  void WorkerLoop(int worker);
  /// Pops the next task: own deque front first, then steal from the back of
  /// another worker's deque. Returns false if every deque is empty.
  bool PopTask(int worker, std::function<void()>* task);

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::vector<std::deque<std::function<void()>>> queues_;  // one per worker
  std::vector<std::thread> threads_;
  size_t next_queue_ = 0;  // round-robin submit cursor
  size_t pending_ = 0;     // tasks queued across all deques
  int active_ = 0;
  bool shutdown_ = false;
};

}  // namespace xk::engine

#endif  // XK_ENGINE_THREAD_POOL_H_
