// Copyright (c) the XKeyword authors.
//
// Fixed-size thread pool used by the top-k executor: "we solve this problem
// by using a thread pool. A thread is assigned to each CN starting from the
// smaller ones" (Section 6).

#ifndef XK_ENGINE_THREAD_POOL_H_
#define XK_ENGINE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace xk::engine {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; tasks run FIFO across the pool.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  int active_ = 0;
  bool shutdown_ = false;
};

}  // namespace xk::engine

#endif  // XK_ENGINE_THREAD_POOL_H_
