// Copyright (c) the XKeyword authors.
//
// The load stage of Figure 7: the Decomposer inputs the schema graph, the
// TSS graph and the XML graph, and produces the master index, statistics,
// target-object BLOBs and the connection relations of each decomposition.

#ifndef XK_ENGINE_LOAD_STAGE_H_
#define XK_ENGINE_LOAD_STAGE_H_

#include <memory>

#include "common/result.h"
#include "decomp/decomposition.h"
#include "keyword/master_index.h"
#include "schema/decomposer.h"
#include "schema/validator.h"
#include "storage/catalog.h"
#include "storage/statistics.h"

namespace xk::engine {

/// Everything the query stage needs, produced once at load time.
struct LoadedData {
  schema::ValidationResult validation;
  schema::TargetObjectGraph objects;
  keyword::MasterIndex master_index;
  storage::Catalog catalog;  // connection relations + target-object BLOBs
  storage::Statistics statistics;
};

/// Runs validation, target decomposition, master indexing, BLOB
/// serialization and statistics gathering. Connection relations are added
/// separately per decomposition (MaterializeDecomposition).
Result<std::unique_ptr<LoadedData>> RunLoadStage(const xml::XmlGraph& graph,
                                                 const schema::SchemaGraph& schema,
                                                 const schema::TssGraph& tss);

/// Materializes the connection relations of `d` into the loaded catalog.
Status MaterializeDecomposition(const decomp::Decomposition& d,
                                const schema::TssGraph& tss, LoadedData* data);

}  // namespace xk::engine

#endif  // XK_ENGINE_LOAD_STAGE_H_
