// Copyright (c) the XKeyword authors.

#include "engine/progress_budget.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <utility>

namespace xk::engine {
namespace {

// EWMA weight of the newest completed plan's observation. High because early
// plans (small CNs) under-predict the per-cost time of later, larger ones;
// recent observations are the better forecast.
constexpr double kEwmaAlpha = 0.5;

int64_t RemainingNs(const CancelToken* cancel) {
  auto now = std::chrono::steady_clock::now();
  auto left = std::chrono::duration_cast<std::chrono::nanoseconds>(
      cancel->deadline_time() - now);
  return left.count();
}

}  // namespace

ProgressBudget::ProgressBudget(const PreparedQuery& query,
                               const std::vector<bool>& active,
                               const QueryOptions& options)
    : query_(&query),
      active_(active),
      headroom_(std::max(1.0, options.anytime_headroom)),
      min_plan_rows_(std::max<uint64_t>(1, options.anytime_min_plan_rows)),
      cancel_(options.cancel) {
  outcomes_.assign(query.plans.size(), Outcome::kNotReached);
  active_.resize(query.plans.size(), false);
  if (!options.enable_anytime) return;
  if (options.anytime_cost_budget > 0) {
    cost_mode_ = true;
    cost_budget_ = options.anytime_cost_budget;
  }
  if (cancel_ != nullptr && cancel_->has_deadline()) deadline_mode_ = true;
}

double ProgressBudget::PlanCost(size_t p) const {
  // The optimizer's cost can legitimately be tiny (single-object networks);
  // clamp so every plan charges something and a zero-cost run of plans can't
  // make the wall-clock calibration divide by zero.
  return std::max(1.0, query_->plans[p].estimated_cost);
}

void ProgressBudget::PreAdmit(const std::vector<size_t>& schedule) {
  if (!cost_mode_) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (pre_admit_done_) return;
  pre_admit_done_ = true;
  pre_admitted_.assign(query_->plans.size(), 0);
  double spent = 0;
  bool first = true;
  for (size_t p : schedule) {
    if (p >= active_.size() || !active_[p]) continue;
    double cost = PlanCost(p);
    // The first active plan always runs: an anytime engine returns its best
    // effort, never an empty answer because the budget was set too small.
    if (first || spent + cost <= cost_budget_) {
      pre_admitted_[p] = 1;
      spent += cost;
      first = false;
    }
  }
  spent_ = spent;
}

bool ProgressBudget::DeadlineAdmit(double cost) {
  // Until at least one plan has completed there is no calibration; admit
  // (the plain deadline truncation still backstops a gross overshoot).
  if (!calibrated_) return true;
  int64_t remaining = RemainingNs(cancel_);
  if (remaining <= 0) return false;
  double predicted = cost * ewma_ns_per_cost_ * headroom_;
  return predicted <= static_cast<double>(remaining);
}

bool ProgressBudget::AdmitPlan(size_t p) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (p >= active_.size() || !active_[p]) return false;
  bool admit = true;
  if (cost_mode_) {
    admit = pre_admit_done_ && pre_admitted_[p] != 0;
  }
  if (admit && deadline_mode_) {
    admit = !any_admitted_ ? true : DeadlineAdmit(PlanCost(p));
  }
  if (!admit) {
    outcomes_[p] = Outcome::kSkipped;
  } else {
    any_admitted_ = true;
  }
  return admit;
}

std::shared_ptr<RowGate> ProgressBudget::MakeRowGate() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!deadline_mode_ || !calibrated_ || ewma_ns_per_row_ <= 0) return nullptr;
  int64_t remaining = RemainingNs(cancel_);
  if (remaining <= 0) {
    return std::make_shared<RowGate>(min_plan_rows_);
  }
  double rows =
      static_cast<double>(remaining) / (ewma_ns_per_row_ * headroom_);
  uint64_t cap = static_cast<uint64_t>(
      std::max(static_cast<double>(min_plan_rows_), rows));
  return std::make_shared<RowGate>(cap);
}

void ProgressBudget::Record(size_t p, Outcome outcome) {
  if (p < outcomes_.size()) outcomes_[p] = outcome;
}

void ProgressBudget::OnPlanComplete(size_t p, uint64_t rows_scanned,
                                    uint64_t elapsed_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  Record(p, Outcome::kComplete);
  if (!deadline_mode_ || elapsed_ns == 0) return;
  double ns_per_cost = static_cast<double>(elapsed_ns) / PlanCost(p);
  double ns_per_row = rows_scanned > 0
                          ? static_cast<double>(elapsed_ns) /
                                static_cast<double>(rows_scanned)
                          : 0;
  if (!calibrated_) {
    ewma_ns_per_cost_ = ns_per_cost;
    ewma_ns_per_row_ = ns_per_row;
    calibrated_ = true;
  } else {
    ewma_ns_per_cost_ =
        kEwmaAlpha * ns_per_cost + (1 - kEwmaAlpha) * ewma_ns_per_cost_;
    if (ns_per_row > 0) {
      ewma_ns_per_row_ = ewma_ns_per_row_ > 0
                             ? kEwmaAlpha * ns_per_row +
                                   (1 - kEwmaAlpha) * ewma_ns_per_row_
                             : ns_per_row;
    }
  }
}

void ProgressBudget::OnPlanInterrupted(size_t p) {
  std::lock_guard<std::mutex> lock(mutex_);
  Record(p, Outcome::kInterrupted);
}

void ProgressBudget::MarkUnreachedComplete() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t p = 0; p < outcomes_.size(); ++p) {
    if (active_[p] && outcomes_[p] == Outcome::kNotReached) {
      outcomes_[p] = Outcome::kComplete;
    }
  }
}

Coverage ProgressBudget::Finish() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Coverage cov;
  // exhausted_class = largest C with every active class-<=C plan complete.
  // Computed per class so the formula is order-independent (the kAll path
  // runs plans in index order, the top-k paths in schedule order).
  std::map<int, std::pair<uint32_t, uint32_t>> per_class;  // complete, total
  for (size_t p = 0; p < outcomes_.size(); ++p) {
    if (!active_[p]) continue;
    int cls = query_->ctssns[p].cn_size;
    auto& slot = per_class[cls];
    ++slot.second;
    switch (outcomes_[p]) {
      case Outcome::kComplete:
        ++slot.first;
        ++cov.cns_executed;
        break;
      case Outcome::kInterrupted:
        ++cov.cns_executed;  // ran, but not to completion
        cov.interrupted = true;
        break;
      case Outcome::kSkipped:
      case Outcome::kNotReached:
        ++cov.cns_skipped;
        break;
    }
  }
  for (const auto& [cls, counts] : per_class) {
    if (counts.first != counts.second) break;
    cov.exhausted_class = cls;
  }
  return cov;
}

}  // namespace xk::engine
