// Copyright (c) the XKeyword authors.
//
// Full-result execution (the "output all the results" mode of Figure 15(b)).
// Indexed decompositions run index-nested-loops (what a DBMS picks when
// indexes exist); unindexed ones run full-scan hash joins — the paper found
// the latter fastest for complete outputs on the small minimal relations.
// Keyword-filtered relation scans are materialized once per query and shared
// across candidate networks (Section 4's common-subexpression reuse).

#ifndef XK_ENGINE_FULL_EXECUTOR_H_
#define XK_ENGINE_FULL_EXECUTOR_H_

#include <functional>
#include <vector>

#include "engine/query_context.h"
#include "opt/reuse.h"
#include "present/mtton.h"
#include "storage/table.h"

namespace xk::engine {

/// Full-result executor over the merged QueryOptions knobs: `full_mode`
/// picks the join strategy, `enable_scan_reuse` shares keyword-filtered
/// scans across networks, `enable_subplan_reuse` + `subplan_cache_budget_bytes`
/// memoize shared join-prefix intermediates (requires scan reuse — the memo
/// stores indexes into the shared scans), and `cancel` is polled between
/// plans, between join steps, and inside probe scans.
class FullExecutor {
 public:
  explicit FullExecutor(QueryOptions options = {}) : options_(options) {}

  /// When `coverage` is non-null, records per-plan completion so the caller
  /// can derive a Completeness statement (kAll runs are not budgeted — the
  /// mode's contract is the complete list — but a deadline/cancel trip still
  /// yields an honest partial-coverage report).
  Result<std::vector<present::Mtton>> Run(const PreparedQuery& query,
                                          ExecutionStats* stats = nullptr,
                                          Coverage* coverage = nullptr);

 private:
  QueryOptions options_;
};

/// Keyword-filtered scan of `table` under `step`'s local filters, in row
/// order. `table` is normally `*step.table` but may be any table with the
/// same schema — the sharded data plane scans its per-shard slice tables
/// through the plan's global steps.
std::vector<storage::Tuple> FilteredScanTuples(const storage::Table& table,
                                               const exec::JoinStep& step,
                                               ExecutionStats* stats);

/// Full hash-join evaluation of one plan over caller-provided filtered scans
/// (scans[i] holds step i's keyword-filtered rows); emit order is the
/// scan-order nested enumeration of the scans. No prefix memoization — the
/// sharded union-merge path supplies shard-private step-0 scans, which would
/// invalidate cross-plan prefix signatures.
void RunHashJoinOnScans(
    const opt::CtssnPlan& plan,
    const std::vector<const std::vector<storage::Tuple>*>& scans,
    const exec::ExecOptions& exec_options, ExecutionStats* stats,
    const std::function<bool(const std::vector<storage::ObjectId>&)>& emit);

}  // namespace xk::engine

#endif  // XK_ENGINE_FULL_EXECUTOR_H_
