// Copyright (c) the XKeyword authors.
//
// Full-result execution (the "output all the results" mode of Figure 15(b)).
// Indexed decompositions run index-nested-loops (what a DBMS picks when
// indexes exist); unindexed ones run full-scan hash joins — the paper found
// the latter fastest for complete outputs on the small minimal relations.
// Keyword-filtered relation scans are materialized once per query and shared
// across candidate networks (Section 4's common-subexpression reuse).

#ifndef XK_ENGINE_FULL_EXECUTOR_H_
#define XK_ENGINE_FULL_EXECUTOR_H_

#include <functional>
#include <vector>

#include "engine/query_context.h"
#include "opt/reuse.h"
#include "present/mtton.h"
#include "storage/table.h"

namespace xk::engine {

/// Join strategy for full-result runs.
enum class FullMode {
  /// Hash joins on indexed decompositions, INLJ otherwise — mirrors what the
  /// backing DBMS's optimizer would pick.
  kAuto,
  kIndexNestedLoop,
  kHashJoin,
};

struct FullExecutorOptions {
  FullMode mode = FullMode::kAuto;
  /// Reuse keyword-filtered scans across networks.
  bool enable_reuse = true;
  /// Memoize hash-join intermediates of join prefixes shared by several
  /// candidate networks (equal optimizer prefix signatures), so each shared
  /// prefix joins once per query. Requires `enable_reuse` (the memo stores
  /// indexes into the shared filtered scans). Never changes results.
  bool enable_subplan_reuse = true;
  /// Byte budget of the per-query prefix-intermediate memo; prefixes that
  /// would exceed it are simply not memoized.
  size_t subplan_cache_budget_bytes = 64ull << 20;
  /// When > 0, skip networks with more CTSSN edges than this.
  int max_network_size = 0;
  /// Semi-join keyword pruning of index-nested-loop probes (see
  /// QueryOptions::enable_semijoin_pruning). Never changes results.
  bool enable_semijoin_pruning = true;
  /// Cooperative cancellation/deadline token (not owned, may be null),
  /// polled between plans, between join steps, and inside probe scans.
  const CancelToken* cancel = nullptr;
};

class FullExecutor {
 public:
  explicit FullExecutor(FullExecutorOptions options = {}) : options_(options) {}

  Result<std::vector<present::Mtton>> Run(const PreparedQuery& query,
                                          ExecutionStats* stats = nullptr);

 private:
  FullExecutorOptions options_;
};

/// Keyword-filtered scan of `table` under `step`'s local filters, in row
/// order. `table` is normally `*step.table` but may be any table with the
/// same schema — the sharded data plane scans its per-shard slice tables
/// through the plan's global steps.
std::vector<storage::Tuple> FilteredScanTuples(const storage::Table& table,
                                               const exec::JoinStep& step,
                                               ExecutionStats* stats);

/// Full hash-join evaluation of one plan over caller-provided filtered scans
/// (scans[i] holds step i's keyword-filtered rows); emit order is the
/// scan-order nested enumeration of the scans. No prefix memoization — the
/// sharded union-merge path supplies shard-private step-0 scans, which would
/// invalidate cross-plan prefix signatures.
void RunHashJoinOnScans(
    const opt::CtssnPlan& plan,
    const std::vector<const std::vector<storage::Tuple>*>& scans,
    const exec::ExecOptions& exec_options, ExecutionStats* stats,
    const std::function<bool(const std::vector<storage::ObjectId>&)>& emit);

}  // namespace xk::engine

#endif  // XK_ENGINE_FULL_EXECUTOR_H_
