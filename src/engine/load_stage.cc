#include "engine/load_stage.h"

#include <unordered_set>

#include "common/logging.h"
#include "decomp/relation_builder.h"
#include "xml/xml_writer.h"

namespace xk::engine {

Result<std::unique_ptr<LoadedData>> RunLoadStage(const xml::XmlGraph& graph,
                                                 const schema::SchemaGraph& schema,
                                                 const schema::TssGraph& tss) {
  if (!tss.finalized()) return Status::InvalidArgument("TSS graph not finalized");
  auto data = std::make_unique<LoadedData>();

  XK_ASSIGN_OR_RETURN(data->validation, schema::Validate(graph, schema));

  schema::Decomposer decomposer(&graph, &data->validation, &tss);
  XK_ASSIGN_OR_RETURN(data->objects, decomposer.Run());

  data->master_index =
      keyword::MasterIndex::Build(graph, data->validation, data->objects);

  // Target-object BLOBs: the serialized member subtree of each object.
  for (storage::ObjectId o = 0; o < data->objects.NumObjects(); ++o) {
    const std::vector<xml::NodeId>& members = data->objects.MemberNodes(o);
    std::unordered_set<xml::NodeId> restrict_to(members.begin(), members.end());
    std::string blob = xml::WriteSubtree(
        graph, data->objects.object(o).head, &restrict_to, /*pretty=*/false);
    XK_RETURN_NOT_OK(data->catalog.blob_store().Put(o, std::move(blob)));
  }

  // Statistics: s(T) per segment; c(e) per TSS edge, both directions.
  std::vector<int64_t> edge_counts(static_cast<size_t>(tss.NumEdges()), 0);
  for (const schema::TargetObjectEdge& e : data->objects.edges()) {
    ++edge_counts[static_cast<size_t>(e.edge)];
  }
  for (schema::TssId t = 0; t < tss.NumSegments(); ++t) {
    data->statistics.SetNodeCount(t,
                                  static_cast<size_t>(data->objects.CountOfSegment(t)));
  }
  for (schema::TssEdgeId e = 0; e < tss.NumEdges(); ++e) {
    const schema::TssEdge& te = tss.edge(e);
    int64_t from_count = data->objects.CountOfSegment(te.from);
    int64_t to_count = data->objects.CountOfSegment(te.to);
    data->statistics.SetAvgFanout(
        e, from_count == 0 ? 0.0
                           : static_cast<double>(edge_counts[static_cast<size_t>(e)]) /
                                 static_cast<double>(from_count));
    data->statistics.SetAvgReverseFanout(
        e, to_count == 0 ? 0.0
                         : static_cast<double>(edge_counts[static_cast<size_t>(e)]) /
                               static_cast<double>(to_count));
  }
  return data;
}

Status MaterializeDecomposition(const decomp::Decomposition& d,
                                const schema::TssGraph& tss, LoadedData* data) {
  return decomp::BuildConnectionRelations(d, data->objects, tss, &data->catalog);
}

}  // namespace xk::engine
