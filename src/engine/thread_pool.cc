#include "engine/thread_pool.h"

#include "common/logging.h"

namespace xk::engine {

ThreadPool::ThreadPool(int num_threads) {
  XK_CHECK_GT(num_threads, 0);
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace xk::engine
