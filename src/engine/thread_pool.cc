#include "engine/thread_pool.h"

#include "common/logging.h"

namespace xk::engine {

namespace {
thread_local int tls_worker_index = -1;
}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  XK_CHECK_GT(num_threads, 0);
  queues_.resize(static_cast<size_t>(num_threads));
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

int ThreadPool::CurrentWorkerIndex() { return tls_worker_index; }

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queues_[next_queue_].push_back(std::move(task));
    next_queue_ = (next_queue_ + 1) % queues_.size();
    ++pending_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return pending_ == 0 && active_ == 0; });
}

bool ThreadPool::PopTask(int worker, std::function<void()>* task) {
  std::deque<std::function<void()>>& own = queues_[static_cast<size_t>(worker)];
  if (!own.empty()) {
    *task = std::move(own.front());
    own.pop_front();
    return true;
  }
  // Steal from the back of a sibling's deque (oldest-first keeps the victim's
  // locality on its recent submissions).
  const size_t n = queues_.size();
  for (size_t d = 1; d < n; ++d) {
    std::deque<std::function<void()>>& victim =
        queues_[(static_cast<size_t>(worker) + d) % n];
    if (!victim.empty()) {
      *task = std::move(victim.back());
      victim.pop_back();
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(int worker) {
  tls_worker_index = worker;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return shutdown_ || pending_ > 0; });
      if (pending_ == 0) {
        if (shutdown_) return;
        continue;
      }
      XK_CHECK(PopTask(worker, &task));
      --pending_;
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --active_;
      if (pending_ == 0 && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace xk::engine
