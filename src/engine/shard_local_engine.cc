#include "engine/shard_local_engine.h"

#include <algorithm>
#include <string>

#include "common/logging.h"
#include "engine/full_executor.h"
#include "exec/operators.h"

namespace xk::engine {

namespace {

/// Shard-owned step-0 matches of a slice table, reported as global row ids.
/// The slice preserves global row order and the scan has no constant bindings
/// (the optimizer never produces step-0 const filters), so the scan visits
/// slice rows ascending and the mapped list comes out ascending too.
std::vector<storage::RowId> SliceDriverMatches(
    const storage::Table& slice, const std::vector<storage::RowId>& row_map,
    const PlanLayout& layout, const exec::ExecOptions& options,
    ExecutionStats* stats) {
  const exec::JoinStep& step = layout.plan().query.steps[0];
  std::vector<storage::RowId> rows;
  exec::ForEachMatch(slice, step.const_filters, layout.step_filters(0),
                     layout.step_blooms()[0], options,
                     [&](storage::RowId r) {
                       rows.push_back(row_map[r]);
                       return true;
                     },
                     stats != nullptr ? &stats->probes : nullptr);
  return rows;
}

}  // namespace

// --- WholeInstanceShard --------------------------------------------------

WholeInstanceShard::WholeInstanceShard(const LoadedData* data) : data_(data) {
  range_ = ShardRange{0, data_->objects.NumObjects()};
}

std::vector<storage::RowId> WholeInstanceShard::DriverMatches(
    const PlanLayout& layout, const exec::ExecOptions& options,
    ExecutionStats* stats) const {
  return EnumerateDriverMatches(layout, options, stats);
}

std::vector<storage::Tuple> WholeInstanceShard::AnchorScan(
    const exec::JoinStep& step, ExecutionStats* stats) const {
  return FilteredScanTuples(*step.table, step, stats);
}

// --- SlicedShard ---------------------------------------------------------

SlicedShard::SlicedShard(const LoadedData* data, ShardRange range)
    : data_(data), range_(range) {
  master_slice_ = data_->master_index.Slice(range_.begin, range_.end);
  const storage::BlobStore& blobs = data_->catalog.blob_store();
  const storage::ObjectId end =
      std::min<storage::ObjectId>(range_.end, data_->objects.NumObjects());
  for (storage::ObjectId o = std::max<storage::ObjectId>(range_.begin, 0);
       o < end; ++o) {
    if (!blobs.Contains(o)) continue;
    auto blob = blobs.Get(o);
    XK_CHECK(blob.ok());
    XK_CHECK(blob_slice_.Put(o, std::string(blob.value())).ok());
  }
}

Status SlicedShard::AddTableSlice(const storage::Table* global) {
  if (tables_.contains(global)) return Status::OK();
  SliceTable entry;
  entry.table =
      std::make_unique<storage::Table>(global->name(), global->column_names());
  const size_t num_rows = global->NumRows();
  for (storage::RowId r = 0; r < num_rows; ++r) {
    if (!range_.Contains(global->At(r, 0))) continue;
    XK_RETURN_NOT_OK(entry.table->Append(global->Row(r)));
    entry.row_map.push_back(r);
  }
  // Replicate the physical design so per-shard access-path selection sees the
  // same options as the global table (clustering first — secondary indexes
  // must build over final row positions).
  if (global->IsClustered()) {
    XK_RETURN_NOT_OK(entry.table->Cluster(global->clustering_key()));
  }
  for (const auto& ci : global->composite_indexes()) {
    XK_RETURN_NOT_OK(entry.table->BuildCompositeIndex(ci->key_columns()));
  }
  for (int c = 0; c < global->arity(); ++c) {
    if (global->GetHashIndex(c) != nullptr) {
      XK_RETURN_NOT_OK(entry.table->BuildHashIndex(c));
    }
  }
  entry.table->Freeze();
  tables_.emplace(global, std::move(entry));
  return Status::OK();
}

std::vector<storage::RowId> SlicedShard::DriverMatches(
    const PlanLayout& layout, const exec::ExecOptions& options,
    ExecutionStats* stats) const {
  const storage::Table* global = layout.plan().query.steps[0].table;
  auto it = tables_.find(global);
  XK_CHECK(it != tables_.end());  // AddDecomposition slices every new table
  return SliceDriverMatches(*it->second.table, it->second.row_map, layout,
                            options, stats);
}

std::vector<storage::Tuple> SlicedShard::AnchorScan(const exec::JoinStep& step,
                                                    ExecutionStats* stats) const {
  auto it = tables_.find(step.table);
  XK_CHECK(it != tables_.end());  // AddDecomposition slices every new table
  return FilteredScanTuples(*it->second.table, step, stats);
}

size_t SlicedShard::MemoryBytes() const {
  size_t bytes = master_slice_.MemoryBytes() + blob_slice_.MemoryBytes();
  for (const auto& [global, slice] : tables_) {
    (void)global;
    bytes += slice.table->MemoryBytes();
    bytes += slice.row_map.capacity() * sizeof(storage::RowId);
  }
  return bytes;
}

const storage::Table* SlicedShard::SliceOf(const storage::Table* global) const {
  auto it = tables_.find(global);
  return it == tables_.end() ? nullptr : it->second.table.get();
}

std::span<const storage::RowId> SlicedShard::RowMapOf(
    const storage::Table* global) const {
  auto it = tables_.find(global);
  if (it == tables_.end()) return {};
  return it->second.row_map;
}

}  // namespace xk::engine
