// Copyright (c) the XKeyword authors.
//
// The XKeyword system facade — the library's main entry point. Owns the
// loaded database (Figure 7's load stage output) plus any number of
// materialized decompositions, and runs keyword proximity queries through
// the pipeline keyword discoverer -> CN generator -> optimizer -> execution.
//
// Typical use:
//
//   auto xk = engine::XKeyword::Load(&graph, &schema, &tss).MoveValueUnsafe();
//   xk->AddDecomposition(decomp::MakeXKeyword(tss, /*B=*/2, /*M=*/4).value());
//   engine::QueryRequest request;
//   request.keywords = {"john", "vcr"};
//   request.decomposition = "XKeyword";
//   auto response = xk->Run(request);  // -> Result<QueryResponse>

#ifndef XK_ENGINE_XKEYWORD_H_
#define XK_ENGINE_XKEYWORD_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "cn/cn_generator.h"
#include "engine/expansion.h"
#include "engine/full_executor.h"
#include "engine/load_stage.h"
#include "engine/naive_executor.h"
#include "engine/query_engine.h"
#include "engine/query_request.h"
#include "engine/topk_executor.h"

namespace xk::engine {

class XKeyword : public QueryEngine {
 public:
  /// Loads the database. The graph, schema and TSS graph must outlive the
  /// returned object.
  static Result<std::unique_ptr<XKeyword>> Load(const xml::XmlGraph* graph,
                                                const schema::SchemaGraph* schema,
                                                const schema::TssGraph* tss);

  /// Materializes a decomposition's connection relations; queries then refer
  /// to it by `d.name`.
  Status AddDecomposition(decomp::Decomposition d);

  Result<const decomp::Decomposition*> GetDecomposition(
      const std::string& name) const;

  /// Keyword discovery + CN generation + reduction + planning. Validates
  /// `options` first (QueryOptions::Validate).
  Result<PreparedQuery> Prepare(const std::vector<std::string>& keywords,
                                const std::string& decomposition,
                                const QueryOptions& options) const;

  /// Serves one request synchronously — the unified entry point behind every
  /// mode. `token` (borrowed, may be null) lets the caller cancel the query
  /// from another thread; when null a private token enforces the request
  /// deadline. The request deadline is armed on the token unless one is
  /// already set (the serving layer arms it at admission so queue wait
  /// counts). A tripped deadline/cancel yields an OK Result whose response
  /// has status kDeadlineExceeded/kCancelled, completeness kDegraded (or
  /// kFailed when nothing was covered), a Coverage quality bound, and
  /// whatever mttons/stats were complete; with options.enable_anytime the
  /// executor additionally budgets whole candidate networks against the
  /// remaining deadline instead of truncating mid-CN. Hard failures yield an
  /// error Result. `sink` (borrowed, may be null) streams finalized result
  /// prefixes for kTopK queries (engine/result_sink.h); kNaive/kAll deliver
  /// everything in the response.
  Result<QueryResponse> Run(const QueryRequest& request,
                            CancelToken* token = nullptr,
                            ResultSink* sink = nullptr) const override;

  /// Presentation graph of network `ctssn_index` of a prepared query, seeded
  /// with the given results of that network.
  Result<present::PresentationGraph> MakePresentationGraph(
      const PreparedQuery& query, int ctssn_index,
      const std::vector<present::Mtton>& results) const;

  /// On-demand expansion engine over a materialized decomposition.
  Result<ExpansionEngine> MakeExpansionEngine(const std::string& decomposition) const;

  /// Monotonic generation of the loaded data. Bumped whenever the queryable
  /// state changes (today: AddDecomposition; a future reload path must bump
  /// it too). The serving layer tags every cached answer with the generation
  /// it was computed under, so a bump atomically invalidates stale answers.
  uint64_t data_generation() const override {
    return generation_.load(std::memory_order_acquire);
  }

  // --- Introspection (tests, benches, examples) -------------------------

  const LoadedData& data() const { return *data_; }
  const keyword::MasterIndex& master_index() const { return data_->master_index; }
  const storage::Catalog& catalog() const { return data_->catalog; }
  const schema::TargetObjectGraph& objects() const { return data_->objects; }
  const schema::TssGraph& tss() const { return *tss_; }
  const schema::SchemaGraph& schema() const { return *schema_; }
  const xml::XmlGraph& graph() const { return *graph_; }

 private:
  XKeyword(const xml::XmlGraph* graph, const schema::SchemaGraph* schema,
           const schema::TssGraph* tss, std::unique_ptr<LoadedData> data)
      : graph_(graph), schema_(schema), tss_(tss), data_(std::move(data)) {}

  const xml::XmlGraph* graph_;
  const schema::SchemaGraph* schema_;
  const schema::TssGraph* tss_;
  std::unique_ptr<LoadedData> data_;
  std::map<std::string, decomp::Decomposition> decompositions_;
  std::atomic<uint64_t> generation_{1};
};

}  // namespace xk::engine

#endif  // XK_ENGINE_XKEYWORD_H_
