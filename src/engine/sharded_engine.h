// Copyright (c) the XKeyword authors.
//
// ShardedEngine: the scale-out data plane. Partitions the loaded instance by
// target-object ID range into N shard slices (ShardLocalEngine) at load time;
// each top-k query scatters its plans to per-shard executors running in
// parallel on a thread pool and a gather stage merges the per-shard result
// streams back into the serial order of the single-instance engine.
//
// Correctness oracle: for every option combination, results are byte-identical
// to XKeyword::Run with the same options. The mechanism per mode:
//
//  * kTopK — each plan's step-0 driver matches are partitioned by anchor
//    ownership; shards evaluate the global plan's continuations for their own
//    driver rows and tag every result with its global driver-row position.
//    The gather stage sorts the concatenated streams by position and keeps
//    the first `limit` — exactly the serial nested-loop prefix. A shared
//    watermark tracks the k-th smallest published position; since published
//    results are a subset of the final stream, positions at or past the
//    watermark can never enter the top k, so shards use it (pushed down via
//    ShardBoundWatermark) to stop early. Plans run in the same plan-DAG
//    schedule as the single engine, so global_k accounting matches.
//  * kAll — the complete output is order-insensitive before the final total
//    sort, so shards run a hash join whose step-0 scan is shard-private (the
//    anchor rows they own) and whose later scans are shared globals; the
//    union of the per-shard outputs is the global result multiset.
//  * kNaive and num_shards <= 1 delegate to the inner XKeyword unchanged —
//    the degenerate single-shard case.
//
// Knobs: QueryOptions::{num_shards, shard_parallelism, shard_bound_pushdown}.
// The engine loads `ShardedEngineOptions::num_slices` physical slices once; a
// query's num_shards groups them into at most that many contiguous ranges, so
// one loaded engine serves every shard count up to num_slices.

#ifndef XK_ENGINE_SHARDED_ENGINE_H_
#define XK_ENGINE_SHARDED_ENGINE_H_

#include <memory>
#include <vector>

#include "engine/query_engine.h"
#include "engine/shard_local_engine.h"
#include "engine/xkeyword.h"

namespace xk::engine {

struct ShardedEngineOptions {
  /// Physical slices built at load time (>= 1; clamped to the number of
  /// target objects). Queries can scatter to at most this many shards.
  int num_slices = 4;
};

class ShardedEngine : public QueryEngine {
 public:
  /// Loads the database through the regular load stage, then slices it. The
  /// graph, schema and TSS graph must outlive the returned object.
  static Result<std::unique_ptr<ShardedEngine>> Load(
      const xml::XmlGraph* graph, const schema::SchemaGraph* schema,
      const schema::TssGraph* tss, ShardedEngineOptions options = {});

  /// Materializes a decomposition in the inner engine, then partitions every
  /// newly created connection relation across the slices.
  Status AddDecomposition(decomp::Decomposition d);

  /// `sink` streams finalized prefixes only on the delegated single-shard /
  /// kNaive path (the inner engine's streaming); the scattered paths cannot
  /// prove finalized prefixes before the gather merge and ignore it — the
  /// response is identical either way.
  Result<QueryResponse> Run(const QueryRequest& request,
                            CancelToken* token = nullptr,
                            ResultSink* sink = nullptr) const override;

  uint64_t data_generation() const override { return inner_->data_generation(); }

  // --- Introspection (tests, benches) -----------------------------------

  const XKeyword& inner() const { return *inner_; }
  int num_slices() const { return static_cast<int>(shards_.size()); }
  const ShardLocalEngine& shard(int i) const {
    return *shards_[static_cast<size_t>(i)];
  }
  /// Footprint of the shard-owned slices (on top of the inner instance).
  size_t ShardMemoryBytes() const;

 private:
  ShardedEngine(std::unique_ptr<XKeyword> inner,
                std::vector<std::unique_ptr<ShardLocalEngine>> shards,
                std::vector<SlicedShard*> sliced)
      : inner_(std::move(inner)),
        shards_(std::move(shards)),
        sliced_(std::move(sliced)) {}

  void RunShardedTopK(const PreparedQuery& query, const QueryOptions& options,
                      int groups, QueryResponse* response) const;
  void RunShardedAll(const PreparedQuery& query, const QueryOptions& options,
                     int groups, QueryResponse* response) const;

  std::unique_ptr<XKeyword> inner_;
  std::vector<std::unique_ptr<ShardLocalEngine>> shards_;
  /// The shards of shards_ that hold materialized slices (empty in the
  /// degenerate whole-instance case); AddDecomposition feeds new tables here.
  std::vector<SlicedShard*> sliced_;
};

}  // namespace xk::engine

#endif  // XK_ENGINE_SHARDED_ENGINE_H_
