// Copyright (c) the XKeyword authors.
//
// ResultSink: the incremental-streaming hook of the execution engine. A
// caller that wants results before the query finishes (the network front end
// in src/net/) installs one; the top-k executor then publishes *finalized
// prefixes* of the eventual response as execution proves them final.
//
// Contract: the concatenation of every batch passed to OnBatch, in call
// order, is exactly a prefix of the final QueryResponse::mttons — same hits,
// same order. The executor guarantees this by streaming along the plan-DAG
// schedule's size-class watermark: once every scheduled plan of CN size
// class <= C has finished (completed, hit its result cap, been skipped by
// the anytime budget, or been interrupted), the result set with score <= C
// can no longer change, and its sorted form is by construction the prefix of
// the final sorted result list. Results of classes still in flight — and
// everything after a deadline/cancel stop — ride the final response instead.
//
// OnBatch may block (the network layer blocks it on a bounded per-connection
// outbox for backpressure); it is called with the executor's result lock
// held, so a stalled sink stalls only its own query, never the engine. It is
// never called concurrently for one query. Engines that cannot prove
// finalized prefixes (the sharded scatter-gather path, the naive and full
// executors) simply never call it; the full response then arrives at once.

#ifndef XK_ENGINE_RESULT_SINK_H_
#define XK_ENGINE_RESULT_SINK_H_

#include <span>

#include "common/cancel_token.h"
#include "present/mtton.h"

namespace xk::engine {

class ResultSink {
 public:
  virtual ~ResultSink() = default;

  /// The next finalized results of the eventual sorted response, in order.
  /// Cancellation is signalled through the query's CancelToken, not through
  /// this call: a sink that wants the query stopped requests a cancel and
  /// simply returns.
  virtual void OnBatch(std::span<const present::Mtton> batch) = 0;

  /// Installed by the engine front-end (XKeyword::Run) before execution
  /// begins: the token governing this query. A blocking OnBatch (bounded
  /// outbox full) polls it so a deadline or cancel always breaks the stall.
  /// Null until bound; stays valid for the duration of the run.
  void BindCancelToken(const CancelToken* token) { cancel_token_ = token; }

 protected:
  const CancelToken* cancel_token() const { return cancel_token_; }

 private:
  const CancelToken* cancel_token_ = nullptr;
};

}  // namespace xk::engine

#endif  // XK_ENGINE_RESULT_SINK_H_
