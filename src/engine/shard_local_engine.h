// Copyright (c) the XKeyword authors.
//
// ShardLocalEngine: one shard of the sharded data plane. The instance is
// partitioned by target-object ID range on the anchor column (column 0 — the
// "from" target object every connection relation leads with), so each shard
// owns the step-0 driver rows whose anchor falls in its range, plus its slice
// of the master-index postings and the BLOB store. Continuation probes
// (steps >= 1) read the shared global catalog: they follow join edges wherever
// they lead, exactly like the single-instance engine, which is what keeps
// sharded results byte-identical to the XKeyword oracle.
//
// Two implementations:
//   * WholeInstanceShard — borrows the loaded instance whole; the degenerate
//     single-shard case (and the fallback when the object space is too small
//     to split).
//   * SlicedShard — materializes per-shard slice tables with the global
//     table's physical design replicated (clustering + secondary indexes) and
//     a row map from slice row to global row id, so driver enumeration can be
//     reported in global row coordinates.

#ifndef XK_ENGINE_SHARD_LOCAL_ENGINE_H_
#define XK_ENGINE_SHARD_LOCAL_ENGINE_H_

#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "engine/load_stage.h"
#include "engine/query_context.h"
#include "engine/topk_executor.h"
#include "keyword/master_index.h"
#include "storage/blob_store.h"
#include "storage/table.h"

namespace xk::engine {

/// Half-open target-object ID range [begin, end) owned by one shard.
struct ShardRange {
  storage::ObjectId begin = 0;
  storage::ObjectId end = 0;

  bool Contains(storage::ObjectId id) const { return id >= begin && id < end; }
};

/// One shard's view of the loaded instance. Implementations are immutable
/// once built and safe for concurrent queries.
class ShardLocalEngine {
 public:
  virtual ~ShardLocalEngine() = default;

  virtual ShardRange range() const = 0;

  /// The step-0 driver matches of `layout`'s plan that this shard owns
  /// (anchor column 0 inside range()), as ASCENDING row ids of the global
  /// step-0 relation. Concatenating every shard's list in range order yields
  /// exactly EnumerateDriverMatches of the whole instance — the invariant
  /// the gather stage's position merge rests on.
  virtual std::vector<storage::RowId> DriverMatches(
      const PlanLayout& layout, const exec::ExecOptions& options,
      ExecutionStats* stats) const = 0;

  /// The keyword-filtered rows of `step` this shard owns, in slice row order
  /// (ascending global row order). Feeds the full-result union-merge path as
  /// the shard-private scans[0] of a hash join.
  virtual std::vector<storage::Tuple> AnchorScan(const exec::JoinStep& step,
                                                 ExecutionStats* stats) const = 0;

  /// This shard's slice of the master-index postings (to_id in range()).
  virtual const keyword::MasterIndex& master_index() const = 0;

  /// This shard's slice of the target-object BLOB store.
  virtual const storage::BlobStore& blob_store() const = 0;

  /// Footprint of the shard-owned state (0 for a borrowed whole instance).
  virtual size_t MemoryBytes() const = 0;
};

/// Degenerate shard: the whole instance, borrowed (no copies).
class WholeInstanceShard : public ShardLocalEngine {
 public:
  /// `data` must outlive the shard.
  explicit WholeInstanceShard(const LoadedData* data);

  ShardRange range() const override { return range_; }
  std::vector<storage::RowId> DriverMatches(const PlanLayout& layout,
                                            const exec::ExecOptions& options,
                                            ExecutionStats* stats) const override;
  std::vector<storage::Tuple> AnchorScan(const exec::JoinStep& step,
                                         ExecutionStats* stats) const override;
  const keyword::MasterIndex& master_index() const override {
    return data_->master_index;
  }
  const storage::BlobStore& blob_store() const override {
    return data_->catalog.blob_store();
  }
  size_t MemoryBytes() const override { return 0; }

 private:
  const LoadedData* data_;
  ShardRange range_;
};

/// A materialized slice of the instance for one ID range.
class SlicedShard : public ShardLocalEngine {
 public:
  /// Slices the master index and BLOB store of `data` (which must outlive the
  /// shard) to `range`. Connection-relation slices are added per table as
  /// decompositions materialize (AddTableSlice).
  SlicedShard(const LoadedData* data, ShardRange range);

  /// Partitions `global` (a frozen connection relation): keeps the rows whose
  /// anchor column 0 lies in range(), preserving global row order, records
  /// the slice-row -> global-row map, and replicates the global physical
  /// design (clustering key, composite indexes, per-column hash indexes).
  /// Re-clustering is an identity permutation — the slice is a subsequence of
  /// a table already sorted by the same key and Table::Cluster sorts stably —
  /// so the row map stays aligned.
  Status AddTableSlice(const storage::Table* global);

  ShardRange range() const override { return range_; }
  std::vector<storage::RowId> DriverMatches(const PlanLayout& layout,
                                            const exec::ExecOptions& options,
                                            ExecutionStats* stats) const override;
  std::vector<storage::Tuple> AnchorScan(const exec::JoinStep& step,
                                         ExecutionStats* stats) const override;
  const keyword::MasterIndex& master_index() const override { return master_slice_; }
  const storage::BlobStore& blob_store() const override { return blob_slice_; }
  size_t MemoryBytes() const override;

  // --- Introspection (tests) --------------------------------------------

  /// The slice of `global`, or nullptr if never added.
  const storage::Table* SliceOf(const storage::Table* global) const;
  /// The slice-row -> global-row map of `global`'s slice (empty if absent).
  std::span<const storage::RowId> RowMapOf(const storage::Table* global) const;

 private:
  struct SliceTable {
    std::unique_ptr<storage::Table> table;
    std::vector<storage::RowId> row_map;  // slice row -> global row, ascending
  };

  const LoadedData* data_;
  ShardRange range_;
  keyword::MasterIndex master_slice_;
  storage::BlobStore blob_slice_;
  /// Keyed by the global table (Catalog hands out stable pointers).
  std::unordered_map<const storage::Table*, SliceTable> tables_;
};

}  // namespace xk::engine

#endif  // XK_ENGINE_SHARD_LOCAL_ENGINE_H_
