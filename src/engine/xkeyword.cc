#include "engine/xkeyword.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"
#include "cn/ctssn.h"

namespace xk::engine {

Result<std::unique_ptr<XKeyword>> XKeyword::Load(const xml::XmlGraph* graph,
                                                 const schema::SchemaGraph* schema,
                                                 const schema::TssGraph* tss) {
  if (graph == nullptr || schema == nullptr || tss == nullptr) {
    return Status::InvalidArgument("null input");
  }
  XK_ASSIGN_OR_RETURN(std::unique_ptr<LoadedData> data,
                      RunLoadStage(*graph, *schema, *tss));
  return std::unique_ptr<XKeyword>(
      new XKeyword(graph, schema, tss, std::move(data)));
}

Status XKeyword::AddDecomposition(decomp::Decomposition d) {
  if (decompositions_.contains(d.name)) {
    return Status::AlreadyExists(StrFormat("decomposition %s", d.name.c_str()));
  }
  XK_RETURN_NOT_OK(MaterializeDecomposition(d, *tss_, data_.get()));
  decompositions_.emplace(d.name, std::move(d));
  // Answers computed before this decomposition existed are now stale (the
  // new connection relations can produce results the old plans could not).
  generation_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

Result<const decomp::Decomposition*> XKeyword::GetDecomposition(
    const std::string& name) const {
  auto it = decompositions_.find(name);
  if (it == decompositions_.end()) {
    return Status::NotFound(StrFormat("decomposition %s", name.c_str()));
  }
  return &it->second;
}

Result<PreparedQuery> XKeyword::Prepare(const std::vector<std::string>& keywords,
                                        const std::string& decomposition,
                                        const QueryOptions& options) const {
  XK_RETURN_NOT_OK(options.Validate());
  if (keywords.empty()) return Status::InvalidArgument("no keywords");
  XK_ASSIGN_OR_RETURN(const decomp::Decomposition* d,
                      GetDecomposition(decomposition));

  PreparedQuery q;
  q.keywords = keywords;
  q.exec_options.use_indexes = d->use_indexes_at_runtime;
  q.exec_options.vectorized = options.vectorized;
  q.exec_options.force_scalar_kernels =
      options.kernel_dispatch == KernelDispatch::kForceScalar;

  // Keyword discoverer: which schema nodes hold each keyword.
  std::vector<std::vector<schema::SchemaNodeId>> keyword_schema_nodes;
  keyword_schema_nodes.reserve(keywords.size());
  for (const std::string& k : keywords) {
    keyword_schema_nodes.push_back(data_->master_index.SchemaNodesContaining(k));
  }

  // CN generation.
  cn::CnGeneratorOptions gen_options;
  gen_options.max_size = options.max_size_z;
  cn::CnGenerator generator(schema_, gen_options);
  XK_ASSIGN_OR_RETURN(std::vector<cn::CandidateNetwork> networks,
                      generator.Generate(keyword_schema_nodes));

  // Reduce each CN to its CTSSN; skip shapes the TSS graph cannot express.
  for (cn::CandidateNetwork& network : networks) {
    Result<cn::Ctssn> reduced = cn::ReduceToCtssn(network, *schema_, *tss_);
    if (!reduced.ok()) {
      XK_LOG(Debug) << "skipping CN (" << reduced.status().ToString()
                    << "): " << network.ToString(*schema_);
      continue;
    }
    q.networks.push_back(std::move(network));
    q.ctssns.push_back(reduced.MoveValueUnsafe());
  }

  // Keyword filter sets: (keyword, schema node) -> target object ids.
  for (const cn::Ctssn& ctssn : q.ctssns) {
    for (const auto& kws : ctssn.node_keywords) {
      for (const cn::CtssnKeyword& kw : kws) {
        auto key = std::make_pair(kw.keyword, kw.schema_node);
        if (q.filter_sets.contains(key)) continue;
        storage::IdSet& set = q.filter_sets[key];
        for (const keyword::Posting& p : data_->master_index.ContainingList(
                 keywords[static_cast<size_t>(kw.keyword)])) {
          if (p.schema_node == kw.schema_node) set.insert(p.to_id);
        }
      }
    }
  }

  // Per-network node filters and plans.
  opt::Optimizer optimizer(tss_, d, &data_->catalog, &data_->objects);
  for (const cn::Ctssn& ctssn : q.ctssns) {
    opt::NodeFilters filters(static_cast<size_t>(ctssn.num_nodes()));
    for (int v = 0; v < ctssn.num_nodes(); ++v) {
      for (const cn::CtssnKeyword& kw :
           ctssn.node_keywords[static_cast<size_t>(v)]) {
        filters[static_cast<size_t>(v)].push_back(
            &q.filter_sets.at({kw.keyword, kw.schema_node}));
      }
    }
    XK_ASSIGN_OR_RETURN(opt::CtssnPlan plan, optimizer.Plan(ctssn, filters));
    q.node_filters.push_back(std::move(filters));
    q.plans.push_back(std::move(plan));
  }
  return q;
}

Result<QueryResponse> XKeyword::Run(const QueryRequest& request,
                                    CancelToken* token, ResultSink* sink) const {
  CancelToken local_token;
  CancelToken* tok = token != nullptr ? token : &local_token;
  // The serving layer arms the deadline at admission (queue wait counts);
  // for direct synchronous calls the budget starts here.
  if (request.deadline.count() > 0 && !tok->has_deadline()) {
    tok->SetDeadlineAfter(request.deadline);
  }

  QueryOptions options = request.options;
  options.cancel = tok;
  if (sink != nullptr) sink->BindCancelToken(tok);
  XK_ASSIGN_OR_RETURN(
      PreparedQuery q, Prepare(request.keywords, request.decomposition, options));

  QueryResponse response;
  if (tok->StopRequested()) {
    // The budget ran out during preparation: nothing was covered at all.
    response.status = tok->ToStatus();
    response.completeness = Completeness::kFailed;
    response.coverage.cns_skipped = static_cast<uint32_t>(q.plans.size());
    response.coverage.interrupted = true;
    return response;
  }

  Result<std::vector<present::Mtton>> results = Status::Internal("unreachable");
  switch (request.mode) {
    case QueryMode::kTopK: {
      TopKExecutor executor;
      results = executor.Run(q, options, &response.stats, &response.coverage,
                             sink);
      break;
    }
    case QueryMode::kNaive: {
      NaiveExecutor executor;
      results = executor.Run(q, options, &response.stats, &response.coverage);
      break;
    }
    case QueryMode::kAll: {
      FullExecutor executor(options);
      results = executor.Run(q, &response.stats, &response.coverage);
      break;
    }
  }
  if (!results.ok()) return results.status();
  // Which kernel ISA served this query (for metrics and the benches' A/B
  // bookkeeping): the dispatch level under the request's policy.
  response.stats.simd_isa = static_cast<uint32_t>(simd::KernelLevel(
      options.kernel_dispatch == KernelDispatch::kForceScalar));
  response.mttons = results.MoveValueUnsafe();
  if (tok->StopRequested()) {
    response.status = tok->ToStatus();
    // Conservative: a tripped token may have landed between the executor's
    // last poll and here, so never report kComplete alongside a non-OK
    // status even if the ledger saw every plan finish.
    response.coverage.interrupted = true;
  }
  response.completeness =
      DeriveCompleteness(response.coverage, !response.mttons.empty());
  return response;
}

Result<present::PresentationGraph> XKeyword::MakePresentationGraph(
    const PreparedQuery& query, int ctssn_index,
    const std::vector<present::Mtton>& results) const {
  if (ctssn_index < 0 || static_cast<size_t>(ctssn_index) >= query.ctssns.size()) {
    return Status::OutOfRange("bad network index");
  }
  present::PresentationGraph pg(&query.ctssns[static_cast<size_t>(ctssn_index)]);
  for (const present::Mtton& m : results) {
    if (m.ctssn_index == ctssn_index) pg.AddMtton(m);
  }
  return pg;
}

Result<ExpansionEngine> XKeyword::MakeExpansionEngine(
    const std::string& decomposition) const {
  XK_ASSIGN_OR_RETURN(const decomp::Decomposition* d,
                      GetDecomposition(decomposition));
  return ExpansionEngine(tss_, d, &data_->catalog);
}

}  // namespace xk::engine
