#include "engine/expansion.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "decomp/coverage.h"
#include "decomp/relation_builder.h"

namespace xk::engine {

ExpansionEngine::ExpansionEngine(const schema::TssGraph* tss,
                                 const decomp::Decomposition* d,
                                 const storage::Catalog* catalog)
    : tss_(tss), decomposition_(d) {
  XK_CHECK(tss != nullptr && d != nullptr && catalog != nullptr);
  exec_options_.use_indexes = d->use_indexes_at_runtime;
  // Per fragment, its materialized relation (if any).
  fragment_tables_.resize(d->fragments.size(), nullptr);
  for (size_t f = 0; f < d->fragments.size(); ++f) {
    auto table = catalog->GetTable(decomp::RelationName(*d, d->fragments[f]));
    if (table.ok()) fragment_tables_[f] = *table;
  }
  // For each TSS edge, the narrowest materialized fragment containing it.
  for (size_t f = 0; f < d->fragments.size(); ++f) {
    if (fragment_tables_[f] == nullptr) continue;
    const decomp::Fragment& frag = d->fragments[f];
    for (const schema::TssTreeEdge& e : frag.tree.edges) {
      auto it = edge_access_.find(e.tss_edge);
      if (it == edge_access_.end() ||
          it->second.table->arity() > fragment_tables_[f]->arity()) {
        edge_access_[e.tss_edge] =
            EdgeAccess{fragment_tables_[f], e.from, e.to};
      }
    }
  }
}

std::vector<storage::ObjectId> ExpansionEngine::Neighbors(
    schema::TssEdgeId e, bool forward, storage::ObjectId o,
    exec::ProbeStats* probes) const {
  auto it = edge_access_.find(e);
  XK_CHECK(it != edge_access_.end());
  const EdgeAccess& access = it->second;
  int bind_col = forward ? access.from_col : access.to_col;
  int out_col = forward ? access.to_col : access.from_col;
  storage::IdSet seen;
  std::vector<storage::ObjectId> out;
  exec::ForEachMatch(*access.table, {exec::ColumnBinding{bind_col, o}}, {},
                     exec_options_,
                     [&](storage::RowId r) {
                       storage::ObjectId v = access.table->At(r, out_col);
                       if (seen.insert(v).second) out.push_back(v);
                       return true;
                     },
                     probes);
  return out;
}

std::vector<ExpansionEngine::Piece> ExpansionEngine::PlanPieces(
    const cn::Ctssn& ctssn, int occ, const opt::NodeFilters& filters) const {
  const int num_edges = ctssn.tree.size();
  std::vector<Piece> pieces;
  std::vector<bool> edge_done(static_cast<size_t>(num_edges), false);
  std::vector<bool> occ_bound(static_cast<size_t>(ctssn.num_nodes()), false);
  occ_bound[static_cast<size_t>(occ)] = true;

  // Precompute all usable embeddings of every materialized fragment.
  struct Candidate {
    size_t fragment;
    decomp::Embedding embedding;
  };
  std::vector<Candidate> candidates;
  for (size_t f = 0; f < decomposition_->fragments.size(); ++f) {
    if (fragment_tables_[f] == nullptr) continue;
    for (decomp::Embedding& e : decomp::FindEmbeddings(
             decomposition_->fragments[f].tree, ctssn.tree, *tss_,
             static_cast<int>(f))) {
      candidates.push_back(Candidate{f, std::move(e)});
    }
  }

  int remaining = num_edges;
  while (remaining > 0) {
    // Pick the embedding that covers the most yet-uncovered edges while
    // touching a bound occurrence, preferring pieces whose fresh occurrences
    // carry keyword filters (they prune the search hardest). Overlapping
    // already-covered edges is allowed — bound occurrences simply become
    // extra equality filters.
    const Candidate* best = nullptr;
    int best_filtered = -1;
    int best_edges = 0;
    for (const Candidate& c : candidates) {
      bool anchored = false;
      for (int node : c.embedding.node_map) {
        if (occ_bound[static_cast<size_t>(node)]) {
          anchored = true;
          break;
        }
      }
      if (!anchored) continue;
      int fresh = 0;
      for (int e = 0; e < num_edges; ++e) {
        if (((c.embedding.edge_mask >> e) & 1u) &&
            !edge_done[static_cast<size_t>(e)]) {
          ++fresh;
        }
      }
      if (fresh == 0) continue;
      int filtered = 0;
      for (int node : c.embedding.node_map) {
        if (!occ_bound[static_cast<size_t>(node)] &&
            !filters[static_cast<size_t>(node)].empty()) {
          ++filtered;
        }
      }
      bool better = false;
      if (filtered != best_filtered) {
        better = filtered > best_filtered;
      } else if (fresh != best_edges) {
        better = fresh > best_edges;
      } else if (best != nullptr) {
        better = fragment_tables_[c.fragment]->arity() <
                 fragment_tables_[best->fragment]->arity();
      }
      if (best == nullptr || better) {
        best = &c;
        best_filtered = filtered;
        best_edges = fresh;
      }
    }
    // Lemma 5.1: every real decomposition covers every edge.
    XK_CHECK(best != nullptr);
    Piece piece;
    piece.table = fragment_tables_[best->fragment];
    piece.col_to_occ = best->embedding.node_map;
    pieces.push_back(std::move(piece));
    for (int e = 0; e < num_edges; ++e) {
      if ((best->embedding.edge_mask >> e) & 1u) {
        edge_done[static_cast<size_t>(e)] = true;
        --remaining;
      }
    }
    for (int node : best->embedding.node_map) {
      occ_bound[static_cast<size_t>(node)] = true;
    }
  }
  return pieces;
}

namespace {

/// Piece-at-a-time completion search: assign objects to every occurrence,
/// anchored at the clicked occurrence, minimizing the number of nodes not
/// already displayed (branch and bound; displayed completions first).
class CompletionSearch {
 public:
  CompletionSearch(const std::vector<ExpansionEngine::Piece>& pieces,
                   const cn::Ctssn& ctssn, const opt::NodeFilters& filters,
                   const present::PresentationGraph& pg,
                   const exec::ExecOptions& exec_options,
                   exec::ProbeStats* probes)
      : pieces_(pieces),
        ctssn_(ctssn),
        filters_(filters),
        pg_(pg),
        exec_options_(exec_options),
        probes_(probes) {}

  std::vector<storage::ObjectId> Run(int occ, storage::ObjectId candidate) {
    best_.clear();
    best_new_ = std::numeric_limits<int>::max();
    assignment_.assign(ctssn_.tree.nodes.size(), storage::kInvalidId);
    if (!PassesFilters(occ, candidate)) return {};
    assignment_[static_cast<size_t>(occ)] = candidate;
    Extend(0, pg_.IsDisplayed(occ, candidate) ? 0 : 1);
    return best_;
  }

 private:
  bool PassesFilters(int node, storage::ObjectId o) const {
    for (const storage::IdSet* set : filters_[static_cast<size_t>(node)]) {
      if (!set->contains(o)) return false;
    }
    return true;
  }

  void Extend(size_t pos, int new_nodes) {
    if (new_nodes >= best_new_) return;  // bound
    if (pos == pieces_.size()) {
      best_ = assignment_;
      best_new_ = new_nodes;
      return;
    }
    const ExpansionEngine::Piece& piece = pieces_[pos];

    // Bind already-assigned occurrences; remember the fresh columns.
    std::vector<exec::ColumnBinding> bindings;
    std::vector<int> fresh_cols;
    for (size_t col = 0; col < piece.col_to_occ.size(); ++col) {
      int node = piece.col_to_occ[col];
      storage::ObjectId bound = assignment_[static_cast<size_t>(node)];
      if (bound != storage::kInvalidId) {
        bindings.push_back(exec::ColumnBinding{static_cast<int>(col), bound});
      } else {
        fresh_cols.push_back(static_cast<int>(col));
      }
    }

    // Collect matching rows; score by how many fresh nodes are undisplayed,
    // then extend in ascending score order ("connect to the presentation
    // graph first").
    struct Row {
      std::vector<storage::ObjectId> fresh;
      int undisplayed;
    };
    std::vector<Row> rows;
    exec::ForEachMatch(
        *piece.table, bindings, {}, exec_options_,
        [&](storage::RowId r) {
          Row row;
          row.undisplayed = 0;
          row.fresh.reserve(fresh_cols.size());
          for (int col : fresh_cols) {
            int node = piece.col_to_occ[static_cast<size_t>(col)];
            storage::ObjectId v = piece.table->At(r, col);
            if (!PassesFilters(node, v)) return true;
            // Distinctness among same-segment occurrences.
            for (size_t o2 = 0; o2 < assignment_.size(); ++o2) {
              if (assignment_[o2] == v &&
                  ctssn_.tree.nodes[o2] ==
                      ctssn_.tree.nodes[static_cast<size_t>(node)]) {
                return true;
              }
            }
            if (!pg_.IsDisplayed(node, v)) ++row.undisplayed;
            row.fresh.push_back(v);
          }
          rows.push_back(std::move(row));
          return true;
        },
        probes_);
    std::stable_sort(rows.begin(), rows.end(),
                     [](const Row& a, const Row& b) {
                       return a.undisplayed < b.undisplayed;
                     });

    for (const Row& row : rows) {
      // Rows sharing fresh values across columns could break distinctness;
      // re-check pairwise among the row's own fresh assignments.
      bool self_dup = false;
      for (size_t i = 0; i < fresh_cols.size() && !self_dup; ++i) {
        for (size_t j = i + 1; j < fresh_cols.size(); ++j) {
          int ni = piece.col_to_occ[static_cast<size_t>(fresh_cols[i])];
          int nj = piece.col_to_occ[static_cast<size_t>(fresh_cols[j])];
          if (row.fresh[i] == row.fresh[j] &&
              ctssn_.tree.nodes[static_cast<size_t>(ni)] ==
                  ctssn_.tree.nodes[static_cast<size_t>(nj)]) {
            self_dup = true;
            break;
          }
        }
      }
      if (self_dup) continue;
      for (size_t i = 0; i < fresh_cols.size(); ++i) {
        int node = piece.col_to_occ[static_cast<size_t>(fresh_cols[i])];
        assignment_[static_cast<size_t>(node)] = row.fresh[i];
      }
      Extend(pos + 1, new_nodes + row.undisplayed);
      for (size_t i = 0; i < fresh_cols.size(); ++i) {
        int node = piece.col_to_occ[static_cast<size_t>(fresh_cols[i])];
        assignment_[static_cast<size_t>(node)] = storage::kInvalidId;
      }
    }
  }

  const std::vector<ExpansionEngine::Piece>& pieces_;
  const cn::Ctssn& ctssn_;
  const opt::NodeFilters& filters_;
  const present::PresentationGraph& pg_;
  const exec::ExecOptions& exec_options_;
  exec::ProbeStats* probes_;
  std::vector<storage::ObjectId> assignment_;
  std::vector<storage::ObjectId> best_;
  int best_new_ = 0;
};

}  // namespace

Result<std::vector<present::Mtton>> ExpansionEngine::ExpandNode(
    const cn::Ctssn& ctssn, const opt::NodeFilters& filters, int ctssn_index,
    int occ, const present::PresentationGraph& pg, Stats* stats) const {
  if (occ < 0 || occ >= ctssn.num_nodes()) {
    return Status::OutOfRange("bad occurrence");
  }
  exec::ProbeStats* probes = stats != nullptr ? &stats->probes : nullptr;

  // Candidate objects of this role: keyword-filtered when annotated,
  // otherwise everything adjacent to the current display.
  std::vector<storage::ObjectId> candidates;
  storage::IdSet seen;
  if (!filters[static_cast<size_t>(occ)].empty()) {
    const storage::IdSet* base = filters[static_cast<size_t>(occ)][0];
    for (storage::ObjectId o : *base) {
      if (seen.insert(o).second) candidates.push_back(o);
    }
  } else {
    auto adj = ctssn.tree.Adjacency();
    for (int ei : adj[static_cast<size_t>(occ)]) {
      const schema::TssTreeEdge& e = ctssn.tree.edges[static_cast<size_t>(ei)];
      int other = e.from == occ ? e.to : e.from;
      bool incoming = e.to == occ;  // walk neighbor -> occ
      for (const present::DisplayNode& dn : pg.Displayed()) {
        if (dn.first != other) continue;
        for (storage::ObjectId o :
             Neighbors(e.tss_edge, incoming, dn.second, probes)) {
          if (seen.insert(o).second) candidates.push_back(o);
        }
      }
    }
  }
  std::sort(candidates.begin(), candidates.end());
  if (stats != nullptr) stats->candidates += candidates.size();

  std::vector<Piece> pieces = PlanPieces(ctssn, occ, filters);
  std::vector<present::Mtton> out;
  CompletionSearch search(pieces, ctssn, filters, pg, exec_options_, probes);
  for (storage::ObjectId u : candidates) {
    std::vector<storage::ObjectId> assignment = search.Run(occ, u);
    if (assignment.empty()) continue;  // "If no connection was found ignore u"
    out.push_back(present::Mtton{ctssn_index, std::move(assignment), ctssn.cn_size});
    if (stats != nullptr) ++stats->expanded;
  }
  return out;
}

}  // namespace xk::engine
