// Copyright (c) the XKeyword authors.
//
// Fragments of a TSS graph decomposition (Definition 5.2): subtrees of an
// unfolded TSS graph. Each fragment is materialized as one connection
// relation whose columns are the fragment's occurrences (target-object ids).

#ifndef XK_DECOMP_FRAGMENT_H_
#define XK_DECOMP_FRAGMENT_H_

#include <string>
#include <vector>

#include "schema/tss_tree.h"

namespace xk::decomp {

/// Normal-form class of a fragment's connection relation (Section 5.1):
/// single edges are 4NF; wider relations are 4NF, inlined (redundancy of the
/// functional kind only), or MVD (non-trivial multivalued dependency,
/// Theorem 5.3).
enum class FragmentClass { k4NF, kInlined, kMVD };

const char* FragmentClassToString(FragmentClass c);

/// A fragment: a TssTree plus naming and the relation it maps to.
struct Fragment {
  schema::TssTree tree;
  /// Stable name; also the connection relation's table name ("F_P_O_L").
  std::string name;

  int size() const { return tree.size(); }

  /// Column name of occurrence `i` in the connection relation.
  std::string ColumnName(const schema::TssGraph& tss, int i) const;

  bool operator==(const Fragment& other) const {
    return tree.nodes == other.tree.nodes && tree.edges == other.tree.edges;
  }
};

/// Derives a deterministic fragment name from its tree.
std::string MakeFragmentName(const schema::TssTree& tree,
                             const schema::TssGraph& tss);

}  // namespace xk::decomp

#endif  // XK_DECOMP_FRAGMENT_H_
