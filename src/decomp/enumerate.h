// Copyright (c) the XKeyword authors.
//
// Enumeration of canonical TSS trees, used for (a) candidate fragments of a
// decomposition (subtrees of unfolded TSS graphs are exactly the trees of
// occurrences, Definition 5.1/5.2) and (b) the universe of candidate TSS
// network shapes of size up to M that the Figure-12 algorithm must cover.

#ifndef XK_DECOMP_ENUMERATE_H_
#define XK_DECOMP_ENUMERATE_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "schema/tss_tree.h"

namespace xk::decomp {

struct EnumerateOptions {
  /// Maximum number of edges.
  int max_size = 2;
  /// Include the single-occurrence trees of size 0 (CTSSNs may be single
  /// objects; fragments need at least one edge).
  bool include_empty = false;
  /// Drop structurally impossible trees (choice conflicts etc.) — they can
  /// be neither CTSSNs nor useful fragments.
  bool skip_impossible = true;
  /// Safety valve against combinatorial explosion on dense TSS graphs.
  size_t max_trees = 2'000'000;
};

/// All canonical trees over `tss` within the options' bounds. Trees are
/// deduplicated up to isomorphism (respecting segments, TSS edge ids and
/// directions) and returned in nondecreasing size order.
/// Fails with ResourceExhausted if max_trees is exceeded.
Result<std::vector<schema::TssTree>> EnumerateTrees(const schema::TssGraph& tss,
                                                    const EnumerateOptions& options);

}  // namespace xk::decomp

#endif  // XK_DECOMP_ENUMERATE_H_
