#include "decomp/decomposition.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "common/strings.h"

namespace xk::decomp {

using schema::TssGraph;
using schema::TssTree;
using schema::TssTreeEdge;

int Decomposition::FindFragment(const TssTree& tree, const TssGraph& tss) const {
  std::string key = schema::CanonicalKey(tree, tss);
  for (size_t i = 0; i < fragments.size(); ++i) {
    if (schema::CanonicalKey(fragments[i].tree, tss) == key) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int FragmentSizeBound(int max_network_size, int max_joins) {
  XK_CHECK_GE(max_joins, 0);
  XK_CHECK_GE(max_network_size, 1);
  return (max_network_size + max_joins) / (max_joins + 1);  // ceil(M / (B+1))
}

namespace {

Fragment MakeFragment(TssTree tree, const TssGraph& tss) {
  Fragment f;
  f.name = MakeFragmentName(tree, tss);
  f.tree = std::move(tree);
  return f;
}

/// All useful (possible) trees of size in [1, max_size].
Result<std::vector<TssTree>> UsefulTrees(const TssGraph& tss, int max_size) {
  EnumerateOptions opts;
  opts.max_size = max_size;
  opts.include_empty = false;
  opts.skip_impossible = true;
  return EnumerateTrees(tss, opts);
}

}  // namespace

Decomposition MakeMinimal(const TssGraph& tss, PhysicalDesign physical,
                          bool use_indexes_at_runtime) {
  Decomposition d;
  d.physical = physical;
  d.use_indexes_at_runtime = use_indexes_at_runtime;
  switch (physical) {
    case PhysicalDesign::kClusterPerDirection: d.name = "MinClust"; break;
    case PhysicalDesign::kHashIndexPerColumn: d.name = "MinNClustIndx"; break;
    case PhysicalDesign::kNone: d.name = "MinNClustNIndx"; break;
  }
  for (schema::TssEdgeId e = 0; e < tss.NumEdges(); ++e) {
    const schema::TssEdge& te = tss.edge(e);
    TssTree tree;
    tree.nodes = {te.from, te.to};
    tree.edges = {TssTreeEdge{0, 1, e}};
    d.fragments.push_back(MakeFragment(std::move(tree), tss));
  }
  return d;
}

Result<Decomposition> MakeComplete(const TssGraph& tss, int L) {
  Decomposition d;
  d.name = "Complete";
  d.physical = PhysicalDesign::kClusterPerDirection;
  XK_ASSIGN_OR_RETURN(std::vector<TssTree> trees, UsefulTrees(tss, L));
  for (TssTree& tree : trees) {
    d.fragments.push_back(MakeFragment(std::move(tree), tss));
  }
  return d;
}

Result<Decomposition> MakeMaximal(const TssGraph& tss, int M) {
  Decomposition d;
  d.name = "Maximal";
  d.physical = PhysicalDesign::kClusterPerDirection;
  XK_ASSIGN_OR_RETURN(std::vector<TssTree> trees, UsefulTrees(tss, M));
  for (TssTree& tree : trees) {
    d.fragments.push_back(MakeFragment(std::move(tree), tss));
  }
  return d;
}

namespace {

/// Incremental coverage state for one candidate network: the edge-masks of
/// every embedding of the decomposition-so-far, so testing a new fragment
/// only runs the matcher for that fragment.
struct NetworkCoverage {
  const TssTree* tree;
  std::vector<uint32_t> masks;

  /// Minimum pieces to cover all edges given masks + extra; INT_MAX if
  /// uncoverable. Networks have <= ~8 edges so the DP is tiny.
  int MinPieces(const std::vector<uint32_t>& extra) const {
    const uint32_t full = (1u << tree->size()) - 1;
    constexpr int kInf = 1 << 29;
    std::vector<int> dist(full + 1, kInf);
    dist[0] = 0;
    auto relax = [&](uint32_t mask, uint32_t bits) {
      uint32_t next = mask | bits;
      if (next != mask && dist[mask] + 1 < dist[next]) dist[next] = dist[mask] + 1;
    };
    for (uint32_t mask = 0; mask <= full; ++mask) {
      if (dist[mask] == (1 << 29)) continue;
      for (uint32_t bits : masks) relax(mask, bits);
      for (uint32_t bits : extra) relax(mask, bits);
    }
    return dist[full];
  }

  bool CoveredWith(const std::vector<uint32_t>& extra, int max_joins) const {
    int pieces = MinPieces(extra);
    return pieces != (1 << 29) && pieces - 1 <= max_joins;
  }
};

std::vector<uint32_t> EmbeddingMasks(const TssTree& frag, const TssTree& target,
                                     const TssGraph& tss) {
  std::vector<uint32_t> masks;
  for (const Embedding& e : FindEmbeddings(frag, target, tss, 0)) {
    masks.push_back(e.edge_mask);
  }
  return masks;
}

}  // namespace

Result<Decomposition> MakeXKeyword(const TssGraph& tss, int B, int M) {
  if (B < 0 || M < 1) return Status::InvalidArgument("need B >= 0, M >= 1");
  const int L = FragmentSizeBound(M, B);

  Decomposition d;
  d.name = "XKeyword";
  d.physical = PhysicalDesign::kClusterPerDirection;

  XK_ASSIGN_OR_RETURN(std::vector<TssTree> all_trees, UsefulTrees(tss, M));

  // Step 1: all non-MVD fragments of size <= L.
  for (const TssTree& tree : all_trees) {
    if (tree.size() > L) continue;
    if (Classify(tree, tss) != FragmentClass::kMVD) {
      d.fragments.push_back(MakeFragment(tree, tss));
    }
  }

  // Step 2: candidate TSS networks of size <= M not covered with <= B joins.
  // Embedding masks of the current decomposition are cached per network.
  std::vector<NetworkCoverage> uncovered;
  for (const TssTree& tree : all_trees) {
    NetworkCoverage cov{&tree, {}};
    for (const Fragment& f : d.fragments) {
      std::vector<uint32_t> masks = EmbeddingMasks(f.tree, tree, tss);
      cov.masks.insert(cov.masks.end(), masks.begin(), masks.end());
    }
    if (!cov.CoveredWith({}, B)) uncovered.push_back(std::move(cov));
  }

  auto adopt_fragment = [&](const TssTree& frag) {
    d.fragments.push_back(MakeFragment(frag, tss));
    std::vector<NetworkCoverage> still;
    for (NetworkCoverage& cov : uncovered) {
      std::vector<uint32_t> masks = EmbeddingMasks(frag, *cov.tree, tss);
      cov.masks.insert(cov.masks.end(), masks.begin(), masks.end());
      if (!cov.CoveredWith({}, B)) still.push_back(std::move(cov));
    }
    uncovered = std::move(still);
  };

  // Step 3: non-MVD fragments of size > L that help cover some remaining
  // network (Figure 11: a bigger non-MVD fragment can displace an MVD one).
  for (const TssTree& tree : all_trees) {
    if (uncovered.empty()) break;
    if (tree.size() <= L) continue;
    if (Classify(tree, tss) == FragmentClass::kMVD) continue;
    bool helps = false;
    for (const NetworkCoverage& cov : uncovered) {
      if (cov.CoveredWith(EmbeddingMasks(tree, *cov.tree, tss), B)) {
        helps = true;
        break;
      }
    }
    if (helps) adopt_fragment(tree);
  }

  // Step 4: minimum number of MVD fragments of size <= L for the rest
  // (greedy set cover — the exact problem is NP-complete).
  std::vector<const TssTree*> mvd_candidates;
  for (const TssTree& tree : all_trees) {
    if (tree.size() <= L && Classify(tree, tss) == FragmentClass::kMVD) {
      mvd_candidates.push_back(&tree);
    }
  }
  while (!uncovered.empty()) {
    const TssTree* best = nullptr;
    size_t best_covers = 0;
    for (const TssTree* candidate : mvd_candidates) {
      size_t covers = 0;
      for (const NetworkCoverage& cov : uncovered) {
        if (cov.CoveredWith(EmbeddingMasks(*candidate, *cov.tree, tss), B)) {
          ++covers;
        }
      }
      if (covers > best_covers) {
        best = candidate;
        best_covers = covers;
      }
    }
    if (best == nullptr) {
      // No MVD fragment helps; the join bound B is unreachable for the
      // remaining networks. They are still *evaluable* (Lemma 5.1 holds via
      // the single-edge fragments of step 1), just with more joins.
      XK_LOG(Warning) << d.name << ": " << uncovered.size()
                      << " networks stay above the B=" << B << " join bound";
      break;
    }
    adopt_fragment(*best);
  }
  return d;
}

Result<Decomposition> MakeInlined(const TssGraph& tss, int B, int M) {
  XK_ASSIGN_OR_RETURN(Decomposition d, MakeXKeyword(tss, B, M));
  d.name = "Inlined";
  // Which TSS edges appear in fragments wider than one edge?
  std::unordered_set<schema::TssEdgeId> covered_wide;
  for (const Fragment& f : d.fragments) {
    if (f.size() < 2) continue;
    for (const TssTreeEdge& e : f.tree.edges) covered_wide.insert(e.tss_edge);
  }
  std::vector<Fragment> kept;
  for (Fragment& f : d.fragments) {
    if (f.size() == 1 && covered_wide.contains(f.tree.edges[0].tss_edge)) {
      continue;  // a wider fragment serves this edge
    }
    kept.push_back(std::move(f));
  }
  d.fragments = std::move(kept);
  return d;
}

Decomposition Combine(const Decomposition& a, const Decomposition& b,
                      const TssGraph& tss, std::string name) {
  Decomposition d;
  d.name = std::move(name);
  d.physical = a.physical;
  d.use_indexes_at_runtime = a.use_indexes_at_runtime && b.use_indexes_at_runtime;
  std::unordered_set<std::string> seen;
  for (const Decomposition* src : {&a, &b}) {
    for (const Fragment& f : src->fragments) {
      if (seen.insert(schema::CanonicalKey(f.tree, tss)).second) {
        d.fragments.push_back(f);
      }
    }
  }
  return d;
}

}  // namespace xk::decomp
