#include "decomp/classify.h"

namespace xk::decomp {

using schema::Mult;
using schema::OutwardMult;
using schema::TssGraph;
using schema::TssTree;

bool IsKeyOccurrence(const TssTree& tree, const TssGraph& tss, int node) {
  // DFS from `node`; every edge must be to-one in the direction away from it.
  auto adj = tree.Adjacency();
  std::vector<bool> seen(tree.nodes.size(), false);
  std::vector<int> stack = {node};
  seen[static_cast<size_t>(node)] = true;
  while (!stack.empty()) {
    int v = stack.back();
    stack.pop_back();
    for (int ei : adj[static_cast<size_t>(v)]) {
      const schema::TssTreeEdge& e = tree.edges[static_cast<size_t>(ei)];
      int u = e.from == v ? e.to : e.from;
      if (seen[static_cast<size_t>(u)]) continue;
      if (OutwardMult(tree, tss, v, ei) != Mult::kOne) return false;
      seen[static_cast<size_t>(u)] = true;
      stack.push_back(u);
    }
  }
  return true;
}

FragmentClass Classify(const TssTree& tree, const TssGraph& tss) {
  auto adj = tree.Adjacency();

  // MVD: an occurrence with two outward-to-many branches.
  for (int v = 0; v < tree.num_nodes(); ++v) {
    int many = 0;
    for (int ei : adj[static_cast<size_t>(v)]) {
      if (OutwardMult(tree, tss, v, ei) == Mult::kMany) ++many;
    }
    if (many >= 2) return FragmentClass::kMVD;
  }

  // 4NF vs inlined: every to-one edge must depart from a key occurrence.
  for (int v = 0; v < tree.num_nodes(); ++v) {
    bool has_to_one = false;
    for (int ei : adj[static_cast<size_t>(v)]) {
      if (OutwardMult(tree, tss, v, ei) == Mult::kOne) {
        has_to_one = true;
        break;
      }
    }
    if (has_to_one && !IsKeyOccurrence(tree, tss, v)) return FragmentClass::kInlined;
  }
  return FragmentClass::k4NF;
}

bool IsUseless(const TssTree& tree, const TssGraph& tss) {
  return !schema::IsStructurallyPossible(tree, tss);
}

}  // namespace xk::decomp
