// Copyright (c) the XKeyword authors.
//
// Coverage of candidate TSS networks by decompositions (Section 5.1): a
// CTSSN C is covered by decomposition D with at most B joins when C's edges
// can be tiled by embeddings of D's fragments joined on shared occurrences.
// Choosing the tiling is the NP-complete optimizer subproblem the paper
// mentions; networks have <= ~8 edges, so an exact DP over edge bitmasks is
// feasible and used both by the Figure-12 decomposition algorithm and by the
// query optimizer.

#ifndef XK_DECOMP_COVERAGE_H_
#define XK_DECOMP_COVERAGE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "decomp/fragment.h"

namespace xk::decomp {

/// An occurrence-preserving embedding of a fragment into a target tree.
struct Embedding {
  int fragment_index = -1;
  /// fragment occurrence -> target occurrence (injective).
  std::vector<int> node_map;
  /// Bitmask over the target tree's edge indexes covered by the fragment.
  uint32_t edge_mask = 0;
};

/// All embeddings of `frag` into `target`: injective node maps preserving
/// segments, TSS edge ids, and edge directions.
std::vector<Embedding> FindEmbeddings(const schema::TssTree& frag,
                                      const schema::TssTree& target,
                                      const schema::TssGraph& tss,
                                      int fragment_index);

/// A tiling of a target tree by fragment embeddings.
struct Tiling {
  std::vector<Embedding> pieces;

  /// Joins needed to evaluate the target with this tiling. Because the
  /// target is a tree and the pieces are subtrees covering all edges, any
  /// piece order in which each piece shares an occurrence with an earlier
  /// one exists; joins = pieces - 1.
  int joins() const {
    return pieces.empty() ? 0 : static_cast<int>(pieces.size()) - 1;
  }
};

/// Minimum-piece tiling of `target` by the given fragments, or nullopt when
/// some edge is covered by no fragment. A size-0 target needs no pieces.
std::optional<Tiling> MinJoinTiling(const schema::TssTree& target,
                                    const schema::TssGraph& tss,
                                    const std::vector<Fragment>& fragments);

/// True if `target` can be evaluated with at most `max_joins` joins.
bool Covered(const schema::TssTree& target, const schema::TssGraph& tss,
             const std::vector<Fragment>& fragments, int max_joins);

}  // namespace xk::decomp

#endif  // XK_DECOMP_COVERAGE_H_
