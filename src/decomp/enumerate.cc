#include "decomp/enumerate.h"

#include <unordered_set>

#include "common/strings.h"

namespace xk::decomp {

using schema::TssEdge;
using schema::TssGraph;
using schema::TssTree;
using schema::TssTreeEdge;

Result<std::vector<TssTree>> EnumerateTrees(const TssGraph& tss,
                                            const EnumerateOptions& options) {
  std::vector<TssTree> out;
  std::unordered_set<std::string> seen;
  std::vector<TssTree> frontier;

  // Size-0 seeds: one occurrence per segment.
  for (schema::TssId t = 0; t < tss.NumSegments(); ++t) {
    TssTree tree;
    tree.nodes = {t};
    frontier.push_back(tree);
    seen.insert(schema::CanonicalKey(tree, tss));
    if (options.include_empty) out.push_back(frontier.back());
  }

  for (int size = 1; size <= options.max_size; ++size) {
    std::vector<TssTree> next;
    for (const TssTree& tree : frontier) {
      for (int v = 0; v < tree.num_nodes(); ++v) {
        schema::TssId seg = tree.nodes[static_cast<size_t>(v)];
        for (schema::TssEdgeId e : tss.incident_edges(seg)) {
          const TssEdge& te = tss.edge(e);
          // Attach a new occurrence on either side of the TSS edge.
          for (int as_source = 0; as_source < 2; ++as_source) {
            bool v_is_source = as_source == 1;
            if (v_is_source && te.from != seg) continue;
            if (!v_is_source && te.to != seg) continue;
            TssTree grown = tree;
            int fresh = grown.num_nodes();
            grown.nodes.push_back(v_is_source ? te.to : te.from);
            grown.edges.push_back(v_is_source ? TssTreeEdge{v, fresh, e}
                                              : TssTreeEdge{fresh, v, e});
            if (options.skip_impossible &&
                !schema::IsStructurallyPossible(grown, tss)) {
              continue;
            }
            std::string key = schema::CanonicalKey(grown, tss);
            if (!seen.insert(std::move(key)).second) continue;
            if (seen.size() > options.max_trees) {
              return Status::ResourceExhausted(
                  StrFormat("tree enumeration exceeded %zu trees",
                            options.max_trees));
            }
            next.push_back(std::move(grown));
          }
        }
      }
    }
    out.insert(out.end(), next.begin(), next.end());
    frontier = std::move(next);
    if (frontier.empty()) break;
  }
  return out;
}

}  // namespace xk::decomp
