// Copyright (c) the XKeyword authors.
//
// Materializes the connection relations of a decomposition from the target
// object graph: for each fragment F, a table with one ObjectId column per
// occurrence and "a tuple ... for each subgraph of type F in the target
// object graph" (Section 5), plus the physical design the policy prescribes.

#ifndef XK_DECOMP_RELATION_BUILDER_H_
#define XK_DECOMP_RELATION_BUILDER_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "decomp/decomposition.h"
#include "schema/decomposer.h"
#include "storage/catalog.h"

namespace xk::decomp {

/// Names the connection relation of fragment `f` within decomposition `d`
/// ("<decomposition>.<fragment>"), so several decompositions coexist in one
/// catalog for the Section-7 comparisons.
std::string RelationName(const Decomposition& d, const Fragment& f);

/// Builds (and freezes) all connection relations of `d` into `catalog`.
/// Idempotent per relation name: existing tables are left untouched.
Status BuildConnectionRelations(const Decomposition& d,
                                const schema::TargetObjectGraph& objects,
                                const schema::TssGraph& tss,
                                storage::Catalog* catalog);

/// Enumerates the instance subgraphs of `tree` in the target object graph,
/// invoking `fn` with one ObjectId per occurrence. Bindings are injective
/// (distinct occurrences bind distinct objects). Exposed for tests and for
/// the on-demand expansion engine.
void ForEachInstance(const schema::TssTree& tree,
                     const schema::TargetObjectGraph& objects,
                     const std::function<void(const std::vector<storage::ObjectId>&)>& fn);

}  // namespace xk::decomp

#endif  // XK_DECOMP_RELATION_BUILDER_H_
