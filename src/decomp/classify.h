// Copyright (c) the XKeyword authors.
//
// Fragment classification (Section 5.1, Theorem 5.3) and the useless-fragment
// rules. With the multiplicity model of schema/multiplicity.h, Theorem 5.3
// reduces to a local test:
//
//   A fragment has a non-trivial MVD  iff  some occurrence has two incident
//   fragment edges both oriented outward-to-many — given that occurrence's
//   binding the two branches vary independently, which is exactly
//   X ->-> branch1 | branch2.
//
// A non-MVD fragment is 4NF iff every to-one edge departs from a *key*
// occurrence (one that reaches every other occurrence via outward-to-one
// paths); otherwise the relation has a non-key functional dependency and is
// merely *inlined* (the inlined fragments of [5] the paper builds by
// default). Validated against every worked example of the paper: POL is
// inlined, OLPa is 4NF, SPO and PaLOLPa are MVD, single edges are 4NF.

#ifndef XK_DECOMP_CLASSIFY_H_
#define XK_DECOMP_CLASSIFY_H_

#include "decomp/fragment.h"

namespace xk::decomp {

/// Theorem 5.3 + the 4NF/inlined split.
FragmentClass Classify(const schema::TssTree& tree, const schema::TssGraph& tss);

inline FragmentClass Classify(const Fragment& f, const schema::TssGraph& tss) {
  return Classify(f.tree, tss);
}

/// True if occurrence `node` functionally determines every other occurrence
/// (all edges on all paths leaving `node` are outward-to-one).
bool IsKeyOccurrence(const schema::TssTree& tree, const schema::TssGraph& tss,
                     int node);

/// The useless-fragment rules of Section 5.1: a fragment no candidate TSS
/// network can use because it admits no instances — i.e. it is structurally
/// impossible (choice conflicts; two containment parents; forced duplicate
/// neighbors through to-one edges).
bool IsUseless(const schema::TssTree& tree, const schema::TssGraph& tss);

}  // namespace xk::decomp

#endif  // XK_DECOMP_CLASSIFY_H_
