#include "decomp/coverage.h"

#include <algorithm>

#include "common/logging.h"

namespace xk::decomp {

using schema::TssGraph;
using schema::TssTree;
using schema::TssTreeEdge;

namespace {

/// Backtracking matcher. Fragment edges are processed in a DFS order from
/// occurrence 0 so each edge always has one endpoint already mapped.
class Matcher {
 public:
  Matcher(const TssTree& frag, const TssTree& target, int fragment_index)
      : frag_(frag), target_(target), fragment_index_(fragment_index) {
    // DFS edge order from occurrence 0.
    auto adj = frag_.Adjacency();
    std::vector<bool> node_seen(frag_.nodes.size(), false);
    std::vector<int> stack = {0};
    node_seen[0] = true;
    while (!stack.empty()) {
      int v = stack.back();
      stack.pop_back();
      for (int ei : adj[static_cast<size_t>(v)]) {
        const TssTreeEdge& e = frag_.edges[static_cast<size_t>(ei)];
        int u = e.from == v ? e.to : e.from;
        if (node_seen[static_cast<size_t>(u)]) continue;
        node_seen[static_cast<size_t>(u)] = true;
        edge_order_.push_back(ei);
        stack.push_back(u);
      }
    }
    target_adj_ = target_.Adjacency();
  }

  std::vector<Embedding> Run() {
    node_map_.assign(frag_.nodes.size(), -1);
    used_.assign(target_.nodes.size(), false);
    for (int c = 0; c < target_.num_nodes(); ++c) {
      if (target_.nodes[static_cast<size_t>(c)] != frag_.nodes[0]) continue;
      node_map_[0] = c;
      used_[static_cast<size_t>(c)] = true;
      Extend(0, 0);
      used_[static_cast<size_t>(c)] = false;
      node_map_[0] = -1;
    }
    return std::move(results_);
  }

 private:
  void Extend(size_t edge_pos, uint32_t mask) {
    if (edge_pos == edge_order_.size()) {
      results_.push_back(Embedding{fragment_index_, node_map_, mask});
      return;
    }
    const TssTreeEdge& fe = frag_.edges[static_cast<size_t>(edge_order_[edge_pos])];
    // Exactly one endpoint is mapped (DFS order guarantees it).
    bool from_mapped = node_map_[static_cast<size_t>(fe.from)] != -1;
    int mapped_frag = from_mapped ? fe.from : fe.to;
    int free_frag = from_mapped ? fe.to : fe.from;
    int anchor = node_map_[static_cast<size_t>(mapped_frag)];

    for (int tei : target_adj_[static_cast<size_t>(anchor)]) {
      const TssTreeEdge& te = target_.edges[static_cast<size_t>(tei)];
      if (te.tss_edge != fe.tss_edge) continue;
      // Orientation must match: the mapped endpoint must play the same role.
      int target_free;
      if (from_mapped) {
        if (te.from != anchor) continue;
        target_free = te.to;
      } else {
        if (te.to != anchor) continue;
        target_free = te.from;
      }
      if (used_[static_cast<size_t>(target_free)]) continue;
      if (target_.nodes[static_cast<size_t>(target_free)] !=
          frag_.nodes[static_cast<size_t>(free_frag)]) {
        continue;
      }
      node_map_[static_cast<size_t>(free_frag)] = target_free;
      used_[static_cast<size_t>(target_free)] = true;
      Extend(edge_pos + 1, mask | (1u << tei));
      used_[static_cast<size_t>(target_free)] = false;
      node_map_[static_cast<size_t>(free_frag)] = -1;
    }
  }

  const TssTree& frag_;
  const TssTree& target_;
  int fragment_index_;
  std::vector<int> edge_order_;
  std::vector<std::vector<int>> target_adj_;
  std::vector<int> node_map_;
  std::vector<bool> used_;
  std::vector<Embedding> results_;
};

}  // namespace

std::vector<Embedding> FindEmbeddings(const TssTree& frag, const TssTree& target,
                                      const TssGraph& tss, int fragment_index) {
  (void)tss;
  if (frag.size() > target.size()) return {};
  return Matcher(frag, target, fragment_index).Run();
}

std::optional<Tiling> MinJoinTiling(const TssTree& target, const TssGraph& tss,
                                    const std::vector<Fragment>& fragments) {
  if (target.size() == 0) return Tiling{};
  XK_CHECK_LE(target.size(), 30);

  std::vector<Embedding> embeddings;
  for (size_t f = 0; f < fragments.size(); ++f) {
    std::vector<Embedding> found =
        FindEmbeddings(fragments[f].tree, target, tss, static_cast<int>(f));
    embeddings.insert(embeddings.end(), found.begin(), found.end());
  }
  if (embeddings.empty()) return std::nullopt;

  const uint32_t full = (1u << target.size()) - 1;
  constexpr int kInf = 1 << 29;
  std::vector<int> dist(full + 1, kInf);
  std::vector<std::pair<int, uint32_t>> parent(full + 1, {-1, 0});
  dist[0] = 0;
  for (uint32_t mask = 0; mask <= full; ++mask) {
    if (dist[mask] == kInf) continue;
    if (mask == full) break;
    for (size_t i = 0; i < embeddings.size(); ++i) {
      uint32_t next = mask | embeddings[i].edge_mask;
      if (next == mask) continue;
      if (dist[mask] + 1 < dist[next]) {
        dist[next] = dist[mask] + 1;
        parent[next] = {static_cast<int>(i), mask};
      }
    }
  }
  if (dist[full] == kInf) return std::nullopt;

  Tiling tiling;
  uint32_t cur = full;
  while (cur != 0) {
    auto [emb, prev] = parent[cur];
    tiling.pieces.push_back(embeddings[static_cast<size_t>(emb)]);
    cur = prev;
  }
  std::reverse(tiling.pieces.begin(), tiling.pieces.end());
  return tiling;
}

bool Covered(const TssTree& target, const TssGraph& tss,
             const std::vector<Fragment>& fragments, int max_joins) {
  std::optional<Tiling> tiling = MinJoinTiling(target, tss, fragments);
  return tiling.has_value() && tiling->joins() <= max_joins;
}

}  // namespace xk::decomp
