#include "decomp/fragment.h"

#include "common/strings.h"

namespace xk::decomp {

const char* FragmentClassToString(FragmentClass c) {
  switch (c) {
    case FragmentClass::k4NF: return "4NF";
    case FragmentClass::kInlined: return "inlined";
    case FragmentClass::kMVD: return "MVD";
  }
  return "?";
}

std::string Fragment::ColumnName(const schema::TssGraph& tss, int i) const {
  return StrFormat("%s_%d", tss.name(tree.nodes[static_cast<size_t>(i)]).c_str(), i);
}

std::string MakeFragmentName(const schema::TssTree& tree,
                             const schema::TssGraph& tss) {
  std::string name = "F";
  for (schema::TssId t : tree.nodes) {
    name += "_";
    name += tss.name(t);
  }
  // Disambiguate trees over the same multiset of segments by edge structure.
  name += "_e";
  for (const schema::TssTreeEdge& e : tree.edges) {
    name += StrFormat("%d.%d.%d", e.from, e.tss_edge, e.to);
  }
  return name;
}

}  // namespace xk::decomp
