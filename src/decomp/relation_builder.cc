#include "decomp/relation_builder.h"

#include <numeric>

#include "common/logging.h"
#include "common/strings.h"

namespace xk::decomp {

using schema::TargetObjectGraph;
using schema::TssGraph;
using schema::TssTree;
using schema::TssTreeEdge;

std::string RelationName(const Decomposition& d, const Fragment& f) {
  return d.name + "." + f.name;
}

void ForEachInstance(
    const TssTree& tree, const TargetObjectGraph& objects,
    const std::function<void(const std::vector<storage::ObjectId>&)>& fn) {
  // DFS edge order from occurrence 0 (one endpoint always bound).
  auto adj = tree.Adjacency();
  std::vector<int> edge_order;
  {
    std::vector<bool> seen(tree.nodes.size(), false);
    std::vector<int> stack = {0};
    seen[0] = true;
    while (!stack.empty()) {
      int v = stack.back();
      stack.pop_back();
      for (int ei : adj[static_cast<size_t>(v)]) {
        const TssTreeEdge& e = tree.edges[static_cast<size_t>(ei)];
        int u = e.from == v ? e.to : e.from;
        if (seen[static_cast<size_t>(u)]) continue;
        seen[static_cast<size_t>(u)] = true;
        edge_order.push_back(ei);
        stack.push_back(u);
      }
    }
  }

  std::vector<storage::ObjectId> binding(tree.nodes.size(), storage::kInvalidId);

  std::function<void(size_t)> extend = [&](size_t pos) {
    if (pos == edge_order.size()) {
      fn(binding);
      return;
    }
    const TssTreeEdge& e = tree.edges[static_cast<size_t>(edge_order[pos])];
    bool from_bound = binding[static_cast<size_t>(e.from)] != storage::kInvalidId;
    int bound_occ = from_bound ? e.from : e.to;
    int free_occ = from_bound ? e.to : e.from;
    storage::ObjectId anchor = binding[static_cast<size_t>(bound_occ)];
    const std::vector<storage::ObjectId>& neighbors =
        from_bound ? objects.Forward(anchor, e.tss_edge)
                   : objects.Reverse(anchor, e.tss_edge);
    for (storage::ObjectId next : neighbors) {
      // Injectivity: occurrences bind distinct objects.
      bool dup = false;
      for (storage::ObjectId b : binding) {
        if (b == next) {
          dup = true;
          break;
        }
      }
      if (dup) continue;
      binding[static_cast<size_t>(free_occ)] = next;
      extend(pos + 1);
      binding[static_cast<size_t>(free_occ)] = storage::kInvalidId;
    }
  };

  for (storage::ObjectId o : objects.ObjectsOfSegment(tree.nodes[0])) {
    binding[0] = o;
    extend(0);
    binding[0] = storage::kInvalidId;
  }
}

Status BuildConnectionRelations(const Decomposition& d,
                                const TargetObjectGraph& objects,
                                const TssGraph& tss, storage::Catalog* catalog) {
  for (const Fragment& f : d.fragments) {
    const std::string rel_name = RelationName(d, f);
    if (catalog->HasTable(rel_name)) continue;

    std::vector<std::string> columns;
    for (int i = 0; i < f.tree.num_nodes(); ++i) {
      columns.push_back(f.ColumnName(tss, i));
    }
    XK_ASSIGN_OR_RETURN(storage::Table * table,
                        catalog->CreateTable(rel_name, std::move(columns)));

    ForEachInstance(f.tree, objects, [&](const std::vector<storage::ObjectId>& row) {
      XK_CHECK(table->Append(storage::TupleView(row)).ok());
    });

    switch (d.physical) {
      case PhysicalDesign::kClusterPerDirection: {
        // Physical order on the column-0 direction; an index-organized
        // duplicate (composite index) per further direction.
        std::vector<int> key(static_cast<size_t>(table->arity()));
        std::iota(key.begin(), key.end(), 0);
        XK_RETURN_NOT_OK(table->Cluster(key));
        for (int lead = 1; lead < table->arity(); ++lead) {
          std::vector<int> order;
          order.push_back(lead);
          for (int c = 0; c < table->arity(); ++c) {
            if (c != lead) order.push_back(c);
          }
          XK_RETURN_NOT_OK(table->BuildCompositeIndex(order));
        }
        break;
      }
      case PhysicalDesign::kHashIndexPerColumn: {
        for (int c = 0; c < table->arity(); ++c) {
          XK_RETURN_NOT_OK(table->BuildHashIndex(c));
        }
        break;
      }
      case PhysicalDesign::kNone:
        break;
    }
    table->Freeze();
  }
  return Status::OK();
}

}  // namespace xk::decomp
