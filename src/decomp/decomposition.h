// Copyright (c) the XKeyword authors.
//
// Decompositions of the TSS graph (Definition 5.2) and the policies compared
// in Section 7:
//
//   Minimal        — a fragment per TSS edge (B = M - 1 joins).
//   XKeyword       — the Figure-12 algorithm: inlined, non-MVD fragments of
//                    size <= L = ceil(M / (B+1)), bigger non-MVD fragments
//                    where they remove the need for MVD fragments, and a
//                    minimal set of MVD fragments for whatever remains.
//   Complete       — every (useful) fragment of size <= L, MVD included.
//   Maximal        — a fragment per possible CTSSN shape (zero joins; space
//                    infeasible in practice; supported for small graphs).
//
// Physical designs attach per policy: clusterings per direction (MinClust,
// XKeyword), single-attribute hash indexes (MinNClustIndx), or nothing
// (MinNClustNIndx, which also forbids index use at run time).

#ifndef XK_DECOMP_DECOMPOSITION_H_
#define XK_DECOMP_DECOMPOSITION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "decomp/classify.h"
#include "decomp/coverage.h"
#include "decomp/enumerate.h"

namespace xk::decomp {

/// How connection relations are clustered / indexed when materialized.
enum class PhysicalDesign {
  /// Physically cluster on the first column and add a composite index
  /// (i, rest...) per further column — "all possible clusterings for each
  /// fragment" via index-organized duplicates.
  kClusterPerDirection,
  /// Single-attribute hash index on every column.
  kHashIndexPerColumn,
  /// No indexes, no clustering.
  kNone,
};

/// A named decomposition: fragments plus physical design.
struct Decomposition {
  std::string name;
  std::vector<Fragment> fragments;
  PhysicalDesign physical = PhysicalDesign::kClusterPerDirection;
  /// When false, probes fall back to full scans even if indexes exist
  /// (models a DBMS forbidden from using them).
  bool use_indexes_at_runtime = true;

  /// Index of a fragment with the same tree (canonical match), or -1.
  int FindFragment(const schema::TssTree& tree, const schema::TssGraph& tss) const;
};

/// Theorem 5.1's fragment size bound: L = ceil(M / (B + 1)).
int FragmentSizeBound(int max_network_size, int max_joins);

/// Minimal decomposition: one fragment per TSS edge.
Decomposition MakeMinimal(const schema::TssGraph& tss, PhysicalDesign physical,
                          bool use_indexes_at_runtime = true);

/// Complete decomposition: all useful fragments of size <= L (MVD included).
Result<Decomposition> MakeComplete(const schema::TssGraph& tss, int L);

/// Maximal decomposition: one fragment per possible network shape of size
/// <= M (zero joins for every CTSSN). Exponential space; small graphs only.
Result<Decomposition> MakeMaximal(const schema::TssGraph& tss, int M);

/// The XKeyword decomposition algorithm (Figure 12), parameterized by the
/// join bound B and the maximum candidate TSS network size M.
Result<Decomposition> MakeXKeyword(const schema::TssGraph& tss, int B, int M);

/// The "inlined" decomposition of the Figure-16(b) experiment: the XKeyword
/// fragments with single-edge fragments dropped wherever a wider fragment
/// already covers the edge. Adjacent-node probes must then scan wider
/// relations, which is what makes it slower for on-demand expansion.
Result<Decomposition> MakeInlined(const schema::TssGraph& tss, int B, int M);

/// Union of two decompositions (fragments deduplicated); used for the
/// "combination" strategy of the on-demand expansion experiment (Fig 16b).
Decomposition Combine(const Decomposition& a, const Decomposition& b,
                      const schema::TssGraph& tss, std::string name);

}  // namespace xk::decomp

#endif  // XK_DECOMP_DECOMPOSITION_H_
