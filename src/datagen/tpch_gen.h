// Copyright (c) the XKeyword authors.
//
// Synthetic generator for the TPC-H-derived XML database of Figures 1, 5 and
// 6: persons placing orders of lineitems that reference parts (with
// recursive sub-part references) or products, supplied by persons, plus
// service calls. Substitutes for the paper's TPC-H-based dataset with the
// same schema graph, target decomposition, and keyword-bearing fields.

#ifndef XK_DATAGEN_TPCH_GEN_H_
#define XK_DATAGEN_TPCH_GEN_H_

#include <memory>

#include "common/result.h"
#include "schema/tss_graph.h"
#include "xml/xml_graph.h"

namespace xk::datagen {

struct TpchConfig {
  int num_persons = 50;
  int num_parts = 80;
  int num_products = 40;
  /// Expected counts (each instance drawn uniformly in [0, 2*avg]).
  double avg_orders_per_person = 2.0;
  double avg_lineitems_per_order = 3.0;
  double avg_service_calls_per_person = 1.0;
  double avg_subparts_per_part = 1.5;
  /// Fraction of lineitems whose `line` choice picks a part (vs product).
  double part_line_fraction = 0.7;
  /// Vocabulary sizes; smaller = more keyword collisions (denser results).
  int part_name_vocab = 12;
  int person_name_vocab = 25;
  uint64_t seed = 42;
};

/// Owns the generated XML graph together with its schema and TSS graphs
/// (the TSS graph holds a pointer into the schema, so the bundle is
/// non-copyable and heap-allocated).
class TpchDatabase {
 public:
  static Result<std::unique_ptr<TpchDatabase>> Generate(const TpchConfig& config);

  TpchDatabase(const TpchDatabase&) = delete;
  TpchDatabase& operator=(const TpchDatabase&) = delete;

  const xml::XmlGraph& graph() const { return graph_; }
  const schema::SchemaGraph& schema() const { return schema_; }
  const schema::TssGraph& tss() const { return *tss_; }

  /// Part names used, for building queries with known selectivity.
  const std::vector<std::string>& part_names() const { return part_names_; }
  const std::vector<std::string>& person_names() const { return person_names_; }

 private:
  TpchDatabase() = default;

  xml::XmlGraph graph_;
  schema::SchemaGraph schema_;
  std::unique_ptr<schema::TssGraph> tss_;
  std::vector<std::string> part_names_;
  std::vector<std::string> person_names_;
};

/// Builds only the Figure-5 schema graph into `schema` and returns the TSS
/// graph of Figure 6 over it (finalized, annotated). Used by tests that
/// construct instances by hand.
Result<std::unique_ptr<schema::TssGraph>> BuildTpchSchema(
    schema::SchemaGraph* schema);

}  // namespace xk::datagen

#endif  // XK_DATAGEN_TPCH_GEN_H_
