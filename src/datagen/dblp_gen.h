// Copyright (c) the XKeyword authors.
//
// Synthetic DBLP-like generator over the exact Figure-14 schema:
// conferences containing years containing papers with titles/pages/urls and
// author children, plus paper-to-paper citation references. The paper's
// experiments ran on real DBLP with synthetic citations ("we randomly added
// a set of citations ... such that the average number of citations of each
// paper is 20"); this generator reproduces the workload-relevant properties
// (schema shape, Zipf keyword skew, citation fanout) at configurable scale.

#ifndef XK_DATAGEN_DBLP_GEN_H_
#define XK_DATAGEN_DBLP_GEN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "schema/tss_graph.h"
#include "xml/xml_graph.h"

namespace xk::datagen {

struct DblpConfig {
  int num_conferences = 5;
  int years_per_conference = 4;
  double avg_papers_per_year = 8.0;
  double avg_authors_per_paper = 2.5;
  /// The paper used 20; smaller defaults keep unit tests fast.
  double avg_citations_per_paper = 5.0;
  int author_vocab = 60;
  int title_vocab = 80;
  int title_words = 4;
  uint64_t seed = 7;
};

class DblpDatabase {
 public:
  static Result<std::unique_ptr<DblpDatabase>> Generate(const DblpConfig& config);

  DblpDatabase(const DblpDatabase&) = delete;
  DblpDatabase& operator=(const DblpDatabase&) = delete;

  const xml::XmlGraph& graph() const { return graph_; }
  const schema::SchemaGraph& schema() const { return schema_; }
  const schema::TssGraph& tss() const { return *tss_; }

  const std::vector<std::string>& author_names() const { return author_names_; }
  const std::vector<std::string>& title_words() const { return title_words_; }

 private:
  DblpDatabase() = default;

  xml::XmlGraph graph_;
  schema::SchemaGraph schema_;
  std::unique_ptr<schema::TssGraph> tss_;
  std::vector<std::string> author_names_;
  std::vector<std::string> title_words_;
};

/// Builds the Figure-14 schema into `schema` and returns its finalized,
/// annotated TSS graph (Conference, Year, Paper, Author).
Result<std::unique_ptr<schema::TssGraph>> BuildDblpSchema(
    schema::SchemaGraph* schema);

}  // namespace xk::datagen

#endif  // XK_DATAGEN_DBLP_GEN_H_
