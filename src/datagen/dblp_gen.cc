#include "datagen/dblp_gen.h"

#include "common/logging.h"
#include "common/random.h"
#include "common/strings.h"

namespace xk::datagen {

using schema::SchemaGraph;
using schema::SchemaNodeId;
using schema::TssGraph;

namespace {

struct DblpSchemaNodes {
  SchemaNodeId conference, conf_name;
  SchemaNodeId confyear, year;
  SchemaNodeId paper, title, pages, url;
  SchemaNodeId author;
  SchemaNodeId cite;  // dummy
};

DblpSchemaNodes BuildNodesAndEdges(SchemaGraph* s) {
  DblpSchemaNodes n;
  n.conference = s->AddNode("conference");
  n.conf_name = s->AddNode("name");
  n.confyear = s->AddNode("confyear");
  n.year = s->AddNode("year");
  n.paper = s->AddNode("paper");
  n.title = s->AddNode("title");
  n.pages = s->AddNode("pages");
  n.url = s->AddNode("url");
  n.author = s->AddNode("author");
  n.cite = s->AddNode("cite");

  auto add_c = [&](SchemaNodeId a, SchemaNodeId b, bool many) {
    XK_CHECK(s->AddContainmentEdge(a, b, many).ok());
  };
  add_c(n.conference, n.conf_name, false);
  add_c(n.conference, n.confyear, true);
  add_c(n.confyear, n.year, false);
  add_c(n.confyear, n.paper, true);
  add_c(n.paper, n.title, false);
  add_c(n.paper, n.pages, false);
  add_c(n.paper, n.url, false);
  add_c(n.paper, n.author, true);
  add_c(n.paper, n.cite, true);
  XK_CHECK(s->AddReferenceEdge(n.cite, n.paper, /*max_occurs_many=*/false).ok());
  return n;
}

Result<std::unique_ptr<TssGraph>> BuildTss(const SchemaGraph& schema,
                                           const DblpSchemaNodes& n) {
  auto tss = std::make_unique<TssGraph>(&schema);
  XK_ASSIGN_OR_RETURN(schema::TssId c,
                      tss->AddSegment("Conf", n.conference, {n.conf_name}));
  XK_ASSIGN_OR_RETURN(schema::TssId y, tss->AddSegment("Year", n.confyear, {n.year}));
  XK_ASSIGN_OR_RETURN(schema::TssId p, tss->AddSegment("Paper", n.paper,
                                                       {n.title, n.pages, n.url}));
  XK_ASSIGN_OR_RETURN(schema::TssId a, tss->AddSegment("Author", n.author));
  XK_RETURN_NOT_OK(tss->Finalize());

  auto annotate = [&](schema::TssId from, schema::TssId to, const char* fwd,
                      const char* rev) {
    auto e = tss->FindEdge(from, to);
    if (e.ok()) XK_CHECK(tss->AnnotateEdge(*e, fwd, rev).ok());
  };
  annotate(c, y, "in year", "of conference");
  annotate(y, p, "contains paper", "in issue");
  annotate(p, a, "by author", "of paper");
  annotate(p, p, "cites", "is cited by");
  return tss;
}

}  // namespace

Result<std::unique_ptr<TssGraph>> BuildDblpSchema(SchemaGraph* schema) {
  DblpSchemaNodes nodes = BuildNodesAndEdges(schema);
  return BuildTss(*schema, nodes);
}

Result<std::unique_ptr<DblpDatabase>> DblpDatabase::Generate(
    const DblpConfig& config) {
  auto db = std::unique_ptr<DblpDatabase>(new DblpDatabase());
  DblpSchemaNodes n = BuildNodesAndEdges(&db->schema_);
  XK_ASSIGN_OR_RETURN(db->tss_, BuildTss(db->schema_, n));

  Random rng(config.seed);
  ZipfDistribution author_dist(static_cast<size_t>(config.author_vocab), 0.9);
  ZipfDistribution word_dist(static_cast<size_t>(config.title_vocab), 0.9);

  static const char* kSeedAuthors[] = {"ullman", "widom", "garcia", "molina",
                                       "gray", "stonebraker", "codd", "date",
                                       "abiteboul", "suciu"};
  static const char* kSeedWords[] = {"keyword", "search",  "xml",     "graph",
                                     "index",   "query",   "storage", "proximity",
                                     "join",    "semistructured"};
  for (int i = 0; i < config.author_vocab; ++i) {
    db->author_names_.push_back(i < 10 ? kSeedAuthors[i] : StrFormat("author%d", i));
  }
  for (int i = 0; i < config.title_vocab; ++i) {
    db->title_words_.push_back(i < 10 ? kSeedWords[i] : StrFormat("topic%d", i));
  }

  xml::XmlGraph& g = db->graph_;
  std::vector<xml::NodeId> papers;

  for (int c = 0; c < config.num_conferences; ++c) {
    xml::NodeId conf = g.AddNode("conference");
    xml::NodeId name = g.AddNode("name", StrFormat("conf%d", c));
    XK_CHECK(g.AddContainmentEdge(conf, name).ok());
    for (int y = 0; y < config.years_per_conference; ++y) {
      xml::NodeId confyear = g.AddNode("confyear");
      xml::NodeId year = g.AddNode("year", StrFormat("%d", 1999 + y));
      XK_CHECK(g.AddContainmentEdge(conf, confyear).ok());
      XK_CHECK(g.AddContainmentEdge(confyear, year).ok());
      int num_papers = static_cast<int>(
          rng.Uniform(1, static_cast<int64_t>(2 * config.avg_papers_per_year)));
      for (int p = 0; p < num_papers; ++p) {
        xml::NodeId paper = g.AddNode("paper");
        std::string title;
        for (int w = 0; w < config.title_words; ++w) {
          if (w > 0) title += " ";
          title += db->title_words_[word_dist.Sample(&rng)];
        }
        xml::NodeId title_node = g.AddNode("title", title);
        xml::NodeId pages = g.AddNode(
            "pages", StrFormat("%lld-%lld", static_cast<long long>(rng.Uniform(1, 400)),
                               static_cast<long long>(rng.Uniform(401, 800))));
        xml::NodeId url = g.AddNode(
            "url", StrFormat("http://dblp/%zu", papers.size()));
        XK_CHECK(g.AddContainmentEdge(confyear, paper).ok());
        XK_CHECK(g.AddContainmentEdge(paper, title_node).ok());
        XK_CHECK(g.AddContainmentEdge(paper, pages).ok());
        XK_CHECK(g.AddContainmentEdge(paper, url).ok());
        int num_authors = static_cast<int>(
            rng.Uniform(1, static_cast<int64_t>(2 * config.avg_authors_per_paper)));
        for (int a = 0; a < num_authors; ++a) {
          xml::NodeId author =
              g.AddNode("author", db->author_names_[author_dist.Sample(&rng)]);
          XK_CHECK(g.AddContainmentEdge(paper, author).ok());
        }
        papers.push_back(paper);
      }
    }
  }

  // Citations: uniform random targets, the paper's own methodology.
  for (xml::NodeId paper : papers) {
    int cites = static_cast<int>(
        rng.Uniform(0, static_cast<int64_t>(2 * config.avg_citations_per_paper)));
    for (int c = 0; c < cites; ++c) {
      xml::NodeId target = rng.Pick(papers);
      if (target == paper) continue;  // no self-citations
      xml::NodeId cite = g.AddNode("cite");
      XK_CHECK(g.AddContainmentEdge(paper, cite).ok());
      XK_CHECK(g.AddReferenceEdge(cite, target).ok());
    }
  }
  return db;
}

}  // namespace xk::datagen
