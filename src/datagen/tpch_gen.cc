#include "datagen/tpch_gen.h"

#include <algorithm>

#include "common/logging.h"
#include "common/random.h"
#include "common/strings.h"

namespace xk::datagen {

using schema::NodeKind;
using schema::SchemaGraph;
using schema::SchemaNodeId;
using schema::TssGraph;

namespace {

/// Schema node handles used by the generator.
struct TpchSchemaNodes {
  SchemaNodeId person, person_name, nation;
  SchemaNodeId service_call, sc_descr, sc_date;
  SchemaNodeId order, order_date;
  SchemaNodeId lineitem, quantity, shipdate, supplier, line;
  SchemaNodeId part, part_key, part_name, sub;
  SchemaNodeId product, prodkey, pr_descr;
};

TpchSchemaNodes BuildNodesAndEdges(SchemaGraph* s) {
  TpchSchemaNodes n;
  n.person = s->AddNode("person");
  n.person_name = s->AddNode("name");
  n.nation = s->AddNode("nation");
  n.service_call = s->AddNode("service_call");
  n.sc_descr = s->AddNode("descr");
  n.sc_date = s->AddNode("date");
  n.order = s->AddNode("order");
  n.order_date = s->AddNode("date");
  n.lineitem = s->AddNode("lineitem");
  n.quantity = s->AddNode("quantity");
  n.shipdate = s->AddNode("shipdate");
  n.supplier = s->AddNode("supplier");
  n.line = s->AddNode("line", NodeKind::kChoice);
  n.part = s->AddNode("part");
  n.part_key = s->AddNode("key");
  n.part_name = s->AddNode("name");
  n.sub = s->AddNode("sub");
  n.product = s->AddNode("product");
  n.prodkey = s->AddNode("prodkey");
  n.pr_descr = s->AddNode("descr");

  auto add_c = [&](SchemaNodeId a, SchemaNodeId b, bool many) {
    XK_CHECK(s->AddContainmentEdge(a, b, many).ok());
  };
  auto add_r = [&](SchemaNodeId a, SchemaNodeId b) {
    XK_CHECK(s->AddReferenceEdge(a, b, /*max_occurs_many=*/false).ok());
  };
  add_c(n.person, n.person_name, false);
  add_c(n.person, n.nation, false);
  add_c(n.person, n.service_call, true);
  add_c(n.service_call, n.sc_descr, false);
  add_c(n.service_call, n.sc_date, false);
  add_c(n.person, n.order, true);
  add_c(n.order, n.order_date, false);
  add_c(n.order, n.lineitem, true);
  add_c(n.lineitem, n.quantity, false);
  add_c(n.lineitem, n.shipdate, false);
  add_c(n.lineitem, n.supplier, false);
  add_r(n.supplier, n.person);
  add_c(n.lineitem, n.line, false);
  add_r(n.line, n.part);
  add_r(n.line, n.product);
  add_c(n.part, n.part_key, false);
  add_c(n.part, n.part_name, false);
  add_c(n.part, n.sub, true);
  add_r(n.sub, n.part);
  add_c(n.product, n.prodkey, false);
  add_c(n.product, n.pr_descr, false);
  return n;
}

Result<std::unique_ptr<TssGraph>> BuildTss(const SchemaGraph& schema,
                                           const TpchSchemaNodes& n) {
  auto tss = std::make_unique<TssGraph>(&schema);
  XK_ASSIGN_OR_RETURN(schema::TssId p,
                      tss->AddSegment("P", n.person, {n.person_name, n.nation}));
  XK_ASSIGN_OR_RETURN(schema::TssId s, tss->AddSegment("S", n.service_call,
                                                       {n.sc_descr, n.sc_date}));
  XK_ASSIGN_OR_RETURN(schema::TssId o, tss->AddSegment("O", n.order, {n.order_date}));
  XK_ASSIGN_OR_RETURN(schema::TssId l, tss->AddSegment("L", n.lineitem,
                                                       {n.quantity, n.shipdate}));
  XK_ASSIGN_OR_RETURN(schema::TssId pa,
                      tss->AddSegment("Pa", n.part, {n.part_key, n.part_name}));
  XK_ASSIGN_OR_RETURN(schema::TssId pr, tss->AddSegment("Pr", n.product,
                                                        {n.prodkey, n.pr_descr}));
  XK_RETURN_NOT_OK(tss->Finalize());

  auto annotate = [&](schema::TssId a, schema::TssId b, const char* fwd,
                      const char* rev) {
    auto e = tss->FindEdge(a, b);
    if (e.ok()) XK_CHECK(tss->AnnotateEdge(*e, fwd, rev).ok());
    return e.ok();
  };
  annotate(p, s, "issued", "issued by");
  annotate(p, o, "placed", "placed by");
  annotate(o, l, "contains", "is contained");
  annotate(l, p, "supplied by", "supplier");
  annotate(l, pa, "line", "line of");
  annotate(l, pr, "line", "line of");
  annotate(pa, pa, "sub-part", "sub-part of");
  return tss;
}

}  // namespace

Result<std::unique_ptr<TssGraph>> BuildTpchSchema(SchemaGraph* schema) {
  TpchSchemaNodes nodes = BuildNodesAndEdges(schema);
  return BuildTss(*schema, nodes);
}

Result<std::unique_ptr<TpchDatabase>> TpchDatabase::Generate(
    const TpchConfig& config) {
  auto db = std::unique_ptr<TpchDatabase>(new TpchDatabase());
  TpchSchemaNodes n = BuildNodesAndEdges(&db->schema_);
  XK_ASSIGN_OR_RETURN(db->tss_, BuildTss(db->schema_, n));

  Random rng(config.seed);
  ZipfDistribution part_name_dist(static_cast<size_t>(config.part_name_vocab), 0.8);
  ZipfDistribution person_name_dist(static_cast<size_t>(config.person_name_vocab),
                                    0.8);

  // Vocabularies. A fixed electronics-flavored prefix pool keeps the paper's
  // running examples ("TV", "VCR", "DVD", "John") expressible.
  static const char* kPartWords[] = {"tv",    "vcr",   "dvd",   "radio", "tuner",
                                     "amp",   "cable", "remote", "screen", "antenna",
                                     "speaker", "deck"};
  static const char* kFirstNames[] = {"john", "mike", "mary", "anna",  "peter",
                                      "laura", "james", "nina", "oscar", "wendy"};
  static const char* kNations[] = {"us", "france", "japan", "brazil", "india"};

  db->part_names_.clear();
  for (int i = 0; i < config.part_name_vocab; ++i) {
    std::string name = i < 12 ? kPartWords[i]
                              : StrFormat("part%c%c", 'a' + i % 26, 'a' + (i / 26) % 26);
    db->part_names_.push_back(name);
  }
  db->person_names_.clear();
  for (int i = 0; i < config.person_name_vocab; ++i) {
    std::string name =
        i < 10 ? kFirstNames[i] : StrFormat("user%d", i);
    db->person_names_.push_back(name);
  }

  xml::XmlGraph& g = db->graph_;
  auto count = [&rng](double avg) {
    return static_cast<int>(rng.Uniform(0, static_cast<int64_t>(2 * avg)));
  };

  // Parts (roots) with recursive sub-part references.
  std::vector<xml::NodeId> parts;
  for (int i = 0; i < config.num_parts; ++i) {
    xml::NodeId part = g.AddNode("part");
    xml::NodeId key = g.AddNode("key", StrFormat("%d", 1000 + i));
    xml::NodeId name = g.AddNode(
        "name", db->part_names_[part_name_dist.Sample(&rng)]);
    XK_CHECK(g.AddContainmentEdge(part, key).ok());
    XK_CHECK(g.AddContainmentEdge(part, name).ok());
    parts.push_back(part);
  }
  for (int i = 0; i < config.num_parts; ++i) {
    int subs = count(config.avg_subparts_per_part);
    for (int j = 0; j < subs; ++j) {
      // Reference a strictly later part: keeps the part hierarchy acyclic,
      // as bill-of-material data is.
      if (i + 1 >= config.num_parts) break;
      int target = static_cast<int>(
          rng.Uniform(i + 1, config.num_parts - 1));
      xml::NodeId sub = g.AddNode("sub");
      XK_CHECK(g.AddContainmentEdge(parts[static_cast<size_t>(i)], sub).ok());
      XK_CHECK(g.AddReferenceEdge(sub, parts[static_cast<size_t>(target)]).ok());
    }
  }

  // Products.
  std::vector<xml::NodeId> products;
  for (int i = 0; i < config.num_products; ++i) {
    xml::NodeId product = g.AddNode("product");
    xml::NodeId key = g.AddNode("prodkey", StrFormat("%d", 2000 + i));
    std::string descr =
        StrFormat("set of %s and %s",
                  db->part_names_[part_name_dist.Sample(&rng)].c_str(),
                  db->part_names_[part_name_dist.Sample(&rng)].c_str());
    xml::NodeId d = g.AddNode("descr", descr);
    XK_CHECK(g.AddContainmentEdge(product, key).ok());
    XK_CHECK(g.AddContainmentEdge(product, d).ok());
    products.push_back(product);
  }

  // Persons with service calls, orders, lineitems.
  std::vector<xml::NodeId> persons;
  for (int i = 0; i < config.num_persons; ++i) {
    xml::NodeId person = g.AddNode("person");
    xml::NodeId name = g.AddNode(
        "name", db->person_names_[person_name_dist.Sample(&rng)]);
    xml::NodeId nation = g.AddNode("nation", kNations[rng.Uniform(0, 4)]);
    XK_CHECK(g.AddContainmentEdge(person, name).ok());
    XK_CHECK(g.AddContainmentEdge(person, nation).ok());
    persons.push_back(person);
  }
  for (int i = 0; i < config.num_persons; ++i) {
    xml::NodeId person = persons[static_cast<size_t>(i)];
    int calls = count(config.avg_service_calls_per_person);
    for (int c = 0; c < calls; ++c) {
      xml::NodeId call = g.AddNode("service_call");
      xml::NodeId descr = g.AddNode(
          "descr", StrFormat("%s error",
                             db->part_names_[part_name_dist.Sample(&rng)].c_str()));
      xml::NodeId date = g.AddNode(
          "date", StrFormat("2002-%02lld-%02lld", static_cast<long long>(rng.Uniform(1, 12)),
                    static_cast<long long>(rng.Uniform(1, 28))));
      XK_CHECK(g.AddContainmentEdge(person, call).ok());
      XK_CHECK(g.AddContainmentEdge(call, descr).ok());
      XK_CHECK(g.AddContainmentEdge(call, date).ok());
    }
    int orders = count(config.avg_orders_per_person);
    for (int o = 0; o < orders; ++o) {
      xml::NodeId order = g.AddNode("order");
      xml::NodeId date = g.AddNode(
          "date", StrFormat("2002-%02lld-%02lld", static_cast<long long>(rng.Uniform(1, 12)),
                    static_cast<long long>(rng.Uniform(1, 28))));
      XK_CHECK(g.AddContainmentEdge(person, order).ok());
      XK_CHECK(g.AddContainmentEdge(order, date).ok());
      int lines = count(config.avg_lineitems_per_order);
      for (int l = 0; l < lines; ++l) {
        xml::NodeId li = g.AddNode("lineitem");
        xml::NodeId qty = g.AddNode("quantity", StrFormat("%lld", static_cast<long long>(rng.Uniform(1, 20))));
        xml::NodeId ship = g.AddNode(
            "shipdate",
            StrFormat("2002-%02lld-%02lld", static_cast<long long>(rng.Uniform(1, 12)),
                    static_cast<long long>(rng.Uniform(1, 28))));
        xml::NodeId supplier = g.AddNode("supplier");
        xml::NodeId line = g.AddNode("line");
        XK_CHECK(g.AddContainmentEdge(order, li).ok());
        XK_CHECK(g.AddContainmentEdge(li, qty).ok());
        XK_CHECK(g.AddContainmentEdge(li, ship).ok());
        XK_CHECK(g.AddContainmentEdge(li, supplier).ok());
        XK_CHECK(g.AddContainmentEdge(li, line).ok());
        XK_CHECK(g.AddReferenceEdge(supplier, rng.Pick(persons)).ok());
        if (rng.NextDouble() < config.part_line_fraction || products.empty()) {
          XK_CHECK(g.AddReferenceEdge(line, rng.Pick(parts)).ok());
        } else {
          XK_CHECK(g.AddReferenceEdge(line, rng.Pick(products)).ok());
        }
      }
    }
  }
  return db;
}

}  // namespace xk::datagen
