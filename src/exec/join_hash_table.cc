#include "exec/join_hash_table.h"

#include <algorithm>

#include "common/logging.h"

namespace xk::exec {

static_assert(JoinHashTable::kNil == simd::kEmptyHead,
              "ProbeSlots tests emptiness on the head half of the fused "
              "slot words directly");

JoinHashTable::JoinHashTable(int key_width, bool force_scalar)
    : key_width_(key_width), level_(simd::KernelLevel(force_scalar)) {
  XK_CHECK_GE(key_width_, 1);
  slot_hash_.assign(16, 0);
  slot_tag_head_.assign(16, simd::PackSlotTagHead(0, kNil));
  slot_head_.assign(16, kNil);
  slot_tail_.assign(16, kNil);
  slot_keypos_.assign(16, 0);
  mask_ = 15;
}

uint64_t JoinHashTable::HashKey(const storage::ObjectId* key) const {
  return simd::HashTupleFnv(key, static_cast<size_t>(key_width_));
}

bool JoinHashTable::KeyEquals(uint64_t slot,
                              const storage::ObjectId* key) const {
  const storage::ObjectId* stored =
      keys_.data() + static_cast<size_t>(slot_keypos_[slot]) * key_width_;
  for (int i = 0; i < key_width_; ++i) {
    if (stored[i] != key[i]) return false;
  }
  return true;
}

void JoinHashTable::Reserve(size_t expected_rows) {
  node_row_.reserve(expected_rows);
  node_next_.reserve(expected_rows);
  keys_.reserve(expected_rows * static_cast<size_t>(key_width_));
  size_t want = 16;
  // Slots for the worst case of all-distinct keys at < 0.7 load.
  while (want * 7 < expected_rows * 10) want <<= 1;
  if (want > slot_hash_.size()) Rehash(want);
}

void JoinHashTable::Rehash(size_t new_slot_count) {
  std::vector<uint64_t> old_hash = std::move(slot_hash_);
  std::vector<uint32_t> old_head = std::move(slot_head_);
  std::vector<uint32_t> old_tail = std::move(slot_tail_);
  std::vector<uint32_t> old_keypos = std::move(slot_keypos_);
  slot_hash_.assign(new_slot_count, 0);
  slot_tag_head_.assign(new_slot_count, simd::PackSlotTagHead(0, kNil));
  slot_head_.assign(new_slot_count, kNil);
  slot_tail_.assign(new_slot_count, kNil);
  slot_keypos_.assign(new_slot_count, 0);
  mask_ = new_slot_count - 1;
  for (size_t s = 0; s < old_head.size(); ++s) {
    if (old_head[s] == kNil) continue;
    uint64_t i = old_hash[s] & mask_;
    while (slot_head_[i] != kNil) i = (i + 1) & mask_;
    slot_hash_[i] = old_hash[s];
    slot_tag_head_[i] = simd::PackSlotTagHead(old_hash[s], old_head[s]);
    slot_head_[i] = old_head[s];
    slot_tail_[i] = old_tail[s];
    slot_keypos_[i] = old_keypos[s];
  }
}

void JoinHashTable::InsertHashed(const storage::ObjectId* key, uint64_t hash,
                                 uint32_t row) {
  if ((num_keys_ + 1) * 10 >= slot_hash_.size() * 7) {
    Rehash(slot_hash_.size() * 2);
  }
  uint64_t i = hash & mask_;
  while (true) {
    if (slot_head_[i] == kNil) {
      slot_hash_[i] = hash;
      slot_keypos_[i] = static_cast<uint32_t>(num_keys_);
      keys_.insert(keys_.end(), key, key + key_width_);
      const uint32_t node = static_cast<uint32_t>(node_row_.size());
      slot_head_[i] = slot_tail_[i] = node;
      // Head never changes after slot creation (duplicates append at the
      // tail), so the fused word is written exactly here and in Rehash.
      slot_tag_head_[i] = simd::PackSlotTagHead(hash, node);
      node_row_.push_back(row);
      node_next_.push_back(kNil);
      ++num_keys_;
      return;
    }
    if (slot_hash_[i] == hash && KeyEquals(i, key)) {
      const uint32_t node = static_cast<uint32_t>(node_row_.size());
      node_row_.push_back(row);
      node_next_.push_back(kNil);
      node_next_[slot_tail_[i]] = node;
      slot_tail_[i] = node;
      return;
    }
    i = (i + 1) & mask_;
  }
}

void JoinHashTable::Insert(const storage::ObjectId* key, uint32_t row) {
  InsertHashed(key, HashKey(key), row);
}

void JoinHashTable::InsertBatch(const storage::ObjectId* keys, size_t count,
                                uint32_t first_row) {
  // Hash the whole batch in one vector pass, then run the (branchy,
  // cache-missing) slot insertion scalar per key.
  constexpr size_t kChunk = 64;
  uint64_t hashes[kChunk];
  for (size_t base = 0; base < count; base += kChunk) {
    const size_t n = std::min(kChunk, count - base);
    simd::HashJoinKeys(keys + base * static_cast<size_t>(key_width_), n,
                       static_cast<size_t>(key_width_), hashes, level_);
    if (level_ != simd::IsaLevel::kScalar) {
      // Advisory only — a mid-chunk rehash moves the slots, and the inserts
      // below re-derive every index from the post-rehash mask.
      for (size_t r = 0; r < n; ++r) {
        const uint64_t s = hashes[r] & mask_;
        simd::PrefetchRead(slot_head_.data() + s);
        simd::PrefetchRead(slot_hash_.data() + s);
      }
    }
    for (size_t r = 0; r < n; ++r) {
      InsertHashed(keys + (base + r) * static_cast<size_t>(key_width_),
                   hashes[r], first_row + static_cast<uint32_t>(base + r));
    }
  }
}

uint32_t JoinHashTable::LookupHashed(const storage::ObjectId* key,
                                     uint64_t hash) const {
  return LookupHashedFrom(key, hash, hash & mask_);
}

uint32_t JoinHashTable::LookupHashedFrom(const storage::ObjectId* key,
                                         uint64_t hash, uint64_t start) const {
  uint64_t i = start;
  while (true) {
    if (slot_head_[i] == kNil) return kNil;
    if (slot_hash_[i] == hash && KeyEquals(i, key)) return slot_head_[i];
    i = (i + 1) & mask_;
  }
}

void JoinHashTable::LookupHashedBatch(const storage::ObjectId* keys,
                                      const uint64_t* hashes, size_t count,
                                      uint32_t* heads) const {
  // Gathered group-probe: ProbeSlots advances several walks at once and
  // parks each lane on the first slot that is empty or tag-equal. A full
  // hash match is also a tag match, so the walk can never park past the
  // true slot; a lane parked on a tag collision (rare) resumes the scalar
  // walk one slot past the parking spot — the outcome is provably the slot
  // the all-scalar walk would have found.
  constexpr size_t kChunk = 64;
  uint64_t slot_out[kChunk];
  for (size_t base = 0; base < count; base += kChunk) {
    const size_t n = std::min(kChunk, count - base);
    simd::ProbeSlots(slot_tag_head_.data(), mask_, hashes + base, n, slot_out,
                     level_);
    if (key_width_ == 1 && level_ != simd::IsaLevel::kScalar) {
      // Width-1 keys need no key comparison: the hash (one XOR-multiply FNV
      // step + the SplitMix64 finalizer, each bijective on 64 bits) is a
      // bijection of the key, so a full-hash-equal slot IS the key's slot.
      // Overlap the full-hash loads a few keys ahead of the resolve (the
      // walk touched only the fused words), then resolve off the warm fused
      // line: head for a verified hit, kNil straight from the fused word
      // for a miss, and the astronomically rare tag collision resumes the
      // scalar walk. The scalar reference arm keeps the verified per-key
      // walk below.
      constexpr size_t kLookahead = 8;
      for (size_t r = 0; r < std::min(kLookahead, n); ++r) {
        simd::PrefetchRead(slot_hash_.data() + slot_out[r]);
      }
      for (size_t r = 0; r < n; ++r) {
        if (r + kLookahead < n) {
          simd::PrefetchRead(slot_hash_.data() + slot_out[r + kLookahead]);
        }
        const uint64_t s = slot_out[r];
        const uint32_t head = static_cast<uint32_t>(slot_tag_head_[s]);
        if (head != kNil && slot_hash_[s] != hashes[base + r]) {
          heads[base + r] =
              LookupHashedFrom(keys + (base + r), hashes[base + r],
                               (s + 1) & mask_);
          continue;
        }
        heads[base + r] = head;
      }
      continue;
    }
    for (size_t r = 0; r < n; ++r) {
      const uint64_t s = slot_out[r];
      const storage::ObjectId* key =
          keys + (base + r) * static_cast<size_t>(key_width_);
      if (slot_head_[s] == kNil) {
        heads[base + r] = kNil;
      } else if (slot_hash_[s] == hashes[base + r] && KeyEquals(s, key)) {
        heads[base + r] = slot_head_[s];
      } else {
        heads[base + r] =
            LookupHashedFrom(key, hashes[base + r], (s + 1) & mask_);
      }
    }
  }
}

void JoinHashTable::LookupBatch(const storage::ObjectId* keys, size_t count,
                                uint32_t* heads) const {
  // Hash in chunks ahead of the probes so the multiply-heavy hash loop and
  // the cache-missing slot loop don't serialize per key.
  constexpr size_t kChunk = 64;
  uint64_t hashes[kChunk];
  for (size_t base = 0; base < count; base += kChunk) {
    const size_t n = std::min(kChunk, count - base);
    simd::HashJoinKeys(keys + base * static_cast<size_t>(key_width_), n,
                       static_cast<size_t>(key_width_), hashes, level_);
    LookupHashedBatch(keys + base * static_cast<size_t>(key_width_), hashes,
                      n, heads + base);
  }
}

size_t JoinHashTable::MemoryBytes() const {
  return (slot_hash_.capacity() + slot_tag_head_.capacity()) *
             sizeof(uint64_t) +
         (slot_head_.capacity() + slot_tail_.capacity() +
          slot_keypos_.capacity()) *
             sizeof(uint32_t) +
         keys_.capacity() * sizeof(storage::ObjectId) +
         (node_row_.capacity() + node_next_.capacity()) * sizeof(uint32_t);
}

}  // namespace xk::exec
