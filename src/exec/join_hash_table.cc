#include "exec/join_hash_table.h"

#include <algorithm>

#include "common/logging.h"

namespace xk::exec {

namespace {

/// SplitMix64 finalizer over the FNV tuple hash: the power-of-two mask uses
/// only low bits, so the sequential ids common in connection relations need
/// the extra avalanche.
uint64_t Finalize(uint64_t h) {
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

}  // namespace

JoinHashTable::JoinHashTable(int key_width) : key_width_(key_width) {
  XK_CHECK_GE(key_width_, 1);
  slots_.resize(16);
  mask_ = slots_.size() - 1;
}

uint64_t JoinHashTable::HashKey(const storage::ObjectId* key) const {
  return Finalize(storage::HashIds(
      storage::TupleView(key, static_cast<size_t>(key_width_))));
}

bool JoinHashTable::KeyEquals(const Slot& slot,
                              const storage::ObjectId* key) const {
  const storage::ObjectId* stored =
      keys_.data() + static_cast<size_t>(slot.key_pos) * key_width_;
  for (int i = 0; i < key_width_; ++i) {
    if (stored[i] != key[i]) return false;
  }
  return true;
}

void JoinHashTable::Reserve(size_t expected_rows) {
  nodes_.reserve(expected_rows);
  keys_.reserve(expected_rows * static_cast<size_t>(key_width_));
  size_t want = 16;
  // Slots for the worst case of all-distinct keys at < 0.7 load.
  while (want * 7 < expected_rows * 10) want <<= 1;
  if (want > slots_.size()) Rehash(want);
}

void JoinHashTable::Rehash(size_t new_slot_count) {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(new_slot_count, Slot{});
  mask_ = new_slot_count - 1;
  for (const Slot& s : old) {
    if (s.head == kNil) continue;
    size_t i = s.hash & mask_;
    while (slots_[i].head != kNil) i = (i + 1) & mask_;
    slots_[i] = s;
  }
}

void JoinHashTable::Insert(const storage::ObjectId* key, uint32_t row) {
  if ((num_keys_ + 1) * 10 >= slots_.size() * 7) Rehash(slots_.size() * 2);
  const uint64_t hash = HashKey(key);
  size_t i = hash & mask_;
  while (true) {
    Slot& slot = slots_[i];
    if (slot.head == kNil) {
      slot.hash = hash;
      slot.key_pos = static_cast<uint32_t>(num_keys_);
      keys_.insert(keys_.end(), key, key + key_width_);
      slot.head = slot.tail = static_cast<uint32_t>(nodes_.size());
      nodes_.push_back(Node{row, kNil});
      ++num_keys_;
      return;
    }
    if (slot.hash == hash && KeyEquals(slot, key)) {
      const uint32_t node = static_cast<uint32_t>(nodes_.size());
      nodes_.push_back(Node{row, kNil});
      nodes_[slot.tail].next = node;
      slot.tail = node;
      return;
    }
    i = (i + 1) & mask_;
  }
}

uint32_t JoinHashTable::LookupHashed(const storage::ObjectId* key,
                                     uint64_t hash) const {
  size_t i = hash & mask_;
  while (true) {
    const Slot& slot = slots_[i];
    if (slot.head == kNil) return kNil;
    if (slot.hash == hash && KeyEquals(slot, key)) return slot.head;
    i = (i + 1) & mask_;
  }
}

void JoinHashTable::LookupBatch(const storage::ObjectId* keys, size_t count,
                                uint32_t* heads) const {
  // Hash in chunks ahead of the probes so the multiply-heavy hash loop and
  // the cache-missing slot loop don't serialize per key.
  constexpr size_t kChunk = 64;
  uint64_t hashes[kChunk];
  for (size_t base = 0; base < count; base += kChunk) {
    const size_t n = std::min(kChunk, count - base);
    for (size_t r = 0; r < n; ++r) {
      hashes[r] = HashKey(keys + (base + r) * static_cast<size_t>(key_width_));
    }
    for (size_t r = 0; r < n; ++r) {
      heads[base + r] = LookupHashed(
          keys + (base + r) * static_cast<size_t>(key_width_), hashes[r]);
    }
  }
}

size_t JoinHashTable::MemoryBytes() const {
  return slots_.capacity() * sizeof(Slot) +
         keys_.capacity() * sizeof(storage::ObjectId) +
         nodes_.capacity() * sizeof(Node);
}

}  // namespace xk::exec
