// Copyright (c) the XKeyword authors.
//
// Batch-at-a-time execution substrate (MonetDB/X100 style): operators exchange
// fixed-capacity columnar batches instead of single rows, so predicate checks,
// statistics, and cancellation polls amortize over ~1k rows and the inner
// loops run over flat arrays with no per-row allocation.

#ifndef XK_EXEC_ROW_BLOCK_H_
#define XK_EXEC_ROW_BLOCK_H_

#include <cstdint>
#include <vector>

#include "exec/row_iterator.h"
#include "storage/table.h"
#include "storage/tuple.h"

namespace xk::exec {

/// Fixed-capacity columnar batch.
///
/// Candidate rows: `row_ids[0..size)` name base-table rows (for scans and
/// probes); `sel[0..num_selected)` indexes the candidates that survived the
/// predicates applied so far, always in ascending order, so emission order is
/// candidate order and results stay byte-identical to the row-at-a-time path.
///
/// Values: `columns` is one flat ObjectId buffer, column-major
/// (`column(c)[i]`), filled on demand by Materialize (scans feeding the
/// block→row adapter) or directly by join operators building output batches.
struct RowBlock {
  static constexpr size_t kDefaultCapacity = 1024;

  /// Sizes the block for `arity` columns of up to `capacity` rows. Buffers
  /// only grow — a pooled block reused across probes never reallocates once
  /// warm. The column buffer stays unallocated until first materialization.
  void Reset(int arity_in, size_t capacity_in = kDefaultCapacity) {
    arity = arity_in;
    capacity = capacity_in;
    if (row_ids.size() < capacity) row_ids.resize(capacity);
    if (sel.size() < capacity) sel.resize(capacity);
    size = 0;
    num_selected = 0;
  }

  /// Declares `n` loaded candidates and selects all of them (identity).
  void SelectAll(size_t n) {
    size = n;
    num_selected = n;
    for (size_t i = 0; i < n; ++i) sel[i] = static_cast<uint32_t>(i);
  }

  storage::ObjectId* column(int c) {
    return columns.data() + static_cast<size_t>(c) * capacity;
  }
  const storage::ObjectId* column(int c) const {
    return columns.data() + static_cast<size_t>(c) * capacity;
  }

  /// Grows the flat column buffer to arity * capacity (never shrinks).
  void EnsureColumnBuffer() {
    if (columns.size() < static_cast<size_t>(arity) * capacity) {
      columns.resize(static_cast<size_t>(arity) * capacity);
    }
  }

  /// Gathers the selected rows' attributes from `table` into the flat column
  /// buffer, compacting: afterwards `size == num_selected`, the selection is
  /// the identity, and `column(c)[i]`/`row_ids[i]` describe the i-th survivor.
  void Materialize(const storage::Table& table) {
    EnsureColumnBuffer();
    const size_t n = num_selected;
    for (size_t i = 0; i < n; ++i) row_ids[i] = row_ids[sel[i]];
    for (int c = 0; c < arity; ++c) {
      storage::ObjectId* out = column(c);
      for (size_t i = 0; i < n; ++i) out[i] = table.At(row_ids[i], c);
    }
    SelectAll(n);
  }

  int arity = 0;
  size_t capacity = 0;
  size_t size = 0;          // candidate rows loaded
  size_t num_selected = 0;  // survivors in sel[0..num_selected)
  std::vector<storage::RowId> row_ids;
  std::vector<uint32_t> sel;
  std::vector<storage::ObjectId> columns;  // column-major, arity * capacity
};

/// Pull-based batch iterator: the vectorized sibling of RowIterator.
/// Produced blocks are materialized with an identity selection.
class BlockIterator {
 public:
  virtual ~BlockIterator() = default;

  /// Fills `*out` with the next non-empty batch; false when drained.
  virtual bool Next(RowBlock* out) = 0;

  /// Number of columns in produced blocks.
  virtual int arity() const = 0;
};

/// Block→row adapter: lets every existing RowIterator consumer run unchanged
/// on top of a batch producer.
class BlockRowAdapter : public RowIterator {
 public:
  /// `blocks` is not owned and must outlive the adapter.
  explicit BlockRowAdapter(BlockIterator* blocks) : blocks_(blocks) {}

  bool Next(storage::Tuple* out) override {
    while (pos_ >= block_.num_selected) {
      if (drained_ || !blocks_->Next(&block_)) {
        drained_ = true;
        return false;
      }
      pos_ = 0;
    }
    const size_t i = pos_++;
    out->resize(static_cast<size_t>(block_.arity));
    for (int c = 0; c < block_.arity; ++c) {
      (*out)[static_cast<size_t>(c)] = block_.column(c)[i];
    }
    return true;
  }

  int arity() const override { return blocks_->arity(); }

 private:
  BlockIterator* blocks_;
  RowBlock block_;
  size_t pos_ = 0;
  bool drained_ = false;
};

}  // namespace xk::exec

#endif  // XK_EXEC_ROW_BLOCK_H_
