// Copyright (c) the XKeyword authors.
//
// Vectorized access paths: the batch-at-a-time siblings of operators.h.
// Candidates stream through RowBlocks; predicates run as selection-vector
// kernels over whole blocks (allocation-free once warm), cancellation is
// polled once per block, and statistics are bumped once per block. Candidate
// enumeration order matches the row-at-a-time path exactly, so results are
// byte-identical.

#ifndef XK_EXEC_BLOCK_OPS_H_
#define XK_EXEC_BLOCK_OPS_H_

#include <functional>
#include <type_traits>
#include <vector>

#include "exec/operators.h"
#include "exec/row_block.h"

namespace xk::exec {

// --- Selection-vector kernels -------------------------------------------
//
// Each kernel compacts block->sel in place to the selected candidates that
// also pass the predicate, preserving ascending order, and returns the
// survivor count. No allocation. Both run as branchless compare-and-compress
// SIMD kernels (common/simd.h) when the CPU supports them; `force_scalar`
// pins the scalar reference. Results are bit-identical either way.

/// Keeps candidates whose `column` equals `value`.
size_t SelEqual(const storage::Table& table, RowBlock* block, int column,
                storage::ObjectId value, bool force_scalar = false);

/// Keeps candidates whose `column` value is in `set`. Sets of up to
/// simd::kMaxInlineInSet distinct values run an unrolled compare ladder
/// (vectorizable); larger sets probe the hash set per candidate.
size_t SelInSet(const storage::Table& table, RowBlock* block, int column,
                const storage::IdSet& set, bool force_scalar = false);

// --- Batch probe ---------------------------------------------------------

/// Non-owning callable reference for block sinks: avoids the per-probe
/// std::function allocation the batch path exists to eliminate.
class BlockSinkRef {
 public:
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, BlockSinkRef>>>
  BlockSinkRef(F&& f)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        call_([](void* obj, const RowBlock& b) {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(b);
        }) {}

  bool operator()(const RowBlock& block) const { return call_(obj_, block); }

 private:
  void* obj_;
  bool (*call_)(void*, const RowBlock&);
};

/// Batch ForEachMatch: enumerates candidates along the same access path the
/// row API would take, filters each block with the kernels above, and hands
/// every block with >= 1 survivor to `fn` (selected rows are the matches,
/// in candidate order). `fn` returns false to stop early. Statistics count
/// whole blocks: an early-stopping sink still pays for the block it saw —
/// block sizes ramp up from a small first block so that cost stays bounded.
AccessPathKind ForEachMatchBlock(const storage::Table& table,
                                 const std::vector<ColumnBinding>& bindings,
                                 const std::vector<ColumnInSet>& in_filters,
                                 const std::vector<ColumnBloom>& prune_blooms,
                                 const ExecOptions& opts, BlockSinkRef fn,
                                 ProbeStats* stats);

/// Candidate count at or below which the vectorized row-sink probe runs a
/// fused scalar loop instead of block kernels: index probes average a handful
/// of rows, where block setup costs more than the kernels save.
inline constexpr size_t kScalarProbeThreshold = 64;

/// Row-sink batch probe: the engine entry point behind
/// ExecOptions::vectorized. Adaptive — small candidate sets (known from the
/// access path, <= kScalarProbeThreshold) run a fused scalar loop; large
/// scans stream ramped blocks through the kernels. Cursor setup builds key
/// prefixes in a stack buffer, so a probe performs no allocation at all once
/// the thread-local block pool is warm. Match order, emitted rows, and
/// statistics are identical to the row path except for early-stop scan
/// counts, which are block-granular on the block regime.
AccessPathKind ForEachMatchRows(const storage::Table& table,
                                const std::vector<ColumnBinding>& bindings,
                                const std::vector<ColumnInSet>& in_filters,
                                const std::vector<ColumnBloom>& prune_blooms,
                                const ExecOptions& opts,
                                const std::function<bool(storage::RowId)>& fn,
                                ProbeStats* stats);

// --- Batch operators -----------------------------------------------------

/// Batch scan/probe over one table — full scan, clustered range, composite
/// range, or hash lookup, chosen exactly as ForEachMatch chooses — producing
/// materialized blocks of the surviving rows.
class ScanBlockIterator : public BlockIterator {
 public:
  ScanBlockIterator(const storage::Table& table,
                    std::vector<ColumnBinding> bindings,
                    std::vector<ColumnInSet> in_filters, ExecOptions opts = {});

  bool Next(RowBlock* out) override;
  int arity() const override { return table_.arity(); }
  AccessPathKind path() const { return path_; }

 private:
  const storage::Table& table_;
  std::vector<ColumnBinding> bindings_;
  std::vector<ColumnInSet> in_filters_;
  ExecOptions opts_;
  AccessPathKind path_;
  // Candidate cursor: either a contiguous row range (full scan, clustered
  // range) or a row-id span owned by an index (composite, hash).
  storage::RowId range_next_ = 0;
  storage::RowId range_end_ = 0;
  std::span<const storage::RowId> span_;
  size_t span_pos_ = 0;
  bool use_span_ = false;
};

/// Vectorized index-nested-loop join: probes `inner` once per selected outer
/// row (via the batch probe path) and emits combined outer++inner blocks.
/// Output order is outer order, inner match order within one outer row; the
/// produced blocks' row_ids carry the inner match rows.
class IndexNestedLoopBlockIterator : public BlockIterator {
 public:
  /// inner.column == outer.column join condition.
  struct JoinKey {
    int inner_column;
    int outer_column;
  };

  /// `outer` is not owned and must outlive the iterator.
  IndexNestedLoopBlockIterator(BlockIterator* outer, const storage::Table& inner,
                               std::vector<JoinKey> keys,
                               std::vector<ColumnInSet> inner_in_filters = {},
                               ExecOptions opts = {});

  bool Next(RowBlock* out) override;
  int arity() const override { return outer_->arity() + inner_.arity(); }
  const ProbeStats& stats() const { return stats_; }

  /// Semi-join prune Blooms keyed by inner join column: outer rows whose join
  /// value is definitely absent from the inner side are dropped by one block
  /// kernel pass (BloomFilter::MayContainBlock) when each outer block
  /// arrives, before any per-row probe. Each pruned row counts as one
  /// bloom-skipped probe, matching the per-row BloomPruned accounting.
  void set_inner_blooms(std::vector<ColumnBloom> blooms) {
    blooms_ = std::move(blooms);
  }

 private:
  /// Compacts the fresh outer block's selection through blooms_.
  void PruneOuterBlock();

  /// Appends combined rows for matches_[match_pos_..] of the current outer
  /// row until `out` is full or the matches are consumed.
  void EmitMatches(RowBlock* out);

  BlockIterator* outer_;
  const storage::Table& inner_;
  std::vector<JoinKey> keys_;
  std::vector<ColumnInSet> in_filters_;
  std::vector<ColumnBloom> blooms_;
  ExecOptions opts_;
  ProbeStats stats_;

  RowBlock outer_block_;
  size_t outer_pos_ = 0;   // next outer row to probe
  bool outer_valid_ = false;
  bool outer_drained_ = false;
  std::vector<ColumnBinding> bindings_;     // probe scratch, hoisted
  std::vector<storage::RowId> matches_;     // inner matches of the outer row
  size_t match_pos_ = 0;                    // unconsumed carry into next block
  size_t match_outer_ = 0;                  // outer row the carry belongs to
};

}  // namespace xk::exec

#endif  // XK_EXEC_BLOCK_OPS_H_
