#include "exec/plan.h"

#include <unordered_map>

#include "common/cancel_token.h"
#include "common/logging.h"
#include "common/strings.h"
#include "exec/join_hash_table.h"
#include "exec/row_block.h"

namespace xk::exec {

Status JoinQuery::Validate() const {
  if (steps.empty()) return Status::InvalidArgument("empty join query");
  for (size_t i = 0; i < steps.size(); ++i) {
    const JoinStep& s = steps[i];
    if (s.table == nullptr) {
      return Status::InvalidArgument(StrFormat("step %zu has no table", i));
    }
    auto col_ok = [&s](int c) { return c >= 0 && c < s.table->arity(); };
    for (const auto& [col, ref] : s.eq) {
      if (!col_ok(col)) {
        return Status::OutOfRange(StrFormat("step %zu eq column %d", i, col));
      }
      if (ref.step < 0 || static_cast<size_t>(ref.step) >= i) {
        return Status::InvalidArgument(
            StrFormat("step %zu eq ref to step %d is not strictly backward", i,
                      ref.step));
      }
      const storage::Table* rt = steps[static_cast<size_t>(ref.step)].table;
      if (ref.column < 0 || ref.column >= rt->arity()) {
        return Status::OutOfRange(StrFormat("step %zu eq ref column %d", i, ref.column));
      }
    }
    for (const ColumnInSet& f : s.in_filters) {
      if (!col_ok(f.column)) {
        return Status::OutOfRange(StrFormat("step %zu in-filter column %d", i, f.column));
      }
      if (f.set == nullptr) {
        return Status::InvalidArgument(StrFormat("step %zu null in-filter set", i));
      }
    }
    for (const ColumnBinding& f : s.const_filters) {
      if (!col_ok(f.column)) {
        return Status::OutOfRange(StrFormat("step %zu const-filter column %d", i, f.column));
      }
    }
    if (i > 0 && s.eq.empty()) {
      return Status::InvalidArgument(
          StrFormat("step %zu has no join predicate (cartesian product)", i));
    }
  }
  return Status::OK();
}

Status NestedLoopExecutor::Run(const RowSink& sink, size_t limit) {
  XK_RETURN_NOT_OK(query_->Validate());
  std::vector<storage::TupleView> rows(query_->steps.size());
  binding_scratch_.resize(query_->steps.size());
  size_t produced = 0;
  Recurse(0, &rows, sink, limit, &produced);
  return Status::OK();
}

bool NestedLoopExecutor::Recurse(size_t depth, std::vector<storage::TupleView>* rows,
                                 const RowSink& sink, size_t limit,
                                 size_t* produced) {
  const JoinStep& step = query_->steps[depth];
  // Assemble this probe's constant bindings from join refs + const filters
  // into the per-depth scratch (no allocation once its capacity is warm).
  std::vector<ColumnBinding>& bindings = binding_scratch_[depth];
  bindings.assign(step.const_filters.begin(), step.const_filters.end());
  bindings.reserve(bindings.size() + step.eq.size());
  for (const auto& [col, ref] : step.eq) {
    bindings.push_back(
        ColumnBinding{col, (*rows)[static_cast<size_t>(ref.step)][
                               static_cast<size_t>(ref.column)]});
  }
  static const std::vector<ColumnBloom> kNoBlooms;
  const std::vector<ColumnBloom>& blooms =
      (step_blooms_ != nullptr && depth < step_blooms_->size())
          ? (*step_blooms_)[depth]
          : kNoBlooms;
  bool keep_going = true;
  ForEachMatch(*step.table, bindings, step.in_filters, blooms, opts_,
               [&](storage::RowId r) {
                 (*rows)[depth] = step.table->Row(r);
                 if (depth + 1 == query_->steps.size()) {
                   ++*produced;
                   keep_going = sink(*rows) && *produced < limit;
                 } else {
                   keep_going = Recurse(depth + 1, rows, sink, limit, produced);
                 }
                 return keep_going;
               },
               &stats_);
  return keep_going;
}

Status HashJoinExecutor::Run(const RowSink& sink) {
  XK_RETURN_NOT_OK(query_->Validate());
  return opts_.vectorized ? RunVectorized(sink) : RunLegacy(sink);
}

Status HashJoinExecutor::RunVectorized(const RowSink& sink) {
  const std::vector<JoinStep>& steps = query_->steps;
  ExecOptions scan_opts = opts_;
  scan_opts.use_indexes = false;  // hash join pairs with full scans

  // Per step, the base-table rows passing the step's local filters, in scan
  // order. Intermediates reference these by ordinal: row r of a width-w
  // intermediate occupies current[r*w .. r*w+w), one scan ordinal per step.
  // Build scans run lazily so an empty intermediate stops all further work.
  std::vector<std::vector<storage::RowId>> scans(steps.size());
  auto scan_step = [&](size_t i) {
    const JoinStep& s = steps[i];
    ForEachMatch(*s.table, s.const_filters, s.in_filters, scan_opts,
                 [&](storage::RowId r) {
                   scans[i].push_back(r);
                   return true;
                 },
                 nullptr);
  };
  scan_step(0);

  size_t width = 1;
  std::vector<uint32_t> current(scans[0].size());
  for (uint32_t r = 0; r < current.size(); ++r) current[r] = r;
  rows_materialized_ += current.size();

  const size_t block =
      opts_.block_size != 0 ? opts_.block_size : RowBlock::kDefaultCapacity;
  std::vector<storage::ObjectId> key_buf;   // block of probe keys, flat
  std::vector<uint32_t> head_buf;           // per probe key: match chain head
  std::vector<uint32_t> next;

  for (size_t i = 1; i < steps.size() && !current.empty(); ++i) {
    const JoinStep& s = steps[i];
    const int key_width = static_cast<int>(s.eq.size());
    scan_step(i);

    // Build: flat open-addressing table over the step's scan, keyed by its
    // eq columns; duplicate rows chain in scan order. Keys are gathered flat
    // per chunk so each chunk hashes in one batched pass.
    JoinHashTable table(key_width, opts_.force_scalar_kernels);
    table.Reserve(scans[i].size());
    key_buf.resize(block * s.eq.size());
    for (size_t bbase = 0; bbase < scans[i].size(); bbase += block) {
      const size_t bn = std::min(block, scans[i].size() - bbase);
      for (size_t r = 0; r < bn; ++r) {
        for (size_t k = 0; k < s.eq.size(); ++k) {
          key_buf[r * s.eq.size() + k] = s.table->At(
              scans[i][bbase + r], static_cast<size_t>(s.eq[k].first));
        }
      }
      table.InsertBatch(key_buf.data(), bn, static_cast<uint32_t>(bbase));
    }

    // Probe: blocks of intermediate rows — gather keys, batch-probe, then
    // walk the match chains. One cancellation poll per block.
    next.clear();
    const size_t rows = current.size() / width;
    head_buf.resize(block);
    for (size_t base = 0; base < rows; base += block) {
      if (opts_.cancel != nullptr && opts_.cancel->StopRequested()) {
        return Status::OK();
      }
      const size_t n = std::min(block, rows - base);
      for (size_t r = 0; r < n; ++r) {
        const uint32_t* left = &current[(base + r) * width];
        for (size_t k = 0; k < s.eq.size(); ++k) {
          const ColumnRef& ref = s.eq[k].second;
          const JoinStep& ref_step = steps[static_cast<size_t>(ref.step)];
          key_buf[r * s.eq.size() + k] = ref_step.table->At(
              scans[static_cast<size_t>(ref.step)][left[ref.step]],
              static_cast<size_t>(ref.column));
        }
      }
      table.LookupBatch(key_buf.data(), n, head_buf.data());
      for (size_t r = 0; r < n; ++r) {
        const uint32_t* left = &current[(base + r) * width];
        for (uint32_t node = head_buf[r]; node != JoinHashTable::kNil;
             node = table.NextMatch(node)) {
          next.insert(next.end(), left, left + width);
          next.push_back(table.MatchRow(node));
        }
      }
    }
    current = std::move(next);
    next = {};
    ++width;
    rows_materialized_ += current.size() / width;
  }

  std::vector<storage::TupleView> views(steps.size());
  const size_t rows = current.size() / width;
  for (size_t r = 0; r < rows; ++r) {
    const uint32_t* row = &current[r * width];
    for (size_t i = 0; i < width; ++i) {
      views[i] = steps[i].table->Row(scans[i][row[i]]);
    }
    if (!sink(views)) break;
  }
  return Status::OK();
}

Status HashJoinExecutor::RunLegacy(const RowSink& sink) {
  const std::vector<JoinStep>& steps = query_->steps;
  ExecOptions no_index = opts_;
  no_index.use_indexes = false;

  // Materialized intermediate: per output row, one Tuple per step so far.
  std::vector<std::vector<storage::Tuple>> current;  // row -> step rows

  // Step 0: filtered scan.
  {
    const JoinStep& s0 = steps[0];
    ForEachMatch(*s0.table, s0.const_filters, s0.in_filters, no_index,
                 [&](storage::RowId r) {
                   storage::TupleView row = s0.table->Row(r);
                   current.push_back({storage::Tuple(row.begin(), row.end())});
                   return true;
                 },
                 nullptr);
    rows_materialized_ += current.size();
  }

  for (size_t i = 1; i < steps.size() && !current.empty(); ++i) {
    const JoinStep& s = steps[i];
    // Build side: hash rows of s.table (after local filters) on its eq columns.
    std::vector<int> build_cols;
    build_cols.reserve(s.eq.size());
    for (const auto& [col, ref] : s.eq) {
      (void)ref;
      build_cols.push_back(col);
    }
    std::unordered_map<storage::Tuple, std::vector<storage::RowId>,
                       storage::TupleHash>
        build;
    ForEachMatch(*s.table, s.const_filters, s.in_filters, no_index,
                 [&](storage::RowId r) {
                   storage::Tuple key;
                   key.reserve(build_cols.size());
                   for (int c : build_cols) key.push_back(s.table->At(r, c));
                   build[std::move(key)].push_back(r);
                   return true;
                 },
                 nullptr);

    // Probe side: each intermediate row.
    std::vector<std::vector<storage::Tuple>> next;
    for (std::vector<storage::Tuple>& left : current) {
      storage::Tuple key;
      key.reserve(s.eq.size());
      for (const auto& [col, ref] : s.eq) {
        (void)col;
        key.push_back(left[static_cast<size_t>(ref.step)]
                          [static_cast<size_t>(ref.column)]);
      }
      auto it = build.find(key);
      if (it == build.end()) continue;
      for (storage::RowId r : it->second) {
        std::vector<storage::Tuple> combined = left;
        storage::TupleView row = s.table->Row(r);
        combined.emplace_back(row.begin(), row.end());
        next.push_back(std::move(combined));
      }
    }
    current = std::move(next);
    rows_materialized_ += current.size();
  }

  std::vector<storage::TupleView> views(steps.size());
  for (const std::vector<storage::Tuple>& out : current) {
    for (size_t i = 0; i < out.size(); ++i) views[i] = storage::TupleView(out[i]);
    if (!sink(views)) break;
  }
  return Status::OK();
}

}  // namespace xk::exec
