#include "exec/plan.h"

#include <unordered_map>

#include "common/logging.h"
#include "common/strings.h"

namespace xk::exec {

Status JoinQuery::Validate() const {
  if (steps.empty()) return Status::InvalidArgument("empty join query");
  for (size_t i = 0; i < steps.size(); ++i) {
    const JoinStep& s = steps[i];
    if (s.table == nullptr) {
      return Status::InvalidArgument(StrFormat("step %zu has no table", i));
    }
    auto col_ok = [&s](int c) { return c >= 0 && c < s.table->arity(); };
    for (const auto& [col, ref] : s.eq) {
      if (!col_ok(col)) {
        return Status::OutOfRange(StrFormat("step %zu eq column %d", i, col));
      }
      if (ref.step < 0 || static_cast<size_t>(ref.step) >= i) {
        return Status::InvalidArgument(
            StrFormat("step %zu eq ref to step %d is not strictly backward", i,
                      ref.step));
      }
      const storage::Table* rt = steps[static_cast<size_t>(ref.step)].table;
      if (ref.column < 0 || ref.column >= rt->arity()) {
        return Status::OutOfRange(StrFormat("step %zu eq ref column %d", i, ref.column));
      }
    }
    for (const ColumnInSet& f : s.in_filters) {
      if (!col_ok(f.column)) {
        return Status::OutOfRange(StrFormat("step %zu in-filter column %d", i, f.column));
      }
      if (f.set == nullptr) {
        return Status::InvalidArgument(StrFormat("step %zu null in-filter set", i));
      }
    }
    for (const ColumnBinding& f : s.const_filters) {
      if (!col_ok(f.column)) {
        return Status::OutOfRange(StrFormat("step %zu const-filter column %d", i, f.column));
      }
    }
    if (i > 0 && s.eq.empty()) {
      return Status::InvalidArgument(
          StrFormat("step %zu has no join predicate (cartesian product)", i));
    }
  }
  return Status::OK();
}

Status NestedLoopExecutor::Run(const RowSink& sink, size_t limit) {
  XK_RETURN_NOT_OK(query_->Validate());
  std::vector<storage::TupleView> rows(query_->steps.size());
  size_t produced = 0;
  Recurse(0, &rows, sink, limit, &produced);
  return Status::OK();
}

bool NestedLoopExecutor::Recurse(size_t depth, std::vector<storage::TupleView>* rows,
                                 const RowSink& sink, size_t limit,
                                 size_t* produced) {
  const JoinStep& step = query_->steps[depth];
  // Assemble this probe's constant bindings from join refs + const filters.
  std::vector<ColumnBinding> bindings = step.const_filters;
  bindings.reserve(bindings.size() + step.eq.size());
  for (const auto& [col, ref] : step.eq) {
    bindings.push_back(
        ColumnBinding{col, (*rows)[static_cast<size_t>(ref.step)][
                               static_cast<size_t>(ref.column)]});
  }
  static const std::vector<ColumnBloom> kNoBlooms;
  const std::vector<ColumnBloom>& blooms =
      (step_blooms_ != nullptr && depth < step_blooms_->size())
          ? (*step_blooms_)[depth]
          : kNoBlooms;
  bool keep_going = true;
  ForEachMatch(*step.table, bindings, step.in_filters, blooms, opts_,
               [&](storage::RowId r) {
                 (*rows)[depth] = step.table->Row(r);
                 if (depth + 1 == query_->steps.size()) {
                   ++*produced;
                   keep_going = sink(*rows) && *produced < limit;
                 } else {
                   keep_going = Recurse(depth + 1, rows, sink, limit, produced);
                 }
                 return keep_going;
               },
               &stats_);
  return keep_going;
}

Status HashJoinExecutor::Run(const RowSink& sink) {
  XK_RETURN_NOT_OK(query_->Validate());
  const std::vector<JoinStep>& steps = query_->steps;
  const ExecOptions no_index{.use_indexes = false};

  // Materialized intermediate: per output row, one Tuple per step so far.
  std::vector<std::vector<storage::Tuple>> current;  // row -> step rows

  // Step 0: filtered scan.
  {
    const JoinStep& s0 = steps[0];
    ForEachMatch(*s0.table, s0.const_filters, s0.in_filters, no_index,
                 [&](storage::RowId r) {
                   storage::TupleView row = s0.table->Row(r);
                   current.push_back({storage::Tuple(row.begin(), row.end())});
                   return true;
                 },
                 nullptr);
    rows_materialized_ += current.size();
  }

  for (size_t i = 1; i < steps.size() && !current.empty(); ++i) {
    const JoinStep& s = steps[i];
    // Build side: hash rows of s.table (after local filters) on its eq columns.
    std::vector<int> build_cols;
    build_cols.reserve(s.eq.size());
    for (const auto& [col, ref] : s.eq) {
      (void)ref;
      build_cols.push_back(col);
    }
    std::unordered_map<storage::Tuple, std::vector<storage::RowId>,
                       storage::TupleHash>
        build;
    ForEachMatch(*s.table, s.const_filters, s.in_filters, no_index,
                 [&](storage::RowId r) {
                   storage::Tuple key;
                   key.reserve(build_cols.size());
                   for (int c : build_cols) key.push_back(s.table->At(r, c));
                   build[std::move(key)].push_back(r);
                   return true;
                 },
                 nullptr);

    // Probe side: each intermediate row.
    std::vector<std::vector<storage::Tuple>> next;
    for (std::vector<storage::Tuple>& left : current) {
      storage::Tuple key;
      key.reserve(s.eq.size());
      for (const auto& [col, ref] : s.eq) {
        (void)col;
        key.push_back(left[static_cast<size_t>(ref.step)]
                          [static_cast<size_t>(ref.column)]);
      }
      auto it = build.find(key);
      if (it == build.end()) continue;
      for (storage::RowId r : it->second) {
        std::vector<storage::Tuple> combined = left;
        storage::TupleView row = s.table->Row(r);
        combined.emplace_back(row.begin(), row.end());
        next.push_back(std::move(combined));
      }
    }
    current = std::move(next);
    rows_materialized_ += current.size();
  }

  std::vector<storage::TupleView> views(steps.size());
  for (const std::vector<storage::Tuple>& out : current) {
    for (size_t i = 0; i < out.size(); ++i) views[i] = storage::TupleView(out[i]);
    if (!sink(views)) break;
  }
  return Status::OK();
}

}  // namespace xk::exec
