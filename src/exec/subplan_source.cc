#include "exec/subplan_source.h"

namespace xk::exec {

MaterializedSubplan::MaterializedSubplan(int arity, size_t block_capacity)
    : arity_(arity), block_capacity_(block_capacity == 0
                                         ? RowBlock::kDefaultCapacity
                                         : block_capacity) {}

void MaterializedSubplan::Append(const storage::RowId* step_rows) {
  const size_t in_block = num_rows_ % block_capacity_;
  if (in_block == 0) {
    blocks_.emplace_back();
    RowBlock& b = blocks_.back();
    b.Reset(arity_, block_capacity_);
    b.EnsureColumnBuffer();
    bytes_ += b.row_ids.capacity() * sizeof(storage::RowId) +
              b.sel.capacity() * sizeof(uint32_t) +
              b.columns.capacity() * sizeof(storage::ObjectId);
  }
  RowBlock& b = blocks_.back();
  for (int c = 0; c < arity_; ++c) {
    b.column(c)[in_block] = static_cast<storage::ObjectId>(step_rows[c]);
  }
  b.row_ids[in_block] = step_rows[0];
  b.sel[in_block] = static_cast<uint32_t>(in_block);
  b.size = in_block + 1;
  b.num_selected = in_block + 1;
  ++num_rows_;
}

bool SubplanReplayIterator::Next(RowBlock* out) {
  while (next_block_ < subplan_->blocks().size()) {
    const RowBlock& b = subplan_->blocks()[next_block_++];
    if (b.num_selected == 0) continue;
    *out = b;  // copy: the source stays immutable and shareable
    return true;
  }
  return false;
}

}  // namespace xk::exec
