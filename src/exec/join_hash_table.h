// Copyright (c) the XKeyword authors.
//
// Cache-conscious hash table for joins: flat open addressing (linear probe,
// power-of-two slot array) with precomputed 64-bit hashes, keys packed into
// one flat ObjectId arena, and duplicate rows chained through a node arena in
// insertion order. Replaces unordered_map<Tuple, vector<RowId>> — no
// pointer-chased buckets, no per-key vector allocation, and probing a missing
// key touches at most a handful of contiguous slots.
//
// The slot array is struct-of-arrays so the batch paths vectorize: hashes are
// computed for whole key blocks by simd::HashJoinKeys, and LookupHashedBatch
// walks several probe chains at once through simd::ProbeSlots (gathered
// group-probe). Both are bit-identical to the scalar walk; `force_scalar`
// pins the scalar kernels for debugging and A/B benchmarking.

#ifndef XK_EXEC_JOIN_HASH_TABLE_H_
#define XK_EXEC_JOIN_HASH_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/simd.h"
#include "storage/tuple.h"

namespace xk::exec {

class JoinHashTable {
 public:
  /// End-of-chain / not-found sentinel for node handles. Equals
  /// simd::kEmptyHead, which is what lets ProbeSlots test emptiness directly
  /// on the head half of the fused slot words.
  static constexpr uint32_t kNil = UINT32_MAX;

  /// `key_width` is the number of ObjectIds per key (>= 1).
  explicit JoinHashTable(int key_width, bool force_scalar = false);

  /// Pre-sizes the slot array and arenas for `expected_rows` insertions so
  /// the build loop never rehashes mid-stream.
  void Reserve(size_t expected_rows);

  /// Appends `row` under `key` (key_width ids). Duplicate keys chain in
  /// insertion order, so per-key match enumeration is deterministic.
  void Insert(const storage::ObjectId* key, uint32_t row);

  /// Appends `count` keys (row-major, key_width ids each) for the rows
  /// first_row, first_row+1, ... — the whole batch is hashed in one SIMD
  /// pass before any slot is touched. Equivalent to count Insert calls.
  void InsertBatch(const storage::ObjectId* keys, size_t count,
                   uint32_t first_row);

  /// Head of the match chain for `key`, or kNil. Never allocates.
  uint32_t Lookup(const storage::ObjectId* key) const {
    return LookupHashed(key, HashKey(key));
  }

  /// Probes `count` keys (row-major, key_width ids each) and writes each
  /// key's chain head (or kNil) to `heads`. Hashes are computed in one
  /// batched pass over the flat key buffer, then the slot walks run as a
  /// gathered group-probe. Never allocates.
  void LookupBatch(const storage::ObjectId* keys, size_t count,
                   uint32_t* heads) const;

  /// LookupBatch with caller-computed hashes (hashes[i] must equal
  /// HashKey(keys + i * key_width)).
  void LookupHashedBatch(const storage::ObjectId* keys,
                         const uint64_t* hashes, size_t count,
                         uint32_t* heads) const;

  /// Chain walking: the build row of a node, and the next node (kNil at end).
  uint32_t MatchRow(uint32_t node) const { return node_row_[node]; }
  uint32_t NextMatch(uint32_t node) const { return node_next_[node]; }

  size_t num_keys() const { return num_keys_; }
  size_t num_rows() const { return node_row_.size(); }
  size_t MemoryBytes() const;

 private:
  uint64_t HashKey(const storage::ObjectId* key) const;
  uint32_t LookupHashed(const storage::ObjectId* key, uint64_t hash) const;
  /// Continues a probe walk at slot `start` (used after the group-probe
  /// lands on a hash collision with a different key).
  uint32_t LookupHashedFrom(const storage::ObjectId* key, uint64_t hash,
                            uint64_t start) const;
  void InsertHashed(const storage::ObjectId* key, uint64_t hash, uint32_t row);
  bool KeyEquals(uint64_t slot, const storage::ObjectId* key) const;
  void Rehash(size_t new_slot_count);

  int key_width_;
  simd::IsaLevel level_;
  uint64_t mask_ = 0;  // slot count - 1
  size_t num_keys_ = 0;
  // Slots, struct-of-arrays; slot_head_[i] == kNil marks an empty slot.
  // slot_tag_head_ mirrors (hash tag, head) fused into one word per slot
  // (simd::PackSlotTagHead) so the group-probe walk gathers once per step;
  // it changes only when a slot is created or the table rehashes.
  std::vector<uint64_t> slot_hash_;
  std::vector<uint64_t> slot_tag_head_;
  std::vector<uint32_t> slot_head_;
  std::vector<uint32_t> slot_tail_;
  std::vector<uint32_t> slot_keypos_;  // key start / key_width in keys_
  std::vector<storage::ObjectId> keys_;  // key_width_ ids per distinct key
  // Duplicate-row chain nodes, struct-of-arrays.
  std::vector<uint32_t> node_row_;
  std::vector<uint32_t> node_next_;
};

}  // namespace xk::exec

#endif  // XK_EXEC_JOIN_HASH_TABLE_H_
