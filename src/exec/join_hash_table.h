// Copyright (c) the XKeyword authors.
//
// Cache-conscious hash table for joins: flat open addressing (linear probe,
// power-of-two slot array) with precomputed 64-bit hashes, keys packed into
// one flat ObjectId arena, and duplicate rows chained through a node arena in
// insertion order. Replaces unordered_map<Tuple, vector<RowId>> — no
// pointer-chased buckets, no per-key vector allocation, and probing a missing
// key touches at most a handful of contiguous slots.

#ifndef XK_EXEC_JOIN_HASH_TABLE_H_
#define XK_EXEC_JOIN_HASH_TABLE_H_

#include <cstdint>
#include <vector>

#include "storage/tuple.h"

namespace xk::exec {

class JoinHashTable {
 public:
  /// End-of-chain / not-found sentinel for node handles.
  static constexpr uint32_t kNil = UINT32_MAX;

  /// `key_width` is the number of ObjectIds per key (>= 1).
  explicit JoinHashTable(int key_width);

  /// Pre-sizes the slot array and arenas for `expected_rows` insertions so
  /// the build loop never rehashes mid-stream.
  void Reserve(size_t expected_rows);

  /// Appends `row` under `key` (key_width ids). Duplicate keys chain in
  /// insertion order, so per-key match enumeration is deterministic.
  void Insert(const storage::ObjectId* key, uint32_t row);

  /// Head of the match chain for `key`, or kNil. Never allocates.
  uint32_t Lookup(const storage::ObjectId* key) const {
    return LookupHashed(key, HashKey(key));
  }

  /// Probes `count` keys (row-major, key_width ids each) and writes each
  /// key's chain head (or kNil) to `heads`. Hashes are computed in one pass
  /// over the flat key buffer before any slot is touched. Never allocates.
  void LookupBatch(const storage::ObjectId* keys, size_t count,
                   uint32_t* heads) const;

  /// Chain walking: the build row of a node, and the next node (kNil at end).
  uint32_t MatchRow(uint32_t node) const { return nodes_[node].row; }
  uint32_t NextMatch(uint32_t node) const { return nodes_[node].next; }

  size_t num_keys() const { return num_keys_; }
  size_t num_rows() const { return nodes_.size(); }
  size_t MemoryBytes() const;

 private:
  struct Slot {
    uint64_t hash = 0;
    uint32_t key_pos = 0;   // key start / key_width in keys_
    uint32_t head = kNil;   // kNil marks an empty slot
    uint32_t tail = kNil;
  };
  struct Node {
    uint32_t row;
    uint32_t next;
  };

  uint64_t HashKey(const storage::ObjectId* key) const;
  uint32_t LookupHashed(const storage::ObjectId* key, uint64_t hash) const;
  bool KeyEquals(const Slot& slot, const storage::ObjectId* key) const;
  void Rehash(size_t new_slot_count);

  int key_width_;
  uint64_t mask_ = 0;  // slots_.size() - 1
  size_t num_keys_ = 0;
  std::vector<Slot> slots_;
  std::vector<storage::ObjectId> keys_;  // key_width_ ids per distinct key
  std::vector<Node> nodes_;
};

}  // namespace xk::exec

#endif  // XK_EXEC_JOIN_HASH_TABLE_H_
