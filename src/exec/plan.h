// Copyright (c) the XKeyword authors.
//
// Join plans over connection relations. A JoinQuery is a left-deep sequence of
// steps; each step scans or probes one relation, equating some of its columns
// with columns of earlier steps (the join edges of the fragment tiling) and
// restricting others to keyword containing lists.
//
// Two interpreters are provided:
//  * NestedLoopExecutor — pipelined index-nested-loops, the paper's choice for
//    top-k queries (Section 6: "XKeyword uses nested loops join, where the
//    nesting of the loops is determined by a depth first traversal").
//  * HashJoinExecutor — bottom-up hash joins with full scans, the plan the
//    DBMS picks for full-result queries on unindexed minimal decompositions
//    (Section 7: "the full table scan and the hash join is the fastest way").

#ifndef XK_EXEC_PLAN_H_
#define XK_EXEC_PLAN_H_

#include <functional>
#include <limits>
#include <vector>

#include "common/status.h"
#include "exec/operators.h"

namespace xk::exec {

/// Names a column of an earlier step in the same query.
struct ColumnRef {
  int step;
  int column;
  bool operator==(const ColumnRef&) const = default;
};

/// One relation access of a left-deep join.
struct JoinStep {
  const storage::Table* table = nullptr;
  /// this step's column == earlier step's column (ref.step < this step's pos).
  std::vector<std::pair<int, ColumnRef>> eq;
  /// this step's column restricted to an id set (keyword containing list).
  std::vector<ColumnInSet> in_filters;
  /// this step's column pinned to a constant.
  std::vector<ColumnBinding> const_filters;
};

/// A left-deep join query plus execution limits.
struct JoinQuery {
  std::vector<JoinStep> steps;

  /// Checks referential sanity (steps non-null, eq refs strictly backward,
  /// column indexes in range).
  Status Validate() const;
};

/// Receives one output row as per-step views into base tables (nested loops)
/// or materialized intermediates (hash join). Return false to stop execution.
using RowSink =
    std::function<bool(const std::vector<storage::TupleView>& step_rows)>;

/// Pipelined nested-loops interpreter.
class NestedLoopExecutor {
 public:
  NestedLoopExecutor(const JoinQuery* query, ExecOptions opts)
      : query_(query), opts_(opts) {}

  /// Runs until the sink declines, `limit` rows are produced, or input is
  /// exhausted. Reentrant: each Run starts fresh (stats accumulate).
  Status Run(const RowSink& sink,
             size_t limit = std::numeric_limits<size_t>::max());

  /// Installs semi-join prune filters, one entry per step (may be shorter;
  /// missing/empty entries mean "no pruning for that step"). Filters must
  /// outlive Run.
  void set_step_blooms(const std::vector<std::vector<ColumnBloom>>* step_blooms) {
    step_blooms_ = step_blooms;
  }

  const ProbeStats& stats() const { return stats_; }

 private:
  bool Recurse(size_t depth, std::vector<storage::TupleView>* rows,
               const RowSink& sink, size_t limit, size_t* produced);

  const JoinQuery* query_;
  ExecOptions opts_;
  const std::vector<std::vector<ColumnBloom>>* step_blooms_ = nullptr;
  ProbeStats stats_;
  /// Per-depth probe bindings, reused across rows (no inner-loop allocation).
  std::vector<std::vector<ColumnBinding>> binding_scratch_;
};

/// Bottom-up hash-join interpreter: materializes step 0 (after filters), then
/// hash-joins each further step in order.
///
/// With `opts.vectorized` (the default) the build side is a flat
/// open-addressing JoinHashTable (precomputed hashes, arena duplicate
/// chains), intermediates are flat arrays of scan ordinals, and the probe
/// side is processed in key blocks; `vectorized = false` keeps the legacy
/// unordered_map build for A/B comparison. Output is byte-identical.
class HashJoinExecutor {
 public:
  explicit HashJoinExecutor(const JoinQuery* query, ExecOptions opts = {})
      : query_(query), opts_(opts) {}

  Status Run(const RowSink& sink);

  /// Rows materialized across all intermediates (work measure for benches).
  uint64_t rows_materialized() const { return rows_materialized_; }

 private:
  Status RunVectorized(const RowSink& sink);
  Status RunLegacy(const RowSink& sink);

  const JoinQuery* query_;
  ExecOptions opts_;
  uint64_t rows_materialized_ = 0;
};

}  // namespace xk::exec

#endif  // XK_EXEC_PLAN_H_
