// Copyright (c) the XKeyword authors.
//
// Pull-based iterator interface of the execution layer (Volcano style).

#ifndef XK_EXEC_ROW_ITERATOR_H_
#define XK_EXEC_ROW_ITERATOR_H_

#include "storage/tuple.h"

namespace xk::exec {

/// Produces rows one at a time; Next returns false at end of stream.
class RowIterator {
 public:
  virtual ~RowIterator() = default;

  /// Fills `*out` with the next row (resizing as needed); false when drained.
  virtual bool Next(storage::Tuple* out) = 0;

  /// Number of columns in produced rows.
  virtual int arity() const = 0;
};

}  // namespace xk::exec

#endif  // XK_EXEC_ROW_ITERATOR_H_
