// Copyright (c) the XKeyword authors.
//
// Materialized output of a shared subplan (a common join prefix among the
// candidate networks of one query, Section 4's common-subexpression reuse
// lifted from leaf scans to whole subplans). The producer executes the prefix
// once and appends one row of per-step base-table row ids per prefix match;
// every consuming plan then replays the rows — in the producer's enumeration
// order, so results stay byte-identical to re-executing the prefix — through
// its own SubplanReplayIterator, or random-accesses them for morsel
// partitioning.

#ifndef XK_EXEC_SUBPLAN_SOURCE_H_
#define XK_EXEC_SUBPLAN_SOURCE_H_

#include <vector>

#include "exec/row_block.h"
#include "storage/table.h"

namespace xk::exec {

/// Append-once, replay-many columnar buffer of prefix rows. Column c of row r
/// holds the base-table row id the prefix's step c bound for that match,
/// stored as RowBlock batches so consumers can stream it through the
/// vectorized substrate. Not thread-safe while appending; immutable (and
/// safely shared across threads) once the producer is done.
class MaterializedSubplan {
 public:
  /// `arity` = number of prefix steps; `block_capacity` rows per batch.
  explicit MaterializedSubplan(int arity,
                               size_t block_capacity = RowBlock::kDefaultCapacity);

  /// Appends one prefix row of `arity` per-step row ids.
  void Append(const storage::RowId* step_rows);

  size_t num_rows() const { return num_rows_; }
  int arity() const { return arity_; }
  /// Heap bytes held by the materialization (block buffers included).
  size_t bytes() const { return bytes_; }

  /// Row id bound by step `col` of prefix row `row`.
  storage::RowId At(size_t row, int col) const {
    const RowBlock& b = blocks_[row / block_capacity_];
    return static_cast<storage::RowId>(b.column(col)[row % block_capacity_]);
  }

  const std::vector<RowBlock>& blocks() const { return blocks_; }

 private:
  int arity_;
  size_t block_capacity_;
  size_t num_rows_ = 0;
  size_t bytes_ = 0;
  std::vector<RowBlock> blocks_;
};

/// Replayable block source over a MaterializedSubplan. Each consumer creates
/// its own iterator (the subplan itself is shared and immutable); blocks come
/// out materialized with an identity selection, in append order.
class SubplanReplayIterator : public BlockIterator {
 public:
  /// `subplan` is not owned and must outlive the iterator.
  explicit SubplanReplayIterator(const MaterializedSubplan* subplan)
      : subplan_(subplan) {}

  bool Next(RowBlock* out) override;
  int arity() const override { return subplan_->arity(); }

 private:
  const MaterializedSubplan* subplan_;
  size_t next_block_ = 0;
};

}  // namespace xk::exec

#endif  // XK_EXEC_SUBPLAN_SOURCE_H_
