#include "exec/operators.h"

#include <algorithm>

#include "common/cancel_token.h"
#include "common/logging.h"
#include "exec/block_ops.h"

namespace xk::exec {

namespace {

/// True when row `r` satisfies every binding and in-set filter.
bool RowMatches(const storage::Table& table, storage::RowId r,
                const std::vector<ColumnBinding>& bindings,
                const std::vector<ColumnInSet>& in_filters) {
  for (const ColumnBinding& b : bindings) {
    if (table.At(r, b.column) != b.value) return false;
  }
  for (const ColumnInSet& f : in_filters) {
    if (!f.set->contains(table.At(r, f.column))) return false;
  }
  return true;
}

}  // namespace

std::vector<storage::ObjectId> KeyPrefixFromBindings(
    const std::vector<int>& key, const std::vector<ColumnBinding>& bindings) {
  std::vector<storage::ObjectId> prefix;
  prefix.reserve(key.size());
  for (int key_col : key) {
    auto it = std::find_if(bindings.begin(), bindings.end(),
                           [key_col](const ColumnBinding& b) {
                             return b.column == key_col;
                           });
    if (it == bindings.end()) break;
    prefix.push_back(it->value);
  }
  return prefix;
}

const char* AccessPathKindToString(AccessPathKind kind) {
  switch (kind) {
    case AccessPathKind::kClusteredRange: return "clustered-range";
    case AccessPathKind::kCompositeIndex: return "composite-index";
    case AccessPathKind::kHashIndex: return "hash-index";
    case AccessPathKind::kFullScan: return "full-scan";
  }
  return "?";
}

const storage::CompositeIndex* BestCompositeIndex(
    const storage::Table& table, const std::vector<ColumnBinding>& bindings,
    std::vector<storage::ObjectId>* prefix) {
  const storage::CompositeIndex* best = nullptr;
  std::vector<storage::ObjectId> best_prefix;
  for (const auto& idx : table.composite_indexes()) {
    std::vector<storage::ObjectId> candidate =
        KeyPrefixFromBindings(idx->key_columns(), bindings);
    if (candidate.size() > best_prefix.size()) {
      best = idx.get();
      best_prefix = std::move(candidate);
    }
  }
  if (best != nullptr && prefix != nullptr) *prefix = std::move(best_prefix);
  return best;
}

AccessPathKind ChooseAccessPath(const storage::Table& table,
                                const std::vector<ColumnBinding>& bindings,
                                const ExecOptions& opts) {
  if (!opts.use_indexes || bindings.empty()) return AccessPathKind::kFullScan;
  if (table.IsClustered() &&
      !KeyPrefixFromBindings(table.clustering_key(), bindings).empty()) {
    return AccessPathKind::kClusteredRange;
  }
  if (BestCompositeIndex(table, bindings, nullptr) != nullptr) {
    return AccessPathKind::kCompositeIndex;
  }
  for (const ColumnBinding& b : bindings) {
    if (table.GetHashIndex(b.column) != nullptr) return AccessPathKind::kHashIndex;
  }
  return AccessPathKind::kFullScan;
}

AccessPathKind ForEachMatch(const storage::Table& table,
                            const std::vector<ColumnBinding>& bindings,
                            const std::vector<ColumnInSet>& in_filters,
                            const std::vector<ColumnBloom>& prune_blooms,
                            const ExecOptions& opts,
                            const std::function<bool(storage::RowId)>& fn,
                            ProbeStats* stats) {
  if (opts.vectorized) {
    // Adaptive batch path: small index probes run a fused scalar loop with
    // allocation-free cursor setup, large scans are filtered block-at-a-time
    // by selection-vector kernels; matches arrive in candidate order either
    // way, so callers see the exact row sequence the legacy loop below
    // would produce.
    return ForEachMatchRows(table, bindings, in_filters, prune_blooms, opts,
                            fn, stats);
  }
  if (stats != nullptr) ++stats->probes;
  const AccessPathKind kind = ChooseAccessPath(table, bindings, opts);

  // Semi-join pruning: a bound value absent from a column's Bloom summary
  // cannot match any row that survives the step's local filters.
  for (const ColumnBloom& pb : prune_blooms) {
    for (const ColumnBinding& b : bindings) {
      if (b.column == pb.column && !pb.bloom->MayContain(b.value)) {
        if (stats != nullptr) ++stats->bloom_skips;
        return kind;
      }
    }
  }

  if (opts.cancel != nullptr && opts.cancel->StopRequested()) return kind;

  // Cancellation poll period: cheap enough to keep scan overhead negligible,
  // tight enough that a tripped deadline stops mid-scan within microseconds.
  constexpr uint64_t kCancelPollMask = 0xFF;
  uint64_t scanned = 0;
  auto emit = [&](storage::RowId r) -> bool {
    if (opts.cancel != nullptr && (++scanned & kCancelPollMask) == 0 &&
        opts.cancel->StopRequested()) {
      return false;
    }
    if (stats != nullptr) ++stats->rows_scanned;
    if (!RowMatches(table, r, bindings, in_filters)) return true;
    if (stats != nullptr) ++stats->rows_matched;
    return fn(r);
  };

  switch (kind) {
    case AccessPathKind::kClusteredRange: {
      std::vector<storage::ObjectId> prefix =
          KeyPrefixFromBindings(table.clustering_key(), bindings);
      auto [begin, end] = table.ClusteredRange(prefix);
      for (storage::RowId r = begin; r < end; ++r) {
        if (!emit(r)) return kind;
      }
      return kind;
    }
    case AccessPathKind::kCompositeIndex: {
      std::vector<storage::ObjectId> prefix;
      const storage::CompositeIndex* best =
          BestCompositeIndex(table, bindings, &prefix);
      XK_CHECK(best != nullptr);
      for (storage::RowId r : best->LookupPrefix(prefix)) {
        if (!emit(r)) return kind;
      }
      return kind;
    }
    case AccessPathKind::kHashIndex: {
      const storage::HashIndex* idx = nullptr;
      storage::ObjectId key = storage::kInvalidId;
      for (const ColumnBinding& b : bindings) {
        idx = table.GetHashIndex(b.column);
        if (idx != nullptr) {
          key = b.value;
          break;
        }
      }
      XK_CHECK(idx != nullptr);
      for (storage::RowId r : idx->Lookup(key)) {
        if (!emit(r)) return kind;
      }
      return kind;
    }
    case AccessPathKind::kFullScan: {
      const storage::RowId n = static_cast<storage::RowId>(table.NumRows());
      for (storage::RowId r = 0; r < n; ++r) {
        if (!emit(r)) return kind;
      }
      return kind;
    }
  }
  return kind;
}

AccessPathKind ForEachMatch(const storage::Table& table,
                            const std::vector<ColumnBinding>& bindings,
                            const std::vector<ColumnInSet>& in_filters,
                            const ExecOptions& opts,
                            const std::function<bool(storage::RowId)>& fn,
                            ProbeStats* stats) {
  return ForEachMatch(table, bindings, in_filters, {}, opts, fn, stats);
}

TableScanIterator::TableScanIterator(const storage::Table& table,
                                     std::vector<ColumnBinding> bindings,
                                     std::vector<ColumnInSet> in_filters)
    : table_(table),
      bindings_(std::move(bindings)),
      in_filters_(std::move(in_filters)) {}

bool TableScanIterator::Next(storage::Tuple* out) {
  const storage::RowId n = static_cast<storage::RowId>(table_.NumRows());
  while (next_row_ < n) {
    storage::RowId r = next_row_++;
    if (RowMatches(table_, r, bindings_, in_filters_)) {
      storage::TupleView row = table_.Row(r);
      out->assign(row.begin(), row.end());
      return true;
    }
  }
  return false;
}

}  // namespace xk::exec
