// Copyright (c) the XKeyword authors.
//
// Physical access paths over connection relations. A probe binds some columns
// to constants (join bindings from outer loops, or keyword restrictions) and
// enumerates matching rows. The path chosen mirrors the physical designs the
// paper compares in Section 7:
//   clustered range  — index-organized tables ("MinClust", XKeyword relations
//                      clustered "on the direction that R is used")
//   composite index  — multi-attribute indexes of the maximal decomposition
//   hash index       — "single attribute indices on every attribute"
//   full scan        — "MinNClustNIndx", no indexes or clustering

#ifndef XK_EXEC_OPERATORS_H_
#define XK_EXEC_OPERATORS_H_

#include <functional>
#include <utility>
#include <vector>

#include "exec/row_iterator.h"
#include "storage/table.h"

namespace xk {
class CancelToken;
}  // namespace xk

namespace xk::exec {

/// Equality binding of a table column to a constant for one probe.
struct ColumnBinding {
  int column;
  storage::ObjectId value;
};

/// Restriction of a column to an id set (a keyword containing list).
struct ColumnInSet {
  int column;
  const storage::IdSet* set;  // not owned; must outlive the probe
};

/// Semi-join prune: a Bloom filter summarizing the values `column` can take
/// among rows that could ever match this probe's relation (e.g. rows passing
/// the step's local keyword filters). A probe whose binding for `column` is
/// definitely absent is rejected without touching the table.
struct ColumnBloom {
  int column;
  const storage::BloomFilter* bloom;  // not owned; must outlive the probe
};

/// Which physical path served a probe (exposed for tests and benches).
enum class AccessPathKind {
  kClusteredRange,
  kCompositeIndex,
  kHashIndex,
  kFullScan,
};

const char* AccessPathKindToString(AccessPathKind kind);

/// Execution-time knobs; each decomposition policy sets these.
struct ExecOptions {
  /// When false, every probe is a full scan (the MinNClustNIndx policy).
  bool use_indexes = true;
  /// Batch-at-a-time probe evaluation: candidates stream through RowBlocks
  /// and predicates run as selection-vector kernels (block_ops.h), polling
  /// cancellation once per block. Off = the row-at-a-time legacy path.
  /// Results are byte-identical either way.
  bool vectorized = true;
  /// Rows per batch on the vectorized path (0 = RowBlock::kDefaultCapacity).
  size_t block_size = 0;
  /// Pins the block kernels (selection, hash, probe, Bloom) to their scalar
  /// reference implementations regardless of detected CPU features. The SIMD
  /// variants are bit-identical, so this is a debugging/benchmarking knob,
  /// not a correctness one. Also forced by XK_FORCE_SCALAR_KERNELS=1.
  bool force_scalar_kernels = false;
  /// Cooperative cancellation/deadline token (not owned, may be null).
  /// ForEachMatch polls it every few hundred scanned rows (row path) or once
  /// per block (vectorized path) and abandons the probe; callers classify
  /// the early stop via CancelToken::ToStatus().
  const CancelToken* cancel = nullptr;
};

/// The path a probe with the given bound columns would take on `table`.
/// Among several usable composite indexes, the one covering the longest
/// prefix of bound columns wins (ties broken by build order); `ForEachMatch`
/// probes the same index this function selects.
AccessPathKind ChooseAccessPath(const storage::Table& table,
                                const std::vector<ColumnBinding>& bindings,
                                const ExecOptions& opts);

/// The composite index of `table` covering the longest key prefix of bound
/// columns (ties broken by build order), or nullptr if none has even its
/// first key column bound. On a hit, `*prefix` receives the bound key values.
const storage::CompositeIndex* BestCompositeIndex(
    const storage::Table& table, const std::vector<ColumnBinding>& bindings,
    std::vector<storage::ObjectId>* prefix);

/// Bound columns arranged as the longest possible prefix of `key`, or empty
/// if not even the first key column is bound. Shared by the row-at-a-time
/// and block access paths.
std::vector<storage::ObjectId> KeyPrefixFromBindings(
    const std::vector<int>& key, const std::vector<ColumnBinding>& bindings);

/// Counters accumulated across probes; the benches report these alongside
/// wall time so the cost differences are explainable.
struct ProbeStats {
  uint64_t probes = 0;        // number of ForEachMatch calls
  uint64_t rows_scanned = 0;  // rows touched (incl. filtered-out)
  uint64_t rows_matched = 0;  // rows passed to the callback
  uint64_t bloom_skips = 0;   // probes rejected by a semi-join Bloom filter

  void Add(const ProbeStats& other) {
    probes += other.probes;
    rows_scanned += other.rows_scanned;
    rows_matched += other.rows_matched;
    bloom_skips += other.bloom_skips;
  }
};

/// Enumerates rows of `table` satisfying all bindings and in-set filters,
/// invoking `fn(row_id)`; `fn` returns false to stop early. Returns the path
/// taken. `stats` may be null. A probe whose binding fails one of
/// `prune_blooms` is skipped entirely (counted in `stats->bloom_skips`).
AccessPathKind ForEachMatch(const storage::Table& table,
                            const std::vector<ColumnBinding>& bindings,
                            const std::vector<ColumnInSet>& in_filters,
                            const std::vector<ColumnBloom>& prune_blooms,
                            const ExecOptions& opts,
                            const std::function<bool(storage::RowId)>& fn,
                            ProbeStats* stats);

/// Convenience overload without semi-join pruning.
AccessPathKind ForEachMatch(const storage::Table& table,
                            const std::vector<ColumnBinding>& bindings,
                            const std::vector<ColumnInSet>& in_filters,
                            const ExecOptions& opts,
                            const std::function<bool(storage::RowId)>& fn,
                            ProbeStats* stats);

/// Full-scan iterator with optional constant / in-set filters.
class TableScanIterator : public RowIterator {
 public:
  TableScanIterator(const storage::Table& table,
                    std::vector<ColumnBinding> bindings,
                    std::vector<ColumnInSet> in_filters);

  bool Next(storage::Tuple* out) override;
  int arity() const override { return table_.arity(); }

 private:
  const storage::Table& table_;
  std::vector<ColumnBinding> bindings_;
  std::vector<ColumnInSet> in_filters_;
  storage::RowId next_row_ = 0;
};

}  // namespace xk::exec

#endif  // XK_EXEC_OPERATORS_H_
