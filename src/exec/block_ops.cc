#include "exec/block_ops.h"

#include <algorithm>
#include <memory>

#include "common/cancel_token.h"
#include "common/logging.h"
#include "common/simd.h"

namespace xk::exec {

// --- Kernels -------------------------------------------------------------

size_t SelEqual(const storage::Table& table, RowBlock* block, int column,
                storage::ObjectId value, bool force_scalar) {
  const size_t out = simd::SelCompressEqual(
      table.RowData(), static_cast<uint64_t>(table.arity()),
      static_cast<uint64_t>(column), block->row_ids.data(), block->sel.data(),
      block->num_selected, value, simd::KernelLevel(force_scalar));
  block->num_selected = out;
  return out;
}

size_t SelInSet(const storage::Table& table, RowBlock* block, int column,
                const storage::IdSet& set, bool force_scalar) {
  uint32_t* sel = block->sel.data();
  // Small sets (single-keyword containing lists are often 1-4 ids) compare
  // against an unrolled ladder instead of hashing per candidate; the ladder
  // is the vectorizable form.
  if (!set.empty() && set.size() <= simd::kMaxInlineInSet) {
    int64_t vals[simd::kMaxInlineInSet];
    size_t k = 0;
    for (storage::ObjectId v : set) vals[k++] = v;
    const size_t out = simd::SelCompressInSet(
        table.RowData(), static_cast<uint64_t>(table.arity()),
        static_cast<uint64_t>(column), block->row_ids.data(), sel,
        block->num_selected, vals, k, simd::KernelLevel(force_scalar));
    block->num_selected = out;
    return out;
  }
  const storage::RowId* rows = block->row_ids.data();
  size_t out = 0;
  for (size_t i = 0; i < block->num_selected; ++i) {
    const uint32_t s = sel[i];
    sel[out] = s;
    out += set.contains(table.At(rows[s], column)) ? 1 : 0;
  }
  block->num_selected = out;
  return out;
}

namespace {

// --- Candidate cursor ----------------------------------------------------
//
// Unified candidate enumeration for every access path: a contiguous row
// range (full scan, clustered range) or a row-id span owned by an index
// (composite, hash). Enumeration order equals the row-at-a-time path's.

struct CandidateCursor {
  bool use_span = false;
  storage::RowId next = 0;
  storage::RowId end = 0;
  std::span<const storage::RowId> span;
  size_t pos = 0;

  /// Candidates not yet consumed.
  size_t Remaining() const {
    return use_span ? span.size() - pos : static_cast<size_t>(end - next);
  }

  /// Loads up to `cap` candidates into `block->row_ids`; returns the count.
  size_t Fill(RowBlock* block, size_t cap) {
    storage::RowId* out = block->row_ids.data();
    if (use_span) {
      const size_t n = std::min(cap, span.size() - pos);
      for (size_t i = 0; i < n; ++i) out[i] = span[pos + i];
      pos += n;
      return n;
    }
    const size_t n = std::min<size_t>(cap, end - next);
    for (size_t i = 0; i < n; ++i) out[i] = next + static_cast<storage::RowId>(i);
    next += static_cast<storage::RowId>(n);
    return n;
  }
};

// Stack buffer for index-key prefixes: probes run millions of times per
// query, so cursor setup must not allocate. Keys longer than this fall back
// to the allocating helpers (none of the paper's schemas come close).
constexpr size_t kMaxInlineKey = 8;

struct PrefixBuf {
  storage::ObjectId vals[kMaxInlineKey];
  size_t len = 0;
  storage::TupleView view() const { return {vals, len}; }
};

/// Longest bound prefix of `key`, mirroring KeyPrefixFromBindings (first
/// matching binding per key column, stop at the first unbound column) but
/// without materializing values. Returns the length.
size_t BoundPrefixLen(const std::vector<int>& key,
                      const std::vector<ColumnBinding>& bindings) {
  size_t len = 0;
  for (int key_col : key) {
    bool found = false;
    for (const ColumnBinding& b : bindings) {
      if (b.column == key_col) {
        found = true;
        break;
      }
    }
    if (!found) break;
    ++len;
  }
  return len;
}

/// Fills `out` with the bound prefix of `key` (same selection rule as
/// KeyPrefixFromBindings). Requires the prefix length to fit the buffer.
void FillPrefix(const std::vector<int>& key,
                const std::vector<ColumnBinding>& bindings, size_t len,
                PrefixBuf* out) {
  XK_CHECK_LE(len, kMaxInlineKey);
  out->len = len;
  for (size_t i = 0; i < len; ++i) {
    for (const ColumnBinding& b : bindings) {
      if (b.column == key[i]) {
        out->vals[i] = b.value;
        break;
      }
    }
  }
}

/// Resolved access-path choice: enough to initialize a cursor later without
/// re-deciding. Splitting choice from initialization keeps the expensive
/// part — the clustered-range binary search or index lookup — after the
/// Bloom prune, exactly like the row path's ChooseAccessPath/switch split
/// (most probes of a pruned plan never touch the table).
struct PathChoice {
  AccessPathKind kind = AccessPathKind::kFullScan;
  size_t prefix_len = 0;                            // clustered / composite
  const storage::CompositeIndex* composite = nullptr;
  const storage::HashIndex* hash = nullptr;
  storage::ObjectId hash_key = storage::kInvalidId;
};

/// Allocation-free access-path decision with the exact rules of
/// ChooseAccessPath/BestCompositeIndex (so row and block paths always
/// agree). Performs no index lookups.
PathChoice ChoosePath(const storage::Table& table,
                      const std::vector<ColumnBinding>& bindings,
                      const ExecOptions& opts) {
  PathChoice choice;
  if (!opts.use_indexes || bindings.empty()) return choice;
  if (table.IsClustered()) {
    const size_t len = BoundPrefixLen(table.clustering_key(), bindings);
    if (len > 0) {
      choice.kind = AccessPathKind::kClusteredRange;
      choice.prefix_len = len;
      return choice;
    }
  }
  // Longest-prefix composite index, first index wins ties (same rule as
  // BestCompositeIndex: only a strictly longer prefix replaces the best).
  for (const auto& idx : table.composite_indexes()) {
    const size_t len = BoundPrefixLen(idx->key_columns(), bindings);
    if (len > choice.prefix_len) {
      choice.composite = idx.get();
      choice.prefix_len = len;
    }
  }
  if (choice.composite != nullptr) {
    choice.kind = AccessPathKind::kCompositeIndex;
    return choice;
  }
  for (const ColumnBinding& b : bindings) {
    const storage::HashIndex* idx = table.GetHashIndex(b.column);
    if (idx != nullptr) {
      choice.kind = AccessPathKind::kHashIndex;
      choice.hash = idx;
      choice.hash_key = b.value;
      return choice;
    }
  }
  return choice;
}

/// Runs the chosen path's index probe / range search and points `cur` at the
/// candidates, building key prefixes in a stack buffer (vector fallback for
/// oversized keys, which none of the paper's schemas come close to).
void InitCursorFrom(const PathChoice& choice, const storage::Table& table,
                    const std::vector<ColumnBinding>& bindings,
                    CandidateCursor* cur) {
  switch (choice.kind) {
    case AccessPathKind::kClusteredRange: {
      const std::vector<int>& key = table.clustering_key();
      if (choice.prefix_len <= kMaxInlineKey) {
        PrefixBuf prefix;
        FillPrefix(key, bindings, choice.prefix_len, &prefix);
        std::tie(cur->next, cur->end) = table.ClusteredRange(prefix.view());
      } else {
        std::vector<storage::ObjectId> prefix =
            KeyPrefixFromBindings(key, bindings);
        std::tie(cur->next, cur->end) = table.ClusteredRange(prefix);
      }
      return;
    }
    case AccessPathKind::kCompositeIndex: {
      const std::vector<int>& key = choice.composite->key_columns();
      cur->use_span = true;
      if (choice.prefix_len <= kMaxInlineKey) {
        PrefixBuf prefix;
        FillPrefix(key, bindings, choice.prefix_len, &prefix);
        cur->span = choice.composite->LookupPrefix(prefix.view());
      } else {
        std::vector<storage::ObjectId> prefix =
            KeyPrefixFromBindings(key, bindings);
        cur->span = choice.composite->LookupPrefix(prefix);
      }
      return;
    }
    case AccessPathKind::kHashIndex:
      cur->use_span = true;
      cur->span = choice.hash->Lookup(choice.hash_key);
      return;
    case AccessPathKind::kFullScan:
      cur->end = static_cast<storage::RowId>(table.NumRows());
      return;
  }
}

AccessPathKind InitCursor(const storage::Table& table,
                          const std::vector<ColumnBinding>& bindings,
                          const ExecOptions& opts, CandidateCursor* cur) {
  const PathChoice choice = ChoosePath(table, bindings, opts);
  InitCursorFrom(choice, table, bindings, cur);
  return choice.kind;
}

/// True when row `r` passes every binding and in-set filter (the scalar
/// twin of the SelEqual/SelInSet kernel sequence).
bool RowPasses(const storage::Table& table, storage::RowId r,
               const std::vector<ColumnBinding>& bindings,
               const std::vector<ColumnInSet>& in_filters) {
  for (const ColumnBinding& b : bindings) {
    if (table.At(r, b.column) != b.value) return false;
  }
  for (const ColumnInSet& f : in_filters) {
    if (!f.set->contains(table.At(r, f.column))) return false;
  }
  return true;
}

/// Applies every binding and in-set predicate to the block as kernels,
/// short-circuiting once the selection empties.
void ApplyFilters(const storage::Table& table,
                  const std::vector<ColumnBinding>& bindings,
                  const std::vector<ColumnInSet>& in_filters,
                  const ExecOptions& opts, RowBlock* block) {
  for (const ColumnBinding& f : bindings) {
    if (block->num_selected == 0) return;
    SelEqual(table, block, f.column, f.value, opts.force_scalar_kernels);
  }
  for (const ColumnInSet& f : in_filters) {
    if (block->num_selected == 0) return;
    SelInSet(table, block, f.column, *f.set, opts.force_scalar_kernels);
  }
}

// --- Scratch-block pool --------------------------------------------------
//
// ForEachMatchBlock needs a scratch block per probe, but probes nest (the
// nested-loop executors recurse from inside the sink), so one thread-local
// block is not enough: a per-thread stack of blocks, indexed by recursion
// depth, keeps every live probe's block intact and amortizes the allocation
// across all probes a worker ever runs.

struct BlockPool {
  std::vector<std::unique_ptr<RowBlock>> blocks;
  size_t depth = 0;
};

thread_local BlockPool t_block_pool;

class PooledBlock {
 public:
  PooledBlock(int arity, size_t capacity) {
    BlockPool& pool = t_block_pool;
    if (pool.depth == pool.blocks.size()) {
      pool.blocks.push_back(std::make_unique<RowBlock>());
    }
    block_ = pool.blocks[pool.depth++].get();
    block_->Reset(arity, capacity);
  }
  ~PooledBlock() { --t_block_pool.depth; }

  PooledBlock(const PooledBlock&) = delete;
  PooledBlock& operator=(const PooledBlock&) = delete;

  RowBlock& operator*() { return *block_; }

 private:
  RowBlock* block_;
};

size_t EffectiveBlockSize(const ExecOptions& opts) {
  return opts.block_size != 0 ? opts.block_size : RowBlock::kDefaultCapacity;
}

/// True when a bound value is refuted by a prune Bloom (probe cannot match).
bool BloomPruned(const std::vector<ColumnBinding>& bindings,
                 const std::vector<ColumnBloom>& prune_blooms,
                 ProbeStats* stats) {
  for (const ColumnBloom& pb : prune_blooms) {
    for (const ColumnBinding& b : bindings) {
      if (b.column == pb.column && !pb.bloom->MayContain(b.value)) {
        if (stats != nullptr) ++stats->bloom_skips;
        return true;
      }
    }
  }
  return false;
}

// Block-size ramp: the first block of a probe is small so an early-stopping
// sink (top-k) never pays for 1k rows of filtering it will discard; streaming
// consumers reach the full block size within two blocks.
constexpr size_t kBlockRampStart = 64;

/// Streams the cursor's remaining candidates through the filter kernels in
/// ramped blocks and hands each surviving block to `fn`.
void RunBlockLoop(const storage::Table& table,
                  const std::vector<ColumnBinding>& bindings,
                  const std::vector<ColumnInSet>& in_filters,
                  const ExecOptions& opts, CandidateCursor* cursor,
                  BlockSinkRef fn, ProbeStats* stats) {
  const size_t cap = EffectiveBlockSize(opts);
  PooledBlock pooled(table.arity(), cap);
  RowBlock& block = *pooled;
  size_t step = std::min(cap, kBlockRampStart);
  while (true) {
    // One cancellation poll per block instead of per row.
    if (opts.cancel != nullptr && opts.cancel->StopRequested()) return;
    const size_t n = cursor->Fill(&block, step);
    if (n == 0) return;
    step = std::min(cap, step * 4);
    block.SelectAll(n);
    ApplyFilters(table, bindings, in_filters, opts, &block);
    if (stats != nullptr) {
      stats->rows_scanned += block.size;
      stats->rows_matched += block.num_selected;
    }
    if (block.num_selected != 0 && !fn(block)) return;
  }
}

}  // namespace

// --- Batch probe ---------------------------------------------------------

AccessPathKind ForEachMatchBlock(const storage::Table& table,
                                 const std::vector<ColumnBinding>& bindings,
                                 const std::vector<ColumnInSet>& in_filters,
                                 const std::vector<ColumnBloom>& prune_blooms,
                                 const ExecOptions& opts, BlockSinkRef fn,
                                 ProbeStats* stats) {
  if (stats != nullptr) ++stats->probes;
  const PathChoice choice = ChoosePath(table, bindings, opts);
  if (BloomPruned(bindings, prune_blooms, stats)) return choice.kind;
  CandidateCursor cursor;
  InitCursorFrom(choice, table, bindings, &cursor);
  RunBlockLoop(table, bindings, in_filters, opts, &cursor, fn, stats);
  return choice.kind;
}

AccessPathKind ForEachMatchRows(const storage::Table& table,
                                const std::vector<ColumnBinding>& bindings,
                                const std::vector<ColumnInSet>& in_filters,
                                const std::vector<ColumnBloom>& prune_blooms,
                                const ExecOptions& opts,
                                const std::function<bool(storage::RowId)>& fn,
                                ProbeStats* stats) {
  if (stats != nullptr) ++stats->probes;
  const PathChoice choice = ChoosePath(table, bindings, opts);
  if (BloomPruned(bindings, prune_blooms, stats)) return choice.kind;
  CandidateCursor cursor;
  InitCursorFrom(choice, table, bindings, &cursor);
  const AccessPathKind kind = choice.kind;

  const size_t remaining = cursor.Remaining();
  if (remaining <= kScalarProbeThreshold) {
    // Index probes average a handful of candidates; block setup would cost
    // more than the kernels save, so run the fused scalar loop instead.
    // Cancellation is polled once, matching block granularity.
    if (opts.cancel != nullptr && opts.cancel->StopRequested()) return kind;
    for (size_t i = 0; i < remaining; ++i) {
      const storage::RowId r = cursor.use_span
                                   ? cursor.span[cursor.pos + i]
                                   : cursor.next + static_cast<storage::RowId>(i);
      if (stats != nullptr) ++stats->rows_scanned;
      if (!RowPasses(table, r, bindings, in_filters)) continue;
      if (stats != nullptr) ++stats->rows_matched;
      if (!fn(r)) return kind;
    }
    return kind;
  }

  RunBlockLoop(table, bindings, in_filters, opts, &cursor,
               [&fn](const RowBlock& b) {
                 for (size_t i = 0; i < b.num_selected; ++i) {
                   if (!fn(b.row_ids[b.sel[i]])) return false;
                 }
                 return true;
               },
               stats);
  return kind;
}

// --- ScanBlockIterator ---------------------------------------------------

ScanBlockIterator::ScanBlockIterator(const storage::Table& table,
                                     std::vector<ColumnBinding> bindings,
                                     std::vector<ColumnInSet> in_filters,
                                     ExecOptions opts)
    : table_(table),
      bindings_(std::move(bindings)),
      in_filters_(std::move(in_filters)),
      opts_(opts) {
  CandidateCursor cursor;
  path_ = InitCursor(table_, bindings_, opts_, &cursor);
  use_span_ = cursor.use_span;
  range_next_ = cursor.next;
  range_end_ = cursor.end;
  span_ = cursor.span;
}

bool ScanBlockIterator::Next(RowBlock* out) {
  const size_t cap = EffectiveBlockSize(opts_);
  out->Reset(table_.arity(), cap);
  CandidateCursor cursor;
  cursor.use_span = use_span_;
  cursor.next = range_next_;
  cursor.end = range_end_;
  cursor.span = span_;
  cursor.pos = span_pos_;
  while (true) {
    if (opts_.cancel != nullptr && opts_.cancel->StopRequested()) return false;
    const size_t n = cursor.Fill(out, cap);
    range_next_ = cursor.next;
    span_pos_ = cursor.pos;
    if (n == 0) return false;
    out->SelectAll(n);
    ApplyFilters(table_, bindings_, in_filters_, opts_, out);
    if (out->num_selected == 0) continue;  // all-filtered block: keep pulling
    out->Materialize(table_);
    return true;
  }
}

// --- IndexNestedLoopBlockIterator ---------------------------------------

IndexNestedLoopBlockIterator::IndexNestedLoopBlockIterator(
    BlockIterator* outer, const storage::Table& inner, std::vector<JoinKey> keys,
    std::vector<ColumnInSet> inner_in_filters, ExecOptions opts)
    : outer_(outer),
      inner_(inner),
      keys_(std::move(keys)),
      in_filters_(std::move(inner_in_filters)),
      opts_(opts) {
  bindings_.reserve(keys_.size());
}

void IndexNestedLoopBlockIterator::PruneOuterBlock() {
  if (blooms_.empty()) return;
  const size_t before = outer_block_.num_selected;
  for (const ColumnBloom& pb : blooms_) {
    if (outer_block_.num_selected == 0) break;
    for (const JoinKey& k : keys_) {
      if (k.inner_column != pb.column) continue;
      outer_block_.num_selected = pb.bloom->MayContainBlock(
          outer_block_.column(k.outer_column), outer_block_.sel.data(),
          outer_block_.num_selected, opts_.force_scalar_kernels);
    }
  }
  // Each pruned outer row is a probe the Bloom rejected, exactly as the
  // per-row path would have counted it.
  const size_t pruned = before - outer_block_.num_selected;
  stats_.probes += pruned;
  stats_.bloom_skips += pruned;
}

void IndexNestedLoopBlockIterator::EmitMatches(RowBlock* out) {
  const int outer_arity = outer_->arity();
  const int inner_arity = inner_.arity();
  while (match_pos_ < matches_.size() && out->size < out->capacity) {
    const storage::RowId r = matches_[match_pos_++];
    const size_t i = out->size++;
    out->row_ids[i] = r;
    for (int c = 0; c < outer_arity; ++c) {
      out->column(c)[i] = outer_block_.column(c)[match_outer_];
    }
    for (int c = 0; c < inner_arity; ++c) {
      out->column(outer_arity + c)[i] = inner_.At(r, c);
    }
  }
}

bool IndexNestedLoopBlockIterator::Next(RowBlock* out) {
  const size_t cap = EffectiveBlockSize(opts_);
  out->Reset(arity(), cap);
  out->EnsureColumnBuffer();
  out->size = 0;

  while (out->size < cap) {
    if (match_pos_ < matches_.size()) {
      EmitMatches(out);
      continue;
    }
    if (!outer_valid_ || outer_pos_ >= outer_block_.num_selected) {
      if (outer_drained_ || !outer_->Next(&outer_block_)) {
        outer_drained_ = true;
        break;
      }
      outer_valid_ = true;
      outer_pos_ = 0;
      PruneOuterBlock();
      continue;
    }
    // Indirect through sel: identity unless the Bloom prune compacted it.
    const size_t orow = outer_block_.sel[outer_pos_++];
    bindings_.clear();
    for (const JoinKey& k : keys_) {
      bindings_.push_back(
          ColumnBinding{k.inner_column, outer_block_.column(k.outer_column)[orow]});
    }
    matches_.clear();
    ForEachMatch(inner_, bindings_, in_filters_, {}, opts_,
                 [&](storage::RowId r) {
                   matches_.push_back(r);
                   return true;
                 },
                 &stats_);
    match_pos_ = 0;
    match_outer_ = orow;
  }

  if (out->size == 0) return false;
  out->SelectAll(out->size);
  return true;
}

}  // namespace xk::exec
