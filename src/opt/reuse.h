// Copyright (c) the XKeyword authors.
//
// Common-subexpression reuse across the candidate networks of one query —
// the optimizer's decision (b) in Section 4 ("exploit the reusability
// opportunities of common subexpressions among the CN's", inherited from
// DISCOVER). Different CNs share keyword-filtered relation scans (the same
// T^{k,S} appears in many networks); the full-results executor materializes
// each such scan once per query. Whole-subplan (join-prefix) reuse lives in
// opt/subplan_cache.h.

#ifndef XK_OPT_REUSE_H_
#define XK_OPT_REUSE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/tuple.h"

namespace xk::opt {

/// Query-scoped cache of materialized, filtered relation scans keyed by the
/// optimizer's step signatures. Thread-safe: the map is mutex-guarded and the
/// hit/miss counters are atomics, so one cache can serve plans running on
/// several threads. Returned pointers stay valid for the cache's lifetime
/// (materializations are heap-allocated and never dropped).
class MaterializedViewCache {
 public:
  /// The materialization under `signature`, or nullptr.
  const std::vector<storage::Tuple>* Get(const std::string& signature) const;

  /// Stores a materialization; returns the stored pointer.
  const std::vector<storage::Tuple>* Put(const std::string& signature,
                                         std::vector<storage::Tuple> rows);

  size_t size() const;
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::unique_ptr<std::vector<storage::Tuple>>> views_;
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
};

}  // namespace xk::opt

#endif  // XK_OPT_REUSE_H_
