// Copyright (c) the XKeyword authors.
//
// Common-subexpression reuse across the candidate networks of one query —
// the optimizer's decision (b) in Section 4 ("exploit the reusability
// opportunities of common subexpressions among the CN's", inherited from
// DISCOVER). Different CNs share keyword-filtered relation scans (the same
// T^{k,S} appears in many networks); the full-results executor materializes
// each such scan once per query.

#ifndef XK_OPT_REUSE_H_
#define XK_OPT_REUSE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/tuple.h"

namespace xk::opt {

/// Query-scoped cache of materialized, filtered relation scans keyed by the
/// optimizer's step signatures. Single-threaded (the full executor owns one).
class MaterializedViewCache {
 public:
  /// The materialization under `signature`, or nullptr.
  const std::vector<storage::Tuple>* Get(const std::string& signature) const;

  /// Stores a materialization; returns the stored pointer.
  const std::vector<storage::Tuple>* Put(const std::string& signature,
                                         std::vector<storage::Tuple> rows);

  size_t size() const { return views_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  std::unordered_map<std::string, std::unique_ptr<std::vector<storage::Tuple>>> views_;
  mutable uint64_t hits_ = 0;
  mutable uint64_t misses_ = 0;
};

}  // namespace xk::opt

#endif  // XK_OPT_REUSE_H_
