// Copyright (c) the XKeyword authors.
//
// Cost estimation for CTSSN plans, driven by the Section-4 statistics
// (segment cardinalities, edge fanouts) and per-relation distinct counts.
// Used to break ties among minimum-join tilings and to order join loops.

#ifndef XK_OPT_COST_MODEL_H_
#define XK_OPT_COST_MODEL_H_

#include <vector>

#include "storage/statistics.h"
#include "storage/table.h"
#include "storage/value.h"

namespace xk::opt {

/// Estimated rows produced by probing `table` with `bound` equality-bound
/// columns and in-set filters of the given selectivities (fractions in
/// [0, 1]; 1 = no filter).
double EstimateProbeOutput(const storage::Table& table,
                           const std::vector<int>& bound_columns,
                           const std::vector<double>& filter_selectivities);

/// Selectivity of restricting a column to `set_size` ids out of `domain`
/// objects of its segment.
double FilterSelectivity(size_t set_size, int64_t domain);

}  // namespace xk::opt

#endif  // XK_OPT_COST_MODEL_H_
