#include "opt/cost_model.h"

#include <algorithm>

namespace xk::opt {

double EstimateProbeOutput(const storage::Table& table,
                           const std::vector<int>& bound_columns,
                           const std::vector<double>& filter_selectivities) {
  double rows = static_cast<double>(table.NumRows());
  for (int c : bound_columns) {
    size_t distinct = table.DistinctCount(c);
    if (distinct > 0) rows /= static_cast<double>(distinct);
  }
  for (double s : filter_selectivities) rows *= s;
  return std::max(rows, 0.0);
}

double FilterSelectivity(size_t set_size, int64_t domain) {
  if (domain <= 0) return 1.0;
  double s = static_cast<double>(set_size) / static_cast<double>(domain);
  return std::min(s, 1.0);
}

}  // namespace xk::opt
