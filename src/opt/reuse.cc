#include "opt/reuse.h"

namespace xk::opt {

const std::vector<storage::Tuple>* MaterializedViewCache::Get(
    const std::string& signature) const {
  auto it = views_.find(signature);
  if (it == views_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return it->second.get();
}

const std::vector<storage::Tuple>* MaterializedViewCache::Put(
    const std::string& signature, std::vector<storage::Tuple> rows) {
  auto owned = std::make_unique<std::vector<storage::Tuple>>(std::move(rows));
  const std::vector<storage::Tuple>* ptr = owned.get();
  views_[signature] = std::move(owned);
  return ptr;
}

}  // namespace xk::opt
