#include "opt/reuse.h"

namespace xk::opt {

const std::vector<storage::Tuple>* MaterializedViewCache::Get(
    const std::string& signature) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = views_.find(signature);
  if (it == views_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second.get();
}

const std::vector<storage::Tuple>* MaterializedViewCache::Put(
    const std::string& signature, std::vector<storage::Tuple> rows) {
  // Keep an existing materialization: a signature determines its scan, and
  // earlier steps of the current plan may still hold pointers into it (a
  // reuse-disabled executor Puts the same signature once per occurrence).
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = views_.try_emplace(signature);
  if (inserted) {
    it->second = std::make_unique<std::vector<storage::Tuple>>(std::move(rows));
  }
  return it->second.get();
}

size_t MaterializedViewCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return views_.size();
}

}  // namespace xk::opt
