// Copyright (c) the XKeyword authors.
//
// The Optimizer of Figure 7: turns each candidate TSS network into an
// executable left-deep join over connection relations. Decisions, following
// Section 4: (a) which relations tile the network — exact DP (opt/tiler);
// (b) loop order — outermost the most selective keyword relation, then
// greedily by estimated output, which also maximizes the partial-result
// cache hits of Section 6 (repeated inner bindings through reference edges).

#ifndef XK_OPT_OPTIMIZER_H_
#define XK_OPT_OPTIMIZER_H_

#include <string>
#include <vector>

#include "cn/ctssn.h"
#include "exec/plan.h"
#include "opt/tiler.h"
#include "schema/decomposer.h"

namespace xk::opt {

/// An executable plan for one CTSSN.
struct CtssnPlan {
  const cn::Ctssn* ctssn = nullptr;
  /// Left-deep join; empty steps for single-object networks (handled from
  /// the master index alone).
  exec::JoinQuery query;
  /// Per CTSSN occurrence: which (step, column) of the join output carries
  /// its object id.
  std::vector<exec::ColumnRef> node_source;
  int joins = 0;
  double estimated_cost = 0.0;
  /// Per step: a signature of (relation, local filters) for common
  /// subexpression reuse across the plans of one query.
  std::vector<std::string> step_signatures;
  /// Per step: a canonical signature of the whole join prefix ending at that
  /// step — relation + local filters + equi-join edges of every step so far.
  /// Equal strings across plans mean interchangeable subplans (plan-DAG
  /// sharing, opt/plan_dag.h).
  std::vector<std::string> prefix_signatures;
  /// Cost-model estimate of the plan's output cardinality (candidate-network
  /// scheduling key; ties inside a network-size class break cheapest-first).
  double estimated_rows = 0.0;
};

/// Per CTSSN occurrence, the id-set restrictions derived from its keyword
/// annotations (owned by the caller; pointers must outlive execution).
using NodeFilters = std::vector<std::vector<const storage::IdSet*>>;

class Optimizer {
 public:
  Optimizer(const schema::TssGraph* tss, const decomp::Decomposition* decomposition,
            const storage::Catalog* catalog,
            const schema::TargetObjectGraph* objects);

  /// Plans `ctssn` with the given per-node filters.
  Result<CtssnPlan> Plan(const cn::Ctssn& ctssn, const NodeFilters& filters) const;

 private:
  const schema::TssGraph* tss_;
  const decomp::Decomposition* decomposition_;
  const storage::Catalog* catalog_;
  const schema::TargetObjectGraph* objects_;
};

}  // namespace xk::opt

#endif  // XK_OPT_OPTIMIZER_H_
