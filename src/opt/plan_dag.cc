#include "opt/plan_dag.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "common/logging.h"

namespace xk::opt {

PlanDag BuildPlanDag(const std::vector<CtssnPlan>& plans,
                     const std::vector<bool>& active,
                     const PlanDagOptions& options) {
  XK_CHECK_EQ(plans.size(), active.size());
  PlanDag dag;
  dag.shared_subplan.assign(plans.size(), -1);

  // Schedule: network size is the ranking key (smaller answers rank higher),
  // output-cardinality estimate breaks ties cheapest-first, plan index makes
  // it deterministic. Legacy order = stable sort on size alone.
  dag.schedule.resize(plans.size());
  std::iota(dag.schedule.begin(), dag.schedule.end(), 0);
  auto size_of = [&](size_t p) {
    return plans[p].ctssn != nullptr ? plans[p].ctssn->cn_size : 0;
  };
  if (options.cost_ordered) {
    std::sort(dag.schedule.begin(), dag.schedule.end(), [&](size_t a, size_t b) {
      if (size_of(a) != size_of(b)) return size_of(a) < size_of(b);
      if (plans[a].estimated_rows != plans[b].estimated_rows) {
        return plans[a].estimated_rows < plans[b].estimated_rows;
      }
      return a < b;
    });
  } else {
    std::stable_sort(dag.schedule.begin(), dag.schedule.end(),
                     [&](size_t a, size_t b) { return size_of(a) < size_of(b); });
  }

  if (!options.share_subplans) return dag;

  // Count how many active plans carry each prefix signature. A signature
  // encodes the whole prefix (tables, local filters, join edges per step), so
  // equal strings mean interchangeable subplans.
  std::unordered_map<std::string_view, int> carriers;
  for (size_t p = 0; p < plans.size(); ++p) {
    if (!active[p]) continue;
    for (const std::string& sig : plans[p].prefix_signatures) ++carriers[sig];
  }

  // Assign each plan its deepest shared prefix; keep the prefix strictly
  // inside the plan when possible (a whole-plan "prefix" is still legal when
  // another network maps to the identical join, and replay then just emits).
  std::unordered_map<std::string_view, int> node_of;
  for (size_t p = 0; p < plans.size(); ++p) {
    if (!active[p]) continue;
    const std::vector<std::string>& sigs = plans[p].prefix_signatures;
    for (int d = static_cast<int>(sigs.size()) - 1; d >= 0; --d) {
      auto it = carriers.find(sigs[static_cast<size_t>(d)]);
      if (it == carriers.end() || it->second < options.min_consumers) continue;
      auto [node_it, inserted] =
          node_of.try_emplace(sigs[static_cast<size_t>(d)],
                              static_cast<int>(dag.subplans.size()));
      if (inserted) {
        dag.subplans.push_back(
            SharedSubplan{sigs[static_cast<size_t>(d)], d, 0});
      }
      dag.shared_subplan[p] = node_it->second;
      ++dag.subplans[static_cast<size_t>(node_it->second)].consumers;
      break;
    }
  }
  return dag;
}

}  // namespace xk::opt
