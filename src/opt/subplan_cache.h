// Copyright (c) the XKeyword authors.
//
// Query-scoped, thread-safe cache of materialized shared subplans — the
// plan-DAG generalization of Section 4's common-subexpression reuse: a join
// prefix appearing in several candidate networks executes exactly once, and
// every consuming plan replays its materialized rows. Leader/follower
// protocol: the first plan to request a signature becomes the leader and
// produces the materialization while concurrent requesters block on the
// leader's future, so two plans racing on the same subplan do one execution.
// A per-query byte budget bounds the materializations; entries all of whose
// expected consumers have released them are evicted first under pressure.

#ifndef XK_OPT_SUBPLAN_CACHE_H_
#define XK_OPT_SUBPLAN_CACHE_H_

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <unordered_map>

#include "exec/subplan_source.h"

namespace xk::opt {

/// Counters of one query's subplan cache (folded into ExecutionStats by the
/// executors, and from there into service::Metrics).
struct SubplanCacheStats {
  uint64_t hits = 0;    // consumers served from a completed materialization
  uint64_t misses = 0;  // leader executions (one per materialized subplan)
  uint64_t failed = 0;  // productions abandoned (cancel / over budget)
  uint64_t evictions = 0;
  uint64_t dedup_saved_rows = 0;  // prefix rows consumers did not recompute
  size_t bytes_peak = 0;          // high-water mark of cached bytes
};

class SubplanCache {
 public:
  using SubplanPtr = std::shared_ptr<const exec::MaterializedSubplan>;
  /// Produces the materialization, or nullptr when production had to stop
  /// early (cancellation, byte budget) — a null result is recorded so every
  /// consumer falls back to direct execution.
  using Producer = std::function<SubplanPtr()>;

  explicit SubplanCache(size_t budget_bytes) : budget_bytes_(budget_bytes) {}
  SubplanCache(const SubplanCache&) = delete;
  SubplanCache& operator=(const SubplanCache&) = delete;

  /// The materialization under `signature`; the first caller produces it (and
  /// is charged a miss), everyone else waits and is charged a hit. Returns
  /// nullptr when the production failed. `expected_consumers` is the number
  /// of plans scheduled to consume the entry (eviction accounting).
  SubplanPtr GetOrCompute(const std::string& signature, int expected_consumers,
                          const Producer& produce);

  /// A completed materialization under `signature`, or nullptr — never waits
  /// and never starts a production. Used by producers to stack a deeper
  /// prefix on top of an already-materialized shallower one (a hit).
  SubplanPtr Peek(const std::string& signature);

  /// One expected consumer of `signature` is done; fully released entries
  /// become evictable under budget pressure.
  void Release(const std::string& signature);

  size_t budget_bytes() const { return budget_bytes_; }
  SubplanCacheStats stats() const;

 private:
  struct Entry {
    std::shared_future<SubplanPtr> future;
    bool ready = false;
    SubplanPtr value;  // set when ready (null for failed productions)
    int remaining = 0;
    uint64_t seq = 0;
    size_t bytes = 0;
  };

  /// Evicts fully-released entries (oldest first) while over budget. Caller
  /// holds mutex_.
  void EvictLocked();

  const size_t budget_bytes_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  uint64_t next_seq_ = 0;
  size_t bytes_current_ = 0;
  SubplanCacheStats stats_;
};

}  // namespace xk::opt

#endif  // XK_OPT_SUBPLAN_CACHE_H_
