// Copyright (c) the XKeyword authors.
//
// Tiling a CTSSN with connection relations: the optimizer's first decision —
// "(a) to decide which connection relations to use to efficiently evaluate
// each CN" (Section 4), shown NP-complete in the paper. Networks are small
// (<= ~8 edges), so an exact DP over edge bitmasks minimizes lexicographically
// (number of joins, total relation rows).

#ifndef XK_OPT_TILER_H_
#define XK_OPT_TILER_H_

#include <optional>

#include "decomp/coverage.h"
#include "decomp/decomposition.h"
#include "storage/catalog.h"

namespace xk::opt {

/// A tiling with resolved tables.
struct ResolvedTiling {
  std::vector<decomp::Embedding> pieces;
  std::vector<const storage::Table*> tables;  // parallel to pieces

  int joins() const {
    return pieces.empty() ? 0 : static_cast<int>(pieces.size()) - 1;
  }
};

/// Minimum-(joins, rows) tiling of `target` by the relations of `d` in
/// `catalog`. nullopt when the decomposition cannot cover the network
/// (violates Lemma 5.1 — only possible for hand-built partial decompositions).
std::optional<ResolvedTiling> BestTiling(const schema::TssTree& target,
                                         const schema::TssGraph& tss,
                                         const decomp::Decomposition& d,
                                         const storage::Catalog& catalog);

}  // namespace xk::opt

#endif  // XK_OPT_TILER_H_
