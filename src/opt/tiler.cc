#include "opt/tiler.h"

#include <algorithm>

#include "common/logging.h"
#include "decomp/relation_builder.h"

namespace xk::opt {

using decomp::Embedding;

std::optional<ResolvedTiling> BestTiling(const schema::TssTree& target,
                                         const schema::TssGraph& tss,
                                         const decomp::Decomposition& d,
                                         const storage::Catalog& catalog) {
  if (target.size() == 0) return ResolvedTiling{};
  XK_CHECK_LE(target.size(), 30);

  std::vector<Embedding> embeddings;
  std::vector<const storage::Table*> emb_tables;
  for (size_t f = 0; f < d.fragments.size(); ++f) {
    auto table = catalog.GetTable(decomp::RelationName(d, d.fragments[f]));
    if (!table.ok()) continue;  // relation not materialized
    std::vector<Embedding> found = decomp::FindEmbeddings(
        d.fragments[f].tree, target, tss, static_cast<int>(f));
    for (Embedding& e : found) {
      embeddings.push_back(std::move(e));
      emb_tables.push_back(*table);
    }
  }
  if (embeddings.empty()) return std::nullopt;

  const uint32_t full = (1u << target.size()) - 1;
  struct State {
    int count;
    double rows;
    int emb;        // embedding taken to reach this mask
    uint32_t prev;  // previous mask
  };
  constexpr int kInf = 1 << 29;
  std::vector<State> dp(full + 1, State{kInf, 0.0, -1, 0});
  dp[0] = State{0, 0.0, -1, 0};
  for (uint32_t mask = 0; mask <= full; ++mask) {
    if (dp[mask].count == kInf) continue;
    if (mask == full) break;
    for (size_t i = 0; i < embeddings.size(); ++i) {
      uint32_t next = mask | embeddings[i].edge_mask;
      if (next == mask) continue;
      int count = dp[mask].count + 1;
      double rows = dp[mask].rows + static_cast<double>(emb_tables[i]->NumRows());
      if (count < dp[next].count ||
          (count == dp[next].count && rows < dp[next].rows)) {
        dp[next] = State{count, rows, static_cast<int>(i), mask};
      }
    }
  }
  if (dp[full].count == kInf) return std::nullopt;

  ResolvedTiling out;
  uint32_t cur = full;
  while (cur != 0) {
    const State& s = dp[cur];
    out.pieces.push_back(embeddings[static_cast<size_t>(s.emb)]);
    out.tables.push_back(emb_tables[static_cast<size_t>(s.emb)]);
    cur = s.prev;
  }
  std::reverse(out.pieces.begin(), out.pieces.end());
  std::reverse(out.tables.begin(), out.tables.end());
  return out;
}

}  // namespace xk::opt
