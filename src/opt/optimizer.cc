#include "opt/optimizer.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"
#include "opt/cost_model.h"

namespace xk::opt {

Optimizer::Optimizer(const schema::TssGraph* tss,
                     const decomp::Decomposition* decomposition,
                     const storage::Catalog* catalog,
                     const schema::TargetObjectGraph* objects)
    : tss_(tss), decomposition_(decomposition), catalog_(catalog), objects_(objects) {
  XK_CHECK(tss != nullptr && decomposition != nullptr && catalog != nullptr &&
           objects != nullptr);
}

namespace {

/// Selectivities of a CTSSN node's filters against its segment cardinality.
std::vector<double> NodeSelectivities(const cn::Ctssn& ctssn, const NodeFilters& filters,
                                      const schema::TargetObjectGraph& objects,
                                      int node) {
  std::vector<double> out;
  int64_t domain = objects.CountOfSegment(
      ctssn.tree.nodes[static_cast<size_t>(node)]);
  for (const storage::IdSet* set : filters[static_cast<size_t>(node)]) {
    out.push_back(FilterSelectivity(set->size(), domain));
  }
  return out;
}

/// Estimated cardinality of scanning a tiling piece with only its own
/// keyword filters applied.
double PieceStartCost(const decomp::Embedding& piece, const storage::Table& table,
                      const cn::Ctssn& ctssn, const NodeFilters& filters,
                      const schema::TargetObjectGraph& objects) {
  std::vector<double> sel;
  for (int target_node : piece.node_map) {
    std::vector<double> s = NodeSelectivities(ctssn, filters, objects, target_node);
    sel.insert(sel.end(), s.begin(), s.end());
  }
  return EstimateProbeOutput(table, {}, sel);
}

bool PieceHasKeyword(const decomp::Embedding& piece, const NodeFilters& filters) {
  for (int target_node : piece.node_map) {
    if (!filters[static_cast<size_t>(target_node)].empty()) return true;
  }
  return false;
}

std::string StepSignature(const storage::Table& table,
                          const decomp::Embedding& piece,
                          const NodeFilters& filters) {
  std::string sig = table.name();
  for (size_t col = 0; col < piece.node_map.size(); ++col) {
    int target_node = piece.node_map[col];
    for (const storage::IdSet* set : filters[static_cast<size_t>(target_node)]) {
      sig += StrFormat("|c%zu@%p", col, static_cast<const void*>(set));
    }
  }
  return sig;
}

}  // namespace

Result<CtssnPlan> Optimizer::Plan(const cn::Ctssn& ctssn,
                                  const NodeFilters& filters) const {
  if (filters.size() != static_cast<size_t>(ctssn.num_nodes())) {
    return Status::InvalidArgument("filters/nodes arity mismatch");
  }
  CtssnPlan plan;
  plan.ctssn = &ctssn;
  plan.node_source.assign(static_cast<size_t>(ctssn.num_nodes()),
                          exec::ColumnRef{-1, -1});

  if (ctssn.tree.size() == 0) {
    // Single-object network: answered from the master index alone.
    plan.joins = 0;
    plan.estimated_cost = 1.0;
    return plan;
  }

  std::optional<ResolvedTiling> tiling =
      BestTiling(ctssn.tree, *tss_, *decomposition_, *catalog_);
  if (!tiling.has_value()) {
    return Status::NotFound(
        StrFormat("decomposition %s cannot cover network %s",
                  decomposition_->name.c_str(), ctssn.ToString(*tss_).c_str()));
  }

  // Order pieces: outermost = cheapest keyword piece (fall back to cheapest);
  // then greedily any piece sharing an occurrence, cheapest start first.
  const size_t n = tiling->pieces.size();
  std::vector<double> start_cost(n);
  for (size_t i = 0; i < n; ++i) {
    start_cost[i] = PieceStartCost(tiling->pieces[i], *tiling->tables[i], ctssn,
                                   filters, *objects_);
  }
  std::vector<size_t> order;
  std::vector<bool> placed(n, false);
  std::vector<bool> node_bound(static_cast<size_t>(ctssn.num_nodes()), false);

  auto pick_first = [&]() {
    size_t best = n;
    for (size_t i = 0; i < n; ++i) {
      bool kw = PieceHasKeyword(tiling->pieces[i], filters);
      if (best == n) {
        best = i;
        continue;
      }
      bool best_kw = PieceHasKeyword(tiling->pieces[best], filters);
      if (kw != best_kw) {
        if (kw) best = i;
        continue;
      }
      if (start_cost[i] < start_cost[best]) best = i;
    }
    return best;
  };

  size_t first = pick_first();
  order.push_back(first);
  placed[first] = true;
  for (int t : tiling->pieces[first].node_map) node_bound[static_cast<size_t>(t)] = true;

  while (order.size() < n) {
    size_t best = n;
    for (size_t i = 0; i < n; ++i) {
      if (placed[i]) continue;
      bool shares = false;
      for (int t : tiling->pieces[i].node_map) {
        if (node_bound[static_cast<size_t>(t)]) {
          shares = true;
          break;
        }
      }
      if (!shares) continue;
      if (best == n || start_cost[i] < start_cost[best]) best = i;
    }
    if (best == n) {
      return Status::Internal("tiling pieces do not connect (tree tiling broken)");
    }
    order.push_back(best);
    placed[best] = true;
    for (int t : tiling->pieces[best].node_map) {
      node_bound[static_cast<size_t>(t)] = true;
    }
  }

  // Emit steps.
  plan.estimated_cost = 0.0;
  double running = 1.0;
  for (size_t pos = 0; pos < order.size(); ++pos) {
    const decomp::Embedding& piece = tiling->pieces[order[pos]];
    const storage::Table* table = tiling->tables[order[pos]];
    exec::JoinStep step;
    step.table = table;
    std::vector<int> bound_cols;
    for (size_t col = 0; col < piece.node_map.size(); ++col) {
      int target_node = piece.node_map[col];
      exec::ColumnRef& src = plan.node_source[static_cast<size_t>(target_node)];
      if (src.step != -1) {
        step.eq.push_back({static_cast<int>(col), src});
        bound_cols.push_back(static_cast<int>(col));
      } else {
        src = exec::ColumnRef{static_cast<int>(pos), static_cast<int>(col)};
        for (const storage::IdSet* set : filters[static_cast<size_t>(target_node)]) {
          step.in_filters.push_back(
              exec::ColumnInSet{static_cast<int>(col), set});
        }
      }
    }
    // Cost: probe output per outer row.
    std::vector<double> sel;
    for (const exec::ColumnInSet& f : step.in_filters) {
      int target_node = piece.node_map[static_cast<size_t>(f.column)];
      int64_t domain = objects_->CountOfSegment(
          ctssn.tree.nodes[static_cast<size_t>(target_node)]);
      sel.push_back(FilterSelectivity(f.set->size(), domain));
    }
    double out_rows = EstimateProbeOutput(*table, bound_cols, sel);
    plan.estimated_cost += running * std::max(out_rows, 1e-6);
    running *= std::max(out_rows, 1e-6);

    plan.step_signatures.push_back(StepSignature(*table, piece, filters));
    // Prefix signature: the previous prefix plus this step's scan signature
    // and equi-join edges. Edges reference (step, column) positions inside the
    // prefix, so equal strings across plans mean interchangeable join
    // prefixes — same relations, filters, and join shape in the same order.
    std::string prefix =
        plan.prefix_signatures.empty() ? std::string() : plan.prefix_signatures.back();
    prefix += "[" + plan.step_signatures.back();
    for (const auto& [col, ref] : step.eq) {
      prefix += StrFormat("|e%d=%d.%d", col, ref.step, ref.column);
    }
    prefix += "]";
    plan.prefix_signatures.push_back(std::move(prefix));
    plan.query.steps.push_back(std::move(step));
  }
  plan.estimated_rows = running;
  plan.joins = static_cast<int>(plan.query.steps.size()) - 1;
  XK_RETURN_NOT_OK(plan.query.Validate());
  return plan;
}

}  // namespace xk::opt
