// Copyright (c) the XKeyword authors.
//
// Turns the per-query forest of candidate-network plans into a shared-subplan
// DAG plus an execution schedule. Sharing: canonical prefix signatures
// (optimizer-emitted, covering relation + local filters + join edges of every
// step of the prefix) identify common join prefixes across CNs; each plan is
// assigned its deepest prefix that at least `min_consumers` plans share, and
// that node is materialized once (opt::SubplanCache) and replayed by every
// consumer. Scheduling: plans run in nondecreasing network size (the ranking
// contract — smaller networks answer first), cost-ordered inside a size class
// by the cost model's output-cardinality estimate, cheapest first. The
// cheapest consumer of a shared group therefore runs first and becomes the
// group's producer (the hoisted shared producer), and the top-k executor
// reaches its global stopping bound earlier. The schedule depends only on
// plan metadata — never on reuse/vectorization/threading knobs — so results
// stay byte-identical across those axes.

#ifndef XK_OPT_PLAN_DAG_H_
#define XK_OPT_PLAN_DAG_H_

#include <string>
#include <vector>

#include "opt/optimizer.h"

namespace xk::opt {

struct PlanDagOptions {
  /// Order plans inside a network-size class by estimated output cardinality
  /// (cheapest first). Off = the legacy order (size class, then plan index).
  bool cost_ordered = true;
  /// Detect shared join prefixes; off = every plan runs standalone.
  bool share_subplans = true;
  /// A prefix becomes a DAG node when at least this many active plans carry
  /// its signature.
  int min_consumers = 2;
};

/// One shared node of the plan DAG: the join prefix steps [0, depth] of every
/// consuming plan.
struct SharedSubplan {
  std::string signature;
  int depth = 0;
  /// Active plans whose assigned prefix this node is (its direct consumers).
  int consumers = 0;
};

struct PlanDag {
  /// Every plan index, in execution order (inactive plans keep their sorted
  /// slot; executors still skip them).
  std::vector<size_t> schedule;
  /// Per plan: index into `subplans` of its assigned shared prefix, or -1.
  std::vector<int> shared_subplan;
  std::vector<SharedSubplan> subplans;
};

/// Builds the DAG over `plans`. `active[p]` excludes plans the executor will
/// skip (size caps) from sharing analysis, so consumer counts are real.
PlanDag BuildPlanDag(const std::vector<CtssnPlan>& plans,
                     const std::vector<bool>& active,
                     const PlanDagOptions& options);

}  // namespace xk::opt

#endif  // XK_OPT_PLAN_DAG_H_
