#include "opt/subplan_cache.h"

#include <algorithm>
#include <mutex>
#include <utility>

namespace xk::opt {

SubplanCache::SubplanPtr SubplanCache::GetOrCompute(const std::string& signature,
                                                    int expected_consumers,
                                                    const Producer& produce) {
  std::promise<SubplanPtr> promise;  // used only on the leader path
  std::shared_future<SubplanPtr> future;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(signature);
    if (it != entries_.end()) {
      Entry& e = it->second;
      if (e.ready) {
        if (e.value != nullptr) {
          ++stats_.hits;
          stats_.dedup_saved_rows += e.value->num_rows();
        }
        return e.value;
      }
      future = e.future;  // follower: wait outside the lock
    } else {
      Entry e;
      e.remaining = expected_consumers;
      e.seq = next_seq_++;
      future = promise.get_future().share();
      e.future = future;
      entries_.emplace(signature, std::move(e));
      ++stats_.misses;
      leader = true;
    }
  }

  if (!leader) {
    SubplanPtr value = future.get();
    if (value != nullptr) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.hits;
      stats_.dedup_saved_rows += value->num_rows();
    }
    return value;
  }

  SubplanPtr value = produce();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // The entry cannot have been evicted: only ready, fully-released entries
    // are eviction candidates, and this one is not ready yet.
    Entry& e = entries_.at(signature);
    e.ready = true;
    e.value = value;
    e.bytes = value != nullptr ? value->bytes() : 0;
    bytes_current_ += e.bytes;
    stats_.bytes_peak = std::max(stats_.bytes_peak, bytes_current_);
    if (value == nullptr) ++stats_.failed;
    EvictLocked();
  }
  promise.set_value(value);
  return value;
}

SubplanCache::SubplanPtr SubplanCache::Peek(const std::string& signature) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(signature);
  if (it == entries_.end() || !it->second.ready || it->second.value == nullptr) {
    return nullptr;
  }
  ++stats_.hits;
  stats_.dedup_saved_rows += it->second.value->num_rows();
  return it->second.value;
}

void SubplanCache::Release(const std::string& signature) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(signature);
  if (it == entries_.end()) return;
  if (it->second.remaining > 0) --it->second.remaining;
  if (bytes_current_ > budget_bytes_) EvictLocked();
}

SubplanCacheStats SubplanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void SubplanCache::EvictLocked() {
  while (bytes_current_ > budget_bytes_) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      const Entry& e = it->second;
      if (!e.ready || e.remaining > 0 || e.bytes == 0) continue;
      if (victim == entries_.end() || e.seq < victim->second.seq) victim = it;
    }
    if (victim == entries_.end()) break;  // everything still in use
    bytes_current_ -= victim->second.bytes;
    ++stats_.evictions;
    entries_.erase(victim);
  }
}

}  // namespace xk::opt
