// Copyright (c) the XKeyword authors.
//
// A from-scratch XML parser producing XmlGraphs. Supported subset (all the
// datasets of the paper need): elements, attributes, text content, comments,
// processing instructions, CDATA, the five predefined entities, and multiple
// top-level elements (multi-root graphs, Section 3).
//
// Mapping to the graph model:
//  * element            -> node labeled with the tag
//  * pure text content  -> the node's string value (whitespace-trimmed)
//  * attribute id / xml:id             -> registers the node for references
//  * attribute idref / idrefs / xlink  -> reference edge(s), resolved after
//                                         the whole input is read
//  * any other attribute -> a child node labeled with the attribute name and
//                           valued with the attribute text (the paper's
//                           TPC-H data shows attributes as leaf children)

#ifndef XK_XML_XML_PARSER_H_
#define XK_XML_XML_PARSER_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "xml/xml_graph.h"

namespace xk::xml {

/// Parser configuration.
struct ParserOptions {
  /// Attribute names (lower-cased) treated as the node's XML ID.
  std::vector<std::string> id_attributes = {"id", "xml:id"};
  /// Attribute names (lower-cased) holding whitespace-separated reference
  /// targets.
  std::vector<std::string> idref_attributes = {"idref", "idrefs", "xlink:href"};
  /// When true, unresolved references are errors; otherwise they are dropped.
  bool strict_references = true;
};

/// Result of a parse: the graph plus the id-attribute registry.
struct ParsedDocument {
  XmlGraph graph;
  /// XML ID attribute value -> node.
  std::unordered_map<std::string, NodeId> ids;
  /// Top-level element nodes in document order.
  std::vector<NodeId> roots;
};

/// Parses one document (or a forest of top-level elements).
/// Errors carry 1-based line/column positions in the message.
Result<ParsedDocument> ParseXml(std::string_view input,
                                const ParserOptions& options = {});

}  // namespace xk::xml

#endif  // XK_XML_XML_PARSER_H_
