#include "xml/xml_graph.h"

#include "common/logging.h"
#include "common/strings.h"

namespace xk::xml {

namespace {
const std::string kEmptyValue;
}  // namespace

NodeId XmlGraph::AddNode(std::string label, std::optional<std::string> value) {
  nodes_.push_back(Node{std::move(label), std::move(value), kNoNode, {}, {}, {}});
  return static_cast<NodeId>(nodes_.size()) - 1;
}

void XmlGraph::SetValue(NodeId n, std::string value) {
  nodes_[Check(n)].value = std::move(value);
}

size_t XmlGraph::Check(NodeId n) const {
  XK_CHECK(ValidNode(n));
  return static_cast<size_t>(n);
}

Status XmlGraph::AddContainmentEdge(NodeId parent, NodeId child) {
  if (!ValidNode(parent) || !ValidNode(child)) {
    return Status::OutOfRange("containment edge endpoint out of range");
  }
  if (parent == child) {
    return Status::InvalidArgument("self containment edge");
  }
  Node& c = nodes_[static_cast<size_t>(child)];
  if (c.parent != kNoNode) {
    return Status::InvalidArgument(StrFormat(
        "node %lld already has a containment parent", static_cast<long long>(child)));
  }
  c.parent = parent;
  nodes_[static_cast<size_t>(parent)].children.push_back(child);
  ++num_containment_edges_;
  return Status::OK();
}

Status XmlGraph::AddReferenceEdge(NodeId src, NodeId dst) {
  if (!ValidNode(src) || !ValidNode(dst)) {
    return Status::OutOfRange("reference edge endpoint out of range");
  }
  nodes_[static_cast<size_t>(src)].refs_out.push_back(dst);
  nodes_[static_cast<size_t>(dst)].refs_in.push_back(src);
  ++num_reference_edges_;
  return Status::OK();
}

const std::string& XmlGraph::value(NodeId n) const {
  const Node& node = nodes_[Check(n)];
  return node.value.has_value() ? *node.value : kEmptyValue;
}

std::vector<NodeId> XmlGraph::Roots() const {
  std::vector<NodeId> roots;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].parent == kNoNode) roots.push_back(static_cast<NodeId>(i));
  }
  return roots;
}

std::vector<NodeId> XmlGraph::UndirectedNeighbors(NodeId n) const {
  const Node& node = nodes_[Check(n)];
  std::vector<NodeId> out;
  out.reserve(node.children.size() + node.refs_out.size() + node.refs_in.size() + 1);
  if (node.parent != kNoNode) out.push_back(node.parent);
  out.insert(out.end(), node.children.begin(), node.children.end());
  out.insert(out.end(), node.refs_out.begin(), node.refs_out.end());
  out.insert(out.end(), node.refs_in.begin(), node.refs_in.end());
  return out;
}

}  // namespace xk::xml
