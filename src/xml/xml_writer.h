// Copyright (c) the XKeyword authors.
//
// Serialization of XML graph (sub)trees back to text. The load stage uses
// this to fill the target-object BLOB store; examples use it for display.

#ifndef XK_XML_XML_WRITER_H_
#define XK_XML_XML_WRITER_H_

#include <string>
#include <unordered_set>

#include "xml/xml_graph.h"

namespace xk::xml {

/// Escapes &, <, >, " and ' for safe embedding in XML text/attributes.
std::string EscapeXml(std::string_view text);

/// Serializes the containment subtree rooted at `root`.
/// If `restrict_to` is non-null, only nodes in the set are emitted (used to
/// serialize a target object, which is a subset of a subtree).
/// Reference edges are emitted as idref="nX" pseudo-attributes; with
/// `with_ids`, every node also gets an id="nX" attribute so the output
/// round-trips through ParseXml with references intact.
std::string WriteSubtree(const XmlGraph& graph, NodeId root,
                         const std::unordered_set<NodeId>* restrict_to = nullptr,
                         bool pretty = false, bool with_ids = false);

/// Serializes the whole (multi-root) graph.
std::string WriteGraph(const XmlGraph& graph, bool pretty = false,
                       bool with_ids = false);

}  // namespace xk::xml

#endif  // XK_XML_XML_WRITER_H_
