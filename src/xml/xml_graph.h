// Copyright (c) the XKeyword authors.
//
// The XML graph of Definition 3.1: a labeled directed graph where every node
// has a unique id, a label (element tag), and optionally a string value.
// Edges are containment (element - subelement) or reference (IDREF-to-ID /
// XLink). The graph may have multiple roots — the paper deliberately drops
// artificial document roots and supports cross-document links.

#ifndef XK_XML_XML_GRAPH_H_
#define XK_XML_XML_GRAPH_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace xk::xml {

/// Dense node identifier (0-based insertion order).
using NodeId = int64_t;

inline constexpr NodeId kNoNode = -1;

/// Labeled directed graph over XML elements.
class XmlGraph {
 public:
  XmlGraph() = default;

  /// Adds a node; `value` empty-optional for pure structural elements.
  NodeId AddNode(std::string label, std::optional<std::string> value = std::nullopt);

  /// Sets or replaces the string value of `n` (parsers discover element text
  /// after creating the node).
  void SetValue(NodeId n, std::string value);

  /// Adds a containment edge parent -> child. A node has at most one
  /// containment parent (XML is a tree under containment).
  Status AddContainmentEdge(NodeId parent, NodeId child);

  /// Adds a reference (IDREF-to-ID / XLink) edge src -> dst.
  Status AddReferenceEdge(NodeId src, NodeId dst);

  int64_t NumNodes() const { return static_cast<int64_t>(nodes_.size()); }
  int64_t NumContainmentEdges() const { return num_containment_edges_; }
  int64_t NumReferenceEdges() const { return num_reference_edges_; }

  const std::string& label(NodeId n) const { return nodes_[Check(n)].label; }
  bool has_value(NodeId n) const { return nodes_[Check(n)].value.has_value(); }
  /// The string value; empty string when the node has none.
  const std::string& value(NodeId n) const;

  /// Containment parent, or kNoNode for roots.
  NodeId parent(NodeId n) const { return nodes_[Check(n)].parent; }
  const std::vector<NodeId>& children(NodeId n) const {
    return nodes_[Check(n)].children;
  }
  const std::vector<NodeId>& references_out(NodeId n) const {
    return nodes_[Check(n)].refs_out;
  }
  const std::vector<NodeId>& references_in(NodeId n) const {
    return nodes_[Check(n)].refs_in;
  }

  /// Nodes with no containment parent, in insertion order.
  std::vector<NodeId> Roots() const;

  /// All neighbors of `n` regardless of edge kind or direction — results are
  /// trees on the *undirected* view ("we allow edges to be followed in either
  /// direction", Section 1).
  std::vector<NodeId> UndirectedNeighbors(NodeId n) const;

  bool ValidNode(NodeId n) const {
    return n >= 0 && n < static_cast<NodeId>(nodes_.size());
  }

 private:
  struct Node {
    std::string label;
    std::optional<std::string> value;
    NodeId parent = kNoNode;
    std::vector<NodeId> children;
    std::vector<NodeId> refs_out;
    std::vector<NodeId> refs_in;
  };

  size_t Check(NodeId n) const;

  std::vector<Node> nodes_;
  int64_t num_containment_edges_ = 0;
  int64_t num_reference_edges_ = 0;
};

}  // namespace xk::xml

#endif  // XK_XML_XML_GRAPH_H_
