#include "xml/xml_parser.h"

#include <algorithm>
#include <cctype>

#include "common/strings.h"

namespace xk::xml {

namespace {

/// Hand-rolled recursive-descent parser over a string_view cursor.
class Parser {
 public:
  Parser(std::string_view input, const ParserOptions& options)
      : input_(input), options_(options) {}

  Result<ParsedDocument> Parse() {
    SkipProlog();
    while (!AtEnd()) {
      SkipMisc();
      if (AtEnd()) break;
      if (Peek() != '<') {
        return Error("unexpected text outside of any element");
      }
      XK_ASSIGN_OR_RETURN(NodeId root, ParseElement());
      doc_.roots.push_back(root);
      SkipMisc();
    }
    if (doc_.roots.empty()) return Error("no elements in input");
    XK_RETURN_NOT_OK(ResolveReferences());
    return std::move(doc_);
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char PeekAt(size_t off) const {
    return pos_ + off < input_.size() ? input_[pos_ + off] : '\0';
  }

  void Advance() {
    if (input_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  void AdvanceBy(size_t n) {
    for (size_t i = 0; i < n && !AtEnd(); ++i) Advance();
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (input_.substr(pos_).starts_with(lit)) {
      AdvanceBy(lit.size());
      return true;
    }
    return false;
  }

  Status Error(const std::string& msg) const {
    return Status::Corruption(
        StrFormat("%s at line %zu column %zu", msg.c_str(), line_, col_));
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) Advance();
  }

  /// Skips <?...?> declarations, <!DOCTYPE ...>, comments, and whitespace.
  void SkipMisc() {
    while (true) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '<') return;
      if (PeekAt(1) == '?') {
        while (!AtEnd() && !ConsumeLiteral("?>")) Advance();
      } else if (input_.substr(pos_).starts_with("<!--")) {
        AdvanceBy(4);
        while (!AtEnd() && !ConsumeLiteral("-->")) Advance();
      } else if (input_.substr(pos_).starts_with("<!DOCTYPE")) {
        // Skip to the matching '>' (internal subsets with [] supported).
        int depth = 0;
        while (!AtEnd()) {
          char c = Peek();
          Advance();
          if (c == '[') ++depth;
          if (c == ']') --depth;
          if (c == '>' && depth <= 0) break;
        }
      } else {
        return;
      }
    }
  }

  void SkipProlog() { SkipMisc(); }

  static bool IsNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  }
  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
           c == '-' || c == '.';
  }

  Result<std::string> ParseName() {
    if (AtEnd() || !IsNameStart(Peek())) return Error("expected name");
    std::string name;
    while (!AtEnd() && IsNameChar(Peek())) {
      name.push_back(Peek());
      Advance();
    }
    return name;
  }

  /// Decodes the five predefined entities plus numeric character references.
  Result<std::string> DecodeEntities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out.push_back(raw[i]);
        continue;
      }
      size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) {
        return Error("unterminated entity reference");
      }
      std::string_view ent = raw.substr(i + 1, semi - i - 1);
      if (ent == "amp") out.push_back('&');
      else if (ent == "lt") out.push_back('<');
      else if (ent == "gt") out.push_back('>');
      else if (ent == "quot") out.push_back('"');
      else if (ent == "apos") out.push_back('\'');
      else if (!ent.empty() && ent[0] == '#') {
        int base = 10;
        std::string_view digits = ent.substr(1);
        if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
          base = 16;
          digits = digits.substr(1);
        }
        unsigned long code = 0;
        for (char c : digits) {
          int d;
          if (c >= '0' && c <= '9') d = c - '0';
          else if (base == 16 && c >= 'a' && c <= 'f') d = c - 'a' + 10;
          else if (base == 16 && c >= 'A' && c <= 'F') d = c - 'A' + 10;
          else return Error("bad character reference");
          code = code * static_cast<unsigned long>(base) + static_cast<unsigned long>(d);
        }
        if (code == 0 || code > 0x10FFFF) return Error("character reference out of range");
        // Encode as UTF-8.
        if (code < 0x80) {
          out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          out.push_back(static_cast<char>(0xC0 | (code >> 6)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else if (code < 0x10000) {
          out.push_back(static_cast<char>(0xE0 | (code >> 12)));
          out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
          out.push_back(static_cast<char>(0xF0 | (code >> 18)));
          out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
      } else {
        return Error(StrFormat("unknown entity &%.*s;", static_cast<int>(ent.size()),
                               ent.data()));
      }
      i = semi;
    }
    return out;
  }

  Result<std::string> ParseAttributeValue() {
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Error("expected quoted attribute value");
    }
    char quote = Peek();
    Advance();
    size_t start = pos_;
    while (!AtEnd() && Peek() != quote) Advance();
    if (AtEnd()) return Error("unterminated attribute value");
    std::string_view raw = input_.substr(start, pos_ - start);
    Advance();  // closing quote
    return DecodeEntities(raw);
  }

  bool IsIdAttribute(const std::string& name) const {
    std::string lower = ToLower(name);
    return std::find(options_.id_attributes.begin(), options_.id_attributes.end(),
                     lower) != options_.id_attributes.end();
  }
  bool IsIdrefAttribute(const std::string& name) const {
    std::string lower = ToLower(name);
    return std::find(options_.idref_attributes.begin(),
                     options_.idref_attributes.end(),
                     lower) != options_.idref_attributes.end();
  }

  Result<NodeId> ParseElement() {
    if (!ConsumeLiteral("<")) return Error("expected '<'");
    XK_ASSIGN_OR_RETURN(std::string tag, ParseName());
    NodeId node = doc_.graph.AddNode(tag);

    // Attributes.
    while (true) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated start tag");
      if (Peek() == '>' || Peek() == '/') break;
      XK_ASSIGN_OR_RETURN(std::string attr, ParseName());
      SkipWhitespace();
      if (!ConsumeLiteral("=")) return Error("expected '=' after attribute name");
      SkipWhitespace();
      XK_ASSIGN_OR_RETURN(std::string value, ParseAttributeValue());
      if (IsIdAttribute(attr)) {
        auto [it, inserted] = doc_.ids.emplace(value, node);
        (void)it;
        if (!inserted) return Error(StrFormat("duplicate ID '%s'", value.c_str()));
      } else if (IsIdrefAttribute(attr)) {
        for (const std::string& target : Tokenize2(value)) {
          pending_refs_.push_back({node, target});
        }
      } else {
        NodeId attr_node = doc_.graph.AddNode(attr, std::move(value));
        XK_RETURN_NOT_OK(doc_.graph.AddContainmentEdge(node, attr_node));
      }
    }

    if (ConsumeLiteral("/>")) return node;
    if (!ConsumeLiteral(">")) return Error("expected '>'");

    // Content: children and text.
    std::string text;
    while (true) {
      if (AtEnd()) return Error(StrFormat("unterminated element <%s>", tag.c_str()));
      if (Peek() == '<') {
        if (PeekAt(1) == '/') {
          AdvanceBy(2);
          XK_ASSIGN_OR_RETURN(std::string close, ParseName());
          SkipWhitespace();
          if (!ConsumeLiteral(">")) return Error("expected '>' in end tag");
          if (close != tag) {
            return Error(StrFormat("mismatched end tag </%s> for <%s>", close.c_str(),
                                   tag.c_str()));
          }
          break;
        }
        if (input_.substr(pos_).starts_with("<!--")) {
          AdvanceBy(4);
          while (!AtEnd() && !ConsumeLiteral("-->")) Advance();
          continue;
        }
        if (input_.substr(pos_).starts_with("<![CDATA[")) {
          AdvanceBy(9);
          size_t start = pos_;
          while (!AtEnd() && !input_.substr(pos_).starts_with("]]>")) Advance();
          if (AtEnd()) return Error("unterminated CDATA");
          text.append(input_.substr(start, pos_ - start));
          AdvanceBy(3);
          continue;
        }
        if (PeekAt(1) == '?') {
          while (!AtEnd() && !ConsumeLiteral("?>")) Advance();
          continue;
        }
        XK_ASSIGN_OR_RETURN(NodeId child, ParseElement());
        XK_RETURN_NOT_OK(doc_.graph.AddContainmentEdge(node, child));
        continue;
      }
      size_t start = pos_;
      while (!AtEnd() && Peek() != '<') Advance();
      XK_ASSIGN_OR_RETURN(std::string decoded,
                          DecodeEntities(input_.substr(start, pos_ - start)));
      text.append(decoded);
    }

    std::string_view trimmed = Trim(text);
    if (!trimmed.empty()) {
      // Mixed content: keep the concatenated, trimmed text as the value.
      doc_.graph.SetValue(node, std::string(trimmed));
    }
    return node;
  }

  Status ResolveReferences() {
    for (const auto& [src, target] : pending_refs_) {
      auto it = doc_.ids.find(target);
      if (it == doc_.ids.end()) {
        if (options_.strict_references) {
          return Status::Corruption(StrFormat("unresolved IDREF '%s'", target.c_str()));
        }
        continue;
      }
      XK_RETURN_NOT_OK(doc_.graph.AddReferenceEdge(src, it->second));
    }
    return Status::OK();
  }

  /// Whitespace tokenizer for IDREFS values (keeps case, unlike Tokenize()).
  static std::vector<std::string> Tokenize2(std::string_view s) {
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
      if (std::isspace(static_cast<unsigned char>(c))) {
        if (!cur.empty()) {
          out.push_back(std::move(cur));
          cur.clear();
        }
      } else {
        cur.push_back(c);
      }
    }
    if (!cur.empty()) out.push_back(std::move(cur));
    return out;
  }

  std::string_view input_;
  const ParserOptions& options_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t col_ = 1;
  ParsedDocument doc_;
  std::vector<std::pair<NodeId, std::string>> pending_refs_;
};

}  // namespace

Result<ParsedDocument> ParseXml(std::string_view input, const ParserOptions& options) {
  Parser parser(input, options);
  return parser.Parse();
}

}  // namespace xk::xml
