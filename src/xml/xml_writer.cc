#include "xml/xml_writer.h"

#include "common/strings.h"

namespace xk::xml {

std::string EscapeXml(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

namespace {

void WriteNode(const XmlGraph& g, NodeId n,
               const std::unordered_set<NodeId>* restrict_to, bool pretty,
               bool with_ids, int depth, std::string* out) {
  if (restrict_to != nullptr && !restrict_to->contains(n)) return;
  auto indent = [&]() {
    if (pretty) out->append(static_cast<size_t>(depth) * 2, ' ');
  };
  indent();
  out->push_back('<');
  out->append(g.label(n));
  if (with_ids) {
    out->append(StrFormat(" id=\"n%lld\"", static_cast<long long>(n)));
  }
  if (!g.references_out(n).empty()) {
    out->append(" idref=\"");
    bool first = true;
    for (NodeId r : g.references_out(n)) {
      if (!first) out->push_back(' ');
      first = false;
      out->append(StrFormat("n%lld", static_cast<long long>(r)));
    }
    out->push_back('"');
  }

  bool has_emitted_child = false;
  for (NodeId c : g.children(n)) {
    if (restrict_to == nullptr || restrict_to->contains(c)) {
      has_emitted_child = true;
      break;
    }
  }
  const bool has_text = g.has_value(n) && !g.value(n).empty();

  if (!has_emitted_child && !has_text) {
    out->append("/>");
    if (pretty) out->push_back('\n');
    return;
  }
  out->push_back('>');
  if (has_text) out->append(EscapeXml(g.value(n)));
  if (has_emitted_child) {
    if (pretty) out->push_back('\n');
    for (NodeId c : g.children(n)) {
      WriteNode(g, c, restrict_to, pretty, with_ids, depth + 1, out);
    }
    indent();
  }
  out->append("</");
  out->append(g.label(n));
  out->push_back('>');
  if (pretty) out->push_back('\n');
}

}  // namespace

std::string WriteSubtree(const XmlGraph& graph, NodeId root,
                         const std::unordered_set<NodeId>* restrict_to,
                         bool pretty, bool with_ids) {
  std::string out;
  WriteNode(graph, root, restrict_to, pretty, with_ids, 0, &out);
  return out;
}

std::string WriteGraph(const XmlGraph& graph, bool pretty, bool with_ids) {
  std::string out;
  for (NodeId root : graph.Roots()) {
    WriteNode(graph, root, nullptr, pretty, with_ids, 0, &out);
    if (!pretty) out.push_back('\n');
  }
  return out;
}

}  // namespace xk::xml
