// Copyright (c) the XKeyword authors.
//
// Small string utilities used across the system: tokenization for the master
// index, joining/splitting for debug output, case folding for keyword match.

#ifndef XK_COMMON_STRINGS_H_
#define XK_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace xk {

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `pieces` with `sep`.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

/// ASCII lower-casing (keyword matching is case-insensitive, like the paper's
/// full-text master index).
std::string ToLower(std::string_view s);

/// Breaks `text` into lower-cased alphanumeric tokens; everything else is a
/// separator. "Set of VCR and DVD" -> {"set", "of", "vcr", "and", "dvd"}.
std::vector<std::string> Tokenize(std::string_view text);

/// True if `text` contains `token` as a whole (case-insensitive) word.
bool ContainsToken(std::string_view text, std::string_view token);

/// Trims ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace xk

#endif  // XK_COMMON_STRINGS_H_
