#include "common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace xk {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

namespace {
bool IsTokenChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (IsTokenChar(c)) {
      current.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

bool ContainsToken(std::string_view text, std::string_view token) {
  if (token.empty()) return false;
  const std::string needle = ToLower(token);
  std::string current;
  auto flush_matches = [&current, &needle]() {
    bool hit = current == needle;
    current.clear();
    return hit;
  };
  for (char c : text) {
    if (IsTokenChar(c)) {
      current.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty() && flush_matches()) {
      return true;
    }
  }
  return !current.empty() && current == needle;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace xk
