// Copyright (c) the XKeyword authors.
//
// Internals shared by simd.cc and the ISA-specific translation units
// (simd_avx2.cc is compiled under -mavx2, so anything it shares with the
// baseline TU lives here, not in simd.cc). The scalar reference kernels are
// inline: every vector variant delegates its ragged tail to them, which is
// what keeps tails bit-identical with the pure-scalar level for free.

#ifndef XK_COMMON_SIMD_INTERNAL_H_
#define XK_COMMON_SIMD_INTERNAL_H_

#include <cstddef>
#include <cstdint>

#include "common/simd.h"

namespace xk::simd::detail {

// --- Scalar reference kernels -------------------------------------------

inline size_t SelCompressEqualScalar(const int64_t* base, uint64_t arity,
                                     uint64_t column, const uint32_t* row_ids,
                                     uint32_t* sel, size_t n, int64_t value) {
  size_t out = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t s = sel[i];
    sel[out] = s;
    out += base[static_cast<uint64_t>(row_ids[s]) * arity + column] == value
               ? 1
               : 0;
  }
  return out;
}

inline size_t SelCompressInSetScalar(const int64_t* base, uint64_t arity,
                                     uint64_t column, const uint32_t* row_ids,
                                     uint32_t* sel, size_t n,
                                     const int64_t* vals, size_t num_vals) {
  size_t out = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t s = sel[i];
    const int64_t v =
        base[static_cast<uint64_t>(row_ids[s]) * arity + column];
    // Unrolled-by-the-compiler ladder: num_vals <= kMaxInlineInSet.
    int hit = 0;
    for (size_t j = 0; j < num_vals; ++j) hit |= v == vals[j] ? 1 : 0;
    sel[out] = s;
    out += static_cast<size_t>(hit);
  }
  return out;
}

/// FNV-1a 64 over the key ids (storage::HashIds) then the SplitMix64
/// finalizer — must stay bit-identical to every vector variant.
inline uint64_t HashTupleFnvScalar(const int64_t* key, size_t width) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t j = 0; j < width; ++j) {
    h ^= static_cast<uint64_t>(key[j]);
    h *= 1099511628211ULL;
  }
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

/// SplitMix64 over one id (storage::BloomFilter's first hash).
inline uint64_t BloomMixScalar(int64_t key) {
  uint64_t h = static_cast<uint64_t>(key) + 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

inline void ProbeSlotsScalar(const uint64_t* slot_tag_head, uint64_t mask,
                             const uint64_t* hashes, size_t n,
                             uint64_t* slot_out) {
  for (size_t i = 0; i < n; ++i) {
    const uint64_t tag = hashes[i] & kSlotTagMask;
    uint64_t s = hashes[i] & mask;
    while (true) {
      const uint64_t v = slot_tag_head[s];
      if (static_cast<uint32_t>(v) == kEmptyHead || (v & kSlotTagMask) == tag)
        break;
      s = (s + 1) & mask;
    }
    slot_out[i] = s;
  }
}

// --- AVX2 variants (defined in simd_avx2.cc, compiled under -mavx2) ------

#if defined(XK_HAVE_AVX2)
size_t SelCompressEqualAvx2(const int64_t* base, uint64_t arity,
                            uint64_t column, const uint32_t* row_ids,
                            uint32_t* sel, size_t n, int64_t value);
size_t SelCompressInSetAvx2(const int64_t* base, uint64_t arity,
                            uint64_t column, const uint32_t* row_ids,
                            uint32_t* sel, size_t n, const int64_t* vals,
                            size_t num_vals);
void HashJoinKeysAvx2(const int64_t* keys, size_t count, size_t key_width,
                      uint64_t* out);
void BloomMixBatchAvx2(const int64_t* keys, size_t count, uint64_t* out);
void ProbeSlotsAvx2(const uint64_t* slot_tag_head, uint64_t mask,
                    const uint64_t* hashes, size_t n, uint64_t* slot_out);
#endif  // XK_HAVE_AVX2

}  // namespace xk::simd::detail

#endif  // XK_COMMON_SIMD_INTERNAL_H_
