// Copyright (c) the XKeyword authors.
//
// Result<T>: a value or a Status, in the Arrow tradition. Use together with
// XK_ASSIGN_OR_RETURN to chain fallible computations without exceptions.

#ifndef XK_COMMON_RESULT_H_
#define XK_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace xk {

/// Holds either a T or a non-OK Status describing why no T was produced.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value.
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a (non-OK) status.
  Result(Status status) : rep_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(rep_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// The failure status; Status::OK() when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(rep_);
  }

  /// Accessors. Must only be called when ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  /// Moves the value out of the result. Must only be called when ok().
  T MoveValueUnsafe() { return std::get<T>(std::move(rep_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this result holds an error.
  T ValueOr(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<Status, T> rep_;
};

}  // namespace xk

#define XK_CONCAT_IMPL(x, y) x##y
#define XK_CONCAT(x, y) XK_CONCAT_IMPL(x, y)

/// Evaluates `rexpr` (a Result<T>); on failure returns its status, otherwise
/// assigns the value to `lhs` (which may include a declaration).
#define XK_ASSIGN_OR_RETURN(lhs, rexpr)                             \
  auto XK_CONCAT(_xk_result_, __LINE__) = (rexpr);                  \
  if (!XK_CONCAT(_xk_result_, __LINE__).ok())                       \
    return XK_CONCAT(_xk_result_, __LINE__).status();               \
  lhs = XK_CONCAT(_xk_result_, __LINE__).MoveValueUnsafe()

#endif  // XK_COMMON_RESULT_H_
