#include "common/simd.h"

#include <cstdlib>
#include <cstring>

#include "common/simd_internal.h"

#if !defined(XK_SIMD_DISABLED)
#if defined(__SSE2__)
#include <emmintrin.h>
#define XK_SIMD_SSE2 1
#elif defined(__aarch64__) && defined(__ARM_NEON)
#include <arm_neon.h>
#define XK_SIMD_NEON 1
#endif
#endif  // !XK_SIMD_DISABLED

namespace xk::simd {

namespace {

bool EnvForcesScalar() {
  const char* v = std::getenv("XK_FORCE_SCALAR_KERNELS");
  if (v == nullptr) return false;
  return std::strcmp(v, "") != 0 && std::strcmp(v, "0") != 0 &&
         std::strcmp(v, "false") != 0 && std::strcmp(v, "off") != 0;
}

IsaLevel Detect() {
  if (EnvForcesScalar()) return IsaLevel::kScalar;
#if defined(XK_SIMD_DISABLED)
  return IsaLevel::kScalar;
#else
#if defined(XK_HAVE_AVX2)
  if (__builtin_cpu_supports("avx2")) return IsaLevel::kAvx2;
#endif
#if defined(XK_SIMD_NEON)
  return IsaLevel::kNeon;
#elif defined(XK_SIMD_SSE2)
  return IsaLevel::kSse2;
#else
  return IsaLevel::kScalar;
#endif
#endif  // XK_SIMD_DISABLED
}

}  // namespace

const char* IsaLevelToString(IsaLevel level) {
  switch (level) {
    case IsaLevel::kScalar: return "scalar";
    case IsaLevel::kSse2: return "sse2";
    case IsaLevel::kNeon: return "neon";
    case IsaLevel::kAvx2: return "avx2";
  }
  return "?";
}

IsaLevel CompiledIsaLevel() {
#if defined(XK_SIMD_DISABLED)
  return IsaLevel::kScalar;
#elif defined(XK_HAVE_AVX2)
  return IsaLevel::kAvx2;
#elif defined(XK_SIMD_NEON)
  return IsaLevel::kNeon;
#elif defined(XK_SIMD_SSE2)
  return IsaLevel::kSse2;
#else
  return IsaLevel::kScalar;
#endif
}

IsaLevel DetectedIsaLevel() {
  // One-shot: the function-local static resolves once, thread-safely.
  static const IsaLevel level = Detect();
  return level;
}

bool ScalarForcedByEnv() {
  static const bool forced = EnvForcesScalar();
  return forced;
}

// --- 128-bit variants ----------------------------------------------------
//
// SSE2 (x86-64 baseline) and NEON (aarch64 baseline) run two 64-bit lanes.
// Values are gathered by scalar loads (neither ISA gathers); the compare and
// — on SSE2 — the 64-bit hash arithmetic are vectorized. The compress step
// stays scalar-driven (2 conditional writes per compare), which preserves
// the exact output order of the scalar kernel.

#if defined(XK_SIMD_SSE2)

namespace {

/// 64-bit lanewise equality out of SSE2's 32-bit compare: both halves of a
/// lane must match.
inline __m128i CmpEq64(__m128i a, __m128i b) {
  const __m128i eq32 = _mm_cmpeq_epi32(a, b);
  return _mm_and_si128(eq32, _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1)));
}

/// Exact 64-bit lanewise multiply (SSE2 has only 32x32->64): the high cross
/// products shifted in, as wraparound arithmetic demands.
inline __m128i Mul64(__m128i a, __m128i b) {
  const __m128i lo = _mm_mul_epu32(a, b);
  const __m128i cross =
      _mm_add_epi64(_mm_mul_epu32(_mm_srli_epi64(a, 32), b),
                    _mm_mul_epu32(a, _mm_srli_epi64(b, 32)));
  return _mm_add_epi64(lo, _mm_slli_epi64(cross, 32));
}

/// The SplitMix64 finalizer on two lanes, bit-identical to the scalar chain.
inline __m128i Finalize64(__m128i h) {
  const __m128i c1 = _mm_set1_epi64x(static_cast<int64_t>(0xbf58476d1ce4e5b9ULL));
  const __m128i c2 = _mm_set1_epi64x(static_cast<int64_t>(0x94d049bb133111ebULL));
  h = Mul64(_mm_xor_si128(h, _mm_srli_epi64(h, 30)), c1);
  h = Mul64(_mm_xor_si128(h, _mm_srli_epi64(h, 27)), c2);
  return _mm_xor_si128(h, _mm_srli_epi64(h, 31));
}

inline uint64_t Lane0(__m128i v) {
  return static_cast<uint64_t>(_mm_cvtsi128_si64(v));
}
inline uint64_t Lane1(__m128i v) {
  return static_cast<uint64_t>(_mm_cvtsi128_si64(_mm_unpackhi_epi64(v, v)));
}

size_t SelCompressEqualSse2(const int64_t* base, uint64_t arity,
                            uint64_t column, const uint32_t* row_ids,
                            uint32_t* sel, size_t n, int64_t value) {
  const __m128i target = _mm_set1_epi64x(value);
  size_t out = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint32_t s0 = sel[i];
    const uint32_t s1 = sel[i + 1];
    const __m128i v = _mm_set_epi64x(
        base[static_cast<uint64_t>(row_ids[s1]) * arity + column],
        base[static_cast<uint64_t>(row_ids[s0]) * arity + column]);
    const __m128i eq = CmpEq64(v, target);
    sel[out] = s0;
    out += Lane0(eq) & 1;
    sel[out] = s1;
    out += Lane1(eq) & 1;
  }
  for (; i < n; ++i) {
    const uint32_t s = sel[i];
    sel[out] = s;
    out += base[static_cast<uint64_t>(row_ids[s]) * arity + column] == value
               ? 1
               : 0;
  }
  return out;
}

size_t SelCompressInSetSse2(const int64_t* base, uint64_t arity,
                            uint64_t column, const uint32_t* row_ids,
                            uint32_t* sel, size_t n, const int64_t* vals,
                            size_t num_vals) {
  __m128i targets[kMaxInlineInSet];
  for (size_t j = 0; j < num_vals; ++j) targets[j] = _mm_set1_epi64x(vals[j]);
  size_t out = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint32_t s0 = sel[i];
    const uint32_t s1 = sel[i + 1];
    const __m128i v = _mm_set_epi64x(
        base[static_cast<uint64_t>(row_ids[s1]) * arity + column],
        base[static_cast<uint64_t>(row_ids[s0]) * arity + column]);
    __m128i eq = CmpEq64(v, targets[0]);
    for (size_t j = 1; j < num_vals; ++j) {
      eq = _mm_or_si128(eq, CmpEq64(v, targets[j]));
    }
    sel[out] = s0;
    out += Lane0(eq) & 1;
    sel[out] = s1;
    out += Lane1(eq) & 1;
  }
  for (; i < n; ++i) {
    const uint32_t s = sel[i];
    const int64_t v = base[static_cast<uint64_t>(row_ids[s]) * arity + column];
    int hit = 0;
    for (size_t j = 0; j < num_vals; ++j) hit |= v == vals[j] ? 1 : 0;
    sel[out] = s;
    out += static_cast<size_t>(hit);
  }
  return out;
}

void HashJoinKeysSse2(const int64_t* keys, size_t count, size_t key_width,
                      uint64_t* out) {
  const __m128i prime = _mm_set1_epi64x(1099511628211LL);
  size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const int64_t* k0 = keys + i * key_width;
    const int64_t* k1 = k0 + key_width;
    __m128i h = _mm_set1_epi64x(static_cast<int64_t>(1469598103934665603ULL));
    for (size_t j = 0; j < key_width; ++j) {
      h = Mul64(_mm_xor_si128(h, _mm_set_epi64x(k1[j], k0[j])), prime);
    }
    h = Finalize64(h);
    out[i] = Lane0(h);
    out[i + 1] = Lane1(h);
  }
  for (; i < count; ++i) {
    out[i] = detail::HashTupleFnvScalar(keys + i * key_width, key_width);
  }
}

void BloomMixBatchSse2(const int64_t* keys, size_t count, uint64_t* out) {
  const __m128i golden =
      _mm_set1_epi64x(static_cast<int64_t>(0x9e3779b97f4a7c15ULL));
  size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    __m128i h = _mm_add_epi64(
        _mm_set_epi64x(keys[i + 1], keys[i]), golden);
    h = Finalize64(h);
    out[i] = Lane0(h);
    out[i + 1] = Lane1(h);
  }
  for (; i < count; ++i) out[i] = detail::BloomMixScalar(keys[i]);
}

}  // namespace

#elif defined(XK_SIMD_NEON)

namespace {

size_t SelCompressEqualNeon(const int64_t* base, uint64_t arity,
                            uint64_t column, const uint32_t* row_ids,
                            uint32_t* sel, size_t n, int64_t value) {
  const int64x2_t target = vdupq_n_s64(value);
  size_t out = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint32_t s0 = sel[i];
    const uint32_t s1 = sel[i + 1];
    const int64x2_t v = vcombine_s64(
        vcreate_s64(static_cast<uint64_t>(
            base[static_cast<uint64_t>(row_ids[s0]) * arity + column])),
        vcreate_s64(static_cast<uint64_t>(
            base[static_cast<uint64_t>(row_ids[s1]) * arity + column])));
    const uint64x2_t eq = vceqq_s64(v, target);
    sel[out] = s0;
    out += vgetq_lane_u64(eq, 0) & 1;
    sel[out] = s1;
    out += vgetq_lane_u64(eq, 1) & 1;
  }
  for (; i < n; ++i) {
    const uint32_t s = sel[i];
    sel[out] = s;
    out += base[static_cast<uint64_t>(row_ids[s]) * arity + column] == value
               ? 1
               : 0;
  }
  return out;
}

size_t SelCompressInSetNeon(const int64_t* base, uint64_t arity,
                            uint64_t column, const uint32_t* row_ids,
                            uint32_t* sel, size_t n, const int64_t* vals,
                            size_t num_vals) {
  int64x2_t targets[kMaxInlineInSet];
  for (size_t j = 0; j < num_vals; ++j) targets[j] = vdupq_n_s64(vals[j]);
  size_t out = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint32_t s0 = sel[i];
    const uint32_t s1 = sel[i + 1];
    const int64x2_t v = vcombine_s64(
        vcreate_s64(static_cast<uint64_t>(
            base[static_cast<uint64_t>(row_ids[s0]) * arity + column])),
        vcreate_s64(static_cast<uint64_t>(
            base[static_cast<uint64_t>(row_ids[s1]) * arity + column])));
    uint64x2_t eq = vceqq_s64(v, targets[0]);
    for (size_t j = 1; j < num_vals; ++j) {
      eq = vorrq_u64(eq, vceqq_s64(v, targets[j]));
    }
    sel[out] = s0;
    out += vgetq_lane_u64(eq, 0) & 1;
    sel[out] = s1;
    out += vgetq_lane_u64(eq, 1) & 1;
  }
  for (; i < n; ++i) {
    const uint32_t s = sel[i];
    const int64_t v = base[static_cast<uint64_t>(row_ids[s]) * arity + column];
    int hit = 0;
    for (size_t j = 0; j < num_vals; ++j) hit |= v == vals[j] ? 1 : 0;
    sel[out] = s;
    out += static_cast<size_t>(hit);
  }
  return out;
}

}  // namespace

#endif  // XK_SIMD_SSE2 / XK_SIMD_NEON

// --- Dispatchers ---------------------------------------------------------
//
// Per-kernel: a level whose variant does not exist for a kernel (NEON has no
// 64-bit vector multiply, so its hash kernels are scalar) falls through to
// the next implemented one. Callers must not pass a level above
// DetectedIsaLevel() — the AVX2 variant really executes AVX2 instructions.

size_t SelCompressEqual(const int64_t* base, uint64_t arity, uint64_t column,
                        const uint32_t* row_ids, uint32_t* sel, size_t n,
                        int64_t value, IsaLevel level) {
#if defined(XK_HAVE_AVX2)
  if (level == IsaLevel::kAvx2) {
    return detail::SelCompressEqualAvx2(base, arity, column, row_ids, sel, n,
                                        value);
  }
#endif
#if defined(XK_SIMD_SSE2)
  if (level != IsaLevel::kScalar) {
    return SelCompressEqualSse2(base, arity, column, row_ids, sel, n, value);
  }
#elif defined(XK_SIMD_NEON)
  if (level != IsaLevel::kScalar) {
    return SelCompressEqualNeon(base, arity, column, row_ids, sel, n, value);
  }
#endif
  (void)level;
  return detail::SelCompressEqualScalar(base, arity, column, row_ids, sel, n,
                                        value);
}

size_t SelCompressInSet(const int64_t* base, uint64_t arity, uint64_t column,
                        const uint32_t* row_ids, uint32_t* sel, size_t n,
                        const int64_t* vals, size_t num_vals, IsaLevel level) {
#if defined(XK_HAVE_AVX2)
  if (level == IsaLevel::kAvx2) {
    return detail::SelCompressInSetAvx2(base, arity, column, row_ids, sel, n,
                                        vals, num_vals);
  }
#endif
#if defined(XK_SIMD_SSE2)
  if (level != IsaLevel::kScalar) {
    return SelCompressInSetSse2(base, arity, column, row_ids, sel, n, vals,
                                num_vals);
  }
#elif defined(XK_SIMD_NEON)
  if (level != IsaLevel::kScalar) {
    return SelCompressInSetNeon(base, arity, column, row_ids, sel, n, vals,
                                num_vals);
  }
#endif
  (void)level;
  return detail::SelCompressInSetScalar(base, arity, column, row_ids, sel, n,
                                        vals, num_vals);
}

uint64_t HashTupleFnv(const int64_t* key, size_t width) {
  return detail::HashTupleFnvScalar(key, width);
}

void HashJoinKeys(const int64_t* keys, size_t count, size_t key_width,
                  uint64_t* out, IsaLevel level) {
#if defined(XK_HAVE_AVX2)
  if (level == IsaLevel::kAvx2) {
    detail::HashJoinKeysAvx2(keys, count, key_width, out);
    return;
  }
#endif
#if defined(XK_SIMD_SSE2)
  if (level != IsaLevel::kScalar) {
    HashJoinKeysSse2(keys, count, key_width, out);
    return;
  }
#endif
  (void)level;
  for (size_t i = 0; i < count; ++i) {
    out[i] = detail::HashTupleFnvScalar(keys + i * key_width, key_width);
  }
}

uint64_t BloomMix(int64_t key) { return detail::BloomMixScalar(key); }

void BloomMixBatch(const int64_t* keys, size_t count, uint64_t* out,
                   IsaLevel level) {
#if defined(XK_HAVE_AVX2)
  if (level == IsaLevel::kAvx2) {
    detail::BloomMixBatchAvx2(keys, count, out);
    return;
  }
#endif
#if defined(XK_SIMD_SSE2)
  if (level != IsaLevel::kScalar) {
    BloomMixBatchSse2(keys, count, out);
    return;
  }
#endif
  (void)level;
  for (size_t i = 0; i < count; ++i) out[i] = detail::BloomMixScalar(keys[i]);
}

void ProbeSlots(const uint64_t* slot_tag_head, uint64_t mask,
                const uint64_t* hashes, size_t n, uint64_t* slot_out,
                IsaLevel level) {
  if (level != IsaLevel::kScalar) {
    // Sweep every home slot's line into cache before any walk starts: the
    // whole chunk's misses overlap instead of paying one round-trip per key.
    // Only the dispatched arms prefetch — the scalar reference stays the
    // plain per-key walk the A/B series baselines against.
    for (size_t j = 0; j < n; ++j) {
      PrefetchRead(slot_tag_head + (hashes[j] & mask));
    }
  }
#if defined(XK_HAVE_AVX2)
  if (level == IsaLevel::kAvx2) {
    detail::ProbeSlotsAvx2(slot_tag_head, mask, hashes, n, slot_out);
    return;
  }
#endif
  // The 128-bit levels walk scalar after the prefetch sweep: the walk is
  // gather-bound and SSE2/NEON cannot gather, so a 2-lane emulation only
  // adds shuffles.
  (void)level;
  detail::ProbeSlotsScalar(slot_tag_head, mask, hashes, n, slot_out);
}

}  // namespace xk::simd
