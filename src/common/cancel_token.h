// Copyright (c) the XKeyword authors.
//
// CancelToken: cooperative cancellation and wall-clock deadlines, shared
// between a query's owner (the serving layer, a CLI, a test) and the
// executors running it. Executors poll StopRequested() at morsel / probe
// granularity and unwind without producing further results; the owner then
// reads ToStatus() to classify the stop as kCancelled or kDeadlineExceeded.
//
// The token itself is passive — nothing fires when the deadline passes; the
// next poll observes it. Polls are cheap: one relaxed atomic load, plus a
// clock read only when a deadline is armed.

#ifndef XK_COMMON_CANCEL_TOKEN_H_
#define XK_COMMON_CANCEL_TOKEN_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/status.h"

namespace xk {

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Asks the query to stop; safe from any thread, idempotent.
  void RequestCancel() { cancelled_.store(true, std::memory_order_release); }

  /// Arms an absolute deadline. Passing a time point in the past makes every
  /// subsequent poll observe the deadline as exceeded.
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ns_.store(NanosSinceEpoch(deadline), std::memory_order_release);
  }

  /// Arms a deadline `budget` from now. Non-positive budgets are ignored.
  void SetDeadlineAfter(std::chrono::nanoseconds budget) {
    if (budget.count() <= 0) return;
    SetDeadline(std::chrono::steady_clock::now() + budget);
  }

  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_acquire) != 0;
  }

  /// The armed deadline as a time point; unspecified when !has_deadline().
  /// Lets a waiter sleep until exactly the deadline instead of polling.
  std::chrono::steady_clock::time_point deadline_time() const {
    return std::chrono::steady_clock::time_point(
        std::chrono::nanoseconds(deadline_ns_.load(std::memory_order_acquire)));
  }

  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  bool deadline_exceeded() const {
    const int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    return d != 0 &&
           NanosSinceEpoch(std::chrono::steady_clock::now()) >= d;
  }

  /// The poll executors run in hot loops.
  bool StopRequested() const {
    return cancel_requested() || deadline_exceeded();
  }

  /// Why the query should stop: kCancelled beats kDeadlineExceeded (an
  /// explicit cancel is the more specific signal); OK if neither tripped.
  Status ToStatus() const {
    if (cancel_requested()) return Status::Cancelled("query cancelled");
    if (deadline_exceeded()) return Status::DeadlineExceeded("query deadline exceeded");
    return Status::OK();
  }

 private:
  static int64_t NanosSinceEpoch(std::chrono::steady_clock::time_point t) {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               t.time_since_epoch())
        .count();
  }

  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{0};  // 0 == no deadline armed
};

}  // namespace xk

#endif  // XK_COMMON_CANCEL_TOKEN_H_
