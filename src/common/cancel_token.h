// Copyright (c) the XKeyword authors.
//
// CancelToken: cooperative cancellation and wall-clock deadlines, shared
// between a query's owner (the serving layer, a CLI, a test) and the
// executors running it. Executors poll StopRequested() at morsel / probe
// granularity and unwind without producing further results; the owner then
// reads ToStatus() to classify the stop as kCancelled or kDeadlineExceeded.
//
// The token itself is passive — nothing fires when the deadline passes; the
// next poll observes it. Polls are cheap: one acquire atomic load, plus a
// clock read only when a deadline is armed.
//
// Memory ordering: RequestCancel/SetDeadline store with release; every poll
// (cancel_requested, has_deadline, deadline_time, deadline_exceeded) loads
// with acquire, so an observer of the flag also observes whatever the
// requesting thread published before tripping it.

#ifndef XK_COMMON_CANCEL_TOKEN_H_
#define XK_COMMON_CANCEL_TOKEN_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/status.h"

namespace xk {

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Asks the query to stop; safe from any thread, idempotent.
  void RequestCancel() { cancelled_.store(true, std::memory_order_release); }

  /// Arms an absolute deadline. Passing a time point in the past makes every
  /// subsequent poll observe the deadline as exceeded. A time point whose
  /// steady_clock nanos-since-epoch is exactly 0 would collide with the
  /// "no deadline armed" sentinel and silently disarm the deadline, so it is
  /// clamped to 1 ns — one poll later every observer still sees it as an
  /// (immediately exceeded) armed deadline.
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    int64_t ns = NanosSinceEpoch(deadline);
    if (ns == 0) ns = 1;
    deadline_ns_.store(ns, std::memory_order_release);
  }

  /// Arms a deadline `budget` from now. Non-positive budgets are ignored.
  void SetDeadlineAfter(std::chrono::nanoseconds budget) {
    if (budget.count() <= 0) return;
    SetDeadline(std::chrono::steady_clock::now() + budget);
  }

  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_acquire) != 0;
  }

  /// The armed deadline as a time point; unspecified when !has_deadline().
  /// Lets a waiter sleep until exactly the deadline instead of polling.
  std::chrono::steady_clock::time_point deadline_time() const {
    return std::chrono::steady_clock::time_point(
        std::chrono::nanoseconds(deadline_ns_.load(std::memory_order_acquire)));
  }

  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  bool deadline_exceeded() const {
    // Acquire, like every other deadline_ns_ poll: it pairs with the release
    // in SetDeadline so a thread that observes the armed deadline also
    // observes everything the arming thread published before it (the request
    // state a QueryService worker reads after polling the token). A relaxed
    // load here was inconsistent with has_deadline()/deadline_time() and
    // provided no such guarantee.
    const int64_t d = deadline_ns_.load(std::memory_order_acquire);
    return d != 0 &&
           NanosSinceEpoch(std::chrono::steady_clock::now()) >= d;
  }

  /// The poll executors run in hot loops.
  bool StopRequested() const {
    return cancel_requested() || deadline_exceeded();
  }

  /// Why the query should stop: kCancelled beats kDeadlineExceeded (an
  /// explicit cancel is the more specific signal); OK if neither tripped.
  Status ToStatus() const {
    if (cancel_requested()) return Status::Cancelled("query cancelled");
    if (deadline_exceeded()) return Status::DeadlineExceeded("query deadline exceeded");
    return Status::OK();
  }

 private:
  static int64_t NanosSinceEpoch(std::chrono::steady_clock::time_point t) {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               t.time_since_epoch())
        .count();
  }

  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{0};  // 0 == no deadline armed
};

}  // namespace xk

#endif  // XK_COMMON_CANCEL_TOKEN_H_
