#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace xk {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kFatal: return "FATAL";
  }
  return "?";
}
}  // namespace

LogLevel SetLogLevel(LogLevel level) {
  return static_cast<LogLevel>(
      g_min_level.exchange(static_cast<int>(level), std::memory_order_relaxed));
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level),
      enabled_(static_cast<int>(level) >= g_min_level.load(std::memory_order_relaxed) ||
               level == LogLevel::kFatal) {
  if (enabled_) {
    // Keep only the basename to reduce noise.
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace xk
