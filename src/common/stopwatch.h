// Copyright (c) the XKeyword authors.
//
// Wall-clock stopwatch for benchmark harnesses and the EXPERIMENTS.md tables.

#ifndef XK_COMMON_STOPWATCH_H_
#define XK_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace xk {

/// Measures elapsed wall time from construction or the last Restart().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start_)
        .count();
  }

  double ElapsedMillis() const { return static_cast<double>(ElapsedMicros()) / 1000.0; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) / 1e6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace xk

#endif  // XK_COMMON_STOPWATCH_H_
