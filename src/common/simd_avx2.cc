// Copyright (c) the XKeyword authors.
//
// AVX2 kernel variants, isolated in this translation unit so only it is
// compiled under -mavx2 (the rest of the binary stays baseline-ISA and the
// runtime dispatcher guards entry with __builtin_cpu_supports). The kernels
// here run 8 selection candidates or 4 hashes/probes per step with hardware
// gathers, and are bit-identical to the scalar references in
// simd_internal.h — the 64-bit multiplies SplitMix64/FNV need are emulated
// exactly out of 32x32 products, and the selection compress is an
// order-preserving permutation, so downstream results cannot diverge.

#include "common/simd_internal.h"

#if defined(XK_HAVE_AVX2)

#include <immintrin.h>

namespace xk::simd::detail {

namespace {

/// sel-compress permutations: row m lists the set-bit positions of mask m in
/// ascending order, which is exactly the order-preserving left-pack of eight
/// 32-bit lanes under _mm256_permutevar8x32_epi32.
struct CompressLut {
  alignas(32) uint32_t perm[256][8];
};

constexpr CompressLut MakeCompressLut() {
  CompressLut lut{};
  for (unsigned m = 0; m < 256; ++m) {
    unsigned out = 0;
    for (unsigned b = 0; b < 8; ++b) {
      if ((m >> b) & 1u) lut.perm[m][out++] = b;
    }
    for (; out < 8; ++out) lut.perm[m][out] = 0;
  }
  return lut;
}

constexpr CompressLut kCompress = MakeCompressLut();

/// Exact 64-bit lanewise multiply: AVX2 has only 32x32->64, so compose the
/// low product with both shifted cross products (the high-high term wraps
/// out of 64 bits).
inline __m256i Mul64(__m256i a, __m256i b) {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
                       _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

/// The SplitMix64 finalizer on four lanes, bit-identical to the scalar chain.
inline __m256i Finalize64(__m256i h) {
  const __m256i c1 =
      _mm256_set1_epi64x(static_cast<int64_t>(0xbf58476d1ce4e5b9ULL));
  const __m256i c2 =
      _mm256_set1_epi64x(static_cast<int64_t>(0x94d049bb133111ebULL));
  h = Mul64(_mm256_xor_si256(h, _mm256_srli_epi64(h, 30)), c1);
  h = Mul64(_mm256_xor_si256(h, _mm256_srli_epi64(h, 27)), c2);
  return _mm256_xor_si256(h, _mm256_srli_epi64(h, 31));
}

/// Gathers the tested column of 8 candidates — sel indexes row_ids, row_ids
/// index the row-major table — and returns the 8-bit equality mask built by
/// `cmp` over the two 4x64 halves.
template <typename Cmp>
inline unsigned GatherCompare8(const int64_t* base, __m256i arity_v,
                               __m256i col_v, const uint32_t* row_ids,
                               __m256i sel_v, Cmp cmp) {
  const __m256i rows8 = _mm256_i32gather_epi32(
      reinterpret_cast<const int*>(row_ids), sel_v, 4);
  const __m256i rows_lo = _mm256_cvtepu32_epi64(_mm256_castsi256_si128(rows8));
  const __m256i rows_hi =
      _mm256_cvtepu32_epi64(_mm256_extracti128_si256(rows8, 1));
  // row * arity + column in 64 bits; rows and arity both fit 32, so one
  // 32x32->64 product is exact.
  const __m256i idx_lo =
      _mm256_add_epi64(_mm256_mul_epu32(rows_lo, arity_v), col_v);
  const __m256i idx_hi =
      _mm256_add_epi64(_mm256_mul_epu32(rows_hi, arity_v), col_v);
  const __m256i v_lo = _mm256_i64gather_epi64(
      reinterpret_cast<const long long*>(base), idx_lo, 8);
  const __m256i v_hi = _mm256_i64gather_epi64(
      reinterpret_cast<const long long*>(base), idx_hi, 8);
  const unsigned m_lo = static_cast<unsigned>(
      _mm256_movemask_pd(_mm256_castsi256_pd(cmp(v_lo))));
  const unsigned m_hi = static_cast<unsigned>(
      _mm256_movemask_pd(_mm256_castsi256_pd(cmp(v_hi))));
  return m_lo | (m_hi << 4);
}

/// Left-packs the surviving sel entries of one 8-lane group to sel[out].
/// In place is safe: out <= i always, and the 8 source lanes were loaded
/// before the store.
inline size_t CompressStore8(uint32_t* sel, size_t out, __m256i sel_v,
                             unsigned mask) {
  const __m256i perm = _mm256_load_si256(
      reinterpret_cast<const __m256i*>(kCompress.perm[mask]));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(sel + out),
                      _mm256_permutevar8x32_epi32(sel_v, perm));
  return out + static_cast<size_t>(__builtin_popcount(mask));
}

}  // namespace

size_t SelCompressEqualAvx2(const int64_t* base, uint64_t arity,
                            uint64_t column, const uint32_t* row_ids,
                            uint32_t* sel, size_t n, int64_t value) {
  const __m256i target = _mm256_set1_epi64x(value);
  const __m256i arity_v = _mm256_set1_epi64x(static_cast<int64_t>(arity));
  const __m256i col_v = _mm256_set1_epi64x(static_cast<int64_t>(column));
  size_t out = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i sel_v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sel + i));
    const unsigned mask = GatherCompare8(
        base, arity_v, col_v, row_ids, sel_v,
        [&](__m256i v) { return _mm256_cmpeq_epi64(v, target); });
    out = CompressStore8(sel, out, sel_v, mask);
  }
  for (; i < n; ++i) {
    const uint32_t s = sel[i];
    sel[out] = s;
    out += base[static_cast<uint64_t>(row_ids[s]) * arity + column] == value
               ? 1
               : 0;
  }
  return out;
}

size_t SelCompressInSetAvx2(const int64_t* base, uint64_t arity,
                            uint64_t column, const uint32_t* row_ids,
                            uint32_t* sel, size_t n, const int64_t* vals,
                            size_t num_vals) {
  __m256i targets[kMaxInlineInSet];
  for (size_t j = 0; j < num_vals; ++j) {
    targets[j] = _mm256_set1_epi64x(vals[j]);
  }
  const __m256i arity_v = _mm256_set1_epi64x(static_cast<int64_t>(arity));
  const __m256i col_v = _mm256_set1_epi64x(static_cast<int64_t>(column));
  size_t out = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i sel_v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sel + i));
    const unsigned mask =
        GatherCompare8(base, arity_v, col_v, row_ids, sel_v, [&](__m256i v) {
          __m256i eq = _mm256_cmpeq_epi64(v, targets[0]);
          for (size_t j = 1; j < num_vals; ++j) {
            eq = _mm256_or_si256(eq, _mm256_cmpeq_epi64(v, targets[j]));
          }
          return eq;
        });
    out = CompressStore8(sel, out, sel_v, mask);
  }
  for (; i < n; ++i) {
    const uint32_t s = sel[i];
    const int64_t v = base[static_cast<uint64_t>(row_ids[s]) * arity + column];
    int hit = 0;
    for (size_t j = 0; j < num_vals; ++j) hit |= v == vals[j] ? 1 : 0;
    sel[out] = s;
    out += static_cast<size_t>(hit);
  }
  return out;
}

void HashJoinKeysAvx2(const int64_t* keys, size_t count, size_t key_width,
                      uint64_t* out) {
  const __m256i prime = _mm256_set1_epi64x(1099511628211LL);
  const int64_t kw = static_cast<int64_t>(key_width);
  size_t i = 0;
  if (key_width == 1) {
    // Width-1 keys are contiguous: plain 256-bit loads instead of gathers
    // (a 4-lane gather of adjacent qwords costs an order of magnitude more
    // than the load), two groups in flight to keep the multiply ports fed.
    const __m256i basis =
        _mm256_set1_epi64x(static_cast<int64_t>(1469598103934665603ULL));
    for (; i + 8 <= count; i += 8) {
      const __m256i v0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
      const __m256i v1 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i + 4));
      const __m256i h0 = Finalize64(Mul64(_mm256_xor_si256(basis, v0), prime));
      const __m256i h1 = Finalize64(Mul64(_mm256_xor_si256(basis, v1), prime));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), h0);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 4), h1);
    }
    for (; i < count; ++i) out[i] = HashTupleFnvScalar(keys + i, 1);
    return;
  }
  // Four row-major keys per step; column j of the group gathers at stride
  // key_width.
  const __m256i offsets = _mm256_setr_epi64x(0, kw, 2 * kw, 3 * kw);
  for (; i + 4 <= count; i += 4) {
    const int64_t* kbase = keys + i * key_width;
    __m256i h =
        _mm256_set1_epi64x(static_cast<int64_t>(1469598103934665603ULL));
    for (size_t j = 0; j < key_width; ++j) {
      const __m256i v = _mm256_i64gather_epi64(
          reinterpret_cast<const long long*>(kbase + j), offsets, 8);
      h = Mul64(_mm256_xor_si256(h, v), prime);
    }
    h = Finalize64(h);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), h);
  }
  for (; i < count; ++i) {
    out[i] = HashTupleFnvScalar(keys + i * key_width, key_width);
  }
}

void BloomMixBatchAvx2(const int64_t* keys, size_t count, uint64_t* out) {
  const __m256i golden =
      _mm256_set1_epi64x(static_cast<int64_t>(0x9e3779b97f4a7c15ULL));
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i k =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    const __m256i h = Finalize64(_mm256_add_epi64(k, golden));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), h);
  }
  for (; i < count; ++i) out[i] = BloomMixScalar(keys[i]);
}

void ProbeSlotsAvx2(const uint64_t* slot_tag_head, uint64_t mask,
                    const uint64_t* hashes, size_t n, uint64_t* slot_out) {
  const __m256i mask_v = _mm256_set1_epi64x(static_cast<int64_t>(mask));
  const __m256i one = _mm256_set1_epi64x(1);
  const __m256i tag_mask =
      _mm256_set1_epi64x(static_cast<int64_t>(kSlotTagMask));
  const __m256i lo_ones =
      _mm256_set1_epi64x(static_cast<int64_t>(0x00000000FFFFFFFFull));
  // One latch-and-advance step for a 4-lane group: a single gather pulls the
  // group's fused tag+head words, `idx` latches into `out` for lanes whose
  // slot is empty (head half all-ones) or tag-equal, and every lane advances
  // one slot (masked in-bounds, so resolved lanes keep gathering harmlessly
  // while their latch stays put). A drain-and-refill pipeline (keep four
  // walks in flight, refill a lane the step it parks) was measured slower
  // here: the gather port is the bottleneck, so a parked lane's wasted
  // gathers cost less than the refill's permute/blend/scatter traffic.
  const auto step = [&](__m256i probe_tag, __m256i& idx, __m256i& out,
                        __m256i& active) {
    const __m256i v = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(slot_tag_head), idx, 8);
    const __m256i empty =
        _mm256_cmpeq_epi64(_mm256_and_si256(v, lo_ones), lo_ones);
    const __m256i eq =
        _mm256_cmpeq_epi64(_mm256_and_si256(v, tag_mask), probe_tag);
    const __m256i done = _mm256_and_si256(_mm256_or_si256(eq, empty), active);
    out = _mm256_blendv_epi8(out, idx, done);
    active = _mm256_andnot_si256(done, active);
    idx = _mm256_and_si256(_mm256_add_epi64(idx, one), mask_v);
  };
  size_t i = 0;
  // Two independent 4-lane groups walk side by side so eight probes' gather
  // misses overlap; a group whose four lanes have all parked stops stepping,
  // so each group pays its own longest walk, not the combined one.
  for (; i + 8 <= n; i += 8) {
    const __m256i probe_a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hashes + i));
    const __m256i probe_b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hashes + i + 4));
    const __m256i tag_a = _mm256_and_si256(probe_a, tag_mask);
    const __m256i tag_b = _mm256_and_si256(probe_b, tag_mask);
    __m256i idx_a = _mm256_and_si256(probe_a, mask_v);
    __m256i idx_b = _mm256_and_si256(probe_b, mask_v);
    __m256i out_a = _mm256_setzero_si256();
    __m256i out_b = _mm256_setzero_si256();
    __m256i active_a = _mm256_set1_epi64x(-1);
    __m256i active_b = _mm256_set1_epi64x(-1);
    // Every lane terminates: the table keeps at least one empty slot below
    // the load-factor ceiling.
    int live_a = _mm256_movemask_epi8(active_a);
    int live_b = _mm256_movemask_epi8(active_b);
    while ((live_a | live_b) != 0) {
      if (live_a != 0) {
        step(tag_a, idx_a, out_a, active_a);
        live_a = _mm256_movemask_epi8(active_a);
      }
      if (live_b != 0) {
        step(tag_b, idx_b, out_b, active_b);
        live_b = _mm256_movemask_epi8(active_b);
      }
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(slot_out + i), out_a);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(slot_out + i + 4), out_b);
  }
  for (; i + 4 <= n; i += 4) {
    const __m256i probe =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hashes + i));
    const __m256i tag = _mm256_and_si256(probe, tag_mask);
    __m256i idx = _mm256_and_si256(probe, mask_v);
    __m256i out = _mm256_setzero_si256();
    __m256i active = _mm256_set1_epi64x(-1);
    while (_mm256_movemask_epi8(active) != 0) {
      step(tag, idx, out, active);
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(slot_out + i), out);
  }
  if (i < n) {
    ProbeSlotsScalar(slot_tag_head, mask, hashes + i, n - i, slot_out + i);
  }
}

}  // namespace xk::simd::detail

#endif  // XK_HAVE_AVX2
