// Copyright (c) the XKeyword authors.
//
// Minimal leveled logging plus CHECK macros. Logging defaults to warnings and
// above so tests and benchmarks stay quiet; severity is process-global.

#ifndef XK_COMMON_LOGGING_H_
#define XK_COMMON_LOGGING_H_

#include <cassert>
#include <sstream>
#include <string>

namespace xk {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Sets the minimum level emitted to stderr. Returns the previous level.
LogLevel SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it (to stderr) on destruction.
/// A kFatal message aborts the process after emission.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

/// Swallows a disabled log statement's stream operands.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) { return *this; }
};

}  // namespace internal
}  // namespace xk

#define XK_LOG(level) \
  ::xk::internal::LogMessage(::xk::LogLevel::k##level, __FILE__, __LINE__)

/// Invariant check, active in all build types: databases should fail loudly.
#define XK_CHECK(cond)                                              \
  (cond) ? (void)0                                                  \
         : (void)(::xk::internal::LogMessage(::xk::LogLevel::kFatal, __FILE__, \
                                             __LINE__)              \
                  << "Check failed: " #cond " ")

#define XK_CHECK_EQ(a, b) XK_CHECK((a) == (b))
#define XK_CHECK_NE(a, b) XK_CHECK((a) != (b))
#define XK_CHECK_LT(a, b) XK_CHECK((a) < (b))
#define XK_CHECK_LE(a, b) XK_CHECK((a) <= (b))
#define XK_CHECK_GT(a, b) XK_CHECK((a) > (b))
#define XK_CHECK_GE(a, b) XK_CHECK((a) >= (b))

#define XK_DCHECK(cond) assert(cond)

#endif  // XK_COMMON_LOGGING_H_
