#include "common/random.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace xk {

int64_t Random::Uniform(int64_t lo, int64_t hi) {
  XK_DCHECK(lo <= hi);
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Random::NextDouble() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

bool Random::OneIn(int n) { return Uniform(1, n) == 1; }

std::string Random::Word(int length) {
  std::string out;
  out.reserve(static_cast<size_t>(length));
  for (int i = 0; i < length; ++i) {
    out.push_back(static_cast<char>('a' + Uniform(0, 25)));
  }
  return out;
}

ZipfDistribution::ZipfDistribution(size_t n, double theta) : n_(n) {
  XK_CHECK_GT(n, 0u);
  cdf_.resize(n);
  double norm = 0.0;
  for (size_t i = 0; i < n; ++i) {
    norm += 1.0 / std::pow(static_cast<double>(i + 1), theta);
  }
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc += (1.0 / std::pow(static_cast<double>(i + 1), theta)) / norm;
    cdf_[i] = acc;
  }
  cdf_[n - 1] = 1.0;  // guard against floating point drift
}

size_t ZipfDistribution::Sample(Random* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(std::distance(cdf_.begin(), it));
}

}  // namespace xk
