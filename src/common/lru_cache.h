// Copyright (c) the XKeyword authors.
//
// Fixed-capacity LRU cache. Section 6 of the paper: "XKeyword uses a fixed
// size cache for each keyword query to store past results and if the cache
// gets full, the queries are re-sent to the DBMS." The top-k executor keys
// this cache by (subplan id, join binding) and stores the subplan's output.

#ifndef XK_COMMON_LRU_CACHE_H_
#define XK_COMMON_LRU_CACHE_H_

#include <cstddef>
#include <list>
#include <unordered_map>
#include <utility>

namespace xk {

/// Single-threaded LRU map from K to V with an entry-count capacity.
/// (Each executor thread owns its own cache, matching the per-query cache of
/// the paper, so no synchronization is needed here.)
template <typename K, typename V, typename Hash = std::hash<K>>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  /// Returns a pointer to the cached value and refreshes its recency, or
  /// nullptr on a miss. The pointer is invalidated by the next Put.
  const V* Get(const K& key) {
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  /// Inserts or overwrites; evicts the least-recently-used entry when full.
  void Put(const K& key, V value) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    if (capacity_ == 0) return;
    if (map_.size() >= capacity_) {
      map_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
    order_.emplace_front(key, std::move(value));
    map_[key] = order_.begin();
  }

  void Clear() {
    map_.clear();
    order_.clear();
  }

  size_t size() const { return map_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }

 private:
  size_t capacity_;
  std::list<std::pair<K, V>> order_;  // front = most recent
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator, Hash> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace xk

#endif  // XK_COMMON_LRU_CACHE_H_
