// Copyright (c) the XKeyword authors.
//
// LRU caches. Section 6 of the paper: "XKeyword uses a fixed size cache for
// each keyword query to store past results and if the cache gets full, the
// queries are re-sent to the DBMS."
//
// Two variants share this header:
//   * LruCache — single-threaded, entry-count capacity. The top-k executor
//     keys it by (subplan id, join binding) and stores the subplan's output;
//     each executor thread owns its own instance.
//   * ShardedLruCache — thread-safe, byte-budget capacity. Keys are hashed
//     onto N independently locked shards, each running its own LRU order and
//     byte accounting, so concurrent lookups from serving threads only
//     contend when they land on the same shard. The serving-layer
//     AnswerCache stores whole QueryResponse payloads in it.

#ifndef XK_COMMON_LRU_CACHE_H_
#define XK_COMMON_LRU_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace xk {

/// Single-threaded LRU map from K to V with an entry-count capacity.
/// (Each executor thread owns its own cache, matching the per-query cache of
/// the paper, so no synchronization is needed here.)
template <typename K, typename V, typename Hash = std::hash<K>>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  /// Returns a pointer to the cached value and refreshes its recency, or
  /// nullptr on a miss. The pointer is invalidated by the next Put.
  const V* Get(const K& key) {
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  /// Inserts or overwrites; evicts the least-recently-used entry when full.
  void Put(const K& key, V value) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    if (capacity_ == 0) return;
    if (map_.size() >= capacity_) {
      map_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
    order_.emplace_front(key, std::move(value));
    map_[key] = order_.begin();
  }

  void Clear() {
    map_.clear();
    order_.clear();
  }

  size_t size() const { return map_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }

 private:
  size_t capacity_;
  std::list<std::pair<K, V>> order_;  // front = most recent
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator, Hash> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

/// Thread-safe sharded LRU map from K to shared V with a byte budget.
/// The budget is split evenly across shards; each Put carries the entry's
/// byte charge and evicts that shard's least-recently-used entries until the
/// new entry fits. Values are handed out as shared_ptr<const V> so a reader
/// keeps its value alive even if the entry is evicted concurrently.
template <typename K, typename V, typename Hash = std::hash<K>>
class ShardedLruCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
    size_t bytes = 0;
  };

  ShardedLruCache(size_t num_shards, size_t max_bytes)
      : shard_budget_(max_bytes / (num_shards == 0 ? 1 : num_shards)),
        shards_(num_shards == 0 ? 1 : num_shards) {}

  /// Returns the cached value and refreshes its recency, or nullptr on a
  /// miss.
  std::shared_ptr<const V> Get(const K& key) {
    Shard& shard = ShardOf(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      ++shard.misses;
      return nullptr;
    }
    ++shard.hits;
    shard.order.splice(shard.order.begin(), shard.order, it->second);
    return it->second->value;
  }

  /// Inserts or overwrites `key`, charging `bytes` against the shard budget,
  /// and evicts least-recently-used entries until the shard fits again.
  /// Entries larger than a whole shard are not stored (they would evict
  /// everything for a value nobody can keep). Returns the number of entries
  /// evicted by this call.
  size_t Put(const K& key, std::shared_ptr<const V> value, size_t bytes) {
    Shard& shard = ShardOf(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (bytes > shard_budget_) return 0;
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.bytes -= it->second->bytes;
      it->second->value = std::move(value);
      it->second->bytes = bytes;
      shard.bytes += bytes;
      shard.order.splice(shard.order.begin(), shard.order, it->second);
      return EvictUntilFit(&shard);
    }
    shard.order.push_front(Entry{key, std::move(value), bytes});
    shard.map[key] = shard.order.begin();
    shard.bytes += bytes;
    return EvictUntilFit(&shard);
  }

  /// Removes `key` if present; returns whether an entry was removed.
  bool Erase(const K& key) {
    Shard& shard = ShardOf(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) return false;
    shard.bytes -= it->second->bytes;
    shard.order.erase(it->second);
    shard.map.erase(it);
    return true;
  }

  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.map.clear();
      shard.order.clear();
      shard.bytes = 0;
    }
  }

  /// Aggregated over all shards; each shard is locked briefly in turn, so
  /// the numbers are per-shard consistent rather than a global snapshot.
  Stats GetStats() const {
    Stats stats;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      stats.hits += shard.hits;
      stats.misses += shard.misses;
      stats.evictions += shard.evictions;
      stats.entries += shard.map.size();
      stats.bytes += shard.bytes;
    }
    return stats;
  }

  size_t num_shards() const { return shards_.size(); }
  size_t shard_budget_bytes() const { return shard_budget_; }

  /// The shard `key` maps to (exposed so tests can assert the distribution).
  /// The raw Hash value is passed through a 64-bit finalizer before the
  /// modulo: identity-style hashes (std::hash of integers on common standard
  /// libraries) put all their entropy wherever the key puts it, and keys
  /// that differ only in high bits would otherwise pile onto one shard.
  size_t ShardIndexOf(const K& key) const {
    uint64_t h = static_cast<uint64_t>(Hash{}(key));
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 33;
    return static_cast<size_t>(h % shards_.size());
  }

 private:
  struct Entry {
    K key;
    std::shared_ptr<const V> value;
    size_t bytes = 0;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> order;  // front = most recent
    std::unordered_map<K, typename std::list<Entry>::iterator, Hash> map;
    size_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardOf(const K& key) { return shards_[ShardIndexOf(key)]; }

  /// Caller holds the shard lock.
  size_t EvictUntilFit(Shard* shard) {
    size_t evicted = 0;
    while (shard->bytes > shard_budget_ && !shard->order.empty()) {
      const Entry& victim = shard->order.back();
      shard->bytes -= victim.bytes;
      shard->map.erase(victim.key);
      shard->order.pop_back();
      ++shard->evictions;
      ++evicted;
    }
    return evicted;
  }

  const size_t shard_budget_;
  std::vector<Shard> shards_;
};

}  // namespace xk

#endif  // XK_COMMON_LRU_CACHE_H_
