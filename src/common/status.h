// Copyright (c) the XKeyword authors.
//
// Status: lightweight error model in the Arrow / RocksDB tradition. Functions
// that can fail return a Status (or a Result<T>, see result.h) instead of
// throwing; hot paths stay exception-free.

#ifndef XK_COMMON_STATUS_H_
#define XK_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace xk {

/// Machine-readable category of a failure.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kCorruption = 5,      // malformed input data (e.g. XML parse errors)
  kNotSupported = 6,
  kInternal = 7,
  kResourceExhausted = 8,
  kAborted = 9,
  kDeadlineExceeded = 10,  // a per-query wall-clock budget ran out
  kCancelled = 11,         // the caller asked a running query to stop
};

/// Returns the canonical lower-case name of a status code ("ok", "not found", ...).
const char* StatusCodeToString(StatusCode code);

/// The outcome of an operation: OK, or a code plus a human-readable message.
///
/// A Status is cheap to copy in the OK case (a single null pointer); failure
/// states carry a heap-allocated message.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string msg);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg);
  static Status NotFound(std::string msg);
  static Status AlreadyExists(std::string msg);
  static Status OutOfRange(std::string msg);
  static Status Corruption(std::string msg);
  static Status NotSupported(std::string msg);
  static Status Internal(std::string msg);
  static Status ResourceExhausted(std::string msg);
  static Status Aborted(std::string msg);
  static Status DeadlineExceeded(std::string msg);
  static Status Cancelled(std::string msg);

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ == nullptr ? StatusCode::kOk : rep_->code; }
  /// The message attached at construction; empty for OK.
  const std::string& message() const;

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsNotSupported() const { return code() == StatusCode::kNotSupported; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsResourceExhausted() const { return code() == StatusCode::kResourceExhausted; }
  bool IsAborted() const { return code() == StatusCode::kAborted; }
  bool IsDeadlineExceeded() const { return code() == StatusCode::kDeadlineExceeded; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string msg;
  };
  std::unique_ptr<Rep> rep_;  // null == OK
};

}  // namespace xk

/// Propagates a non-OK Status to the caller.
#define XK_RETURN_NOT_OK(expr)                \
  do {                                        \
    ::xk::Status _xk_status = (expr);         \
    if (!_xk_status.ok()) return _xk_status;  \
  } while (false)

#endif  // XK_COMMON_STATUS_H_
