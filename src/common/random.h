// Copyright (c) the XKeyword authors.
//
// Deterministic random utilities for data generation and property tests.
// A fixed seed must reproduce a bit-identical dataset across runs so that
// benchmark series are comparable.

#ifndef XK_COMMON_RANDOM_H_
#define XK_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace xk {

/// Wraps a 64-bit Mersenne engine with the distributions data generation needs.
class Random {
 public:
  explicit Random(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial.
  bool OneIn(int n);

  /// Picks a uniform element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[static_cast<size_t>(Uniform(0, static_cast<int64_t>(v.size()) - 1))];
  }

  /// Lower-case alphabetic word of the given length.
  std::string Word(int length);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Zipf-distributed ranks in [0, n). Used to give keyword vocabularies the
/// skew of real text: a handful of very frequent words plus a long tail, so
/// keyword selectivities in the benchmarks span several orders of magnitude.
class ZipfDistribution {
 public:
  /// `theta` is the skew (0 = uniform, ~0.99 = heavy Zipf as in YCSB).
  ZipfDistribution(size_t n, double theta);

  size_t Sample(Random* rng) const;

  size_t n() const { return n_; }

 private:
  size_t n_;
  std::vector<double> cdf_;  // cumulative probabilities, size n_
};

}  // namespace xk

#endif  // XK_COMMON_RANDOM_H_
