#include "common/status.h"

namespace xk {

namespace {
const std::string kEmptyMessage;
}  // namespace

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid argument";
    case StatusCode::kNotFound: return "not found";
    case StatusCode::kAlreadyExists: return "already exists";
    case StatusCode::kOutOfRange: return "out of range";
    case StatusCode::kCorruption: return "corruption";
    case StatusCode::kNotSupported: return "not supported";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kResourceExhausted: return "resource exhausted";
    case StatusCode::kAborted: return "aborted";
    case StatusCode::kDeadlineExceeded: return "deadline exceeded";
    case StatusCode::kCancelled: return "cancelled";
  }
  return "unknown";
}

Status::Status(StatusCode code, std::string msg) {
  if (code != StatusCode::kOk) {
    rep_ = std::make_unique<Rep>(Rep{code, std::move(msg)});
  }
}

Status::Status(const Status& other) {
  if (other.rep_ != nullptr) rep_ = std::make_unique<Rep>(*other.rep_);
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    rep_ = other.rep_ == nullptr ? nullptr : std::make_unique<Rep>(*other.rep_);
  }
  return *this;
}

const std::string& Status::message() const {
  return rep_ == nullptr ? kEmptyMessage : rep_->msg;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  if (!message().empty()) {
    out += ": ";
    out += message();
  }
  return out;
}

Status Status::InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
Status Status::NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
Status Status::AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
Status Status::OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
Status Status::Corruption(std::string msg) {
  return Status(StatusCode::kCorruption, std::move(msg));
}
Status Status::NotSupported(std::string msg) {
  return Status(StatusCode::kNotSupported, std::move(msg));
}
Status Status::Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
Status Status::ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
Status Status::Aborted(std::string msg) {
  return Status(StatusCode::kAborted, std::move(msg));
}
Status Status::DeadlineExceeded(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}
Status Status::Cancelled(std::string msg) {
  return Status(StatusCode::kCancelled, std::move(msg));
}

}  // namespace xk
