// Copyright (c) the XKeyword authors.
//
// Portable SIMD kernels for the execution engine's hot block loops:
// compare-and-compress selection over selection vectors, batched join-key
// hashing (FNV-1a + SplitMix64, bit-exact with the scalar path), gathered
// group-probe of the flat open-addressing JoinHashTable, and batched Bloom
// mixing. Three instruction-set levels with one scalar fallback:
//
//   kScalar — plain C++, the correctness oracle every other level must match
//   kSse2   — 128-bit lanes (x86-64 baseline, always compiled on x86)
//   kNeon   — 128-bit lanes (aarch64 baseline)
//   kAvx2   — 256-bit lanes with hardware gathers, compiled in a separate
//             translation unit under -mavx2 and reached only when the CPU
//             reports AVX2 at runtime
//
// Dispatch is one-shot: DetectedIsaLevel() resolves (compiled-in levels ∩
// hardware support, minus the XK_FORCE_SCALAR_KERNELS escape hatch) on first
// call and caches the answer. Every kernel takes the level as an explicit
// parameter so callers can pin the scalar arm per query (ExecOptions::
// force_scalar_kernels) and tests can difference the levels directly.
//
// All kernels are exact: each level computes bit-identical hashes and the
// identical, order-preserving selection compress, so results downstream are
// byte-identical by construction, not merely equivalent.

#ifndef XK_COMMON_SIMD_H_
#define XK_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace xk::simd {

/// Instruction-set level a kernel runs at. Values are stable (they appear in
/// ExecutionStats::simd_isa and the metrics snapshot).
enum class IsaLevel : int {
  kScalar = 0,
  kSse2 = 1,
  kNeon = 2,
  kAvx2 = 3,
};

const char* IsaLevelToString(IsaLevel level);

/// Best level this binary was compiled with (upper bound of dispatch).
IsaLevel CompiledIsaLevel();

/// One-shot runtime dispatch: compiled levels ∩ CPU support, forced to
/// kScalar when XK_FORCE_SCALAR_KERNELS is set (1/true/on/yes). Resolved on
/// first call, then cached — cheap enough for per-kernel consultation.
IsaLevel DetectedIsaLevel();

/// True when the XK_FORCE_SCALAR_KERNELS environment escape hatch disabled
/// SIMD dispatch for this process.
bool ScalarForcedByEnv();

/// The level a kernel call should run at: the detected level, or kScalar when
/// the caller's per-query knob demands the fallback arm.
inline IsaLevel KernelLevel(bool force_scalar) {
  return force_scalar ? IsaLevel::kScalar : DetectedIsaLevel();
}

/// Read-prefetch hint (no-op on compilers without __builtin_prefetch). The
/// batched kernels sweep a whole chunk's target lines ahead of the dependent
/// walks, so the misses overlap instead of serializing per key — the block
/// layout is what makes that sweep possible, and on miss-bound probes it is
/// worth more than the lane arithmetic itself.
inline void PrefetchRead(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

// --- Selection kernels ---------------------------------------------------
//
// The engine's selection-vector layout: `sel[0..n)` indexes candidates,
// candidate s refers to table row `row_ids[s]`, and the value under test is
// `base[row_ids[s] * arity + column]` (row-major table storage). Each kernel
// compacts sel in place to the survivors, preserving order, and returns the
// survivor count. In-place compaction is safe: the write cursor never passes
// the read cursor.

/// Keeps candidates whose gathered value equals `value`.
size_t SelCompressEqual(const int64_t* base, uint64_t arity, uint64_t column,
                        const uint32_t* row_ids, uint32_t* sel, size_t n,
                        int64_t value, IsaLevel level);

/// Largest IN-set handled by the unrolled compare ladder below.
inline constexpr size_t kMaxInlineInSet = 4;

/// Keeps candidates whose gathered value equals any of `vals[0..num_vals)`
/// (1 <= num_vals <= kMaxInlineInSet): an unrolled compare ladder instead of
/// a hash-set probe, the right trade for tiny IN-lists.
size_t SelCompressInSet(const int64_t* base, uint64_t arity, uint64_t column,
                        const uint32_t* row_ids, uint32_t* sel, size_t n,
                        const int64_t* vals, size_t num_vals, IsaLevel level);

// --- Hash kernels --------------------------------------------------------

/// The join-key hash: FNV-1a 64 over the key's ObjectIds, then a SplitMix64
/// finalizer (the power-of-two slot mask uses only low bits; sequential ids
/// need the avalanche). Single-key scalar reference — JoinHashTable::HashKey
/// delegates here so batch and single-key hashing can never drift.
uint64_t HashTupleFnv(const int64_t* key, size_t width);

/// Batched HashTupleFnv: keys are row-major, `key_width` ids each;
/// `out[i]` receives the hash of key i. Bit-identical to the scalar
/// reference at every level.
void HashJoinKeys(const int64_t* keys, size_t count, size_t key_width,
                  uint64_t* out, IsaLevel level);

/// The Bloom-filter first hash: SplitMix64 over one ObjectId (the golden-
/// ratio increment then the finalizer). storage::BloomFilter delegates here.
uint64_t BloomMix(int64_t key);

/// Batched BloomMix; `out[i]` receives BloomMix(keys[i]).
void BloomMixBatch(const int64_t* keys, size_t count, uint64_t* out,
                   IsaLevel level);

// --- Group probe ---------------------------------------------------------

/// Slot-head value marking an empty slot (JoinHashTable::kNil).
inline constexpr uint32_t kEmptyHead = 0xFFFFFFFFu;

/// The probed slot array packs each slot into one 64-bit word: the high half
/// is the key hash's top 32 bits (the "tag" — the slot index already encodes
/// low bits), the low half is the slot's head (kEmptyHead when empty). One
/// word per slot means the walk costs a single gather per step instead of
/// two parallel-array gathers, and the resolve reads the head off a line the
/// walk just touched.
inline constexpr uint64_t kSlotTagMask = 0xFFFFFFFF00000000ull;

/// Packs a slot's fused tag+head word.
inline uint64_t PackSlotTagHead(uint64_t hash, uint32_t head) {
  return (hash & kSlotTagMask) | head;
}

/// Gathered group-probe of an open-addressing slot array (power-of-two size,
/// linear probing, fused tag+head words — see kSlotTagMask). For each probe
/// hash, walks slots from `hash & mask` and writes the index of the first
/// slot that is either empty (key absent) or tag-equal (candidate match —
/// the caller verifies the full hash/key and resumes the walk one slot past
/// the parking spot on a tag collision, which is provably the slot the
/// all-scalar walk would find: a full-hash match is also a tag match, so the
/// walk can never park past the true slot). The table must contain at least
/// one empty slot (guaranteed below the load-factor ceiling).
void ProbeSlots(const uint64_t* slot_tag_head, uint64_t mask,
                const uint64_t* hashes, size_t n, uint64_t* slot_out,
                IsaLevel level);

}  // namespace xk::simd

#endif  // XK_COMMON_SIMD_H_
