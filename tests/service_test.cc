// Tests for the QueryService serving front-end: concurrent submits,
// deadlines, cooperative cancellation, admission control, metrics — plus the
// LatencyHistogram and the unified Run API's soft-stop semantics on the
// DBLP fixture.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <random>
#include <thread>
#include <vector>

#include "datagen/dblp_gen.h"
#include "engine/xkeyword.h"
#include "service/query_service.h"
#include "test_util.h"

namespace xk::service {
namespace {

using engine::Completeness;
using engine::QueryMode;
using engine::QueryRequest;
using engine::QueryResponse;
using testing::RunNaive;
using testing::RunTopK;
using std::chrono::milliseconds;

// --- LatencyHistogram ----------------------------------------------------

TEST(LatencyHistogramTest, EmptyAnswersZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.PercentileMicros(50), 0);
  EXPECT_EQ(h.PercentileMicros(99), 0);
}

TEST(LatencyHistogramTest, SingleSampleIsExactAtEveryPercentile) {
  LatencyHistogram h;
  h.Record(milliseconds(3));  // 3000 us
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.PercentileMicros(50), 3000.0);
  EXPECT_DOUBLE_EQ(h.PercentileMicros(99), 3000.0);
}

TEST(LatencyHistogramTest, PercentilesAreOrderedAndBracketed) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) {
    h.Record(std::chrono::microseconds(i * 100));  // 100us .. 100ms uniform
  }
  const double p50 = h.PercentileMicros(50);
  const double p95 = h.PercentileMicros(95);
  const double p99 = h.PercentileMicros(99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Log-bucketed estimates: within a bucket (~19%) of the true value.
  EXPECT_NEAR(p50, 50000.0, 50000.0 * 0.25);
  EXPECT_NEAR(p99, 99000.0, 99000.0 * 0.25);
  EXPECT_LE(p99, 100000.0 + 1);  // clamped to the observed maximum
}

TEST(LatencyHistogramTest, SubMicrosecondSamplesStayBracketed) {
  // Regression: bucket 0 nominally spans [1us, 2^(1/4) us), but it also
  // absorbs everything below 1 us. Interpolating from the 1.0 us edge used
  // to report percentiles ABOVE the maximum of an all-sub-microsecond
  // workload (e.g. p50 = 1.09 us for samples in [100ns, 900ns]).
  LatencyHistogram h;
  for (int i = 1; i <= 9; ++i) {
    h.Record(std::chrono::nanoseconds(i * 100));  // 0.1us .. 0.9us
  }
  for (double p : {1.0, 25.0, 50.0, 75.0, 99.0, 100.0}) {
    const double v = h.PercentileMicros(p);
    EXPECT_GE(v, 0.1) << "p" << p;
    EXPECT_LE(v, 0.9) << "p" << p;
  }
}

TEST(LatencyHistogramTest, PercentilesBracketedAndMonotoneOnRandomWorkloads) {
  // Property: for any sample set, every percentile estimate lies within
  // [min, max] of the observed samples and is non-decreasing in p.
  std::mt19937 rng(20260806);
  for (int trial = 0; trial < 20; ++trial) {
    LatencyHistogram h;
    // Log-uniform over ~7 decades, crossing the sub-microsecond boundary.
    std::uniform_real_distribution<double> exponent(1.0, 8.0);
    const int n = 1 + static_cast<int>(rng() % 500);
    double min_ns = 0, max_ns = 0;
    for (int i = 0; i < n; ++i) {
      const double ns = std::pow(10.0, exponent(rng));
      if (i == 0 || ns < min_ns) min_ns = ns;
      if (i == 0 || ns > max_ns) max_ns = ns;
      h.Record(std::chrono::nanoseconds(static_cast<int64_t>(ns)));
    }
    double prev = 0;
    for (int p = 1; p <= 100; ++p) {
      const double v = h.PercentileMicros(p);
      EXPECT_GE(v, std::floor(min_ns) / 1000.0) << "trial " << trial << " p" << p;
      EXPECT_LE(v, max_ns / 1000.0) << "trial " << trial << " p" << p;
      EXPECT_GE(v, prev) << "trial " << trial << " p" << p;
      prev = v;
    }
  }
}

TEST(LatencyHistogramTest, MergeEqualsOneCombinedHistogram) {
  // Merge is exact: per-shard histograms folded together must answer every
  // percentile identically to one histogram that saw every sample.
  std::mt19937 rng(20260809);
  std::uniform_real_distribution<double> exponent(1.0, 8.0);
  for (int trial = 0; trial < 10; ++trial) {
    LatencyHistogram shards[4];
    LatencyHistogram combined;
    const int n = 16 + static_cast<int>(rng() % 500);
    for (int i = 0; i < n; ++i) {
      const auto ns = std::chrono::nanoseconds(
          static_cast<int64_t>(std::pow(10.0, exponent(rng))));
      shards[rng() % 4].Record(ns);
      combined.Record(ns);
    }
    LatencyHistogram merged;
    for (const LatencyHistogram& s : shards) merged.Merge(s);
    EXPECT_EQ(merged.count(), combined.count());
    for (int p = 1; p <= 100; ++p) {
      EXPECT_DOUBLE_EQ(merged.PercentileMicros(p), combined.PercentileMicros(p))
          << "trial " << trial << " p" << p;
    }
  }
}

TEST(LatencyHistogramTest, MergeHandlesEmptySides) {
  LatencyHistogram a, b, empty;
  a.Merge(empty);  // no-op
  EXPECT_EQ(a.count(), 0u);
  b.Record(milliseconds(3));
  a.Merge(b);  // empty <- non-empty adopts the extremes
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.PercentileMicros(50), 3000.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.PercentileMicros(99), 3000.0);
}

TEST(MetricsTest, MergeFromAggregatesWithoutDoubleCounting) {
  Metrics a, b;
  a.OnSubmitted();
  a.OnAdmitted();
  a.OnStart();
  engine::QueryResponse response_a;
  response_a.stats.results = 3;
  response_a.stats.shard_fanout = 4;
  response_a.stats.shard_bound_prunes = 10;
  a.OnFinish("XKeyword", Status::OK(), &response_a, milliseconds(2));

  b.OnSubmitted();
  b.OnSubmitted();
  b.OnRejected();
  b.OnAdmitted();
  b.OnStart();
  engine::QueryResponse response_b;
  response_b.stats.results = 5;
  response_b.stats.shard_fanout = 8;
  response_b.stats.shard_early_stops = 2;
  response_b.completeness = Completeness::kDegraded;
  response_b.coverage.cns_executed = 2;
  response_b.coverage.cns_skipped = 1;
  response_b.coverage.exhausted_class = 2;
  b.OnFinish("XKeyword", Status::OK(), &response_b, milliseconds(4));
  b.OnCacheHit();

  a.MergeFrom(b);
  const MetricsSnapshot snap = a.Snapshot();
  EXPECT_EQ(snap.submitted, 3u);
  EXPECT_EQ(snap.rejected, 1u);
  EXPECT_EQ(snap.completed_ok, 2u);
  EXPECT_EQ(snap.cache_hits, 1u);
  EXPECT_EQ(snap.latency_count, 2u);
  EXPECT_EQ(snap.peak_in_flight, 1);  // max, not sum: peaks never add
  ASSERT_TRUE(snap.per_decomposition.contains("XKeyword"));
  EXPECT_EQ(snap.per_decomposition.at("XKeyword").results, 8u);
  EXPECT_EQ(snap.shard_fanout, 12u);
  EXPECT_EQ(snap.shard_bound_prunes, 10u);
  EXPECT_EQ(snap.shard_early_stops, 2u);
  // Degraded count and the per-class coverage histogram merge too.
  EXPECT_EQ(snap.degraded, 1u);
  ASSERT_TRUE(snap.coverage_exhausted_class.contains(2));
  EXPECT_EQ(snap.coverage_exhausted_class.at(2), 1u);
}

// --- Service fixture -----------------------------------------------------

/// DBLP database sized so one expensive query (kExpensive below) takes long
/// enough to observe in-flight overlap and mid-query cancellation, while
/// cheap queries stay in the low milliseconds.
class ServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::DblpConfig config;
    config.num_conferences = 8;
    config.years_per_conference = 5;
    config.avg_papers_per_year = 18;
    config.avg_citations_per_paper = 12.0;
    config.author_vocab = 150;
    config.title_vocab = 150;
    config.seed = 2003;
    db_ = datagen::DblpDatabase::Generate(config).MoveValueUnsafe().release();
    xk_ = engine::XKeyword::Load(&db_->graph(), &db_->schema(), &db_->tss())
              .MoveValueUnsafe()
              .release();
    ASSERT_TRUE(xk_->AddDecomposition(
                       decomp::MakeXKeyword(db_->tss(), /*B=*/2, /*M=*/6)
                           .MoveValueUnsafe())
                    .ok());
  }

  static void TearDownTestSuite() {
    delete xk_;
    xk_ = nullptr;
    delete db_;
    db_ = nullptr;
  }

  /// A cheap request: small networks, top-k bounded.
  static QueryRequest Cheap(const std::vector<std::string>& keywords) {
    QueryRequest request;
    request.keywords = keywords;
    request.decomposition = "XKeyword";
    request.options.max_size_z = 4;
    request.options.per_network_k = 3;
    return request;
  }

  /// An expensive request: the naive (cacheless, serial) executor over the
  /// full network space with effectively unbounded per-network output.
  static QueryRequest Expensive() {
    QueryRequest request;
    request.keywords = {"gray", "codd"};
    request.decomposition = "XKeyword";
    request.mode = QueryMode::kNaive;
    request.options.max_size_z = 6;
    request.options.per_network_k = 1000000;
    return request;
  }

  /// Spins until `predicate` holds or `budget` elapses.
  template <typename Predicate>
  static bool SpinUntil(Predicate predicate, milliseconds budget) {
    const auto deadline = std::chrono::steady_clock::now() + budget;
    while (std::chrono::steady_clock::now() < deadline) {
      if (predicate()) return true;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    return predicate();
  }

  static datagen::DblpDatabase* db_;
  static engine::XKeyword* xk_;
};

datagen::DblpDatabase* ServiceTest::db_ = nullptr;
engine::XKeyword* ServiceTest::xk_ = nullptr;

// --- Unified Run API -----------------------------------------------------

TEST_F(ServiceTest, RunMatchesHelperWrapper) {
  QueryRequest request = Cheap({"gray", "codd"});
  XK_ASSERT_OK_AND_ASSIGN(QueryResponse response, xk_->Run(request));
  EXPECT_TRUE(response.status.ok());
  EXPECT_EQ(response.completeness, Completeness::kComplete);

  engine::ExecutionStats legacy_stats;
  XK_ASSERT_OK_AND_ASSIGN(
      std::vector<present::Mtton> legacy,
      RunTopK(*xk_, request.keywords, request.decomposition, request.options,
                &legacy_stats));
  ASSERT_EQ(response.mttons.size(), legacy.size());
  for (size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(response.mttons[i].objects, legacy[i].objects);
    EXPECT_EQ(response.mttons[i].ctssn_index, legacy[i].ctssn_index);
  }
  EXPECT_EQ(response.stats.probes.probes, legacy_stats.probes.probes);
  EXPECT_EQ(response.stats.results, legacy_stats.results);
}

TEST_F(ServiceTest, TinyDeadlineReturnsDeadlineExceededWithPartialStats) {
  QueryRequest request = Expensive();
  request.deadline = milliseconds(1);
  XK_ASSERT_OK_AND_ASSIGN(QueryResponse response, xk_->Run(request));
  EXPECT_TRUE(response.status.IsDeadlineExceeded()) << response.status.ToString();
  EXPECT_NE(response.completeness, Completeness::kComplete);
  // Partial statistics survive the stop; the full query does far more work.
  engine::ExecutionStats full_stats;
  XK_ASSERT_OK_AND_ASSIGN(
      std::vector<present::Mtton> full,
      RunNaive(*xk_, request.keywords, request.decomposition, request.options,
                     &full_stats));
  EXPECT_LT(response.stats.probes.rows_scanned, full_stats.probes.rows_scanned);
  EXPECT_LE(response.mttons.size(), full.size());
}

TEST_F(ServiceTest, ExternalTokenCancelsSynchronousRun) {
  CancelToken token;
  token.RequestCancel();
  XK_ASSERT_OK_AND_ASSIGN(QueryResponse response,
                          xk_->Run(Expensive(), &token));
  EXPECT_TRUE(response.status.IsCancelled());
  EXPECT_NE(response.completeness, Completeness::kComplete);
}

TEST_F(ServiceTest, InvalidOptionsRejectedBeforeExecution) {
  QueryRequest request = Cheap({"gray"});
  request.options.per_network_k = 0;
  EXPECT_TRUE(xk_->Run(request).status().IsInvalidArgument());
  request = Cheap({"gray"});
  request.options.morsel_size = 0;
  EXPECT_TRUE(xk_->Run(request).status().IsInvalidArgument());
  request = Cheap({"gray"});
  request.options.num_threads = -1;
  EXPECT_TRUE(xk_->Run(request).status().IsInvalidArgument());
  request = Cheap({"gray"});
  request.options.intra_plan_threads = -2;
  EXPECT_TRUE(xk_->Run(request).status().IsInvalidArgument());
  // Shared-subplan execution with a zero byte budget could never materialize
  // anything; Validate rejects the contradiction up front.
  request = Cheap({"gray"});
  request.options.enable_subplan_reuse = true;
  request.options.subplan_cache_budget_bytes = 0;
  EXPECT_TRUE(xk_->Run(request).status().IsInvalidArgument());
}

// --- QueryService --------------------------------------------------------

TEST_F(ServiceTest, ConcurrentSubmitsFromManyThreadsAreDeterministic) {
  QueryServiceOptions options;
  options.num_workers = 4;
  options.queue_capacity = 1024;
  XK_ASSERT_OK_AND_ASSIGN(std::unique_ptr<QueryService> service,
                          QueryService::Create(xk_, options));

  const std::vector<std::vector<std::string>> queries = {
      {"gray", "codd"}, {"ullman", "widom"}, {"garcia", "molina"},
      {"author23", "author31"}};
  // Reference results from the synchronous API.
  std::vector<QueryResponse> expected;
  for (const auto& q : queries) {
    XK_ASSERT_OK_AND_ASSIGN(QueryResponse r, xk_->Run(Cheap(q)));
    expected.push_back(std::move(r));
  }

  constexpr int kThreads = 8;
  constexpr int kPerThread = 6;
  std::vector<std::vector<QueryHandle>> handles(kThreads);
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto handle = service->Submit(Cheap(queries[(t + i) % queries.size()]));
        ASSERT_TRUE(handle.ok()) << handle.status().ToString();
        handles[t].push_back(*handle);
      }
    });
  }
  for (std::thread& t : submitters) t.join();

  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      XK_ASSERT_OK_AND_ASSIGN(QueryResponse response, handles[t][i].Wait());
      EXPECT_TRUE(response.status.ok());
      const QueryResponse& want = expected[(t + i) % queries.size()];
      ASSERT_EQ(response.mttons.size(), want.mttons.size());
      for (size_t m = 0; m < want.mttons.size(); ++m) {
        EXPECT_EQ(response.mttons[m].objects, want.mttons[m].objects);
        EXPECT_EQ(response.mttons[m].ctssn_index, want.mttons[m].ctssn_index);
      }
    }
  }
  const MetricsSnapshot snap = service->metrics().Snapshot();
  EXPECT_EQ(snap.submitted, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(snap.completed_ok, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(snap.rejected, 0u);
  EXPECT_EQ(snap.in_flight, 0);
  EXPECT_EQ(snap.queue_depth, 0);
  EXPECT_EQ(snap.latency_count, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_GT(snap.latency_p99_us, 0);
  EXPECT_GE(snap.latency_p99_us, snap.latency_p50_us);
  ASSERT_TRUE(snap.per_decomposition.contains("XKeyword"));
  EXPECT_GT(snap.per_decomposition.at("XKeyword").probes.probes, 0u);
}

TEST_F(ServiceTest, SubplanCacheStatsFlowIntoMetrics) {
  QueryServiceOptions options;
  options.num_workers = 2;
  XK_ASSERT_OK_AND_ASSIGN(std::unique_ptr<QueryService> service,
                          QueryService::Create(xk_, options));

  // Wide enough network space that several candidate networks share a join
  // prefix; kBypass so each submit actually executes instead of riding the
  // answer cache.
  QueryRequest request;
  request.keywords = {"gray", "codd"};
  request.decomposition = "XKeyword";
  request.options.max_size_z = 6;
  request.options.per_network_k = 100;
  request.cache_mode = engine::CacheMode::kBypass;

  std::vector<QueryHandle> handles;
  for (const auto& keywords : std::vector<std::vector<std::string>>{
           {"gray", "codd"}, {"ullman", "widom"}, {"garcia", "molina"}}) {
    request.keywords = keywords;
    XK_ASSERT_OK_AND_ASSIGN(QueryHandle handle, service->Submit(request));
    handles.push_back(std::move(handle));
  }
  for (QueryHandle& handle : handles) {
    XK_ASSERT_OK_AND_ASSIGN(QueryResponse response, handle.Wait());
    EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  }

  // The plan-DAG counters surface both in the per-decomposition engine stats
  // and as serving-level totals.
  const MetricsSnapshot snap = service->metrics().Snapshot();
  ASSERT_TRUE(snap.per_decomposition.contains("XKeyword"));
  const engine::ExecutionStats& stats = snap.per_decomposition.at("XKeyword");
  EXPECT_GT(stats.subplan_misses, 0u);
  EXPECT_GT(stats.subplan_hits, 0u);
  EXPECT_GT(stats.subplan_bytes, 0u);
  EXPECT_GT(stats.dedup_saved_rows, 0u);
  EXPECT_EQ(snap.subplan_hits, stats.subplan_hits);
  EXPECT_EQ(snap.subplan_misses, stats.subplan_misses);
  EXPECT_EQ(snap.subplan_bytes, stats.subplan_bytes);
  EXPECT_EQ(snap.dedup_saved_rows, stats.dedup_saved_rows);
}

TEST_F(ServiceTest, SustainsEightConcurrentInFlightQueries) {
  QueryServiceOptions options;
  options.num_workers = 8;
  options.queue_capacity = 64;
  XK_ASSERT_OK_AND_ASSIGN(std::unique_ptr<QueryService> service,
                          QueryService::Create(xk_, options));

  XK_ASSERT_OK_AND_ASSIGN(QueryResponse expected, xk_->Run(Expensive()));

  // kBypass: this test wants eight *independent* executions in flight, not
  // one leader plus seven coalesced followers.
  QueryRequest independent = Expensive();
  independent.cache_mode = engine::CacheMode::kBypass;
  std::vector<QueryHandle> handles;
  for (int i = 0; i < 8; ++i) {
    auto handle = service->Submit(independent);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    handles.push_back(*handle);
  }
  // All eight workers pick up a query long before any expensive query ends.
  EXPECT_TRUE(SpinUntil([&] { return service->metrics().in_flight() >= 8; },
                        milliseconds(10000)));
  EXPECT_GE(service->metrics().peak_in_flight(), 8);

  for (QueryHandle& handle : handles) {
    XK_ASSERT_OK_AND_ASSIGN(QueryResponse response, handle.Wait());
    EXPECT_TRUE(response.status.ok()) << response.status.ToString();
    ASSERT_EQ(response.mttons.size(), expected.mttons.size());
    for (size_t m = 0; m < expected.mttons.size(); ++m) {
      EXPECT_EQ(response.mttons[m].objects, expected.mttons[m].objects);
    }
  }
  EXPECT_EQ(service->metrics().Snapshot().completed_ok, 8u);
}

TEST_F(ServiceTest, DeadlineExceededThroughServiceKeepsPartialStats) {
  QueryServiceOptions options;
  options.num_workers = 2;
  XK_ASSERT_OK_AND_ASSIGN(std::unique_ptr<QueryService> service,
                          QueryService::Create(xk_, options));
  QueryRequest request = Expensive();
  request.deadline = milliseconds(1);
  XK_ASSERT_OK_AND_ASSIGN(QueryHandle handle, service->Submit(request));
  XK_ASSERT_OK_AND_ASSIGN(QueryResponse response, handle.Wait());
  EXPECT_TRUE(response.status.IsDeadlineExceeded()) << response.status.ToString();
  EXPECT_NE(response.completeness, Completeness::kComplete);
  const MetricsSnapshot snap = service->metrics().Snapshot();
  EXPECT_EQ(snap.deadline_exceeded, 1u);
  EXPECT_EQ(snap.completed_ok, 0u);
}

TEST_F(ServiceTest, CancelMidQueryReturnsCancelled) {
  QueryServiceOptions options;
  options.num_workers = 1;
  XK_ASSERT_OK_AND_ASSIGN(std::unique_ptr<QueryService> service,
                          QueryService::Create(xk_, options));
  XK_ASSERT_OK_AND_ASSIGN(QueryHandle handle, service->Submit(Expensive()));
  // Let the worker actually start before cancelling.
  EXPECT_TRUE(SpinUntil([&] { return service->metrics().in_flight() >= 1; },
                        milliseconds(10000)));
  handle.Cancel();
  XK_ASSERT_OK_AND_ASSIGN(QueryResponse response, handle.Wait());
  EXPECT_TRUE(response.status.IsCancelled()) << response.status.ToString();
  EXPECT_NE(response.completeness, Completeness::kComplete);
  EXPECT_EQ(service->metrics().Snapshot().cancelled, 1u);
}

TEST_F(ServiceTest, CoalescedFollowerDeadlineExpiryDetachesUnderLoad) {
  QueryServiceOptions options;
  options.num_workers = 1;
  options.queue_capacity = 64;
  XK_ASSERT_OK_AND_ASSIGN(std::unique_ptr<QueryService> service,
                          QueryService::Create(xk_, options));

  // Park a convoy of bypass queries on the only worker so the leader below
  // is admitted (and registered for coalescing) but never starts executing
  // while the followers' deadlines run out. This keeps the test independent
  // of how fast one expensive query happens to finish on this machine.
  QueryRequest blocker_request = Expensive();
  blocker_request.cache_mode = engine::CacheMode::kBypass;
  std::vector<QueryHandle> blockers;
  for (int i = 0; i < 16; ++i) {
    XK_ASSERT_OK_AND_ASSIGN(QueryHandle blocker,
                            service->Submit(blocker_request));
    blockers.push_back(std::move(blocker));
  }
  XK_ASSERT_OK_AND_ASSIGN(QueryHandle leader, service->Submit(Expensive()));

  // Followers: the identical request (the deadline is not part of the
  // coalescing key) with a short wall-clock budget. No executor ever polls
  // a follower's token, so QueryHandle::Wait itself must observe the expiry
  // and detach — the self-detach path at the bottom of Wait's loop.
  constexpr int kFollowers = 8;
  QueryRequest follower_request = Expensive();
  follower_request.deadline = milliseconds(20);
  std::vector<QueryHandle> followers;
  for (int i = 0; i < kFollowers; ++i) {
    XK_ASSERT_OK_AND_ASSIGN(QueryHandle handle,
                            service->Submit(follower_request));
    followers.push_back(std::move(handle));
  }
  EXPECT_EQ(service->metrics().coalesced(),
            static_cast<uint64_t>(kFollowers));

  // Wait on every follower from its own thread: the expiries race their
  // concurrent detaches against each other and against the (still running)
  // leader.
  std::vector<std::thread> waiters;
  std::vector<Status> outcomes(kFollowers);
  for (int i = 0; i < kFollowers; ++i) {
    waiters.emplace_back([&, i] {
      Result<QueryResponse> result = followers[static_cast<size_t>(i)].Wait();
      outcomes[static_cast<size_t>(i)] =
          result.ok() ? result.value().status : result.status();
    });
  }
  for (std::thread& waiter : waiters) waiter.join();
  for (int i = 0; i < kFollowers; ++i) {
    EXPECT_TRUE(outcomes[static_cast<size_t>(i)].IsDeadlineExceeded())
        << "follower " << i << ": "
        << outcomes[static_cast<size_t>(i)].ToString();
  }

  // The detaches never touched the shared execution: the leader is still
  // queued behind the convoy, untouched.
  EXPECT_FALSE(leader.Done());

  // Drain: cancel everything still pending and confirm the leader completes
  // as cancelled, not as deadline-exceeded.
  leader.Cancel();
  for (const QueryHandle& blocker : blockers) blocker.Cancel();
  XK_ASSERT_OK_AND_ASSIGN(QueryResponse leader_response, leader.Wait());
  EXPECT_TRUE(leader_response.status.IsCancelled())
      << leader_response.status.ToString();
  for (const QueryHandle& blocker : blockers) {
    XK_ASSERT_OK_AND_ASSIGN(QueryResponse drained, blocker.Wait());
    EXPECT_TRUE(drained.status.ok() || drained.status.IsCancelled())
        << drained.status.ToString();
  }

  const MetricsSnapshot snap = service->metrics().Snapshot();
  EXPECT_EQ(snap.deadline_exceeded, static_cast<uint64_t>(kFollowers));
  EXPECT_EQ(snap.coalesced, static_cast<uint64_t>(kFollowers));
  EXPECT_GE(snap.cancelled, 1u);
}

TEST_F(ServiceTest, QueueFullReturnsResourceExhausted) {
  QueryServiceOptions options;
  options.num_workers = 1;
  options.queue_capacity = 1;
  XK_ASSERT_OK_AND_ASSIGN(std::unique_ptr<QueryService> service,
                          QueryService::Create(xk_, options));

  // kBypass keeps the three identical requests from coalescing — admission
  // control is what's under test here.
  QueryRequest independent = Expensive();
  independent.cache_mode = engine::CacheMode::kBypass;
  // First query occupies the only worker...
  XK_ASSERT_OK_AND_ASSIGN(QueryHandle running, service->Submit(independent));
  ASSERT_TRUE(SpinUntil([&] { return service->metrics().in_flight() >= 1; },
                        milliseconds(10000)));
  // ...the second fills the queue, the third must be rejected.
  XK_ASSERT_OK_AND_ASSIGN(QueryHandle queued, service->Submit(independent));
  Result<QueryHandle> rejected = service->Submit(independent);
  EXPECT_TRUE(rejected.status().IsResourceExhausted())
      << rejected.status().ToString();
  EXPECT_GE(service->metrics().rejected(), 1u);

  running.Cancel();
  queued.Cancel();
  XK_ASSERT_OK_AND_ASSIGN(QueryResponse r1, running.Wait());
  XK_ASSERT_OK_AND_ASSIGN(QueryResponse r2, queued.Wait());
  EXPECT_TRUE(r1.status.IsCancelled());
  EXPECT_TRUE(r2.status.IsCancelled());
}

TEST_F(ServiceTest, ShutdownCancelsLiveQueriesAndRejectsNewOnes) {
  QueryServiceOptions options;
  options.num_workers = 2;
  XK_ASSERT_OK_AND_ASSIGN(std::unique_ptr<QueryService> service,
                          QueryService::Create(xk_, options));
  XK_ASSERT_OK_AND_ASSIGN(QueryHandle handle, service->Submit(Expensive()));
  service->Shutdown();
  XK_ASSERT_OK_AND_ASSIGN(QueryResponse response, handle.Wait());
  // Either the worker observed the cancel, or the query happened to finish.
  EXPECT_TRUE(response.status.IsCancelled() || response.status.ok());
  EXPECT_TRUE(service->Submit(Cheap({"gray"})).status().IsAborted());
  service->Shutdown();  // idempotent
}

TEST_F(ServiceTest, SubmitRacingShutdownNeverLosesAQuery) {
  // Regression: Submit used to hand the query to the pool after releasing
  // the service mutex, so a racing Shutdown could return from pool_->Wait()
  // with an admitted query still on its way into the queue. Every Submit
  // must either be rejected (kAborted/kResourceExhausted) or complete.
  for (int round = 0; round < 20; ++round) {
    QueryServiceOptions options;
    options.num_workers = 2;
    options.queue_capacity = 64;
    XK_ASSERT_OK_AND_ASSIGN(std::unique_ptr<QueryService> service,
                            QueryService::Create(xk_, options));
    constexpr int kThreads = 4;
    constexpr int kPerThread = 8;
    std::atomic<int> admitted{0};
    std::vector<std::thread> submitters;
    submitters.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      submitters.emplace_back([&] {
        for (int i = 0; i < kPerThread; ++i) {
          Result<QueryHandle> handle = service->Submit(Cheap({"gray"}));
          if (!handle.ok()) {
            EXPECT_TRUE(handle.status().IsAborted() ||
                        handle.status().IsResourceExhausted())
                << handle.status().ToString();
            continue;
          }
          ++admitted;
          // Every admitted handle completes — Wait never hangs on a query
          // the shutdown-drained pool silently dropped.
          EXPECT_TRUE(handle->Wait().ok());
        }
      });
    }
    service->Shutdown();  // races the submitters
    for (std::thread& t : submitters) t.join();
    EXPECT_EQ(service->metrics().finished(),
              static_cast<uint64_t>(admitted.load()));
  }
}

TEST_F(ServiceTest, WaitIsRepeatableAndHandlesAreCopyable) {
  QueryServiceOptions options;
  XK_ASSERT_OK_AND_ASSIGN(std::unique_ptr<QueryService> service,
                          QueryService::Create(xk_, options));
  XK_ASSERT_OK_AND_ASSIGN(QueryHandle handle,
                          service->Submit(Cheap({"gray", "codd"})));
  QueryHandle copy = handle;
  XK_ASSERT_OK_AND_ASSIGN(QueryResponse first, handle.Wait());
  XK_ASSERT_OK_AND_ASSIGN(QueryResponse second, copy.Wait());
  EXPECT_TRUE(copy.Done());
  EXPECT_EQ(first.mttons.size(), second.mttons.size());
  EXPECT_EQ(handle.id(), copy.id());
}

TEST(QueryServiceOptionsTest, CreateValidatesOptions) {
  QueryServiceOptions bad_workers;
  bad_workers.num_workers = 0;
  EXPECT_TRUE(QueryServiceOptions{bad_workers}.Validate().IsInvalidArgument());
  QueryServiceOptions bad_queue;
  bad_queue.queue_capacity = 0;
  EXPECT_TRUE(bad_queue.Validate().IsInvalidArgument());
  EXPECT_TRUE(QueryService::Create(nullptr).status().IsInvalidArgument());
}

}  // namespace
}  // namespace xk::service
