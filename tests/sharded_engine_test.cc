// Differential harness for the sharded scale-out data plane: for randomized
// DBLP instances (TEST_P over generator seeds) and the hand-built Figure-1
// TPC-H instance, ShardedEngine must return results BYTE-IDENTICAL to the
// single-instance XKeyword oracle — same Mtton vectors, element for element —
// across shard counts {1,2,3,4,8,16}, both kTopK and kAll, and every
// result-affecting knob combination (vectorized on/off, subplan reuse +
// cost-ordered scheduling on/off, intra-plan morsel parallelism, per-network
// and global k bounds, watermark pushdown on/off). Plus partition invariants
// of the slices themselves and the shard counters' plumbing.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "datagen/dblp_gen.h"
#include "engine/sharded_engine.h"
#include "engine/xkeyword.h"
#include "test_util.h"

namespace xk {
namespace {

using engine::QueryMode;
using engine::QueryOptions;
using engine::QueryRequest;
using engine::QueryResponse;
using engine::ShardedEngine;
using engine::ShardedEngineOptions;
using engine::XKeyword;
using present::Mtton;

QueryRequest MakeRequest(const std::vector<std::string>& keywords,
                         QueryMode mode, const QueryOptions& options) {
  QueryRequest request;
  request.keywords = keywords;
  request.decomposition = "XKeyword";
  request.mode = mode;
  request.options = options;
  return request;
}

/// Runs `request` on both engines and expects byte-identical Mtton vectors.
void ExpectIdentical(const XKeyword& oracle, const ShardedEngine& sharded,
                     const QueryRequest& request, const std::string& what) {
  auto expected = oracle.Run(request);
  auto actual = sharded.Run(request);
  ASSERT_TRUE(expected.ok()) << what << ": " << expected.status().ToString();
  ASSERT_TRUE(actual.ok()) << what << ": " << actual.status().ToString();
  ASSERT_TRUE(expected.value().status.ok()) << what;
  ASSERT_TRUE(actual.value().status.ok()) << what;
  EXPECT_EQ(expected.value().mttons, actual.value().mttons) << what;
}

class ShardedDifferential : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    datagen::DblpConfig config;
    config.num_conferences = 3;
    config.years_per_conference = 3;
    config.avg_papers_per_year = 6;
    config.avg_citations_per_paper = 3.0;
    config.author_vocab = 25;
    config.title_vocab = 30;
    config.seed = static_cast<uint64_t>(GetParam());
    db_ = datagen::DblpDatabase::Generate(config).MoveValueUnsafe();
    oracle_ = XKeyword::Load(&db_->graph(), &db_->schema(), &db_->tss())
                  .MoveValueUnsafe();
    XK_ASSERT_OK(oracle_->AddDecomposition(
        decomp::MakeXKeyword(db_->tss(), /*B=*/2, /*M=*/4).MoveValueUnsafe()));
    for (int slices : {1, 2, 4, 8}) {
      ShardedEngineOptions options;
      options.num_slices = slices;
      auto sharded = ShardedEngine::Load(&db_->graph(), &db_->schema(),
                                         &db_->tss(), options)
                         .MoveValueUnsafe();
      XK_ASSERT_OK(sharded->AddDecomposition(
          decomp::MakeXKeyword(db_->tss(), /*B=*/2, /*M=*/4).MoveValueUnsafe()));
      sharded_[slices] = std::move(sharded);
    }

    Random rng(config.seed * 31 + 7);
    for (int i = 0; i < 3; ++i) {
      queries_.push_back(
          {rng.Pick(db_->author_names()), rng.Pick(db_->title_words())});
    }
  }

  std::unique_ptr<datagen::DblpDatabase> db_;
  std::unique_ptr<XKeyword> oracle_;
  std::map<int, std::unique_ptr<ShardedEngine>> sharded_;
  std::vector<std::vector<std::string>> queries_;
};

/// The core matrix on the 8-slice engine: shard counts that divide, group
/// (3 groups of 8 slices), exceed (16 > 8) the slice count, times both modes
/// and both k bounds. Oracle runs serial (num_threads = 1) so a global_k
/// budget consumes plans in the deterministic schedule the gather replays.
TEST_P(ShardedDifferential, MatchesOracleAcrossShardCounts) {
  for (const auto& q : queries_) {
    for (int num_shards : {1, 2, 3, 4, 8, 16}) {
      for (size_t per_network_k : {size_t{10}, size_t{100}}) {
        for (size_t global_k : {size_t{0}, size_t{7}}) {
          QueryOptions options;
          options.max_size_z = 4;
          options.num_threads = 1;
          options.per_network_k = per_network_k;
          options.global_k = global_k;
          options.num_shards = num_shards;
          const std::string what =
              q[0] + " " + q[1] + " shards=" + std::to_string(num_shards) +
              " k=" + std::to_string(per_network_k) +
              " g=" + std::to_string(global_k);
          ExpectIdentical(*oracle_, *sharded_[8],
                          MakeRequest(q, QueryMode::kTopK, options),
                          what + " topk");
          ExpectIdentical(*oracle_, *sharded_[8],
                          MakeRequest(q, QueryMode::kAll, options),
                          what + " all");
        }
      }
    }
  }
}

/// Every loaded slice count against the oracle, default-ish options.
TEST_P(ShardedDifferential, MatchesOracleAcrossSliceCounts) {
  for (const auto& q : queries_) {
    for (const auto& [slices, engine] : sharded_) {
      QueryOptions options;
      options.max_size_z = 4;
      options.num_threads = 1;
      options.num_shards = slices;
      const std::string what =
          q[0] + " " + q[1] + " slices=" + std::to_string(slices);
      ExpectIdentical(*oracle_, *engine,
                      MakeRequest(q, QueryMode::kTopK, options), what + " topk");
      ExpectIdentical(*oracle_, *engine,
                      MakeRequest(q, QueryMode::kAll, options), what + " all");
    }
  }
}

/// Result-affecting knobs A/B'd one at a time on the 4-slice engine: the
/// sharded plan schedule must track the oracle's under every combination.
TEST_P(ShardedDifferential, MatchesOracleAcrossKnobs) {
  struct Variant {
    const char* name;
    void (*apply)(QueryOptions*);
  };
  const Variant variants[] = {
      {"row_at_a_time", [](QueryOptions* o) { o->vectorized = false; }},
      {"no_reuse", [](QueryOptions* o) { o->enable_subplan_reuse = false; }},
      {"legacy_schedule",
       [](QueryOptions* o) { o->cost_ordered_scheduling = false; }},
      {"no_cache", [](QueryOptions* o) { o->enable_cache = false; }},
      {"no_bloom",
       [](QueryOptions* o) { o->enable_semijoin_pruning = false; }},
      {"no_pushdown",
       [](QueryOptions* o) { o->shard_bound_pushdown = false; }},
      {"narrow_pool", [](QueryOptions* o) { o->shard_parallelism = 2; }},
      {"intra_plan",
       [](QueryOptions* o) { o->intra_plan_threads = 4; o->morsel_size = 8; }},
      {"tight_global_k", [](QueryOptions* o) { o->global_k = 3; }},
  };
  for (const auto& q : queries_) {
    for (const Variant& v : variants) {
      QueryOptions options;
      options.max_size_z = 4;
      options.num_threads = 1;
      options.num_shards = 4;
      v.apply(&options);
      const std::string what = q[0] + " " + q[1] + " " + v.name;
      ExpectIdentical(*oracle_, *sharded_[4],
                      MakeRequest(q, QueryMode::kTopK, options), what + " topk");
      ExpectIdentical(*oracle_, *sharded_[4],
                      MakeRequest(q, QueryMode::kAll, options), what + " all");
    }
  }
}

/// The slices partition the instance: contiguous ID ranges covering the
/// object space; master-index postings and BLOBs land in exactly the owning
/// shard; every connection relation's rows split by anchor with ascending,
/// disjoint row maps that reassemble the global row sequence.
TEST_P(ShardedDifferential, SlicesPartitionTheInstance) {
  const ShardedEngine& se = *sharded_[4];
  const XKeyword& inner = se.inner();
  const storage::ObjectId num_objects = inner.objects().NumObjects();

  storage::ObjectId expect_begin = 0;
  size_t postings = 0;
  size_t blobs = 0;
  for (int s = 0; s < se.num_slices(); ++s) {
    const engine::ShardLocalEngine& shard = se.shard(s);
    EXPECT_EQ(shard.range().begin, expect_begin);
    EXPECT_LT(shard.range().begin, shard.range().end);
    expect_begin = shard.range().end;
    postings += shard.master_index().NumPostings();
    for (storage::ObjectId id = shard.range().begin; id < shard.range().end;
         ++id) {
      if (inner.catalog().blob_store().Contains(id)) {
        EXPECT_TRUE(shard.blob_store().Contains(id));
        ++blobs;
      }
    }
  }
  EXPECT_EQ(expect_begin, num_objects);
  EXPECT_EQ(postings, inner.master_index().NumPostings());
  size_t global_blobs = 0;
  for (storage::ObjectId id = 0; id < num_objects; ++id) {
    if (inner.catalog().blob_store().Contains(id)) ++global_blobs;
  }
  EXPECT_EQ(blobs, global_blobs);

  for (const std::string& name : inner.catalog().TableNames()) {
    XK_ASSERT_OK_AND_ASSIGN(const storage::Table* table,
                            inner.catalog().GetTable(name));
    std::vector<storage::RowId> reassembled;
    for (int s = 0; s < se.num_slices(); ++s) {
      const auto& shard =
          dynamic_cast<const engine::SlicedShard&>(se.shard(s));
      const storage::Table* slice = shard.SliceOf(table);
      ASSERT_NE(slice, nullptr) << name;
      auto row_map = shard.RowMapOf(table);
      ASSERT_EQ(slice->NumRows(), row_map.size()) << name;
      for (size_t r = 0; r < row_map.size(); ++r) {
        if (r > 0) EXPECT_LT(row_map[r - 1], row_map[r]) << name;
        // Slice row r is the global row it maps to, and its anchor is owned.
        const storage::TupleView sv = slice->Row(static_cast<storage::RowId>(r));
        const storage::TupleView gv = table->Row(row_map[r]);
        EXPECT_EQ(storage::Tuple(sv.begin(), sv.end()),
                  storage::Tuple(gv.begin(), gv.end()))
            << name;
        EXPECT_TRUE(shard.range().Contains(sv[0])) << name;
        reassembled.push_back(row_map[r]);
      }
    }
    std::vector<storage::RowId> all(table->NumRows());
    for (size_t r = 0; r < all.size(); ++r) all[r] = static_cast<storage::RowId>(r);
    std::sort(reassembled.begin(), reassembled.end());
    EXPECT_EQ(reassembled, all) << name;
  }
}

/// The scatter-gather counters flow through ExecutionStats: fan-out counts
/// groups per evaluated plan, pushdown prunes only exist when enabled.
TEST_P(ShardedDifferential, ShardCountersAreWired) {
  QueryOptions options;
  options.max_size_z = 4;
  options.num_threads = 1;
  options.num_shards = 4;
  options.per_network_k = 1;  // tight bound => the watermark actually bites
  for (const auto& q : queries_) {
    XK_ASSERT_OK_AND_ASSIGN(
        QueryResponse response,
        sharded_[4]->Run(MakeRequest(q, QueryMode::kTopK, options)));
    if (response.mttons.empty()) continue;
    EXPECT_GT(response.stats.shard_fanout, 0u);

    options.shard_bound_pushdown = false;
    XK_ASSERT_OK_AND_ASSIGN(
        QueryResponse off,
        sharded_[4]->Run(MakeRequest(q, QueryMode::kTopK, options)));
    options.shard_bound_pushdown = true;
    EXPECT_EQ(off.stats.shard_bound_prunes, 0u);
    EXPECT_EQ(response.mttons, off.mttons);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedDifferential, ::testing::Values(7, 42));

// --- Figure-1 (TPC-H) dataset --------------------------------------------

TEST(ShardedFigure1Test, MatchesOracleOnTpchInstance) {
  auto db = testing::MakeFigure1Database();
  auto oracle =
      XKeyword::Load(&db->graph, &db->schema, db->tss.get()).MoveValueUnsafe();
  XK_ASSERT_OK(oracle->AddDecomposition(
      decomp::MakeXKeyword(*db->tss, /*B=*/2, /*M=*/4).MoveValueUnsafe()));
  ShardedEngineOptions engine_options;
  engine_options.num_slices = 8;
  auto sharded = ShardedEngine::Load(&db->graph, &db->schema, db->tss.get(),
                                     engine_options)
                     .MoveValueUnsafe();
  XK_ASSERT_OK(sharded->AddDecomposition(
      decomp::MakeXKeyword(*db->tss, /*B=*/2, /*M=*/4).MoveValueUnsafe()));

  const std::vector<std::vector<std::string>> queries = {
      {"john", "vcr"}, {"john", "tv"}, {"mike", "vcr"}};
  for (const auto& q : queries) {
    for (int num_shards : {2, 4, 8}) {
      QueryOptions options;
      options.max_size_z = 4;
      options.num_threads = 1;
      options.per_network_k = 100;
      options.num_shards = num_shards;
      const std::string what =
          q[0] + " " + q[1] + " shards=" + std::to_string(num_shards);
      ExpectIdentical(*oracle, *sharded,
                      MakeRequest(q, QueryMode::kTopK, options), what + " topk");
      ExpectIdentical(*oracle, *sharded,
                      MakeRequest(q, QueryMode::kAll, options), what + " all");
    }
  }
}

TEST(ShardedFigure1Test, SingleShardAndNaiveDelegateToInner) {
  auto db = testing::MakeFigure1Database();
  auto sharded = ShardedEngine::Load(&db->graph, &db->schema, db->tss.get())
                     .MoveValueUnsafe();
  XK_ASSERT_OK(sharded->AddDecomposition(
      decomp::MakeXKeyword(*db->tss, /*B=*/2, /*M=*/4).MoveValueUnsafe()));

  QueryOptions options;
  options.max_size_z = 4;
  options.num_threads = 1;
  QueryRequest request =
      MakeRequest({"john", "vcr"}, QueryMode::kTopK, options);
  XK_ASSERT_OK_AND_ASSIGN(QueryResponse one, sharded->Run(request));
  XK_ASSERT_OK_AND_ASSIGN(QueryResponse inner, sharded->inner().Run(request));
  EXPECT_EQ(one.mttons, inner.mttons);
  EXPECT_EQ(one.stats.shard_fanout, 0u);  // delegated, never scattered

  request.mode = QueryMode::kNaive;
  request.options.num_shards = 4;
  XK_ASSERT_OK_AND_ASSIGN(QueryResponse naive, sharded->Run(request));
  XK_ASSERT_OK_AND_ASSIGN(QueryResponse naive_inner,
                          sharded->inner().Run(request));
  EXPECT_EQ(naive.mttons, naive_inner.mttons);
  EXPECT_EQ(naive.stats.shard_fanout, 0u);
}

TEST(ShardedFigure1Test, ValidateRejectsBadShardOptions) {
  auto db = testing::MakeFigure1Database();
  auto sharded = ShardedEngine::Load(&db->graph, &db->schema, db->tss.get())
                     .MoveValueUnsafe();
  XK_ASSERT_OK(sharded->AddDecomposition(
      decomp::MakeXKeyword(*db->tss, /*B=*/2, /*M=*/4).MoveValueUnsafe()));

  QueryOptions bad_shards;
  bad_shards.num_shards = 0;
  EXPECT_TRUE(bad_shards.Validate().IsInvalidArgument());
  QueryOptions bad_parallelism;
  bad_parallelism.shard_parallelism = -1;
  EXPECT_TRUE(bad_parallelism.Validate().IsInvalidArgument());

  // The full Run path rejects them in Prepare, before any work happens.
  QueryRequest request = MakeRequest({"john", "vcr"}, QueryMode::kTopK, {});
  request.options.num_shards = 2;  // sharded path...
  request.options.shard_parallelism = -1;  // ...with a nonsensical pool
  EXPECT_TRUE(sharded->Run(request).status().IsInvalidArgument());
  request.options.shard_parallelism = 0;
  request.options.num_shards = -3;
  EXPECT_TRUE(sharded->inner().Run(request).status().IsInvalidArgument());
}

}  // namespace
}  // namespace xk
