// Unit tests for the common runtime: Status/Result, strings, random, cache.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "common/cancel_token.h"
#include "common/logging.h"
#include "common/lru_cache.h"
#include "common/random.h"
#include "common/result.h"
#include "common/simd.h"
#include "common/simd_internal.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "storage/tuple.h"
#include "test_util.h"

namespace xk {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status st = Status::NotFound("table foo");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "table foo");
  EXPECT_EQ(st.ToString(), "not found: table foo");
}

TEST(StatusTest, AllCodesRoundTripThroughToString) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsDeadlineExceeded());
  EXPECT_TRUE(Status::Cancelled("x").IsCancelled());
}

TEST(StatusTest, ServingCodesCarryCodeAndMessage) {
  Status deadline = Status::DeadlineExceeded("budget spent");
  EXPECT_FALSE(deadline.ok());
  EXPECT_EQ(deadline.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(deadline.ToString(), "deadline exceeded: budget spent");
  EXPECT_FALSE(deadline.IsCancelled());

  Status cancelled = Status::Cancelled("caller gave up");
  EXPECT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.code(), StatusCode::kCancelled);
  EXPECT_EQ(cancelled.ToString(), "cancelled: caller gave up");
  EXPECT_FALSE(cancelled.IsDeadlineExceeded());
}

TEST(CancelTokenTest, FreshTokenRequestsNothing) {
  CancelToken token;
  EXPECT_FALSE(token.cancel_requested());
  EXPECT_FALSE(token.has_deadline());
  EXPECT_FALSE(token.deadline_exceeded());
  EXPECT_FALSE(token.StopRequested());
  EXPECT_TRUE(token.ToStatus().ok());
}

TEST(CancelTokenTest, CancelIsStickyAndMapsToCancelled) {
  CancelToken token;
  token.RequestCancel();
  EXPECT_TRUE(token.cancel_requested());
  EXPECT_TRUE(token.StopRequested());
  EXPECT_TRUE(token.ToStatus().IsCancelled());
}

TEST(CancelTokenTest, ExpiredDeadlineMapsToDeadlineExceeded) {
  CancelToken token;
  token.SetDeadline(std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(1));
  EXPECT_TRUE(token.has_deadline());
  EXPECT_TRUE(token.deadline_exceeded());
  EXPECT_TRUE(token.StopRequested());
  EXPECT_TRUE(token.ToStatus().IsDeadlineExceeded());
}

TEST(CancelTokenTest, FutureDeadlineDoesNotStop) {
  CancelToken token;
  token.SetDeadlineAfter(std::chrono::hours(1));
  EXPECT_TRUE(token.has_deadline());
  EXPECT_FALSE(token.StopRequested());
  EXPECT_TRUE(token.ToStatus().ok());
}

TEST(CancelTokenTest, NonPositiveBudgetIsIgnored) {
  CancelToken token;
  token.SetDeadlineAfter(std::chrono::nanoseconds(0));
  token.SetDeadlineAfter(std::chrono::milliseconds(-5));
  EXPECT_FALSE(token.has_deadline());
}

TEST(CancelTokenTest, CancelWinsOverExpiredDeadline) {
  CancelToken token;
  token.SetDeadline(std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(1));
  token.RequestCancel();
  EXPECT_TRUE(token.ToStatus().IsCancelled());
}

TEST(CancelTokenTest, ZeroNanosDeadlineStaysArmed) {
  // Regression: a time point whose nanos-since-epoch is exactly 0 used to
  // store the "no deadline armed" sentinel, silently disarming the deadline.
  // It must instead behave like any other past deadline.
  CancelToken token;
  token.SetDeadline(std::chrono::steady_clock::time_point(
      std::chrono::nanoseconds(0)));
  EXPECT_TRUE(token.has_deadline());
  EXPECT_TRUE(token.deadline_exceeded());
  EXPECT_TRUE(token.StopRequested());
  EXPECT_TRUE(token.ToStatus().IsDeadlineExceeded());
}

TEST(CancelTokenTest, ZeroNanosDeadlineCannotDisarmEarlierDeadline) {
  CancelToken token;
  token.SetDeadline(std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(1));
  ASSERT_TRUE(token.deadline_exceeded());
  token.SetDeadline(std::chrono::steady_clock::time_point(
      std::chrono::nanoseconds(0)));
  EXPECT_TRUE(token.has_deadline());
  EXPECT_TRUE(token.deadline_exceeded());
}

TEST(CancelTokenTest, DeadlinePollsAgreeAcrossThreads) {
  // deadline_exceeded() and has_deadline() must observe the same armed state
  // (both acquire, pairing with SetDeadline's release): a thread that sees
  // StopRequested() must also see has_deadline().
  CancelToken token;
  std::atomic<bool> done{false};
  std::thread poller([&] {
    while (!done.load(std::memory_order_acquire)) {
      if (token.deadline_exceeded()) {
        EXPECT_TRUE(token.has_deadline());
        break;
      }
    }
  });
  token.SetDeadline(std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  done.store(true, std::memory_order_release);
  poller.join();
  EXPECT_TRUE(token.deadline_exceeded());
}

TEST(StatusTest, CopyPreservesState) {
  Status st = Status::Corruption("bad xml");
  Status copy = st;        // NOLINT(performance-unnecessary-copy-initialization)
  st = Status::OK();
  EXPECT_TRUE(copy.IsCorruption());
  EXPECT_EQ(copy.message(), "bad xml");
  EXPECT_TRUE(st.ok());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    XK_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsInternal());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.ValueOr(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = r.MoveValueUnsafe();
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto get = [](bool ok) -> Result<int> {
    if (ok) return 3;
    return Status::Internal("x");
  };
  auto sum = [&](bool ok) -> Result<int> {
    XK_ASSIGN_OR_RETURN(int a, get(ok));
    XK_ASSIGN_OR_RETURN(int b, get(true));
    return a + b;
  };
  XK_ASSERT_OK_AND_ASSIGN(int six, sum(true));
  EXPECT_EQ(six, 6);
  EXPECT_TRUE(sum(false).status().IsInternal());
}

TEST(StringsTest, SplitAndJoin) {
  EXPECT_EQ(Split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Join({"x", "y", "z"}, "::"), "x::y::z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, ToLowerAsciiOnly) {
  EXPECT_EQ(ToLower("VCR and Dvd"), "vcr and dvd");
}

TEST(StringsTest, TokenizeSplitsOnNonAlnum) {
  EXPECT_EQ(Tokenize("Set of VCR-and/DVD!"),
            (std::vector<std::string>{"set", "of", "vcr", "and", "dvd"}));
  EXPECT_TRUE(Tokenize(" .,;").empty());
  EXPECT_EQ(Tokenize("2002-10-01"), (std::vector<std::string>{"2002", "10", "01"}));
}

TEST(StringsTest, ContainsTokenIsWholeWordCaseInsensitive) {
  EXPECT_TRUE(ContainsToken("set of VCR and DVD", "vcr"));
  EXPECT_TRUE(ContainsToken("set of VCR and DVD", "DVD"));
  EXPECT_FALSE(ContainsToken("recorder", "record"));  // not whole word
  EXPECT_FALSE(ContainsToken("anything", ""));
  EXPECT_TRUE(ContainsToken("vcr", "vcr"));  // token at end of string
}

TEST(StringsTest, TrimAndAffixes) {
  EXPECT_EQ(Trim("  x y\t\n"), "x y");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_TRUE(StartsWith("person", "per"));
  EXPECT_FALSE(StartsWith("per", "person"));
  EXPECT_TRUE(EndsWith("lineitem", "item"));
  EXPECT_FALSE(EndsWith("item", "lineitem"));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%s", std::string(500, 'a').c_str()), std::string(500, 'a'));
}

TEST(LruCacheTest, PutGetAndEvictionOrder) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  ASSERT_NE(cache.Get(1), nullptr);  // refresh 1; now 2 is LRU
  cache.Put(3, 30);                  // evicts 2
  EXPECT_NE(cache.Get(1), nullptr);
  EXPECT_EQ(cache.Get(2), nullptr);
  EXPECT_NE(cache.Get(3), nullptr);
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(LruCacheTest, OverwriteRefreshes) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(1, 11);  // refresh + overwrite
  cache.Put(3, 30);  // evicts 2
  ASSERT_NE(cache.Get(1), nullptr);
  EXPECT_EQ(*cache.Get(1), 11);
  EXPECT_EQ(cache.Get(2), nullptr);
}

TEST(LruCacheTest, ZeroCapacityStoresNothing) {
  LruCache<int, int> cache(0);
  cache.Put(1, 10);
  EXPECT_EQ(cache.Get(1), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LruCacheTest, HitMissCounters) {
  LruCache<std::string, int> cache(4);
  cache.Put("a", 1);
  cache.Get("a");
  cache.Get("b");
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ShardedLruCacheTest, PutGetAcrossShards) {
  ShardedLruCache<int, int> cache(/*num_shards=*/4, /*max_bytes=*/4096);
  for (int i = 0; i < 32; ++i) {
    cache.Put(i, std::make_shared<int>(i * 10), /*bytes=*/8);
  }
  for (int i = 0; i < 32; ++i) {
    auto v = cache.Get(i);
    ASSERT_NE(v, nullptr) << i;
    EXPECT_EQ(*v, i * 10);
  }
  EXPECT_EQ(cache.Get(99), nullptr);
  const auto stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 32u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 32u);
  EXPECT_EQ(stats.bytes, 32u * 8u);
}

TEST(ShardedLruCacheTest, ByteBudgetEvictsLeastRecentlyUsed) {
  // One shard so the LRU order is global and deterministic.
  ShardedLruCache<int, int> cache(/*num_shards=*/1, /*max_bytes=*/100);
  EXPECT_EQ(cache.Put(1, std::make_shared<int>(1), 40), 0u);
  EXPECT_EQ(cache.Put(2, std::make_shared<int>(2), 40), 0u);
  ASSERT_NE(cache.Get(1), nullptr);  // refresh 1; now 2 is the LRU victim
  EXPECT_EQ(cache.Put(3, std::make_shared<int>(3), 40), 1u);
  EXPECT_EQ(cache.Get(2), nullptr);
  EXPECT_NE(cache.Get(1), nullptr);
  EXPECT_NE(cache.Get(3), nullptr);
  EXPECT_EQ(cache.GetStats().evictions, 1u);
}

TEST(ShardedLruCacheTest, ShardSelectionMixesIdentityHashes) {
  // Regression: shard selection used to mask the raw std::hash value. For
  // integer keys std::hash is the identity on most standard libraries, so
  // any key stream with a common power-of-two stride (aligned pointers,
  // sequence numbers tagged in the high bits) collapsed onto shard 0 —
  // turning the sharded cache into one contended LRU with 1/N the budget.
  // The finalizer mix must spread such keys across every shard.
  ShardedLruCache<uint64_t, int> cache(/*num_shards=*/8, /*max_bytes=*/4096);
  std::vector<size_t> per_shard(cache.num_shards(), 0);
  constexpr int kKeys = 1024;
  for (uint64_t i = 0; i < kKeys; ++i) {
    ++per_shard[cache.ShardIndexOf(i << 32)];  // low 32 bits all zero
  }
  for (size_t s = 0; s < per_shard.size(); ++s) {
    // Expected 128 per shard; a loose 2x band suffices to catch collapse.
    EXPECT_GT(per_shard[s], kKeys / 16u) << "shard " << s;
    EXPECT_LT(per_shard[s], kKeys / 4u) << "shard " << s;
  }
}

TEST(ShardedLruCacheTest, OversizedEntryIsNotStored) {
  ShardedLruCache<int, int> cache(/*num_shards=*/1, /*max_bytes=*/100);
  cache.Put(1, std::make_shared<int>(1), 10);
  // Larger than the whole shard budget: storing it would evict everything
  // for an entry that cannot fit anyway.
  EXPECT_EQ(cache.Put(2, std::make_shared<int>(2), 1000), 0u);
  EXPECT_EQ(cache.Get(2), nullptr);
  EXPECT_NE(cache.Get(1), nullptr);
}

TEST(ShardedLruCacheTest, OverwriteReplacesByteCharge) {
  ShardedLruCache<std::string, int> cache(/*num_shards=*/1, /*max_bytes=*/100);
  cache.Put("k", std::make_shared<int>(1), 60);
  cache.Put("k", std::make_shared<int>(2), 30);
  const auto stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, 30u);
  EXPECT_EQ(*cache.Get("k"), 2);
}

TEST(ShardedLruCacheTest, SharedValueSurvivesEviction) {
  ShardedLruCache<int, int> cache(/*num_shards=*/1, /*max_bytes=*/50);
  cache.Put(1, std::make_shared<int>(11), 40);
  std::shared_ptr<const int> held = cache.Get(1);
  cache.Put(2, std::make_shared<int>(22), 40);  // evicts 1
  EXPECT_EQ(cache.Get(1), nullptr);
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(*held, 11);  // the reader's reference keeps the value alive
}

TEST(ShardedLruCacheTest, EraseAndClear) {
  ShardedLruCache<int, int> cache(/*num_shards=*/2, /*max_bytes=*/1000);
  cache.Put(1, std::make_shared<int>(1), 10);
  cache.Put(2, std::make_shared<int>(2), 10);
  EXPECT_TRUE(cache.Erase(1));
  EXPECT_FALSE(cache.Erase(1));
  EXPECT_EQ(cache.Get(1), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.Get(2), nullptr);
  EXPECT_EQ(cache.GetStats().entries, 0u);
  EXPECT_EQ(cache.GetStats().bytes, 0u);
}

TEST(RandomTest, DeterministicBySeed) {
  Random a(99);
  Random b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000), b.Uniform(0, 1000));
  }
}

TEST(RandomTest, UniformStaysInRange) {
  Random rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
  EXPECT_EQ(rng.Uniform(3, 3), 3);
}

TEST(RandomTest, WordIsLowercaseAlpha) {
  Random rng(2);
  std::string w = rng.Word(12);
  EXPECT_EQ(w.size(), 12u);
  for (char c : w) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

TEST(ZipfTest, SkewPutsMassOnLowRanks) {
  Random rng(3);
  ZipfDistribution zipf(100, 0.99);
  int low = 0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    size_t r = zipf.Sample(&rng);
    ASSERT_LT(r, 100u);
    if (r < 10) ++low;
  }
  // Top 10 of 100 ranks should carry well over half the mass under theta .99.
  EXPECT_GT(low, kSamples / 2);
}

TEST(ZipfTest, ThetaZeroIsRoughlyUniform) {
  Random rng(4);
  ZipfDistribution zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[zipf.Sample(&rng)];
  for (int c : counts) {
    EXPECT_GT(c, 700);
    EXPECT_LT(c, 1300);
  }
}

TEST(StopwatchTest, MeasuresNonNegativeMonotonicTime) {
  Stopwatch sw;
  int64_t a = sw.ElapsedMicros();
  int64_t b = sw.ElapsedMicros();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
  sw.Restart();
  EXPECT_GE(sw.ElapsedMicros(), 0);
}

TEST(LoggingTest, LevelGating) {
  LogLevel old = SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  XK_LOG(Info) << "should not print";
  SetLogLevel(old);
}

// --- SIMD kernel layer ----------------------------------------------------
//
// Every vector variant must be bit-identical to the scalar reference in
// simd_internal.h for every input shape: the engine's correctness argument
// for runtime dispatch rests entirely on this equivalence. Levels above
// DetectedIsaLevel() are never requested (their instructions may not exist
// on this CPU), so the sweep covers scalar up to whatever dispatch would
// actually pick here.

std::vector<simd::IsaLevel> TestableLevels() {
  std::vector<simd::IsaLevel> levels = {simd::IsaLevel::kScalar};
  const simd::IsaLevel top = simd::DetectedIsaLevel();
  for (simd::IsaLevel lv :
       {simd::IsaLevel::kSse2, simd::IsaLevel::kNeon, simd::IsaLevel::kAvx2}) {
    if (lv <= top) levels.push_back(lv);
  }
  return levels;
}

// Sizes straddling every kernel's group width (8-lane selection, 4-lane
// hash/probe, 2-lane SSE2) plus ragged tails and the 64-entry chunk seams.
const size_t kKernelSizes[] = {0, 1, 2, 3, 7, 8, 15, 16, 17, 63, 64, 65, 300};

// Full-width 64-bit draw (Random::Uniform covers 63 bits; the kernels must
// be exact on values with the sign/top bit set too).
uint64_t Rand64(Random& rng) {
  const uint64_t hi = static_cast<uint64_t>(rng.Uniform(0, 0xFFFFFFFFll));
  const uint64_t lo = static_cast<uint64_t>(rng.Uniform(0, 0xFFFFFFFFll));
  return (hi << 32) | lo;
}

TEST(SimdTest, DispatchLevelIsCoherent) {
  EXPECT_LE(simd::DetectedIsaLevel(), simd::CompiledIsaLevel());
  EXPECT_STREQ(simd::IsaLevelToString(simd::IsaLevel::kScalar), "scalar");
  EXPECT_STREQ(simd::IsaLevelToString(simd::IsaLevel::kSse2), "sse2");
  EXPECT_STREQ(simd::IsaLevelToString(simd::IsaLevel::kNeon), "neon");
  EXPECT_STREQ(simd::IsaLevelToString(simd::IsaLevel::kAvx2), "avx2");
  // force_scalar pins the kernel level regardless of what was detected.
  EXPECT_EQ(simd::KernelLevel(/*force_scalar=*/true), simd::IsaLevel::kScalar);
  EXPECT_EQ(simd::KernelLevel(/*force_scalar=*/false), simd::DetectedIsaLevel());
  if (simd::ScalarForcedByEnv()) {
    EXPECT_EQ(simd::DetectedIsaLevel(), simd::IsaLevel::kScalar);
  }
}

TEST(SimdTest, SelectionKernelsMatchScalarAtEveryLevel) {
  Random rng(101);
  const uint64_t arity = 3;
  std::vector<int64_t> table(500 * arity);
  for (auto& v : table) v = rng.Uniform(0, 6);
  for (size_t n : kKernelSizes) {
    std::vector<uint32_t> row_ids(std::max<size_t>(n, 1));
    std::vector<uint32_t> identity(n);
    for (size_t i = 0; i < n; ++i) {
      row_ids[i] = static_cast<uint32_t>(rng.Uniform(0, 499));
      identity[i] = static_cast<uint32_t>(i);
    }
    for (int64_t target = 0; target < 3; ++target) {
      std::vector<uint32_t> want = identity;
      const size_t want_n = simd::detail::SelCompressEqualScalar(
          table.data(), arity, 1, row_ids.data(), want.data(), n, target);
      for (simd::IsaLevel lv : TestableLevels()) {
        std::vector<uint32_t> got = identity;
        const size_t got_n =
            simd::SelCompressEqual(table.data(), arity, 1, row_ids.data(),
                                   got.data(), n, target, lv);
        ASSERT_EQ(got_n, want_n) << "n=" << n << " level="
                                 << simd::IsaLevelToString(lv);
        got.resize(got_n);
        want.resize(want_n);
        EXPECT_EQ(got, want);
        want.resize(identity.size());
      }
      for (size_t num_vals = 1; num_vals <= simd::kMaxInlineInSet; ++num_vals) {
        int64_t vals[simd::kMaxInlineInSet];
        for (size_t j = 0; j < num_vals; ++j) {
          vals[j] = target + static_cast<int64_t>(j);
        }
        std::vector<uint32_t> want_set = identity;
        const size_t want_set_n = simd::detail::SelCompressInSetScalar(
            table.data(), arity, 1, row_ids.data(), want_set.data(), n, vals,
            num_vals);
        for (simd::IsaLevel lv : TestableLevels()) {
          std::vector<uint32_t> got = identity;
          const size_t got_n =
              simd::SelCompressInSet(table.data(), arity, 1, row_ids.data(),
                                     got.data(), n, vals, num_vals, lv);
          ASSERT_EQ(got_n, want_set_n)
              << "n=" << n << " k=" << num_vals << " level="
              << simd::IsaLevelToString(lv);
          for (size_t i = 0; i < got_n; ++i) EXPECT_EQ(got[i], want_set[i]);
        }
      }
    }
  }
}

TEST(SimdTest, HashKernelsMatchScalarAndStorageHashIds) {
  Random rng(202);
  for (size_t width : {size_t{1}, size_t{2}, size_t{3}}) {
    for (size_t n : kKernelSizes) {
      std::vector<int64_t> keys(n * width);
      for (auto& v : keys) v = static_cast<int64_t>(Rand64(rng));
      std::vector<uint64_t> want(n);
      for (size_t i = 0; i < n; ++i) {
        // The tuple hash is pinned to storage::HashIds + the SplitMix64
        // finalizer: JoinHashTable's per-key and batch paths both rely on it.
        uint64_t h = storage::HashIds(
            storage::TupleView(keys.data() + i * width, width));
        h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
        h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
        h ^= h >> 31;
        want[i] = h;
        EXPECT_EQ(simd::HashTupleFnv(keys.data() + i * width, width), h);
      }
      for (simd::IsaLevel lv : TestableLevels()) {
        std::vector<uint64_t> got(std::max<size_t>(n, 1));
        simd::HashJoinKeys(keys.data(), n, width, got.data(), lv);
        for (size_t i = 0; i < n; ++i) {
          ASSERT_EQ(got[i], want[i]) << "width=" << width << " n=" << n
                                     << " level=" << simd::IsaLevelToString(lv);
        }
      }
    }
  }
}

TEST(SimdTest, BloomMixBatchMatchesScalar) {
  Random rng(303);
  for (size_t n : kKernelSizes) {
    std::vector<int64_t> keys(n);
    for (auto& v : keys) v = static_cast<int64_t>(Rand64(rng));
    for (simd::IsaLevel lv : TestableLevels()) {
      std::vector<uint64_t> got(std::max<size_t>(n, 1));
      simd::BloomMixBatch(keys.data(), n, got.data(), lv);
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], simd::BloomMix(keys[i]))
            << "n=" << n << " level=" << simd::IsaLevelToString(lv);
      }
    }
  }
}

TEST(SimdTest, ProbeSlotsMatchesScalarWalk) {
  Random rng(404);
  // Toy open-addressing table below the 0.7 load ceiling in the fused
  // tag+head slot layout, with both present hashes and misses (including
  // miss probes whose home slot is occupied).
  const uint64_t slots = 128, mask = slots - 1;
  std::vector<uint64_t> inserted;
  std::vector<uint64_t> slot_tag_head(slots,
                                      simd::PackSlotTagHead(0, simd::kEmptyHead));
  for (uint32_t j = 0; j < 80; ++j) {
    const uint64_t h = Rand64(rng);
    uint64_t s = h & mask;
    while (static_cast<uint32_t>(slot_tag_head[s]) != simd::kEmptyHead) {
      s = (s + 1) & mask;
    }
    slot_tag_head[s] = simd::PackSlotTagHead(h, j);
    inserted.push_back(h);
  }
  for (size_t n : kKernelSizes) {
    std::vector<uint64_t> hashes(n);
    for (size_t i = 0; i < n; ++i) {
      hashes[i] = (i % 3 == 0) ? inserted[static_cast<size_t>(Rand64(rng)) %
                                          inserted.size()]
                               : Rand64(rng);
    }
    std::vector<uint64_t> want(std::max<size_t>(n, 1));
    simd::detail::ProbeSlotsScalar(slot_tag_head.data(), mask, hashes.data(),
                                   n, want.data());
    for (simd::IsaLevel lv : TestableLevels()) {
      std::vector<uint64_t> got(std::max<size_t>(n, 1));
      simd::ProbeSlots(slot_tag_head.data(), mask, hashes.data(), n,
                       got.data(), lv);
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], want[i])
            << "n=" << n << " level=" << simd::IsaLevelToString(lv);
      }
    }
  }
}

}  // namespace
}  // namespace xk
