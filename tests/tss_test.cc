// Tests for TSS graphs (segments, derived edges, multiplicities, choice
// groups) and TSS trees (canonical keys, structural possibility).

#include <gtest/gtest.h>

#include "datagen/dblp_gen.h"
#include "datagen/tpch_gen.h"
#include "schema/tss_graph.h"
#include "schema/tss_tree.h"
#include "test_util.h"

namespace xk::schema {
namespace {

class TpchTssTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tss_ = datagen::BuildTpchSchema(&schema_).MoveValueUnsafe();
  }

  TssId Seg(const char* name) { return *tss_->SegmentByName(name); }

  SchemaGraph schema_;
  std::unique_ptr<TssGraph> tss_;
};

TEST_F(TpchTssTest, DerivesTheFigure6Edges) {
  // P->S, P->O, O->L, L->P (supplier), L->Pa, L->Pr, Pa->Pa: seven edges.
  EXPECT_EQ(tss_->NumSegments(), 6);
  EXPECT_EQ(tss_->NumEdges(), 7);
  XK_EXPECT_OK(tss_->FindEdge(Seg("P"), Seg("S")).status());
  XK_EXPECT_OK(tss_->FindEdge(Seg("P"), Seg("O")).status());
  XK_EXPECT_OK(tss_->FindEdge(Seg("O"), Seg("L")).status());
  XK_EXPECT_OK(tss_->FindEdge(Seg("L"), Seg("P")).status());
  XK_EXPECT_OK(tss_->FindEdge(Seg("L"), Seg("Pa")).status());
  XK_EXPECT_OK(tss_->FindEdge(Seg("L"), Seg("Pr")).status());
  XK_EXPECT_OK(tss_->FindEdge(Seg("Pa"), Seg("Pa")).status());
  EXPECT_TRUE(tss_->FindEdge(Seg("P"), Seg("Pa")).status().IsNotFound());
}

TEST_F(TpchTssTest, EdgeMultiplicitiesComposeAlongDummyPaths) {
  // P -> O: containment many/one.
  const TssEdge& po = tss_->edge(*tss_->FindEdge(Seg("P"), Seg("O")));
  EXPECT_EQ(po.forward_mult, Mult::kMany);
  EXPECT_EQ(po.reverse_mult, Mult::kOne);
  EXPECT_EQ(po.kind, EdgeKind::kContainment);
  EXPECT_EQ(po.path.size(), 1u);

  // L -> P via supplier dummy: one lineitem has one supplier-person; a
  // person supplies many lineitems.
  const TssEdge& lp = tss_->edge(*tss_->FindEdge(Seg("L"), Seg("P")));
  EXPECT_EQ(lp.forward_mult, Mult::kOne);
  EXPECT_EQ(lp.reverse_mult, Mult::kMany);
  EXPECT_EQ(lp.kind, EdgeKind::kReference);
  EXPECT_EQ(lp.path.size(), 2u);

  // Pa -> Pa via sub: many/many.
  const TssEdge& papa = tss_->edge(*tss_->FindEdge(Seg("Pa"), Seg("Pa")));
  EXPECT_EQ(papa.forward_mult, Mult::kMany);
  EXPECT_EQ(papa.reverse_mult, Mult::kMany);
}

TEST_F(TpchTssTest, ChoiceGroupsMarkLineAlternatives) {
  const TssEdge& lpa = tss_->edge(*tss_->FindEdge(Seg("L"), Seg("Pa")));
  const TssEdge& lpr = tss_->edge(*tss_->FindEdge(Seg("L"), Seg("Pr")));
  const TssEdge& lp = tss_->edge(*tss_->FindEdge(Seg("L"), Seg("P")));
  EXPECT_NE(lpa.choice_group, kNoSchemaNode);
  EXPECT_EQ(lpa.choice_group, lpr.choice_group);
  EXPECT_EQ(lpa.choice_prefix_mult, Mult::kOne);
  EXPECT_EQ(lp.choice_group, kNoSchemaNode);
}

TEST_F(TpchTssTest, SegmentMapping) {
  XK_ASSERT_OK_AND_ASSIGN(SchemaNodeId person, schema_.NodeByUniqueLabel("person"));
  XK_ASSERT_OK_AND_ASSIGN(SchemaNodeId supplier,
                          schema_.NodeByUniqueLabel("supplier"));
  EXPECT_EQ(tss_->SegmentOfSchemaNode(person), Seg("P"));
  EXPECT_TRUE(tss_->IsDummy(supplier));
  EXPECT_EQ(tss_->head(Seg("P")), person);
  EXPECT_EQ(tss_->members(Seg("P")).size(), 3u);  // person, name, nation
  EXPECT_TRUE(tss_->SegmentByName("nosuch").status().IsNotFound());
}

TEST_F(TpchTssTest, Annotations) {
  TssEdgeId e = *tss_->FindEdge(Seg("P"), Seg("O"));
  EXPECT_EQ(tss_->edge(e).forward_desc, "placed");
  EXPECT_EQ(tss_->edge(e).reverse_desc, "placed by");
  EXPECT_TRUE(tss_->AnnotateEdge(999, "x", "y").IsOutOfRange());
}

TEST(TssGraphTest, RejectsDoubleMappingAndBadMembers) {
  SchemaGraph s;
  SchemaNodeId a = s.AddNode("a");
  SchemaNodeId b = s.AddNode("b");
  SchemaNodeId c = s.AddNode("c");
  XK_EXPECT_OK(s.AddContainmentEdge(a, b).status());
  TssGraph tss(&s);
  XK_ASSERT_OK(tss.AddSegment("A", a, {b}).status());
  // b already mapped.
  EXPECT_TRUE(tss.AddSegment("B", b).status().IsAlreadyExists());
  // c is not a containment descendant of a within the segment.
  TssGraph tss2(&s);
  XK_ASSERT_OK(tss2.AddSegment("AC", a, {c}).status());
  EXPECT_TRUE(tss2.Finalize().IsInvalidArgument());
}

TEST(TssGraphTest, FinalizeIsOneShot) {
  SchemaGraph s;
  SchemaNodeId a = s.AddNode("a");
  TssGraph tss(&s);
  XK_ASSERT_OK(tss.AddSegment("A", a).status());
  XK_ASSERT_OK(tss.Finalize());
  EXPECT_TRUE(tss.Finalize().IsAborted());
  EXPECT_TRUE(tss.AddSegment("X", a).status().IsAborted());
}

// --- TssTree --------------------------------------------------------------

class TssTreeTest : public TpchTssTest {
 protected:
  TssTree Edge1(const char* from, const char* to) {
    TssTree t;
    TssEdgeId e = *tss_->FindEdge(Seg(from), Seg(to));
    t.nodes = {Seg(from), Seg(to)};
    t.edges = {TssTreeEdge{0, 1, e}};
    return t;
  }

  /// P <- O -> ... path P-O-L as a tree.
  TssTree Pol() {
    TssTree t;
    t.nodes = {Seg("P"), Seg("O"), Seg("L")};
    t.edges = {TssTreeEdge{0, 1, *tss_->FindEdge(Seg("P"), Seg("O"))},
               TssTreeEdge{1, 2, *tss_->FindEdge(Seg("O"), Seg("L"))}};
    return t;
  }
};

TEST_F(TssTreeTest, ValidateAcceptsWellFormed) {
  XK_EXPECT_OK(Pol().Validate(*tss_));
  XK_EXPECT_OK(Edge1("Pa", "Pa").Validate(*tss_));
}

TEST_F(TssTreeTest, ValidateRejectsMalformed) {
  TssTree t = Pol();
  t.edges.pop_back();  // disconnected third node
  EXPECT_FALSE(t.Validate(*tss_).ok());

  TssTree wrong = Edge1("P", "O");
  wrong.nodes[1] = Seg("L");  // edge endpoints don't match the TSS edge
  EXPECT_FALSE(wrong.Validate(*tss_).ok());

  TssTree empty;
  EXPECT_TRUE(empty.Validate(*tss_).IsInvalidArgument());
}

TEST_F(TssTreeTest, OutwardMultFollowsRoles) {
  TssTree t = Edge1("P", "O");
  EXPECT_EQ(OutwardMult(t, *tss_, 0, 0), Mult::kMany);  // person -> many orders
  EXPECT_EQ(OutwardMult(t, *tss_, 1, 0), Mult::kOne);   // order -> one person
}

TEST_F(TssTreeTest, CanonicalKeyIsIsomorphismInvariant) {
  TssTree a = Pol();
  // Same tree with occurrences listed in a different order.
  TssTree b;
  b.nodes = {Seg("L"), Seg("O"), Seg("P")};
  b.edges = {TssTreeEdge{2, 1, *tss_->FindEdge(Seg("P"), Seg("O"))},
             TssTreeEdge{1, 0, *tss_->FindEdge(Seg("O"), Seg("L"))}};
  EXPECT_EQ(CanonicalKey(a, *tss_), CanonicalKey(b, *tss_));
  EXPECT_NE(CanonicalKey(a, *tss_), CanonicalKey(Edge1("P", "O"), *tss_));
}

TEST_F(TssTreeTest, CanonicalKeyDistinguishesDirections) {
  // O with two lineitem children vs a chain O->L, O->L ... use P-Pa style:
  // Pa->Pa chain vs reversed chain are isomorphic as free trees only when
  // direction labels match.
  TssEdgeId papa = *tss_->FindEdge(Seg("Pa"), Seg("Pa"));
  TssTree chain;  // pa0 -> pa1 -> pa2
  chain.nodes = {Seg("Pa"), Seg("Pa"), Seg("Pa")};
  chain.edges = {TssTreeEdge{0, 1, papa}, TssTreeEdge{1, 2, papa}};
  TssTree fork;  // pa1 <- pa0 -> pa2
  fork.nodes = {Seg("Pa"), Seg("Pa"), Seg("Pa")};
  fork.edges = {TssTreeEdge{0, 1, papa}, TssTreeEdge{0, 2, papa}};
  EXPECT_NE(CanonicalKey(chain, *tss_), CanonicalKey(fork, *tss_));
}

TEST_F(TssTreeTest, ImpossibleChoiceConflict) {
  // Pa <- L -> Pr through the same line choice: impossible.
  TssTree t;
  t.nodes = {Seg("L"), Seg("Pa"), Seg("Pr")};
  t.edges = {TssTreeEdge{0, 1, *tss_->FindEdge(Seg("L"), Seg("Pa"))},
             TssTreeEdge{0, 2, *tss_->FindEdge(Seg("L"), Seg("Pr"))}};
  EXPECT_EQ(CheckStructurallyPossible(t, *tss_), Impossibility::kChoiceConflict);
}

TEST_F(TssTreeTest, ImpossibleTwoContainmentParents) {
  // P -> O <- P: an order has one person parent.
  TssTree t;
  TssEdgeId po = *tss_->FindEdge(Seg("P"), Seg("O"));
  t.nodes = {Seg("P"), Seg("O"), Seg("P")};
  t.edges = {TssTreeEdge{0, 1, po}, TssTreeEdge{2, 1, po}};
  EXPECT_EQ(CheckStructurallyPossible(t, *tss_),
            Impossibility::kTwoContainmentParents);
}

TEST_F(TssTreeTest, ImpossibleToOneDuplicate) {
  // Pa <- L -> Pa twice through the one line: to-one duplicate.
  TssTree t;
  TssEdgeId lpa = *tss_->FindEdge(Seg("L"), Seg("Pa"));
  t.nodes = {Seg("L"), Seg("Pa"), Seg("Pa")};
  t.edges = {TssTreeEdge{0, 1, lpa}, TssTreeEdge{0, 2, lpa}};
  EXPECT_NE(CheckStructurallyPossible(t, *tss_), Impossibility::kNone);
}

TEST_F(TssTreeTest, PossibleShapes) {
  // P <- L -> Pa is fine (supplier + part of one lineitem).
  TssTree t;
  t.nodes = {Seg("L"), Seg("P"), Seg("Pa")};
  t.edges = {TssTreeEdge{0, 1, *tss_->FindEdge(Seg("L"), Seg("P"))},
             TssTreeEdge{0, 2, *tss_->FindEdge(Seg("L"), Seg("Pa"))}};
  EXPECT_EQ(CheckStructurallyPossible(t, *tss_), Impossibility::kNone);
  // O -> L, O -> L (an order with two lineitems) is fine.
  TssTree t2;
  TssEdgeId ol = *tss_->FindEdge(Seg("O"), Seg("L"));
  t2.nodes = {Seg("O"), Seg("L"), Seg("L")};
  t2.edges = {TssTreeEdge{0, 1, ol}, TssTreeEdge{0, 2, ol}};
  EXPECT_EQ(CheckStructurallyPossible(t2, *tss_), Impossibility::kNone);
}

TEST(DblpTssTest, DerivesFigure14Edges) {
  SchemaGraph s;
  auto tss = datagen::BuildDblpSchema(&s).MoveValueUnsafe();
  EXPECT_EQ(tss->NumSegments(), 4);
  // Conf->Year, Year->Paper, Paper->Author, Paper->Paper: four edges.
  EXPECT_EQ(tss->NumEdges(), 4);
  TssId paper = *tss->SegmentByName("Paper");
  const TssEdge& cites = tss->edge(*tss->FindEdge(paper, paper));
  EXPECT_EQ(cites.kind, EdgeKind::kReference);
  EXPECT_EQ(cites.forward_mult, Mult::kMany);
  EXPECT_EQ(cites.reverse_mult, Mult::kMany);
  EXPECT_EQ(cites.forward_desc, "cites");
}

}  // namespace
}  // namespace xk::schema
