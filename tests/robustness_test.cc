// Robustness sweeps: the parser must never crash on mangled input, the
// engine must reject malformed usage with clean Status codes, and
// three-keyword queries must behave like two-keyword ones.

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/dblp_gen.h"
#include "datagen/tpch_gen.h"
#include "decomp/classify.h"
#include "engine/xkeyword.h"
#include "test_util.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace xk {
namespace {

using testing::RunNaive;
using testing::RunTopK;

class ParserFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzz, MutatedDocumentsNeverCrash) {
  // Start from a valid document; apply random mutations; parsing must
  // either succeed or fail with a Corruption status — never crash.
  datagen::TpchConfig config;
  config.num_persons = 3;
  config.num_parts = 4;
  config.num_products = 2;
  config.seed = 7;
  XK_ASSERT_OK_AND_ASSIGN(auto db, datagen::TpchDatabase::Generate(config));
  std::string xml = xml::WriteGraph(db->graph(), false, true);

  Random rng(static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 50; ++trial) {
    std::string mutated = xml;
    int mutations = static_cast<int>(rng.Uniform(1, 8));
    for (int m = 0; m < mutations; ++m) {
      size_t pos = static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(mutated.size()) - 1));
      switch (rng.Uniform(0, 3)) {
        case 0: mutated[pos] = static_cast<char>(rng.Uniform(32, 126)); break;
        case 1: mutated.erase(pos, 1); break;
        case 2: mutated.insert(pos, 1, '<'); break;
        case 3: mutated.insert(pos, "&bad;"); break;
      }
    }
    auto result = xml::ParseXml(mutated);
    if (!result.ok()) {
      EXPECT_TRUE(result.status().IsCorruption()) << result.status().ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(1, 5));

TEST(ParserLimits, DeeplyNestedDocument) {
  std::string xml;
  const int kDepth = 200;
  for (int i = 0; i < kDepth; ++i) xml += "<a>";
  xml += "x";
  for (int i = 0; i < kDepth; ++i) xml += "</a>";
  auto doc = xml::ParseXml(xml);
  XK_ASSERT_OK(doc.status());
  EXPECT_EQ(doc->graph.NumNodes(), kDepth);
}

TEST(ThreeKeywordTest, QueriesWork) {
  auto db = testing::MakeFigure1Database();
  auto xk = engine::XKeyword::Load(&db->graph, &db->schema, db->tss.get())
                .MoveValueUnsafe();
  XK_ASSERT_OK(xk->AddDecomposition(decomp::MakeMinimal(
      *db->tss, decomp::PhysicalDesign::kClusterPerDirection)));
  engine::QueryOptions options;
  options.max_size_z = 8;
  options.per_network_k = 100;
  options.num_threads = 1;
  XK_ASSERT_OK_AND_ASSIGN(std::vector<present::Mtton> results,
                          RunTopK(*xk, {"john", "tv", "dvd"}, "MinClust", options));
  ASSERT_FALSE(results.empty());
  // Every result's keyword occurrences check out.
  XK_ASSERT_OK_AND_ASSIGN(engine::PreparedQuery q,
                          xk->Prepare({"john", "tv", "dvd"}, "MinClust", options));
  for (const present::Mtton& m : results) {
    const cn::Ctssn& c = q.ctssns[static_cast<size_t>(m.ctssn_index)];
    std::set<int> keywords;
    for (const auto& kws : c.node_keywords) {
      for (const cn::CtssnKeyword& kw : kws) keywords.insert(kw.keyword);
    }
    EXPECT_EQ(keywords, (std::set<int>{0, 1, 2}));
  }
  // Naive agrees.
  XK_ASSERT_OK_AND_ASSIGN(std::vector<present::Mtton> naive,
                          RunNaive(*xk, {"john", "tv", "dvd"}, "MinClust", options));
  EXPECT_EQ(results, naive);
}

TEST(InlinedDecompositionTest, DropsRedundantSingleEdges) {
  schema::SchemaGraph s;
  auto tss = datagen::BuildDblpSchema(&s).MoveValueUnsafe();
  XK_ASSERT_OK_AND_ASSIGN(decomp::Decomposition full,
                          decomp::MakeXKeyword(*tss, 2, 4));
  XK_ASSERT_OK_AND_ASSIGN(decomp::Decomposition inlined,
                          decomp::MakeInlined(*tss, 2, 4));
  EXPECT_EQ(inlined.name, "Inlined");
  EXPECT_LT(inlined.fragments.size(), full.fragments.size());
  // Every TSS edge is still covered (Definition 5.2).
  std::set<schema::TssEdgeId> covered;
  for (const decomp::Fragment& f : inlined.fragments) {
    for (const schema::TssTreeEdge& e : f.tree.edges) covered.insert(e.tss_edge);
  }
  EXPECT_EQ(covered.size(), static_cast<size_t>(tss->NumEdges()));
}

TEST(MaximalDecompositionTest, ZeroJoinsForEveryNetwork) {
  schema::SchemaGraph s;
  auto tss = datagen::BuildDblpSchema(&s).MoveValueUnsafe();
  XK_ASSERT_OK_AND_ASSIGN(decomp::Decomposition maximal,
                          decomp::MakeMaximal(*tss, 3));
  decomp::EnumerateOptions opts;
  opts.max_size = 3;
  XK_ASSERT_OK_AND_ASSIGN(std::vector<schema::TssTree> nets,
                          decomp::EnumerateTrees(*tss, opts));
  for (const schema::TssTree& net : nets) {
    EXPECT_TRUE(decomp::Covered(net, *tss, maximal.fragments, 0))
        << net.ToString(*tss);
  }
}

TEST(ExpansionPiecesTest, MinimalYieldsPerEdgePieces) {
  auto db = testing::MakeFigure1Database();
  auto xk = engine::XKeyword::Load(&db->graph, &db->schema, db->tss.get())
                .MoveValueUnsafe();
  XK_ASSERT_OK(xk->AddDecomposition(decomp::MakeMinimal(
      *db->tss, decomp::PhysicalDesign::kClusterPerDirection)));
  XK_ASSERT_OK_AND_ASSIGN(engine::ExpansionEngine engine,
                          xk->MakeExpansionEngine("MinClust"));

  schema::TssId p = *db->tss->SegmentByName("P");
  schema::TssId l = *db->tss->SegmentByName("L");
  schema::TssId pa = *db->tss->SegmentByName("Pa");
  cn::Ctssn c;
  c.tree.nodes = {p, l, pa};
  c.tree.edges = {schema::TssTreeEdge{1, 0, *db->tss->FindEdge(l, p)},
                  schema::TssTreeEdge{1, 2, *db->tss->FindEdge(l, pa)}};
  c.node_keywords.resize(3);

  std::vector<engine::ExpansionEngine::Piece> pieces = engine.PlanPieces(c, 1, opt::NodeFilters(3));
  EXPECT_EQ(pieces.size(), 2u);  // one per edge
  for (const auto& piece : pieces) {
    EXPECT_EQ(piece.table->arity(), 2);
  }
}

TEST(ExpansionPiecesTest, WiderDecompositionYieldsFewerPieces) {
  auto db = testing::MakeFigure1Database();
  auto xk = engine::XKeyword::Load(&db->graph, &db->schema, db->tss.get())
                .MoveValueUnsafe();
  XK_ASSERT_OK(
      xk->AddDecomposition(decomp::MakeXKeyword(*db->tss, 2, 4).MoveValueUnsafe()));
  XK_ASSERT_OK_AND_ASSIGN(engine::ExpansionEngine engine,
                          xk->MakeExpansionEngine("XKeyword"));

  schema::TssId p = *db->tss->SegmentByName("P");
  schema::TssId l = *db->tss->SegmentByName("L");
  schema::TssId pa = *db->tss->SegmentByName("Pa");
  cn::Ctssn c;
  c.tree.nodes = {p, l, pa};
  c.tree.edges = {schema::TssTreeEdge{1, 0, *db->tss->FindEdge(l, p)},
                  schema::TssTreeEdge{1, 2, *db->tss->FindEdge(l, pa)}};
  c.node_keywords.resize(3);

  std::vector<engine::ExpansionEngine::Piece> pieces = engine.PlanPieces(c, 1, opt::NodeFilters(3));
  EXPECT_EQ(pieces.size(), 1u);  // one P<-L->Pa star fragment
}

}  // namespace
}  // namespace xk
