// Tests for the plan-DAG machinery: shared-subplan detection and cost-ordered
// scheduling (opt::BuildPlanDag), the thread-safe leader/follower subplan
// cache with its byte budget (opt::SubplanCache), the materialized-subplan
// replay buffer (exec::MaterializedSubplan), and the MaterializedViewCache
// under concurrency. Runs under the `tsan` preset.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "cn/ctssn.h"
#include "exec/subplan_source.h"
#include "opt/plan_dag.h"
#include "opt/reuse.h"
#include "opt/subplan_cache.h"

namespace xk::opt {
namespace {

// --- MaterializedSubplan -------------------------------------------------

TEST(MaterializedSubplanTest, AppendAtReplayRoundtrip) {
  // Small block capacity so multiple blocks are exercised.
  exec::MaterializedSubplan sub(3, 4);
  constexpr size_t kRows = 11;
  for (size_t r = 0; r < kRows; ++r) {
    storage::RowId row[3] = {static_cast<storage::RowId>(r),
                             static_cast<storage::RowId>(100 + r),
                             static_cast<storage::RowId>(200 + r)};
    sub.Append(row);
  }
  ASSERT_EQ(sub.num_rows(), kRows);
  ASSERT_EQ(sub.arity(), 3);
  EXPECT_GT(sub.bytes(), 0u);
  for (size_t r = 0; r < kRows; ++r) {
    EXPECT_EQ(sub.At(r, 0), r);
    EXPECT_EQ(sub.At(r, 1), 100 + r);
    EXPECT_EQ(sub.At(r, 2), 200 + r);
  }
  // Block replay yields the same rows in append order.
  exec::SubplanReplayIterator it(&sub);
  exec::RowBlock block;
  size_t seen = 0;
  while (it.Next(&block)) {
    for (size_t i = 0; i < block.num_selected; ++i) {
      EXPECT_EQ(block.column(0)[i], static_cast<storage::ObjectId>(seen));
      EXPECT_EQ(block.column(1)[i], static_cast<storage::ObjectId>(100 + seen));
      ++seen;
    }
  }
  EXPECT_EQ(seen, kRows);
}

// --- SubplanCache --------------------------------------------------------

SubplanCache::SubplanPtr MakeSubplan(size_t rows) {
  auto sub = std::make_shared<exec::MaterializedSubplan>(1, 16);
  for (size_t r = 0; r < rows; ++r) {
    storage::RowId id = static_cast<storage::RowId>(r);
    sub->Append(&id);
  }
  return sub;
}

TEST(SubplanCacheTest, LeaderProducesOnceFollowersHit) {
  SubplanCache cache(1 << 20);
  std::atomic<int> productions{0};
  auto produce = [&]() -> SubplanCache::SubplanPtr {
    ++productions;
    return MakeSubplan(5);
  };
  SubplanCache::SubplanPtr a = cache.GetOrCompute("sig", 3, produce);
  SubplanCache::SubplanPtr b = cache.GetOrCompute("sig", 3, produce);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(productions.load(), 1);
  SubplanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.dedup_saved_rows, 5u);
}

TEST(SubplanCacheTest, ConcurrentRequestersOneProduction) {
  SubplanCache cache(1 << 20);
  std::atomic<int> productions{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<SubplanCache::SubplanPtr> got(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      got[static_cast<size_t>(t)] =
          cache.GetOrCompute("shared", kThreads, [&]() -> SubplanCache::SubplanPtr {
            ++productions;
            return MakeSubplan(7);
          });
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(productions.load(), 1);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(got[static_cast<size_t>(t)].get(), got[0].get());
  }
  SubplanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<uint64_t>(kThreads - 1));
}

TEST(SubplanCacheTest, FailedProductionReturnsNullForEveryone) {
  SubplanCache cache(1 << 20);
  auto fail = []() -> SubplanCache::SubplanPtr { return nullptr; };
  EXPECT_EQ(cache.GetOrCompute("bad", 2, fail), nullptr);
  // The failure is remembered; no re-production, still null, not a hit.
  std::atomic<int> productions{0};
  EXPECT_EQ(cache.GetOrCompute("bad", 2,
                               [&]() -> SubplanCache::SubplanPtr {
                                 ++productions;
                                 return MakeSubplan(1);
                               }),
            nullptr);
  EXPECT_EQ(productions.load(), 0);
  EXPECT_EQ(cache.stats().failed, 1u);
}

TEST(SubplanCacheTest, EvictsReleasedEntriesOverBudget) {
  SubplanCache::SubplanPtr probe = MakeSubplan(16);
  const size_t one_entry = probe->bytes();
  // Budget fits one entry but not two.
  SubplanCache cache(one_entry + one_entry / 2);
  auto a = cache.GetOrCompute("a", 1, [] { return MakeSubplan(16); });
  ASSERT_NE(a, nullptr);
  cache.Release("a");  // fully released -> evictable
  auto b = cache.GetOrCompute("b", 1, [] { return MakeSubplan(16); });
  ASSERT_NE(b, nullptr);
  SubplanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  // "a" was evicted: requesting it again re-produces.
  EXPECT_EQ(cache.Peek("a"), nullptr);
}

TEST(SubplanCacheTest, InUseEntriesSurviveBudgetPressure) {
  SubplanCache::SubplanPtr probe = MakeSubplan(16);
  SubplanCache cache(probe->bytes());  // fits one entry only
  auto a = cache.GetOrCompute("a", 2, [] { return MakeSubplan(16); });
  cache.Release("a");  // one of two consumers done: still in use
  auto b = cache.GetOrCompute("b", 1, [] { return MakeSubplan(16); });
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // "a" must not have been evicted while a consumer is outstanding.
  EXPECT_NE(cache.Peek("a"), nullptr);
}

// --- BuildPlanDag --------------------------------------------------------

/// Fabricates a plan carrying only what BuildPlanDag reads: network size,
/// estimated output rows, and prefix signatures.
CtssnPlan FakePlan(const cn::Ctssn* ctssn, double estimated_rows,
                   std::vector<std::string> prefix_signatures) {
  CtssnPlan plan;
  plan.ctssn = ctssn;
  plan.estimated_rows = estimated_rows;
  plan.prefix_signatures = std::move(prefix_signatures);
  return plan;
}

TEST(BuildPlanDagTest, CostOrderedScheduleSortsInsideSizeClass) {
  cn::Ctssn small, big;
  small.cn_size = 2;
  big.cn_size = 5;
  std::vector<CtssnPlan> plans;
  plans.push_back(FakePlan(&big, 10.0, {"[x]"}));
  plans.push_back(FakePlan(&small, 99.0, {"[y]"}));
  plans.push_back(FakePlan(&big, 1.0, {"[z]"}));
  std::vector<bool> active(plans.size(), true);

  PlanDagOptions cost_ordered;
  PlanDag dag = BuildPlanDag(plans, active, cost_ordered);
  // Size class first (small before big), then cheapest-first inside a class.
  EXPECT_EQ(dag.schedule, (std::vector<size_t>{1, 2, 0}));

  PlanDagOptions legacy;
  legacy.cost_ordered = false;
  PlanDag legacy_dag = BuildPlanDag(plans, active, legacy);
  // Legacy order: size class, then plan index.
  EXPECT_EQ(legacy_dag.schedule, (std::vector<size_t>{1, 0, 2}));
}

TEST(BuildPlanDagTest, AssignsDeepestSharedPrefix) {
  cn::Ctssn c;
  c.cn_size = 3;
  std::vector<CtssnPlan> plans;
  // Plans 0 and 1 share prefixes at depth 0 and 1; plan 2 shares only depth 0.
  plans.push_back(FakePlan(&c, 1.0, {"[A]", "[A][B]", "[A][B][C]"}));
  plans.push_back(FakePlan(&c, 2.0, {"[A]", "[A][B]", "[A][B][D]"}));
  plans.push_back(FakePlan(&c, 3.0, {"[A]", "[A][E]"}));
  std::vector<bool> active(plans.size(), true);

  PlanDag dag = BuildPlanDag(plans, active, PlanDagOptions{});
  ASSERT_EQ(dag.shared_subplan.size(), 3u);
  ASSERT_GE(dag.shared_subplan[0], 0);
  EXPECT_EQ(dag.shared_subplan[0], dag.shared_subplan[1]);
  const SharedSubplan& deep =
      dag.subplans[static_cast<size_t>(dag.shared_subplan[0])];
  EXPECT_EQ(deep.signature, "[A][B]");
  EXPECT_EQ(deep.depth, 1);
  EXPECT_EQ(deep.consumers, 2);
  // Plan 2's deepest shared prefix is "[A]" (carried by all three).
  ASSERT_GE(dag.shared_subplan[2], 0);
  const SharedSubplan& shallow =
      dag.subplans[static_cast<size_t>(dag.shared_subplan[2])];
  EXPECT_EQ(shallow.signature, "[A]");
  EXPECT_EQ(shallow.depth, 0);
}

TEST(BuildPlanDagTest, InactivePlansDoNotCountAsCarriers) {
  cn::Ctssn c;
  c.cn_size = 3;
  std::vector<CtssnPlan> plans;
  plans.push_back(FakePlan(&c, 1.0, {"[A]"}));
  plans.push_back(FakePlan(&c, 2.0, {"[A]"}));
  std::vector<bool> active = {true, false};

  PlanDag dag = BuildPlanDag(plans, active, PlanDagOptions{});
  // Only one active carrier: nothing is shared.
  EXPECT_TRUE(dag.subplans.empty());
  EXPECT_EQ(dag.shared_subplan[0], -1);
}

TEST(BuildPlanDagTest, SharingDisabledYieldsNoSubplans) {
  cn::Ctssn c;
  c.cn_size = 3;
  std::vector<CtssnPlan> plans;
  plans.push_back(FakePlan(&c, 1.0, {"[A]"}));
  plans.push_back(FakePlan(&c, 2.0, {"[A]"}));
  std::vector<bool> active(plans.size(), true);
  PlanDagOptions options;
  options.share_subplans = false;
  PlanDag dag = BuildPlanDag(plans, active, options);
  EXPECT_TRUE(dag.subplans.empty());
}

// --- MaterializedViewCache under concurrency -----------------------------

TEST(MaterializedViewCacheTest, ConcurrentGetPutIsRaceFree) {
  MaterializedViewCache cache;
  constexpr int kThreads = 8;
  constexpr int kOps = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        const std::string sig = "scan" + std::to_string(i % 5);
        if (cache.Get(sig) == nullptr) {
          std::vector<storage::Tuple> rows;
          rows.push_back(storage::Tuple{static_cast<storage::ObjectId>(t)});
          cache.Put(sig, std::move(rows));
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(cache.size(), 5u);
  // Every signature resolves to exactly one stable materialization.
  const std::vector<storage::Tuple>* first = cache.Get("scan0");
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first, cache.Get("scan0"));
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<uint64_t>(kThreads * kOps) + 2);
}

}  // namespace
}  // namespace xk::opt
