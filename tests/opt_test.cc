// Tests for the optimizer: tiling resolution, plan construction, loop
// ordering, cost estimates, and the reuse cache.

#include <gtest/gtest.h>

#include "cn/cn_generator.h"
#include "cn/ctssn.h"
#include "decomp/relation_builder.h"
#include "engine/load_stage.h"
#include "opt/cost_model.h"
#include "opt/optimizer.h"
#include "opt/reuse.h"
#include "opt/tiler.h"
#include "test_util.h"

namespace xk::opt {
namespace {

class OptTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing::MakeFigure1Database();
    data_ = engine::RunLoadStage(db_->graph, db_->schema, *db_->tss)
                .MoveValueUnsafe();
    minimal_ = decomp::MakeMinimal(*db_->tss,
                                   decomp::PhysicalDesign::kClusterPerDirection);
    XK_ASSERT_OK(engine::MaterializeDecomposition(minimal_, *db_->tss, data_.get()));
  }

  schema::TssId Seg(const char* name) { return *db_->tss->SegmentByName(name); }
  schema::TssEdgeId E(const char* from, const char* to) {
    return *db_->tss->FindEdge(Seg(from), Seg(to));
  }

  /// P <- L -> Pa network with keywords on P (john) and Pa (vcr).
  cn::Ctssn MakeNetwork() {
    cn::Ctssn c;
    c.tree.nodes = {Seg("P"), Seg("L"), Seg("Pa")};
    c.tree.edges = {schema::TssTreeEdge{1, 0, E("L", "P")},
                    schema::TssTreeEdge{1, 2, E("L", "Pa")}};
    c.node_keywords = {{cn::CtssnKeyword{0, FindChild("person", "name")}},
                       {},
                       {cn::CtssnKeyword{1, FindChild("part", "name")}}};
    c.cn_size = 6;
    return c;
  }

  schema::SchemaNodeId FindChild(const char* parent, const char* child) {
    schema::SchemaNodeId p = *db_->schema.NodeByUniqueLabel(parent);
    return *db_->schema.ChildByLabel(p, child);
  }

  NodeFilters MakeFilters(const cn::Ctssn& c) {
    // Filter sets from the master index.
    filters_storage_.clear();
    NodeFilters out(static_cast<size_t>(c.num_nodes()));
    const char* words[] = {"john", "vcr"};
    for (int v = 0; v < c.num_nodes(); ++v) {
      for (const cn::CtssnKeyword& kw : c.node_keywords[static_cast<size_t>(v)]) {
        auto set = std::make_unique<storage::IdSet>();
        for (const keyword::Posting& p :
             data_->master_index.ContainingList(words[kw.keyword])) {
          if (p.schema_node == kw.schema_node) set->insert(p.to_id);
        }
        out[static_cast<size_t>(v)].push_back(set.get());
        filters_storage_.push_back(std::move(set));
      }
    }
    return out;
  }

  std::unique_ptr<testing::Figure1Database> db_;
  std::unique_ptr<engine::LoadedData> data_;
  decomp::Decomposition minimal_;
  std::vector<std::unique_ptr<storage::IdSet>> filters_storage_;
};

TEST_F(OptTest, BestTilingUsesMaterializedRelationsOnly) {
  cn::Ctssn c = MakeNetwork();
  std::optional<ResolvedTiling> tiling =
      BestTiling(c.tree, *db_->tss, minimal_, data_->catalog);
  ASSERT_TRUE(tiling.has_value());
  EXPECT_EQ(tiling->pieces.size(), 2u);  // two edge relations
  EXPECT_EQ(tiling->joins(), 1);
  for (const storage::Table* t : tiling->tables) EXPECT_NE(t, nullptr);
}

TEST_F(OptTest, BestTilingPrefersWiderRelationWhenAvailable) {
  // Materialize a decomposition holding the whole P-L-Pa star.
  decomp::Decomposition star;
  star.name = "star";
  decomp::Fragment f;
  f.tree = MakeNetwork().tree;
  f.name = decomp::MakeFragmentName(f.tree, *db_->tss);
  star.fragments = {f};
  XK_ASSERT_OK(engine::MaterializeDecomposition(star, *db_->tss, data_.get()));
  decomp::Decomposition both = decomp::Combine(minimal_, star, *db_->tss, "both");
  // A combined decomposition owns its own relation namespace; materialize it
  // (the paper's "combination" strategy likewise stores both fragment sets).
  XK_ASSERT_OK(engine::MaterializeDecomposition(both, *db_->tss, data_.get()));

  std::optional<ResolvedTiling> tiling =
      BestTiling(MakeNetwork().tree, *db_->tss, both, data_->catalog);
  ASSERT_TRUE(tiling.has_value());
  EXPECT_EQ(tiling->joins(), 0);
}

TEST_F(OptTest, PlanIsValidAndBindsEveryNode) {
  cn::Ctssn c = MakeNetwork();
  NodeFilters filters = MakeFilters(c);
  Optimizer optimizer(db_->tss.get(), &minimal_, &data_->catalog, &data_->objects);
  XK_ASSERT_OK_AND_ASSIGN(CtssnPlan plan, optimizer.Plan(c, filters));

  EXPECT_EQ(plan.joins, 1);
  EXPECT_EQ(plan.query.steps.size(), 2u);
  XK_EXPECT_OK(plan.query.Validate());
  for (const exec::ColumnRef& src : plan.node_source) {
    EXPECT_GE(src.step, 0);
    EXPECT_GE(src.column, 0);
  }
  EXPECT_EQ(plan.step_signatures.size(), 2u);
  EXPECT_GT(plan.estimated_cost, 0.0);
}

TEST_F(OptTest, PlanAppliesKeywordFiltersOnce) {
  cn::Ctssn c = MakeNetwork();
  NodeFilters filters = MakeFilters(c);
  Optimizer optimizer(db_->tss.get(), &minimal_, &data_->catalog, &data_->objects);
  XK_ASSERT_OK_AND_ASSIGN(CtssnPlan plan, optimizer.Plan(c, filters));
  size_t total_filters = 0;
  for (const exec::JoinStep& s : plan.query.steps) {
    total_filters += s.in_filters.size();
  }
  EXPECT_EQ(total_filters, 2u);  // one per keyword, never duplicated
}

TEST_F(OptTest, FirstStepPrefersKeywordPiece) {
  cn::Ctssn c = MakeNetwork();
  NodeFilters filters = MakeFilters(c);
  Optimizer optimizer(db_->tss.get(), &minimal_, &data_->catalog, &data_->objects);
  XK_ASSERT_OK_AND_ASSIGN(CtssnPlan plan, optimizer.Plan(c, filters));
  EXPECT_FALSE(plan.query.steps[0].in_filters.empty());
}

TEST_F(OptTest, SingleObjectPlanHasNoSteps) {
  cn::Ctssn c;
  c.tree.nodes = {Seg("P")};
  c.node_keywords = {{cn::CtssnKeyword{0, FindChild("person", "name")}}};
  c.cn_size = 0;
  NodeFilters filters = MakeFilters(c);
  Optimizer optimizer(db_->tss.get(), &minimal_, &data_->catalog, &data_->objects);
  XK_ASSERT_OK_AND_ASSIGN(CtssnPlan plan, optimizer.Plan(c, filters));
  EXPECT_TRUE(plan.query.steps.empty());
  EXPECT_EQ(plan.joins, 0);
}

TEST_F(OptTest, MismatchedFiltersRejected) {
  cn::Ctssn c = MakeNetwork();
  Optimizer optimizer(db_->tss.get(), &minimal_, &data_->catalog, &data_->objects);
  EXPECT_TRUE(optimizer.Plan(c, NodeFilters{}).status().IsInvalidArgument());
}

TEST_F(OptTest, UncoverableNetworkReported) {
  decomp::Decomposition empty;
  empty.name = "empty";
  Optimizer optimizer(db_->tss.get(), &empty, &data_->catalog, &data_->objects);
  cn::Ctssn c = MakeNetwork();
  NodeFilters filters = MakeFilters(c);
  EXPECT_TRUE(optimizer.Plan(c, filters).status().IsNotFound());
}

TEST(CostModelTest, ProbeOutputScalesWithDistincts) {
  storage::Table t("t", {"a", "b"});
  for (int64_t i = 0; i < 100; ++i) {
    XK_EXPECT_OK(t.Append(storage::Tuple{i % 10, i}));
  }
  EXPECT_DOUBLE_EQ(EstimateProbeOutput(t, {}, {}), 100.0);
  EXPECT_DOUBLE_EQ(EstimateProbeOutput(t, {0}, {}), 10.0);
  EXPECT_DOUBLE_EQ(EstimateProbeOutput(t, {0}, {0.5}), 5.0);
}

TEST(CostModelTest, FilterSelectivityClamped) {
  EXPECT_DOUBLE_EQ(FilterSelectivity(5, 10), 0.5);
  EXPECT_DOUBLE_EQ(FilterSelectivity(50, 10), 1.0);
  EXPECT_DOUBLE_EQ(FilterSelectivity(5, 0), 1.0);
}

TEST(ReuseTest, MaterializedViewCache) {
  MaterializedViewCache cache;
  EXPECT_EQ(cache.Get("sig"), nullptr);
  const std::vector<storage::Tuple>* stored =
      cache.Put("sig", {storage::Tuple{1, 2}});
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(cache.Get("sig"), stored);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

}  // namespace
}  // namespace xk::opt
