// Tests for the on-demand expansion algorithm (Figure 13).

#include <gtest/gtest.h>

#include "engine/xkeyword.h"
#include "test_util.h"

namespace xk::engine {
namespace {

using present::Mtton;
using present::PresentationGraph;

class ExpansionTest : public ::testing::Test {
 protected:
  // Loaded database and prepared query are read-only across tests.
  static void SetUpTestSuite() {
    db_ = testing::MakeFigure1Database().release();
    xk_ = XKeyword::Load(&db_->graph, &db_->schema, db_->tss.get())
              .MoveValueUnsafe()
              .release();
    ASSERT_TRUE(xk_->AddDecomposition(
                       decomp::MakeMinimal(
                           *db_->tss, decomp::PhysicalDesign::kClusterPerDirection))
                    .ok());
    ASSERT_TRUE(
        xk_->AddDecomposition(decomp::MakeXKeyword(*db_->tss, 2, 6).MoveValueUnsafe())
            .ok());

    QueryOptions options;
    options.max_size_z = 8;
    options.per_network_k = 1;  // top-1 per network seeds the graphs
    options.num_threads = 1;
    query_ = new PreparedQuery(
        xk_->Prepare({"us", "vcr"}, "MinClust", options).MoveValueUnsafe());
    TopKExecutor executor;
    seeds_ = new std::vector<Mtton>(executor.Run(*query_, options).MoveValueUnsafe());
  }

  static void TearDownTestSuite() {
    delete seeds_;
    delete query_;
    delete xk_;
    delete db_;
    seeds_ = nullptr;
    query_ = nullptr;
    xk_ = nullptr;
    db_ = nullptr;
  }

  /// Index of the P-L-Pa-Pa network among the prepared CTSSNs.
  int FindPlpapaNetwork() {
    schema::TssId p = *db_->tss->SegmentByName("P");
    schema::TssId l = *db_->tss->SegmentByName("L");
    schema::TssId pa = *db_->tss->SegmentByName("Pa");
    for (size_t i = 0; i < query_->ctssns.size(); ++i) {
      const cn::Ctssn& c = query_->ctssns[i];
      std::vector<schema::TssId> sorted = c.tree.nodes;
      std::sort(sorted.begin(), sorted.end());
      std::vector<schema::TssId> want = {p, l, pa, pa};
      std::sort(want.begin(), want.end());
      if (sorted == want && c.tree.size() == 3) return static_cast<int>(i);
    }
    return -1;
  }

  static testing::Figure1Database* db_;
  static XKeyword* xk_;
  static PreparedQuery* query_;
  static std::vector<Mtton>* seeds_;
};

testing::Figure1Database* ExpansionTest::db_ = nullptr;
XKeyword* ExpansionTest::xk_ = nullptr;
PreparedQuery* ExpansionTest::query_ = nullptr;
std::vector<Mtton>* ExpansionTest::seeds_ = nullptr;

TEST_F(ExpansionTest, NeighborsProbeConnectionRelations) {
  XK_ASSERT_OK_AND_ASSIGN(ExpansionEngine engine,
                          xk_->MakeExpansionEngine("MinClust"));
  schema::TssId pa = *db_->tss->SegmentByName("Pa");
  schema::TssEdgeId papa = *db_->tss->FindEdge(pa, pa);
  storage::ObjectId tv = xk_->objects().ObjectOfNode(db_->tv_part);
  exec::ProbeStats probes;
  std::vector<storage::ObjectId> subs = engine.Neighbors(papa, true, tv, &probes);
  EXPECT_EQ(subs.size(), 2u);
  EXPECT_GT(probes.probes, 0u);
  storage::ObjectId vcr1 = xk_->objects().ObjectOfNode(db_->vcr_part1);
  std::vector<storage::ObjectId> super = engine.Neighbors(papa, false, vcr1, nullptr);
  EXPECT_EQ(super, std::vector<storage::ObjectId>{tv});
}

TEST_F(ExpansionTest, ExpandLineitemRevealsAllConnectedLineitems) {
  int net = FindPlpapaNetwork();
  ASSERT_GE(net, 0);
  XK_ASSERT_OK_AND_ASSIGN(PresentationGraph pg,
                          xk_->MakePresentationGraph(*query_, net, *seeds_));
  ASSERT_EQ(pg.NumMttons(), 1u);

  // Find the lineitem occurrence.
  schema::TssId l = *db_->tss->SegmentByName("L");
  int li_occ = -1;
  const cn::Ctssn& c = query_->ctssns[static_cast<size_t>(net)];
  for (int v = 0; v < c.num_nodes(); ++v) {
    if (c.tree.nodes[static_cast<size_t>(v)] == l) li_occ = v;
  }
  ASSERT_GE(li_occ, 0);

  XK_ASSERT_OK_AND_ASSIGN(ExpansionEngine engine,
                          xk_->MakeExpansionEngine("MinClust"));
  ExpansionEngine::Stats stats;
  XK_ASSERT_OK_AND_ASSIGN(
      std::vector<Mtton> expansions,
      engine.ExpandNode(c, query_->node_filters[static_cast<size_t>(net)], net,
                        li_occ, pg, &stats));
  // Both of order2's lineitems reference the TV part -> two lineitems can
  // appear in this role.
  std::set<storage::ObjectId> lineitems;
  for (const Mtton& m : expansions) {
    lineitems.insert(m.objects[static_cast<size_t>(li_occ)]);
    // Every expansion is a genuine result tree.
    for (const schema::TssTreeEdge& e : c.tree.edges) {
      const std::vector<storage::ObjectId>& fwd = xk_->objects().Forward(
          m.objects[static_cast<size_t>(e.from)], e.tss_edge);
      EXPECT_NE(std::find(fwd.begin(), fwd.end(),
                          m.objects[static_cast<size_t>(e.to)]),
                fwd.end());
    }
  }
  EXPECT_EQ(lineitems.size(), 2u);
  EXPECT_GT(stats.candidates, 0u);
  EXPECT_GT(stats.expanded, 0u);

  // Feeding the expansions back grows the presentation graph.
  for (const Mtton& m : expansions) pg.AddMtton(m);
  XK_ASSERT_OK(pg.Expand(li_occ));
  size_t displayed_lineitems = 0;
  for (const auto& [occ, obj] : pg.Displayed()) {
    (void)obj;
    if (occ == li_occ) ++displayed_lineitems;
  }
  EXPECT_EQ(displayed_lineitems, 2u);
  EXPECT_TRUE(pg.InvariantHolds());
}

TEST_F(ExpansionTest, ExpansionPrefersDisplayedConnections) {
  int net = FindPlpapaNetwork();
  ASSERT_GE(net, 0);
  XK_ASSERT_OK_AND_ASSIGN(PresentationGraph pg,
                          xk_->MakePresentationGraph(*query_, net, *seeds_));
  const cn::Ctssn& c = query_->ctssns[static_cast<size_t>(net)];
  // Expand the keyword-bearing VCR occurrence: its candidates come from the
  // keyword filter.
  int vcr_occ = -1;
  for (int v = 0; v < c.num_nodes(); ++v) {
    if (!c.IsFree(v) &&
        c.tree.nodes[static_cast<size_t>(v)] == *db_->tss->SegmentByName("Pa")) {
      vcr_occ = v;
    }
  }
  ASSERT_GE(vcr_occ, 0);
  XK_ASSERT_OK_AND_ASSIGN(ExpansionEngine engine,
                          xk_->MakeExpansionEngine("MinClust"));
  XK_ASSERT_OK_AND_ASSIGN(
      std::vector<Mtton> expansions,
      engine.ExpandNode(c, query_->node_filters[static_cast<size_t>(net)], net,
                        vcr_occ, pg, nullptr));
  // Both VCR sub-parts connect.
  std::set<storage::ObjectId> vcrs;
  for (const Mtton& m : expansions) {
    vcrs.insert(m.objects[static_cast<size_t>(vcr_occ)]);
  }
  EXPECT_EQ(vcrs.size(), 2u);
  // Minimal extension: expansions reuse the displayed TV part where possible.
  storage::ObjectId tv = xk_->objects().ObjectOfNode(db_->tv_part);
  for (const Mtton& m : expansions) {
    EXPECT_NE(std::find(m.objects.begin(), m.objects.end(), tv), m.objects.end());
  }
}

TEST_F(ExpansionTest, WiderDecompositionGivesSameExpansions) {
  int net = FindPlpapaNetwork();
  ASSERT_GE(net, 0);
  XK_ASSERT_OK_AND_ASSIGN(PresentationGraph pg,
                          xk_->MakePresentationGraph(*query_, net, *seeds_));
  const cn::Ctssn& c = query_->ctssns[static_cast<size_t>(net)];
  schema::TssId l = *db_->tss->SegmentByName("L");
  int li_occ = -1;
  for (int v = 0; v < c.num_nodes(); ++v) {
    if (c.tree.nodes[static_cast<size_t>(v)] == l) li_occ = v;
  }

  XK_ASSERT_OK_AND_ASSIGN(ExpansionEngine minimal,
                          xk_->MakeExpansionEngine("MinClust"));
  XK_ASSERT_OK_AND_ASSIGN(ExpansionEngine inlined,
                          xk_->MakeExpansionEngine("XKeyword"));
  XK_ASSERT_OK_AND_ASSIGN(
      std::vector<Mtton> a,
      minimal.ExpandNode(c, query_->node_filters[static_cast<size_t>(net)], net,
                         li_occ, pg, nullptr));
  XK_ASSERT_OK_AND_ASSIGN(
      std::vector<Mtton> b,
      inlined.ExpandNode(c, query_->node_filters[static_cast<size_t>(net)], net,
                         li_occ, pg, nullptr));
  // The candidate object sets agree regardless of the probing relations.
  auto role_objects = [li_occ](const std::vector<Mtton>& ms) {
    std::set<storage::ObjectId> out;
    for (const Mtton& m : ms) out.insert(m.objects[static_cast<size_t>(li_occ)]);
    return out;
  };
  EXPECT_EQ(role_objects(a), role_objects(b));
}

TEST_F(ExpansionTest, BadOccurrenceRejected) {
  int net = FindPlpapaNetwork();
  ASSERT_GE(net, 0);
  XK_ASSERT_OK_AND_ASSIGN(PresentationGraph pg,
                          xk_->MakePresentationGraph(*query_, net, *seeds_));
  XK_ASSERT_OK_AND_ASSIGN(ExpansionEngine engine,
                          xk_->MakeExpansionEngine("MinClust"));
  const cn::Ctssn& c = query_->ctssns[static_cast<size_t>(net)];
  EXPECT_TRUE(engine
                  .ExpandNode(c, query_->node_filters[static_cast<size_t>(net)],
                              net, 99, pg, nullptr)
                  .status()
                  .IsOutOfRange());
}

}  // namespace
}  // namespace xk::engine
