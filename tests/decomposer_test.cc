// Tests for the target decomposition (target object graph) and master index.

#include <gtest/gtest.h>

#include "keyword/master_index.h"
#include "schema/decomposer.h"
#include "schema/validator.h"
#include "test_util.h"

namespace xk::schema {
namespace {

class DecomposerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing::MakeFigure1Database();
    validation_ = Validate(db_->graph, db_->schema).MoveValueUnsafe();
    Decomposer decomposer(&db_->graph, &validation_, db_->tss.get());
    objects_ = decomposer.Run().MoveValueUnsafe();
  }

  TssId Seg(const char* name) { return *db_->tss->SegmentByName(name); }

  std::unique_ptr<testing::Figure1Database> db_;
  ValidationResult validation_;
  TargetObjectGraph objects_;
};

TEST_F(DecomposerTest, ObjectCountsPerSegment) {
  EXPECT_EQ(objects_.NumObjects(), 13);
  EXPECT_EQ(objects_.CountOfSegment(Seg("P")), 2);
  EXPECT_EQ(objects_.CountOfSegment(Seg("S")), 1);
  EXPECT_EQ(objects_.CountOfSegment(Seg("O")), 2);
  EXPECT_EQ(objects_.CountOfSegment(Seg("L")), 3);
  EXPECT_EQ(objects_.CountOfSegment(Seg("Pa")), 4);
  EXPECT_EQ(objects_.CountOfSegment(Seg("Pr")), 1);
}

TEST_F(DecomposerTest, MembersFoldIntoHeadObject) {
  storage::ObjectId john = objects_.ObjectOfNode(db_->john);
  ASSERT_NE(john, storage::kInvalidId);
  // person + name + nation.
  EXPECT_EQ(objects_.MemberNodes(john).size(), 3u);
  EXPECT_EQ(objects_.object(john).head, db_->john);
  EXPECT_EQ(objects_.object(john).tss, Seg("P"));
  // The name child maps to the same object.
  for (xml::NodeId c : db_->graph.children(db_->john)) {
    if (db_->graph.label(c) == "name") {
      EXPECT_EQ(objects_.ObjectOfNode(c), john);
    }
  }
}

TEST_F(DecomposerTest, DummyNodesHaveNoObject) {
  for (xml::NodeId n = 0; n < db_->graph.NumNodes(); ++n) {
    const std::string& label = db_->graph.label(n);
    if (label == "supplier" || label == "sub" || label == "line") {
      EXPECT_EQ(objects_.ObjectOfNode(n), storage::kInvalidId);
    } else {
      EXPECT_NE(objects_.ObjectOfNode(n), storage::kInvalidId);
    }
  }
}

TEST_F(DecomposerTest, EdgesIncludeDummyMediatedConnections) {
  storage::ObjectId john = objects_.ObjectOfNode(db_->john);
  storage::ObjectId tv = objects_.ObjectOfNode(db_->tv_part);
  storage::ObjectId vcr1 = objects_.ObjectOfNode(db_->vcr_part1);
  storage::ObjectId vcr2 = objects_.ObjectOfNode(db_->vcr_part2);

  // Pa -> Pa: the TV's two VCR sub-parts.
  schema::TssEdgeId papa = *db_->tss->FindEdge(Seg("Pa"), Seg("Pa"));
  std::vector<storage::ObjectId> subs = objects_.Forward(tv, papa);
  EXPECT_EQ(subs.size(), 2u);
  EXPECT_NE(std::find(subs.begin(), subs.end(), vcr1), subs.end());
  EXPECT_NE(std::find(subs.begin(), subs.end(), vcr2), subs.end());
  EXPECT_EQ(objects_.Reverse(vcr1, papa), std::vector<storage::ObjectId>{tv});

  // L -> P: all three lineitems point at John.
  schema::TssEdgeId lp = *db_->tss->FindEdge(Seg("L"), Seg("P"));
  EXPECT_EQ(objects_.Reverse(john, lp).size(), 3u);
}

TEST_F(DecomposerTest, ForwardOnMissingEdgeIsEmpty) {
  storage::ObjectId john = objects_.ObjectOfNode(db_->john);
  schema::TssEdgeId papa = *db_->tss->FindEdge(Seg("Pa"), Seg("Pa"));
  EXPECT_TRUE(objects_.Forward(john, papa).empty());
}

TEST_F(DecomposerTest, ObjectsOfSegmentListsAll) {
  const std::vector<storage::ObjectId>& parts = objects_.ObjectsOfSegment(Seg("Pa"));
  EXPECT_EQ(parts.size(), 4u);
  for (storage::ObjectId o : parts) {
    EXPECT_EQ(objects_.object(o).tss, Seg("Pa"));
  }
}

// --- Master index ----------------------------------------------------------

class MasterIndexTest : public DecomposerTest {
 protected:
  void SetUp() override {
    DecomposerTest::SetUp();
    index_ = keyword::MasterIndex::Build(db_->graph, validation_, objects_);
  }

  keyword::MasterIndex index_;
};

TEST_F(MasterIndexTest, PostingsPointIntoTargetObjects) {
  const std::vector<keyword::Posting>& john = index_.ContainingList("john");
  ASSERT_EQ(john.size(), 1u);
  EXPECT_EQ(john[0].to_id, objects_.ObjectOfNode(db_->john));
  EXPECT_EQ(db_->graph.label(john[0].node_id), "name");
  EXPECT_EQ(db_->schema.label(john[0].schema_node), "name");
}

TEST_F(MasterIndexTest, CaseInsensitiveAndTokenized) {
  // "VCR" appears in two part names and the product descr.
  EXPECT_EQ(index_.ContainingList("VCR").size(), 3u);
  EXPECT_EQ(index_.ContainingList("vcr").size(), 3u);
  // "set of VCR and DVD" tokenizes into words.
  EXPECT_EQ(index_.ContainingList("set").size(), 1u);
  // "dvd" appears in the product descr and the service-call descr.
  EXPECT_EQ(index_.ContainingList("dvd").size(), 2u);
}

TEST_F(MasterIndexTest, TagsAreIndexedToo) {
  // Every lineitem object contains the token "lineitem" via its tag.
  EXPECT_EQ(index_.ContainingList("lineitem").size(), 3u);
  EXPECT_EQ(index_.ContainingList("quantity").size(), 3u);
}

TEST_F(MasterIndexTest, SchemaNodesContaining) {
  std::vector<schema::SchemaNodeId> nodes = index_.SchemaNodesContaining("vcr");
  // part/name and product/descr.
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(db_->schema.label(nodes[0]), "name");
  EXPECT_EQ(db_->schema.label(nodes[1]), "descr");
  EXPECT_TRUE(index_.SchemaNodesContaining("nosuch").empty());
}

TEST_F(MasterIndexTest, PostingListsAreSorted) {
  // Build sorts every containing list by (to_id, node_id) — binary-search and
  // merge friendly, and deterministic regardless of build traversal order.
  for (const char* word : {"vcr", "dvd", "lineitem", "quantity", "name"}) {
    const std::vector<keyword::Posting>& list = index_.ContainingList(word);
    for (size_t i = 1; i < list.size(); ++i) {
      EXPECT_LT(std::tie(list[i - 1].to_id, list[i - 1].node_id),
                std::tie(list[i].to_id, list[i].node_id))
          << "unsorted postings for " << word;
    }
  }
}

TEST_F(MasterIndexTest, SizesAndMissingKeyword) {
  EXPECT_GT(index_.NumKeywords(), 10u);
  EXPECT_GT(index_.NumPostings(), index_.NumKeywords() / 2);
  EXPECT_GT(index_.MemoryBytes(), 0u);
  EXPECT_TRUE(index_.ContainingList("absentword").empty());
  EXPECT_FALSE(index_.Contains("absentword"));
}

}  // namespace
}  // namespace xk::schema
