// Tests for access paths and join executors, including a property sweep
// asserting that every physical design returns identical probe results.

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "exec/block_ops.h"
#include "exec/join_hash_table.h"
#include "exec/operators.h"
#include "exec/plan.h"
#include "exec/row_block.h"
#include "test_util.h"

namespace xk::exec {
namespace {

using storage::ObjectId;
using storage::RowId;
using storage::Table;
using storage::Tuple;

/// Builds a 2-column edge-like table with the given physical design.
enum class Physical { kClustered, kComposite, kHash, kNone };

std::unique_ptr<Table> MakeEdgeTable(Physical physical, uint64_t seed,
                                     int rows = 300, int domain = 40) {
  auto t = std::make_unique<Table>("edges", std::vector<std::string>{"src", "dst"});
  Random rng(seed);
  for (int i = 0; i < rows; ++i) {
    XK_EXPECT_OK(
        t->Append(Tuple{rng.Uniform(0, domain - 1), rng.Uniform(0, domain - 1)}));
  }
  switch (physical) {
    case Physical::kClustered:
      XK_EXPECT_OK(t->Cluster({0, 1}));
      XK_EXPECT_OK(t->BuildCompositeIndex({1, 0}));
      break;
    case Physical::kComposite:
      XK_EXPECT_OK(t->BuildCompositeIndex({0, 1}));
      XK_EXPECT_OK(t->BuildCompositeIndex({1, 0}));
      break;
    case Physical::kHash:
      XK_EXPECT_OK(t->BuildHashIndex(0));
      XK_EXPECT_OK(t->BuildHashIndex(1));
      break;
    case Physical::kNone:
      break;
  }
  return t;
}

std::multiset<ObjectId> ProbeDst(const Table& t, ObjectId src, bool use_indexes) {
  std::multiset<ObjectId> out;
  ExecOptions opts{.use_indexes = use_indexes};
  ForEachMatch(t, {ColumnBinding{0, src}}, {}, opts,
               [&](RowId r) {
                 out.insert(t.At(r, 1));
                 return true;
               },
               nullptr);
  return out;
}

TEST(AccessPathTest, ChoiceFollowsPhysicalDesign) {
  ExecOptions opts;
  auto clustered = MakeEdgeTable(Physical::kClustered, 1);
  EXPECT_EQ(ChooseAccessPath(*clustered, {{0, 5}}, opts),
            AccessPathKind::kClusteredRange);
  EXPECT_EQ(ChooseAccessPath(*clustered, {{1, 5}}, opts),
            AccessPathKind::kCompositeIndex);

  auto hash = MakeEdgeTable(Physical::kHash, 1);
  EXPECT_EQ(ChooseAccessPath(*hash, {{0, 5}}, opts), AccessPathKind::kHashIndex);

  auto none = MakeEdgeTable(Physical::kNone, 1);
  EXPECT_EQ(ChooseAccessPath(*none, {{0, 5}}, opts), AccessPathKind::kFullScan);

  // No bindings or disabled indexes -> scan.
  EXPECT_EQ(ChooseAccessPath(*clustered, {}, opts), AccessPathKind::kFullScan);
  ExecOptions no_idx{.use_indexes = false};
  EXPECT_EQ(ChooseAccessPath(*clustered, {{0, 5}}, no_idx),
            AccessPathKind::kFullScan);
}

TEST(AccessPathTest, ChoiceCoversEveryBindingShape) {
  ExecOptions opts;
  // Clustered on (0,1) with a secondary composite on (1,0): col-0 shapes take
  // the clustering, col-1 shapes the secondary, nothing bound scans.
  auto clustered = MakeEdgeTable(Physical::kClustered, 2);
  EXPECT_EQ(ChooseAccessPath(*clustered, {{0, 3}}, opts),
            AccessPathKind::kClusteredRange);
  EXPECT_EQ(ChooseAccessPath(*clustered, {{0, 3}, {1, 4}}, opts),
            AccessPathKind::kClusteredRange);
  EXPECT_EQ(ChooseAccessPath(*clustered, {{1, 4}}, opts),
            AccessPathKind::kCompositeIndex);
  EXPECT_EQ(ChooseAccessPath(*clustered, {}, opts), AccessPathKind::kFullScan);

  // Hash-only table: any bound column probes the hash index.
  auto hash = MakeEdgeTable(Physical::kHash, 2);
  EXPECT_EQ(ChooseAccessPath(*hash, {{1, 4}}, opts), AccessPathKind::kHashIndex);
  EXPECT_EQ(ChooseAccessPath(*hash, {{0, 3}, {1, 4}}, opts),
            AccessPathKind::kHashIndex);
}

TEST(AccessPathTest, CompositeLongestUsablePrefixWins) {
  // Two composite indexes: (1) built first, (1,0) second. A probe binding
  // both columns must pick (1,0) — the longest usable prefix — regardless of
  // binding or build order, touching only exact-match rows.
  auto t = std::make_unique<Table>("edges", std::vector<std::string>{"src", "dst"});
  Random rng(9);
  for (int i = 0; i < 400; ++i) {
    XK_EXPECT_OK(t->Append(Tuple{rng.Uniform(0, 9), rng.Uniform(0, 9)}));
  }
  XK_EXPECT_OK(t->BuildCompositeIndex({1}));
  XK_EXPECT_OK(t->BuildCompositeIndex({1, 0}));

  const ObjectId src = t->At(0, 0);
  const ObjectId dst = t->At(0, 1);
  size_t exact = 0, dst_only = 0;
  for (RowId r = 0; r < 400; ++r) {
    if (t->At(r, 1) == dst) {
      ++dst_only;
      if (t->At(r, 0) == src) ++exact;
    }
  }
  ASSERT_GT(exact, 0u);
  ASSERT_LT(exact, dst_only);  // the short index would touch more rows

  for (const std::vector<ColumnBinding>& bindings :
       {std::vector<ColumnBinding>{{1, dst}, {0, src}},
        std::vector<ColumnBinding>{{0, src}, {1, dst}}}) {
    std::vector<storage::ObjectId> prefix;
    const storage::CompositeIndex* best = BestCompositeIndex(*t, bindings, &prefix);
    ASSERT_NE(best, nullptr);
    EXPECT_EQ(best->key_columns(), (std::vector<int>{1, 0}));
    EXPECT_EQ(prefix, (std::vector<ObjectId>{dst, src}));

    EXPECT_EQ(ChooseAccessPath(*t, bindings, ExecOptions{}),
              AccessPathKind::kCompositeIndex);
    ProbeStats stats;
    ForEachMatch(*t, bindings, {}, ExecOptions{}, [](RowId) { return true; },
                 &stats);
    EXPECT_EQ(stats.rows_scanned, exact);
  }
}

TEST(ForEachMatchTest, BloomPruneSkipsDeadProbes) {
  auto t = MakeEdgeTable(Physical::kHash, 6, /*rows=*/200, /*domain=*/30);
  storage::BloomFilter bloom(/*expected_keys=*/200);
  for (RowId r = 0; r < 200; ++r) bloom.Add(t->At(r, 0));
  std::vector<ColumnBloom> prune = {{0, &bloom}};

  // A value outside the domain is definitely absent: probe skipped whole.
  ProbeStats dead;
  ForEachMatch(*t, {{0, 1234}}, {}, prune, ExecOptions{},
               [](RowId) { return true; }, &dead);
  EXPECT_EQ(dead.bloom_skips, 1u);
  EXPECT_EQ(dead.rows_scanned, 0u);
  EXPECT_EQ(dead.probes, 1u);

  // A present value must enumerate exactly what the unpruned probe does.
  const ObjectId present = t->At(0, 0);
  std::multiset<ObjectId> with, without;
  ProbeStats live;
  ForEachMatch(*t, {{0, present}}, {}, prune, ExecOptions{},
               [&](RowId r) {
                 with.insert(t->At(r, 1));
                 return true;
               },
               &live);
  EXPECT_EQ(live.bloom_skips, 0u);
  ForEachMatch(*t, {{0, present}}, {}, ExecOptions{},
               [&](RowId r) {
                 without.insert(t->At(r, 1));
                 return true;
               },
               nullptr);
  EXPECT_EQ(with, without);
}

TEST(AccessPathTest, NamesAreStable) {
  EXPECT_STREQ(AccessPathKindToString(AccessPathKind::kClusteredRange),
               "clustered-range");
  EXPECT_STREQ(AccessPathKindToString(AccessPathKind::kFullScan), "full-scan");
}

class AccessPathAgreement : public ::testing::TestWithParam<int> {};

TEST_P(AccessPathAgreement, AllPathsReturnIdenticalRows) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  auto clustered = MakeEdgeTable(Physical::kClustered, seed);
  auto composite = MakeEdgeTable(Physical::kComposite, seed);
  auto hash = MakeEdgeTable(Physical::kHash, seed);
  auto none = MakeEdgeTable(Physical::kNone, seed);
  for (ObjectId src = 0; src < 40; ++src) {
    auto expected = ProbeDst(*none, src, false);
    EXPECT_EQ(ProbeDst(*clustered, src, true), expected) << "src=" << src;
    EXPECT_EQ(ProbeDst(*composite, src, true), expected) << "src=" << src;
    EXPECT_EQ(ProbeDst(*hash, src, true), expected) << "src=" << src;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AccessPathAgreement, ::testing::Range(1, 8));

TEST(ForEachMatchTest, InSetFilterAndEarlyStop) {
  auto t = MakeEdgeTable(Physical::kHash, 3);
  storage::IdSet allowed = {1, 2, 3};
  int count = 0;
  ForEachMatch(*t, {}, {ColumnInSet{1, &allowed}}, ExecOptions{},
               [&](RowId r) {
                 EXPECT_TRUE(allowed.contains(t->At(r, 1)));
                 return ++count < 5;  // early stop
               },
               nullptr);
  EXPECT_EQ(count, 5);
}

TEST(ForEachMatchTest, StatsCountProbesAndRows) {
  auto t = MakeEdgeTable(Physical::kNone, 4, /*rows=*/100);
  ProbeStats stats;
  ForEachMatch(*t, {{0, 7}}, {}, ExecOptions{}, [](RowId) { return true; }, &stats);
  EXPECT_EQ(stats.probes, 1u);
  EXPECT_EQ(stats.rows_scanned, 100u);  // full scan touches everything
  EXPECT_LE(stats.rows_matched, stats.rows_scanned);
}

TEST(TableScanIteratorTest, FiltersAndDrains) {
  auto t = MakeEdgeTable(Physical::kNone, 5, /*rows=*/50, /*domain=*/4);
  TableScanIterator it(*t, {ColumnBinding{0, 2}}, {});
  Tuple row;
  size_t n = 0;
  while (it.Next(&row)) {
    ASSERT_EQ(row.size(), 2u);
    EXPECT_EQ(row[0], 2);
    ++n;
  }
  EXPECT_GT(n, 0u);
  EXPECT_FALSE(it.Next(&row));  // stays drained
}

// --- Join executors ------------------------------------------------------

/// Two-step join: edges(src,dst) |><| edges2(src,dst) on dst == src.
struct JoinFixture {
  std::unique_ptr<Table> left = MakeEdgeTable(Physical::kHash, 11, 150, 25);
  std::unique_ptr<Table> right = MakeEdgeTable(Physical::kHash, 12, 150, 25);

  JoinQuery MakeQuery(const storage::IdSet* left_filter = nullptr) {
    JoinQuery q;
    JoinStep s0;
    s0.table = left.get();
    if (left_filter != nullptr) s0.in_filters.push_back(ColumnInSet{0, left_filter});
    q.steps.push_back(s0);
    JoinStep s1;
    s1.table = right.get();
    s1.eq.push_back({0, ColumnRef{0, 1}});  // right.src == left.dst
    q.steps.push_back(s1);
    return q;
  }
};

TEST(JoinQueryTest, ValidateCatchesBadPlans) {
  JoinFixture f;
  JoinQuery q = f.MakeQuery();
  XK_EXPECT_OK(q.Validate());

  JoinQuery empty;
  EXPECT_TRUE(empty.Validate().IsInvalidArgument());

  JoinQuery cartesian = f.MakeQuery();
  cartesian.steps[1].eq.clear();
  EXPECT_TRUE(cartesian.Validate().IsInvalidArgument());

  JoinQuery forward_ref = f.MakeQuery();
  forward_ref.steps[1].eq[0].second.step = 1;  // self reference
  EXPECT_TRUE(forward_ref.Validate().IsInvalidArgument());

  JoinQuery bad_col = f.MakeQuery();
  bad_col.steps[1].eq[0].first = 9;
  EXPECT_TRUE(bad_col.Validate().IsOutOfRange());
}

TEST(JoinExecutorsTest, NestedLoopAndHashJoinAgree) {
  JoinFixture f;
  JoinQuery q = f.MakeQuery();

  std::multiset<std::vector<ObjectId>> nl_rows;
  NestedLoopExecutor nl(&q, ExecOptions{});
  XK_ASSERT_OK(nl.Run([&](const std::vector<storage::TupleView>& rows) {
    std::vector<ObjectId> flat;
    for (auto view : rows) flat.insert(flat.end(), view.begin(), view.end());
    nl_rows.insert(std::move(flat));
    return true;
  }));

  std::multiset<std::vector<ObjectId>> hj_rows;
  HashJoinExecutor hj(&q);
  XK_ASSERT_OK(hj.Run([&](const std::vector<storage::TupleView>& rows) {
    std::vector<ObjectId> flat;
    for (auto view : rows) flat.insert(flat.end(), view.begin(), view.end());
    hj_rows.insert(std::move(flat));
    return true;
  }));

  EXPECT_FALSE(nl_rows.empty());
  EXPECT_EQ(nl_rows, hj_rows);
}

TEST(JoinExecutorsTest, LimitStopsNestedLoop) {
  JoinFixture f;
  JoinQuery q = f.MakeQuery();
  size_t count = 0;
  NestedLoopExecutor nl(&q, ExecOptions{});
  XK_ASSERT_OK(nl.Run(
      [&](const std::vector<storage::TupleView>&) {
        ++count;
        return true;
      },
      /*limit=*/7));
  EXPECT_EQ(count, 7u);
}

TEST(JoinExecutorsTest, InFilterRestrictsBothExecutors) {
  JoinFixture f;
  storage::IdSet filter = {0, 1, 2};
  JoinQuery q = f.MakeQuery(&filter);

  size_t nl_count = 0;
  NestedLoopExecutor nl(&q, ExecOptions{});
  XK_ASSERT_OK(nl.Run([&](const std::vector<storage::TupleView>& rows) {
    EXPECT_TRUE(filter.contains(rows[0][0]));
    ++nl_count;
    return true;
  }));

  size_t hj_count = 0;
  HashJoinExecutor hj(&q);
  XK_ASSERT_OK(hj.Run([&](const std::vector<storage::TupleView>& rows) {
    EXPECT_TRUE(filter.contains(rows[0][0]));
    ++hj_count;
    return true;
  }));
  EXPECT_EQ(nl_count, hj_count);
}

// --- Vectorized execution ------------------------------------------------

/// Ordered row-id trace of one probe, with the path chosen by `opts`.
std::vector<RowId> ProbeTrace(const Table& t,
                              const std::vector<ColumnBinding>& bindings,
                              const std::vector<ColumnInSet>& in_filters,
                              ExecOptions opts, ProbeStats* stats = nullptr) {
  std::vector<RowId> out;
  ForEachMatch(t, bindings, in_filters, opts,
               [&](RowId r) {
                 out.push_back(r);
                 return true;
               },
               stats);
  return out;
}

/// Row path vs block path must emit the exact same row-id sequence — across
/// every physical design, binding shape, and block size, including blocks of
/// one row, a block size that never divides the table, empty results, and
/// filters that kill entire blocks.
class VectorizedDifferential : public ::testing::TestWithParam<int> {};

TEST_P(VectorizedDifferential, RowAndBlockPathsAreByteIdentical) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  storage::IdSet odd;
  for (ObjectId v = 1; v < 20; v += 2) odd.insert(v);
  storage::IdSet nothing = {777};  // outside the value domain

  struct Case {
    std::vector<ColumnBinding> bindings;
    std::vector<ColumnInSet> filters;
  };
  const std::vector<Case> cases = {
      {{}, {}},                       // unfiltered full scan
      {{{0, 7}}, {}},                 // one binding (index-servable)
      {{{0, 7}, {1, 3}}, {}},         // two bindings
      {{{0, 7}}, {{1, &odd}}},        // binding + in-set
      {{}, {{0, &odd}, {1, &odd}}},   // in-sets only
      {{{0, 10'000}}, {}},            // no matching rows at all
      {{}, {{0, &nothing}}},          // every block fully filtered
  };

  for (Physical physical :
       {Physical::kClustered, Physical::kComposite, Physical::kHash,
        Physical::kNone}) {
    // 301 rows: no block size below divides it, so the tail block is partial.
    auto t = MakeEdgeTable(physical, seed, /*rows=*/301, /*domain=*/20);
    for (size_t ci = 0; ci < cases.size(); ++ci) {
      const Case& c = cases[ci];
      ExecOptions row_opts;
      row_opts.vectorized = false;
      ProbeStats row_stats;
      const std::vector<RowId> expected =
          ProbeTrace(*t, c.bindings, c.filters, row_opts, &row_stats);
      // 15/16/17 straddle the SIMD kernels' 8-candidate groups (one short,
      // exact multiples, one ragged-tail lane).
      for (size_t bs : {size_t{1}, size_t{7}, size_t{15}, size_t{16},
                        size_t{17}, size_t{1024}}) {
        ExecOptions blk_opts;
        blk_opts.block_size = bs;
        ProbeStats blk_stats;
        EXPECT_EQ(ProbeTrace(*t, c.bindings, c.filters, blk_opts, &blk_stats),
                  expected)
            << "physical=" << static_cast<int>(physical) << " case=" << ci
            << " block_size=" << bs;
        // Without an early stop, the block path scans and matches the exact
        // same rows the row path does.
        EXPECT_EQ(blk_stats.rows_scanned, row_stats.rows_scanned);
        EXPECT_EQ(blk_stats.rows_matched, row_stats.rows_matched);
        EXPECT_EQ(blk_stats.probes, row_stats.probes);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorizedDifferential, ::testing::Range(1, 6));

TEST(ForEachMatchBlockTest, EarlyStopAndBloomPruneMatchRowPath) {
  auto t = MakeEdgeTable(Physical::kHash, 6, /*rows=*/200, /*domain=*/30);
  // Early stop: the first 5 matches are the same rows the row path yields.
  ExecOptions row_opts;
  row_opts.vectorized = false;
  std::vector<RowId> expected;
  ForEachMatch(*t, {}, {}, row_opts,
               [&](RowId r) {
                 expected.push_back(r);
                 return expected.size() < 5;
               },
               nullptr);
  std::vector<RowId> got;
  ForEachMatch(*t, {}, {}, ExecOptions{.block_size = 7},
               [&](RowId r) {
                 got.push_back(r);
                 return got.size() < 5;
               },
               nullptr);
  EXPECT_EQ(got, expected);

  // Bloom prune short-circuits before any block is formed.
  storage::BloomFilter bloom(/*expected_keys=*/200);
  for (RowId r = 0; r < 200; ++r) bloom.Add(t->At(r, 0));
  ProbeStats dead;
  ForEachMatch(*t, {{0, 1234}}, {}, {{0, &bloom}}, ExecOptions{},
               [](RowId) { return true; }, &dead);
  EXPECT_EQ(dead.bloom_skips, 1u);
  EXPECT_EQ(dead.rows_scanned, 0u);
}

TEST(SelectionKernelTest, CompactAscendingWithoutAllocation) {
  auto t = MakeEdgeTable(Physical::kNone, 8, /*rows=*/64, /*domain=*/4);
  RowBlock block;
  block.Reset(t->arity(), 64);
  for (size_t i = 0; i < 64; ++i) block.row_ids[i] = static_cast<RowId>(i);
  block.SelectAll(64);

  const ObjectId v = t->At(0, 0);
  size_t n = SelEqual(*t, &block, 0, v);
  EXPECT_EQ(n, block.num_selected);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(t->At(block.row_ids[block.sel[i]], 0), v);
    if (i > 0) EXPECT_LT(block.sel[i - 1], block.sel[i]);  // ascending
  }

  storage::IdSet none = {999};
  EXPECT_EQ(SelInSet(*t, &block, 1, none), 0u);
  EXPECT_EQ(block.num_selected, 0u);
}

TEST(ScanBlockIteratorTest, MatchesTableScanIteratorThroughAdapter) {
  auto t = MakeEdgeTable(Physical::kNone, 21, /*rows=*/133, /*domain=*/6);
  for (size_t bs : {size_t{1}, size_t{7}, size_t{1024}}) {
    ExecOptions opts;
    opts.block_size = bs;
    ScanBlockIterator blocks(*t, {ColumnBinding{0, 2}}, {}, opts);
    EXPECT_EQ(blocks.path(), AccessPathKind::kFullScan);
    BlockRowAdapter rows(&blocks);
    TableScanIterator expected(*t, {ColumnBinding{0, 2}}, {});
    Tuple a, b;
    size_t n = 0;
    while (true) {
      const bool more_expected = expected.Next(&a);
      ASSERT_EQ(rows.Next(&b), more_expected) << "block_size=" << bs;
      if (!more_expected) break;
      EXPECT_EQ(b, a) << "row " << n << " block_size=" << bs;
      ++n;
    }
    EXPECT_GT(n, 0u);
    EXPECT_FALSE(rows.Next(&b));  // stays drained
  }

  // A scan with no survivors produces no blocks.
  ScanBlockIterator empty(*t, {ColumnBinding{0, 10'000}}, {}, ExecOptions{});
  RowBlock block;
  EXPECT_FALSE(empty.Next(&block));
}

TEST(IndexNestedLoopBlockIteratorTest, MatchesRowNestedLoopJoin) {
  JoinFixture f;
  JoinQuery q = f.MakeQuery();

  std::vector<std::vector<ObjectId>> expected;
  NestedLoopExecutor nl(&q, ExecOptions{});
  XK_ASSERT_OK(nl.Run([&](const std::vector<storage::TupleView>& rows) {
    std::vector<ObjectId> flat;
    for (auto view : rows) flat.insert(flat.end(), view.begin(), view.end());
    expected.push_back(std::move(flat));
    return true;
  }));
  ASSERT_FALSE(expected.empty());

  for (size_t bs : {size_t{1}, size_t{7}, size_t{1024}}) {
    ExecOptions opts;
    opts.block_size = bs;
    ScanBlockIterator outer(*f.left, {}, {}, opts);
    // right.src (col 0) == left.dst (col 1), as in MakeQuery.
    IndexNestedLoopBlockIterator join(
        &outer, *f.right, {IndexNestedLoopBlockIterator::JoinKey{0, 1}}, {},
        opts);
    BlockRowAdapter rows(&join);
    Tuple row;
    std::vector<std::vector<ObjectId>> got;
    while (rows.Next(&row)) got.push_back(row);
    EXPECT_EQ(got, expected) << "block_size=" << bs;
  }
}

TEST(JoinExecutorsTest, HashJoinVectorizedMatchesLegacyExactly) {
  JoinFixture f;
  storage::IdSet filter = {0, 1, 2, 3};
  JoinQuery q = f.MakeQuery(&filter);

  auto collect = [&](ExecOptions opts) {
    std::vector<std::vector<ObjectId>> out;
    HashJoinExecutor hj(&q, opts);
    XK_EXPECT_OK(hj.Run([&](const std::vector<storage::TupleView>& rows) {
      std::vector<ObjectId> flat;
      for (auto view : rows) flat.insert(flat.end(), view.begin(), view.end());
      out.push_back(std::move(flat));
      return true;
    }));
    return out;
  };

  ExecOptions legacy;
  legacy.vectorized = false;
  const auto expected = collect(legacy);
  EXPECT_FALSE(expected.empty());
  for (size_t bs : {size_t{1}, size_t{7}, size_t{1024}}) {
    ExecOptions vec;
    vec.block_size = bs;
    EXPECT_EQ(collect(vec), expected) << "block_size=" << bs;
  }
}

// --- JoinHashTable -------------------------------------------------------

TEST(JoinHashTableTest, ChainsPreserveInsertionOrderThroughGrowth) {
  JoinHashTable table(2);  // no Reserve: exercises mid-stream rehashing
  constexpr uint32_t kRows = 1000;
  constexpr ObjectId kKeys = 37;
  for (uint32_t r = 0; r < kRows; ++r) {
    const ObjectId key[2] = {r % kKeys, (r % kKeys) * 2};
    table.Insert(key, r);
  }
  EXPECT_EQ(table.num_keys(), static_cast<size_t>(kKeys));
  EXPECT_EQ(table.num_rows(), static_cast<size_t>(kRows));

  for (ObjectId k = 0; k < kKeys; ++k) {
    const ObjectId key[2] = {k, k * 2};
    std::vector<uint32_t> rows;
    for (uint32_t n = table.Lookup(key); n != JoinHashTable::kNil;
         n = table.NextMatch(n)) {
      rows.push_back(table.MatchRow(n));
    }
    std::vector<uint32_t> want;
    for (uint32_t r = static_cast<uint32_t>(k); r < kRows; r += kKeys) {
      want.push_back(r);
    }
    EXPECT_EQ(rows, want) << "key " << k;
  }

  const ObjectId missing[2] = {5, 11};  // second id never pairs with first
  EXPECT_EQ(table.Lookup(missing), JoinHashTable::kNil);
  EXPECT_GT(table.MemoryBytes(), 0u);
}

TEST(JoinHashTableTest, LookupBatchAgreesWithScalarLookup) {
  JoinHashTable table(1);
  table.Reserve(200);
  for (uint32_t r = 0; r < 200; ++r) {
    const ObjectId k = r % 50;
    table.Insert(&k, r);
  }
  // 130 keys spans two hash chunks and includes 80 missing keys.
  std::vector<ObjectId> keys;
  for (ObjectId k = 0; k < 130; ++k) keys.push_back(k);
  std::vector<uint32_t> heads(keys.size());
  table.LookupBatch(keys.data(), keys.size(), heads.data());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(heads[i], table.Lookup(&keys[i])) << "key " << keys[i];
    if (keys[i] >= 50) EXPECT_EQ(heads[i], JoinHashTable::kNil);
  }
}

// --- SIMD kernel dispatch -------------------------------------------------

/// Scalar-pinned vs dispatched kernels must be byte-identical on every
/// surface: selection traces, hash-table probes, and whole-table builds —
/// across seeds, block sizes straddling the 8-lane groups, and
/// duplicate-heavy key distributions.
class ScalarVsSimdKernels : public ::testing::TestWithParam<int> {};

TEST_P(ScalarVsSimdKernels, ProbeTracesAreByteIdentical) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  storage::IdSet small_set = {1, 3};                 // ladder path
  storage::IdSet big_set = {0, 2, 4, 6, 8, 10, 12};  // hash-set path

  struct Case {
    std::vector<ColumnBinding> bindings;
    std::vector<ColumnInSet> filters;
  };
  const std::vector<Case> cases = {
      {{{0, 3}}, {}},
      {{{0, 3}, {1, 5}}, {}},
      {{{0, 3}}, {{1, &small_set}}},
      {{}, {{0, &small_set}, {1, &big_set}}},
  };

  for (int domain : {5, 40}) {  // 5 = duplicate-heavy (~60 rows per value)
    auto t = MakeEdgeTable(Physical::kNone, seed, /*rows=*/301, domain);
    for (size_t ci = 0; ci < cases.size(); ++ci) {
      const Case& c = cases[ci];
      for (size_t bs : {size_t{1}, size_t{7}, size_t{15}, size_t{16},
                        size_t{17}, size_t{1024}}) {
        ExecOptions scalar_opts;
        scalar_opts.block_size = bs;
        scalar_opts.force_scalar_kernels = true;
        ProbeStats scalar_stats;
        const std::vector<RowId> expected =
            ProbeTrace(*t, c.bindings, c.filters, scalar_opts, &scalar_stats);
        ExecOptions simd_opts;
        simd_opts.block_size = bs;
        ProbeStats simd_stats;
        EXPECT_EQ(ProbeTrace(*t, c.bindings, c.filters, simd_opts, &simd_stats),
                  expected)
            << "domain=" << domain << " case=" << ci << " block_size=" << bs;
        EXPECT_EQ(simd_stats.rows_scanned, scalar_stats.rows_scanned);
        EXPECT_EQ(simd_stats.rows_matched, scalar_stats.rows_matched);
      }
    }
  }
}

TEST_P(ScalarVsSimdKernels, HashTableArmsAgreeOnDuplicateHeavyKeys) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Random rng(seed);
  for (int key_width : {1, 2}) {
    // ~8 duplicate rows per distinct key; enough rows to force rehashes and
    // straddle the 64-key hash/probe chunks.
    const uint32_t rows = 333;
    std::vector<ObjectId> keys(rows * static_cast<size_t>(key_width));
    for (auto& v : keys) v = rng.Uniform(0, 40);
    JoinHashTable scalar_table(key_width, /*force_scalar=*/true);
    JoinHashTable simd_table(key_width);
    scalar_table.Reserve(rows);
    simd_table.Reserve(rows);
    for (uint32_t r = 0; r < rows; ++r) {
      scalar_table.Insert(keys.data() + r * static_cast<size_t>(key_width), r);
    }
    simd_table.InsertBatch(keys.data(), rows, /*first_row=*/0);
    ASSERT_EQ(simd_table.num_keys(), scalar_table.num_keys());
    ASSERT_EQ(simd_table.num_rows(), scalar_table.num_rows());

    // Probe with the build keys plus misses, batched on both tables, and
    // walk every chain: the row sequences must match node for node.
    std::vector<ObjectId> probes = keys;
    for (int i = 0; i < 64 * key_width; ++i) probes.push_back(1000 + i);
    const size_t n = probes.size() / static_cast<size_t>(key_width);
    std::vector<uint32_t> scalar_heads(n), simd_heads(n);
    scalar_table.LookupBatch(probes.data(), n, scalar_heads.data());
    simd_table.LookupBatch(probes.data(), n, simd_heads.data());
    for (size_t i = 0; i < n; ++i) {
      std::vector<uint32_t> scalar_rows, simd_rows;
      for (uint32_t node = scalar_heads[i]; node != JoinHashTable::kNil;
           node = scalar_table.NextMatch(node)) {
        scalar_rows.push_back(scalar_table.MatchRow(node));
      }
      for (uint32_t node = simd_heads[i]; node != JoinHashTable::kNil;
           node = simd_table.NextMatch(node)) {
        simd_rows.push_back(simd_table.MatchRow(node));
      }
      EXPECT_EQ(simd_rows, scalar_rows) << "key_width=" << key_width
                                        << " probe=" << i;
      // And the single-key path agrees with the batch on the same table.
      EXPECT_EQ(simd_table.Lookup(
                    probes.data() + i * static_cast<size_t>(key_width)),
                simd_heads[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScalarVsSimdKernels, ::testing::Range(1, 6));

namespace hashinv {

/// Modular inverse of an odd 64-bit constant (Newton: x *= 2 - a*x).
uint64_t InvMul(uint64_t a) {
  uint64_t x = a;
  for (int i = 0; i < 6; ++i) x *= 2 - a * x;
  return x;
}

/// Inverse of z = x ^ (x >> s).
uint64_t UnXorShift(uint64_t z, int s) {
  uint64_t x = z;
  for (int i = 0; i < 6; ++i) x = z ^ (x >> s);
  return x;
}

/// Inverts the width-1 join-key hash: every stage (xorshift, odd multiply,
/// constant xor) is a bijection on 64 bits, so any target hash maps back to
/// exactly one key.
ObjectId KeyForHash(uint64_t h) {
  h = UnXorShift(h, 31);
  h *= InvMul(0x94d049bb133111ebULL);
  h = UnXorShift(h, 27);
  h *= InvMul(0xbf58476d1ce4e5b9ULL);
  h = UnXorShift(h, 30);
  h *= InvMul(1099511628211ULL);  // FNV prime
  return static_cast<ObjectId>(h ^ 1469598103934665603ULL);  // FNV basis
}

}  // namespace hashinv

TEST(JoinHashTableTest, TagCollisionsResolveByFullHash) {
  // The group-probe parks on the hash's top-32-bit tag and verifies the full
  // hash afterwards; random keys hit a tag-equal-but-hash-unequal slot with
  // probability ~2^-32, so build the collision deliberately by inverting the
  // (bijective) hash chain. Slot layout with 32 slots (Reserve(20)):
  //   h_far  -> home 0x10, different tag — occupies the walk's first slot
  //   h_near -> home 0x11, SAME tag as h_probe — the false park target
  //   h_probe-> home 0x10, walks over h_far, parks on h_near's slot, and
  //             must resume past it on the full-hash mismatch.
  const uint64_t h_probe = (0xDEADBEEFULL << 32) | 0x10;
  const uint64_t h_near = h_probe ^ 1;                    // same tag
  const uint64_t h_far = (0x0BADF00DULL << 32) | 0x10;    // same home slot
  const ObjectId k_probe = hashinv::KeyForHash(h_probe);
  const ObjectId k_near = hashinv::KeyForHash(h_near);
  const ObjectId k_far = hashinv::KeyForHash(h_far);
  ASSERT_EQ(simd::HashTupleFnv(&k_probe, 1), h_probe);
  ASSERT_EQ(simd::HashTupleFnv(&k_near, 1), h_near);
  ASSERT_EQ(simd::HashTupleFnv(&k_far, 1), h_far);

  for (bool insert_probe_key : {false, true}) {
    JoinHashTable scalar_table(1, /*force_scalar=*/true);
    JoinHashTable simd_table(1);
    for (JoinHashTable* t : {&scalar_table, &simd_table}) {
      t->Reserve(20);
      t->Insert(&k_far, 0);
      t->Insert(&k_near, 1);
      t->Insert(&k_near, 2);  // chained duplicate behind the false park
      if (insert_probe_key) t->Insert(&k_probe, 3);
    }
    const ObjectId probes[] = {k_probe, k_near, k_far};
    uint32_t scalar_heads[3], simd_heads[3];
    scalar_table.LookupBatch(probes, 3, scalar_heads);
    simd_table.LookupBatch(probes, 3, simd_heads);
    for (size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(simd_heads[i], scalar_heads[i])
          << "insert_probe_key=" << insert_probe_key << " probe=" << i;
      EXPECT_EQ(simd_heads[i], simd_table.Lookup(&probes[i]));
    }
    // The collision probe must land on its own chain or miss — never on the
    // tag-equal neighbor's chain.
    if (insert_probe_key) {
      ASSERT_NE(simd_heads[0], JoinHashTable::kNil);
      EXPECT_EQ(simd_table.MatchRow(simd_heads[0]), 3u);
    } else {
      EXPECT_EQ(simd_heads[0], JoinHashTable::kNil);
    }
    EXPECT_EQ(simd_table.MatchRow(simd_heads[1]), 1u);
  }
}

TEST(SelectionKernelTest, InSetLadderCoversSetSizesOneThroughFive) {
  // Sizes 1-4 take the unrolled compare ladder, size 5 the hash-set probe;
  // all must agree with a by-hand filter, scalar and dispatched.
  auto t = MakeEdgeTable(Physical::kNone, 13, /*rows=*/100, /*domain=*/8);
  for (size_t set_size = 1; set_size <= 5; ++set_size) {
    storage::IdSet set;
    for (ObjectId v = 0; v < static_cast<ObjectId>(set_size); ++v) {
      set.insert(v * 2);  // {0}, {0,2}, ... {0,2,4,6,8}
    }
    for (bool force_scalar : {false, true}) {
      RowBlock block;
      block.Reset(t->arity(), 128);
      for (size_t i = 0; i < 100; ++i) block.row_ids[i] = static_cast<RowId>(i);
      block.SelectAll(100);
      const size_t n = SelInSet(*t, &block, 1, set, force_scalar);
      std::vector<RowId> got(block.sel.begin(), block.sel.begin() + n);
      std::vector<RowId> want;
      for (RowId r = 0; r < 100; ++r) {
        if (set.contains(t->At(r, 1))) want.push_back(r);
      }
      EXPECT_EQ(got, want) << "set_size=" << set_size
                           << " force_scalar=" << force_scalar;
    }
  }
}

TEST(IndexNestedLoopBlockIteratorTest, InnerBloomsPruneWithoutChangingRows) {
  auto outer_t = MakeEdgeTable(Physical::kNone, 31, /*rows=*/150, /*domain=*/30);
  auto inner_t = MakeEdgeTable(Physical::kHash, 32, /*rows=*/150, /*domain=*/30);

  // Bloom over the inner join column's actual values: outer rows joining on
  // a value the inner side never has are pruned without probing.
  storage::BloomFilter bloom(inner_t->NumRows());
  for (RowId r = 0; r < inner_t->NumRows(); ++r) bloom.Add(inner_t->At(r, 0));

  auto run = [&](bool with_blooms, ProbeStats* stats) {
    ScanBlockIterator outer(*outer_t, {}, {});
    IndexNestedLoopBlockIterator join(
        &outer, *inner_t, {{.inner_column = 0, .outer_column = 1}});
    if (with_blooms) join.set_inner_blooms({ColumnBloom{0, &bloom}});
    std::vector<std::vector<ObjectId>> rows;
    RowBlock block;
    while (join.Next(&block)) {
      for (size_t i = 0; i < block.num_selected; ++i) {
        std::vector<ObjectId> row;
        for (int c = 0; c < join.arity(); ++c) {
          row.push_back(block.column(c)[block.sel[i]]);
        }
        rows.push_back(std::move(row));
      }
    }
    *stats = join.stats();
    return rows;
  };

  ProbeStats plain_stats, bloom_stats;
  const auto expected = run(/*with_blooms=*/false, &plain_stats);
  EXPECT_EQ(run(/*with_blooms=*/true, &bloom_stats), expected);
  // Every pruned outer row still counts as a (bloom-skipped) probe, so probe
  // totals match the per-row accounting; scanned rows can only shrink.
  EXPECT_EQ(bloom_stats.probes, plain_stats.probes);
  EXPECT_LE(bloom_stats.rows_scanned, plain_stats.rows_scanned);
  EXPECT_EQ(bloom_stats.rows_matched, plain_stats.rows_matched);
}

}  // namespace
}  // namespace xk::exec
