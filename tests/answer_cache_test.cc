// Tests for the serving layer's whole-answer cache: key canonicalization,
// hit/miss/eviction and epoch invalidation at the AnswerCache level, then
// end to end through QueryService — cache_mode semantics, N-way in-flight
// coalescing collapsing to a single executor run, and follower
// cancellation/deadline detach.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "datagen/dblp_gen.h"
#include "engine/xkeyword.h"
#include "service/answer_cache.h"
#include "service/query_service.h"
#include "test_util.h"

namespace xk::service {
namespace {

using engine::CacheMode;
using engine::Completeness;
using engine::QueryMode;
using engine::QueryRequest;
using engine::QueryResponse;
using std::chrono::milliseconds;

QueryRequest Request(std::vector<std::string> keywords) {
  QueryRequest request;
  request.keywords = std::move(keywords);
  request.decomposition = "XKeyword";
  return request;
}

// --- Canonical key -------------------------------------------------------

TEST(AnswerCacheKeyTest, KeywordOrderDoesNotMatterButMultiplicityDoes) {
  EXPECT_EQ(AnswerCache::CanonicalKey(Request({"gray", "codd"})),
            AnswerCache::CanonicalKey(Request({"codd", "gray"})));
  EXPECT_NE(AnswerCache::CanonicalKey(Request({"gray", "gray", "codd"})),
            AnswerCache::CanonicalKey(Request({"gray", "codd"})));
}

TEST(AnswerCacheKeyTest, ResultShapingOptionsChangeTheKey) {
  const QueryRequest base = Request({"gray", "codd"});
  const std::string key = AnswerCache::CanonicalKey(base);

  QueryRequest other = base;
  other.decomposition = "Complete";
  EXPECT_NE(AnswerCache::CanonicalKey(other), key);
  other = base;
  other.mode = QueryMode::kNaive;
  EXPECT_NE(AnswerCache::CanonicalKey(other), key);
  other = base;
  other.options.max_size_z = 4;
  EXPECT_NE(AnswerCache::CanonicalKey(other), key);
  other = base;
  other.options.max_network_size = 3;
  EXPECT_NE(AnswerCache::CanonicalKey(other), key);
  other = base;
  other.options.per_network_k = 99;
  EXPECT_NE(AnswerCache::CanonicalKey(other), key);
  other = base;
  other.options.global_k = 7;
  EXPECT_NE(AnswerCache::CanonicalKey(other), key);
  // num_shards is fingerprinted defensively even though the sharded data
  // plane is byte-identical by contract: an answer computed under one
  // scatter layout must never mask a regression of that invariant.
  other = base;
  other.options.num_shards = 4;
  EXPECT_NE(AnswerCache::CanonicalKey(other), key);
}

TEST(AnswerCacheKeyTest, PerformanceKnobsAndServingContractDoNot) {
  const QueryRequest base = Request({"gray", "codd"});
  const std::string key = AnswerCache::CanonicalKey(base);

  QueryRequest other = base;
  other.options.num_threads = 16;
  other.options.intra_plan_threads = 8;
  other.options.morsel_size = 7;
  other.options.enable_cache = false;
  other.options.enable_semijoin_pruning = false;
  other.options.shard_parallelism = 8;
  other.options.shard_bound_pushdown = false;
  EXPECT_EQ(AnswerCache::CanonicalKey(other), key);
  other = base;
  other.deadline = milliseconds(5);
  EXPECT_EQ(AnswerCache::CanonicalKey(other), key);
  other = base;
  other.cache_mode = CacheMode::kRefresh;
  EXPECT_EQ(AnswerCache::CanonicalKey(other), key);
}

TEST(AnswerCacheKeyTest, NetworkBoundChangesKeyAnytimeKnobsDoNot) {
  QueryRequest all = Request({"gray"});
  all.mode = QueryMode::kAll;
  const std::string key = AnswerCache::CanonicalKey(all);
  all.options.max_network_size = 3;
  EXPECT_NE(AnswerCache::CanonicalKey(all), key);

  // Anytime budgets shape when a query degrades, never what the complete
  // answer is — and only complete answers are stored, so the key must not
  // fragment across budget settings.
  QueryRequest topk = Request({"gray"});
  const std::string topk_key = AnswerCache::CanonicalKey(topk);
  topk.options.enable_anytime = false;
  EXPECT_EQ(AnswerCache::CanonicalKey(topk), topk_key);
  topk.options.enable_anytime = true;
  topk.options.anytime_cost_budget = 42;
  topk.options.anytime_headroom = 2.0;
  topk.options.anytime_min_plan_rows = 1;
  EXPECT_EQ(AnswerCache::CanonicalKey(topk), topk_key);
}

// --- AnswerCache unit ----------------------------------------------------

QueryResponse MakeResponse(uint64_t results) {
  QueryResponse response;
  response.stats.results = results;
  present::Mtton m;
  m.objects = {1, 2, 3};
  response.mttons.push_back(m);
  return response;
}

TEST(AnswerCacheTest, HitMissAndStaleGeneration) {
  AnswerCache cache(AnswerCacheOptions{});
  EXPECT_EQ(cache.Get("k", 1).kind, AnswerCache::Lookup::kMiss);
  cache.Put("k", /*generation=*/1, MakeResponse(7));

  AnswerCache::LookupResult hit = cache.Get("k", 1);
  ASSERT_EQ(hit.kind, AnswerCache::Lookup::kHit);
  ASSERT_NE(hit.response, nullptr);
  EXPECT_EQ(hit.response->stats.results, 7u);

  // A generation bump invalidates without touching the entry store.
  EXPECT_EQ(cache.Get("k", 2).kind, AnswerCache::Lookup::kStale);
  // The stale entry was erased: the next lookup is a plain miss.
  EXPECT_EQ(cache.Get("k", 2).kind, AnswerCache::Lookup::kMiss);

  const AnswerCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.stale, 1u);
  EXPECT_EQ(stats.misses, 3u);  // initial + stale + post-erase
}

TEST(AnswerCacheTest, ByteBudgetEvictsOldAnswers) {
  AnswerCacheOptions options;
  options.num_shards = 1;
  options.max_bytes =
      3 * AnswerCache::EstimateBytes("key-0", MakeResponse(0)) / 2;
  AnswerCache cache(options);
  EXPECT_EQ(cache.Put("key-0", 1, MakeResponse(0)), 0u);
  EXPECT_EQ(cache.Put("key-1", 1, MakeResponse(1)), 1u);  // evicts key-0
  EXPECT_EQ(cache.Get("key-0", 1).kind, AnswerCache::Lookup::kMiss);
  EXPECT_EQ(cache.Get("key-1", 1).kind, AnswerCache::Lookup::kHit);
  EXPECT_EQ(cache.GetStats().evictions, 1u);
}

TEST(AnswerCacheTest, EstimateBytesGrowsWithPayload) {
  QueryResponse small = MakeResponse(1);
  QueryResponse big = MakeResponse(1);
  for (int i = 0; i < 100; ++i) {
    present::Mtton m;
    m.objects = {i, i + 1, i + 2, i + 3};
    big.mttons.push_back(m);
  }
  EXPECT_GT(AnswerCache::EstimateBytes("k", big),
            AnswerCache::EstimateBytes("k", small) + 100 * sizeof(present::Mtton));
}

// --- End to end through QueryService -------------------------------------

/// DBLP database sized so the expensive query below runs long enough to
/// attach followers mid-flight, while cheap queries stay in milliseconds.
class AnswerCacheServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    datagen::DblpConfig config;
    config.num_conferences = 8;
    config.years_per_conference = 5;
    config.avg_papers_per_year = 18;
    config.avg_citations_per_paper = 12.0;
    config.author_vocab = 150;
    config.title_vocab = 150;
    config.seed = 2003;
    db_ = datagen::DblpDatabase::Generate(config).MoveValueUnsafe();
    xk_ = engine::XKeyword::Load(&db_->graph(), &db_->schema(), &db_->tss())
              .MoveValueUnsafe();
    ASSERT_TRUE(xk_->AddDecomposition(
                       decomp::MakeXKeyword(db_->tss(), /*B=*/2, /*M=*/6)
                           .MoveValueUnsafe())
                    .ok());
  }

  static QueryRequest Cheap(const std::vector<std::string>& keywords) {
    QueryRequest request = Request(keywords);
    request.options.max_size_z = 4;
    request.options.per_network_k = 3;
    return request;
  }

  /// Long enough to observe in-flight: the naive executor over the full
  /// network space with effectively unbounded per-network output.
  static QueryRequest Expensive() {
    QueryRequest request = Request({"gray", "codd"});
    request.mode = QueryMode::kNaive;
    request.options.max_size_z = 6;
    request.options.per_network_k = 1000000;
    return request;
  }

  template <typename Predicate>
  static bool SpinUntil(Predicate predicate, milliseconds budget) {
    const auto deadline = std::chrono::steady_clock::now() + budget;
    while (std::chrono::steady_clock::now() < deadline) {
      if (predicate()) return true;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    return predicate();
  }

  std::unique_ptr<datagen::DblpDatabase> db_;
  std::unique_ptr<engine::XKeyword> xk_;
};

TEST_F(AnswerCacheServiceTest, RepeatedQueryIsServedFromCacheWithoutExecution) {
  XK_ASSERT_OK_AND_ASSIGN(std::unique_ptr<QueryService> service,
                          QueryService::Create(xk_.get(), {}));
  XK_ASSERT_OK_AND_ASSIGN(QueryHandle first, service->Submit(Cheap({"gray"})));
  XK_ASSERT_OK_AND_ASSIGN(QueryResponse miss_response, first.Wait());
  EXPECT_TRUE(miss_response.status.ok());
  const uint64_t probes_after_miss =
      service->metrics().Snapshot().per_decomposition.at("XKeyword").probes.probes;

  for (int i = 0; i < 5; ++i) {
    XK_ASSERT_OK_AND_ASSIGN(QueryHandle again, service->Submit(Cheap({"gray"})));
    XK_ASSERT_OK_AND_ASSIGN(QueryResponse hit_response, again.Wait());
    EXPECT_TRUE(hit_response.status.ok());
    ASSERT_EQ(hit_response.mttons.size(), miss_response.mttons.size());
    for (size_t m = 0; m < miss_response.mttons.size(); ++m) {
      EXPECT_EQ(hit_response.mttons[m].objects, miss_response.mttons[m].objects);
    }
  }

  const MetricsSnapshot snap = service->metrics().Snapshot();
  EXPECT_EQ(snap.cache_misses, 1u);
  EXPECT_EQ(snap.cache_hits, 5u);
  EXPECT_EQ(snap.completed_ok, 6u);
  // No engine work for the hits: the aggregated probe counters are frozen.
  EXPECT_EQ(snap.per_decomposition.at("XKeyword").probes.probes,
            probes_after_miss);
  ASSERT_NE(service->answer_cache(), nullptr);
  EXPECT_EQ(service->answer_cache()->GetStats().entries, 1u);
}

TEST_F(AnswerCacheServiceTest, CacheModeBypassAndRefreshSkipTheRead) {
  XK_ASSERT_OK_AND_ASSIGN(std::unique_ptr<QueryService> service,
                          QueryService::Create(xk_.get(), {}));
  QueryRequest request = Cheap({"codd"});
  for (int i = 0; i < 2; ++i) {
    XK_ASSERT_OK_AND_ASSIGN(QueryHandle h, service->Submit(request));
    XK_ASSERT_OK_AND_ASSIGN(QueryResponse r, h.Wait());
    EXPECT_TRUE(r.status.ok());
  }
  EXPECT_EQ(service->metrics().cache_hits(), 1u);

  // kBypass: no read, no write, no coalescing.
  request.cache_mode = CacheMode::kBypass;
  XK_ASSERT_OK_AND_ASSIGN(QueryHandle bypass, service->Submit(request));
  XK_ASSERT_OK_AND_ASSIGN(QueryResponse bypass_response, bypass.Wait());
  EXPECT_TRUE(bypass_response.status.ok());
  EXPECT_EQ(service->metrics().cache_hits(), 1u);
  EXPECT_EQ(service->metrics().cache_misses(), 1u);  // bypass counts nowhere

  // kRefresh: recomputes and overwrites even though a fresh answer exists.
  request.cache_mode = CacheMode::kRefresh;
  XK_ASSERT_OK_AND_ASSIGN(QueryHandle refresh, service->Submit(request));
  XK_ASSERT_OK_AND_ASSIGN(QueryResponse refresh_response, refresh.Wait());
  EXPECT_TRUE(refresh_response.status.ok());
  EXPECT_EQ(service->metrics().cache_hits(), 1u);
  EXPECT_EQ(service->metrics().cache_misses(), 2u);

  // The refreshed answer serves the next default-mode submit.
  request.cache_mode = CacheMode::kDefault;
  XK_ASSERT_OK_AND_ASSIGN(QueryHandle h, service->Submit(request));
  XK_ASSERT_OK_AND_ASSIGN(QueryResponse r, h.Wait());
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(service->metrics().cache_hits(), 2u);
}

TEST_F(AnswerCacheServiceTest, GenerationBumpInvalidatesCachedAnswers) {
  XK_ASSERT_OK_AND_ASSIGN(std::unique_ptr<QueryService> service,
                          QueryService::Create(xk_.get(), {}));
  XK_ASSERT_OK_AND_ASSIGN(QueryHandle first, service->Submit(Cheap({"gray"})));
  ASSERT_TRUE(first.Wait().ok());
  XK_ASSERT_OK_AND_ASSIGN(QueryHandle hit, service->Submit(Cheap({"gray"})));
  ASSERT_TRUE(hit.Wait().ok());
  EXPECT_EQ(service->metrics().cache_hits(), 1u);

  // The loaded data changes (a decomposition is added): every cached answer
  // predates the new generation and must not be served again.
  const uint64_t before = xk_->data_generation();
  ASSERT_TRUE(xk_->AddDecomposition(
                     decomp::MakeMinimal(
                         db_->tss(), decomp::PhysicalDesign::kClusterPerDirection))
                  .ok());
  EXPECT_GT(xk_->data_generation(), before);

  XK_ASSERT_OK_AND_ASSIGN(QueryHandle stale, service->Submit(Cheap({"gray"})));
  XK_ASSERT_OK_AND_ASSIGN(QueryResponse recomputed, stale.Wait());
  EXPECT_TRUE(recomputed.status.ok());
  const MetricsSnapshot snap = service->metrics().Snapshot();
  EXPECT_EQ(snap.cache_stale, 1u);
  EXPECT_EQ(snap.cache_hits, 1u);   // unchanged
  EXPECT_EQ(snap.cache_misses, 2u);  // initial + the stale recompute

  // And the recomputed answer is cached at the new generation.
  XK_ASSERT_OK_AND_ASSIGN(QueryHandle fresh, service->Submit(Cheap({"gray"})));
  ASSERT_TRUE(fresh.Wait().ok());
  EXPECT_EQ(service->metrics().cache_hits(), 2u);
}

TEST_F(AnswerCacheServiceTest, NWayCoalescingCollapsesToOneExecution) {
  QueryServiceOptions options;
  options.num_workers = 4;
  XK_ASSERT_OK_AND_ASSIGN(std::unique_ptr<QueryService> service,
                          QueryService::Create(xk_.get(), options));

  // Reference run for both the answer and the per-execution probe count.
  XK_ASSERT_OK_AND_ASSIGN(QueryResponse expected, xk_->Run(Expensive()));
  ASSERT_TRUE(expected.status.ok());

  XK_ASSERT_OK_AND_ASSIGN(QueryHandle leader, service->Submit(Expensive()));
  ASSERT_TRUE(SpinUntil([&] { return service->metrics().in_flight() >= 1; },
                        milliseconds(10000)));

  constexpr int kFollowers = 6;
  std::vector<QueryHandle> followers;
  for (int i = 0; i < kFollowers; ++i) {
    XK_ASSERT_OK_AND_ASSIGN(QueryHandle f, service->Submit(Expensive()));
    followers.push_back(f);
  }
  EXPECT_EQ(service->metrics().coalesced(), static_cast<uint64_t>(kFollowers));

  XK_ASSERT_OK_AND_ASSIGN(QueryResponse leader_response, leader.Wait());
  EXPECT_TRUE(leader_response.status.ok());
  for (QueryHandle& f : followers) {
    XK_ASSERT_OK_AND_ASSIGN(QueryResponse r, f.Wait());
    EXPECT_TRUE(r.status.ok());
    ASSERT_EQ(r.mttons.size(), expected.mttons.size());
    for (size_t m = 0; m < expected.mttons.size(); ++m) {
      EXPECT_EQ(r.mttons[m].objects, expected.mttons[m].objects);
    }
  }

  const MetricsSnapshot snap = service->metrics().Snapshot();
  EXPECT_EQ(snap.completed_ok, static_cast<uint64_t>(kFollowers + 1));
  EXPECT_EQ(snap.coalesced, static_cast<uint64_t>(kFollowers));
  // Exactly one executor run: the aggregated engine counters equal ONE
  // execution of this query, despite N identical concurrent requests.
  EXPECT_EQ(snap.per_decomposition.at("XKeyword").probes.probes,
            expected.stats.probes.probes);
  EXPECT_EQ(snap.peak_in_flight, 1);
}

TEST_F(AnswerCacheServiceTest, FollowerCancelDetachesOnlyThatFollower) {
  QueryServiceOptions options;
  options.num_workers = 2;
  XK_ASSERT_OK_AND_ASSIGN(std::unique_ptr<QueryService> service,
                          QueryService::Create(xk_.get(), options));

  XK_ASSERT_OK_AND_ASSIGN(QueryHandle leader, service->Submit(Expensive()));
  ASSERT_TRUE(SpinUntil([&] { return service->metrics().in_flight() >= 1; },
                        milliseconds(10000)));
  XK_ASSERT_OK_AND_ASSIGN(QueryHandle follower, service->Submit(Expensive()));
  XK_ASSERT_OK_AND_ASSIGN(QueryHandle survivor, service->Submit(Expensive()));
  ASSERT_EQ(service->metrics().coalesced(), 2u);

  follower.Cancel();
  XK_ASSERT_OK_AND_ASSIGN(QueryResponse cancelled, follower.Wait());
  EXPECT_TRUE(cancelled.status.IsCancelled()) << cancelled.status.ToString();
  EXPECT_EQ(cancelled.completeness, Completeness::kFailed);

  // The shared execution and the other follower are unaffected.
  XK_ASSERT_OK_AND_ASSIGN(QueryResponse leader_response, leader.Wait());
  EXPECT_TRUE(leader_response.status.ok()) << leader_response.status.ToString();
  XK_ASSERT_OK_AND_ASSIGN(QueryResponse survivor_response, survivor.Wait());
  EXPECT_TRUE(survivor_response.status.ok());
  EXPECT_EQ(survivor_response.mttons.size(), leader_response.mttons.size());

  const MetricsSnapshot snap = service->metrics().Snapshot();
  EXPECT_EQ(snap.cancelled, 1u);
  EXPECT_EQ(snap.completed_ok, 2u);
}

TEST_F(AnswerCacheServiceTest, FollowerDeadlineDetachesDuringWait) {
  QueryServiceOptions options;
  options.num_workers = 2;
  XK_ASSERT_OK_AND_ASSIGN(std::unique_ptr<QueryService> service,
                          QueryService::Create(xk_.get(), options));

  XK_ASSERT_OK_AND_ASSIGN(QueryHandle leader, service->Submit(Expensive()));
  ASSERT_TRUE(SpinUntil([&] { return service->metrics().in_flight() >= 1; },
                        milliseconds(10000)));
  QueryRequest hurried = Expensive();
  hurried.deadline = milliseconds(5);
  XK_ASSERT_OK_AND_ASSIGN(QueryHandle follower, service->Submit(hurried));
  ASSERT_EQ(service->metrics().coalesced(), 1u);

  XK_ASSERT_OK_AND_ASSIGN(QueryResponse timed_out, follower.Wait());
  EXPECT_TRUE(timed_out.status.IsDeadlineExceeded())
      << timed_out.status.ToString();
  XK_ASSERT_OK_AND_ASSIGN(QueryResponse leader_response, leader.Wait());
  EXPECT_TRUE(leader_response.status.ok());
}

TEST_F(AnswerCacheServiceTest, CacheDisabledStillCoalesces) {
  QueryServiceOptions options;
  options.enable_answer_cache = false;
  XK_ASSERT_OK_AND_ASSIGN(std::unique_ptr<QueryService> service,
                          QueryService::Create(xk_.get(), options));
  EXPECT_EQ(service->answer_cache(), nullptr);

  XK_ASSERT_OK_AND_ASSIGN(QueryHandle leader, service->Submit(Expensive()));
  ASSERT_TRUE(SpinUntil([&] { return service->metrics().in_flight() >= 1; },
                        milliseconds(10000)));
  XK_ASSERT_OK_AND_ASSIGN(QueryHandle follower, service->Submit(Expensive()));
  EXPECT_EQ(service->metrics().coalesced(), 1u);
  ASSERT_TRUE(leader.Wait().ok());
  ASSERT_TRUE(follower.Wait().ok());
  // No cache: the same query later re-executes.
  EXPECT_EQ(service->metrics().cache_hits(), 0u);
  EXPECT_EQ(service->metrics().cache_misses(), 0u);
}

}  // namespace
}  // namespace xk::service
