// Copyright (c) the XKeyword authors.
//
// Shared fixtures: the paper's running TPC-H example instance (Figure 1) and
// small helpers for building trees by hand.

#ifndef XK_TESTS_TEST_UTIL_H_
#define XK_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "datagen/tpch_gen.h"
#include "engine/query_engine.h"
#include "schema/tss_graph.h"
#include "xml/xml_graph.h"

#define XK_ASSERT_OK(expr)                              \
  do {                                                  \
    auto _st = (expr);                                  \
    ASSERT_TRUE(_st.ok()) << _st.ToString();            \
  } while (false)

#define XK_EXPECT_OK(expr)                              \
  do {                                                  \
    auto _st = (expr);                                  \
    EXPECT_TRUE(_st.ok()) << _st.ToString();            \
  } while (false)

/// ASSERT that a Result is ok and bind its value.
#define XK_ASSERT_OK_AND_ASSIGN(lhs, rexpr)                    \
  auto XK_CONCAT(_r_, __LINE__) = (rexpr);                     \
  ASSERT_TRUE(XK_CONCAT(_r_, __LINE__).ok())                   \
      << XK_CONCAT(_r_, __LINE__).status().ToString();         \
  lhs = XK_CONCAT(_r_, __LINE__).MoveValueUnsafe()

namespace xk::testing {

/// The hand-built instance of Figure 1: John (US) supplying lineitems whose
/// lines reference a TV part with VCR sub-parts and a "set of VCR and DVD"
/// product, plus Mike, orders, and a service call.
struct Figure1Database {
  xml::XmlGraph graph;
  schema::SchemaGraph schema;
  std::unique_ptr<schema::TssGraph> tss;

  // Handles used by assertions.
  xml::NodeId john, mike;
  xml::NodeId tv_part, vcr_part1, vcr_part2;
  xml::NodeId product;  // descr "set of VCR and DVD"
  xml::NodeId order1, order2;
  xml::NodeId lineitem_product;  // the lineitem whose line -> product
};

/// Builds the Figure-1 database. Dies on internal errors (test-only).
std::unique_ptr<Figure1Database> MakeFigure1Database();

/// One-call query helper over QueryEngine::Run for tests that only care
/// about the result list: builds the QueryRequest, runs it, and returns the
/// mttons. Engine counters accumulate (ExecutionStats::Add) into *stats
/// across calls, except `results`, which is assigned per call. The
/// response's own status is discarded — a soft stop (deadline/cancel)
/// surfaces as a shorter result list, exactly like the response it wraps.
Result<std::vector<present::Mtton>> RunMode(
    const engine::QueryEngine& engine, engine::QueryMode mode,
    const std::vector<std::string>& keywords, const std::string& decomposition,
    const engine::QueryOptions& options,
    engine::ExecutionStats* stats = nullptr);

inline Result<std::vector<present::Mtton>> RunTopK(
    const engine::QueryEngine& engine, const std::vector<std::string>& keywords,
    const std::string& decomposition, const engine::QueryOptions& options,
    engine::ExecutionStats* stats = nullptr) {
  return RunMode(engine, engine::QueryMode::kTopK, keywords, decomposition,
                 options, stats);
}

inline Result<std::vector<present::Mtton>> RunNaive(
    const engine::QueryEngine& engine, const std::vector<std::string>& keywords,
    const std::string& decomposition, const engine::QueryOptions& options,
    engine::ExecutionStats* stats = nullptr) {
  return RunMode(engine, engine::QueryMode::kNaive, keywords, decomposition,
                 options, stats);
}

inline Result<std::vector<present::Mtton>> RunAll(
    const engine::QueryEngine& engine, const std::vector<std::string>& keywords,
    const std::string& decomposition, const engine::QueryOptions& options,
    engine::ExecutionStats* stats = nullptr) {
  return RunMode(engine, engine::QueryMode::kAll, keywords, decomposition,
                 options, stats);
}

}  // namespace xk::testing

#endif  // XK_TESTS_TEST_UTIL_H_
