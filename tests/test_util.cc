#include "test_util.h"

#include "common/logging.h"

namespace xk::testing {

Result<std::vector<present::Mtton>> RunMode(
    const engine::QueryEngine& engine, engine::QueryMode mode,
    const std::vector<std::string>& keywords, const std::string& decomposition,
    const engine::QueryOptions& options, engine::ExecutionStats* stats) {
  engine::QueryRequest request;
  request.keywords = keywords;
  request.decomposition = decomposition;
  request.mode = mode;
  request.options = options;
  XK_ASSIGN_OR_RETURN(engine::QueryResponse response, engine.Run(request));
  if (stats != nullptr) {
    const uint64_t results = response.stats.results;
    stats->Add(response.stats);
    stats->results = results;
  }
  return std::move(response.mttons);
}

namespace {
xml::NodeId Leaf(xml::XmlGraph* g, xml::NodeId parent, const char* tag,
                 const std::string& value) {
  xml::NodeId n = g->AddNode(tag, value);
  XK_CHECK(g->AddContainmentEdge(parent, n).ok());
  return n;
}
}  // namespace

std::unique_ptr<Figure1Database> MakeFigure1Database() {
  auto db = std::make_unique<Figure1Database>();
  auto tss = datagen::BuildTpchSchema(&db->schema);
  XK_CHECK(tss.ok());
  db->tss = tss.MoveValueUnsafe();

  xml::XmlGraph& g = db->graph;

  // Parts: a TV (key 1005) whose sub-parts are two VCRs (keys 1008, 1009),
  // plus a standalone TV (key 1002).
  db->tv_part = g.AddNode("part");
  Leaf(&g, db->tv_part, "key", "1005");
  Leaf(&g, db->tv_part, "name", "TV");
  db->vcr_part1 = g.AddNode("part");
  Leaf(&g, db->vcr_part1, "key", "1008");
  Leaf(&g, db->vcr_part1, "name", "VCR");
  db->vcr_part2 = g.AddNode("part");
  Leaf(&g, db->vcr_part2, "key", "1009");
  Leaf(&g, db->vcr_part2, "name", "VCR");
  xml::NodeId tv2 = g.AddNode("part");
  Leaf(&g, tv2, "key", "1002");
  Leaf(&g, tv2, "name", "TV");
  for (xml::NodeId vcr : {db->vcr_part1, db->vcr_part2}) {
    xml::NodeId sub = g.AddNode("sub");
    XK_CHECK(g.AddContainmentEdge(db->tv_part, sub).ok());
    XK_CHECK(g.AddReferenceEdge(sub, vcr).ok());
  }

  // Product 2005: "set of VCR and DVD".
  db->product = g.AddNode("product");
  Leaf(&g, db->product, "prodkey", "2005");
  Leaf(&g, db->product, "descr", "set of VCR and DVD");

  // Persons.
  db->john = g.AddNode("person");
  Leaf(&g, db->john, "name", "John");
  Leaf(&g, db->john, "nation", "US");
  db->mike = g.AddNode("person");
  Leaf(&g, db->mike, "name", "Mike");
  Leaf(&g, db->mike, "nation", "US");

  // John's service call: "DVD error".
  xml::NodeId call = g.AddNode("service_call");
  XK_CHECK(g.AddContainmentEdge(db->john, call).ok());
  Leaf(&g, call, "descr", "DVD error");
  Leaf(&g, call, "date", "2002-11-10");

  auto make_lineitem = [&](xml::NodeId order, const char* qty, const char* ship,
                           xml::NodeId supplier_person, xml::NodeId line_target) {
    xml::NodeId li = g.AddNode("lineitem");
    XK_CHECK(g.AddContainmentEdge(order, li).ok());
    Leaf(&g, li, "quantity", qty);
    Leaf(&g, li, "shipdate", ship);
    xml::NodeId supplier = g.AddNode("supplier");
    XK_CHECK(g.AddContainmentEdge(li, supplier).ok());
    XK_CHECK(g.AddReferenceEdge(supplier, supplier_person).ok());
    xml::NodeId line = g.AddNode("line");
    XK_CHECK(g.AddContainmentEdge(li, line).ok());
    XK_CHECK(g.AddReferenceEdge(line, line_target).ok());
    return li;
  };

  // Mike's orders; John supplies every lineitem.
  db->order1 = g.AddNode("order");
  XK_CHECK(g.AddContainmentEdge(db->mike, db->order1).ok());
  Leaf(&g, db->order1, "date", "2002-11-01");
  db->lineitem_product =
      make_lineitem(db->order1, "10", "2002-11-05", db->john, db->product);

  db->order2 = g.AddNode("order");
  XK_CHECK(g.AddContainmentEdge(db->mike, db->order2).ok());
  Leaf(&g, db->order2, "date", "2002-10-01");
  make_lineitem(db->order2, "6", "2002-10-05", db->john, db->tv_part);
  make_lineitem(db->order2, "10", "2002-10-06", db->john, db->tv_part);

  return db;
}

}  // namespace xk::testing
