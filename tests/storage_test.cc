// Unit tests for the relational storage substrate.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>

#include <numeric>
#include <vector>

#include "common/random.h"
#include "storage/blob_store.h"
#include "storage/catalog.h"
#include "storage/statistics.h"
#include "storage/table.h"
#include "test_util.h"

// Counts every global allocation in this binary so no-allocation guarantees
// can be asserted directly (HashIndexTest.MissingKeyLookupDoesNotAllocate).
// Sanitizer builds interpose the allocator themselves — replacing operator
// new there causes alloc/dealloc mismatches, so the counter stays inert and
// the no-allocation assertions become vacuous under asan/tsan (they are
// enforced by the default preset).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define XK_COUNT_ALLOCATIONS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define XK_COUNT_ALLOCATIONS 0
#else
#define XK_COUNT_ALLOCATIONS 1
#endif
#else
#define XK_COUNT_ALLOCATIONS 1
#endif

namespace {
std::atomic<size_t> g_allocations{0};
}  // namespace

#if XK_COUNT_ALLOCATIONS
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif  // XK_COUNT_ALLOCATIONS

namespace xk::storage {
namespace {

Table MakeTable() {
  Table t("t", {"a", "b", "c"});
  // (a, b, c): a in [0,4], b = a*10, c = row index.
  for (int64_t i = 0; i < 50; ++i) {
    XK_EXPECT_OK(t.Append(Tuple{i % 5, (i % 5) * 10, i}));
  }
  return t;
}

TEST(TableTest, AppendAndRead) {
  Table t("t", {"x", "y"});
  XK_ASSERT_OK(t.Append(Tuple{1, 2}));
  XK_ASSERT_OK(t.Append(Tuple{3, 4}));
  ASSERT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.At(0, 0), 1);
  EXPECT_EQ(t.At(1, 1), 4);
  TupleView row = t.Row(1);
  EXPECT_EQ(row[0], 3);
}

TEST(TableTest, ArityMismatchRejected) {
  Table t("t", {"x", "y"});
  EXPECT_TRUE(t.Append(Tuple{1}).IsInvalidArgument());
  EXPECT_TRUE(t.Append(Tuple{1, 2, 3}).IsInvalidArgument());
}

TEST(TableTest, ColumnIndexLookup) {
  Table t("t", {"x", "y"});
  XK_ASSERT_OK_AND_ASSIGN(int y, t.ColumnIndex("y"));
  EXPECT_EQ(y, 1);
  EXPECT_TRUE(t.ColumnIndex("z").status().IsNotFound());
}

TEST(TableTest, FreezeBlocksAppends) {
  Table t("t", {"x"});
  XK_ASSERT_OK(t.Append(Tuple{1}));
  t.Freeze();
  EXPECT_TRUE(t.Append(Tuple{2}).IsAborted());
  EXPECT_EQ(t.NumRows(), 1u);
}

TEST(TableTest, ClusterSortsRowsAndRangeLookups) {
  Table t = MakeTable();
  XK_ASSERT_OK(t.Cluster({0, 2}));
  // Physically sorted by (a, c).
  for (size_t r = 1; r < t.NumRows(); ++r) {
    auto key = [&](RowId row) {
      return std::make_pair(t.At(row, 0), t.At(row, 2));
    };
    EXPECT_LE(key(static_cast<RowId>(r - 1)), key(static_cast<RowId>(r)));
  }
  auto [begin, end] = t.ClusteredRange(Tuple{3});
  EXPECT_EQ(end - begin, 10u);
  for (RowId r = begin; r < end; ++r) EXPECT_EQ(t.At(r, 0), 3);
  // Empty range for absent key.
  auto [b2, e2] = t.ClusteredRange(Tuple{99});
  EXPECT_EQ(b2, e2);
  // Full-key prefix narrows further.
  auto [b3, e3] = t.ClusteredRange(Tuple{3, 3});
  EXPECT_EQ(e3 - b3, 1u);
}

TEST(TableTest, ClusterAfterIndexRejected) {
  Table t = MakeTable();
  XK_ASSERT_OK(t.BuildHashIndex(0));
  EXPECT_TRUE(t.Cluster({0}).IsAborted());
}

TEST(TableTest, ClusterValidatesColumns) {
  Table t = MakeTable();
  EXPECT_TRUE(t.Cluster({}).IsInvalidArgument());
  EXPECT_TRUE(t.Cluster({7}).IsOutOfRange());
}

TEST(HashIndexTest, LookupFindsAllMatches) {
  Table t = MakeTable();
  XK_ASSERT_OK(t.BuildHashIndex(0));
  const HashIndex* idx = t.GetHashIndex(0);
  ASSERT_NE(idx, nullptr);
  EXPECT_EQ(idx->Lookup(2).size(), 10u);
  for (RowId r : idx->Lookup(2)) EXPECT_EQ(t.At(r, 0), 2);
  EXPECT_TRUE(idx->Lookup(77).empty());
  EXPECT_EQ(idx->distinct_keys(), 5u);
}

TEST(HashIndexTest, BuildIsIdempotent) {
  Table t = MakeTable();
  XK_ASSERT_OK(t.BuildHashIndex(1));
  const HashIndex* first = t.GetHashIndex(1);
  XK_ASSERT_OK(t.BuildHashIndex(1));
  EXPECT_EQ(t.GetHashIndex(1), first);
}

TEST(CompositeIndexTest, PrefixLookups) {
  Table t = MakeTable();
  XK_ASSERT_OK(t.BuildCompositeIndex({0, 2}));
  const CompositeIndex* idx = t.GetCompositeIndex({0});
  ASSERT_NE(idx, nullptr);
  auto run = idx->LookupPrefix(Tuple{4});
  EXPECT_EQ(run.size(), 10u);
  for (RowId r : run) EXPECT_EQ(t.At(r, 0), 4);
  auto exact = idx->LookupPrefix(Tuple{4, 9});
  ASSERT_EQ(exact.size(), 1u);
  EXPECT_EQ(t.At(exact[0], 2), 9);
  EXPECT_TRUE(idx->LookupPrefix(Tuple{42}).empty());
}

TEST(CompositeIndexTest, GetRequiresKeyPrefixMatch) {
  Table t = MakeTable();
  XK_ASSERT_OK(t.BuildCompositeIndex({1, 0}));
  EXPECT_NE(t.GetCompositeIndex({1}), nullptr);
  EXPECT_NE(t.GetCompositeIndex({1, 0}), nullptr);
  EXPECT_EQ(t.GetCompositeIndex({0}), nullptr);  // not a prefix
}

TEST(TableTest, DistinctCount) {
  Table t = MakeTable();
  EXPECT_EQ(t.DistinctCount(0), 5u);
  EXPECT_EQ(t.DistinctCount(2), 50u);
  t.Freeze();
  EXPECT_EQ(t.DistinctCount(0), 5u);  // cached path
  EXPECT_EQ(t.DistinctCount(0), 5u);
}

TEST(TableTest, DistinctCountConcurrentReadsAreSafe) {
  // Regression: the lazy distinct cache used to be filled with no
  // synchronization, so concurrent readers of a frozen table raced on the
  // optional slots (flagged by TSan). Every reader must see the same counts.
  Table t = MakeTable();
  const size_t want_a = t.DistinctCount(0);
  const size_t want_b = t.DistinctCount(1);
  const size_t want_c = t.DistinctCount(2);
  t.Freeze();
  constexpr int kThreads = 8;
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (int iter = 0; iter < 50; ++iter) {
        if (t.DistinctCount(0) != want_a) errors.fetch_add(1);
        if (t.DistinctCount(1) != want_b) errors.fetch_add(1);
        if (t.DistinctCount(2) != want_c) errors.fetch_add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0);
}

TEST(HashIndexTest, MissingKeyLookupDoesNotAllocate) {
  Table t = MakeTable();
  XK_ASSERT_OK(t.BuildHashIndex(0));
  const HashIndex* idx = t.GetHashIndex(0);
  ASSERT_NE(idx, nullptr);
  const size_t before = g_allocations.load(std::memory_order_relaxed);
  std::span<const RowId> hit = idx->Lookup(2);
  std::span<const RowId> miss = idx->Lookup(77);
  const size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "Lookup must not touch the heap";
  EXPECT_EQ(hit.size(), 10u);
  EXPECT_TRUE(miss.empty());
}

TEST(TableTest, MemoryBytesGrowsWithIndexes) {
  Table t = MakeTable();
  size_t base = t.MemoryBytes();
  XK_ASSERT_OK(t.BuildHashIndex(0));
  EXPECT_GT(t.MemoryBytes(), base);
}

TEST(BlobStoreTest, PutGetAndDuplicate) {
  BlobStore store;
  XK_ASSERT_OK(store.Put(7, "<person/>"));
  EXPECT_TRUE(store.Put(7, "x").IsAlreadyExists());
  XK_ASSERT_OK_AND_ASSIGN(std::string_view blob, store.Get(7));
  EXPECT_EQ(blob, "<person/>");
  EXPECT_TRUE(store.Get(8).status().IsNotFound());
  EXPECT_TRUE(store.Contains(7));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.MemoryBytes(), 9u);
}

TEST(CatalogTest, CreateGetDrop) {
  Catalog catalog;
  XK_ASSERT_OK_AND_ASSIGN(Table * t, catalog.CreateTable("r", {"a"}));
  ASSERT_NE(t, nullptr);
  EXPECT_TRUE(catalog.CreateTable("r", {"a"}).status().IsAlreadyExists());
  XK_ASSERT_OK_AND_ASSIGN(Table * same, catalog.GetTable("r"));
  EXPECT_EQ(t, same);
  EXPECT_TRUE(catalog.HasTable("r"));
  EXPECT_EQ(catalog.TableNames(), std::vector<std::string>{"r"});
  XK_ASSERT_OK(catalog.DropTable("r"));
  EXPECT_TRUE(catalog.GetTable("r").status().IsNotFound());
  EXPECT_TRUE(catalog.DropTable("r").IsNotFound());
}

TEST(CatalogTest, TableNamesSorted) {
  Catalog catalog;
  XK_ASSERT_OK(catalog.CreateTable("zeta", {"a"}).status());
  XK_ASSERT_OK(catalog.CreateTable("alpha", {"a"}).status());
  EXPECT_EQ(catalog.TableNames(), (std::vector<std::string>{"alpha", "zeta"}));
}

TEST(StatisticsTest, CountsAndFanouts) {
  Statistics stats;
  EXPECT_EQ(stats.NodeCount(3), 0u);
  stats.SetNodeCount(3, 120);
  EXPECT_EQ(stats.NodeCount(3), 120u);
  EXPECT_DOUBLE_EQ(stats.AvgFanout(5), 1.0);
  stats.SetAvgFanout(5, 2.5);
  EXPECT_DOUBLE_EQ(stats.AvgFanout(5), 2.5);
  stats.SetAvgReverseFanout(5, 0.4);
  EXPECT_DOUBLE_EQ(stats.AvgReverseFanout(5), 0.4);
}

TEST(BloomFilterTest, MayContainBlockMatchesPerKeyProbes) {
  for (uint64_t seed : {11u, 29u, 47u}) {
    Random rng(seed);
    BloomFilter bloom(/*expected_keys=*/128);
    for (int i = 0; i < 128; ++i) bloom.Add(rng.Uniform(0, 500));
    // Ragged sizes cross the 64-entry batching boundary of the block probe.
    for (size_t n : {size_t{0}, size_t{1}, size_t{63}, size_t{64}, size_t{65},
                     size_t{300}}) {
      std::vector<ObjectId> values(n == 0 ? 1 : n);
      for (auto& v : values) v = rng.Uniform(0, 1000);  // mixed hits + misses

      std::vector<uint32_t> expected;
      for (uint32_t i = 0; i < n; ++i) {
        if (bloom.MayContain(values[i])) expected.push_back(i);
      }

      for (bool force_scalar : {false, true}) {
        std::vector<uint32_t> sel(n);
        std::iota(sel.begin(), sel.end(), 0u);
        const size_t kept =
            bloom.MayContainBlock(values.data(), sel.data(), n, force_scalar);
        ASSERT_EQ(kept, expected.size())
            << "seed=" << seed << " n=" << n
            << " force_scalar=" << force_scalar;
        for (size_t i = 0; i < kept; ++i) {
          // Order-preserving compaction: survivors stay ascending.
          EXPECT_EQ(sel[i], expected[i]) << "seed=" << seed << " n=" << n;
        }
      }
    }
  }
}

TEST(BloomFilterTest, MayContainBlockHonorsIncomingSelection) {
  BloomFilter bloom(/*expected_keys=*/16);
  for (ObjectId k = 0; k < 16; ++k) bloom.Add(k * 3);
  std::vector<ObjectId> values(100);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<ObjectId>(i);
  }
  // Pre-filtered selection (every 7th row): the block probe must only consult
  // selected entries and keep their relative order.
  std::vector<uint32_t> sel;
  for (uint32_t i = 0; i < 100; i += 7) sel.push_back(i);
  std::vector<uint32_t> expected;
  for (uint32_t i : sel) {
    if (bloom.MayContain(values[i])) expected.push_back(i);
  }
  const size_t kept = bloom.MayContainBlock(values.data(), sel.data(),
                                            sel.size());
  ASSERT_EQ(kept, expected.size());
  for (size_t i = 0; i < kept; ++i) EXPECT_EQ(sel[i], expected[i]);
}

TEST(StatisticsTest, EstimateProbeRows) {
  Table t = MakeTable();
  // 50 rows, 5 distinct in col 0 -> ~10 rows per probe.
  EXPECT_DOUBLE_EQ(Statistics::EstimateProbeRows(t, 0), 10.0);
  Table empty("e", {"x"});
  EXPECT_DOUBLE_EQ(Statistics::EstimateProbeRows(empty, 0), 0.0);
}

}  // namespace
}  // namespace xk::storage
