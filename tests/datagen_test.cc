// Tests for the synthetic data generators.

#include <gtest/gtest.h>

#include <set>

#include "datagen/dblp_gen.h"
#include "datagen/tpch_gen.h"
#include "schema/validator.h"
#include "test_util.h"

namespace xk::datagen {
namespace {

TEST(TpchGenTest, InstancesValidateAgainstTheirSchema) {
  TpchConfig config;
  config.seed = 1;
  XK_ASSERT_OK_AND_ASSIGN(auto db, TpchDatabase::Generate(config));
  XK_EXPECT_OK(schema::Validate(db->graph(), db->schema()).status());
  EXPECT_GT(db->graph().NumNodes(), 100);
  EXPECT_GT(db->graph().NumReferenceEdges(), 0);
}

TEST(TpchGenTest, DeterministicBySeed) {
  TpchConfig config;
  config.seed = 9;
  XK_ASSERT_OK_AND_ASSIGN(auto a, TpchDatabase::Generate(config));
  XK_ASSERT_OK_AND_ASSIGN(auto b, TpchDatabase::Generate(config));
  EXPECT_EQ(a->graph().NumNodes(), b->graph().NumNodes());
  EXPECT_EQ(a->graph().NumReferenceEdges(), b->graph().NumReferenceEdges());
  for (xml::NodeId n = 0; n < a->graph().NumNodes(); n += 17) {
    EXPECT_EQ(a->graph().label(n), b->graph().label(n));
    EXPECT_EQ(a->graph().value(n), b->graph().value(n));
  }
  TpchConfig other = config;
  other.seed = 10;
  XK_ASSERT_OK_AND_ASSIGN(auto c, TpchDatabase::Generate(other));
  EXPECT_NE(a->graph().NumNodes(), c->graph().NumNodes());
}

TEST(TpchGenTest, PartHierarchyIsAcyclic) {
  TpchConfig config;
  config.num_parts = 60;
  config.avg_subparts_per_part = 3.0;
  XK_ASSERT_OK_AND_ASSIGN(auto db, TpchDatabase::Generate(config));
  const xml::XmlGraph& g = db->graph();
  // sub -> part references always point to a later-created part.
  for (xml::NodeId n = 0; n < g.NumNodes(); ++n) {
    if (g.label(n) != "sub") continue;
    ASSERT_EQ(g.references_out(n).size(), 1u);
    EXPECT_GT(g.references_out(n)[0], g.parent(n));
  }
}

TEST(TpchGenTest, RunningExampleKeywordsPresent) {
  TpchConfig config;
  XK_ASSERT_OK_AND_ASSIGN(auto db, TpchDatabase::Generate(config));
  EXPECT_EQ(db->part_names()[0], "tv");
  EXPECT_EQ(db->part_names()[1], "vcr");
  EXPECT_EQ(db->person_names()[0], "john");
}

TEST(TpchGenTest, ScalesWithConfig) {
  TpchConfig small;
  small.num_persons = 5;
  small.num_parts = 5;
  small.num_products = 2;
  TpchConfig big = small;
  big.num_persons = 50;
  big.num_parts = 50;
  big.num_products = 20;
  XK_ASSERT_OK_AND_ASSIGN(auto s, TpchDatabase::Generate(small));
  XK_ASSERT_OK_AND_ASSIGN(auto b, TpchDatabase::Generate(big));
  EXPECT_GT(b->graph().NumNodes(), 3 * s->graph().NumNodes());
}

TEST(DblpGenTest, InstancesValidateAgainstTheirSchema) {
  DblpConfig config;
  XK_ASSERT_OK_AND_ASSIGN(auto db, DblpDatabase::Generate(config));
  XK_EXPECT_OK(schema::Validate(db->graph(), db->schema()).status());
}

TEST(DblpGenTest, CitationFanoutTracksConfig) {
  DblpConfig config;
  config.num_conferences = 4;
  config.years_per_conference = 3;
  config.avg_papers_per_year = 10;
  config.avg_citations_per_paper = 6.0;
  config.seed = 3;
  XK_ASSERT_OK_AND_ASSIGN(auto db, DblpDatabase::Generate(config));
  const xml::XmlGraph& g = db->graph();
  int64_t papers = 0;
  int64_t cites = 0;
  for (xml::NodeId n = 0; n < g.NumNodes(); ++n) {
    if (g.label(n) == "paper") ++papers;
    if (g.label(n) == "cite") ++cites;
  }
  ASSERT_GT(papers, 0);
  double avg = static_cast<double>(cites) / static_cast<double>(papers);
  EXPECT_GT(avg, 3.0);
  EXPECT_LT(avg, 9.0);
}

TEST(DblpGenTest, NoSelfCitations) {
  DblpConfig config;
  config.seed = 4;
  XK_ASSERT_OK_AND_ASSIGN(auto db, DblpDatabase::Generate(config));
  const xml::XmlGraph& g = db->graph();
  for (xml::NodeId n = 0; n < g.NumNodes(); ++n) {
    if (g.label(n) != "cite") continue;
    for (xml::NodeId t : g.references_out(n)) {
      EXPECT_NE(t, g.parent(n));
    }
  }
}

TEST(DblpGenTest, AuthorSkewIsZipfian) {
  DblpConfig config;
  config.num_conferences = 6;
  config.avg_papers_per_year = 12;
  config.seed = 5;
  XK_ASSERT_OK_AND_ASSIGN(auto db, DblpDatabase::Generate(config));
  const xml::XmlGraph& g = db->graph();
  std::map<std::string, int> counts;
  int total = 0;
  for (xml::NodeId n = 0; n < g.NumNodes(); ++n) {
    if (g.label(n) == "author") {
      ++counts[g.value(n)];
      ++total;
    }
  }
  // The most frequent author name should be far above uniform share.
  int max_count = 0;
  for (const auto& [name, c] : counts) max_count = std::max(max_count, c);
  ASSERT_GT(total, 0);
  EXPECT_GT(max_count * static_cast<int>(db->author_names().size()), 3 * total);
}

TEST(DblpGenTest, SeedVocabularyUsable) {
  DblpConfig config;
  XK_ASSERT_OK_AND_ASSIGN(auto db, DblpDatabase::Generate(config));
  EXPECT_EQ(db->author_names()[0], "ullman");
  EXPECT_EQ(db->title_words()[0], "keyword");
}

}  // namespace
}  // namespace xk::datagen
