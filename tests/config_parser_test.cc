// Tests for the schema/TSS configuration format.

#include <gtest/gtest.h>

#include "datagen/dblp_gen.h"
#include "datagen/tpch_gen.h"
#include "engine/xkeyword.h"
#include "schema/config_parser.h"
#include "test_util.h"

namespace xk::schema {
namespace {

using xk::testing::RunTopK;

constexpr const char* kDblpConfig = R"(
# The Figure-14 DBLP configuration.
node conference conference
node cname name
node confyear confyear
node year year
node paper paper
node title title
node author author
node cite cite          # dummy: mediates citations

containment conference cname one
containment conference confyear many
containment confyear year one
containment confyear paper many
containment paper title one
containment paper author many
containment paper cite many
reference cite paper one

segment Conf conference cname
segment Year confyear year
segment Paper paper title
segment Author author

annotate Conf Year "in year" "of conference"
annotate Paper Author "by author" "of paper"
)";

TEST(ConfigParserTest, ParsesDblpConfiguration) {
  XK_ASSERT_OK_AND_ASSIGN(auto config, ParseSchemaConfig(kDblpConfig));
  EXPECT_EQ(config->schema.NumNodes(), 8);
  EXPECT_EQ(config->schema.NumEdges(), 8);
  ASSERT_NE(config->tss, nullptr);
  EXPECT_TRUE(config->tss->finalized());
  EXPECT_EQ(config->tss->NumSegments(), 4);
  // Conf-Year, Year-Paper, Paper-Author, Paper-Paper (via cite).
  EXPECT_EQ(config->tss->NumEdges(), 4);
  TssId paper = *config->tss->SegmentByName("Paper");
  XK_EXPECT_OK(config->tss->FindEdge(paper, paper).status());
  // Annotations landed.
  TssId conf = *config->tss->SegmentByName("Conf");
  TssId year = *config->tss->SegmentByName("Year");
  const TssEdge& cy = config->tss->edge(*config->tss->FindEdge(conf, year));
  EXPECT_EQ(cy.forward_desc, "in year");
  EXPECT_EQ(cy.reverse_desc, "of conference");
}

TEST(ConfigParserTest, DuplicateLabelsViaDistinctIds) {
  constexpr const char* kConfig = R"(
node person person
node pname name
node part part
node paname name
containment person pname one
containment part paname one
segment P person pname
segment Pa part paname
)";
  XK_ASSERT_OK_AND_ASSIGN(auto config, ParseSchemaConfig(kConfig));
  EXPECT_EQ(config->schema.NumNodes(), 4);
  EXPECT_TRUE(config->schema.NodeByUniqueLabel("name").status().IsInvalidArgument());
}

TEST(ConfigParserTest, ChoiceNodesAndMultiplicities) {
  constexpr const char* kConfig = R"(
node li lineitem
node line line choice
node part part
node product product
containment li line one
reference line part
reference line product
segment L li
segment Pa part
segment Pr product
)";
  XK_ASSERT_OK_AND_ASSIGN(auto config, ParseSchemaConfig(kConfig));
  SchemaNodeId line = *config->schema.NodeByUniqueLabel("line");
  EXPECT_EQ(config->schema.kind(line), NodeKind::kChoice);
  TssId l = *config->tss->SegmentByName("L");
  TssId pa = *config->tss->SegmentByName("Pa");
  const TssEdge& lpa = config->tss->edge(*config->tss->FindEdge(l, pa));
  EXPECT_EQ(lpa.forward_mult, Mult::kOne);  // reference default one
  EXPECT_NE(lpa.choice_group, kNoSchemaNode);
}

TEST(ConfigParserTest, ErrorsCarryLineNumbers) {
  auto unknown_verb = ParseSchemaConfig("node a a\nfrobnicate a\n");
  ASSERT_FALSE(unknown_verb.ok());
  EXPECT_NE(unknown_verb.status().message().find("line 2"), std::string::npos);

  auto unknown_id = ParseSchemaConfig("node a a\ncontainment a ghost\n");
  ASSERT_FALSE(unknown_id.ok());
  EXPECT_NE(unknown_id.status().message().find("ghost"), std::string::npos);

  EXPECT_FALSE(ParseSchemaConfig("node a a\nnode a b\nsegment S a\n").ok());
  EXPECT_FALSE(ParseSchemaConfig("node a a\n").ok());  // no segment
  EXPECT_FALSE(ParseSchemaConfig("node a a\nsegment S a\nannotate S T \"x\" \"y\"\n")
                   .ok());
  EXPECT_FALSE(
      ParseSchemaConfig("node a a\ncontainment a a maybe\nsegment S a\n").ok());
  EXPECT_FALSE(ParseSchemaConfig("node a a\nsegment S a \"unterminated\n").ok());
}

TEST(ConfigParserTest, RoundTripsBuiltinSchemas) {
  {
    SchemaGraph schema;
    auto tss = datagen::BuildTpchSchema(&schema).MoveValueUnsafe();
    std::string text = WriteSchemaConfig(schema, *tss);
    XK_ASSERT_OK_AND_ASSIGN(auto config, ParseSchemaConfig(text));
    EXPECT_EQ(config->schema.NumNodes(), schema.NumNodes());
    EXPECT_EQ(config->schema.NumEdges(), schema.NumEdges());
    EXPECT_EQ(config->tss->NumSegments(), tss->NumSegments());
    EXPECT_EQ(config->tss->NumEdges(), tss->NumEdges());
  }
  {
    SchemaGraph schema;
    auto tss = datagen::BuildDblpSchema(&schema).MoveValueUnsafe();
    std::string text = WriteSchemaConfig(schema, *tss);
    XK_ASSERT_OK_AND_ASSIGN(auto config, ParseSchemaConfig(text));
    EXPECT_EQ(config->tss->NumSegments(), tss->NumSegments());
    EXPECT_EQ(config->tss->NumEdges(), tss->NumEdges());
    // Annotations survive for unique segment pairs.
    TssId p_orig = *tss->SegmentByName("Paper");
    TssId a_orig = *tss->SegmentByName("Author");
    TssId p_new = *config->tss->SegmentByName("Paper");
    TssId a_new = *config->tss->SegmentByName("Author");
    EXPECT_EQ(config->tss->edge(*config->tss->FindEdge(p_new, a_new)).forward_desc,
              tss->edge(*tss->FindEdge(p_orig, a_orig)).forward_desc);
  }
}

TEST(ConfigParserTest, ParsedConfigRunsEndToEnd) {
  // A config-defined schema drives a real query.
  XK_ASSERT_OK_AND_ASSIGN(auto config, ParseSchemaConfig(kDblpConfig));
  xml::XmlGraph g;
  xml::NodeId conf = g.AddNode("conference");
  XK_EXPECT_OK(g.AddContainmentEdge(conf, g.AddNode("name", "icde")));
  xml::NodeId cy = g.AddNode("confyear");
  XK_EXPECT_OK(g.AddContainmentEdge(conf, cy));
  XK_EXPECT_OK(g.AddContainmentEdge(cy, g.AddNode("year", "2003")));
  xml::NodeId paper = g.AddNode("paper");
  XK_EXPECT_OK(g.AddContainmentEdge(cy, paper));
  XK_EXPECT_OK(
      g.AddContainmentEdge(paper, g.AddNode("title", "keyword proximity")));
  XK_EXPECT_OK(g.AddContainmentEdge(paper, g.AddNode("author", "hristidis")));
  XK_EXPECT_OK(g.AddContainmentEdge(paper, g.AddNode("author", "balmin")));

  auto xk = engine::XKeyword::Load(&g, &config->schema, config->tss.get())
                .MoveValueUnsafe();
  XK_ASSERT_OK(xk->AddDecomposition(decomp::MakeMinimal(
      *config->tss, decomp::PhysicalDesign::kClusterPerDirection)));
  engine::QueryOptions options;
  options.max_size_z = 4;
  XK_ASSERT_OK_AND_ASSIGN(
      std::vector<present::Mtton> results,
      RunTopK(*xk, {"hristidis", "balmin"}, "MinClust", options));
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results.front().score, 2);  // author <- paper -> author
}

}  // namespace
}  // namespace xk::schema
