// Tests for schema graphs and instance validation.

#include <gtest/gtest.h>

#include "datagen/tpch_gen.h"
#include "schema/schema_graph.h"
#include "schema/validator.h"
#include "test_util.h"

namespace xk::schema {
namespace {

TEST(SchemaGraphTest, NodesAndEdges) {
  SchemaGraph s;
  SchemaNodeId a = s.AddNode("a");
  SchemaNodeId b = s.AddNode("b", NodeKind::kChoice);
  XK_ASSERT_OK_AND_ASSIGN(SchemaEdgeId e, s.AddContainmentEdge(a, b, true));
  EXPECT_EQ(s.NumNodes(), 2);
  EXPECT_EQ(s.NumEdges(), 1);
  EXPECT_EQ(s.label(b), "b");
  EXPECT_EQ(s.kind(b), NodeKind::kChoice);
  EXPECT_EQ(s.edge(e).kind, EdgeKind::kContainment);
  EXPECT_TRUE(s.edge(e).max_occurs_many);
  EXPECT_EQ(s.ContainmentParent(b), a);
  EXPECT_EQ(s.ContainmentParent(a), kNoSchemaNode);
  EXPECT_EQ(s.Roots(), std::vector<SchemaNodeId>{a});
}

TEST(SchemaGraphTest, EdgeMultiplicities) {
  SchemaGraph s;
  SchemaNodeId a = s.AddNode("a");
  SchemaNodeId b = s.AddNode("b");
  XK_ASSERT_OK_AND_ASSIGN(SchemaEdgeId many, s.AddContainmentEdge(a, b, true));
  XK_ASSERT_OK_AND_ASSIGN(SchemaEdgeId ref, s.AddReferenceEdge(a, b, false));
  EXPECT_EQ(s.edge(many).forward_mult(), Mult::kMany);
  EXPECT_EQ(s.edge(many).reverse_mult(), Mult::kOne);  // one parent
  EXPECT_EQ(s.edge(ref).forward_mult(), Mult::kOne);
  EXPECT_EQ(s.edge(ref).reverse_mult(), Mult::kMany);  // many referrers
}

TEST(SchemaGraphTest, Lookups) {
  SchemaGraph s;
  SchemaNodeId person = s.AddNode("person");
  SchemaNodeId name1 = s.AddNode("name");
  SchemaNodeId part = s.AddNode("part");
  SchemaNodeId name2 = s.AddNode("name");
  XK_EXPECT_OK(s.AddContainmentEdge(person, name1).status());
  XK_EXPECT_OK(s.AddContainmentEdge(part, name2).status());
  XK_ASSERT_OK_AND_ASSIGN(SchemaNodeId found, s.ChildByLabel(person, "name"));
  EXPECT_EQ(found, name1);
  EXPECT_TRUE(s.ChildByLabel(person, "ghost").status().IsNotFound());
  // "name" is ambiguous globally; "person" is unique.
  EXPECT_TRUE(s.NodeByUniqueLabel("name").status().IsInvalidArgument());
  XK_ASSERT_OK_AND_ASSIGN(SchemaNodeId p, s.NodeByUniqueLabel("person"));
  EXPECT_EQ(p, person);
  EXPECT_TRUE(s.NodeByUniqueLabel("zzz").status().IsNotFound());
  EXPECT_TRUE(s.FindReferenceEdge(person, part).status().IsNotFound());
}

TEST(MultiplicityTest, Compose) {
  EXPECT_EQ(Compose(Mult::kOne, Mult::kOne), Mult::kOne);
  EXPECT_EQ(Compose(Mult::kOne, Mult::kMany), Mult::kMany);
  EXPECT_EQ(Compose(Mult::kMany, Mult::kOne), Mult::kMany);
  EXPECT_STREQ(MultToString(Mult::kOne), "one");
}

class ValidatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tss_ = datagen::BuildTpchSchema(&schema_).MoveValueUnsafe();
  }

  schema::SchemaGraph schema_;
  std::unique_ptr<schema::TssGraph> tss_;
};

TEST_F(ValidatorTest, AcceptsFigure1Instance) {
  auto db = testing::MakeFigure1Database();
  XK_ASSERT_OK_AND_ASSIGN(ValidationResult v, Validate(db->graph, db->schema));
  // Every node typed.
  for (xml::NodeId n = 0; n < db->graph.NumNodes(); ++n) {
    EXPECT_NE(v.node_types[static_cast<size_t>(n)], kNoSchemaNode);
  }
  // Counts: 2 persons, 4 parts, 3 lineitems.
  XK_ASSERT_OK_AND_ASSIGN(SchemaNodeId person, db->schema.NodeByUniqueLabel("person"));
  XK_ASSERT_OK_AND_ASSIGN(SchemaNodeId part, db->schema.NodeByUniqueLabel("part"));
  XK_ASSERT_OK_AND_ASSIGN(SchemaNodeId li, db->schema.NodeByUniqueLabel("lineitem"));
  EXPECT_EQ(v.node_counts[static_cast<size_t>(person)], 2);
  EXPECT_EQ(v.node_counts[static_cast<size_t>(part)], 4);
  EXPECT_EQ(v.node_counts[static_cast<size_t>(li)], 3);
}

TEST_F(ValidatorTest, RejectsUnknownRootAndChild) {
  {
    xml::XmlGraph g;
    g.AddNode("alien");
    EXPECT_TRUE(Validate(g, schema_).status().IsCorruption());
  }
  {
    xml::XmlGraph g;
    xml::NodeId p = g.AddNode("person");
    xml::NodeId x = g.AddNode("orderzzz");
    XK_ASSERT_OK(g.AddContainmentEdge(p, x));
    EXPECT_TRUE(Validate(g, schema_).status().IsCorruption());
  }
}

TEST_F(ValidatorTest, RejectsChoiceViolation) {
  // A line with references to both a part and a product.
  xml::XmlGraph g;
  xml::NodeId part = g.AddNode("part");
  xml::NodeId product = g.AddNode("product");
  xml::NodeId person = g.AddNode("person");
  xml::NodeId order = g.AddNode("order");
  xml::NodeId li = g.AddNode("lineitem");
  xml::NodeId line = g.AddNode("line");
  XK_ASSERT_OK(g.AddContainmentEdge(person, order));
  XK_ASSERT_OK(g.AddContainmentEdge(order, li));
  XK_ASSERT_OK(g.AddContainmentEdge(li, line));
  XK_ASSERT_OK(g.AddReferenceEdge(line, part));
  XK_ASSERT_OK(g.AddReferenceEdge(line, product));
  // Both references exist in the schema individually, but the reference
  // maxOccurs (one target per line alternative) rejects doubles.
  auto result = Validate(g, schema_);
  EXPECT_FALSE(result.ok());
}

TEST_F(ValidatorTest, RejectsMaxOccursViolation) {
  // Two name children under one person (maxOccurs = 1).
  xml::XmlGraph g;
  xml::NodeId p = g.AddNode("person");
  xml::NodeId n1 = g.AddNode("name", "a");
  xml::NodeId n2 = g.AddNode("name", "b");
  XK_ASSERT_OK(g.AddContainmentEdge(p, n1));
  XK_ASSERT_OK(g.AddContainmentEdge(p, n2));
  EXPECT_TRUE(Validate(g, schema_).status().IsCorruption());
}

TEST_F(ValidatorTest, RejectsBadReferenceTarget) {
  // supplier must reference a person, not a part.
  xml::XmlGraph g;
  xml::NodeId part = g.AddNode("part");
  xml::NodeId person = g.AddNode("person");
  xml::NodeId order = g.AddNode("order");
  xml::NodeId li = g.AddNode("lineitem");
  xml::NodeId sup = g.AddNode("supplier");
  XK_ASSERT_OK(g.AddContainmentEdge(person, order));
  XK_ASSERT_OK(g.AddContainmentEdge(order, li));
  XK_ASSERT_OK(g.AddContainmentEdge(li, sup));
  XK_ASSERT_OK(g.AddReferenceEdge(sup, part));
  EXPECT_TRUE(Validate(g, schema_).status().IsCorruption());
}

TEST_F(ValidatorTest, FanoutStatistics) {
  auto db = testing::MakeFigure1Database();
  XK_ASSERT_OK_AND_ASSIGN(ValidationResult v, Validate(db->graph, db->schema));
  // order -> lineitem: 2 orders, 3 lineitems -> avg 1.5 forward, 1.0 reverse.
  XK_ASSERT_OK_AND_ASSIGN(SchemaNodeId order, db->schema.NodeByUniqueLabel("order"));
  XK_ASSERT_OK_AND_ASSIGN(SchemaNodeId li, db->schema.NodeByUniqueLabel("lineitem"));
  SchemaEdgeId edge = -1;
  for (SchemaEdgeId e : db->schema.out_edges(order)) {
    if (db->schema.edge(e).to == li) edge = e;
  }
  ASSERT_NE(edge, -1);
  EXPECT_DOUBLE_EQ(v.avg_fanout[static_cast<size_t>(edge)], 1.5);
  EXPECT_DOUBLE_EQ(v.avg_reverse_fanout[static_cast<size_t>(edge)], 1.0);
}

TEST_F(ValidatorTest, GeneratedDatabasesValidate) {
  datagen::TpchConfig config;
  config.seed = 11;
  XK_ASSERT_OK_AND_ASSIGN(auto db, datagen::TpchDatabase::Generate(config));
  XK_EXPECT_OK(Validate(db->graph(), db->schema()).status());
}

}  // namespace
}  // namespace xk::schema
